package crawler

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/browser"
	"repro/internal/dom"
	"repro/internal/fielddata"
	"repro/internal/fieldspec"
	"repro/internal/layout"
	"repro/internal/pagegen"
	"repro/internal/phishserver"
	"repro/internal/raster"
	"repro/internal/site"
	"repro/internal/textclass"
	"repro/internal/vision"
)

var (
	modelsOnce sync.Once
	fieldModel *textclass.Model
	detector   *vision.Detector
)

func models(t testing.TB) (*textclass.Model, *vision.Detector) {
	modelsOnce.Do(func() {
		var err error
		fieldModel, err = fielddata.TrainDefault(1)
		if err != nil {
			panic(err)
		}
		detector, err = vision.Train(pagegen.GenerateSet(200, 1, pagegen.Config{}), 2)
		if err != nil {
			panic(err)
		}
	})
	return fieldModel, detector
}

func newCrawler(t testing.TB, sites ...*site.Site) *Crawler {
	m, d := models(t)
	reg := phishserver.NewRegistry()
	for _, s := range sites {
		reg.AddSite(s)
	}
	reg.AddBenignHost("netflix.com")
	reg.AddBenignHost("example.com")
	return &Crawler{
		Classifier: m,
		Detector:   d,
		NewBrowser: func() *browser.Browser {
			return browser.New(browser.Options{Transport: phishserver.Transport{Registry: reg}})
		},
		FakerSeed: 7,
	}
}

func loginPaymentSite() *site.Site {
	login := `<html><head><title>Sign in</title></head><body>
<form action="/"><div><label>Email address</label><input name="email"></div>
<div><label>Password</label><input type="password" name="password"></div>
<button>Sign in</button></form></body></html>`
	payment := `<html><body><form action="/pay">
<div><label>Card number</label><input name="card"></div>
<div><label>Expiry date MM/YY</label><input name="exp"></div>
<div><label>CVV security code</label><input name="cvv"></div>
<button>Pay now</button></form></body></html>`
	done := `<html><body><div>Congratulations! Your subscription is confirmed.</div></body></html>`
	return &site.Site{
		ID: "lp", Host: "lp.test", Brand: "Netflix",
		Pages: []*site.Page{
			{Path: "/", HTML: login, Next: "/pay", Mode: site.NextRedirect,
				Validate: map[string]string{"email": site.ValidateEmail},
				Fields:   []fieldspec.Type{fieldspec.Email, fieldspec.Password}},
			{Path: "/pay", HTML: payment, Next: "/done", Mode: site.NextRedirect,
				Validate: map[string]string{"card": site.ValidateLuhn},
				Fields:   []fieldspec.Type{fieldspec.Card, fieldspec.ExpDate, fieldspec.CVV}},
			{Path: "/done", HTML: done},
		},
		Images: map[string][]byte{},
	}
}

func TestCrawlMultiPageFlow(t *testing.T) {
	c := newCrawler(t, loginPaymentSite())
	log := c.Crawl("http://lp.test/")
	if log.Outcome != OutcomeCompleted {
		t.Fatalf("outcome = %s, pages = %d", log.Outcome, len(log.Pages))
	}
	if len(log.Pages) != 3 {
		t.Fatalf("visited %d pages, want 3", len(log.Pages))
	}
	// Page 1 fields classified as email + password.
	p1 := log.Pages[0]
	if got := p1.FieldTypes(); len(got) != 2 || got[0] != fieldspec.Email || got[1] != fieldspec.Password {
		t.Errorf("page 1 field types = %v", got)
	}
	// Page 2 asks for financial data.
	p2 := log.Pages[1]
	types := map[fieldspec.Type]bool{}
	for _, ft := range p2.FieldTypes() {
		types[ft] = true
	}
	if !types[fieldspec.Card] {
		t.Errorf("page 2 types = %v, want card present", p2.FieldTypes())
	}
	// Terminal page has no fields and confirmation text.
	p3 := log.Pages[2]
	if p3.HasInputs() {
		t.Error("terminal page should have no inputs")
	}
	if !strings.Contains(p3.Text, "Congratulations") {
		t.Errorf("terminal text = %q", p3.Text)
	}
	// Submit methods recorded.
	if p1.SubmitMethod == "" || p2.SubmitMethod == "" {
		t.Error("submit methods not recorded")
	}
	// Forged values are syntactically valid (server accepted them).
	if p1.Fields[0].Value == "" || !strings.Contains(p1.Fields[0].Value, "@") {
		t.Errorf("forged email = %q", p1.Fields[0].Value)
	}
}

func TestCrawlClickThroughFirst(t *testing.T) {
	clickHTML := `<html><body><div>Your mailbox is almost full.</div>
<a class="btn" href="/login">Continue</a></body></html>`
	loginHTML := `<html><body><form action="/login">
<div><label>Email</label><input name="email"></div>
<div><label>Password</label><input type="password" name="pw"></div>
<button>Next</button></form></body></html>`
	s := &site.Site{ID: "ct", Host: "ct.test",
		Pages: []*site.Page{
			{Path: "/", HTML: clickHTML},
			{Path: "/login", HTML: loginHTML, Next: "/end", Mode: site.NextRedirect},
			{Path: "/end", HTML: "<html><body><div>done</div></body></html>"},
		},
		Images: map[string][]byte{}}
	c := newCrawler(t, s)
	log := c.Crawl("http://ct.test/")
	if len(log.Pages) != 3 {
		t.Fatalf("visited %d pages: %+v", len(log.Pages), log.Outcome)
	}
	if log.Pages[0].HasInputs() {
		t.Error("click-through page should log no inputs")
	}
	if log.Pages[0].SubmitMethod != SubmitClickThru {
		t.Errorf("page 1 method = %q", log.Pages[0].SubmitMethod)
	}
	if !log.Pages[1].HasInputs() {
		t.Error("login page should log inputs")
	}
}

// buildOCRSite constructs a Figure 3-style page: anonymous inputs, labels
// only in a background image aligned with the rendered input boxes.
func buildOCRSite(t testing.TB) *site.Site {
	t.Helper()
	formHTML := `<form action="/">
<div><span style="width:140px"> </span><input name="f1"></div>
<div><span style="width:140px"> </span><input name="f2"></div>
<button>OK</button></form>`
	wrap := func(inner string) string {
		return "<html><body><div id=\"bgwrap\" style=\"background-image:url(/bg.pxi)\">" + inner + "</div></body></html>"
	}
	// First pass: lay out without the image to find the boxes.
	doc := dom.Parse(wrap(formHTML))
	lay := layout.Compute(doc, browser.ViewportWidth)
	wrapBox, _ := lay.Box(doc.ElementByID("bgwrap"))
	inputs := doc.ElementsByTag("input")
	if len(inputs) != 2 {
		t.Fatalf("expected 2 inputs, got %d", len(inputs))
	}
	bg := raster.New(wrapBox.W, wrapBox.H, raster.White)
	labels := []string{"CARD NUMBER", "SECURITY CODE"}
	for i, in := range inputs {
		b, _ := lay.Box(in)
		bg.DrawString(labels[i], b.X-wrapBox.X-raster.StringWidth(labels[i])-8, b.Y-wrapBox.Y+3, raster.Black)
	}
	return &site.Site{ID: "ocr", Host: "ocr.test",
		Pages: []*site.Page{
			{Path: "/", HTML: wrap(formHTML), Next: "/end", Mode: site.NextRedirect},
			{Path: "/end", HTML: "<html><body><div>bye</div></body></html>"},
		},
		Images: map[string][]byte{"/bg.pxi": raster.Encode(bg)}}
}

func TestCrawlOCRObfuscatedPage(t *testing.T) {
	s := buildOCRSite(t)
	c := newCrawler(t, s)
	log := c.Crawl("http://ocr.test/")
	if len(log.Pages) < 2 {
		t.Fatalf("crawl did not progress: %s", log.Outcome)
	}
	p1 := log.Pages[0]
	if !p1.UsedOCR {
		t.Fatal("OCR fallback not used on obfuscated page")
	}
	// At least one field should be classified from the OCR-read label.
	got := p1.FieldTypes()
	foundCard := false
	for _, ft := range got {
		if ft == fieldspec.Card || ft == fieldspec.CVV {
			foundCard = true
		}
	}
	if !foundCard {
		descs := []string{}
		for _, f := range p1.Fields {
			descs = append(descs, fmt.Sprintf("%q->%s", f.Description, f.Label))
		}
		t.Errorf("OCR fields not classified: %v", descs)
	}
}

func TestCrawlVisualSubmitOnly(t *testing.T) {
	// No form, no DOM button: bare inputs plus a canvas click zone. Only
	// the visual strategy can advance.
	base := `<div><label>Email</label><input name="email"></div>
<canvas data-label="SUBMIT" width="76" height="18"></canvas>`
	// Compute where layout puts the canvas so the click zone matches, as
	// the site generator does when it wires canvas-submit tricks.
	probe := dom.Parse("<html><body>" + base + "</body></html>")
	probeLay := layout.Compute(probe, browser.ViewportWidth)
	cbox, _ := probeLay.Box(probe.ElementsByTag("canvas")[0])
	html := fmt.Sprintf(`<html><head>
<script type="application/x-behavior">{"clickzones":[{"x":%d,"y":%d,"w":%d,"h":%d,"action":"submit"}]}</script>
</head><body>%s</body></html>`, cbox.X, cbox.Y, cbox.W, cbox.H, base)
	s := &site.Site{ID: "vs", Host: "vs.test",
		Pages: []*site.Page{
			{Path: "/", HTML: html, Next: "/end", Mode: site.NextRedirect},
			{Path: "/end", HTML: "<html><body><div>in</div></body></html>"},
		},
		Images: map[string][]byte{}}
	c := newCrawler(t, s)
	log := c.Crawl("http://vs.test/")
	if len(log.Pages) < 2 {
		t.Fatalf("visual-only site not crawled: %s", log.Outcome)
	}
	if log.Pages[0].SubmitMethod != SubmitVisual {
		t.Errorf("method = %q, want %q", log.Pages[0].SubmitMethod, SubmitVisual)
	}
}

func TestCrawlRetriesOnFlakyValidation(t *testing.T) {
	html := `<html><body><form action="/">
<div><label>Full name</label><input name="nm"></div>
<button>Go</button></form></body></html>`
	s := &site.Site{ID: "fl", Host: "fl.test",
		Pages: []*site.Page{
			{Path: "/", HTML: html, Next: "/end", Mode: site.NextRedirect,
				Validate: map[string]string{"nm": site.ValidateFlaky}},
			{Path: "/end", HTML: "<html><body><div>ok</div></body></html>"},
		},
		Images: map[string][]byte{}}
	// Try a few seeds: at least one should need >1 attempt, and most
	// should eventually pass (flaky accepts ~half of values).
	sawRetry, sawSuccess := false, false
	for seed := int64(1); seed <= 6; seed++ {
		c := newCrawler(t, s)
		c.FakerSeed = seed
		log := c.Crawl("http://fl.test/")
		if len(log.Pages) >= 2 {
			sawSuccess = true
			if log.Pages[0].DataAttempts > 1 {
				sawRetry = true
			}
		}
	}
	if !sawSuccess {
		t.Error("no seed ever passed flaky validation")
	}
	if !sawRetry {
		t.Log("note: no retry observed across seeds (acceptable but unexpected)")
	}
}

func TestCrawlStuckOnUnsolvableValidation(t *testing.T) {
	// A "captcha" field validated against a challenge the crawler cannot
	// know: every attempt fails, the session ends stuck after 3 tries.
	html := `<html><body><form action="/">
<div><label>Enter the characters shown above</label><input name="cap"></div>
<button>Verify</button></form></body></html>`
	s := &site.Site{ID: "st", Host: "st.test",
		Pages: []*site.Page{
			{Path: "/", HTML: html, Next: "/end", Mode: site.NextRedirect,
				Validate: map[string]string{"cap": "never"}},
			{Path: "/end", HTML: "<html><body>unreachable</body></html>"},
		},
		Images: map[string][]byte{}}
	// "never" is not a known validator name; make it impossible via email
	// validation of a non-email faker value instead.
	s.Pages[0].Validate["cap"] = site.ValidateEmail
	c := newCrawler(t, s)
	log := c.Crawl("http://st.test/")
	if log.Outcome != OutcomeStuck {
		t.Errorf("outcome = %s, want stuck", log.Outcome)
	}
	if log.Pages[0].DataAttempts != MaxDataAttempts {
		t.Errorf("attempts = %d, want %d", log.Pages[0].DataAttempts, MaxDataAttempts)
	}
}

func TestCrawlInlineSwapDetectedViaDOMHash(t *testing.T) {
	// Two structurally different pages at the same URL (inline mode): the
	// DOM hash must register progress.
	p1 := `<html><body><form action="/"><div><label>User ID</label><input name="u"></div><button>Next</button></form></body></html>`
	p2 := `<html><body><form action="/"><div><label>Password</label><input type="password" name="p"></div><div><label>Code</label><input name="c"></div><button>Next</button></form></body></html>`
	s := &site.Site{ID: "in", Host: "in.test",
		Pages: []*site.Page{
			{Path: "/", HTML: p1, Next: "/p2", Mode: site.NextInline},
			{Path: "/p2", HTML: p2},
		},
		Images: map[string][]byte{}}
	c := newCrawler(t, s)
	log := c.Crawl("http://in.test/")
	if len(log.Pages) < 2 {
		t.Fatalf("inline transition not detected: outcome %s", log.Outcome)
	}
	if log.Pages[0].URL != log.Pages[1].URL {
		t.Error("inline transition should keep the URL")
	}
	if log.Pages[0].DOMHash == log.Pages[1].DOMHash {
		t.Error("DOM hashes should differ across the swap")
	}
}

func TestCrawlDoubleLogin(t *testing.T) {
	login := `<html><body><form action="/"><div><label>Email</label><input name="email"></div>
<div><label>Password</label><input type="password" name="pw"></div><button>Sign in</button></form></body></html>`
	retry := `<html><body><div class="err">Password invalid! Try again.</div>
<form action="/"><div><label>Email</label><input name="email"></div>
<div><label>Password</label><input type="password" name="pw"></div><button>Sign in</button></form></body></html>`
	s := &site.Site{ID: "dl", Host: "dl.test",
		Pages: []*site.Page{
			{Path: "/", HTML: login, Next: "/in", Mode: site.NextRedirect, DoubleLoginHTML: retry},
			{Path: "/in", HTML: "<html><body><div>welcome</div></body></html>"},
		},
		Images: map[string][]byte{}}
	c := newCrawler(t, s)
	log := c.Crawl("http://dl.test/")
	if len(log.Pages) < 3 {
		t.Fatalf("double-login flow yielded %d pages (outcome %s)", len(log.Pages), log.Outcome)
	}
	// Two consecutive pages asking for the same login data types.
	t1, t2 := log.Pages[0].FieldTypes(), log.Pages[1].FieldTypes()
	if len(t1) != 2 || len(t2) != 2 || t1[0] != t2[0] || t1[1] != t2[1] {
		t.Errorf("consecutive login pages differ: %v vs %v", t1, t2)
	}
}

func TestCrawlErrorOutcome(t *testing.T) {
	c := newCrawler(t) // no sites registered
	c.NewBrowser = func() *browser.Browser {
		return browser.New(browser.Options{Transport: failingTransport{}})
	}
	log := c.Crawl("http://nowhere.test/")
	if log.Outcome != OutcomeError {
		t.Errorf("outcome = %s, want error", log.Outcome)
	}
}

type failingTransport struct{}

func (failingTransport) RoundTrip(*http.Request) (*http.Response, error) {
	return nil, errors.New("network down")
}

func TestCrawlPageLimit(t *testing.T) {
	// An endless chain of click-through pages must stop at MaxPages.
	var pages []*site.Page
	for i := 0; i < 30; i++ {
		next := fmt.Sprintf("/p%d", i+1)
		pages = append(pages, &site.Page{
			Path: fmt.Sprintf("/p%d", i),
			HTML: fmt.Sprintf(`<html><body><div>step %d</div><a class="btn" href="%s">Next</a></body></html>`, i, next),
		})
	}
	pages = append(pages, &site.Page{Path: "/p30", HTML: "<html><body>end</body></html>"})
	// Fix first page path.
	pages[0].Path = "/"
	pages[0].HTML = `<html><body><div>step 0</div><a class="btn" href="/p1">Next</a></body></html>`
	s := &site.Site{ID: "loop", Host: "loop.test", Pages: pages, Images: map[string][]byte{}}
	c := newCrawler(t, s)
	c.MaxPages = 5
	log := c.Crawl("http://loop.test/")
	if log.Outcome != OutcomePageLimit {
		t.Errorf("outcome = %s, want page-limit", log.Outcome)
	}
	if len(log.Pages) != 5 {
		t.Errorf("visited %d pages, want 5", len(log.Pages))
	}
}

func TestSplitIdent(t *testing.T) {
	cases := map[string]string{
		"card_number": "card number",
		"cardNumber":  "card number",
		"card-number": "card number",
		"CVV2":        "cvv2",
		"user.email":  "user email",
		"":            "",
	}
	for in, want := range cases {
		if got := splitIdent(in); got != want {
			t.Errorf("splitIdent(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLooksLikeButton(t *testing.T) {
	yes := []*dom.Node{
		parseFirst(`<a class="btn btn-primary" href="/x">whatever</a>`, "a"),
		parseFirst(`<a href="/x">Continue</a>`, "a"),
		parseFirst(`<a href="/x">Download</a>`, "a"),
		parseFirst(`<a href="/x">view document</a>`, "a"),
	}
	for _, n := range yes {
		if !looksLikeButton(n) {
			t.Errorf("looksLikeButton(%s) = false", dom.Render(n))
		}
	}
	no := []*dom.Node{
		parseFirst(`<a href="/x">Read our full privacy policy and terms of service</a>`, "a"),
		parseFirst(`<a href="/x">misc</a>`, "a"),
	}
	for _, n := range no {
		if looksLikeButton(n) {
			t.Errorf("looksLikeButton(%s) = true", dom.Render(n))
		}
	}
}

func parseFirst(src, tag string) *dom.Node {
	return dom.Parse(src).ElementsByTag(tag)[0]
}

func TestNetLogCapturedInSession(t *testing.T) {
	c := newCrawler(t, loginPaymentSite())
	log := c.Crawl("http://lp.test/")
	if len(log.NetLog) == 0 {
		t.Fatal("session net log empty")
	}
	posts := 0
	for _, r := range log.NetLog {
		if r.Method == "POST" {
			posts++
		}
	}
	if posts < 2 {
		t.Errorf("expected >= 2 POSTs in net log, got %d", posts)
	}
}

func BenchmarkCrawlSession(b *testing.B) {
	c := newCrawler(b, loginPaymentSite())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Crawl("http://lp.test/")
	}
}

func TestCrawlTicksConsentCheckbox(t *testing.T) {
	html := `<html><body><form action="/">
<div><label>Email</label><input name="email"></div>
<div><input type="checkbox" name="agree"><span>I agree to the terms</span></div>
<button>Sign up</button></form></body></html>`
	s := &site.Site{ID: "cb", Host: "cb.test",
		Pages: []*site.Page{
			{Path: "/", HTML: html, Next: "/in", Mode: site.NextRedirect,
				Validate: map[string]string{"agree": site.ValidateAny, "email": site.ValidateEmail}},
			{Path: "/in", HTML: "<html><body><div>welcome</div></body></html>"},
		},
		Images: map[string][]byte{}}
	c := newCrawler(t, s)
	log := c.Crawl("http://cb.test/")
	if len(log.Pages) < 2 {
		t.Fatalf("consent-gated form not passed: outcome %s", log.Outcome)
	}
	// The checkbox is not a data field (it carries no user data).
	if got := len(log.Pages[0].Fields); got != 1 {
		t.Errorf("fields logged = %d, want 1 (checkbox excluded)", got)
	}
}
