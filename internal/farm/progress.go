package farm

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/crawler"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// observeTrace folds a finished session's stage spans into a timing
// collector. It is the single source Stats.Stages (and the live Monitor)
// are built from: only FINAL attempts reach it, so live runs, streamed
// runs, and journal-resumed runs all derive identical stage histograms —
// the double-counting fix for merging live worker timings with
// journal-derived tallies.
func observeTrace(t *metrics.StageTimings, spans []trace.Span) {
	for _, sp := range spans {
		if sp.Kind != trace.KindStage {
			continue
		}
		if st, ok := metrics.StageByName(sp.Name); ok {
			t.Observe(st, sp.Duration())
		}
	}
}

// Monitor tracks a run's live progress for the -status-addr endpoint and
// the periodic progress line. All methods are safe for concurrent use and
// nil-safe (a nil Monitor disables progress tracking at zero cost), so
// the farm instruments unconditionally. One Monitor may span several Run
// calls (e.g. a resumed crawl's skip-then-crawl sequence).
type Monitor struct {
	total        atomic.Int64
	preCompleted atomic.Int64
	done         atomic.Int64
	fastPathed   atomic.Int64
	retried      atomic.Int64
	degraded     atomic.Int64
	failed       atomic.Int64
	panics       atomic.Int64
	stages       *metrics.StageTimings
	start        metrics.Stopwatch
}

// NewMonitor returns a monitor whose elapsed clock starts now (through
// the metrics seam — progress is operational output, never session
// bytes).
func NewMonitor() *Monitor {
	return &Monitor{stages: &metrics.StageTimings{}, start: metrics.NewStopwatch()}
}

// SetTotal declares how many feed URLs the run covers (including ones a
// resumed run will skip).
func (m *Monitor) SetTotal(n int) {
	if m != nil {
		m.total.Store(int64(n))
	}
}

// AddPreCompleted counts URLs a resumed run skips as already complete;
// they count toward Done but not toward the throughput/ETA rate.
func (m *Monitor) AddPreCompleted(n int) {
	if m != nil {
		m.preCompleted.Add(int64(n))
	}
}

// noteDone records one finished session (final attempt only).
func (m *Monitor) noteDone(lg *crawler.SessionLog) {
	if m == nil {
		return
	}
	m.done.Add(1)
	switch lg.Outcome {
	case OutcomeGaveUp, OutcomeLost:
		m.failed.Add(1)
	case crawler.OutcomeAttributed, crawler.OutcomeTriagedOut:
		m.fastPathed.Add(1)
	default:
		if lg.Attempts > 1 {
			m.degraded.Add(1)
		}
	}
	observeTrace(m.stages, lg.Trace)
}

func (m *Monitor) noteRetry() {
	if m != nil {
		m.retried.Add(1)
	}
}

func (m *Monitor) notePanic() {
	if m != nil {
		m.panics.Add(1)
	}
}

// Progress is one point-in-time view of a run, the payload of the status
// endpoint and the progress line.
type Progress struct {
	// Total is the feed size; Done counts finished URLs including
	// PreCompleted ones a resumed run skipped.
	Total        int
	Done         int
	PreCompleted int
	// FastPathed counts sessions the triage fast path resolved without a
	// browser (included in Done).
	FastPathed int
	Retried    int
	Degraded   int
	Failed     int
	Panics     int
	// Elapsed is wall time since the monitor started (metrics seam).
	Elapsed time.Duration
	// ETA extrapolates the remaining time from this run's crawl rate; 0
	// until at least one session finishes or when the run is complete.
	ETA         time.Duration
	SitesPerDay float64
	// Stages is the per-stage latency snapshot (count, total, histogram
	// percentiles) over sessions finished so far.
	Stages []metrics.StageStat
}

// Snapshot reads the current progress. Safe to call from the status
// server's goroutines while workers are recording.
func (m *Monitor) Snapshot() Progress {
	if m == nil {
		return Progress{}
	}
	p := Progress{
		Total:        int(m.total.Load()),
		PreCompleted: int(m.preCompleted.Load()),
		FastPathed:   int(m.fastPathed.Load()),
		Retried:      int(m.retried.Load()),
		Degraded:     int(m.degraded.Load()),
		Failed:       int(m.failed.Load()),
		Panics:       int(m.panics.Load()),
		Elapsed:      m.start.Elapsed(),
		Stages:       m.stages.Snapshot(),
	}
	p.Done = int(m.done.Load()) + p.PreCompleted
	crawled := p.Done - p.PreCompleted
	if crawled > 0 && p.Elapsed > 0 {
		p.SitesPerDay = float64(crawled) / p.Elapsed.Seconds() * 86400
		if rem := p.Total - p.Done; rem > 0 {
			p.ETA = time.Duration(int64(p.Elapsed) / int64(crawled) * int64(rem))
		}
	}
	return p
}

// String renders the one-line progress log:
//
//	progress: 120/300 (40.0%) done | 3 retried | 2 degraded | 1 failed | elapsed 12s | eta 25s
func (p Progress) String() string {
	var b strings.Builder
	pct := 0.0
	if p.Total > 0 {
		pct = 100 * float64(p.Done) / float64(p.Total)
	}
	fmt.Fprintf(&b, "progress: %d/%d (%.1f%%) done", p.Done, p.Total, pct)
	if p.PreCompleted > 0 {
		fmt.Fprintf(&b, " (%d resumed)", p.PreCompleted)
	}
	if p.FastPathed > 0 {
		fmt.Fprintf(&b, " | %d fast-path", p.FastPathed)
	}
	fmt.Fprintf(&b, " | %d retried | %d degraded | %d failed", p.Retried, p.Degraded, p.Failed)
	if p.Panics > 0 {
		fmt.Fprintf(&b, " | %d panics", p.Panics)
	}
	fmt.Fprintf(&b, " | elapsed %s", p.Elapsed.Round(time.Millisecond))
	if p.ETA > 0 {
		fmt.Fprintf(&b, " | eta %s", p.ETA.Round(time.Millisecond))
	}
	return b.String()
}
