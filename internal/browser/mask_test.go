package browser

import (
	"testing"

	"repro/internal/ocr"
	"repro/internal/raster"
)

// maskMatchesScreenshot checks the mask against the recognizer's ink rule
// (intensity < 128) pixel by pixel over the full screenshot.
func maskMatchesScreenshot(t *testing.T, m *ocr.Mask, shot *raster.Image) {
	t.Helper()
	if m.Region != raster.R(0, 0, shot.W, shot.H) {
		t.Fatalf("mask region = %+v, want full %dx%d screenshot", m.Region, shot.W, shot.H)
	}
	for y := 0; y < shot.H; y++ {
		for x := 0; x < shot.W; x++ {
			want := raster.ColorIntensity(shot.Pix[y*shot.W+x]) < 128
			if m.At(x, y) != want {
				t.Fatalf("mask disagrees with screenshot at (%d,%d): mask=%v ink=%v",
					x, y, m.At(x, y), want)
			}
		}
	}
}

func TestOCRMaskCachedPerRendering(t *testing.T) {
	b := newBrowser(testSite())
	p, err := b.Navigate("http://phish.test/")
	if err != nil {
		t.Fatal(err)
	}
	m1 := p.OCRMask()
	if m1 != p.OCRMask() {
		t.Fatal("repeat OCRMask on an unchanged page rebuilt the mask")
	}
	maskMatchesScreenshot(t, m1, p.Screenshot())
}

func TestOCRMaskInvalidatedByMarkDirty(t *testing.T) {
	b := newBrowser(testSite())
	p, err := b.Navigate("http://phish.test/")
	if err != nil {
		t.Fatal(err)
	}
	m1 := p.OCRMask()
	// Type mutates the DOM and calls MarkDirty, so both the rendering and
	// the derived mask must be rebuilt. (m1 is never Released here, so the
	// pool cannot hand the same *Mask back.)
	p.Type(p.VisibleInputs()[0], "victim@example.com")
	m2 := p.OCRMask()
	if m2 == m1 {
		t.Fatal("OCRMask survived MarkDirty")
	}
	maskMatchesScreenshot(t, m2, p.Screenshot())
	// The typed value renders as ink the first mask cannot have had: the
	// fresh mask must differ in content, not just identity.
	diff := 0
	for y := 0; y < m2.Region.H; y++ {
		for x := 0; x < m2.Region.W; x++ {
			if m1.At(x, y) != m2.At(x, y) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("mask content unchanged after typing into a field")
	}
}
