// Package phishserver serves synthetic phishing sites over HTTP. A Registry
// maps virtual hostnames to sites (plus the benign pages of legitimate
// domains that terminal redirects land on) and implements http.Handler; the
// companion Transport adapts the registry into an http.RoundTripper so a
// whole crawl farm runs in-process with real net/http request/response
// semantics and zero sockets. Individual sites can still be bound to real
// TCP listeners via net/http/httptest for end-to-end examples.
package phishserver

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"

	"repro/internal/faker"
	"repro/internal/site"
)

// sessionCookie is the per-visit cookie used to track double-login state.
const sessionCookie = "sess"

// Registry routes requests by Host header to phishing sites or benign
// legitimate-domain pages. It is safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	sites  map[string]*siteHandler
	benign map[string]bool // hosts served as benign legitimate pages
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		sites:  make(map[string]*siteHandler),
		benign: make(map[string]bool),
	}
}

// AddSite registers a phishing site under its Host.
func (r *Registry) AddSite(s *site.Site) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sites[s.Host] = newSiteHandler(s)
}

// RemoveSite unregisters the site at host, releasing its session state.
func (r *Registry) RemoveSite(host string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sites, host)
}

// AddBenignHost registers a hostname served with a simple legitimate page
// (redirect targets such as brand sites, google.com, example.com).
func (r *Registry) AddBenignHost(host string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.benign[host] = true
}

// SiteCount returns the number of registered phishing sites.
func (r *Registry) SiteCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sites)
}

// ServeHTTP dispatches by host.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	host := req.Host
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	r.mu.RLock()
	sh := r.sites[host]
	benign := r.benign[host] || r.benign[stripSubdomain(host)]
	r.mu.RUnlock()
	switch {
	case sh != nil:
		sh.ServeHTTP(w, req)
	case benign:
		serveBenign(w, req, host)
	default:
		http.Error(w, "no such host", http.StatusBadGateway)
	}
}

func stripSubdomain(host string) string {
	parts := strings.Split(host, ".")
	if len(parts) > 2 {
		return strings.Join(parts[len(parts)-2:], ".")
	}
	return host
}

func serveBenign(w http.ResponseWriter, req *http.Request, host string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>%s</title></head><body>
<div><h1>Welcome to %s</h1><p>This is the legitimate website.</p>
<div><a href="/login">Sign in</a></div></body></html>`, host, host)
}

// siteHandler serves one phishing site, tracking per-session double-login
// attempts.
type siteHandler struct {
	site *site.Site

	mu       sync.Mutex
	attempts map[string]int // session+path -> successful POST count
	sessions uint64
}

func newSiteHandler(s *site.Site) *siteHandler {
	return &siteHandler{site: s, attempts: make(map[string]int)}
}

// ServeHTTP routes one request within the site: pages, image resources,
// the keylogger beacon endpoint, and form submissions.
func (h *siteHandler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	// Cloak gate: a stateless pure function of the request, checked before
	// anything else — a gated visitor sees only the decoy, never a beacon
	// endpoint, image, or session cookie of the real flow.
	if c := h.site.Cloak; c != nil {
		if failing := cloakFailures(c, req); len(failing) > 0 {
			serveDecoy(w, req, c, failing)
			return
		}
	}
	sess := h.session(w, req)
	path := req.URL.Path
	// Keylogger beacon endpoint.
	if path == "/k" {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	// Image resources.
	if data, ok := h.site.Images[path]; ok {
		w.Header().Set("Content-Type", "image/pxi")
		w.Write(data)
		return
	}
	page := h.site.PageAt(path)
	if page == nil {
		http.NotFound(w, req)
		return
	}
	switch req.Method {
	case http.MethodGet:
		servePage(w, page.HTML)
	case http.MethodPost:
		h.handleSubmit(w, req, sess, page)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// session returns the request's session token, assigning one when absent.
func (h *siteHandler) session(w http.ResponseWriter, req *http.Request) string {
	if c, err := req.Cookie(sessionCookie); err == nil && c.Value != "" {
		return c.Value
	}
	h.mu.Lock()
	h.sessions++
	v := fmt.Sprintf("s%d", h.sessions)
	h.mu.Unlock()
	http.SetCookie(w, &http.Cookie{Name: sessionCookie, Value: v, Path: "/"})
	return v
}

func servePage(w http.ResponseWriter, html string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, html)
}

func (h *siteHandler) handleSubmit(w http.ResponseWriter, req *http.Request, sess string, page *site.Page) {
	// HTTP-error termination: the data was harvested, the response is an
	// error.
	if page.FailStatus > 0 {
		http.Error(w, "internal error", page.FailStatus)
		return
	}
	if err := req.ParseForm(); err != nil {
		http.Error(w, "bad form", http.StatusBadRequest)
		return
	}
	// Validate: on any failure, re-serve the identical page so the
	// crawler's DOM hash sees no progress and it retries with fresh data
	// (Section 4.3). Fields are checked in sorted order so which failing
	// field "wins" never depends on map iteration.
	fields := make([]string, 0, len(page.Validate))
	for field := range page.Validate {
		fields = append(fields, field)
	}
	sort.Strings(fields)
	for _, field := range fields {
		if !validate(page.Validate[field], req.PostForm.Get(field)) {
			servePage(w, page.HTML)
			return
		}
	}
	// Double login: the first successful POST pretends the credentials
	// were wrong.
	if page.DoubleLoginHTML != "" {
		key := sess + "|" + page.Path
		h.mu.Lock()
		h.attempts[key]++
		first := h.attempts[key] == 1
		h.mu.Unlock()
		if first {
			servePage(w, page.DoubleLoginHTML)
			return
		}
	}
	switch page.Mode {
	case site.NextRedirect:
		http.Redirect(w, req, page.Next, http.StatusFound)
	case site.NextExternal:
		http.Redirect(w, req, page.Next, http.StatusFound)
	case site.NextInline:
		next := h.site.PageAt(page.Next)
		if next == nil {
			servePage(w, page.HTML)
			return
		}
		servePage(w, next.HTML)
	default:
		// Dead end: same page again.
		servePage(w, page.HTML)
	}
}

// validate applies a named validator to a value.
func validate(name, value string) bool {
	value = strings.TrimSpace(value)
	switch name {
	case site.ValidateAny:
		return value != ""
	case site.ValidateEmail:
		at := strings.IndexByte(value, '@')
		dot := strings.LastIndexByte(value, '.')
		return at > 0 && dot > at+1 && dot < len(value)-1
	case site.ValidateLuhn:
		return faker.LuhnValid(strings.ReplaceAll(value, " ", ""))
	case site.ValidateDigits:
		if value == "" {
			return false
		}
		for _, r := range value {
			if r < '0' || r > '9' {
				return false
			}
		}
		return true
	case site.ValidatePhone:
		digits := 0
		for _, r := range value {
			if r >= '0' && r <= '9' {
				digits++
			}
		}
		return digits >= 7
	case site.ValidateFlaky:
		// Deterministically accept about half of all values: models forms
		// that reject some syntactically plausible Faker data, forcing the
		// crawler's retry loop.
		h := fnv.New32a()
		h.Write([]byte(value))
		return h.Sum32()%2 == 0
	default:
		return true
	}
}

// Transport adapts a Registry into an http.RoundTripper so browsers can
// crawl the whole corpus in-process.
type Transport struct {
	Registry *Registry
}

// recorded is a pooled in-process response recorder: the ResponseWriter a
// handler writes into, the http.Response handed back to the caller, and the
// body reader are one recycled allocation. The graph returns to the pool
// when the caller closes the response body (which net/http clients must do
// anyway); a caller that never closes merely forfeits the recycle. Strings
// handed out of the header map survive recycling because strings are
// immutable; the map and buffers themselves are reset on reuse.
//
// The recycling tightens the stdlib response contract: the response AND
// everything reachable from it — Header included — is valid only until
// Body.Close returns. Callers (and wrapping transports, like the chaos
// injector) must finish reading headers before closing, and must not close
// an inner body early while passing the response on.
type recorded struct {
	header http.Header
	body   bytes.Buffer
	code   int

	resp  http.Response
	rbody recordedBody
}

type recordedBody struct {
	bytes.Reader
	rec *recorded
}

// Close implements io.Closer and returns the recorder to the pool.
// Double-close is a no-op.
func (b *recordedBody) Close() error {
	if rec := b.rec; rec != nil {
		b.rec = nil
		recordedPool.Put(rec)
	}
	return nil
}

var recordedPool = sync.Pool{New: func() any {
	return &recorded{header: make(http.Header, 4)}
}}

func (r *recorded) Header() http.Header         { return r.header }
func (r *recorded) Write(p []byte) (int, error) { return r.body.Write(p) }

// WriteHeader records the first status code, like net/http's real writer.
func (r *recorded) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

// response assembles the http.Response for the recorded exchange.
func (r *recorded) response(req *http.Request) *http.Response {
	code := r.code
	if code == 0 {
		code = http.StatusOK
	}
	r.rbody.Reader.Reset(r.body.Bytes())
	r.rbody.rec = r
	r.resp = http.Response{
		Status:        http.StatusText(code),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        r.header,
		Body:          &r.rbody,
		ContentLength: int64(r.body.Len()),
		Request:       req,
	}
	return &r.resp
}

// RoundTrip implements http.RoundTripper.
func (t Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := recordedPool.Get().(*recorded)
	clear(rec.header)
	rec.body.Reset()
	rec.code = 0
	t.Registry.ServeHTTP(rec, req)
	return rec.response(req), nil
}

// Listen binds a single site to a real TCP listener for end-to-end runs,
// returning the test server (close it when done). The site is served at the
// listener's address regardless of its virtual Host.
func Listen(s *site.Site) *httptest.Server {
	h := newSiteHandler(s)
	return httptest.NewServer(h)
}
