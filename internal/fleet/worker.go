package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/farm"
)

// WorkerConfig configures one fleet worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base address ("host:port" or a full
	// http:// URL).
	Coordinator string
	// Name identifies this worker in leases, logs, and the fleet status
	// view.
	Name string
	// Params must match the coordinator's; the coordinator refuses the
	// worker otherwise.
	Params Params
	// Root is the fleet journal root; each lease journals into
	// ShardDir(Root, lease).
	Root string
	// Crawl runs one lease: crawl feed indices [l.Start, l.End), skipping
	// l.Completed, journaling finished sessions into dir, and return the
	// shard's statistics. The fleet layer supplies lease acquisition,
	// heartbeats, and result submission around it.
	Crawl func(l Lease, dir string) (farm.Stats, error)
	// Snapshot, when non-nil, is polled by the heartbeat loop for the live
	// progress of the lease currently crawling — typically backed by a
	// fresh farm.Monitor per Crawl call.
	Snapshot func() Progress
	// HeartbeatEvery is the heartbeat interval (default
	// DefaultHeartbeatEvery).
	HeartbeatEvery time.Duration
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Client overrides the HTTP client (tests); nil uses a short-timeout
	// default.
	Client *http.Client
}

// worker is the running state behind RunWorker.
type worker struct {
	cfg  WorkerConfig
	base string
	hc   *http.Client
	// connected flips after the first successful exchange (atomic: the
	// heartbeat goroutine posts concurrently with the lease loop);
	// afterwards a connection-refused coordinator means the fleet run is
	// over (the coordinator reports, then exits) rather than not yet
	// started.
	connected      atomic.Bool
	startupRetries int
}

// refusedError marks an answer the coordinator gave deliberately (e.g. a
// parameter mismatch, HTTP 409) — fatal immediately, never retried like a
// transport failure.
type refusedError struct{ msg string }

func (e refusedError) Error() string { return e.msg }

// RunWorker joins the fleet at cfg.Coordinator and crawls leases until the
// coordinator reports the feed done. It returns nil on a completed run —
// including when the coordinator has already shut down after completion —
// and an error when the coordinator refuses the worker (parameter
// mismatch) or was never reachable.
func RunWorker(cfg WorkerConfig) error {
	if cfg.Crawl == nil {
		return fmt.Errorf("fleet: RunWorker requires a Crawl callback")
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	base := cfg.Coordinator
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	w := &worker{cfg: cfg, base: strings.TrimRight(base, "/"), hc: hc}
	for {
		var resp LeaseResponse
		if err := w.post(PathLease, LeaseRequest{Worker: cfg.Name, Params: cfg.Params}, &resp); err != nil {
			if done, derr := w.lostCoordinator("requesting lease", err); done {
				return derr
			}
			continue
		}
		switch {
		case resp.Done:
			w.logf("fleet: coordinator reports feed complete; worker %s exiting", cfg.Name)
			return nil
		case resp.Wait:
			retry := time.Duration(resp.RetryMs) * time.Millisecond
			if retry <= 0 {
				retry = 250 * time.Millisecond
			}
			time.Sleep(retry)
			continue
		case resp.Lease == nil:
			return fmt.Errorf("fleet: coordinator sent an empty lease response")
		}
		l := *resp.Lease
		dir := ShardDir(cfg.Root, l)
		w.logf("fleet: worker %s crawling lease %d %s (attempt %d) into %s",
			cfg.Name, l.ID, l.Range(), l.Attempt, dir)
		stop := w.startHeartbeats(l)
		stats, err := cfg.Crawl(l, dir)
		stop()
		if err != nil {
			return fmt.Errorf("fleet: crawling lease %d %s: %w", l.ID, l.Range(), err)
		}
		var res ResultResponse
		if err := w.post(PathResult, ResultRequest{Worker: cfg.Name, LeaseID: l.ID, Attempt: l.Attempt, Stats: stats}, &res); err != nil {
			if done, derr := w.lostCoordinator("submitting result", err); done {
				return derr
			}
			continue
		}
		if !res.Accepted {
			// The shard journal stays on disk but is excluded from the
			// merge; the re-issued attempt's journal is authoritative.
			w.logf("fleet: result for lease %d %s rejected (%s); continuing", l.ID, l.Range(), res.Reason)
		}
	}
}

// lostCoordinator decides what an unreachable coordinator means. Before
// the first successful exchange it is a startup failure worth retrying
// briefly and then reporting; after it, the expected shutdown order is
// workers-outlive-coordinator, so it means the run completed.
func (w *worker) lostCoordinator(during string, err error) (done bool, _ error) {
	if _, refused := err.(refusedError); refused {
		return true, err
	}
	if w.connected.Load() {
		w.logf("fleet: coordinator gone while %s (%v); assuming run complete, worker %s exiting", during, err, w.cfg.Name)
		return true, nil
	}
	if w.startupRetries++; w.startupRetries > 20 {
		return true, fmt.Errorf("fleet: coordinator %s unreachable: %w", w.base, err)
	}
	time.Sleep(250 * time.Millisecond)
	return false, nil
}

// startHeartbeats renews lease l every HeartbeatEvery until the returned
// stop function is called. Heartbeat failures are logged, never fatal: the
// next beat may succeed, and if the lease meanwhile expired the result
// submission is where the worker finds out.
func (w *worker) startHeartbeats(l Lease) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(w.cfg.HeartbeatEvery)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				var p Progress
				if w.cfg.Snapshot != nil {
					p = w.cfg.Snapshot()
				}
				var resp HeartbeatResponse
				err := w.post(PathHeartbeat, HeartbeatRequest{Worker: w.cfg.Name, LeaseID: l.ID, Attempt: l.Attempt, Progress: p}, &resp)
				if err == nil && !resp.Valid {
					w.logf("fleet: heartbeat for lease %d %s no longer valid (lease re-issued); finishing shard anyway", l.ID, l.Range())
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// post sends one JSON request and decodes the JSON response. A non-2xx
// status becomes an error carrying the coordinator's message (parameter
// mismatches arrive this way, as HTTP 409).
func (w *worker) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("fleet: encoding %s request: %w", path, err)
	}
	r, err := w.hc.Post(w.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 4<<10))
		return refusedError{msg: fmt.Sprintf("fleet: coordinator %s: %s", r.Status, strings.TrimSpace(string(msg)))}
	}
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		return fmt.Errorf("fleet: decoding %s response: %w", path, err)
	}
	w.connected.Store(true)
	return nil
}

func (w *worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}
