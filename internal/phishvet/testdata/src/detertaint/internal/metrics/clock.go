// Package metrics mimics the production clock seam. The wallclock rule
// exempts exactly this file (internal/metrics/clock.go), which is what
// makes the seam a taint *source*: code elsewhere can read the clock
// through it without a wallclock finding, so only flow analysis can tell
// whether the reading ends up in journaled bytes.
package metrics

import "time"

var now = time.Now

// Now is the sanctioned wall-clock read.
func Now() time.Time { return now() }

// Stopwatch measures elapsed wall time through the seam.
type Stopwatch struct{ start time.Time }

func NewStopwatch() Stopwatch { return Stopwatch{start: now()} }

// Elapsed is a taint source: its result is nondeterministic per run.
func (s Stopwatch) Elapsed() time.Duration { return now().Sub(s.start) }
