// The benchmark harness: one benchmark per table and figure in the paper's
// evaluation (see the experiment index in DESIGN.md), plus ablation benches
// for the design choices the crawler rests on. Each benchmark reports the
// reproduced quantities as custom metrics so `go test -bench` output doubles
// as a results table.
//
// The corpus scale is controlled by the PHISH_BENCH_SITES environment
// variable (default 1200); the paper's full scale is 51,859.
package repro_test

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/brands"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/farm"
	"repro/internal/fielddata"
	"repro/internal/fieldspec"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/ocr"
	"repro/internal/pagegen"
	"repro/internal/raster"
	"repro/internal/textclass"
	"repro/internal/triage"
	"repro/internal/vision"
)

func benchSites() int {
	if v := os.Getenv("PHISH_BENCH_SITES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 1200
}

// The shared crawled pipeline. Building and crawling once keeps the
// per-table benches focused on the analysis they reproduce.
var (
	once sync.Once
	pipe *core.Pipeline
)

func pipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	once.Do(func() {
		var err error
		pipe, err = core.NewPipeline(core.Options{NumSites: benchSites(), Seed: 42})
		if err != nil {
			panic(err)
		}
		pipe.Crawl()
	})
	return pipe
}

func BenchmarkTable1Summary(b *testing.B) {
	p := pipeline(b)
	var s analysis.Summary
	for i := 0; i < b.N; i++ {
		s = analysis.Summarize(p.Feed, p.Logs)
	}
	b.ReportMetric(float64(s.SeedURLs), "seed-urls")
	b.ReportMetric(float64(s.FilteredURLs), "filtered-urls")
	b.ReportMetric(float64(s.CrawledURLs), "crawled-urls")
	b.ReportMetric(float64(s.CrawledSLDs), "crawled-slds")
}

func BenchmarkTable2Categories(b *testing.B) {
	p := pipeline(b)
	var h *metrics.Histogram
	for i := 0; i < b.N; i++ {
		h = analysis.CategoryCounts(p.Logs)
	}
	top := h.SortedByCount()
	if len(top) > 0 {
		b.ReportMetric(float64(top[0].Count), "top-category-sites")
	}
	b.ReportMetric(float64(len(top)), "categories")
}

func BenchmarkTable3Cloning(b *testing.B) {
	p := pipeline(b)
	var rs []analysis.CloningResult
	for i := 0; i < b.N; i++ {
		rs = analysis.Cloning(p.Logs, p.Gallery, brands.Table3Brands(), 50)
	}
	sum, n := 0.0, 0
	for _, r := range rs {
		if r.Sampled > 0 {
			sum += r.NonClonePct
			n++
		}
	}
	if n > 0 {
		// Paper average: 42%.
		b.ReportMetric(sum/float64(n), "avg-nonclone-pct")
	}
}

func BenchmarkTable4Redirects(b *testing.B) {
	p := pipeline(b)
	var tc analysis.TerminationCounts
	for i := 0; i < b.N; i++ {
		tc = analysis.Termination(p.Logs, p.TermClassifier)
	}
	b.ReportMetric(float64(tc.RedirectSites), "redirect-sites")
	b.ReportMetric(float64(len(tc.RedirectDomains.Keys())), "distinct-domains")
}

// BenchmarkTable5CaptchaAP runs the detector train/val/test protocol of
// Section 5.3.2 at a reduced scale (paper: 10,000/1,000/2,000 pages).
func BenchmarkTable5CaptchaAP(b *testing.B) {
	var res vision.EvalResult
	for i := 0; i < b.N; i++ {
		det, err := vision.Train(pagegen.GenerateSet(1000, 1, pagegen.Config{}), 2)
		if err != nil {
			b.Fatal(err)
		}
		res = vision.Evaluate(det, pagegen.GenerateSet(200, 3, pagegen.Config{}))
	}
	// Paper test mean AP: 92.0.
	b.ReportMetric(res.MeanAP*100, "mean-AP")
	b.ReportMetric(res.APPerClass["button"]*100, "button-AP")
	b.ReportMetric(res.APPerClass["visual-type2"]*100, "visual2-AP")
}

// BenchmarkTable6FieldClassifier runs the 1,000/310 protocol of Section 4.2.
func BenchmarkTable6FieldClassifier(b *testing.B) {
	var f1 float64
	for i := 0; i < b.N; i++ {
		corpus := fielddata.Corpus(4)
		train, test := fielddata.Split(corpus)
		m, err := textclass.Train(train, textclass.TrainConfig{Seed: 4, Epochs: 40})
		if err != nil {
			b.Fatal(err)
		}
		conf := metrics.NewConfusion()
		for _, s := range test {
			pred, _ := m.Predict(s.Text)
			conf.Add(s.Label, pred)
		}
		f1 = conf.MacroF1()
	}
	// Paper: average F1 0.90.
	b.ReportMetric(f1, "macro-F1")
}

func BenchmarkTable7Brands(b *testing.B) {
	p := pipeline(b)
	var h *metrics.Histogram
	for i := 0; i < b.N; i++ {
		h = analysis.BrandCounts(p.Logs)
	}
	top := h.SortedByCount()
	if len(top) > 0 {
		b.ReportMetric(float64(top[0].Count), "top-brand-sites")
	}
}

func BenchmarkFigure7FieldDistribution(b *testing.B) {
	p := pipeline(b)
	var d analysis.FieldDistribution
	for i := 0; i < b.N; i++ {
		d = analysis.FieldsAcrossPages(p.Logs)
	}
	b.ReportMetric(float64(d.PerType.Get(string(fieldspec.Password))), "password-pages")
	b.ReportMetric(float64(d.PerType.Get(string(fieldspec.Email))), "email-pages")
	b.ReportMetric(float64(d.PerType.Get(string(fieldspec.Code))), "code-pages")
}

func BenchmarkFigure8PageHistogram(b *testing.B) {
	p := pipeline(b)
	var h map[int]int
	for i := 0; i < b.N; i++ {
		h = analysis.PageCountHistogram(p.Logs)
	}
	total := 0
	for _, v := range h {
		total += v
	}
	// Paper: 23,446 multi-page sites = 45%.
	b.ReportMetric(100*float64(total)/float64(len(p.Logs)), "multipage-pct")
	b.ReportMetric(float64(h[3]), "three-page-sites")
}

func BenchmarkFigure9FieldsPerStage(b *testing.B) {
	p := pipeline(b)
	var rows []analysis.StageField
	for i := 0; i < b.N; i++ {
		rows = analysis.FieldsPerStage(p.Logs)
	}
	// Login data should concentrate in stage 1 (Figure 9's headline shape).
	for _, r := range rows {
		if r.Type == fieldspec.Password && r.Stage == 1 {
			b.ReportMetric(r.Pct, "password-stage1-pct")
		}
	}
}

func BenchmarkOCRAndVisualSubmitRates(b *testing.B) {
	p := pipeline(b)
	var r analysis.ObfuscationRates
	for i := 0; i < b.N; i++ {
		r = analysis.Obfuscation(p.Logs)
	}
	// Paper: 27% and 12%.
	b.ReportMetric(r.OCRRate*100, "ocr-pct")
	b.ReportMetric(r.VisualSubmitRate*100, "visual-submit-pct")
}

func BenchmarkKeyloggingMeasurement(b *testing.B) {
	p := pipeline(b)
	var k analysis.KeyloggingCounts
	for i := 0; i < b.N; i++ {
		k = analysis.Keylogging(p.Logs)
	}
	// Paper: 18,745 / 642 / 75.
	b.ReportMetric(float64(k.Monitoring), "monitoring")
	b.ReportMetric(float64(k.ImmediateRequest), "immediate-request")
	b.ReportMetric(float64(k.DataExfiltrated), "exfiltrated")
}

func BenchmarkDoubleLogin(b *testing.B) {
	p := pipeline(b)
	n := 0
	for i := 0; i < b.N; i++ {
		n = analysis.DoubleLoginCount(p.Logs)
	}
	// Paper: 400.
	b.ReportMetric(float64(n), "double-login-sites")
}

func BenchmarkTerminationPatterns(b *testing.B) {
	p := pipeline(b)
	var tc analysis.TerminationCounts
	for i := 0; i < b.N; i++ {
		tc = analysis.Termination(p.Logs, p.TermClassifier)
	}
	// Paper: 5,403 final pages; 966/125/1,599/176 by category.
	b.ReportMetric(float64(tc.FinalNoInputSites), "final-pages")
	b.ReportMetric(float64(tc.ByCategory.Get("success")), "success")
	b.ReportMetric(float64(tc.ByCategory.Get("http-error")), "http-errors")
	b.ReportMetric(float64(tc.ByCategory.Get("awareness")), "awareness")
	b.ReportMetric(float64(tc.AwarenessCampaigns), "awareness-campaigns")
}

func BenchmarkClickThrough(b *testing.B) {
	p := pipeline(b)
	var ct analysis.ClickThroughCounts
	for i := 0; i < b.N; i++ {
		ct = analysis.ClickThrough(p.Logs)
	}
	// Paper: 2,933 total; 2,713 first page; 220 internal.
	b.ReportMetric(float64(ct.Total), "total")
	b.ReportMetric(float64(ct.FirstPage), "first-page")
	b.ReportMetric(float64(ct.Internal), "internal")
}

func BenchmarkCaptchaPrevalence(b *testing.B) {
	p := pipeline(b)
	var cc analysis.CaptchaCounts
	for i := 0; i < b.N; i++ {
		cc = analysis.Captchas(p.Logs, p.CaptchaAnalysisOptions())
	}
	// Paper: 2,608 total; 1,856 reCAPTCHA; 640 hCaptcha; 34 text; 78 visual.
	b.ReportMetric(float64(cc.Total), "total")
	b.ReportMetric(float64(cc.Recaptcha), "recaptcha")
	b.ReportMetric(float64(cc.Hcaptcha), "hcaptcha")
	b.ReportMetric(float64(cc.CustomText), "custom-text")
	b.ReportMetric(float64(cc.CustomVisual), "custom-visual")
}

// BenchmarkCaptchaRealWorldEval reproduces the real-image evaluation of
// Section 5.3.2: run the detector over crawled screenshots, verify with the
// heuristics, and compare against ground truth (paper: precision 89.2%
// before filtering, 100% after; recall 87.8%).
func BenchmarkCaptchaRealWorldEval(b *testing.B) {
	p := pipeline(b)
	truthHasCustom := map[string]bool{}
	for _, s := range p.Corpus.Sites {
		truthHasCustom[s.ID] = s.Truth.HasCaptcha && s.Truth.CaptchaProvider == "custom"
	}
	var tp, fp, fn int
	for i := 0; i < b.N; i++ {
		tp, fp, fn = 0, 0, 0
		cc := analysis.CaptchaOptions{Exemplars: p.CaptchaExemplars}
		for _, l := range p.Logs {
			measured := siteHasVerifiedCustomCaptcha(l, cc)
			switch {
			case measured && truthHasCustom[l.SiteID]:
				tp++
			case measured && !truthHasCustom[l.SiteID]:
				fp++
			case !measured && truthHasCustom[l.SiteID]:
				fn++
			}
		}
	}
	prec, rec := metrics.PrecisionRecall(tp, fp, fn)
	b.ReportMetric(prec*100, "precision-pct")
	b.ReportMetric(rec*100, "recall-pct")
}

func siteHasVerifiedCustomCaptcha(l *crawler.SessionLog, opts analysis.CaptchaOptions) bool {
	cc := analysis.Captchas([]*crawler.SessionLog{l}, opts)
	return cc.CustomText > 0 || cc.CustomVisual > 0
}

func BenchmarkTwoFactor(b *testing.B) {
	p := pipeline(b)
	var tf analysis.TwoFactorCounts
	for i := 0; i < b.N; i++ {
		tf = analysis.TwoFactor(p.Logs)
	}
	// Paper: 8,893 code-field sites; 1,032 OTP.
	b.ReportMetric(float64(tf.CodeFieldSites), "code-sites")
	b.ReportMetric(float64(tf.OTPSites), "otp-sites")
}

func BenchmarkCampaignClustering(b *testing.B) {
	p := pipeline(b)
	n := 0
	for i := 0; i < b.N; i++ {
		n = analysis.ClusterCampaigns(p.Logs)
	}
	b.ReportMetric(float64(n), "clusters")
	b.ReportMetric(float64(p.Corpus.Campaigns), "generated-campaigns")
}

// BenchmarkFarmThroughput measures end-to-end crawl throughput (Section
// 4.6: the paper sustains >1,000 sites/day on 30 parallel sessions).
func BenchmarkFarmThroughput(b *testing.B) {
	p := pipeline(b)
	urls := p.Feed.URLs()
	if len(urls) > 100 {
		urls = urls[:100]
	}
	var stats farm.Stats
	for i := 0; i < b.N; i++ {
		_, stats = farm.Run(farm.Config{Workers: 30, Crawler: p.Crawler}, urls)
	}
	b.ReportMetric(stats.SitesPerDay(), "sites/day")
}

// --- Hot-path micro-benches (perf harness) ---
//
// These three benches capture the visual hot path's cost so optimizations
// land with a reproducible before/after number (see the "Performance"
// section of README.md). They deliberately exercise the exact call shapes
// the crawler uses per page: one detector pass, the per-field OCR label
// search, and the end-to-end farm loop.

// BenchmarkDetect measures one full detector pass (proposals + features +
// NMS) over a generated page screenshot.
func BenchmarkDetect(b *testing.B) {
	det, err := vision.Train(pagegen.GenerateSet(200, 1, pagegen.Config{}), 2)
	if err != nil {
		b.Fatal(err)
	}
	pages := pagegen.GenerateSet(8, 9, pagegen.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(pages[i%len(pages)].Image)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/page")
}

// BenchmarkOCRPage measures the OCR work one crawled page costs: the
// label search left of and above each input box (Section 4.1 step 3),
// repeated for a form's worth of fields against one screenshot. It follows
// the crawler's pattern: binarize the screenshot once into a (pooled) ink
// mask, then run every field's label search against it.
func BenchmarkOCRPage(b *testing.B) {
	img := ocrBenchPage()
	eng := ocr.New()
	boxes := ocrBenchBoxes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := ocr.NewMask(img)
		for _, box := range boxes {
			eng.TextNearMask(m, box, 150)
		}
		m.Release()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/page")
}

// ocrBenchPage draws a login-style form whose labels sit left of and above
// the input boxes, mimicking the screenshots the crawler OCRs.
func ocrBenchPage() *raster.Image {
	img := raster.New(800, 600, raster.White)
	labels := []string{"Email address", "Password", "Card number", "Security code"}
	for i, label := range labels {
		y := 80 + i*90
		img.DrawString(label, 60, y, raster.Black)
		img.Outline(raster.R(60, y+20, 220, 18), raster.Gray)
		img.DrawString("Account "+label, 320, y+24, raster.Black)
	}
	return img
}

func ocrBenchBoxes() []raster.Rect {
	out := make([]raster.Rect, 0, 4)
	for i := 0; i < 4; i++ {
		out = append(out, raster.R(60, 100+i*90, 220, 18))
	}
	return out
}

// BenchmarkCrawlThroughput measures end-to-end farm throughput on a small
// corpus, reporting sites/sec — the number behind the paper's >1,000
// sites/day claim (Section 4.6).
func BenchmarkCrawlThroughput(b *testing.B) {
	p, err := core.NewPipeline(core.Options{NumSites: 60, Seed: 7, DetectorTrainPages: 150})
	if err != nil {
		b.Fatal(err)
	}
	urls := p.Feed.URLs()
	if len(urls) > 50 {
		urls = urls[:50]
	}
	b.ReportAllocs()
	b.ResetTimer()
	var stats farm.Stats
	for i := 0; i < b.N; i++ {
		_, stats = farm.Run(farm.Config{Workers: 16, Crawler: p.Crawler}, urls)
	}
	b.ReportMetric(float64(stats.Sites)/stats.Elapsed.Seconds(), "sites/sec")
	b.ReportMetric(stats.Elapsed.Seconds()*1e9/float64(stats.Sites), "ns/site")
}

// BenchmarkCrawlThroughputJournalGroup is the durable counterpart of
// BenchmarkCrawlThroughput: the same farm run, but every finished session is
// streamed into an on-disk journal under the group-commit fsync policy, the
// configuration a long crawl actually ships with. Comparing its sites/sec
// against the in-memory benchmark measures the full cost of durability; the
// acceptance bar is >=0.8x of the in-memory figure.
func BenchmarkCrawlThroughputJournalGroup(b *testing.B) {
	p, err := core.NewPipeline(core.Options{NumSites: 60, Seed: 7, DetectorTrainPages: 150})
	if err != nil {
		b.Fatal(err)
	}
	urls := p.Feed.URLs()
	if len(urls) > 50 {
		urls = urls[:50]
	}
	b.ReportAllocs()
	b.ResetTimer()
	var stats farm.Stats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		j, err := journal.Open(b.TempDir(), journal.Options{Sync: journal.SyncGroup})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		stats, err = farm.RunStream(farm.Config{
			Workers:        16,
			Crawler:        p.Crawler,
			SinkConcurrent: true,
			Sink: func(_ int, lg *crawler.SessionLog) error {
				return j.AppendSession(lg)
			},
		}, urls)
		if err != nil {
			b.Fatal(err)
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.Sites)/stats.Elapsed.Seconds(), "sites/sec")
	b.ReportMetric(stats.Elapsed.Seconds()*1e9/float64(stats.Sites), "ns/site")
}

// BenchmarkTriage measures the triage funnel on a clone-heavy feed (240
// sites clamped into campaigns of >= 12 members): the attribution hit-rate
// — the fraction of feed URLs resolved without a full browser session —
// and the per-URL fast-path latency, the cost of synthesizing an
// attributed session log from the probe fingerprint instead of crawling.
func BenchmarkTriage(b *testing.B) {
	p, err := core.NewPipeline(core.Options{
		NumSites:           240,
		Seed:               42,
		DetectorTrainPages: 150,
		MinCampaignSize:    12,
		Triage:             &triage.Options{},
	})
	if err != nil {
		b.Fatal(err)
	}
	urls := p.Feed.URLs()
	fn := p.Triage.Funnel()
	if fn.Attributed == 0 {
		b.Fatal("clone-heavy feed produced no attributions")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for idx, u := range urls {
			p.Triage.FastPath(idx, u)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(urls)), "ns/fast-path")
	b.ReportMetric(100*float64(fn.Attributed)/float64(fn.Total), "hit-rate-pct")
	b.ReportMetric(float64(fn.Full), "full-sessions")
	b.ReportMetric(float64(p.Triage.Campaigns), "campaigns")
}

// --- Ablations (DESIGN.md Section 5) ---

// BenchmarkAblationNoOCR disables the OCR label fallback and measures how
// many input fields lose their classification.
func BenchmarkAblationNoOCR(b *testing.B) {
	p := pipeline(b)
	urls := p.Feed.URLs()
	if len(urls) > 150 {
		urls = urls[:150]
	}
	classified := func(logs []*crawler.SessionLog) (known, total int) {
		for _, l := range logs {
			for _, pg := range l.Pages {
				for _, f := range pg.Fields {
					total++
					if f.Label != fieldspec.Unknown {
						known++
					}
				}
			}
		}
		return
	}
	var withPct, withoutPct float64
	for i := 0; i < b.N; i++ {
		base := *p.Crawler
		logsWith, _ := farm.Run(farm.Config{Workers: 16, Crawler: &base}, urls)
		noOCR := *p.Crawler
		noOCR.DisableOCR = true
		logsWithout, _ := farm.Run(farm.Config{Workers: 16, Crawler: &noOCR}, urls)
		k1, t1 := classified(logsWith)
		k2, t2 := classified(logsWithout)
		if t1 > 0 && t2 > 0 {
			withPct = 100 * float64(k1) / float64(t1)
			withoutPct = 100 * float64(k2) / float64(t2)
		}
	}
	b.ReportMetric(withPct, "classified-pct")
	b.ReportMetric(withoutPct, "classified-pct-no-ocr")
}

// BenchmarkAblationURLOnly disables DOM-hash transition detection and
// measures how many multi-page flows the crawler prematurely abandons.
func BenchmarkAblationURLOnly(b *testing.B) {
	p := pipeline(b)
	urls := p.Feed.URLs()
	if len(urls) > 150 {
		urls = urls[:150]
	}
	multiCount := func(logs []*crawler.SessionLog) int {
		n := 0
		for _, l := range logs {
			if analysis.IsMultiPage(l) {
				n++
			}
		}
		return n
	}
	var full, urlOnly int
	for i := 0; i < b.N; i++ {
		base := *p.Crawler
		logsFull, _ := farm.Run(farm.Config{Workers: 16, Crawler: &base}, urls)
		ab := *p.Crawler
		ab.URLOnlyTransitions = true
		logsURL, _ := farm.Run(farm.Config{Workers: 16, Crawler: &ab}, urls)
		full = multiCount(logsFull)
		urlOnly = multiCount(logsURL)
	}
	b.ReportMetric(float64(full), "multipage-domhash")
	b.ReportMetric(float64(urlOnly), "multipage-urlonly")
}

// BenchmarkAblationNoVisualSubmit removes the visual detection rung of the
// submit ladder and measures completion loss.
func BenchmarkAblationNoVisualSubmit(b *testing.B) {
	p := pipeline(b)
	urls := p.Feed.URLs()
	if len(urls) > 150 {
		urls = urls[:150]
	}
	submitted := func(logs []*crawler.SessionLog) int {
		n := 0
		for _, l := range logs {
			for _, pg := range l.Pages {
				if pg.SubmitMethod != "" {
					n++
					break
				}
			}
		}
		return n
	}
	var with, without int
	for i := 0; i < b.N; i++ {
		base := *p.Crawler
		logsWith, _ := farm.Run(farm.Config{Workers: 16, Crawler: &base}, urls)
		ab := *p.Crawler
		ab.Detector = nil
		logsWithout, _ := farm.Run(farm.Config{Workers: 16, Crawler: &ab}, urls)
		with = submitted(logsWith)
		without = submitted(logsWithout)
	}
	b.ReportMetric(float64(with), "sites-submitted")
	b.ReportMetric(float64(without), "sites-submitted-novisual")
}

// BenchmarkAblationConfidenceThreshold sweeps the field classifier's reject
// threshold, reporting coverage at the paper's 0.8 operating point.
func BenchmarkAblationConfidenceThreshold(b *testing.B) {
	corpus := fielddata.Corpus(4)
	train, test := fielddata.Split(corpus)
	m, err := textclass.Train(train, textclass.TrainConfig{Seed: 4, Epochs: 40})
	if err != nil {
		b.Fatal(err)
	}
	var covered, accurate float64
	for i := 0; i < b.N; i++ {
		kept, correct := 0, 0
		for _, s := range test {
			label, _ := m.PredictThreshold(s.Text, crawler.ConfidenceThreshold, "unknown")
			if label == "unknown" {
				continue
			}
			kept++
			if label == s.Label {
				correct++
			}
		}
		covered = 100 * float64(kept) / float64(len(test))
		if kept > 0 {
			accurate = 100 * float64(correct) / float64(kept)
		}
	}
	b.ReportMetric(covered, "coverage-pct")
	b.ReportMetric(accurate, "accuracy-pct")
}

// BenchmarkAblationMonolingual quantifies the paper's Section 6 language
// limitation: an English-only field classifier versus the multilingual one
// on the corpus's localized (French/Spanish) labels.
func BenchmarkAblationMonolingual(b *testing.B) {
	mono, err := fielddata.TrainDefault(3)
	if err != nil {
		b.Fatal(err)
	}
	multi, err := fielddata.TrainMultilingual(3)
	if err != nil {
		b.Fatal(err)
	}
	p := pipeline(b)
	langOf := map[string]string{}
	for _, s := range p.Corpus.Sites {
		langOf[s.ID] = s.Truth.Language
	}
	var monoPct, multiPct float64
	for i := 0; i < b.N; i++ {
		var monoHit, multiHit, total int
		for _, l := range p.Logs {
			if langOf[l.SiteID] == "en" || langOf[l.SiteID] == "" {
				continue
			}
			for _, pg := range l.Pages {
				for _, f := range pg.Fields {
					if f.Description == "" {
						continue
					}
					total++
					if lbl, _ := mono.PredictThreshold(f.Description, crawler.ConfidenceThreshold, "unknown"); lbl != "unknown" {
						monoHit++
					}
					if lbl, _ := multi.PredictThreshold(f.Description, crawler.ConfidenceThreshold, "unknown"); lbl != "unknown" {
						multiHit++
					}
				}
			}
		}
		if total > 0 {
			monoPct = 100 * float64(monoHit) / float64(total)
			multiPct = 100 * float64(multiHit) / float64(total)
		}
	}
	b.ReportMetric(monoPct, "mono-coverage-pct")
	b.ReportMetric(multiPct, "multi-coverage-pct")
}
