package analysis

import (
	"repro/internal/brands"
	"repro/internal/crawler"
	"repro/internal/visualphish"
)

// BrandGallery builds the VisualPhishNet-style gallery from the brand
// catalogue's legitimate-site designs.
func BrandGallery() *visualphish.Gallery {
	g := visualphish.NewGallery()
	for _, b := range brands.All() {
		g.AddCropped(b.Name, b.LegitScreenshot())
	}
	return g
}

// CloningResult holds the Table 3 measurement for one brand.
type CloningResult struct {
	Brand       string
	Sampled     int
	NonCloning  int
	NonClonePct float64
}

// Cloning reproduces Table 3: for each requested brand, sample up to
// perBrand first-page screenshots (as embeddings) and count how many do NOT
// match the brand's legitimate design in the gallery — the pages that
// impersonate without cloning. The paper samples 50 per brand across
// campaigns.
func Cloning(logs []*crawler.SessionLog, g *visualphish.Gallery, brandNames []string, perBrand int) []CloningResult {
	wanted := map[string]bool{}
	for _, b := range brandNames {
		wanted[b] = true
	}
	sampled := map[string][]*crawler.SessionLog{}
	seenCampaign := map[string]int{}
	for _, l := range logs {
		if !wanted[l.Brand] || len(l.Pages) == 0 {
			continue
		}
		if len(sampled[l.Brand]) >= perBrand {
			continue
		}
		// Roughly equal representation per campaign, as in the paper.
		key := l.Brand + "|" + l.CampaignID
		if seenCampaign[key] >= 5 {
			continue
		}
		seenCampaign[key]++
		sampled[l.Brand] = append(sampled[l.Brand], l)
	}
	var out []CloningResult
	for _, b := range brandNames {
		res := CloningResult{Brand: b, Sampled: len(sampled[b])}
		for _, l := range sampled[b] {
			match, _ := g.MatchEmbedding(l.FirstPageEmbedding)
			if match != b {
				res.NonCloning++
			}
		}
		if res.Sampled > 0 {
			res.NonClonePct = 100 * float64(res.NonCloning) / float64(res.Sampled)
		}
		out = append(out, res)
	}
	return out
}
