package core

import "testing"

// BenchmarkNewPipelineCold measures full construction including model
// training: the cache is dropped every iteration, so this is what the first
// pipeline of a process pays.
func BenchmarkNewPipelineCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetModelCache()
		if _, err := NewPipeline(Options{NumSites: 200, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewPipelineWarm measures construction against a populated model
// cache — every pipeline after the first. The cold/warm ratio is the model
// sharing win.
func BenchmarkNewPipelineWarm(b *testing.B) {
	if _, err := NewPipeline(Options{NumSites: 200, Seed: 42}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPipeline(Options{NumSites: 200, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}
