// Package journal mimics the production record-kind const set: Kind* is
// a closed set, and a switch over it with no default must name every
// member.
package journal

// Kind tags a journal record.
type Kind uint8

const (
	KindSession Kind = 1
	KindStats   Kind = 2
	KindTriage  Kind = 3
)

// A non-exhaustive switch with no default silently drops KindTriage.
func size(k Kind) int {
	switch k { // want "switch over journal record kinds has no default and misses KindTriage"
	case KindSession:
		return 1
	case KindStats:
		return 2
	}
	return 0
}

// Exhaustive coverage: clean.
func name(k Kind) string {
	switch k {
	case KindSession:
		return "session"
	case KindStats:
		return "stats"
	case KindTriage:
		return "triage"
	}
	return ""
}

// A default arm declares the remainder handled: clean.
func isSession(k Kind) bool {
	switch k {
	case KindSession:
		return true
	default:
		return false
	}
}
