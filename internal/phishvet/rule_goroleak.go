package phishvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The goroleak rule flags goroutines launched with no reachable stop
// path. The crawl's kill/resume and fleet-merge guarantees assume every
// background loop — commit loops, heartbeats, progress tickers — parks on
// a signal it can be released from; a goroutine spinning in a `for {}`
// with no select, channel receive, Wait, or return outlives the run and
// keeps mutating shared state through shutdown.
//
// Two shapes are checked:
//   - A goroutine body the analyzer can see (function literal or
//     module-local function): every infinite for-loop in it must contain a
//     select, a channel receive, a range over a channel, a Wait call, or a
//     return statement.
//   - An external callee (e.g. (*http.Server).Serve): unknowable, so the
//     launch must pass a context or channel argument — otherwise the stop
//     path lives outside what the analyzer can verify and the site needs a
//     justified suppression naming it (the repo's `go srv.Serve(ln)` sites
//     document their deferred Close this way).

func goroleakRule() Rule {
	return Rule{
		Name: "goroleak",
		Doc:  "goroutines with no reachable stop path (no select/receive/Wait/return in their loops)",
		Run: func(p *Pass) {
			for _, f := range p.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					checkGoStmt(p, g)
					return true
				})
			}
		},
	}
}

func checkGoStmt(p *Pass, g *ast.GoStmt) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		checkGoroutineBody(p, g, lit.Body)
		return
	}
	fn := staticCallee(p.Pkg.Info, g.Call)
	if fn == nil {
		return // function value: unknowable, covered by review
	}
	if fi := p.graph().Info(fn); fi != nil && fi.Decl.Body != nil {
		checkGoroutineBody(p, g, fi.Decl.Body)
		return
	}
	// External callee: require an explicit stop conduit in the arguments.
	for _, arg := range g.Call.Args {
		if tv, ok := p.Pkg.Info.Types[arg]; ok && tv.Type != nil && isStopConduit(tv.Type) {
			return
		}
	}
	p.Reportf(g.Pos(),
		"goroutine runs external %s with no context or stop-channel argument: ensure a shutdown path exists and justify with //phishvet:ignore goroleak",
		funcDisplay(fn))
}

// isStopConduit reports whether t can carry a stop signal: a channel or a
// context.Context.
func isStopConduit(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkGoroutineBody requires every infinite for-loop in the body to
// contain some statement that can release it.
func checkGoroutineBody(p *Pass, g *ast.GoStmt, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !loopHasStopPath(p, loop.Body) {
			p.Reportf(g.Pos(),
				"goroutine loops forever with no stop path (no select, channel receive, Wait, or return): it outlives the crawl — park it on a done channel or context")
		}
		return true
	})
}

func loopHasStopPath(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.ReturnStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := p.Pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if fn := staticCallee(p.Pkg.Info, n); fn != nil &&
				fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
				found = true
			}
		}
		return !found
	})
	return found
}
