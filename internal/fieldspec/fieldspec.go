// Package fieldspec defines the input-field data-type taxonomy used
// throughout the system: the 18 field categories of Table 6 in the paper,
// their higher-level context groups (Login, Personal, Social, Financial,
// Other — Figure 7), and the keyword banks that tie natural-language field
// labels to categories. The keyword banks serve two roles: they parameterize
// the synthetic corpus (sites label their inputs with phrases drawn from
// them) and they seed the labelled training data for the field classifier.
package fieldspec

import (
	"sort"
	"strings"
)

// Type is an input-field data type, e.g. Email or Password.
type Type string

// The complete label set from Table 6 of the paper, plus Unknown which the
// classifier emits when its confidence falls below threshold.
const (
	Email    Type = "email"
	UserID   Type = "userid"
	Password Type = "password"

	Name     Type = "name"
	Address  Type = "address"
	Phone    Type = "phone"
	City     Type = "city"
	State    Type = "state"
	Question Type = "question"
	Answer   Type = "answer"
	Date     Type = "date"
	Code     Type = "code"

	License Type = "license"
	SSN     Type = "ssn"

	Card    Type = "card"
	ExpDate Type = "expdate"
	CVV     Type = "cvv"

	Search Type = "search"

	Unknown Type = "unknown"
)

// Group is a higher-level context group from Figure 7.
type Group string

// Context groups.
const (
	GroupLogin     Group = "Login"
	GroupPersonal  Group = "Personal"
	GroupSocial    Group = "Social"
	GroupFinancial Group = "Financial"
	GroupOther     Group = "Other"
)

// groups maps every field type to its context group.
var groups = map[Type]Group{
	Email: GroupLogin, UserID: GroupLogin, Password: GroupLogin,
	Name: GroupPersonal, Address: GroupPersonal, Phone: GroupPersonal,
	City: GroupPersonal, State: GroupPersonal, Question: GroupPersonal,
	Answer: GroupPersonal, Date: GroupPersonal, Code: GroupPersonal,
	License: GroupSocial, SSN: GroupSocial,
	Card: GroupFinancial, ExpDate: GroupFinancial, CVV: GroupFinancial,
	Search: GroupOther, Unknown: GroupOther,
}

// GroupOf returns the context group for a field type.
func GroupOf(t Type) Group {
	if g, ok := groups[t]; ok {
		return g
	}
	return GroupOther
}

// All returns every concrete (non-Unknown) field type in a stable order.
func All() []Type {
	out := make([]Type, 0, len(groups)-1)
	for t := range groups {
		if t != Unknown {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllWithUnknown returns every field type including Unknown.
func AllWithUnknown() []Type {
	return append(All(), Unknown)
}

// Valid reports whether t is a known field type (including Unknown).
func Valid(t Type) bool {
	_, ok := groups[t]
	return ok
}

// Keywords maps each field type to the label phrases phishing pages (and
// legitimate sites) use to ask for it. Entries are lower-case; matching is
// token-based.
var Keywords = map[Type][]string{
	Email: {
		"email", "email address", "e-mail", "your email", "enter your email",
		"mail address", "login email", "registered email", "work email",
		"email or phone", "correo", "email id",
	},
	UserID: {
		"user id", "userid", "username", "user name", "login id",
		"account id", "member id", "customer id", "login name",
		"online id", "access id", "user",
	},
	Password: {
		"password", "passwd", "pass word", "your password", "enter password",
		"account password", "login password", "pin password", "pwd",
		"current password", "confirm password", "passcode", "contrasena",
		"mot de passe", "kennwort", "repeat password",
	},
	Name: {
		"name", "full name", "first name", "last name", "surname",
		"given name", "family name", "cardholder name", "name on card",
		"your name", "middle name", "first and last name",
	},
	Address: {
		"address", "street address", "billing address", "home address",
		"address line", "mailing address", "shipping address", "street",
		"residence address", "apt suite", "zip code", "postal code", "zip",
	},
	Phone: {
		"phone", "phone number", "telephone", "mobile", "mobile number",
		"cell phone", "contact number", "tel", "mobile phone",
		"phone no", "cellphone", "daytime phone",
	},
	City: {
		"city", "town", "city name", "your city", "city town",
		"locality", "municipality",
	},
	State: {
		"state", "province", "region", "state province", "county",
		"state region", "territory",
	},
	Question: {
		"security question", "secret question", "challenge question",
		"question", "choose a question", "memorable question",
		"security challenge",
	},
	Answer: {
		"answer", "security answer", "secret answer", "your answer",
		"memorable answer", "mother maiden name", "maiden name",
		"first pet", "pet name", "favorite teacher",
	},
	Date: {
		"date", "date of birth", "birth date", "birthday", "dob",
		"birthdate", "day month year", "dd mm yyyy", "mm dd yyyy",
	},
	Code: {
		"code", "verification code", "otp", "one time password",
		"one-time code", "sms code", "security code sent", "2fa code",
		"auth code", "confirmation code", "access code", "token",
		"enter the code", "6 digit code", "verification pin",
		"two factor", "authentication code", "otp sent to your phone",
		"otp sent to the registered mobile number",
		"verification code sent via sms", "code we sent by text message",
	},
	License: {
		"driver license", "drivers license", "driving licence",
		"license number", "licence number", "dl number", "driver id",
		"driving license number",
	},
	SSN: {
		"ssn", "social security", "social security number",
		"last 4 ssn", "tax id", "national id", "nin", "itin",
		"social insurance number",
	},
	Card: {
		"card number", "credit card", "debit card", "card no",
		"credit card number", "cc number", "pan", "account number card",
		"16 digit card", "visa mastercard", "payment card", "card details",
		"atm card number",
	},
	ExpDate: {
		"expiration", "expiry", "expiration date", "expiry date",
		"exp date", "valid thru", "mm yy", "mm yyyy", "card expiry",
		"good thru",
	},
	CVV: {
		"cvv", "cvc", "cvv2", "security code", "card verification",
		"3 digit", "3 digit code", "cvn", "card security code",
		"code on back",
	},
	Search: {
		"search", "search here", "find", "search query", "keywords",
		"what are you looking for", "search our site",
	},
}

// DefaultValue is the predetermined string the crawler enters into fields
// classified as unknown (Section 4.3).
const DefaultValue = "information"

// CanonicalPhrase returns a representative label phrase for t, used by page
// generators when they need a deterministic label.
func CanonicalPhrase(t Type) string {
	if ks := Keywords[t]; len(ks) > 0 {
		return ks[0]
	}
	return string(t)
}

// PhraseAt returns the i-th (mod len) keyword phrase for t, giving generators
// deterministic variety.
func PhraseAt(t Type, i int) string {
	ks := Keywords[t]
	if len(ks) == 0 {
		return string(t)
	}
	return ks[((i%len(ks))+len(ks))%len(ks)]
}

// GuessFromHTMLType maps an HTML input "type" attribute directly to a field
// type when the markup is honest, or Unknown when it carries no signal.
func GuessFromHTMLType(htmlType string) Type {
	switch strings.ToLower(strings.TrimSpace(htmlType)) {
	case "email":
		return Email
	case "password":
		return Password
	case "tel":
		return Phone
	case "date":
		return Date
	case "search":
		return Search
	default:
		return Unknown
	}
}

// LoginTypes returns the set of login-credential types used by the
// double-login detector (Section 5.2.2): username, email, password, phone.
func LoginTypes() map[Type]bool {
	return map[Type]bool{Email: true, UserID: true, Password: true, Phone: true}
}

// TwoFactorKeywords are the keywords, compiled per Section 5.3.3, whose
// presence in a Code field's label marks the field as a 2FA/OTP request.
var TwoFactorKeywords = []string{
	"otp", "one time", "one-time", "sms", "2fa", "two factor", "two-factor",
	"verification code", "code sent", "authentication code", "text message",
	"mobile number with", "6 digit", "security code sent",
}

// IsTwoFactorLabel reports whether a Code-field label indicates a 2FA
// request.
func IsTwoFactorLabel(label string) bool {
	l := strings.ToLower(label)
	for _, k := range TwoFactorKeywords {
		if strings.Contains(l, k) {
			return true
		}
	}
	return false
}
