// Package feed simulates the OpenPhish premium feed of Section 4.6: a
// stream of reported phishing URLs annotated with the targeted brand and
// industry sector, polluted with a small fraction of benign URLs ("noise")
// that a commercial phishing-detection product filters out before crawling
// (Table 1: 56,027 seed URLs -> 51,859 confirmed).
package feed

import (
	"fmt"
	"math/rand"

	"repro/internal/site"
	"repro/internal/sitegen"
)

// Entry is one feed item.
type Entry struct {
	URL    string
	Brand  string
	Sector string
	// Site is the backing synthetic site (nil for noise entries).
	Site *site.Site
	// Noise marks benign URLs that slipped into the feed.
	Noise bool
}

// Feed is the full simulated feed.
type Feed struct {
	Entries []Entry
}

// noiseHosts are benign sites that occasionally get reported.
var noiseHosts = []string{
	"blog.example.com", "shop.example.org", "news.example.net",
	"static.example.com", "cdn.example.org", "docs.example.net",
}

// FromCorpus wraps a generated corpus as a feed, interleaving noise entries
// at the paper's seed-to-confirmed ratio.
func FromCorpus(c *sitegen.Corpus, seed int64) *Feed {
	rng := rand.New(rand.NewSource(seed))
	noiseN := len(c.Sites) * (sitegen.PaperSeedURLs - sitegen.PaperFilteredSites) / sitegen.PaperFilteredSites
	f := &Feed{Entries: make([]Entry, 0, len(c.Sites)+noiseN)}
	for _, s := range c.Sites {
		f.Entries = append(f.Entries, Entry{
			URL:    s.SeedURL(),
			Brand:  s.Brand,
			Sector: string(s.Category),
			Site:   s,
		})
	}
	for i := 0; i < noiseN; i++ {
		host := noiseHosts[rng.Intn(len(noiseHosts))]
		f.Entries = append(f.Entries, Entry{
			URL:   fmt.Sprintf("http://%s/p/%d", host, rng.Intn(100000)),
			Noise: true,
		})
	}
	rng.Shuffle(len(f.Entries), func(i, j int) {
		f.Entries[i], f.Entries[j] = f.Entries[j], f.Entries[i]
	})
	return f
}

// SeedCount returns the raw feed size (the paper's 56,027 analogue).
func (f *Feed) SeedCount() int { return len(f.Entries) }

// Filter applies the vendor phishing-detection check, returning confirmed
// phishing entries only (the paper's 51,859 analogue).
func (f *Feed) Filter() []Entry {
	var out []Entry
	for _, e := range f.Entries {
		if !e.Noise {
			out = append(out, e)
		}
	}
	return out
}

// URLs returns the confirmed phishing URLs in feed order.
func (f *Feed) URLs() []string {
	filtered := f.Filter()
	out := make([]string, len(filtered))
	for i, e := range filtered {
		out[i] = e.URL
	}
	return out
}
