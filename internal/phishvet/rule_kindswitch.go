package phishvet

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// The kindswitch rule enforces exhaustive switches over the repo's closed
// const sets: journal record kinds and sync policies, session outcomes
// (crawler's and the farm's run-level extras), chaos fault classes, trace
// span kinds. These sets grow — PR 8 added KindTriage and two triage
// outcomes — and a switch in a resume/merge/report path that silently
// falls through a new member is exactly how a record kind becomes data
// corruption instead of a compile-time question.
//
// A switch participates when it has no default clause and at least one
// case resolves to a member of a registered set; it must then cover every
// member of each set it touches. A default arm opts out — the author has
// said what "anything else" means.

// closedSets registers each set by defining-package path segment and
// const-name prefix. Membership is enumerated from the package's type
// information, so the sets track the source without a hand-kept list.
var closedSets = []struct {
	segs   string
	prefix string
	label  string
}{
	{"internal/journal", "Kind", "journal record kinds"},
	{"internal/journal", "Sync", "journal sync policies"},
	{"internal/crawler", "Outcome", "session outcomes"},
	{"internal/farm", "Outcome", "farm run-level outcomes"},
	{"internal/chaos", "Fault", "chaos fault classes"},
	{"internal/trace", "Kind", "trace span kinds"},
}

func kindswitchRule() Rule {
	return Rule{
		Name: "kindswitch",
		Doc:  "non-exhaustive switches over closed const sets (journal kinds, outcomes, fault classes)",
		Run: func(p *Pass) {
			for _, f := range p.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sw, ok := n.(*ast.SwitchStmt)
					if !ok || sw.Tag == nil {
						return true
					}
					checkSwitch(p, sw)
					return true
				})
			}
		},
	}
}

func checkSwitch(p *Pass, sw *ast.SwitchStmt) {
	covered := map[string]bool{} // qualified "pkgpath.Name"
	// Track which registered sets the cases reference, keyed by the
	// defining package (so a fixture mimic and the real package never
	// merge) plus the set index.
	type setKey struct {
		pkg *types.Package
		idx int
	}
	referenced := map[setKey]bool{}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: the author handled "anything else"
		}
		for _, e := range cc.List {
			cn := constOf(p, e)
			if cn == nil || cn.Pkg() == nil {
				continue
			}
			covered[cn.Pkg().Path()+"."+cn.Name()] = true
			for i, set := range closedSets {
				if within(cn.Pkg().Path(), set.segs) && memberName(cn.Name(), set.prefix) {
					referenced[setKey{pkg: cn.Pkg(), idx: i}] = true
				}
			}
		}
	}
	var missing []string
	var labels []string
	for key := range referenced {
		set := closedSets[key.idx]
		labels = append(labels, set.label)
		scope := key.pkg.Scope()
		for _, name := range scope.Names() {
			cn, ok := scope.Lookup(name).(*types.Const)
			if !ok || !memberName(cn.Name(), set.prefix) {
				continue
			}
			if !covered[key.pkg.Path()+"."+cn.Name()] {
				missing = append(missing, cn.Name())
			}
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	sort.Strings(labels)
	p.Reportf(sw.Pos(),
		"switch over %s has no default and misses %s: handle every member or add a default arm",
		strings.Join(labels, " + "), strings.Join(missing, ", "))
}

// memberName reports whether name belongs to a set with the given prefix:
// the prefix followed by a capitalized member name (so the type "Kind"
// itself, were it a const, would not match "Kind").
func memberName(name, prefix string) bool {
	return len(name) > len(prefix) && strings.HasPrefix(name, prefix)
}

// constOf resolves a case expression to the package-level constant it
// names, or nil.
func constOf(p *Pass, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	cn, _ := p.Pkg.Info.Uses[id].(*types.Const)
	return cn
}
