package crawler

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// TestSessionTraceRecorded checks that Crawl emits the full span
// hierarchy: one session root, a page span per visited page, and stage
// spans (render at minimum, submit when the ladder ran) nested inside
// pages.
func TestSessionTraceRecorded(t *testing.T) {
	c := newCrawler(t, loginPaymentSite())
	lg := c.Crawl("http://lp.test/")
	if len(lg.Trace) == 0 {
		t.Fatal("session produced no trace")
	}
	if lg.Trace[0].Kind != trace.KindSession || lg.Trace[0].Parent != -1 {
		t.Fatalf("first span is not the session root: %+v", lg.Trace[0])
	}
	counts := map[trace.Kind]int{}
	stages := map[string]int{}
	for i, sp := range lg.Trace {
		counts[sp.Kind]++
		if sp.Kind == trace.KindStage {
			stages[sp.Name]++
		}
		if sp.End <= sp.Start {
			t.Errorf("span %d has non-positive extent: %+v", i, sp)
		}
		switch sp.Kind {
		case trace.KindPage:
			if lg.Trace[sp.Parent].Kind != trace.KindSession {
				t.Errorf("page span %d not parented to the session: %+v", i, sp)
			}
		case trace.KindStage:
			if lg.Trace[sp.Parent].Kind != trace.KindPage {
				t.Errorf("stage span %d not parented to a page: %+v", i, sp)
			}
		}
	}
	if counts[trace.KindSession] != 1 {
		t.Errorf("session spans = %d, want 1", counts[trace.KindSession])
	}
	if counts[trace.KindPage] != len(lg.Pages) {
		t.Errorf("page spans = %d, want %d (one per visited page)", counts[trace.KindPage], len(lg.Pages))
	}
	if stages["render"] != len(lg.Pages) {
		t.Errorf("render spans = %d, want %d", stages["render"], len(lg.Pages))
	}
	if stages["submit"] == 0 {
		t.Error("no submit span recorded for a form flow")
	}
}

// TestSessionTraceByteStable pins the acceptance criterion: the trace for
// a fixed seed is byte-stable — two crawls of the same URL with the same
// FakerSeed marshal to identical JSON.
func TestSessionTraceByteStable(t *testing.T) {
	c := newCrawler(t, loginPaymentSite())
	marshal := func() []byte {
		lg := c.Crawl("http://lp.test/")
		j, err := json.Marshal(lg.Trace)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := marshal(), marshal()
	if string(a) != string(b) {
		t.Fatalf("trace not byte-stable:\n%s\nvs\n%s", a, b)
	}
}

// TestTraceRecordedOnNavigationFailure: even a session that dies on
// Navigate exports a well-formed (closed) root span.
func TestTraceRecordedOnNavigationFailure(t *testing.T) {
	c := newCrawler(t)
	lg := c.Crawl("http://nonexistent-host.test/")
	if len(lg.Trace) != 1 {
		t.Fatalf("trace = %+v, want the root span only", lg.Trace)
	}
	if lg.Trace[0].End <= lg.Trace[0].Start {
		t.Fatalf("root span left open: %+v", lg.Trace[0])
	}
}

// TestTimingsFedFromTrace: the optional Crawler.Timings collector
// receives exactly the logical stage durations the trace records (and a
// nil collector stays a valid no-op).
func TestTimingsFedFromTrace(t *testing.T) {
	c := newCrawler(t, loginPaymentSite())
	c.Timings = nil // nil must not panic
	c.Crawl("http://lp.test/")

	c.Timings = &metrics.StageTimings{}
	lg := c.Crawl("http://lp.test/")
	wantCount := map[string]int64{}
	wantTotal := map[string]time.Duration{}
	for _, sp := range lg.Trace {
		if sp.Kind == trace.KindStage {
			wantCount[sp.Name]++
			wantTotal[sp.Name] += sp.Duration()
		}
	}
	for _, s := range c.Timings.Snapshot() {
		if s.Count != wantCount[s.Stage] || s.Total != wantTotal[s.Stage] {
			t.Errorf("stage %s: collector has %d/%v, trace says %d/%v",
				s.Stage, s.Count, s.Total, wantCount[s.Stage], wantTotal[s.Stage])
		}
	}
}
