// Package ocr recognizes text in raster images, standing in for the
// Tesseract engine in Section 4.1 of the paper. The crawler uses it to read
// labels that exist only in the page's visual rendering — most importantly
// the background-image trick of Figure 3, where field names are painted into
// an image and the DOM contains anonymous input boxes.
//
// The recognizer segments dark-on-light text into lines and glyph cells and
// matches each cell against the system font by Hamming distance, tolerating
// a configurable amount of pixel noise. Like a real OCR engine it can
// misread noisy glyphs, return partial results, and costs measurably more
// than DOM analysis (which is why the crawler only falls back to it).
package ocr

import (
	"strings"

	"repro/internal/raster"
)

// Result is one recognized line of text with its bounding box.
type Result struct {
	Text string
	Box  raster.Rect
	// Confidence is the mean per-glyph match quality in [0, 1].
	Confidence float64
}

// Engine recognizes text. The zero value uses sensible defaults.
type Engine struct {
	// MaxGlyphNoise is the number of mismatched pixels tolerated per glyph
	// before the glyph is rejected. Default 4 (of 35 pixels).
	MaxGlyphNoise int
	// MinConfidence drops whole lines whose mean glyph quality is below the
	// threshold. Default 0.5.
	MinConfidence float64
}

// New returns an Engine with default tolerances.
func New() *Engine {
	return &Engine{MaxGlyphNoise: 4, MinConfidence: 0.5}
}

func (e *Engine) maxNoise() int {
	if e.MaxGlyphNoise > 0 {
		return e.MaxGlyphNoise
	}
	return 4
}

func (e *Engine) minConf() float64 {
	if e.MinConfidence > 0 {
		return e.MinConfidence
	}
	return 0.5
}

// RecognizeRegion extracts all text lines inside the given region of img.
func (e *Engine) RecognizeRegion(img *raster.Image, region raster.Rect) []Result {
	sub := img.Sub(region)
	results := e.Recognize(sub)
	for i := range results {
		results[i].Box.X += region.X
		results[i].Box.Y += region.Y
	}
	return results
}

// Recognize extracts all text lines in img.
func (e *Engine) Recognize(img *raster.Image) []Result {
	dark := darkMask(img)
	var out []Result
	for _, band := range horizontalBands(dark, img.W, img.H) {
		if band.h < raster.GlyphH {
			continue
		}
		for _, seg := range lineSegments(dark, img.W, band) {
			text, conf := e.readSegment(dark, img.W, seg)
			text = strings.TrimSpace(text)
			if text == "" || conf < e.minConf() {
				continue
			}
			out = append(out, Result{
				Text:       text,
				Box:        raster.R(seg.x, band.y, seg.w, band.h),
				Confidence: conf,
			})
		}
	}
	return out
}

// Text returns all recognized text in img joined by newlines.
func (e *Engine) Text(img *raster.Image) string {
	rs := e.Recognize(img)
	lines := make([]string, len(rs))
	for i, r := range rs {
		lines[i] = r.Text
	}
	return strings.Join(lines, "\n")
}

// TextNear returns the text found in the region to the left of and above the
// given box, up to dist pixels away — the two directions the paper's crawler
// searches for input-field labels (Section 4.1 step 3).
func (e *Engine) TextNear(img *raster.Image, box raster.Rect, dist int) string {
	var parts []string
	// Above: full width of the box plus margins, dist tall.
	above := raster.R(box.X-dist/2, box.Y-dist, box.W+dist, dist)
	for _, r := range e.RecognizeRegion(img, above) {
		parts = append(parts, r.Text)
	}
	// Left: dist wide, box height plus margin.
	left := raster.R(box.X-dist, box.Y-2, dist, box.H+4)
	for _, r := range e.RecognizeRegion(img, left) {
		parts = append(parts, r.Text)
	}
	return strings.Join(parts, " ")
}

// darkMask returns a bitmap of "ink" pixels: anything notably darker than
// the page background.
func darkMask(img *raster.Image) []bool {
	mask := make([]bool, img.W*img.H)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			mask[y*img.W+x] = img.Intensity(x, y) < 128
		}
	}
	return mask
}

type band struct{ y, h int }

// horizontalBands finds maximal runs of rows containing at least one dark
// pixel.
func horizontalBands(dark []bool, w, h int) []band {
	rowHasInk := make([]bool, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if dark[y*w+x] {
				rowHasInk[y] = true
				break
			}
		}
	}
	var bands []band
	y := 0
	for y < h {
		if !rowHasInk[y] {
			y++
			continue
		}
		start := y
		for y < h && rowHasInk[y] {
			y++
		}
		bands = append(bands, band{start, y - start})
	}
	return bands
}

type segment struct {
	x, w   int
	y, h   int
	gapMap map[int]bool // columns within the segment that are word gaps
}

// lineSegments splits a band into word-level segments separated by wide
// horizontal gaps, and records intra-segment word gaps.
func lineSegments(dark []bool, w int, b band) []segment {
	colHasInk := make([]bool, w)
	for x := 0; x < w; x++ {
		for y := b.y; y < b.y+b.h; y++ {
			if dark[y*w+x] {
				colHasInk[x] = true
				break
			}
		}
	}
	// A gap wider than 3 glyph advances splits segments (separate labels);
	// narrower gaps over 1 advance are word boundaries within a segment.
	const segGap = raster.AdvanceX * 3
	var segs []segment
	x := 0
	for x < w {
		if !colHasInk[x] {
			x++
			continue
		}
		start := x
		gapStart := -1
		gaps := map[int]bool{}
		for x < w {
			if colHasInk[x] {
				if gapStart >= 0 {
					gapW := x - gapStart
					if gapW >= segGap {
						break
					}
					if gapW >= raster.AdvanceX {
						for g := gapStart; g < x; g++ {
							gaps[g] = true
						}
					}
					gapStart = -1
				}
				x++
				continue
			}
			if gapStart < 0 {
				gapStart = x
			}
			x++
		}
		end := x
		if gapStart >= 0 {
			end = gapStart
		}
		segs = append(segs, segment{x: start, w: end - start, y: b.y, h: b.h, gapMap: gaps})
		if gapStart >= 0 {
			x = gapStart
		}
	}
	return segs
}

// readSegment walks a segment left to right in glyph-cell steps, matching
// each cell against the font.
func (e *Engine) readSegment(dark []bool, w int, seg segment) (string, float64) {
	var b strings.Builder
	var totalQ float64
	var nGlyphs int
	x := seg.x
	end := seg.x + seg.w
	pendingSpace := false
	for x+raster.GlyphW <= end+1 {
		if seg.gapMap[x] {
			pendingSpace = true
			x++
			continue
		}
		// Extract the 5x7 cell anchored at (x, seg.y). Glyphs with blank
		// leading columns (such as '1') make the first ink column fall to
		// the right of the true glyph origin, so try anchoring the cell up
		// to two pixels earlier and keep the best alignment.
		bestR, bestDist, bestAnchor := rune(0), raster.GlyphW*raster.GlyphH+1, x
		for dx := 0; dx <= 2; dx++ {
			cell := extractCell(dark, w, x-dx, seg.y, seg.h)
			if cellEmpty(cell) {
				continue
			}
			r, dist := matchGlyph(cell)
			if dist < bestDist {
				bestR, bestDist, bestAnchor = r, dist, x-dx
			}
		}
		if bestR == 0 {
			x++
			continue
		}
		if bestDist > e.maxNoise() {
			// Unrecognizable: advance one pixel hoping to re-synchronize.
			x++
			continue
		}
		if pendingSpace && b.Len() > 0 {
			b.WriteByte(' ')
		}
		pendingSpace = false
		b.WriteRune(bestR)
		totalQ += 1 - float64(bestDist)/float64(raster.GlyphW*raster.GlyphH)
		nGlyphs++
		x = bestAnchor + raster.AdvanceX
	}
	if nGlyphs == 0 {
		return "", 0
	}
	return b.String(), totalQ / float64(nGlyphs)
}

// extractCell reads a GlyphW x GlyphH window. Bands taller than GlyphH
// anchor the window at the band top; trailing rows are ignored.
func extractCell(dark []bool, w, x, y, h int) [raster.GlyphH][raster.GlyphW]bool {
	var cell [raster.GlyphH][raster.GlyphW]bool
	for gy := 0; gy < raster.GlyphH && gy < h; gy++ {
		for gx := 0; gx < raster.GlyphW; gx++ {
			px, py := x+gx, y+gy
			idx := py*w + px
			if px >= 0 && px < w && idx >= 0 && idx < len(dark) {
				cell[gy][gx] = dark[idx]
			}
		}
	}
	return cell
}

func cellEmpty(cell [raster.GlyphH][raster.GlyphW]bool) bool {
	for _, row := range cell {
		for _, on := range row {
			if on {
				return false
			}
		}
	}
	return true
}

// glyphTable caches the font as bitmaps for matching.
var glyphTable = buildGlyphTable()

type glyphEntry struct {
	r    rune
	bits [raster.GlyphH][raster.GlyphW]bool
}

func buildGlyphTable() []glyphEntry {
	var out []glyphEntry
	for _, r := range raster.GlyphRunes() {
		g, _ := raster.Glyph(r)
		var bits [raster.GlyphH][raster.GlyphW]bool
		for y := 0; y < raster.GlyphH; y++ {
			for x := 0; x < raster.GlyphW; x++ {
				bits[y][x] = g[y][x] == 'X'
			}
		}
		out = append(out, glyphEntry{r, bits})
	}
	return out
}

// matchGlyph returns the best-matching rune and its Hamming distance.
func matchGlyph(cell [raster.GlyphH][raster.GlyphW]bool) (rune, int) {
	best := rune(0)
	bestDist := raster.GlyphW*raster.GlyphH + 1
	for _, g := range glyphTable {
		d := 0
		for y := 0; y < raster.GlyphH; y++ {
			for x := 0; x < raster.GlyphW; x++ {
				if cell[y][x] != g.bits[y][x] {
					d++
				}
			}
			if d >= bestDist {
				break
			}
		}
		if d < bestDist {
			best, bestDist = g.r, d
		}
	}
	return best, bestDist
}
