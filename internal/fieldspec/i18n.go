package fieldspec

// Multi-language support: the paper's Section 6 notes its framework only
// handles English-language phishing and names "training the input field
// classifier with input text labels from languages other than English" as
// the extension — which this file provides. French matters particularly:
// La Banque Postale is a Table 7 top-10 target, and its phishing pages are
// French. Accented characters are normalized by the tokenizer, so the
// keyword banks below are written the way tokens come out of it.

// Lang identifies a label language.
type Lang string

// Supported label languages.
const (
	LangEN Lang = "en"
	LangFR Lang = "fr"
	LangES Lang = "es"
)

// Langs returns the supported languages.
func Langs() []Lang { return []Lang{LangEN, LangFR, LangES} }

// keywordsFR labels the most common field types in French.
var keywordsFR = map[Type][]string{
	Email:    {"adresse e-mail", "votre adresse email", "courriel", "saisissez votre email", "adresse de messagerie"},
	UserID:   {"identifiant", "votre identifiant client", "nom d'utilisateur", "numero client"},
	Password: {"mot de passe", "votre mot de passe", "saisissez votre mot de passe", "code secret"},
	Name:     {"nom complet", "votre nom", "nom et prenom", "titulaire de la carte"},
	Address:  {"adresse postale", "votre adresse", "adresse de facturation", "code postal"},
	Phone:    {"numero de telephone", "telephone portable", "votre mobile", "numero de portable"},
	City:     {"ville", "votre ville", "commune"},
	Date:     {"date de naissance", "votre date de naissance", "jj mm aaaa"},
	Code:     {"code de verification", "code recu par sms", "saisissez le code", "code a usage unique"},
	Card:     {"numero de carte", "carte bancaire", "numero de carte bancaire", "seize chiffres de la carte"},
	ExpDate:  {"date d'expiration", "date de validite", "expire fin"},
	CVV:      {"cryptogramme visuel", "cryptogramme", "trois chiffres au dos", "code de securite de la carte"},
}

// keywordsES labels the most common field types in Spanish.
var keywordsES = map[Type][]string{
	Email:    {"correo electronico", "su correo", "direccion de correo", "introduzca su email"},
	UserID:   {"nombre de usuario", "su usuario", "identificador de cliente"},
	Password: {"contrasena", "su contrasena", "introduzca su contrasena", "clave secreta"},
	Name:     {"nombre completo", "su nombre", "nombre y apellidos", "titular de la tarjeta"},
	Address:  {"direccion postal", "su direccion", "direccion de facturacion", "codigo postal"},
	Phone:    {"numero de telefono", "telefono movil", "su movil"},
	City:     {"ciudad", "su ciudad", "localidad"},
	Date:     {"fecha de nacimiento", "su fecha de nacimiento", "dd mm aaaa"},
	Code:     {"codigo de verificacion", "codigo recibido por sms", "introduzca el codigo", "codigo de un solo uso"},
	Card:     {"numero de tarjeta", "tarjeta de credito", "numero de tarjeta bancaria", "dieciseis digitos"},
	ExpDate:  {"fecha de caducidad", "fecha de vencimiento", "valida hasta"},
	CVV:      {"codigo de seguridad", "tres digitos del reverso", "cvv de la tarjeta"},
}

// KeywordsFor returns the keyword bank for a language; English uses the
// full Table 6 bank, other languages cover the common field types.
func KeywordsFor(lang Lang) map[Type][]string {
	switch lang {
	case LangFR:
		return keywordsFR
	case LangES:
		return keywordsES
	default:
		return Keywords
	}
}

// PhraseAtLang returns the i-th (mod len) phrase for t in the given
// language, falling back to English for types the language bank lacks.
func PhraseAtLang(lang Lang, t Type, i int) string {
	bank := KeywordsFor(lang)
	ks := bank[t]
	if len(ks) == 0 {
		return PhraseAt(t, i)
	}
	return ks[((i%len(ks))+len(ks))%len(ks)]
}

// LangSupports reports whether the language bank covers the field type
// natively (without the English fallback).
func LangSupports(lang Lang, t Type) bool {
	if lang == LangEN {
		return len(Keywords[t]) > 0
	}
	return len(KeywordsFor(lang)[t]) > 0
}
