// Package termclass implements the terminal-page text classifier of
// Section 5.2.3: a bag-of-words model over page text that assigns one of
// four categories — Success Message, Custom Error Message, HTTP Error, and
// Phishing Awareness — with a reject option at confidence 0.65 (samples
// below the threshold are discarded as "other"). The paper trains it on 200
// manually labelled pages and reports 97% accuracy on 100 held-out pages.
package termclass

import (
	"math/rand"

	"repro/internal/sitegen"
	"repro/internal/textclass"
)

// The terminal-page categories.
const (
	Success   = "success"
	CustomErr = "custom-error"
	HTTPError = "http-error"
	Awareness = "awareness"
	Other     = "other" // reject label
)

// ConfidenceThreshold is the paper's reject threshold.
const ConfidenceThreshold = 0.65

// TrainSize and TestSize follow the paper's labelled splits.
const (
	TrainSize = 200
	TestSize  = 100
)

// httpErrorTexts are the body texts of HTTP-level error terminations.
var httpErrorTexts = []string{
	"404 not found the requested resource was not found on this server",
	"404 page not found",
	"500 internal server error",
	"internal error",
	"503 service unavailable",
	"service unavailable try again later nginx",
	"403 forbidden you do not have permission to access this resource",
	"502 bad gateway",
}

// awarenessOrgs provides organization names substituted into awareness
// templates for corpus generation.
var awarenessOrgs = []string{
	"Erskine", "The Golub Corporation", "Acme Security", "Globex IT",
	"Initech InfoSec", "Contoso", "Umbrella Corp", "Northwind Security",
}

// Sample generates one labelled terminal-page text.
func Sample(rng *rand.Rand, label string) textclass.Sample {
	var text string
	switch label {
	case Success:
		text = sitegen.SuccessMessages[rng.Intn(len(sitegen.SuccessMessages))]
	case CustomErr:
		text = sitegen.ErrorMessages[rng.Intn(len(sitegen.ErrorMessages))]
	case HTTPError:
		text = httpErrorTexts[rng.Intn(len(httpErrorTexts))]
	case Awareness:
		tpl := sitegen.AwarenessMessages[rng.Intn(len(sitegen.AwarenessMessages))]
		org := awarenessOrgs[rng.Intn(len(awarenessOrgs))]
		text = sprintf1(tpl, org)
	}
	return textclass.Sample{Text: text, Label: label}
}

// Corpus generates n labelled samples, balanced across the four categories.
func Corpus(n int, seed int64) []textclass.Sample {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{Success, CustomErr, HTTPError, Awareness}
	out := make([]textclass.Sample, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Sample(rng, labels[i%len(labels)]))
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Classifier is the trained terminal-page model.
type Classifier struct {
	model *textclass.Model
}

// Train fits the classifier on the paper's protocol: TrainSize labelled
// samples.
func Train(seed int64) (*Classifier, error) {
	m, err := textclass.Train(Corpus(TrainSize, seed), textclass.TrainConfig{Seed: seed, Epochs: 40})
	if err != nil {
		return nil, err
	}
	return &Classifier{model: m}, nil
}

// Classify labels page text, rejecting low-confidence pages as Other.
func (c *Classifier) Classify(pageText string) (string, float64) {
	return c.model.PredictThreshold(pageText, ConfidenceThreshold, Other)
}

// Evaluate measures accuracy on a held-out set of the given size,
// reproducing the paper's 97%-accuracy experiment.
func (c *Classifier) Evaluate(testSeed int64, testSize int) float64 {
	test := Corpus(testSize, testSeed)
	correct, used := 0, 0
	for _, s := range test {
		label, _ := c.Classify(s.Text)
		if label == Other {
			continue // rejected, as in the paper's protocol
		}
		used++
		if label == s.Label {
			correct++
		}
	}
	if used == 0 {
		return 0
	}
	return float64(correct) / float64(used)
}

// sprintf1 substitutes a single %s without importing fmt's full machinery
// into the hot path.
func sprintf1(tpl, arg string) string {
	out := make([]byte, 0, len(tpl)+len(arg))
	for i := 0; i < len(tpl); i++ {
		if tpl[i] == '%' && i+1 < len(tpl) && tpl[i+1] == 's' {
			out = append(out, arg...)
			i++
			continue
		}
		out = append(out, tpl[i])
	}
	return string(out)
}
