// Package stamper launders a seam clock reading into an innocent-looking
// byte payload. There is no time.Now selector anywhere in this package,
// so the local wallclock rule provably sees nothing here — the
// cross-function flow is exactly the gap the taint engine closes.
package stamper

import "repro/internal/phishvet/testdata/src/detertaint/internal/metrics"

// Stamp returns the current wall time as bytes. Its summary carries the
// source bit out to every caller.
func Stamp() []byte {
	t := metrics.Now()
	return []byte(t.String())
}
