package main

import (
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
)

// pollFleetStatus fetches the coordinator's /status?format=json view.
func pollFleetStatus(addr string) (fleet.Status, error) {
	var st fleet.Status
	resp, err := http.Get("http://" + addr + fleet.PathStatus + "?format=json")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// TestFleetSmoke is the distributed-determinism smoke run wired into
// `make fleet-smoke` (and `make chaos`): a coordinator and two workers
// crawl the feed as a fleet, one worker is SIGKILLed mid-lease (its range
// must expire and be re-issued) and a replacement joins mid-run, and the
// coordinator's merged export and per-stage timing table must match a
// single-process run byte-for-byte — N processes × M workers ≡ 1 × 1.
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs a multi-process fleet")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "phishcrawl")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building phishcrawl: %v\n%s", err, out)
	}

	args := []string{"-sites", "300", "-workers", "8", "-detector-train", "150", "-seed", "42"}

	// Reference: one uninterrupted single-process run.
	clean := filepath.Join(dir, "clean.jsonl")
	cleanCmd := exec.Command(bin, append(append([]string{}, args...), "-o", clean)...)
	cleanOutB, err := cleanCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("single-process run: %v\n%s", err, cleanOutB)
	}
	cleanOut := string(cleanOutB)

	// Fleet run: coordinator on a kernel-assigned loopback port, output
	// teed to a file so the test can learn the resolved address.
	jdir := filepath.Join(dir, "journal")
	merged := filepath.Join(dir, "fleet.jsonl")
	coordLog, err := os.Create(filepath.Join(dir, "coordinator.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer coordLog.Close()
	coordArgs := append(append([]string{}, args...),
		"-coordinator", "-fleet-addr", "127.0.0.1:0",
		"-journal", jdir, "-lease-sites", "60", "-lease-ttl", "2s", "-o", merged)
	coord := exec.Command(bin, coordArgs...)
	coord.Stdout = coordLog
	coord.Stderr = coordLog
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if coord.ProcessState == nil {
			coord.Process.Kill()
			coord.Wait()
		}
	}()
	readCoordLog := func() string {
		b, _ := os.ReadFile(coordLog.Name())
		return string(b)
	}

	// Learn the coordinator's address from its startup banner.
	addrRe := regexp.MustCompile(`coordinating \d+ URLs on http://([0-9.]+:\d+)`)
	var addr string
	deadline := time.Now().Add(30 * time.Second)
	for addr == "" {
		if m := addrRe.FindStringSubmatch(readCoordLog()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never announced its address:\n%s", readCoordLog())
		}
		time.Sleep(10 * time.Millisecond)
	}

	startWorker := func(name string) *exec.Cmd {
		w := exec.Command(bin, append(append([]string{}, args...),
			"-worker", "-fleet-addr", addr, "-journal", jdir, "-worker-name", name)...)
		out, err := os.Create(filepath.Join(dir, name+".log"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { out.Close() })
		w.Stdout = out
		w.Stderr = out
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		return w
	}
	victim := startWorker("w1")
	survivor := startWorker("w2")

	// SIGKILL w1 once the coordinator confirms it holds a lease and has
	// crawled into it — a mid-lease kill, so the range MUST be re-issued.
	deadline = time.Now().Add(120 * time.Second)
	for {
		st, err := pollFleetStatus(addr)
		if err == nil {
			killed := false
			for _, w := range st.Workers {
				if w.Name == "w1" && w.Lease != "" && w.Done > 0 {
					t.Logf("killing w1 mid-lease %s (%d sessions in)", w.Lease, w.Done)
					if err := victim.Process.Kill(); err != nil {
						t.Fatal(err)
					}
					victim.Wait()
					killed = true
				}
			}
			if killed {
				break
			}
			if st.LeasesDone == st.Leases {
				t.Fatal("fleet finished before w1 could be killed mid-lease; lower -lease-sites or slow the crawl")
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("w1 never held a lease with progress; coordinator log:\n%s", readCoordLog())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A replacement joins mid-run, like an operator restarting the dead
	// process.
	replacement := startWorker("w3")

	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v\n%s", err, readCoordLog())
	}
	coordOut := readCoordLog()
	if !strings.Contains(coordOut, "re-issuing") {
		t.Errorf("killed worker's lease was never re-issued; coordinator log:\n%s", coordOut)
	}
	if !strings.Contains(coordOut, "Fleet: all leases complete") {
		t.Errorf("merge banner missing from coordinator output:\n%s", coordOut)
	}
	// Surviving workers observe the completed run and exit cleanly.
	for name, w := range map[string]*exec.Cmd{"w2": survivor, "w3": replacement} {
		if err := w.Wait(); err != nil {
			b, _ := os.ReadFile(filepath.Join(dir, name+".log"))
			t.Errorf("worker %s exited with %v:\n%s", name, err, b)
		}
	}

	// The merged fleet view must equal the single-process run exactly:
	// stage percentiles (session-logical clocks) and the full export bytes.
	cleanStages := stageTable(t, cleanOut)
	fleetStages := stageTable(t, coordOut)
	if cleanStages != fleetStages {
		t.Errorf("per-stage timing diverges between single-process and fleet runs:\nsingle:\n%s\nfleet:\n%s",
			cleanStages, fleetStages)
	}
	cleanBytes := readExport(t, clean)
	fleetBytes := readExport(t, merged)
	if cleanBytes != fleetBytes {
		cl := strings.Split(cleanBytes, "\n")
		fl := strings.Split(fleetBytes, "\n")
		n := 0
		for n < len(cl) && n < len(fl) && cl[n] == fl[n] {
			n++
		}
		t.Fatalf("fleet export diverges from single-process run at line %d (single %d lines, fleet %d)",
			n+1, len(cl), len(fl))
	}
}
