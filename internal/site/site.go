// Package site defines the data model of a synthetic phishing website: an
// ordered multi-page flow with per-page HTML, image resources, submission
// rules, and the ground-truth record of which UX/UI design patterns the site
// embodies. Sites are produced by the generator (internal/sitegen), served
// over HTTP by internal/phishserver, crawled by internal/crawler, and the
// ground truth is what the analysis results are checked against.
package site

import (
	"repro/internal/brands"
	"repro/internal/captcha"
	"repro/internal/fieldspec"
)

// NextMode describes how a page hands off to the next one after a
// successful submission.
type NextMode string

// Next-page transition modes.
const (
	// NextRedirect responds 302 to the next page path: URL changes.
	NextRedirect NextMode = "redirect"
	// NextInline responds 200 with the next page's HTML at the same URL:
	// the JavaScript-swap case the DOM hash exists to detect.
	NextInline NextMode = "inline"
	// NextExternal responds 302 to an absolute external URL (the
	// redirect-to-legitimate-site termination pattern).
	NextExternal NextMode = "external"
	// NextNone re-serves the same page: the flow dead-ends.
	NextNone NextMode = ""
)

// Validator names for submitted field values.
const (
	ValidateAny    = "any"    // accept anything non-empty
	ValidateEmail  = "email"  // must look like an email
	ValidateLuhn   = "luhn"   // digits passing the Luhn checksum
	ValidateDigits = "digits" // digits only
	ValidatePhone  = "phone"  // at least 7 digits among the characters
	ValidateFlaky  = "flaky"  // accepts ~half of values (forces crawler retries)
)

// Page is one page of the flow.
type Page struct {
	// Path is the URL path this page is served at, e.g. "/", "/step2".
	Path string
	// HTML is the full page markup.
	HTML string
	// Next is the path (or absolute URL for NextExternal) served after a
	// successful POST to this page.
	Next string
	// Mode selects the transition mechanism.
	Mode NextMode
	// Validate maps form field names to validator names; missing fields
	// are accepted as-is.
	Validate map[string]string
	// DoubleLoginHTML, when non-empty, is served after the *first*
	// successful POST in place of the next page, pretending the login
	// failed (Section 5.2.2). The second POST proceeds normally.
	DoubleLoginHTML string
	// FailStatus, when nonzero, makes POSTs to this page return this HTTP
	// status with a bare error body: the HTTP-error termination pattern.
	FailStatus int
	// Fields records the ground-truth data types of the inputs on this
	// page, in document order.
	Fields []fieldspec.Type
	// FieldLabels carries the human label the page shows for each field
	// (parallel to Fields), used to build classifier corpora.
	FieldLabels []string
}

// Cloak rule kinds: the request dimensions a cloaking kit gates on.
const (
	CloakUserAgent = "user-agent" // User-Agent must contain Value
	CloakReferrer  = "referrer"   // Referer must contain Value
	CloakLanguage  = "language"   // Accept-Language must start with Value
	CloakGeo       = "geo"        // X-Forwarded-For must start with Value
	CloakCookie    = "cookie"     // repeat-visit cookie must be present
	CloakJS        = "js"         // JS-capability probe answer required
)

// CloakRule is one gate a cloaked site's server checks before serving the
// real flow. Value is the required header content for the header-based
// kinds and unused for CloakCookie/CloakJS.
type CloakRule struct {
	Kind  string
	Value string
}

// Cloak is a site's cloaking spec: every rule must pass or the server
// serves DecoyHTML — a deterministic parked/benign page — instead of the
// phishing flow.
type Cloak struct {
	Rules []CloakRule
	// DecoyHTML is the benign page served while any rule fails.
	DecoyHTML string
}

// Termination labels for ground truth and analysis.
const (
	TermNone          = "none"
	TermSuccess       = "success"
	TermCustomError   = "custom-error"
	TermHTTPError     = "http-error"
	TermAwareness     = "awareness"
	TermRedirectLegit = "redirect-legit"
)

// Truth is the ground-truth design-pattern record of one site.
type Truth struct {
	NumPages          int
	MultiPage         bool
	ClickThroughFirst bool
	ClickThroughInner bool
	HasCaptcha        bool
	CaptchaKind       captcha.Kind
	CaptchaProvider   captcha.Provider
	KeyloggerTier     int // 0..3, Section 5.1.3 tiers
	DoubleLogin       bool
	Termination       string
	RedirectDomain    string // eSLD for TermRedirectLegit
	TwoFactor         bool   // requests an OTP/SMS code
	OCRObfuscated     bool   // labels only in a background image
	NoStandardSubmit  bool   // submit reachable only via visual detection
	Clones            bool   // visually clones the brand's legit design
	// Language is the label language of the site's pages ("en", "fr", "es")
	// — the Section 6 multi-language extension.
	Language string
	// FieldsPerPage mirrors Page.Fields for every page, first page first.
	FieldsPerPage [][]fieldspec.Type
	// Cloaked marks sites whose server gates the flow behind cloak rules;
	// CloakKinds lists the rule kinds in check order.
	Cloaked    bool
	CloakKinds []string
}

// Site is one phishing website.
type Site struct {
	// ID is unique within a corpus, e.g. "site-000042".
	ID string
	// Host is the virtual hostname the site is served under.
	Host string
	// Brand is the impersonated brand's name.
	Brand string
	// Category is the OpenPhish industry sector.
	Category brands.Category
	// CampaignID groups sites deployed from the same kit/design.
	CampaignID string
	// Pages is the flow in order; Pages[0] is the landing page.
	Pages []*Page
	// Images maps resource paths (e.g. "/bg1.pxi") to encoded PXI bytes.
	Images map[string][]byte
	// Truth is the ground-truth design-pattern record.
	Truth Truth
	// Cloak, when non-nil, gates every request behind its rules.
	Cloak *Cloak
}

// SeedURL returns the URL the phishing feed would report for this site.
func (s *Site) SeedURL() string { return "http://" + s.Host + s.Pages[0].Path }

// PageAt returns the page served at path, or nil.
func (s *Site) PageAt(path string) *Page {
	for _, p := range s.Pages {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// PageIndex returns the index of the page at path, or -1.
func (s *Site) PageIndex(path string) int {
	for i, p := range s.Pages {
		if p.Path == path {
			return i
		}
	}
	return -1
}
