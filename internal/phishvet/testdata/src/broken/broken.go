// Package broken fails type-checking on purpose: the loader must report
// a clear diagnostic (and the CLI must exit 2) instead of panicking or
// silently analyzing a half-typed package. The file parses and is
// gofmt-clean; only the types are wrong.
package broken

func mismatch() int {
	var s string = 42
	return s
}
