package trace

import (
	"fmt"
	"strings"
	"time"
)

// timelineWidth is the character width of the ASCII gantt column.
const timelineWidth = 40

// Timeline renders spans as an indented per-session timeline: one row per
// span with its logical start/duration and a proportional bar, the view
// cmd/phishreport prints so an operator can see what the crawler actually
// did inside any one session. Output is deterministic because the spans
// are.
func Timeline(spans []Span) string {
	if len(spans) == 0 {
		return "(no trace recorded)\n"
	}
	origin, end := spans[0].Start, spans[0].End
	for _, sp := range spans {
		if sp.Start < origin {
			origin = sp.Start
		}
		if sp.End > end {
			end = sp.End
		}
	}
	total := end - origin
	if total <= 0 {
		total = time.Millisecond
	}
	depth := make([]int, len(spans))
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %10s %10s  %s\n", "Span", "Start", "Dur", "Timeline")
	for i, sp := range spans {
		if sp.Parent >= 0 && sp.Parent < i {
			depth[i] = depth[sp.Parent] + 1
		}
		label := strings.Repeat("  ", depth[i]) + string(sp.Kind) + " " + sp.Name
		if len(label) > 44 {
			label = label[:41] + "..."
		}
		from := int(int64(timelineWidth) * int64(sp.Start-origin) / int64(total))
		to := int(int64(timelineWidth) * int64(sp.End-origin) / int64(total))
		if to <= from {
			to = from + 1
		}
		if to > timelineWidth {
			to = timelineWidth
		}
		bar := strings.Repeat(" ", from) + strings.Repeat("█", to-from)
		fmt.Fprintf(&b, "%-44s %10s %10s  |%-*s|\n",
			label, sp.Start-origin, sp.Duration(), timelineWidth, bar)
	}
	return b.String()
}
