package raster

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
)

// The PXI ("pixel image") wire format is the stand-in for PNG in this
// system: phishing sites serve background images and logos as PXI resources,
// the browser decodes them, and the renderer composites them. The format is
// a 4-byte magic, width and height as uint32, then run-length-encoded
// palette indices (pairs of count byte, color byte).

var pxiMagic = [4]byte{'P', 'X', 'I', '1'}

// ErrBadImage is returned when decoding malformed PXI data.
var ErrBadImage = errors.New("raster: malformed PXI image data")

// Encode serializes im to the PXI format.
func Encode(im *Image) []byte {
	out := make([]byte, 0, 12+len(im.Pix)/4)
	out = append(out, pxiMagic[:]...)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(im.W))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(im.H))
	out = append(out, hdr[:]...)
	i := 0
	for i < len(im.Pix) {
		c := im.Pix[i]
		run := 1
		for i+run < len(im.Pix) && im.Pix[i+run] == c && run < 255 {
			run++
		}
		out = append(out, byte(run), byte(c))
		i += run
	}
	return out
}

// Decode parses PXI data back into an Image.
func Decode(data []byte) (*Image, error) {
	if len(data) < 12 || [4]byte(data[0:4]) != pxiMagic {
		return nil, ErrBadImage
	}
	w := int(binary.BigEndian.Uint32(data[4:8]))
	h := int(binary.BigEndian.Uint32(data[8:12]))
	if w <= 0 || h <= 0 || w > 1<<14 || h > 1<<14 {
		return nil, fmt.Errorf("%w: bad dimensions %dx%d", ErrBadImage, w, h)
	}
	im := New(w, h, White)
	pos := 0
	for i := 12; i+1 < len(data); i += 2 {
		run := int(data[i])
		c := Color(data[i+1])
		if pos+run > len(im.Pix) {
			return nil, fmt.Errorf("%w: overflow at offset %d", ErrBadImage, i)
		}
		for j := 0; j < run; j++ {
			im.Pix[pos+j] = c
		}
		pos += run
	}
	if pos != len(im.Pix) {
		return nil, fmt.Errorf("%w: short pixel data (%d of %d)", ErrBadImage, pos, len(im.Pix))
	}
	return im, nil
}

// EncodeDataURI returns im as a data: URI suitable for embedding in an img
// src attribute, mirroring how phishing pages inline images.
func EncodeDataURI(im *Image) string {
	return "data:image/pxi;base64," + base64.StdEncoding.EncodeToString(Encode(im))
}

// DecodeDataURI parses a data: URI produced by EncodeDataURI.
func DecodeDataURI(uri string) (*Image, error) {
	const prefix = "data:image/pxi;base64,"
	if len(uri) < len(prefix) || uri[:len(prefix)] != prefix {
		return nil, ErrBadImage
	}
	raw, err := base64.StdEncoding.DecodeString(uri[len(prefix):])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	return Decode(raw)
}
