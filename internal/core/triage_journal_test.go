package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/triage"
)

// TestCrawlJournalTriageProtocol pins the journaled-plan handshake: a
// triage-enabled journaled crawl records its plan before any session, a
// resume under the same flags verifies the stored plan against the one it
// re-derives from the feed, and flag drift in either direction — triage
// turned off over a planned journal, triage turned on over a plan-less
// journal, or different triage knobs — is refused instead of silently
// mixing two triage universes in one journal.
func TestCrawlJournalTriageProtocol(t *testing.T) {
	opts := core.Options{
		NumSites:           40,
		Seed:               9,
		Workers:            8,
		DetectorTrainPages: 80,
		MinCampaignSize:    8,
		Triage:             &triage.Options{},
	}
	pipe := func(o core.Options) *core.Pipeline {
		t.Helper()
		p, err := core.NewPipeline(o)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	crawl := func(p *core.Pipeline, dir string) (int, error) {
		t.Helper()
		j, err := journal.Open(dir, journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		return p.CrawlJournal(j, 0)
	}

	dir := t.TempDir()
	if _, err := crawl(pipe(opts), dir); err != nil {
		t.Fatalf("fresh triage crawl: %v", err)
	}

	// Resume under identical flags: the rebuilt plan verifies against the
	// journaled record and every URL is already complete.
	p := pipe(opts)
	skipped, err := crawl(p, dir)
	if err != nil {
		t.Fatalf("triage resume: %v", err)
	}
	if skipped != len(p.Feed.URLs()) {
		t.Fatalf("resume skipped %d of %d URLs", skipped, len(p.Feed.URLs()))
	}

	// Triage off over a journal that holds a plan: refused.
	noTriage := opts
	noTriage.Triage = nil
	if _, err := crawl(pipe(noTriage), dir); err == nil || !strings.Contains(err.Error(), "-triage off") {
		t.Fatalf("triage-off resume over planned journal: err = %v, want refusal", err)
	}

	// Different triage knobs: the re-derived plan no longer matches the
	// journaled bytes.
	drift := opts
	drift.Triage = &triage.Options{CampaignThreshold: 0.5}
	if _, err := crawl(pipe(drift), dir); err == nil || !strings.Contains(err.Error(), "journaled plan") {
		t.Fatalf("drifted-flags resume: err = %v, want plan mismatch", err)
	}

	// The reverse direction: a journal crawled without triage cannot be
	// resumed with it.
	plainDir := t.TempDir()
	if _, err := crawl(pipe(noTriage), plainDir); err != nil {
		t.Fatalf("plain journaled crawl: %v", err)
	}
	if _, err := crawl(pipe(opts), plainDir); err == nil || !strings.Contains(err.Error(), "without -triage") {
		t.Fatalf("triage resume over plan-less journal: err = %v, want refusal", err)
	}
}
