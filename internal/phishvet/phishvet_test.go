package phishvet

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// One loader for the whole test binary: the GOROOT source importer costs a
// couple of seconds the first time, and every fixture shares the cache.
var (
	loaderOnce sync.Once
	testLdr    *Loader
	testLdrErr error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { testLdr, testLdrErr = NewLoader(".") })
	if testLdrErr != nil {
		t.Fatal(testLdrErr)
	}
	return testLdr
}

// want is one expectation parsed from a `// want "regexp"` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantQuoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants extracts every `// want "re" ["re" ...]` expectation from
// the packages' comments. The marker may trail other comment text (as it
// does on //phishvet:ignore lines).
func collectWants(t *testing.T, pkgs []*Package) []*want {
	t.Helper()
	var out []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					i := strings.Index(c.Text, "// want ")
					if i < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					ms := wantQuoted.FindAllStringSubmatch(c.Text[i:], -1)
					if len(ms) == 0 {
						t.Errorf("%s:%d: // want with no quoted regexp", pos.Filename, pos.Line)
						continue
					}
					for _, m := range ms {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
							continue
						}
						out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return out
}

// checkFixture runs every rule over the fixture tree under
// testdata/src/<name> and requires the diagnostics to match the // want
// expectations exactly, both ways.
func checkFixture(t *testing.T, name string) {
	t.Helper()
	l := testLoader(t)
	pkgs, err := l.Load(filepath.ToSlash(filepath.Join("internal/phishvet/testdata/src", name)) + "/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: fixture does not type-check: %v", pkg.Path, terr)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	diags := Check(pkgs, Rules())
	wants := collectWants(t, pkgs)
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestMaporderFixture(t *testing.T)   { checkFixture(t, "maporder") }
func TestWallclockFixture(t *testing.T)  { checkFixture(t, "wallclock") }
func TestGlobalrandFixture(t *testing.T) { checkFixture(t, "globalrand") }
func TestCheckedsyncFixture(t *testing.T) {
	checkFixture(t, "checkedsync")
}
func TestAtomicwriteFixture(t *testing.T) { checkFixture(t, "atomicwrite") }
func TestSuppressionFixture(t *testing.T) { checkFixture(t, "suppression") }
func TestLocknoblockFixture(t *testing.T) { checkFixture(t, "locknoblock") }
func TestGoroleakFixture(t *testing.T)    { checkFixture(t, "goroleak") }
func TestKindswitchFixture(t *testing.T)  { checkFixture(t, "kindswitch") }

// TestDetertaintFixture is the acceptance pin for the taint engine: the
// fixture's clock read happens behind the sanctioned metrics seam, so the
// local wallclock rule sees nothing anywhere in the flagged packages —
// the exact-match harness would fail on any stray wallclock diagnostic —
// while detertaint tracks the value across two package boundaries to the
// journal sink.
func TestDetertaintFixture(t *testing.T) { checkFixture(t, "detertaint") }

// TestRepoIsViolationFree is the pin the whole PR exists for: the real
// tree, checked with every rule, must stay clean. A failure here means a
// new change reintroduced the bug class a previous PR fixed by hand.
func TestRepoIsViolationFree(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: %v", pkg.Path, terr)
		}
	}
	for _, d := range Check(pkgs, Rules()) {
		t.Errorf("%s", d)
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(Rules()) {
		t.Fatalf("Select(\"\") = %d rules, err %v", len(all), err)
	}
	two, err := Select("wallclock, maporder")
	if err != nil {
		t.Fatal(err)
	}
	if got := RuleNames(two); fmt.Sprint(got) != "[wallclock maporder]" {
		t.Errorf("Select order = %v", got)
	}
	if _, err := Select("nope"); err == nil {
		t.Error("unknown rule name should error")
	}
}
