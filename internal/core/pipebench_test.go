package core

import "testing"

func BenchmarkNewPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewPipeline(Options{NumSites: 200, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}
