// Package report renders every table and figure of the paper's evaluation
// from analysis results, side by side with the paper's published values so
// reproduction runs can be compared at a glance. The cmd tools and the
// benchmark harness share these formatters.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/farm"
	"repro/internal/metrics"
	"repro/internal/vision"
)

// scaleNote renders the corpus scale so paper-column numbers can be read
// proportionally.
func scaleNote(numSites int) string {
	return fmt.Sprintf("(corpus scale: %d sites; paper scale: 51,859 — compare proportions)\n", numSites)
}

// Table1 renders the crawling summary.
func Table1(s analysis.Summary, numSites int) string {
	var b strings.Builder
	b.WriteString("Table 1: Summary of crawling results\n")
	b.WriteString(scaleNote(numSites))
	fmt.Fprintf(&b, "%-28s %10s %10s\n", "Metric", "Measured", "Paper")
	fmt.Fprintf(&b, "%-28s %10d %10d\n", "Seed URLs", s.SeedURLs, 56027)
	fmt.Fprintf(&b, "%-28s %10d %10d\n", "Filtered phishing URLs", s.FilteredURLs, 51859)
	fmt.Fprintf(&b, "%-28s %10d %10d\n", "Crawled phishing URLs", s.CrawledURLs, 66072)
	fmt.Fprintf(&b, "%-28s %10d %10d\n", "Crawled phishing SLDs", s.CrawledSLDs, 25693)
	return b.String()
}

// paperCategories is Table 2 of the paper.
var paperCategories = []struct {
	Name  string
	Count int
}{
	{"Online/Cloud Service", 10057}, {"Financial", 10053},
	{"Social Networking", 5268}, {"Logistics & Couriers", 3985},
	{"Email Provider", 2177}, {"Cryptocurrency", 2150},
	{"Telecommunications", 1408}, {"e-Commerce", 1271},
	{"Payment Service", 1154}, {"Gaming", 657},
}

// Table2 renders the business-category distribution.
func Table2(h *metrics.Histogram, numSites int) string {
	var b strings.Builder
	b.WriteString("Table 2: Top business categories targeted\n")
	b.WriteString(scaleNote(numSites))
	paper := map[string]int{}
	for _, c := range paperCategories {
		paper[c.Name] = c.Count
	}
	fmt.Fprintf(&b, "%-24s %10s %10s\n", "Category", "Measured", "Paper")
	for _, row := range h.SortedByCount() {
		fmt.Fprintf(&b, "%-24s %10d %10d\n", row.Key, row.Count, paper[row.Key])
	}
	return b.String()
}

// paperTable3 is the paper's % of sites not cloning per brand.
var paperTable3 = map[string]float64{
	"Chase Personal Banking": 30, "Microsoft OneDrive": 58,
	"Facebook, Inc.": 84, "DHL Airways, Inc.": 12, "Netflix": 26,
}

// Table3 renders the cloning analysis.
func Table3(rs []analysis.CloningResult) string {
	var b strings.Builder
	b.WriteString("Table 3: % of phishing sites NOT cloning the brand's visual design\n")
	fmt.Fprintf(&b, "%-24s %8s %12s %10s\n", "Brand", "Sampled", "Measured %", "Paper %")
	sum, n := 0.0, 0
	for _, r := range rs {
		fmt.Fprintf(&b, "%-24s %8d %12.0f %10.0f\n", r.Brand, r.Sampled, r.NonClonePct, paperTable3[r.Brand])
		if r.Sampled > 0 {
			sum += r.NonClonePct
			n++
		}
	}
	if n > 0 {
		fmt.Fprintf(&b, "%-24s %8s %12.0f %10.0f\n", "Average", "", sum/float64(n), 42.0)
	}
	return b.String()
}

// paperTable4 lists the paper's top redirect eSLDs.
var paperTable4 = map[string]int{
	"microsoftonline.com": 459, "dhl.com": 297, "glacierbank.com": 249,
	"office.com": 219, "americafirst.com": 218, "youtube.com": 197,
	"example.net": 189, "mtb.com": 188, "example.com": 184, "live.com": 180,
	"google.com": 133, "godaddy.com": 118, "citi.com": 109, "bt.com": 96,
	"microsoft.com": 87, "example.org": 85, "chase.com": 76, "yahoo.com": 70,
	"alaskausa.org": 61, "netflix.com": 47,
}

// Table4 renders the terminal-redirect landing domains.
func Table4(tc analysis.TerminationCounts, numSites int) string {
	var b strings.Builder
	b.WriteString("Table 4: Top benign eSLDs in the terminal-navigation pattern\n")
	b.WriteString(scaleNote(numSites))
	fmt.Fprintf(&b, "Redirecting sites: %d (paper: 7,258 to 680 distinct domains)\n", tc.RedirectSites)
	fmt.Fprintf(&b, "%-24s %10s %10s\n", "eSLD", "Measured", "Paper")
	rows := tc.RedirectDomains.SortedByCount()
	for i, row := range rows {
		if i >= 20 {
			break
		}
		fmt.Fprintf(&b, "%-24s %10d %10d\n", row.Key, row.Count, paperTable4[row.Key])
	}
	return b.String()
}

// paperTable5 is the paper's per-class AP (out of 100).
var paperTable5 = map[string]float64{
	"text-type1": 91.0, "text-type2": 99.4, "text-type3": 98.9,
	"text-type4": 95.8, "text-type5": 97.5, "text-type6": 98.5,
	"visual-type1": 80.7, "visual-type2": 92.1,
	"button": 89.2, "logo": 77.1,
}

// Table5 renders the detector's per-class AP.
func Table5(res vision.EvalResult) string {
	var b strings.Builder
	b.WriteString("Table 5: CAPTCHA detection model — average precision per class\n")
	fmt.Fprintf(&b, "%-14s %8s %12s %10s\n", "Class", "Count", "Measured AP", "Paper AP")
	var classes []string
	for c := range res.APPerClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(&b, "%-14s %8d %12.1f %10.1f\n",
			c, res.SupportPerClass[c], res.APPerClass[c]*100, paperTable5[c])
	}
	fmt.Fprintf(&b, "%-14s %8s %12.1f %10s\n", "Mean", "", res.MeanAP*100, "92.0")
	return b.String()
}

// paperTable6 is the paper's per-category F1.
var paperTable6 = map[string]float64{
	"email": 0.95, "userid": 0.76, "password": 0.95, "name": 0.91,
	"address": 0.94, "phone": 0.97, "city": 0.91, "state": 0.88,
	"question": 1.0, "answer": 1.0, "date": 0.73, "code": 0.97,
	"license": 0.8, "ssn": 0.81, "card": 0.88, "expdate": 0.94,
	"cvv": 0.78, "search": 0.93,
}

// Table6 renders the field classifier's per-category metrics.
func Table6(conf *metrics.Confusion) string {
	var b strings.Builder
	b.WriteString("Table 6: Field classifier — precision, recall, F1 per category\n")
	fmt.Fprintf(&b, "%-12s %9s %7s %8s %9s %6s\n", "Category", "Precision", "Recall", "F1", "Paper F1", "Count")
	for _, r := range conf.PerClass() {
		if r.Support == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %9.2f %7.2f %8.2f %9.2f %6d\n",
			r.Label, r.Precision, r.Recall, r.F1, paperTable6[r.Label], r.Support)
	}
	fmt.Fprintf(&b, "%-12s %9s %7s %8.2f %9.2f %6d\n", "Overall", "", "", conf.MacroF1(), 0.90, conf.Total())
	return b.String()
}

// paperTable7 is the paper's top targeted brands.
var paperTable7 = map[string]int{
	"Office365": 5351, "DHL Airways, Inc.": 3069, "Facebook, Inc.": 2335,
	"WhatsApp": 2257, "Tencent": 1701, "Crypto/Wallet": 1687,
	"Outlook": 1437, "La Banque Postale": 1131,
	"Chase Personal Banking": 1071, "M & T Bank Corporation": 1015,
}

// Table7 renders the top targeted brands.
func Table7(h *metrics.Histogram, numSites int) string {
	var b strings.Builder
	b.WriteString("Table 7: Top brands targeted\n")
	b.WriteString(scaleNote(numSites))
	fmt.Fprintf(&b, "%-24s %10s %10s\n", "Brand", "Measured", "Paper")
	for i, row := range h.SortedByCount() {
		if i >= 10 {
			break
		}
		fmt.Fprintf(&b, "%-24s %10d %10d\n", row.Key, row.Count, paperTable7[row.Key])
	}
	return b.String()
}

// paperFigure7 holds the two counts the paper states explicitly.
var paperFigure7 = map[string]int{"password": 35762, "email": 28736, "code": 8893}

// Figure7 renders the input-field distribution.
func Figure7(d analysis.FieldDistribution, numSites int) string {
	var b strings.Builder
	b.WriteString("Figure 7: Input-field type distribution across pages\n")
	b.WriteString(scaleNote(numSites))
	fmt.Fprintf(&b, "%-12s %10s %10s  %s\n", "Field", "Measured", "Paper", "Group")
	for _, row := range d.PerType.SortedByCount() {
		paper := ""
		if v, ok := paperFigure7[row.Key]; ok {
			paper = fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(&b, "%-12s %10d %10s\n", row.Key, row.Count, paper)
	}
	b.WriteString("Context groups:\n")
	for _, row := range d.PerGroup.SortedByCount() {
		fmt.Fprintf(&b, "  %-12s %10d\n", row.Key, row.Count)
	}
	return b.String()
}

// Figure8 renders the multi-page histogram.
func Figure8(h map[int]int, numSites int) string {
	var b strings.Builder
	b.WriteString("Figure 8: Total page count for multi-step phishing sites\n")
	b.WriteString(scaleNote(numSites))
	total := 0
	var keys []int
	for k, v := range h {
		keys = append(keys, k)
		total += v
	}
	sort.Ints(keys)
	fmt.Fprintf(&b, "Multi-page sites: %d (paper: 23,446 = 45%%)\n", total)
	for _, k := range keys {
		bar := strings.Repeat("#", h[k]*40/maxInt(total, 1))
		fmt.Fprintf(&b, "%d pages: %6d %s\n", k, h[k], bar)
	}
	return b.String()
}

// Figure9 renders the per-stage field distribution.
func Figure9(rows []analysis.StageField) string {
	var b strings.Builder
	b.WriteString("Figure 9: Field categories per page stage (% of that field type seen at each stage)\n")
	byStage := map[int][]analysis.StageField{}
	for _, r := range rows {
		byStage[r.Stage] = append(byStage[r.Stage], r)
	}
	for stage := 1; stage <= 5; stage++ {
		rs := byStage[stage]
		if len(rs) == 0 {
			continue
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i].Type < rs[j].Type })
		fmt.Fprintf(&b, "Page_%d:\n", stage)
		for _, r := range rs {
			fmt.Fprintf(&b, "  %-10s %5.1f%%\n", r.Type, r.Pct)
		}
	}
	return b.String()
}

// SectionRates renders the free-standing percentages of Section 5.
func SectionRates(ob analysis.ObfuscationRates, kl analysis.KeyloggingCounts,
	dl int, ct analysis.ClickThroughCounts, cc analysis.CaptchaCounts,
	tf analysis.TwoFactorCounts, tc analysis.TerminationCounts, numSites int) string {
	var b strings.Builder
	b.WriteString("Section 5 measurements (measured | paper @ 51,859 sites)\n")
	fmt.Fprintf(&b, "OCR fallback rate:            %5.1f%% | 27%%\n", ob.OCRRate*100)
	fmt.Fprintf(&b, "Visual-submit rate:           %5.1f%% | 12%%\n", ob.VisualSubmitRate*100)
	fmt.Fprintf(&b, "Keylogging (monitor):         %6d | 18,745\n", kl.Monitoring)
	fmt.Fprintf(&b, "Keylogging (request):         %6d | 642\n", kl.ImmediateRequest)
	fmt.Fprintf(&b, "Keylogging (exfiltrate):      %6d | 75\n", kl.DataExfiltrated)
	fmt.Fprintf(&b, "Double login:                 %6d | 400\n", dl)
	fmt.Fprintf(&b, "Click-through (total):        %6d | 2,933\n", ct.Total)
	fmt.Fprintf(&b, "Click-through (first page):   %6d | 2,713\n", ct.FirstPage)
	fmt.Fprintf(&b, "Click-through (internal):     %6d | 220\n", ct.Internal)
	fmt.Fprintf(&b, "CAPTCHA (total):              %6d | 2,608\n", cc.Total)
	fmt.Fprintf(&b, "CAPTCHA (reCAPTCHA):          %6d | 1,856\n", cc.Recaptcha)
	fmt.Fprintf(&b, "CAPTCHA (hCaptcha):           %6d | 640\n", cc.Hcaptcha)
	fmt.Fprintf(&b, "CAPTCHA (custom text):        %6d | 34\n", cc.CustomText)
	fmt.Fprintf(&b, "CAPTCHA (custom visual):      %6d | 78\n", cc.CustomVisual)
	fmt.Fprintf(&b, "Code-field sites:             %6d | 8,893\n", tf.CodeFieldSites)
	fmt.Fprintf(&b, "OTP/SMS 2FA sites:            %6d | 1,032\n", tf.OTPSites)
	fmt.Fprintf(&b, "Terminal redirects:           %6d | 7,258\n", tc.RedirectSites)
	fmt.Fprintf(&b, "Terminal no-input pages:      %6d | 5,403\n", tc.FinalNoInputSites)
	fmt.Fprintf(&b, "  success messages:           %6d | 966\n", tc.ByCategory.Get("success"))
	fmt.Fprintf(&b, "  custom errors:              %6d | 125\n", tc.ByCategory.Get("custom-error"))
	fmt.Fprintf(&b, "  HTTP errors:                %6d | 1,599\n", tc.ByCategory.Get("http-error"))
	fmt.Fprintf(&b, "  awareness messages:         %6d | 176\n", tc.ByCategory.Get("awareness"))
	fmt.Fprintf(&b, "  awareness campaigns:        %6d | 41\n", tc.AwarenessCampaigns)
	b.WriteString(scaleNote(numSites))
	return b.String()
}

// SubmitMethods renders the per-site breakdown of the first working submit
// strategy (Section 4.3's ladder).
func SubmitMethods(h *metrics.Histogram) string {
	var b strings.Builder
	b.WriteString("Submit-strategy breakdown (first strategy that performed a submission per site)\n")
	total := h.Total()
	for _, row := range h.SortedByCount() {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(row.Count) / float64(total)
		}
		fmt.Fprintf(&b, "  %-14s %6d (%5.1f%%)\n", row.Key, row.Count, pct)
	}
	b.WriteString("(paper reports 12% of sites requiring visual detection)\n")
	return b.String()
}

// FailureTable renders the crawl failure taxonomy plus the farm's
// resilience counters — the operational-health table implied by the
// paper's reachability discussion (a large share of reported URLs are
// dead or unreachable by crawl time). Rows come from
// analysis.FailureTaxonomy; the footer summarizes the retry queue's work.
func FailureTable(h *metrics.Histogram, st farm.Stats) string {
	var b strings.Builder
	b.WriteString("Failure taxonomy: operational fate of every crawl session\n")
	total := h.Total()
	fmt.Fprintf(&b, "%-24s %8s %8s\n", "Classification", "Sites", "%")
	for _, row := range h.SortedByCount() {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(row.Count) / float64(total)
		}
		fmt.Fprintf(&b, "%-24s %8d %7.1f%%\n", row.Key, row.Count, pct)
	}
	fmt.Fprintf(&b, "%-24s %8d %7.1f%%\n", "Total", total, 100.0)
	fmt.Fprintf(&b, "Retries: %d; degraded completions (succeeded after retry): %d; recovered panics: %d\n",
		st.Retries, st.Degraded, st.Panics)
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
