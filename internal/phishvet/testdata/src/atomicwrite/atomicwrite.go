// Package atomicwrite exercises the atomicwrite rule: in-place file
// creation outside the sessionio/journal atomic writers is flagged.
package atomicwrite

import "os"

func flagged(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // want "os.WriteFile writes in place"
		return err
	}
	f, err := os.Create(path) // want "os.Create writes in place"
	if err != nil {
		return err
	}
	return f.Close()
}

func ok(path string) error {
	// Reading is not writing.
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}
