// Package detertaint exercises the interprocedural taint rule:
// nondeterminism read through the sanctioned metrics seam (or any other
// source) must not reach a journal sink, however many function
// boundaries the value crosses on the way.
package detertaint

import (
	"time"

	"repro/internal/phishvet/testdata/src/detertaint/internal/journal"
	"repro/internal/phishvet/testdata/src/detertaint/internal/metrics"
	"repro/internal/phishvet/testdata/src/detertaint/stamper"
)

// The laundered cross-package flow wallclock cannot see: stamper.Stamp
// reads the seam clock, and the tainted bytes land in the journal here.
func flagged(j *journal.Journal) error {
	return j.AppendNote(stamper.Stamp()) // want "nondeterministic value .* reaches journal.AppendNote: journaled/exported bytes must be a pure function of the feed seed"
}

// record sinks its payload argument; the summary records param→sink so
// callers are charged, not this helper.
func record(j *journal.Journal, payload []byte) error {
	return j.AppendNote(payload)
}

// The taint enters here and flows through record's parameter summary.
func flaggedViaHelper(j *journal.Journal) error {
	sw := metrics.NewStopwatch()
	d := sw.Elapsed()
	return record(j, []byte(d.String())) // want "nondeterministic value .* reaches journal.AppendNote through detertaint.record"
}

type run struct {
	Elapsed time.Duration
	Logs    []byte
}

// Field sensitivity: tainting r.Elapsed must not condemn r.Logs.
func fieldPrecise(j *journal.Journal, sw metrics.Stopwatch) error {
	var r run
	r.Elapsed = sw.Elapsed()
	if err := j.AppendNote([]byte(r.Elapsed.String())); err != nil { // want "nondeterministic value .* reaches journal.AppendNote"
		return err
	}
	return j.AppendNote(r.Logs) // the sibling field is untainted: clean
}

// Seed-derived bytes are deterministic: clean.
func clean(j *journal.Journal, seed int64) error {
	return j.AppendNote([]byte{byte(seed)})
}
