package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// okTransport is the healthy inner transport: every request succeeds with
// a fixed HTML body.
type okTransport struct{ body string }

func (t okTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	body := t.body
	if body == "" {
		body = "<html><body><div>hello from " + req.URL.Hostname() + "</div></body></html>"
	}
	return synthResponse(req, http.StatusOK, "text/html; charset=utf-8", body), nil
}

func newInjector(p Profile, seed int64) *Injector {
	return &Injector{Profile: p, Seed: seed, Inner: okTransport{}}
}

func get(t *testing.T, in *Injector, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return in.RoundTrip(req)
}

func TestFaultAssignmentDeterministic(t *testing.T) {
	a := newInjector(DefaultProfile(), 7)
	b := newInjector(DefaultProfile(), 7)
	c := newInjector(DefaultProfile(), 8)
	differ := false
	for i := 0; i < 200; i++ {
		host := fmt.Sprintf("site-%03d.test", i)
		if a.FaultFor(host) != b.FaultFor(host) {
			t.Fatalf("same seed, different fault for %s", host)
		}
		if a.FaultFor(host) != c.FaultFor(host) {
			differ = true
		}
	}
	if !differ {
		t.Error("different seeds produced identical schedules")
	}
}

func TestFaultRatesApproximate(t *testing.T) {
	in := newInjector(Profile{DeadRate: 0.25, FlakyRate: 0.25}, 3)
	counts := map[Fault]int{}
	var hosts []string
	for i := 0; i < 2000; i++ {
		hosts = append(hosts, fmt.Sprintf("h%04d.test", i))
	}
	counts = in.Summary(hosts)
	for _, f := range []Fault{FaultDead, FaultFlaky} {
		got := float64(counts[f]) / 2000
		if got < 0.20 || got > 0.30 {
			t.Errorf("%s rate = %.3f, want ~0.25", f, got)
		}
	}
	if got := float64(counts[FaultNone]) / 2000; got < 0.45 || got > 0.55 {
		t.Errorf("healthy rate = %.3f, want ~0.5", got)
	}
}

func TestDeadFaultRefusesConnections(t *testing.T) {
	in := newInjector(Profile{DeadRate: 1}, 1)
	for i := 0; i < 3; i++ {
		_, err := get(t, in, "http://dead.test/")
		if !errors.Is(err, syscall.ECONNREFUSED) {
			t.Fatalf("want ECONNREFUSED, got %v", err)
		}
	}
}

func TestFlakyFaultRecovers(t *testing.T) {
	in := newInjector(Profile{FlakyRate: 1, FlakyFailures: 2}, 1)
	for i := 0; i < 2; i++ {
		_, err := get(t, in, "http://flaky.test/")
		if !errors.Is(err, syscall.ECONNRESET) {
			t.Fatalf("request %d: want ECONNRESET, got %v", i, err)
		}
	}
	resp, err := get(t, in, "http://flaky.test/")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("third request should succeed, got %v / %v", resp, err)
	}
	// A different flaky host has its own failure budget.
	_, err = get(t, in, "http://other.test/")
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("fresh host should still be flaky, got %v", err)
	}
}

func TestServerErrorFaultServes503(t *testing.T) {
	in := newInjector(Profile{ServerErrorRate: 1}, 1)
	for _, method := range []string{"GET", "POST"} {
		req, _ := http.NewRequest(method, "http://serr.test/login", strings.NewReader("a=b"))
		resp, err := in.RoundTrip(req)
		if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s should 503, got %v / %v", method, resp, err)
		}
	}
}

func TestTruncateFaultCutsBody(t *testing.T) {
	full := "<html><body>" + strings.Repeat("x", 200) + "</body></html>"
	in := &Injector{Profile: Profile{TruncateRate: 1}, Seed: 1, Inner: okTransport{body: full}}
	resp, err := get(t, in, "http://trunc.test/")
	if err != nil {
		t.Fatal(err)
	}
	data, rerr := io.ReadAll(resp.Body)
	if !errors.Is(rerr, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", rerr)
	}
	if len(data) == 0 || len(data) >= len(full) {
		t.Fatalf("body not truncated: %d of %d bytes", len(data), len(full))
	}
	if !strings.HasPrefix(full, string(data)) {
		t.Error("truncated body is not a prefix of the original")
	}
}

func TestTakedownFaultServesSuspensionPage(t *testing.T) {
	in := newInjector(Profile{TakedownRate: 1}, 1)
	resp, err := get(t, in, "http://gone.test/login")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("takedown page should serve 200, got %v / %v", resp, err)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "has been suspended") {
		t.Errorf("takedown body = %q", body)
	}
}

func TestStallFaultHonoursContextCancellation(t *testing.T) {
	in := newInjector(Profile{StallRate: 1, StallDelay: time.Minute}, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://stall.test/", nil)
	start := time.Now()
	_, err := in.RoundTrip(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("stall did not respect the context deadline")
	}
}

func TestSlowFaultDelaysThenSucceeds(t *testing.T) {
	in := newInjector(Profile{SlowRate: 1, SlowDelay: time.Millisecond}, 1)
	resp, err := get(t, in, "http://slow.test/")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("slow site should eventually answer, got %v / %v", resp, err)
	}
}

func TestInjectHostScopesInjection(t *testing.T) {
	in := newInjector(Profile{DeadRate: 1}, 1)
	in.InjectHost = func(host string) bool { return host != "benign.test" }
	if resp, err := get(t, in, "http://benign.test/"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("benign host should bypass injection, got %v / %v", resp, err)
	}
	if _, err := get(t, in, "http://phish.test/"); !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("phishing host should be dead, got %v", err)
	}
}
