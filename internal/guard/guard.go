// Package guard implements the browser-embedded defense sketched in the
// paper's Discussion (Section 6): when a user lands on a suspicious page,
// the browser buffers their keystrokes instead of passing them to the page,
// while in the background a crawler session interacts with the page using
// forged data. If the background session exhibits phishing behaviour, the
// user is alerted and the buffered data never reaches the page; if the page
// looks benign, the buffered input is replayed transparently.
//
// The verdict combines the signals this system already measures: forged
// data being accepted blindly, multi-stage data harvesting, keylogger
// listeners, exfiltration beacons, and reassuring terminal pages.
package guard

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/crawler"
	"repro/internal/fieldspec"
)

// Signal is one piece of evidence contributing to a verdict.
type Signal struct {
	// Name is a short identifier, e.g. "forged-data-accepted".
	Name string
	// Weight is the signal's contribution to the score.
	Weight int
	// Detail is a human-readable explanation.
	Detail string
}

// Verdict is the outcome of a background investigation.
type Verdict struct {
	Phishing bool
	Score    int
	Signals  []Signal
}

// PhishingThreshold is the score at or above which a page is judged
// phishing. Signals are weighted so a single benign-looking trait cannot
// cross it.
const PhishingThreshold = 4

// Judge evaluates a background crawl session.
func Judge(log *crawler.SessionLog) Verdict {
	var v Verdict
	add := func(name string, weight int, detail string) {
		v.Signals = append(v.Signals, Signal{name, weight, detail})
		v.Score += weight
	}

	// Forged data accepted: the strongest signal. A legitimate login
	// rejects credentials it has never seen; a phishing site accepts
	// anything syntactically valid (Section 4.3).
	submitted, advanced := 0, 0
	for i, pg := range log.Pages {
		if pg.SubmitMethod == "" || !pg.HasInputs() {
			continue
		}
		submitted++
		if i+1 < len(log.Pages) {
			advanced++
		}
	}
	if advanced > 0 {
		add("forged-data-accepted", 3, fmt.Sprintf("forged data accepted on %d page(s)", advanced))
	}

	// Multi-stage harvesting of different data categories.
	groups := map[fieldspec.Group]bool{}
	for _, pg := range log.Pages {
		for _, f := range pg.Fields {
			if f.Label != fieldspec.Unknown {
				groups[fieldspec.GroupOf(f.Label)] = true
			}
		}
	}
	if analysis.IsMultiPage(log) && len(groups) >= 2 {
		add("multi-stage-harvesting", 2, fmt.Sprintf("requests %d data categories across pages", len(groups)))
	}

	// Sensitive data categories beyond login.
	if groups[fieldspec.GroupFinancial] || groups[fieldspec.GroupSocial] {
		add("sensitive-data-request", 1, "asks for financial or identity data")
	}

	// Keylogger behaviour.
	kl := analysis.Keylogging([]*crawler.SessionLog{log})
	switch {
	case kl.DataExfiltrated > 0:
		add("keystroke-exfiltration", 3, "typed data sent before submission")
	case kl.ImmediateRequest > 0:
		add("keystroke-beacon", 2, "network request fired while typing")
	case kl.Monitoring > 0:
		add("keydown-listener", 1, "page monitors keystrokes")
	}

	// Reassuring terminal page or redirect to the legitimate site after
	// harvesting (Sections 5.2.3).
	if len(log.Pages) >= 2 {
		last := log.Pages[len(log.Pages)-1]
		lower := strings.ToLower(last.Text)
		if !last.HasInputs() {
			for _, marker := range []string{"congratulations", "thank you", "your data was not", "simulation", "verified successfully"} {
				if strings.Contains(lower, marker) {
					add("reassuring-termination", 1, fmt.Sprintf("terminal page says %q", marker))
					break
				}
			}
		}
		if analysis.ESLD(last.URL) != analysis.ESLD(log.SeedURL) {
			add("redirect-after-harvest", 1, "redirects off-site after data entry")
		}
	}

	v.Phishing = v.Score >= PhishingThreshold
	return v
}

// Buffer holds the user's keystrokes while the investigation runs.
type Buffer struct {
	fields map[string]string
	order  []string
}

// NewBuffer returns an empty keystroke buffer.
func NewBuffer() *Buffer {
	return &Buffer{fields: map[string]string{}}
}

// Type records a keystroke for the named field without delivering it.
func (b *Buffer) Type(field string, r rune) {
	if _, ok := b.fields[field]; !ok {
		b.order = append(b.order, field)
	}
	b.fields[field] += string(r)
}

// TypeString records a whole string.
func (b *Buffer) TypeString(field, s string) {
	for _, r := range s {
		b.Type(field, r)
	}
}

// Fields returns the buffered values in first-typed order.
func (b *Buffer) Fields() []struct{ Name, Value string } {
	out := make([]struct{ Name, Value string }, 0, len(b.order))
	for _, f := range b.order {
		out = append(out, struct{ Name, Value string }{f, b.fields[f]})
	}
	return out
}

// Discard drops the buffered data (the phishing outcome).
func (b *Buffer) Discard() {
	b.fields = map[string]string{}
	b.order = nil
}

// Len returns the number of buffered fields.
func (b *Buffer) Len() int { return len(b.order) }
