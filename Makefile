# Developer entry points. Everything is plain go tooling; the targets exist
# so CI and humans run the same commands.

GO ?= go

.PHONY: all build test race vet bench check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The farm and crawler are the concurrent hot paths (shared stage-timing
# collector, worker pool over one crawler template); keep them race-clean.
race:
	$(GO) test -race ./internal/farm/... ./internal/crawler/...

vet:
	$(GO) vet ./...

# Hot-path microbenchmarks plus the end-to-end throughput run. Scale the
# corpus with PHISH_BENCH_SITES (default 600).
bench:
	$(GO) test -run='^$$' -bench='BenchmarkDetect|BenchmarkOCRPage|BenchmarkCrawlThroughput|BenchmarkNewPipeline' -benchmem ./...

check: build vet test race
