package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/crawler"
	"repro/internal/farm"
)

// CloakTable renders the adaptive-uncloaking summary: how many sessions hit
// a cloaking gate's benign decoy, how many of those the mutation loop got
// past (and in how many attempts), which request dimensions the decoys
// implicated, and how many sessions stayed benign — either genuinely parked
// pages that leaked no signals or gates the retry budget never opened.
// Returns "" when the logs carry no cloak data (cloaking was off), so
// callers can print it unconditionally.
func CloakTable(logs []*crawler.SessionLog, stats farm.Stats) string {
	var gated, uncloaked, exhausted, parked, extraAttempts int
	attemptsTo := map[int]int{} // mutated attempts spent by uncloaked sessions
	bySignal := map[string]int{}
	for _, lg := range logs {
		if lg == nil {
			continue
		}
		if lg.Cloak == nil {
			if lg.Outcome == crawler.OutcomeBenign {
				// The honest crawl ended on a benign page and no loop ran:
				// either the decoy implicated nothing (genuinely parked) or
				// the retry budget was zero.
				parked++
			}
			continue
		}
		gated++
		extraAttempts += len(lg.Cloak.Attempts) - 1
		for _, s := range lg.Cloak.Attempts[0].Signals {
			bySignal[s]++
		}
		if lg.Cloak.Uncloaked {
			uncloaked++
			attemptsTo[len(lg.Cloak.Attempts)-1]++
		} else {
			exhausted++
		}
	}
	if gated == 0 && parked == 0 && stats.CloakAttempts == 0 && stats.Uncloaked == 0 {
		return ""
	}

	var b strings.Builder
	b.WriteString("Cloaking: adaptive uncloaking over benign decoys\n")
	pct := func(n int) float64 {
		if gated == 0 {
			return 0
		}
		return 100 * float64(n) / float64(gated)
	}
	fmt.Fprintf(&b, "%-32s %8d\n", "Sessions gated by a decoy", gated)
	fmt.Fprintf(&b, "%-32s %8d %7.1f%%\n", "Uncloaked (gate opened)", uncloaked, pct(uncloaked))
	fmt.Fprintf(&b, "%-32s %8d %7.1f%%\n", "Still cloaked after budget", exhausted, pct(exhausted))
	fmt.Fprintf(&b, "%-32s %8d\n", "Benign with no cloak signals", parked)
	if gated > 0 {
		fmt.Fprintf(&b, "%-32s %8d %7.2f avg\n", "Extra crawl attempts", extraAttempts, float64(extraAttempts)/float64(gated))
	}

	if len(bySignal) > 0 {
		signals := make([]string, 0, len(bySignal))
		for s := range bySignal {
			signals = append(signals, s)
		}
		sort.Strings(signals)
		b.WriteString("Signals implicated by decoys:")
		for _, s := range signals {
			fmt.Fprintf(&b, " %s=%d", s, bySignal[s])
		}
		b.WriteString("\n")
	}
	if len(attemptsTo) > 0 {
		counts := make([]int, 0, len(attemptsTo))
		for n := range attemptsTo {
			counts = append(counts, n)
		}
		sort.Ints(counts)
		b.WriteString("Mutated attempts to uncloak:")
		for _, n := range counts {
			fmt.Fprintf(&b, " %d:%d", n, attemptsTo[n])
		}
		b.WriteString("\n")
	}
	return b.String()
}
