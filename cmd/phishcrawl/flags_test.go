package main

import (
	"strings"
	"testing"
	"time"
)

// validFlags returns a baseline configuration every field of which passes
// validation; cases mutate one knob at a time.
func validFlags() cliFlags {
	return cliFlags{
		sites:       100,
		workers:     8,
		journalSync: "always",
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliFlags)
		wantErr string // empty = must pass
	}{
		{"baseline", func(*cliFlags) {}, ""},
		{"zero workers is the default", func(f *cliFlags) { f.workers = 0 }, ""},
		{"journal alone", func(f *cliFlags) { f.journalDir = "j" }, ""},
		{"resume with journal", func(f *cliFlags) { f.journalDir = "j"; f.resume = true }, ""},
		{"compact with journal", func(f *cliFlags) { f.journalDir = "j"; f.compact = true }, ""},
		{"status with journal", func(f *cliFlags) { f.journalDir = "j"; f.statusAddr = ":0" }, ""},
		{"progress interval", func(f *cliFlags) { f.progress = time.Second }, ""},
		{"sync group", func(f *cliFlags) { f.journalSync = "group" }, ""},
		{"sync batch", func(f *cliFlags) { f.journalSync = "batch" }, ""},
		{"sync none", func(f *cliFlags) { f.journalSync = "none" }, ""},

		{"zero sites", func(f *cliFlags) { f.sites = 0 }, "-sites"},
		{"negative sites", func(f *cliFlags) { f.sites = -5 }, "-sites"},
		{"negative sample", func(f *cliFlags) { f.sample = -1 }, "-sample"},
		{"negative workers", func(f *cliFlags) { f.workers = -1 }, "-workers"},
		{"negative retries", func(f *cliFlags) { f.retries = -1 }, "-retries"},
		{"negative session budget", func(f *cliFlags) { f.sessionBudget = -time.Second }, "-session-budget"},
		{"negative fetch timeout", func(f *cliFlags) { f.fetchTimeout = -time.Second }, "-fetch-timeout"},
		{"negative progress", func(f *cliFlags) { f.progress = -time.Second }, "-progress"},
		{"bad journal sync", func(f *cliFlags) { f.journalSync = "fsync" }, "-journal-sync"},
		{"resume without journal", func(f *cliFlags) { f.resume = true }, "-resume requires -journal"},
		{"compact without journal", func(f *cliFlags) { f.compact = true }, "-compact requires -journal"},
		{"status with compact", func(f *cliFlags) {
			f.journalDir = "j"
			f.compact = true
			f.statusAddr = ":0"
		}, "-status-addr cannot be combined with -compact"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validFlags()
			tc.mutate(&f)
			err := validateFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%+v) = %v, want nil", f, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags(%+v) passed, want error mentioning %q", f, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
