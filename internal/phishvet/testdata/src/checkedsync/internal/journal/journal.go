// Package journal mimics the production durability path: the checkedsync
// rule flags silent error drops here and accepts the explicit `_ = ...`
// acknowledgment.
package journal

import (
	"fmt"
	"os"
)

func flagged(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Write(data)                // want "Write error discarded on the durability path"
	f.Sync()                     // want "Sync error discarded on the durability path"
	f.Close()                    // want "Close error discarded on the durability path"
	os.Rename(path, path+".bak") // want "Rename error discarded on the durability path"
	return nil
}

// anyCall: the rule is not an allowlist of file-API names — ANY discarded
// error return in this package is on the commit path (manifest parsing,
// temp cleanup, the group-commit loop's helpers).
func anyCall(name string) int {
	var n int
	fmt.Sscanf(name, "segment-%d", &n) // want "Sscanf error discarded on the durability path"
	os.Remove(name)                    // want "Remove error discarded on the durability path"
	parse(name)                        // want "parse error discarded on the durability path"
	_, _ = fmt.Sscanf(name, "segment-%d", &n)
	_ = os.Remove(name) // acknowledged: best-effort cleanup
	noError(name)       // returns nothing; not flagged
	return n
}

func parse(string) (int, error) { return 0, nil }

func noError(string) {}

func ok(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // acknowledged: the Write failure is the one reported
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
