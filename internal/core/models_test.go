package core

import "testing"

// TestSharedModelsMemoizes pins the tentpole behavior: two pipelines with
// equal (seed, detector-pages) params share one trained bundle, pointer for
// pointer — no retraining.
func TestSharedModelsMemoizes(t *testing.T) {
	ResetModelCache()
	a, err := SharedModels(ModelParams{Seed: 11, DetectorTrainPages: 60})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedModels(ModelParams{Seed: 11, DetectorTrainPages: 60})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same params returned distinct bundles: cache miss")
	}
	c, err := SharedModels(ModelParams{Seed: 12, DetectorTrainPages: 60})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different seed returned the same bundle")
	}
}

// TestTrainModelsDeterministic compares two COLD trainings byte for byte —
// the property the cache's soundness rests on. (The pipeline-level test in
// core_test.go now exercises the cached path, where equality is trivial.)
func TestTrainModelsDeterministic(t *testing.T) {
	params := ModelParams{Seed: 5, DetectorTrainPages: 80}
	a, err := TrainModels(params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainModels(params)
	if err != nil {
		t.Fatal(err)
	}
	da, _ := a.Detector.Marshal()
	db, _ := b.Detector.Marshal()
	if string(da) != string(db) {
		t.Error("cold trainings produced different detectors")
	}
	fa, _ := a.FieldClassifier.Marshal()
	fb, _ := b.FieldClassifier.Marshal()
	if string(fa) != string(fb) {
		t.Error("cold trainings produced different field classifiers")
	}
	if len(a.CaptchaExemplars) == 0 || len(a.CaptchaExemplars) != len(b.CaptchaExemplars) {
		t.Fatalf("exemplar counts differ: %d vs %d", len(a.CaptchaExemplars), len(b.CaptchaExemplars))
	}
	for i := range a.CaptchaExemplars {
		if a.CaptchaExemplars[i] != b.CaptchaExemplars[i] {
			t.Fatal("cold trainings produced different captcha exemplars")
		}
	}
}

// TestNewPipelineSharesModels verifies NewPipeline rides the cache by
// default and honors explicit injection.
func TestNewPipelineSharesModels(t *testing.T) {
	ResetModelCache()
	opts := Options{NumSites: 20, Seed: 5, DetectorTrainPages: 80}
	p1, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Models != p2.Models {
		t.Error("repeated NewPipeline with equal params retrained models")
	}
	if p1.Detector != p1.Models.Detector || p1.FieldClassifier != p1.Models.FieldClassifier {
		t.Error("pipeline model fields do not alias the bundle")
	}

	private, err := TrainModels(ModelParams{Seed: 5, DetectorTrainPages: 80})
	if err != nil {
		t.Fatal(err)
	}
	opts.Models = private
	p3, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Models != private {
		t.Error("Options.Models injection ignored")
	}
}
