package sitegen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/brands"
	"repro/internal/browser"
	"repro/internal/captcha"
	"repro/internal/dom"
	"repro/internal/fieldspec"
	"repro/internal/layout"
	"repro/internal/raster"
	"repro/internal/script"
	"repro/internal/site"
)

// design captures the campaign-level visual and structural choices shared
// by every site deployed from the same kit.
type design struct {
	brand     brands.Brand
	clone     bool
	labelMode string // "label", "placeholder", "attr"
	buttonTxt string
	// submitStyle: "button" (normal), "formless" (no form, clickzone only),
	// "noButton" (form without button: programmatic submit needed).
	submitStyle   string
	keyloggerTier int
	headline      string
	awarenessOrg  string // for awareness terminal pages
	// lang is the label language of the kit's pages (Section 6 extension).
	lang fieldspec.Lang
}

var buttonTexts = []string{"Sign in", "Next", "Continue", "Submit", "Verify", "Log in", "Confirm"}

var headlines = []string{
	"Verify your account to continue",
	"Your mailbox storage is almost full",
	"A document has been shared with you",
	"Unusual sign-in activity detected",
	"Confirm your details to receive your package",
	"Your subscription payment failed",
	"Update your billing information",
	"Your account has been limited",
}

// SuccessMessages are the terminal texts of the success category
// (Section 5.2.3). Exported so the terminal-page classifier's training data
// shares the same vocabulary distribution as the corpus.
var SuccessMessages = []string{
	"Congratulations! Your account has been verified successfully.",
	"Thank you. Your information has been submitted and your account is now secure.",
	"Success! Your identity has been confirmed. You may now close this window.",
	"All done. Your subscription has been reactivated, thank you for your patience.",
	"Verification complete. Your details were updated successfully.",
	"Thank you for confirming your information. Your package will be delivered shortly.",
}

// ErrorMessages are the custom-error terminal texts.
var ErrorMessages = []string{
	"An error occurred while processing your request. Please try again later.",
	"Service temporarily unavailable. Our team is working to restore access.",
	"Your session has expired. Please restart the verification process.",
	"We could not process your submission at this time due to a technical problem.",
	"Request failed. The server encountered an unexpected condition.",
}

// AwarenessMessages are fake phishing-awareness/training terminal texts
// (Figure 4); the organization placeholder is substituted per campaign.
var AwarenessMessages = []string{
	"You fell for a %s phishing simulation. Don't worry, your computer is safe!",
	"This was a %s security awareness test. Your data was not stolen and you are safe.",
	"Don't worry! This is a phishing training exercise run by %s. No information was collected.",
	"Gotcha! %s security team ran this simulation. Remember to check links before clicking.",
}

// OtherTerminalMessages are terminal texts that fit none of the categories.
var OtherTerminalMessages = []string{
	"Loading, please wait while we redirect you.",
	"Processing. Do not refresh this page.",
	"Page under maintenance.",
	"Please wait.",
}

// otpLabels label Code fields; the first group reads as 2FA/OTP (counted in
// Section 5.3.3), the second as generic codes.
var otpLabels = []string{
	"An OTP has been sent to the registered mobile number via SMS",
	"Enter the 2FA verification code we sent by SMS",
	"Enter the one time password sent to your phone",
	"2-step verification code sent via text message",
}

var genericCodeLabels = []string{
	"Enter your confirmation code",
	"Access code",
	"Enter the code to continue",
	"Confirmation code from your statement",
}

// pageBuilder assembles one page's HTML and image resources.
type pageBuilder struct {
	d      *design
	rng    *rand.Rand
	images map[string][]byte
	imgSeq int
}

func newPageBuilder(d *design, rng *rand.Rand, images map[string][]byte) *pageBuilder {
	return &pageBuilder{d: d, rng: rng, images: images}
}

func (pb *pageBuilder) addImage(img *raster.Image) string {
	pb.imgSeq++
	path := fmt.Sprintf("/img%d.pxi", pb.imgSeq)
	pb.images[path] = raster.Encode(img)
	return path
}

// header returns the page header markup: cloned brand banner or generic
// logo.
func (pb *pageBuilder) header() string {
	b := pb.d.brand
	if pb.d.clone {
		// Cloning kits paste a capture of the legitimate site and overlay
		// their form on top of it; the banner is part of that capture, so
		// no separate header is emitted here (see clonePage).
		return ""
	}
	logo := b.DrawLogo(pb.rng)
	path := pb.addImage(logo)
	return fmt.Sprintf(`<div><img src="%s" width="%d" height="%d"></div><h2>%s</h2>`,
		path, logo.W, logo.H, dom.Escape(pb.d.headline))
}

// fieldRow renders one input row according to the design's label mode.
// Returns the row HTML, the field's form name, and its display label.
func (pb *pageBuilder) fieldRow(t fieldspec.Type, idx int) (html, name, label string) {
	label = fieldspec.PhraseAtLang(pb.lang(), t, pb.rng.Intn(1<<20))
	name = fieldNameFor(t, pb.rng)
	typeAttr := ""
	switch t {
	case fieldspec.Password:
		typeAttr = ` type="password"`
	case fieldspec.Email:
		if pb.rng.Intn(2) == 0 {
			typeAttr = ` type="email"`
		}
	}
	if t == fieldspec.State && pb.rng.Intn(2) == 0 {
		return fmt.Sprintf(`<div><label>%s</label><select name="%s"><option>Alabama</option><option>Alaska</option><option>Arizona</option></select></div>`,
			dom.Escape(strings.Title(label)), name), name, label
	}
	switch pb.d.labelMode {
	case "placeholder":
		return fmt.Sprintf(`<div><input name="%s" placeholder="%s"%s></div>`,
			name, dom.Escape(label), typeAttr), name, label
	case "attr":
		// The identifier itself carries the signal; no visible label.
		attrName := strings.ReplaceAll(label, " ", "_")
		return fmt.Sprintf(`<div><input name="%s" id="%s"%s></div>`,
			attrName, attrName, typeAttr), attrName, label
	default: // "label"
		return fmt.Sprintf(`<div><label>%s</label><input name="%s"%s></div>`,
			dom.Escape(strings.Title(label)), name, typeAttr), name, label
	}
}

func fieldNameFor(t fieldspec.Type, rng *rand.Rand) string {
	if rng.Intn(2) == 0 {
		return fmt.Sprintf("f%d", rng.Intn(1000))
	}
	return string(t)
}

// keyloggerScript returns the behaviour script for the design's keylogger
// tier, or "".
func (pb *pageBuilder) keyloggerScript() string {
	var action string
	switch pb.d.keyloggerTier {
	case 1:
		action = script.ActionStore
	case 2:
		action = script.ActionSend
	case 3:
		action = script.ActionSendData
	default:
		return ""
	}
	b := script.Behavior{Listeners: []script.Listener{
		{Target: "input", Event: "keydown", Action: action},
	}}
	tag, err := b.Marshal()
	if err != nil {
		return ""
	}
	return tag
}

// wrapPage produces the final HTML document.
func wrapPage(title, headScript, body string) string {
	return fmt.Sprintf(`<html><head><title>%s</title>%s</head><body>%s</body></html>`,
		dom.Escape(title), headScript, body)
}

// dataPageSpec describes a data-stealing page to build.
type dataPageSpec struct {
	fields   []fieldspec.Type
	otpStyle bool // Code fields labelled as OTP/SMS
	ocr      bool // labels only in a background image
	withErr  bool // include an error banner (double-login retry variant)
	clone    bool // overlay the form on a capture of the legit site
	consent  bool // require an "I agree" checkbox to be ticked
}

// buildDataPage renders a data page and returns its HTML plus the display
// labels per field. The spec's clone, ocr, and submit-style dimensions
// compose: a cloned page can also hide its labels in the background capture
// (the Figure 3 USAA page is exactly that) and can also omit standard
// submit controls.
func (pb *pageBuilder) buildDataPage(spec dataPageSpec, actionPath string) (string, []string) {
	// 1. Rows and labels.
	var rows []string
	var labels []string
	for i, t := range spec.fields {
		var rowHTML, label string
		switch {
		case spec.ocr:
			label = pb.labelFor(t, spec.otpStyle)
			rowHTML = fmt.Sprintf(`<div><span style="width:160px"> </span><input name="f%d"></div>`, i)
		case t == fieldspec.Code:
			rowHTML, _, label = pb.codeRow(spec.otpStyle, i)
		default:
			rowHTML, _, label = pb.fieldRow(t, i)
		}
		rows = append(rows, rowHTML)
		labels = append(labels, label)
	}

	// Consent checkbox: many sign-up style pages gate submission on an
	// "I agree" tick; the crawler must check it like a user would.
	if spec.consent {
		rows = append(rows, `<div><input type="checkbox" name="agree"><span>I agree to the terms of service</span></div>`)
	}

	// 2. Form / submit machinery.
	var formHTML string
	formless := pb.d.submitStyle == "formless"
	switch pb.d.submitStyle {
	case "formless":
		formHTML = strings.Join(rows, "") +
			`<canvas data-label="` + dom.Escape(pb.d.buttonTxt) + `" width="90" height="18"></canvas>`
	case "noButton":
		formHTML = fmt.Sprintf(`<form action="%s">%s</form>`, actionPath, strings.Join(rows, ""))
	default:
		formHTML = fmt.Sprintf(`<form action="%s">%s<button>%s</button></form>`,
			actionPath, strings.Join(rows, ""), dom.Escape(pb.d.buttonTxt))
	}

	// 3. Page body: cloned capture background, OCR background, or plain.
	errBanner := ""
	if spec.withErr {
		errBanner = `<div class="error">Password invalid! Please check your credentials and try again.</div>`
	}
	var inner string
	needsBG := spec.ocr || spec.clone
	switch {
	case spec.clone:
		spacer := fmt.Sprintf(`<div style="height:%dpx"> </div>`, 90+pb.rng.Intn(30))
		inner = errBanner + fmt.Sprintf(
			`<div id="bgwrap" style="background-image:url(BGPATH); width:480px; height:360px">%s%s</div>`,
			spacer, formHTML)
	case spec.ocr:
		inner = pb.header() + errBanner +
			`<div id="bgwrap" style="background-image:url(BGPATH)">` + formHTML + `</div>`
	default:
		inner = pb.header() + errBanner + formHTML
	}

	// 4. Second pass: resolve geometry-dependent resources (background
	// labels and click zones) against the real layout.
	probeHTML := strings.Replace(inner, "BGPATH", "/none.pxi", 1)
	probe := dom.Parse("<html><body>" + probeHTML + "</body></html>")
	lay := layout.Compute(probe, browser.ViewportWidth)

	headScript := pb.keyloggerScript()
	if formless {
		zones := pb.zoneForCanvas(probe, lay)
		b := script.Behavior{Listeners: pb.keyloggerListeners(), ClickZones: zones}
		if tag, err := b.Marshal(); err == nil {
			headScript = tag
		}
	}
	if needsBG {
		var wrapBox raster.Rect
		if w := probe.ElementByID("bgwrap"); w != nil {
			wrapBox, _ = lay.Box(w)
		}
		var bg *raster.Image
		if spec.clone {
			bg = pb.d.brand.LegitScreenshot()
			bg.DrawString(fmt.Sprintf("%02d", pb.rng.Intn(100)), bg.W-18, bg.H-12, raster.LightGray)
		} else {
			bg = raster.New(maxInt(wrapBox.W, 40), maxInt(wrapBox.H, 30), raster.White)
		}
		if spec.ocr {
			pb.drawBGLabels(bg, probe, lay, wrapBox, labels)
		}
		path := pb.addImage(bg)
		inner = strings.Replace(inner, "BGPATH", path, 1)
	}
	return wrapPage(pb.d.brand.Name, headScript, inner), labels
}

// labelFor returns the display phrase for a field type.
func (pb *pageBuilder) labelFor(t fieldspec.Type, otp bool) string {
	if t == fieldspec.Code {
		if otp {
			return otpLabels[pb.rng.Intn(len(otpLabels))]
		}
		return genericCodeLabels[pb.rng.Intn(len(genericCodeLabels))]
	}
	return fieldspec.PhraseAtLang(pb.lang(), t, pb.rng.Intn(1<<20))
}

// lang returns the design's label language, defaulting to English.
func (pb *pageBuilder) lang() fieldspec.Lang {
	if pb.d.lang == "" {
		return fieldspec.LangEN
	}
	return pb.d.lang
}

// zoneForCanvas returns the click zone covering the probe's canvas element.
func (pb *pageBuilder) zoneForCanvas(probe *dom.Node, lay *layout.Result) []script.ClickZone {
	cv := probe.ElementsByTag("canvas")
	if len(cv) != 1 {
		return nil
	}
	box, ok := lay.Box(cv[0])
	if !ok {
		return nil
	}
	return []script.ClickZone{{X: box.X, Y: box.Y, W: box.W, H: box.H, Action: "submit"}}
}

// drawBGLabels paints each field's label into the background image beside
// its input box.
func (pb *pageBuilder) drawBGLabels(bg *raster.Image, probe *dom.Node, lay *layout.Result, wrapBox raster.Rect, labels []string) {
	inputs := probe.ElementsByTag("input")
	for i, in := range inputs {
		if i >= len(labels) {
			break
		}
		box, ok := lay.Box(in)
		if !ok {
			continue
		}
		text := strings.ToUpper(labels[i])
		x := box.X - wrapBox.X - raster.StringWidth(text) - 10
		if x < 0 {
			x = 0
		}
		y := box.Y - wrapBox.Y + 3
		// Clear the strip first so clone captures stay readable underneath.
		bg.Fill(raster.R(x-2, y-2, raster.StringWidth(text)+4, raster.GlyphH+4), raster.White)
		bg.DrawString(text, x, y, raster.Black)
	}
}

func (pb *pageBuilder) codeRow(otp bool, idx int) (html, name, label string) {
	if otp {
		label = otpLabels[pb.rng.Intn(len(otpLabels))]
	} else {
		label = genericCodeLabels[pb.rng.Intn(len(genericCodeLabels))]
	}
	name = fmt.Sprintf("code%d", idx)
	return fmt.Sprintf(`<div><span>%s</span><input name="%s"></div>`,
		dom.Escape(label), name), name, label
}

func (pb *pageBuilder) keyloggerListeners() []script.Listener {
	var action string
	switch pb.d.keyloggerTier {
	case 1:
		action = script.ActionStore
	case 2:
		action = script.ActionSend
	case 3:
		action = script.ActionSendData
	default:
		return nil
	}
	return []script.Listener{{Target: "input", Event: "keydown", Action: action}}
}

// cloneWrap overlays page content on a capture of the brand's legitimate
// site when the campaign clones the brand; kits that clone do so on every
// page, including verification pages.
func (pb *pageBuilder) cloneWrap(inner string) string {
	if !pb.d.clone {
		return inner
	}
	shot := pb.d.brand.LegitScreenshot()
	shot.DrawString(fmt.Sprintf("%02d", pb.rng.Intn(100)), shot.W-18, shot.H-12, raster.LightGray)
	path := pb.addImage(shot)
	return fmt.Sprintf(
		`<div style="background-image:url(%s); width:480px; height:360px">`+
			`<div style="height:%dpx"> </div>%s</div>`,
		path, 80+pb.rng.Intn(40), inner)
}

// buildClickThroughPage renders an input-less page with a single advance
// control.
func (pb *pageBuilder) buildClickThroughPage(nextPath string) string {
	msg := headlines[pb.rng.Intn(len(headlines))]
	var control string
	switch pb.rng.Intn(3) {
	case 0:
		control = fmt.Sprintf(`<a class="btn" href="%s">Next</a>`, nextPath)
	case 1:
		control = fmt.Sprintf(`<a href="%s">Continue</a>`, nextPath)
	default:
		control = fmt.Sprintf(`<button id="go" type="button" data-href="%s">Proceed</button>`, nextPath)
	}
	body := pb.header() + pb.cloneWrap(fmt.Sprintf(`<div><p>%s</p></div>%s`, dom.Escape(msg), control))
	return wrapPage(pb.d.brand.Name, "", body)
}

// buildCaptchaPage renders a user-verification page. For known providers it
// embeds the provider's script and a checkbox widget that a click passes;
// custom text CAPTCHAs demand the challenge string (which blocks the
// crawler); custom visual CAPTCHAs present a tile grid with a pass-through
// button.
func (pb *pageBuilder) buildCaptchaPage(provider captcha.Provider, kind captcha.Kind, selfPath, nextPath string) (html string, validate map[string]string) {
	switch provider {
	case captcha.ProviderRecaptcha, captcha.ProviderHcaptcha:
		head := fmt.Sprintf(`<script src="%s"></script>`, captcha.ScriptURL(provider))
		if pb.rng.Intn(5) < 2 {
			// Invisible (behaviour-based) variant: the provider script runs
			// with no visible challenge — only DOM analysis of script srcs
			// reveals it (the paper's third CAPTCHA type).
			body := pb.header() + pb.cloneWrap(fmt.Sprintf(
				`<div><p>Checking your browser before continuing.</p></div><a class="btn" href="%s">Continue</a>`,
				nextPath))
			return wrapPage("Verification", head, body), nil
		}
		img, _ := captcha.Render(captcha.Visual2, pb.rng)
		path := pb.addImage(img)
		body := pb.header() + pb.cloneWrap(fmt.Sprintf(
			`<div><img src="%s" width="%d" height="%d"></div><a class="btn" href="%s">Verify</a>`,
			path, img.W, img.H, nextPath))
		return wrapPage("Verification", head, body), nil
	default:
		img, _ := captcha.Render(kind, pb.rng)
		path := pb.addImage(img)
		if kind.IsText() {
			body := pb.header() + pb.cloneWrap(fmt.Sprintf(
				`<div><img src="%s" width="%d" height="%d"></div>`+
					`<form action="%s"><div><label>Enter the characters shown above</label><input name="cap"></div>`+
					`<button>Verify</button></form>`,
				path, img.W, img.H, selfPath))
			// The challenge can't be known by the crawler: validate the
			// captcha answer as an email address, which six random letters
			// never satisfy.
			return wrapPage("Verification", "", body), map[string]string{"cap": site.ValidateEmail}
		}
		body := pb.header() + pb.cloneWrap(fmt.Sprintf(
			`<div><img src="%s" width="%d" height="%d"></div><a class="btn" href="%s">I have selected all matching images</a>`,
			path, img.W, img.H, nextPath))
		return wrapPage("Verification", "", body), nil
	}
}

// buildTerminalPage renders the end-of-UX page for the given termination
// category.
func (pb *pageBuilder) buildTerminalPage(kind string) string {
	var msg string
	switch kind {
	case site.TermSuccess:
		msg = SuccessMessages[pb.rng.Intn(len(SuccessMessages))]
	case site.TermCustomError:
		msg = ErrorMessages[pb.rng.Intn(len(ErrorMessages))]
	case site.TermAwareness:
		tpl := AwarenessMessages[pb.rng.Intn(len(AwarenessMessages))]
		msg = fmt.Sprintf(tpl, pb.d.awarenessOrg)
	default:
		msg = OtherTerminalMessages[pb.rng.Intn(len(OtherTerminalMessages))]
	}
	body := pb.header() + fmt.Sprintf(`<div><p>%s</p></div>`, dom.Escape(msg))
	return wrapPage(pb.d.brand.Name, "", body)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
