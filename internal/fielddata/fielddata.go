// Package fielddata builds the labelled input-field corpus the field
// classifier is trained and evaluated on, standing in for the 1,310 samples
// the paper's authors hand-labelled from crawled pages (Section 4.2, Table
// 6). Samples are synthesized the way the crawler actually sees field
// descriptions: a label phrase from the taxonomy's keyword bank, decorated
// with the attribute tokens, boilerplate, and noise that surround real
// fields ("enter your ...", "* required", id/name fragments, OCR artifacts).
package fielddata

import (
	"math/rand"
	"strings"

	"repro/internal/fieldspec"
	"repro/internal/textclass"
)

// CorpusSize is the paper's labelled-sample count.
const CorpusSize = 1310

// TrainSize is the paper's training split (the remaining 310 are test).
const TrainSize = 1000

var prefixes = []string{
	"", "enter your", "your", "please enter", "enter", "confirm your",
	"type your", "re-enter", "provide your", "",
}

var suffixes = []string{
	"", "required", "*", "here", "below", "(required)", "field", "",
}

var attrDecor = []string{
	"", "txt", "input", "fld", "form", "value", "user form",
}

// ocrNoise simulates OCR artifacts: dropped or duplicated short tokens.
var ocrNoise = []string{"", "", "", "l", "il", "co"}

// Generate synthesizes one sample for the given type.
func Generate(rng *rand.Rand, t fieldspec.Type) textclass.Sample {
	phrase := fieldspec.PhraseAt(t, rng.Intn(1<<20))
	parts := []string{}
	if p := prefixes[rng.Intn(len(prefixes))]; p != "" {
		parts = append(parts, p)
	}
	parts = append(parts, phrase)
	if s := suffixes[rng.Intn(len(suffixes))]; s != "" {
		parts = append(parts, s)
	}
	// Attribute-style tokens the identifier harvests from id/name.
	if a := attrDecor[rng.Intn(len(attrDecor))]; a != "" {
		parts = append(parts, a)
	}
	// Occasionally append a second phrasing of the same concept, as when
	// both a label element and a placeholder are present.
	if rng.Intn(3) == 0 {
		parts = append(parts, fieldspec.PhraseAt(t, rng.Intn(1<<20)))
	}
	if n := ocrNoise[rng.Intn(len(ocrNoise))]; n != "" {
		parts = append(parts, n)
	}
	return textclass.Sample{Text: strings.Join(parts, " "), Label: string(t)}
}

// Corpus returns the full labelled corpus (CorpusSize samples), balanced
// across the taxonomy with extra weight on the most common field types,
// roughly matching the per-category counts of Table 6.
func Corpus(seed int64) []textclass.Sample {
	rng := rand.New(rand.NewSource(seed))
	// Table 6 test-split counts scaled up to the full corpus keep the same
	// class balance the paper had.
	weights := map[fieldspec.Type]int{
		fieldspec.Email: 23, fieldspec.UserID: 6, fieldspec.Password: 36,
		fieldspec.Name: 52, fieldspec.Address: 18, fieldspec.Phone: 23,
		fieldspec.City: 12, fieldspec.State: 5, fieldspec.Question: 10,
		fieldspec.Answer: 14, fieldspec.Date: 10, fieldspec.Code: 21,
		fieldspec.License: 5, fieldspec.SSN: 11,
		fieldspec.Card: 25, fieldspec.ExpDate: 18, fieldspec.CVV: 13,
		fieldspec.Search: 8,
	}
	totalW := 0
	for _, w := range weights {
		totalW += w
	}
	var out []textclass.Sample
	for _, t := range fieldspec.All() {
		n := weights[t] * CorpusSize / totalW
		if n < 10 {
			n = 10
		}
		for i := 0; i < n; i++ {
			out = append(out, Generate(rng, t))
		}
	}
	// Top up or trim to exactly CorpusSize.
	for len(out) < CorpusSize {
		t := fieldspec.All()[rng.Intn(len(fieldspec.All()))]
		out = append(out, Generate(rng, t))
	}
	out = out[:CorpusSize]
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Split divides the corpus into the paper's 1,000-sample training set and
// 310-sample test set.
func Split(corpus []textclass.Sample) (train, test []textclass.Sample) {
	n := TrainSize
	if n > len(corpus) {
		n = len(corpus)
	}
	return corpus[:n], corpus[n:]
}

// TrainDefault trains the field classifier on the default corpus with the
// paper's protocol and returns it.
func TrainDefault(seed int64) (*textclass.Model, error) {
	train, _ := Split(Corpus(seed))
	return textclass.Train(train, textclass.TrainConfig{Seed: seed, Epochs: 40})
}

// GenerateLang synthesizes one sample for the given type in the given
// language, using the localized keyword banks (the paper's Section 6
// multi-language extension).
func GenerateLang(rng *rand.Rand, lang fieldspec.Lang, t fieldspec.Type) textclass.Sample {
	if lang == fieldspec.LangEN {
		return Generate(rng, t)
	}
	phrase := fieldspec.PhraseAtLang(lang, t, rng.Intn(1<<20))
	parts := []string{phrase}
	if rng.Intn(3) == 0 {
		parts = append(parts, fieldspec.PhraseAtLang(lang, t, rng.Intn(1<<20)))
	}
	if s := suffixes[rng.Intn(len(suffixes))]; s != "" && s != "required" && s != "below" && s != "here" {
		parts = append(parts, s)
	}
	return textclass.Sample{Text: strings.Join(parts, " "), Label: string(t)}
}

// CorpusMultilingual extends the default corpus with localized samples for
// every language and the field types its bank covers, keeping labels
// unchanged so one classifier serves all languages.
func CorpusMultilingual(seed int64) []textclass.Sample {
	out := Corpus(seed)
	rng := rand.New(rand.NewSource(seed + 1))
	for _, lang := range fieldspec.Langs() {
		if lang == fieldspec.LangEN {
			continue
		}
		for _, t := range fieldspec.All() {
			if !fieldspec.LangSupports(lang, t) {
				continue
			}
			for i := 0; i < 12; i++ {
				out = append(out, GenerateLang(rng, lang, t))
			}
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// TrainMultilingual trains the classifier on the multilingual corpus.
func TrainMultilingual(seed int64) (*textclass.Model, error) {
	return textclass.Train(CorpusMultilingual(seed), textclass.TrainConfig{Seed: seed, Epochs: 40})
}
