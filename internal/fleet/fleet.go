// Package fleet is the distributed crawl plane: one coordinator process
// shards the deterministic feed into URL-index range leases and hands them
// to worker processes over a small JSON-over-HTTP wire protocol; workers
// crawl their ranges with the existing farm, journaling each shard into
// its own segment directory, and report per-shard statistics back. Leases
// expire when a worker misses its heartbeats, so a SIGKILLed worker's
// range is re-issued to a live one, and the coordinator's merged view —
// sessions deduplicated by seed URL, outcome and stage histograms folded
// through the associative farm.Tally / Stats.Merge — is byte-identical to
// what a single process crawling the whole feed would have produced
// ("N processes × M workers ≡ 1 × 1").
//
// The protocol deliberately carries no URLs in the hot path: both sides
// derive the same feed from (-sites, -seed), so a lease is just an index
// range, and the only URL lists on the wire are the already-completed sets
// a resumed coordinator sends so workers skip finished work. See
// docs/DISTRIBUTED.md for the message reference and failure model.
package fleet

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/farm"
	"repro/internal/metrics"
)

// Wire paths the coordinator serves. Workers POST JSON request bodies and
// receive JSON responses; /status additionally answers GET with the
// fleet-wide progress view (plain text, or JSON with ?format=json).
const (
	PathLease     = "/fleet/lease"
	PathHeartbeat = "/fleet/heartbeat"
	PathResult    = "/fleet/result"
	PathStatus    = "/status"
)

// Params pins the deterministic universe a fleet crawls. Every worker
// derives the feed locally, so the coordinator refuses workers whose
// parameters would derive a different one — a mismatched -sites or -seed
// would silently corrupt the merged output otherwise.
type Params struct {
	Sites     int    `json:"sites"`
	Seed      int64  `json:"seed"`
	ChaosSeed int64  `json:"chaosSeed"`
	Chaos     string `json:"chaos,omitempty"` // fingerprint of the chaos profile ("" = healthy feed)
	FeedURLs  int    `json:"feedUrls"`        // full feed length, pre -sample
	// Triage fingerprints the triage configuration ("" = triage off;
	// otherwise "threshold=…,topk=…"). Triage decides which URLs get full
	// sessions, so a worker disagreeing on it would merge a different
	// session universe.
	Triage string `json:"triage,omitempty"`
	// Cloak fingerprints the cloaking configuration ("" = cloaking off;
	// otherwise "rate=…,retries=…"). The rate changes the generated corpus
	// and the retry budget changes session bytes, so workers must agree on
	// both.
	Cloak string `json:"cloak,omitempty"`
	// MinCampaign is the corpus clone-heaviness knob; it changes the
	// generated sites, so it is part of the universe fingerprint.
	MinCampaign int `json:"minCampaign,omitempty"`
}

func (p Params) String() string {
	return fmt.Sprintf("sites=%d seed=%d chaosSeed=%d chaos=%q feed=%d triage=%q cloak=%q minCampaign=%d",
		p.Sites, p.Seed, p.ChaosSeed, p.Chaos, p.FeedURLs, p.Triage, p.Cloak, p.MinCampaign)
}

// Lease is one unit of fleet work: crawl the feed-index range
// [Start, End), skipping the Completed URLs a previous incarnation already
// journaled. Attempt distinguishes re-issues of the same range after a
// lease expiry; each attempt journals into its own shard directory so a
// stale worker can never write into a directory its replacement has open.
type Lease struct {
	ID      int `json:"id"`
	Start   int `json:"start"`
	End     int `json:"end"`
	Attempt int `json:"attempt"`
	// Completed lists URLs inside [Start, End) that the coordinator knows
	// are already journaled (sorted; from the resume scan at startup).
	Completed []string `json:"completed,omitempty"`
}

// Range renders the lease's half-open index range for logs and status.
func (l Lease) Range() string { return fmt.Sprintf("[%d,%d)", l.Start, l.End) }

// LeaseRequest asks the coordinator for work.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Params Params `json:"params"`
}

// LeaseResponse carries a granted lease, or tells the worker to wait
// (everything is leased out but the run is not finished — an expiry may
// free a range) or that the whole feed is crawled and it should exit.
type LeaseResponse struct {
	Lease *Lease `json:"lease,omitempty"`
	Wait  bool   `json:"wait,omitempty"`
	Done  bool   `json:"done,omitempty"`
	// RetryMs is how long a waiting worker should sleep before asking
	// again.
	RetryMs int `json:"retryMs,omitempty"`
}

// Progress is the cumulative live-progress payload a worker reports with
// each heartbeat: session counts across every lease it has crawled so far
// plus its stage-latency snapshot, feeding the coordinator's fleet-wide
// /status view.
type Progress struct {
	Done     int `json:"done"`
	Retried  int `json:"retried"`
	Degraded int `json:"degraded"`
	Failed   int `json:"failed"`
	Panics   int `json:"panics"`
	// FastPathed counts sessions resolved by the triage fast path
	// (attributed to a campaign or cut at the lexical stage) — included in
	// Done.
	FastPathed int                 `json:"fastPathed,omitempty"`
	Stages     []metrics.StageStat `json:"stages,omitempty"`
}

// HeartbeatRequest renews a lease and reports progress.
type HeartbeatRequest struct {
	Worker   string   `json:"worker"`
	LeaseID  int      `json:"leaseId"`
	Attempt  int      `json:"attempt"`
	Progress Progress `json:"progress"`
}

// HeartbeatResponse acknowledges a heartbeat. Valid is false when the
// lease no longer belongs to this worker/attempt (it expired and was
// re-issued); the worker may finish its shard, but the result will be
// rejected as stale.
type HeartbeatResponse struct {
	Valid bool `json:"valid"`
}

// ResultRequest submits a finished shard: the per-shard farm statistics.
// The sessions themselves are already durable in the shard's journal
// directory — the result message only has to say "range done, stats
// attached", which is what keeps the protocol small.
type ResultRequest struct {
	Worker  string     `json:"worker"`
	LeaseID int        `json:"leaseId"`
	Attempt int        `json:"attempt"`
	Stats   farm.Stats `json:"stats"`
}

// ResultResponse reports whether the shard was accepted. A result for a
// re-issued lease (stale attempt) or for a range another worker already
// completed is rejected — the duplicate-result suppression that keeps
// re-issued work from being double-counted.
type ResultResponse struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// DefaultLeaseSites is how many feed URLs one lease covers by default:
// small enough that a lost worker forfeits little work, large enough that
// lease traffic stays negligible next to crawling.
const DefaultLeaseSites = 100

// DefaultLeaseTTL is how long a lease survives without a heartbeat before
// the coordinator reclaims and re-issues it.
const DefaultLeaseTTL = 10 * time.Second

// DefaultHeartbeatEvery is the worker heartbeat interval; it must beat
// several times per TTL so one dropped request cannot expire a live lease.
const DefaultHeartbeatEvery = time.Second

// ShardDir names the journal segment directory for one lease attempt under
// the fleet's journal root. Ranges are stable across coordinator restarts
// (they derive from the feed and the lease size), so a restarted
// coordinator re-issuing attempt 1 of a range reuses the directory a dead
// previous incarnation left behind — the journal's own recovery and
// completed-URL index then resume the shard — while a mid-run re-issue
// bumps the attempt and gets a fresh directory no stale worker holds open.
func ShardDir(root string, l Lease) string {
	return filepath.Join(root, fmt.Sprintf("shard-%06d-%06d-a%02d", l.Start, l.End, l.Attempt))
}
