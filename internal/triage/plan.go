package triage

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/browser"
	"repro/internal/crawler"
)

// Options are the operator-facing triage knobs (mirrored by the
// cmd/phishcrawl -campaign-threshold and -triage-topk flags).
type Options struct {
	// CampaignThreshold is the attribution similarity cut in [0, 1]
	// (0 = DefaultCampaignThreshold).
	CampaignThreshold float64
	// TopK, when > 0, keeps only the K lexically highest-scored feed
	// entries; the rest are cut before any fetch happens.
	TopK int
}

func (o Options) withDefaults() Options {
	if o.CampaignThreshold == 0 {
		o.CampaignThreshold = DefaultCampaignThreshold
	}
	return o
}

// Config configures plan building.
type Config struct {
	Options
	// Workers bounds probe parallelism (<= 0 probes serially).
	Workers int
	// NewBrowser builds the probe browser — the same factory (same
	// transport, same chaos wrap, same fetch timeout) the crawler uses.
	NewBrowser func() *browser.Browser
	// BrandTokens is the lowercase brand vocabulary for the lexical
	// brand-in-host feature.
	BrandTokens []string
}

// Decision is a plan entry's fate.
type Decision string

const (
	// DecisionFull sends the URL through a full interactive crawl session
	// (and, when its probe was healthy, founds a new indexed campaign).
	DecisionFull Decision = "full"
	// DecisionAttributed fast-paths the URL: its probe matched an indexed
	// campaign at or above the threshold, so the session is synthesized
	// from the probe fingerprint.
	DecisionAttributed Decision = "attributed"
	// DecisionCut drops the URL at the lexical stage (-triage-topk).
	DecisionCut Decision = "cut"
)

// PlanEntry is the triage verdict for one feed index.
type PlanEntry struct {
	FeedIndex int
	URL       string
	Score     float64
	Decision  Decision
	// Campaign is the triage campaign key ("tc-00012"): the campaign this
	// entry founded (full, healthy probe) or was attributed to. Empty for
	// cut entries and full sessions whose probe failed.
	Campaign string
	// Similarity is the attribution similarity (attributed entries only).
	Similarity float64

	fp *Fingerprint
}

// Plan is the precomputed triage verdict for a whole feed: a pure function
// of (feed URLs, Config), so every worker count, resumed run, and fleet
// member derives the identical plan.
type Plan struct {
	Threshold float64
	TopK      int
	Entries   []PlanEntry
	// Campaigns is the number of campaigns the index discovered.
	Campaigns int
}

// CampaignKey names triage campaign id in logs and reports.
func CampaignKey(id int) string { return fmt.Sprintf("tc-%05d", id) }

// BuildPlan scores, cuts, probes, and clusters the feed. Stage order:
// lexical scores for every URL; the optional top-K cut; one probe fetch per
// surviving URL (parallel — fingerprints are pure per URL); then a
// sequential feed-order pass over the banded index assigning each healthy
// probe to an existing campaign (>= threshold) or founding a new one.
func BuildPlan(urls []string, cfg Config) *Plan {
	opts := cfg.Options.withDefaults()
	p := &Plan{Threshold: opts.CampaignThreshold, TopK: opts.TopK, Entries: make([]PlanEntry, len(urls))}

	scores, order := Rank(urls, cfg.BrandTokens)
	eligible := make([]bool, len(urls))
	for rank, idx := range order {
		eligible[idx] = opts.TopK <= 0 || rank < opts.TopK
	}

	fps := probeAll(urls, eligible, cfg.Workers, cfg.NewBrowser)

	ix := NewIndex()
	for i, u := range urls {
		e := PlanEntry{FeedIndex: i, URL: u, Score: scores[i], Decision: DecisionFull, fp: fps[i]}
		switch {
		case !eligible[i]:
			e.Decision = DecisionCut
		case fps[i] == nil || !fps[i].OK:
			// Unhealthy probe: the full session classifies the failure.
		default:
			if id, sim, ok := ix.Lookup(fps[i]); ok && sim >= opts.CampaignThreshold {
				e.Decision = DecisionAttributed
				e.Campaign = CampaignKey(id)
				e.Similarity = sim
			} else {
				e.Campaign = CampaignKey(ix.Add(fps[i]))
			}
		}
		p.Entries[i] = e
	}
	p.Campaigns = ix.Len()
	return p
}

// FastPath returns the synthesized session log for a fast-pathed feed
// index, or nil when the URL needs a full crawl. Each call builds a fresh
// log (the farm's completion path mutates it). This is the farm's
// pre-session hook: a non-nil return costs no browser session.
func (p *Plan) FastPath(idx int, url string) *crawler.SessionLog {
	if p == nil || idx < 0 || idx >= len(p.Entries) || p.Entries[idx].URL != url {
		return nil
	}
	e := &p.Entries[idx]
	switch e.Decision {
	case DecisionCut:
		return &crawler.SessionLog{
			SeedURL:     url,
			Outcome:     crawler.OutcomeTriagedOut,
			TriageScore: e.Score,
		}
	case DecisionAttributed:
		fp := e.fp
		lg := &crawler.SessionLog{
			SeedURL:          url,
			Outcome:          crawler.OutcomeAttributed,
			TriageScore:      e.Score,
			TriageCampaign:   e.Campaign,
			TriageSimilarity: e.Similarity,
		}
		if fp != nil {
			lg.Pages = []crawler.PageLog{{
				URL:     fp.URL,
				Host:    fp.Host,
				Status:  fp.Status,
				Title:   fp.Title,
				Text:    fp.Text,
				DOMHash: fp.DOMHash,
				PHash:   fp.PHash,
			}}
			lg.FirstPageEmbedding = fp.Emb
		}
		return lg
	}
	return nil
}

// Stamp attaches the plan's verdict to a finished session log (full
// sessions get their lexical score and, when their probe founded a
// campaign, the campaign key; fast-path logs already carry theirs). Keyed
// by the log's FeedIndex.
func (p *Plan) Stamp(lg *crawler.SessionLog) {
	if p == nil || lg == nil || lg.FeedIndex < 0 || lg.FeedIndex >= len(p.Entries) {
		return
	}
	e := &p.Entries[lg.FeedIndex]
	if e.URL != lg.SeedURL {
		return
	}
	lg.TriageScore = e.Score
	if lg.TriageCampaign == "" {
		lg.TriageCampaign = e.Campaign
	}
	if e.Decision == DecisionAttributed {
		lg.TriageSimilarity = e.Similarity
	}
}

// Funnel summarizes the plan's stage counts.
type Funnel struct {
	Total      int
	Cut        int
	Attributed int
	Full       int
}

// Funnel counts the plan's decisions.
func (p *Plan) Funnel() Funnel {
	f := Funnel{Total: len(p.Entries)}
	for i := range p.Entries {
		switch p.Entries[i].Decision {
		case DecisionCut:
			f.Cut++
		case DecisionAttributed:
			f.Attributed++
		default:
			f.Full++
		}
	}
	return f
}

// planRecord is the journaled form of a plan: config plus the per-entry
// verdicts and campaign index assignments — compact (no fingerprints), and
// canonical (field order fixed by the struct), so two encodings of the same
// plan are byte-equal.
type planRecord struct {
	Threshold float64       `json:"threshold"`
	TopK      int           `json:"topK"`
	Campaigns int           `json:"campaigns"`
	Entries   []entryRecord `json:"entries"`
}

type entryRecord struct {
	Decision   Decision `json:"d"`
	Score      float64  `json:"s"`
	Campaign   string   `json:"c,omitempty"`
	Similarity float64  `json:"m,omitempty"`
}

// Encode serializes the plan's verdicts for the journal. A resumed run (or
// a fleet shard) rebuilds the plan from the feed and verifies it against
// the journaled record with Verify — persisting the index entries while
// keeping the journal a byte store.
func (p *Plan) Encode() ([]byte, error) {
	rec := planRecord{Threshold: p.Threshold, TopK: p.TopK, Campaigns: p.Campaigns,
		Entries: make([]entryRecord, len(p.Entries))}
	for i := range p.Entries {
		e := &p.Entries[i]
		rec.Entries[i] = entryRecord{Decision: e.Decision, Score: e.Score,
			Campaign: e.Campaign, Similarity: e.Similarity}
	}
	return json.Marshal(&rec)
}

// Verify checks a journaled plan record against this (rebuilt) plan.
// A mismatch means the journal was recorded under different triage flags,
// a different corpus, or a different code version — resuming would mix two
// different triage universes in one journal.
func (p *Plan) Verify(stored []byte) error {
	want, err := p.Encode()
	if err != nil {
		return fmt.Errorf("triage: encoding plan: %w", err)
	}
	if !bytes.Equal(stored, want) {
		return fmt.Errorf("triage: journaled plan does not match the plan derived from this feed and these flags (-triage/-campaign-threshold/-triage-topk changed, or the journal belongs to a different corpus)")
	}
	return nil
}
