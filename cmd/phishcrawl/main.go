// Command phishcrawl runs the full measurement pipeline: generate the
// corpus, serve it, train the crawler's models, and crawl every site with
// the farm, printing per-outcome statistics, the failure taxonomy,
// per-stage timings, and throughput. The -chaos flags inject a
// deterministic mix of dead/slow/flaky/5xx/truncated/takedown sites into
// the feed (see docs/OPERATIONS.md); the -cpuprofile/-memprofile flags
// capture pprof profiles of the run for performance work.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sessionio"
)

func main() {
	numSites := flag.Int("sites", 1000, "corpus size")
	seed := flag.Int64("seed", 42, "seed")
	workers := flag.Int("workers", 30, "parallel crawl sessions (paper: 30)")
	sample := flag.Int("sample", 0, "crawl only the first N sites (0 = all)")
	out := flag.String("o", "", "write session logs as JSON Lines to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the crawl to this file")

	def := chaos.DefaultProfile()
	chaosOn := flag.Bool("chaos", false, "inject operational faults into the feed (dead/stalling/slow/5xx/truncated/takedown/flaky sites)")
	chaosSeed := flag.Int64("chaos-seed", 0, "fault-assignment seed (0 = derive from -seed)")
	deadRate := flag.Float64("chaos-dead", def.DeadRate, "fraction of sites refusing connections")
	stallRate := flag.Float64("chaos-stall", def.StallRate, "fraction of sites stalling past the fetch deadline")
	slowRate := flag.Float64("chaos-slow", def.SlowRate, "fraction of sites answering slowly but within deadline")
	serrRate := flag.Float64("chaos-5xx", def.ServerErrorRate, "fraction of sites answering every request with a 503")
	truncRate := flag.Float64("chaos-truncate", def.TruncateRate, "fraction of sites truncating response bodies")
	takedownRate := flag.Float64("chaos-takedown", def.TakedownRate, "fraction of sites replaced by a takedown page")
	flakyRate := flag.Float64("chaos-flaky", def.FlakyRate, "fraction of sites resetting their first connections")
	retries := flag.Int("retries", 0, "extra attempts per transiently-failed session (0 = default 2, negative disables)")
	retryBase := flag.Duration("retry-base", 0, "backoff before the first retry (0 = farm default)")
	retryMax := flag.Duration("retry-max", 0, "cap on the exponential backoff (0 = farm default)")
	sessionBudget := flag.Duration("session-budget", 0, "per-session wall-clock budget (0 = crawler default, the paper's 20-minute timeout scaled)")
	fetchTimeout := flag.Duration("fetch-timeout", 0, "per-fetch deadline (0 = browser default)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := core.Options{
		NumSites:      *numSites,
		Seed:          *seed,
		Workers:       *workers,
		ChaosSeed:     *chaosSeed,
		SessionBudget: *sessionBudget,
		FetchTimeout:  *fetchTimeout,
		MaxRetries:    *retries,
		RetryBase:     *retryBase,
		RetryMax:      *retryMax,
	}
	if *chaosOn {
		opts.Chaos = &chaos.Profile{
			DeadRate:        *deadRate,
			StallRate:       *stallRate,
			SlowRate:        *slowRate,
			ServerErrorRate: *serrRate,
			TruncateRate:    *truncRate,
			TakedownRate:    *takedownRate,
			FlakyRate:       *flakyRate,
		}
		// Keep stall-vs-deadline separation sane at synthetic timescale:
		// a stalling site must outlive the fetch deadline.
		if opts.FetchTimeout == 0 {
			opts.FetchTimeout = 250 * time.Millisecond
		}
	}

	fmt.Printf("Building pipeline (%d sites, seed %d)...\n", *numSites, *seed)
	p, err := core.NewPipeline(opts)
	if err != nil {
		log.Fatal(err)
	}
	if p.Injector != nil {
		fmt.Printf("Chaos: injecting faults over %.0f%% of sites (seed %d)\n",
			p.Injector.Profile.FaultRate()*100, p.Injector.Seed)
	}
	fmt.Printf("Corpus: %d sites in %d campaigns. Crawling with %d workers...\n",
		len(p.Corpus.Sites), p.Corpus.Campaigns, *workers)
	if *sample > 0 {
		p.CrawlSample(*sample)
	} else {
		p.Crawl()
	}

	fmt.Printf("\nCrawled %d sites in %s (%.0f sites/day extrapolated; paper: >1,000/day)\n",
		p.Stats.Sites, p.Stats.Elapsed.Round(1e6), p.Stats.SitesPerDay())
	var outcomes []string
	for o := range p.Stats.Outcomes {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		fmt.Printf("  %-12s %d\n", o, p.Stats.Outcomes[o])
	}

	pages, fields := 0, 0
	for _, l := range p.Logs {
		pages += len(l.Pages)
		for _, pg := range l.Pages {
			fields += len(pg.Fields)
		}
	}
	fmt.Printf("Pages visited: %d; input fields identified and filled: %d\n", pages, fields)

	fmt.Printf("\n%s", report.FailureTable(analysis.FailureTaxonomy(p.Logs), p.Stats))

	if len(p.Stats.Stages) > 0 {
		fmt.Printf("\nPer-stage timing (aggregated across workers):\n%s", metrics.StageTable(p.Stats.Stages))
	}

	if *out != "" {
		if err := sessionio.WriteFile(*out, p.Logs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("session logs written to %s\n", *out)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}
}
