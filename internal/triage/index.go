package triage

import (
	"sort"

	"repro/internal/phash"
	"repro/internal/visualphish"
)

// Bands splits the 256-bit perceptual hash into 16 bands of 16 bits for
// LSH candidate lookup: two pages from the same kit agree on (nearly) every
// band, so they collide in (nearly) every bucket, while unrelated pages
// rarely collide in any. Lookup cost is then O(candidates), not O(index).
const Bands = 16

const bandBits = phash.Bits / Bands // 16

// DefaultCampaignThreshold is the similarity (see Similarity) at or above
// which a probed page is attributed to an indexed campaign. Calibrated
// against the synthetic corpus: identical kit deployments score 1.0 (equal
// DOM hash) and near-duplicates stay above 0.9, while distinct campaigns —
// pHash distance >= 10 of 256 plus embedding divergence — fall below 0.8
// even when they share a brand.
const DefaultCampaignThreshold = 0.9

// Similarity scores two fingerprints in [0, 1]. Equal non-empty content
// hashes are a byte-identical kit deployment: similarity 1. Otherwise the
// perceptual distance blends the raw pHash (normalized over the meaningful
// range, 16 bits — twice the distance-8 radius analysis clusters campaigns
// at, so a distinct campaign at distance >= 8 already loses >= 0.25
// similarity from this term alone) with the visualphish embedding distance
// (thumbnail + histogram + hash; its same-design range is ~[0, 0.5]).
func Similarity(a, b *Fingerprint) float64 {
	if a.ContentHash != "" && a.ContentHash == b.ContentHash {
		return 1
	}
	hd := float64(phash.Distance(a.PHash, b.PHash)) / 16
	if hd > 1 {
		hd = 1
	}
	vd := visualphish.Distance(a.Emb, b.Emb) / 0.5
	if vd > 1 {
		vd = 1
	}
	return 1 - 0.5*hd - 0.5*vd
}

// Index is the campaign near-duplicate index: one representative
// fingerprint per discovered campaign, reachable by exact content hash or
// by pHash band collision. Campaign IDs are dense ints in founding order.
type Index struct {
	reps    []*Fingerprint
	content map[string]int
	buckets [Bands]map[uint16][]int
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	ix := &Index{content: map[string]int{}}
	for b := range ix.buckets {
		ix.buckets[b] = map[uint16][]int{}
	}
	return ix
}

// Len returns the number of indexed campaigns.
func (ix *Index) Len() int { return len(ix.reps) }

// bandKey extracts band b (0..Bands-1) of h as a bucket key.
func bandKey(h phash.Hash, b int) uint16 {
	word := h[b*bandBits/64]
	return uint16(word >> (uint(b*bandBits) % 64))
}

// Add founds a new campaign represented by fp and returns its ID.
func (ix *Index) Add(fp *Fingerprint) int {
	id := len(ix.reps)
	ix.reps = append(ix.reps, fp)
	if fp.ContentHash != "" {
		if _, taken := ix.content[fp.ContentHash]; !taken {
			ix.content[fp.ContentHash] = id
		}
	}
	for b := 0; b < Bands; b++ {
		k := bandKey(fp.PHash, b)
		ix.buckets[b][k] = append(ix.buckets[b][k], id)
	}
	return id
}

// Lookup finds the indexed campaign most similar to fp. The candidate set
// is gathered by computed key only — never by ranging over a bucket map —
// and sorted by campaign ID before scoring, so the best match (ties broken
// toward the earliest-founded campaign) is identical in every process
// regardless of map iteration order.
func (ix *Index) Lookup(fp *Fingerprint) (campaign int, sim float64, ok bool) {
	if fp.ContentHash != "" {
		if id, hit := ix.content[fp.ContentHash]; hit {
			return id, 1, true
		}
	}
	seen := map[int]bool{}
	var cand []int
	for b := 0; b < Bands; b++ {
		for _, id := range ix.buckets[b][bandKey(fp.PHash, b)] {
			if !seen[id] {
				seen[id] = true
				cand = append(cand, id)
			}
		}
	}
	sort.Ints(cand)
	best, bestSim := -1, 0.0
	for _, id := range cand {
		if s := Similarity(fp, ix.reps[id]); s > bestSim {
			best, bestSim = id, s
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestSim, true
}

// Rep returns campaign id's representative fingerprint.
func (ix *Index) Rep(id int) *Fingerprint { return ix.reps[id] }
