// Package outside drops the same errors outside the durability path; the
// checkedsync rule is scoped to journal/sessionio and stays quiet here.
package outside

import "strings"

func quiet(b *strings.Builder) {
	b.WriteString("x")
}
