package phash

import (
	"testing"

	"repro/internal/raster"
)

// TestUniformRenders pins the degenerate-image behavior triage probes can
// hit (a blank page, a solid interstitial): a uniform image has no
// gradients and every cell equals the mean, so the hash is all zeros —
// which also means an all-black and an all-white render hash identically.
// Campaign attribution therefore never keys on the raw hash alone for such
// pages; the content hash and embedding (which do see color) discriminate.
func TestUniformRenders(t *testing.T) {
	black := Compute(raster.New(64, 64, raster.Black))
	white := Compute(raster.New(64, 64, raster.White))
	if black != (Hash{}) {
		t.Errorf("all-black hash = %s, want all zeros", black)
	}
	if white != (Hash{}) {
		t.Errorf("all-white hash = %s, want all zeros", white)
	}
	if d := Distance(black, white); d != 0 {
		t.Errorf("Distance(black, white) = %d, want 0 (both degenerate)", d)
	}
}

// TestDistanceIdentity: Distance(a, a) == 0 for a non-trivial render.
func TestDistanceIdentity(t *testing.T) {
	img := raster.New(100, 80, raster.White)
	for y := 20; y < 40; y++ {
		for x := 10; x < 60; x++ {
			img.Pix[y*img.W+x] = raster.Navy
		}
	}
	h := Compute(img)
	if h == (Hash{}) {
		t.Fatal("structured image hashed to zero; test image too plain")
	}
	if d := Distance(h, h); d != 0 {
		t.Errorf("Distance(h, h) = %d, want 0", d)
	}
}

// TestDistanceSingleBitFlips walks one-bit flips across the hash, pinning
// the positions triage's 16-bit LSH bands cut on: the first and last bit of
// a band, the word boundaries at 63/64 and 127/128 (where the gradient half
// hands over to the brightness half), and the final bit. Each flip must
// cost exactly 1 — the popcount loop has no edge seams.
func TestDistanceSingleBitFlips(t *testing.T) {
	base := Hash{0x0123456789ABCDEF, 0xFEDCBA9876543210, 0xAAAA5555AAAA5555, 0x00FF00FF00FF00FF}
	for _, bit := range []int{0, 15, 16, 31, 32, 47, 48, 63, 64, 79, 127, 128, 143, 191, 192, 239, 240, 255} {
		flipped := base
		flipped[bit/64] ^= 1 << uint(bit%64)
		if d := Distance(base, flipped); d != 1 {
			t.Errorf("bit %d: Distance = %d, want 1", bit, d)
		}
		if d := Distance(flipped, base); d != 1 {
			t.Errorf("bit %d (reversed): Distance = %d, want 1", bit, d)
		}
	}
}
