package vision

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/raster"
)

// Well-known detector class names beyond the CAPTCHA kinds.
const (
	ClassButton     = "button"
	ClassLogo       = "logo"
	ClassBackground = "background"
)

// Annotation is a ground-truth object in a training or evaluation page.
type Annotation struct {
	Class string
	Box   raster.Rect
}

// Example is one annotated page.
type Example struct {
	Image       *raster.Image
	Annotations []Annotation
}

// Detection is one detector output.
type Detection struct {
	Class string
	Score float64
	Box   raster.Rect
}

// classStats holds fitted per-class feature statistics.
type classStats struct {
	Name  string    `json:"name"`
	Mean  []float64 `json:"mean"`
	Std   []float64 `json:"std"`
	Count int       `json:"count"`
}

// Detector is the trained object detector.
type Detector struct {
	Classes []classStats `json:"classes"`
	// Threshold is the minimum foreground-vs-background confidence for a
	// detection to be emitted. Default 0.5.
	Threshold float64 `json:"threshold"`
}

// ErrNoTraining is returned when Train receives no annotations.
var ErrNoTraining = errors.New("vision: no training annotations")

// Train fits per-class feature statistics on the annotated examples and
// samples background regions as the negative class. It is the counterpart of
// the paper's Faster R-CNN fine-tuning run (BASE_LR 0.001, MAX_ITER 3000);
// here "training" is moment estimation, deterministic given the seed used
// for background sampling.
func Train(examples []Example, seed int64) (*Detector, error) {
	type acc struct {
		sum, sumSq []float64
		n          int
	}
	accs := map[string]*acc{}
	observe := func(class string, f []float64) {
		a := accs[class]
		if a == nil {
			a = &acc{sum: make([]float64, FeatureDim), sumSq: make([]float64, FeatureDim)}
			accs[class] = a
		}
		for i, v := range f {
			a.sum[i] += v
			a.sumSq[i] += v * v
		}
		a.n++
	}
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for _, ex := range examples {
		for _, an := range ex.Annotations {
			observe(an.Class, Features(ex.Image, an.Box))
			total++
		}
		// Background negatives: random crops that do not overlap any
		// annotation by more than 20% IoU.
		for tries, got := 0, 0; tries < 40 && got < 3; tries++ {
			w := 20 + rng.Intn(160)
			h := 12 + rng.Intn(60)
			if ex.Image.W <= w || ex.Image.H <= h {
				continue
			}
			box := raster.R(rng.Intn(ex.Image.W-w), rng.Intn(ex.Image.H-h), w, h)
			overlaps := false
			for _, an := range ex.Annotations {
				if box.IoU(an.Box) > 0.2 {
					overlaps = true
					break
				}
			}
			if overlaps {
				continue
			}
			observe(ClassBackground, Features(ex.Image, box))
			got++
		}
	}
	if total == 0 {
		return nil, ErrNoTraining
	}
	d := &Detector{Threshold: 0.5}
	for name, a := range accs {
		cs := classStats{Name: name, Count: a.n,
			Mean: make([]float64, FeatureDim), Std: make([]float64, FeatureDim)}
		for i := 0; i < FeatureDim; i++ {
			mean := a.sum[i] / float64(a.n)
			variance := a.sumSq[i]/float64(a.n) - mean*mean
			if variance < 0 {
				variance = 0
			}
			cs.Mean[i] = mean
			cs.Std[i] = math.Sqrt(variance)
			if cs.Std[i] < 0.05 {
				cs.Std[i] = 0.05 // floor keeps scoring well-conditioned
			}
		}
		d.Classes = append(d.Classes, cs)
	}
	// Deterministic class order.
	for i := 0; i < len(d.Classes); i++ {
		for j := i + 1; j < len(d.Classes); j++ {
			if d.Classes[j].Name < d.Classes[i].Name {
				d.Classes[i], d.Classes[j] = d.Classes[j], d.Classes[i]
			}
		}
	}
	return d, nil
}

// classScore returns a similarity in (0, 1]: exp of the negative mean
// squared z-distance from the class centroid.
func (cs *classStats) score(f []float64) float64 {
	d2 := 0.0
	for i, v := range f {
		z := (v - cs.Mean[i]) / cs.Std[i]
		d2 += z * z
	}
	d2 /= float64(len(f))
	return math.Exp(-0.5 * d2)
}

// ScoreRegion classifies a single region, returning the best non-background
// class and a confidence that compares it against the background class.
// The integral is built over the region only, so the call is O(box.Area())
// regardless of image size.
func (d *Detector) ScoreRegion(img *raster.Image, box raster.Rect) (string, float64) {
	in := raster.NewIntegralRegion(img, box)
	class, conf := d.ScoreRegionFrom(in, box)
	in.Release()
	return class, conf
}

// ScoreRegionFrom classifies the window box against a prebuilt integral
// image covering it, sharing one region table across tightening and every
// feature statistic.
func (d *Detector) ScoreRegionFrom(in *raster.Integral, box raster.Rect) (string, float64) {
	return d.scoreFeatures(FeaturesFrom(in, box))
}

func (d *Detector) scoreFeatures(f []float64) (string, float64) {
	bestClass, bestScore := ClassBackground, 0.0
	bgScore := 1e-12
	for i := range d.Classes {
		s := d.Classes[i].score(f)
		if d.Classes[i].Name == ClassBackground {
			bgScore = math.Max(s, bgScore)
			continue
		}
		if s > bestScore {
			bestClass, bestScore = d.Classes[i].Name, s
		}
	}
	conf := bestScore / (bestScore + bgScore)
	return bestClass, conf
}

// Detect runs proposal generation, region classification, and per-class
// non-max suppression over a page screenshot. Each proposal's integral
// image is built once over its window and shared by proposal tightening
// and the window's feature extraction.
func (d *Detector) Detect(img *raster.Image) []Detection {
	threshold := d.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}
	var dets []Detection
	f := make([]float64, FeatureDim)
	for _, p := range proposalsIn(img) {
		featuresInto(f, p.in, p.box)
		p.in.Release()
		class, conf := d.scoreFeatures(f)
		if class == ClassBackground || conf < threshold {
			continue
		}
		dets = append(dets, Detection{Class: class, Score: conf, Box: p.box})
	}
	return NonMaxSuppression(dets, 0.3)
}

// DetectClass returns only detections of the given class.
func (d *Detector) DetectClass(img *raster.Image, class string) []Detection {
	var out []Detection
	for _, det := range d.Detect(img) {
		if det.Class == class {
			out = append(out, det)
		}
	}
	return out
}

// Marshal serializes the detector.
func (d *Detector) Marshal() ([]byte, error) { return json.Marshal(d) }

// UnmarshalDetector loads a detector produced by Marshal.
func UnmarshalDetector(data []byte) (*Detector, error) {
	var d Detector
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("vision: %w", err)
	}
	if len(d.Classes) == 0 {
		return nil, errors.New("vision: empty detector")
	}
	return &d, nil
}
