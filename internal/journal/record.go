// Record framing for the crawl journal: every record is one length-prefixed,
// CRC32-guarded frame, so a reader can always tell a cleanly-ended segment
// from one torn mid-write by a crash.
//
//	frame  := length(uint32 LE) | crc32(uint32 LE) | body
//	body   := kind(1 byte) | seq(uint64 LE) | payload
//
// The CRC covers the body. The sequence number is assigned once, strictly
// increasing across the whole journal, and never reused — compaction keeps
// original sequence numbers so the completed-URL checkpoint stays valid.
package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Kind discriminates record payloads.
type Kind uint8

const (
	// KindSession frames a JSON-encoded crawler.SessionLog — one finished
	// crawl session.
	KindSession Kind = 1
	// KindStats frames a JSON-encoded farm.Stats — one run's aggregate
	// statistics, appended when the run completes.
	KindStats Kind = 2
	// KindTriage frames a JSON-encoded triage plan record (the per-URL
	// verdicts and campaign index assignments of internal/triage), appended
	// once before a triage-enabled crawl starts. A resumed run rebuilds the
	// plan from the feed and verifies it against this record, so a journal
	// can never mix sessions from two different triage universes.
	KindTriage Kind = 3
	// KindCloak frames the JSON-encoded cloak configuration (sitegen cloak
	// rate plus the adaptive-uncloaking retry budget), appended once before
	// a cloak-enabled crawl starts. A resumed run re-encodes its config and
	// verifies it byte-for-byte against this record — the per-session
	// mutation schedules are pure functions of that config and the feed, so
	// matching configs pin matching session bytes.
	KindCloak Kind = 4
)

const (
	headerSize  = 8 // uint32 length + uint32 crc
	bodyMinSize = 9 // kind + seq
	// MaxRecordBytes bounds one record's body. A session log is a few KB to
	// a few hundred KB of JSON; anything past this is a corrupt length
	// prefix, not a record.
	MaxRecordBytes = 64 << 20
)

// Record is one framed journal entry.
type Record struct {
	Seq     uint64
	Kind    Kind
	Payload []byte
}

// ErrCorrupt reports a frame that cannot be a torn tail: an impossible
// length, a CRC mismatch, or a truncation inside a sealed segment.
var ErrCorrupt = errors.New("journal: corrupt record")

// errTorn classifies an invalid frame at the tail of the active segment —
// the expected signature of a crash mid-append. Open truncates it away.
var errTorn = errors.New("journal: torn record at segment tail")

// encodeFrame serializes r into a single self-checking frame.
func encodeFrame(r Record) []byte {
	body := len(r.Payload) + bodyMinSize
	frame := make([]byte, headerSize+body)
	frame[headerSize] = byte(r.Kind)
	binary.LittleEndian.PutUint64(frame[headerSize+1:], r.Seq)
	copy(frame[headerSize+bodyMinSize:], r.Payload)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(body))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[headerSize:]))
	return frame
}

// decodeFrame parses one frame from the front of b, returning the record
// and the bytes consumed. An incomplete or invalid frame yields errTorn
// (wrapped with the reason); the caller decides whether that means a
// recoverable tail or corruption.
func decodeFrame(b []byte) (Record, int, error) {
	if len(b) < headerSize {
		return Record{}, 0, fmt.Errorf("%w: %d header bytes of %d", errTorn, len(b), headerSize)
	}
	n := int(binary.LittleEndian.Uint32(b[0:4]))
	if n < bodyMinSize || n > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: impossible body length %d", errTorn, n)
	}
	if len(b) < headerSize+n {
		return Record{}, 0, fmt.Errorf("%w: body %d bytes of %d", errTorn, len(b)-headerSize, n)
	}
	body := b[headerSize : headerSize+n]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("%w: crc %08x != %08x", errTorn, got, want)
	}
	return Record{
		Seq:     binary.LittleEndian.Uint64(body[1:9]),
		Kind:    Kind(body[0]),
		Payload: append([]byte(nil), body[bodyMinSize:]...),
	}, headerSize + n, nil
}

// readFrame streams one frame from br, where remaining is how many bytes
// the segment file still holds (it bounds the allocation a garbage length
// prefix could cause). io.EOF is returned only at a clean record boundary.
func readFrame(br *bufio.Reader, remaining int64) (Record, int, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, fmt.Errorf("%w: partial header", errTorn)
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if n < bodyMinSize || n > MaxRecordBytes || int64(n) > remaining-headerSize {
		return Record{}, 0, fmt.Errorf("%w: impossible body length %d", errTorn, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return Record{}, 0, fmt.Errorf("%w: body short of %d bytes", errTorn, n)
	}
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("%w: crc %08x != %08x", errTorn, got, want)
	}
	return Record{
		Seq:     binary.LittleEndian.Uint64(body[1:9]),
		Kind:    Kind(body[0]),
		Payload: body[bodyMinSize:],
	}, headerSize + n, nil
}
