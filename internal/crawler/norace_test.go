//go:build !race

package crawler

const raceEnabled = false
