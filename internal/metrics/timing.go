package metrics

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Stage identifies one instrumented phase of a crawl session. The four
// stages cover the crawler's hot path: rendering a page, reading labels
// with OCR, running the object detector, and driving the submit ladder.
type Stage int

const (
	StageRender Stage = iota
	StageOCR
	StageDetect
	StageSubmit
	numStages
)

var stageNames = [numStages]string{"render", "ocr", "detect", "submit"}

// String returns the stage's name as printed in timing tables.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// StageTimings accumulates per-stage call counts and wall-clock time. It is
// safe for concurrent use — the farm's workers all record into one shared
// collector — and the zero value is ready to use. A nil *StageTimings is a
// valid no-op collector, so instrumented code needs no guards.
type StageTimings struct {
	counts [numStages]atomic.Int64
	nanos  [numStages]atomic.Int64
}

// Start returns the current time when the collector is active and the zero
// time otherwise; pair it with ObserveSince so disabled instrumentation
// skips the clock read entirely.
func (t *StageTimings) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records one completed stage call begun at start (as returned
// by Start). A nil collector or zero start is a no-op.
func (t *StageTimings) ObserveSince(s Stage, start time.Time) {
	if t == nil || start.IsZero() {
		return
	}
	t.Observe(s, time.Since(start))
}

// Observe records one completed stage call of duration d.
func (t *StageTimings) Observe(s Stage, d time.Duration) {
	if t == nil || s < 0 || s >= numStages {
		return
	}
	t.counts[s].Add(1)
	t.nanos[s].Add(int64(d))
}

// Merge adds o's accumulated counts and durations into t, so per-worker
// collectors can record contention-free and be combined once at the end of
// a run. Either side may be nil (no-op). Merging while o is still being
// written is safe but may miss in-flight observations.
func (t *StageTimings) Merge(o *StageTimings) {
	if t == nil || o == nil {
		return
	}
	for i := 0; i < int(numStages); i++ {
		if n := o.counts[i].Load(); n != 0 {
			t.counts[i].Add(n)
		}
		if n := o.nanos[i].Load(); n != 0 {
			t.nanos[i].Add(n)
		}
	}
}

// StageStat is a point-in-time snapshot of one stage's counters.
type StageStat struct {
	Stage string
	Count int64
	Total time.Duration
}

// Mean returns the average duration per call.
func (s StageStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Snapshot returns the current statistics for every stage in stage order,
// including stages never observed (with zero counts). It may be called
// while other goroutines are still recording.
func (t *StageTimings) Snapshot() []StageStat {
	if t == nil {
		return nil
	}
	out := make([]StageStat, numStages)
	for i := range out {
		out[i] = StageStat{
			Stage: stageNames[i],
			Count: t.counts[i].Load(),
			Total: time.Duration(t.nanos[i].Load()),
		}
	}
	return out
}

// MergeStageStats combines two snapshots stage-by-stage, matching rows by
// stage name: counts and totals add, a's row order is preserved, and stages
// present only in b are appended in b's order. It supports merging
// farm.Stats across resumed runs, where each run contributes its own
// snapshot.
func MergeStageStats(a, b []StageStat) []StageStat {
	if len(a) == 0 {
		return append([]StageStat(nil), b...)
	}
	out := append([]StageStat(nil), a...)
	index := make(map[string]int, len(out))
	for i, s := range out {
		index[s.Stage] = i
	}
	for _, s := range b {
		if i, ok := index[s.Stage]; ok {
			out[i].Count += s.Count
			out[i].Total += s.Total
		} else {
			index[s.Stage] = len(out)
			out = append(out, s)
		}
	}
	return out
}

// StageTable formats a snapshot as an aligned per-stage breakdown.
func StageTable(stats []StageStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %12s %12s\n", "Stage", "Calls", "Total", "Mean")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-8s %8d %12s %12s\n",
			s.Stage, s.Count, s.Total.Round(time.Microsecond), s.Mean().Round(time.Microsecond))
	}
	return b.String()
}
