package fielddata

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fieldspec"
	"repro/internal/metrics"
	"repro/internal/textclass"
)

func TestCorpusSizeAndBalance(t *testing.T) {
	c := Corpus(1)
	if len(c) != CorpusSize {
		t.Fatalf("corpus size = %d, want %d", len(c), CorpusSize)
	}
	perLabel := map[string]int{}
	for _, s := range c {
		if s.Text == "" {
			t.Fatal("empty sample text")
		}
		if !fieldspec.Valid(fieldspec.Type(s.Label)) {
			t.Fatalf("invalid label %q", s.Label)
		}
		perLabel[s.Label]++
	}
	if len(perLabel) != 18 {
		t.Errorf("labels present = %d, want 18", len(perLabel))
	}
	// Name is the heaviest class, per Table 6's support counts.
	if perLabel[string(fieldspec.Name)] < perLabel[string(fieldspec.State)] {
		t.Error("class weights not applied")
	}
	for l, n := range perLabel {
		if n < 10 {
			t.Errorf("label %s has only %d samples", l, n)
		}
	}
}

func TestSplitSizes(t *testing.T) {
	train, test := Split(Corpus(2))
	if len(train) != TrainSize {
		t.Errorf("train = %d", len(train))
	}
	if len(test) != CorpusSize-TrainSize {
		t.Errorf("test = %d", len(test))
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a, b := Corpus(3), Corpus(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestTable6Protocol(t *testing.T) {
	// Train on 1,000, evaluate on 310: macro F1 should be near the paper's
	// 0.90 (our synthetic labels are cleaner, so >= 0.85 is required).
	corpus := Corpus(4)
	train, test := Split(corpus)
	m, err := textclass.Train(train, textclass.TrainConfig{Seed: 4, Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	conf := metrics.NewConfusion()
	for _, s := range test {
		pred, _ := m.Predict(s.Text)
		conf.Add(s.Label, pred)
	}
	if f1 := conf.MacroF1(); f1 < 0.85 {
		t.Errorf("macro F1 = %.3f, want >= 0.85\n%s", f1, conf.Table())
	}
}

func TestTrainDefault(t *testing.T) {
	m, err := TrainDefault(5)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]fieldspec.Type{
		"enter your email address":           fieldspec.Email,
		"password":                           fieldspec.Password,
		"card number":                        fieldspec.Card,
		"social security number":             fieldspec.SSN,
		"an otp has been sent to your phone": fieldspec.Code,
	}
	for text, want := range cases {
		got, conf := m.Predict(text)
		if got != string(want) {
			t.Errorf("Predict(%q) = %s (%.2f), want %s", text, got, conf, want)
		}
	}
}

func TestGenerateLang(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fr := GenerateLang(rng, fieldspec.LangFR, fieldspec.Password)
	if fr.Label != string(fieldspec.Password) {
		t.Errorf("label = %s", fr.Label)
	}
	if !strings.Contains(fr.Text, "passe") && !strings.Contains(fr.Text, "secret") {
		t.Errorf("FR sample not localized: %q", fr.Text)
	}
	en := GenerateLang(rng, fieldspec.LangEN, fieldspec.Email)
	if en.Label != string(fieldspec.Email) {
		t.Errorf("EN label = %s", en.Label)
	}
}

func TestCorpusMultilingual(t *testing.T) {
	c := CorpusMultilingual(8)
	if len(c) <= CorpusSize {
		t.Fatalf("multilingual corpus = %d, want > %d", len(c), CorpusSize)
	}
	sawFR := false
	for _, s := range c {
		if strings.Contains(s.Text, "mot de passe") || strings.Contains(s.Text, "cryptogramme") {
			sawFR = true
		}
	}
	if !sawFR {
		t.Error("no French samples in multilingual corpus")
	}
	// Deterministic.
	c2 := CorpusMultilingual(8)
	for i := range c {
		if c[i] != c2[i] {
			t.Fatal("multilingual corpus not deterministic")
		}
	}
}

func TestTrainMultilingualClassifiesBothLanguages(t *testing.T) {
	m, err := TrainMultilingual(9)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]fieldspec.Type{
		"enter your email address": fieldspec.Email,
		"mot de passe":             fieldspec.Password,
		"numero de tarjeta":        fieldspec.Card,
	}
	for text, want := range cases {
		if got, conf := m.Predict(text); got != string(want) {
			t.Errorf("Predict(%q) = %s (%.2f), want %s", text, got, conf, want)
		}
	}
}
