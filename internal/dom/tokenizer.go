package dom

import (
	"strings"
)

// TokenType identifies the kind of a lexical token produced by the Tokenizer.
type TokenType int

const (
	// ErrorToken signals end of input.
	ErrorToken TokenType = iota
	// TextToken is character data between tags.
	TextToken
	// StartTagToken is <tag ...>.
	StartTagToken
	// EndTagToken is </tag>.
	EndTagToken
	// SelfClosingTagToken is <tag ... />.
	SelfClosingTagToken
	// CommentToken is <!-- ... -->.
	CommentToken
	// DoctypeToken is <!DOCTYPE ...>.
	DoctypeToken
)

// Token is a single lexical token.
type Token struct {
	Type  TokenType
	Tag   string // lower-cased tag name for tag tokens
	Data  string // text for TextToken/CommentToken/DoctypeToken
	Attrs []Attr
}

// Tokenizer splits HTML source into tokens. It is a single-pass scanner with
// the small amount of context sensitivity HTML requires: the contents of
// <script> and <style> are treated as raw text until the matching end tag.
type Tokenizer struct {
	src string
	pos int
	// rawTag, when non-empty, indicates we are inside a raw-text element and
	// must scan until its end tag.
	rawTag string
}

// NewTokenizer returns a tokenizer over src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token. After the input is exhausted it returns a
// token with Type == ErrorToken forever.
func (z *Tokenizer) Next() Token {
	if z.pos >= len(z.src) {
		return Token{Type: ErrorToken}
	}
	if z.rawTag != "" {
		return z.nextRawText()
	}
	if z.src[z.pos] == '<' {
		return z.nextTag()
	}
	return z.nextText()
}

func (z *Tokenizer) nextText() Token {
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TextToken, Data: unescape(z.src[start:z.pos])}
}

func (z *Tokenizer) nextRawText() Token {
	end := "</" + z.rawTag
	idx := indexFold(z.src[z.pos:], end)
	if idx < 0 {
		// Unterminated raw text: consume the rest.
		t := Token{Type: TextToken, Data: z.src[z.pos:]}
		z.pos = len(z.src)
		z.rawTag = ""
		return t
	}
	if idx == 0 {
		// At the end tag itself.
		z.rawTag = ""
		return z.nextTag()
	}
	t := Token{Type: TextToken, Data: z.src[z.pos : z.pos+idx]}
	z.pos += idx
	z.rawTag = ""
	return t
}

func (z *Tokenizer) nextTag() Token {
	// Invariant: z.src[z.pos] == '<'.
	if strings.HasPrefix(z.src[z.pos:], "<!--") {
		return z.nextComment()
	}
	if len(z.src) > z.pos+1 && (z.src[z.pos+1] == '!' || z.src[z.pos+1] == '?') {
		return z.nextDeclaration()
	}
	if len(z.src) > z.pos+1 && z.src[z.pos+1] == '/' {
		return z.nextEndTag()
	}
	if len(z.src) > z.pos+1 && isTagNameStart(z.src[z.pos+1]) {
		return z.nextStartTag()
	}
	// A bare '<' that does not begin a tag: treat as text.
	z.pos++
	return Token{Type: TextToken, Data: "<"}
}

func (z *Tokenizer) nextComment() Token {
	z.pos += len("<!--")
	end := strings.Index(z.src[z.pos:], "-->")
	var data string
	if end < 0 {
		data = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		data = z.src[z.pos : z.pos+end]
		z.pos += end + len("-->")
	}
	return Token{Type: CommentToken, Data: data}
}

func (z *Tokenizer) nextDeclaration() Token {
	start := z.pos
	end := strings.IndexByte(z.src[z.pos:], '>')
	if end < 0 {
		z.pos = len(z.src)
		return Token{Type: DoctypeToken, Data: z.src[start:]}
	}
	data := z.src[z.pos+2 : z.pos+end]
	z.pos += end + 1
	if strings.HasPrefix(strings.ToLower(strings.TrimSpace(data)), "doctype") {
		return Token{Type: DoctypeToken, Data: strings.TrimSpace(data)}
	}
	return Token{Type: CommentToken, Data: data}
}

func (z *Tokenizer) nextEndTag() Token {
	z.pos += 2 // consume "</"
	start := z.pos
	for z.pos < len(z.src) && isTagNameChar(z.src[z.pos]) {
		z.pos++
	}
	tag := strings.ToLower(z.src[start:z.pos])
	// Skip to '>'.
	for z.pos < len(z.src) && z.src[z.pos] != '>' {
		z.pos++
	}
	if z.pos < len(z.src) {
		z.pos++
	}
	return Token{Type: EndTagToken, Tag: tag}
}

func (z *Tokenizer) nextStartTag() Token {
	z.pos++ // consume '<'
	start := z.pos
	for z.pos < len(z.src) && isTagNameChar(z.src[z.pos]) {
		z.pos++
	}
	tag := strings.ToLower(z.src[start:z.pos])
	attrs, selfClosing := z.scanAttrs()
	t := Token{Tag: tag, Attrs: attrs}
	if selfClosing {
		t.Type = SelfClosingTagToken
	} else {
		t.Type = StartTagToken
		if tag == "script" || tag == "style" || tag == "textarea" || tag == "title" {
			z.rawTag = tag
		}
	}
	return t
}

// scanAttrs consumes attributes up to and including the closing '>'.
func (z *Tokenizer) scanAttrs() (attrs []Attr, selfClosing bool) {
	for {
		z.skipSpace()
		if z.pos >= len(z.src) {
			return attrs, false
		}
		switch z.src[z.pos] {
		case '>':
			z.pos++
			return attrs, false
		case '/':
			z.pos++
			z.skipSpace()
			if z.pos < len(z.src) && z.src[z.pos] == '>' {
				z.pos++
				return attrs, true
			}
			continue
		}
		name := z.scanAttrName()
		if name == "" {
			// Unexpected byte; skip it to guarantee progress.
			z.pos++
			continue
		}
		z.skipSpace()
		var value string
		if z.pos < len(z.src) && z.src[z.pos] == '=' {
			z.pos++
			z.skipSpace()
			value = z.scanAttrValue()
		}
		attrs = append(attrs, Attr{Name: strings.ToLower(name), Value: value})
	}
}

func (z *Tokenizer) scanAttrName() string {
	start := z.pos
	for z.pos < len(z.src) {
		c := z.src[z.pos]
		if c == '=' || c == '>' || c == '/' || isSpace(c) {
			break
		}
		z.pos++
	}
	return z.src[start:z.pos]
}

func (z *Tokenizer) scanAttrValue() string {
	if z.pos >= len(z.src) {
		return ""
	}
	quote := z.src[z.pos]
	if quote == '"' || quote == '\'' {
		z.pos++
		start := z.pos
		for z.pos < len(z.src) && z.src[z.pos] != quote {
			z.pos++
		}
		v := z.src[start:z.pos]
		if z.pos < len(z.src) {
			z.pos++
		}
		return unescape(v)
	}
	start := z.pos
	for z.pos < len(z.src) {
		c := z.src[z.pos]
		if isSpace(c) || c == '>' {
			break
		}
		z.pos++
	}
	return unescape(z.src[start:z.pos])
}

func (z *Tokenizer) skipSpace() {
	for z.pos < len(z.src) && isSpace(z.src[z.pos]) {
		z.pos++
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func isTagNameStart(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isTagNameChar(c byte) bool {
	return isTagNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == ':'
}

// indexFold returns the index of the first case-insensitive occurrence of sub
// in s, or -1.
func indexFold(s, sub string) int {
	if sub == "" {
		return 0
	}
	n := len(sub)
	for i := 0; i+n <= len(s); i++ {
		if strings.EqualFold(s[i:i+n], sub) {
			return i
		}
	}
	return -1
}

var entityReplacer = strings.NewReplacer(
	"&amp;", "&",
	"&lt;", "<",
	"&gt;", ">",
	"&quot;", `"`,
	"&#39;", "'",
	"&apos;", "'",
	"&nbsp;", " ",
	"&copy;", "(c)",
	"&reg;", "(r)",
	"&mdash;", "—",
	"&ndash;", "–",
	"&hellip;", "...",
	"&bull;", "•",
)

// unescape decodes the handful of HTML entities that occur in our corpora.
func unescape(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	return entityReplacer.Replace(s)
}

// Escape encodes text for safe embedding in HTML character data.
func Escape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
