package metrics

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestHistBucketBoundaries pins the bucket assignment at and around every
// boundary: bucket i covers (1ms<<(i-1), 1ms<<i], sub-millisecond and
// non-positive durations land in bucket 0, and durations beyond the last
// bound are absorbed by the final bucket.
func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Nanosecond, 0},
		{time.Millisecond, 0},
		{time.Millisecond + time.Nanosecond, 1},
		{2 * time.Millisecond, 1},
		{2*time.Millisecond + time.Nanosecond, 2},
		{3 * time.Millisecond, 2},
		{4 * time.Millisecond, 2},
		{5 * time.Millisecond, 3},
		{1024 * time.Millisecond, 10},
		{1025 * time.Millisecond, 11},
		{time.Millisecond << (NumHistBuckets - 1), NumHistBuckets - 1},
		{time.Millisecond<<(NumHistBuckets-1) + time.Hour, NumHistBuckets - 1},
		{1 << 62, NumHistBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.d); got != c.want {
			t.Errorf("histBucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every boundary exactly: d = bound(i) must land in bucket i, and one
	// nanosecond more must land in bucket i+1 (except past the last bound).
	for i := 0; i < NumHistBuckets; i++ {
		if got := histBucket(HistBucketBound(i)); got != i {
			t.Errorf("bound %d: histBucket(%v) = %d, want %d", i, HistBucketBound(i), got, i)
		}
		want := i + 1
		if want >= NumHistBuckets {
			want = NumHistBuckets - 1
		}
		if got := histBucket(HistBucketBound(i) + time.Nanosecond); got != want {
			t.Errorf("bound %d + 1ns: bucket %d, want %d", i, got, want)
		}
	}
}

// TestHistQuantile is the table-driven percentile check: ranks are
// resolved to bucket upper bounds, empty histograms read 0, and short
// bucket slices (pre-histogram journal records) are tolerated.
func TestHistQuantile(t *testing.T) {
	mk := func(obs ...time.Duration) []int64 {
		b := make([]int64, NumHistBuckets)
		for _, d := range obs {
			b[histBucket(d)]++
		}
		return b
	}
	ms := time.Millisecond
	cases := []struct {
		name    string
		buckets []int64
		q       float64
		want    time.Duration
	}{
		{"empty", nil, 0.5, 0},
		{"zero-counts", make([]int64, NumHistBuckets), 0.99, 0},
		{"single", mk(3 * ms), 0.5, 4 * ms},
		{"single-p99", mk(3 * ms), 0.99, 4 * ms},
		// 10 observations in bucket 0 (1ms) and 10 in bucket 3 (8ms): the
		// median rank (10) is the last observation of bucket 0.
		{"two-buckets-p50", mk(ms, ms, ms, ms, ms, ms, ms, ms, ms, ms,
			8*ms, 8*ms, 8*ms, 8*ms, 8*ms, 8*ms, 8*ms, 8*ms, 8*ms, 8*ms), 0.5, ms},
		{"two-buckets-p90", mk(ms, ms, ms, ms, ms, ms, ms, ms, ms, ms,
			8*ms, 8*ms, 8*ms, 8*ms, 8*ms, 8*ms, 8*ms, 8*ms, 8*ms, 8*ms), 0.9, 8 * ms},
		// 99 fast + 1 slow: p99 still resolves to the fast bucket (rank 99),
		// p100 to the slow one.
		{"tail-p99", append99(mk(), ms, 300*ms), 0.99, ms},
		{"tail-p100", append99(mk(), ms, 300*ms), 1.0, 512 * ms},
		{"clamped-low", mk(2 * ms), -1, 2 * ms},
		{"clamped-high", mk(2 * ms), 2, 2 * ms},
		{"short-slice", []int64{0, 5}, 0.5, 2 * ms},
	}
	for _, c := range cases {
		if got := histQuantile(c.buckets, c.q); got != c.want {
			t.Errorf("%s: histQuantile(q=%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}
}

// append99 fills buckets with 99 observations of fast plus one of slow.
func append99(b []int64, fast, slow time.Duration) []int64 {
	for i := 0; i < 99; i++ {
		b[histBucket(fast)]++
	}
	b[histBucket(slow)]++
	return b
}

// TestMergeStageStatsAssociativeCommutative is the merge-order property
// test: for randomized observation sets split across three snapshots,
// every merge order must produce identical counts, totals, buckets, and
// therefore identical percentiles. This is what makes percentiles
// byte-identical across 1-vs-30-worker runs and across kill/resume — the
// observations arrive through different merge trees but the histogram sum
// is the same.
func TestMergeStageStatsAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		parts := make([]*StageTimings, 3)
		for i := range parts {
			parts[i] = &StageTimings{}
			for n := rng.Intn(40); n > 0; n-- {
				stage := Stage(rng.Intn(int(numStages)))
				d := time.Duration(rng.Int63n(int64(5 * time.Second)))
				parts[i].Observe(stage, d)
			}
		}
		a, b, c := parts[0].Snapshot(), parts[1].Snapshot(), parts[2].Snapshot()

		abc := MergeStageStats(MergeStageStats(a, b), c) // (a+b)+c
		acb := MergeStageStats(MergeStageStats(a, c), b) // (a+c)+b
		cab := MergeStageStats(c, MergeStageStats(a, b)) // c+(a+b)
		bca := MergeStageStats(MergeStageStats(b, c), a) // (b+c)+a

		for _, got := range [][]StageStat{acb, cab, bca} {
			if !statsEquivalent(abc, got) {
				t.Fatalf("trial %d: merge order changed the result:\n%+v\nvs\n%+v", trial, abc, got)
			}
		}
		for _, s := range abc {
			for _, q := range []float64{0.5, 0.9, 0.99} {
				if s.Quantile(q) != findStage(t, bca, s.Stage).Quantile(q) {
					t.Fatalf("trial %d: stage %s q%v differs across merge orders", trial, s.Stage, q)
				}
			}
		}
	}
}

// statsEquivalent compares snapshots by stage name, ignoring row order
// (commutative merges legitimately reorder rows).
func statsEquivalent(a, b []StageStat) bool {
	if len(a) != len(b) {
		return false
	}
	index := map[string]StageStat{}
	for _, s := range a {
		index[s.Stage] = s
	}
	for _, s := range b {
		o, ok := index[s.Stage]
		if !ok || o.Count != s.Count || o.Total != s.Total || !reflect.DeepEqual(o.Buckets, s.Buckets) {
			return false
		}
	}
	return true
}

func findStage(t *testing.T, stats []StageStat, name string) StageStat {
	t.Helper()
	for _, s := range stats {
		if s.Stage == name {
			return s
		}
	}
	t.Fatalf("stage %q missing", name)
	return StageStat{}
}

// TestMergeStageStatsBucketAliasing guards the histogram against the
// aliasing bug: merging must never write into either input's bucket
// slices.
func TestMergeStageStatsBucketAliasing(t *testing.T) {
	a := []StageStat{{Stage: "render", Count: 1, Total: time.Millisecond, Buckets: []int64{1}}}
	b := []StageStat{{Stage: "render", Count: 1, Total: time.Millisecond, Buckets: []int64{1}}}
	got := MergeStageStats(a, b)
	if a[0].Buckets[0] != 1 || b[0].Buckets[0] != 1 {
		t.Fatalf("merge mutated an input's buckets: a=%v b=%v", a[0].Buckets, b[0].Buckets)
	}
	if got[0].Buckets[0] != 2 {
		t.Fatalf("merged buckets = %v, want [2]", got[0].Buckets)
	}
	// Old records without buckets merge losslessly with new ones.
	old := []StageStat{{Stage: "render", Count: 2, Total: time.Millisecond}}
	if got := MergeStageStats(old, b); got[0].Buckets[0] != 1 || got[0].Count != 3 {
		t.Fatalf("nil-bucket merge = %+v", got[0])
	}
}

// TestStageTablePercentiles pins the percentile columns of the operator
// table.
func TestStageTablePercentiles(t *testing.T) {
	var st StageTimings
	for i := 0; i < 9; i++ {
		st.Observe(StageRender, time.Millisecond)
	}
	st.Observe(StageRender, 100*time.Millisecond)
	out := StageTable(st.Snapshot())
	for _, col := range []string{"P50", "P90", "P99"} {
		if !strings.Contains(out, col) {
			t.Fatalf("table missing %s column:\n%s", col, out)
		}
	}
	row := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "render") {
			row = l
		}
	}
	// p50 and p90 of 9x1ms+1x100ms resolve to the 1ms bucket, p99 to the
	// 128ms bucket (100ms rounds up to its bucket bound).
	if !strings.Contains(row, "1ms") || !strings.Contains(row, "128ms") {
		t.Errorf("render row percentiles wrong: %q", row)
	}
}
