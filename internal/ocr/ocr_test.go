package ocr

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/raster"
)

func drawOn(w, h int, text string, x, y int) *raster.Image {
	img := raster.New(w, h, raster.White)
	img.DrawString(text, x, y, raster.Black)
	return img
}

func TestRecognizeSingleWord(t *testing.T) {
	img := drawOn(200, 20, "EMAIL", 4, 4)
	got := New().Text(img)
	if got != "EMAIL" {
		t.Errorf("Text = %q, want EMAIL", got)
	}
}

func TestRecognizeLowercaseFoldsToUpper(t *testing.T) {
	img := drawOn(300, 20, "password", 4, 4)
	got := New().Text(img)
	if got != "PASSWORD" {
		t.Errorf("Text = %q, want PASSWORD", got)
	}
}

func TestRecognizeMultiWord(t *testing.T) {
	img := drawOn(400, 20, "CARD NUMBER", 4, 4)
	got := New().Text(img)
	if got != "CARD NUMBER" {
		t.Errorf("Text = %q, want CARD NUMBER", got)
	}
}

func TestRecognizeDigitsAndPunct(t *testing.T) {
	img := drawOn(400, 20, "MM/YY 123-456", 4, 4)
	got := New().Text(img)
	if got != "MM/YY 123-456" {
		t.Errorf("Text = %q", got)
	}
}

func TestRecognizeMultipleLines(t *testing.T) {
	img := raster.New(300, 60, raster.White)
	img.DrawString("FIRST NAME", 4, 4, raster.Black)
	img.DrawString("LAST NAME", 4, 24, raster.Black)
	img.DrawString("PHONE", 4, 44, raster.Black)
	got := New().Text(img)
	want := "FIRST NAME\nLAST NAME\nPHONE"
	if got != want {
		t.Errorf("Text = %q, want %q", got, want)
	}
}

func TestRecognizeReturnsBoxes(t *testing.T) {
	img := raster.New(300, 40, raster.White)
	img.DrawString("HELLO", 50, 10, raster.Black)
	rs := New().Recognize(img)
	if len(rs) != 1 {
		t.Fatalf("got %d results, want 1", len(rs))
	}
	box := rs[0].Box
	if box.X != 50 || box.Y != 10 {
		t.Errorf("box origin = (%d,%d), want (50,10)", box.X, box.Y)
	}
	if box.W < 4*raster.AdvanceX || box.H < raster.GlyphH {
		t.Errorf("box too small: %v", box)
	}
	if rs[0].Confidence < 0.9 {
		t.Errorf("clean text confidence = %f, want >= 0.9", rs[0].Confidence)
	}
}

func TestRecognizeEmptyImage(t *testing.T) {
	img := raster.New(100, 100, raster.White)
	if rs := New().Recognize(img); len(rs) != 0 {
		t.Errorf("blank image produced %d results", len(rs))
	}
	solid := raster.New(50, 50, raster.Navy)
	// A solid dark block is ink but no glyphs; must not hang or produce junk
	// with high confidence.
	for _, r := range New().Recognize(solid) {
		if r.Confidence > 0.9 {
			t.Errorf("solid block read as %q with confidence %f", r.Text, r.Confidence)
		}
	}
}

func TestRecognizeWithNoise(t *testing.T) {
	img := drawOn(300, 20, "SECURITY CODE", 4, 4)
	// Flip a few random pixels to simulate rendering noise.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 6; i++ {
		x, y := rng.Intn(img.W), rng.Intn(img.H)
		if img.At(x, y) == raster.White {
			img.Set(x, y, raster.Black)
		} else {
			img.Set(x, y, raster.White)
		}
	}
	got := New().Text(img)
	// With noise tolerance the text should still be mostly recovered.
	if !strings.Contains(got, "SECURITY") && !strings.Contains(got, "CODE") {
		t.Errorf("noisy text unrecoverable: %q", got)
	}
}

func TestRecognizeColoredText(t *testing.T) {
	img := raster.New(200, 20, raster.White)
	img.DrawString("SUBMIT", 4, 4, raster.Navy) // dark but not black
	got := New().Text(img)
	if got != "SUBMIT" {
		t.Errorf("navy text = %q, want SUBMIT", got)
	}
}

func TestRecognizeRegion(t *testing.T) {
	img := raster.New(400, 100, raster.White)
	img.DrawString("OUTSIDE", 4, 4, raster.Black)
	img.DrawString("INSIDE", 100, 50, raster.Black)
	rs := New().RecognizeRegion(img, raster.R(90, 40, 200, 30))
	if len(rs) != 1 || rs[0].Text != "INSIDE" {
		t.Fatalf("region results = %+v", rs)
	}
	// Box coordinates must be in full-image space.
	if rs[0].Box.X != 100 || rs[0].Box.Y != 50 {
		t.Errorf("region box = %v, want origin (100,50)", rs[0].Box)
	}
}

func TestTextNearFindsLabelLeftAndAbove(t *testing.T) {
	img := raster.New(500, 120, raster.White)
	// Label above an input box.
	img.DrawString("EMAIL ADDRESS", 100, 20, raster.Black)
	inputBox := raster.R(100, 35, 150, 20)
	img.Outline(inputBox, raster.Gray)
	got := New().TextNear(img, inputBox, 40)
	if !strings.Contains(got, "EMAIL ADDRESS") {
		t.Errorf("TextNear above = %q", got)
	}
	// Label to the left of an input box.
	img2 := raster.New(500, 120, raster.White)
	img2.DrawString("PHONE", 10, 50, raster.Black)
	box2 := raster.R(60, 48, 150, 14)
	got2 := New().TextNear(img2, box2, 60)
	if !strings.Contains(got2, "PHONE") {
		t.Errorf("TextNear left = %q", got2)
	}
}

func TestBackgroundImageScenario(t *testing.T) {
	// The Figure 3 trick end-to-end at the raster level: labels exist only
	// in a background image; OCR must recover them for each input position.
	img := raster.New(600, 200, raster.White)
	labels := []struct {
		text string
		y    int
	}{
		{"FULL NAME", 20}, {"SSN", 60}, {"CARD NUMBER", 100}, {"CVV", 140},
	}
	for _, l := range labels {
		img.DrawString(l.text, 20, l.y, raster.Black)
		img.Outline(raster.R(150, l.y-2, 180, 14), raster.Gray)
	}
	eng := New()
	for _, l := range labels {
		box := raster.R(150, l.y-2, 180, 14)
		got := eng.TextNear(img, box, 140)
		if !strings.Contains(got, l.text) {
			t.Errorf("label %q not recovered near its box: got %q", l.text, got)
		}
	}
}

func TestSegmentationSplitsDistantLabels(t *testing.T) {
	img := raster.New(600, 20, raster.White)
	img.DrawString("LEFT", 4, 4, raster.Black)
	img.DrawString("RIGHT", 300, 4, raster.Black)
	rs := New().Recognize(img)
	if len(rs) != 2 {
		t.Fatalf("got %d segments, want 2: %+v", len(rs), rs)
	}
	if rs[0].Text != "LEFT" || rs[1].Text != "RIGHT" {
		t.Errorf("segments = %q, %q", rs[0].Text, rs[1].Text)
	}
}

func TestConfidenceThresholdRejects(t *testing.T) {
	img := raster.New(100, 20, raster.White)
	// Draw garbage blobs roughly glyph-sized.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		img.Set(4+rng.Intn(40), 4+rng.Intn(8), raster.Black)
	}
	e := New()
	e.MinConfidence = 0.95
	rs := e.Recognize(img)
	for _, r := range rs {
		if r.Confidence < 0.95 {
			t.Errorf("low-confidence result leaked: %+v", r)
		}
	}
}

func BenchmarkRecognize(b *testing.B) {
	img := raster.New(800, 600, raster.White)
	for i := 0; i < 20; i++ {
		img.DrawString("PLEASE ENTER YOUR ACCOUNT DETAILS", 10, 10+i*25, raster.Black)
	}
	e := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Recognize(img)
	}
}
