package faker

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/fieldspec"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 50; i++ {
		if a.Email() != b.Email() || a.CardNumber() != b.CardNumber() {
			t.Fatal("same seed must produce same sequence")
		}
	}
	c := New(43)
	same := 0
	a2 := New(42)
	for i := 0; i < 20; i++ {
		if a2.Email() == c.Email() {
			same++
		}
	}
	if same == 20 {
		t.Error("different seeds produced identical sequences")
	}
}

func TestEmailWellFormed(t *testing.T) {
	re := regexp.MustCompile(`^[a-z]+\.[a-z]+\d{2}@[a-z.]+\.[a-z]+$`)
	f := New(1)
	for i := 0; i < 100; i++ {
		e := f.Email()
		if !re.MatchString(e) {
			t.Errorf("malformed email %q", e)
		}
	}
}

func TestPhoneShape(t *testing.T) {
	re := regexp.MustCompile(`^[2-9]\d{2}-[2-9]\d{2}-\d{4}$`)
	f := New(2)
	for i := 0; i < 100; i++ {
		p := f.Phone()
		if !re.MatchString(p) {
			t.Errorf("malformed phone %q", p)
		}
	}
}

func TestCardLuhnValid(t *testing.T) {
	f := New(3)
	for i := 0; i < 200; i++ {
		c := f.CardNumber()
		if len(c) != 16 {
			t.Fatalf("card length = %d, want 16: %q", len(c), c)
		}
		if !LuhnValid(c) {
			t.Errorf("card %q fails Luhn", c)
		}
		if c[0] != '4' && c[0] != '5' {
			t.Errorf("card %q has unexpected IIN", c)
		}
	}
}

func TestLuhnValidRejects(t *testing.T) {
	if LuhnValid("") {
		t.Error("empty string should fail")
	}
	if LuhnValid("411111111111111a") {
		t.Error("non-digit should fail")
	}
	if !LuhnValid("4111111111111111") {
		t.Error("canonical test Visa should pass")
	}
	if LuhnValid("4111111111111112") {
		t.Error("off-by-one checksum should fail")
	}
}

// Property: flipping any single digit of a Luhn-valid number breaks validity.
func TestLuhnSingleDigitErrorDetection(t *testing.T) {
	f := New(4)
	check := func(pos uint8, delta uint8) bool {
		c := []byte(f.CardNumber())
		i := int(pos) % len(c)
		d := int(delta)%9 + 1 // non-zero change
		c[i] = byte('0' + (int(c[i]-'0')+d)%10)
		return !LuhnValid(string(c))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSSNShape(t *testing.T) {
	re := regexp.MustCompile(`^\d{3}-\d{2}-\d{4}$`)
	f := New(5)
	for i := 0; i < 100; i++ {
		s := f.SSN()
		if !re.MatchString(s) {
			t.Errorf("malformed SSN %q", s)
		}
		area := s[:3]
		if area == "000" || area == "666" || area[0] == '9' {
			t.Errorf("SSN %q uses invalid area", s)
		}
	}
}

func TestDateOfBirthShape(t *testing.T) {
	re := regexp.MustCompile(`^(0[1-9]|1[0-2])/(0[1-9]|[12]\d)/(19[5-9]\d)$`)
	f := New(6)
	for i := 0; i < 100; i++ {
		d := f.DateOfBirth()
		if !re.MatchString(d) {
			t.Errorf("malformed DOB %q", d)
		}
	}
}

func TestCodeAndCVV(t *testing.T) {
	f := New(7)
	for i := 0; i < 50; i++ {
		if c := f.Code(); len(c) != 6 {
			t.Errorf("code %q not 6 digits", c)
		}
		if v := f.CVV(); len(v) != 3 {
			t.Errorf("cvv %q not 3 digits", v)
		}
		if e := f.ExpDate(); len(e) != 5 || e[2] != '/' {
			t.Errorf("expdate %q malformed", e)
		}
	}
}

func TestPasswordComplexity(t *testing.T) {
	f := New(8)
	for i := 0; i < 50; i++ {
		p := f.Password()
		if len(p) < 8 {
			t.Errorf("password %q too short", p)
		}
		if !strings.ContainsAny(p, "0123456789") {
			t.Errorf("password %q lacks digit", p)
		}
		if !strings.ContainsAny(p, "!@#$%") {
			t.Errorf("password %q lacks symbol", p)
		}
	}
}

func TestForTypeCoversEveryType(t *testing.T) {
	f := New(9)
	for _, ty := range fieldspec.All() {
		v := f.ForType(ty)
		if v == "" {
			t.Errorf("ForType(%s) returned empty", ty)
		}
		if v == fieldspec.DefaultValue && ty != fieldspec.Unknown {
			t.Errorf("ForType(%s) fell through to default", ty)
		}
	}
	if v := f.ForType(fieldspec.Unknown); v != fieldspec.DefaultValue {
		t.Errorf("ForType(Unknown) = %q, want default", v)
	}
}

func TestForTypeRetryProducesNewData(t *testing.T) {
	// Section 4.3: on rejection, the crawler generates a NEW set of forged
	// data. Successive calls must (overwhelmingly) differ.
	f := New(10)
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		seen[f.ForType(fieldspec.Card)] = true
	}
	if len(seen) < 9 {
		t.Errorf("only %d distinct cards in 10 draws", len(seen))
	}
}

func BenchmarkForTypeCard(b *testing.B) {
	f := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.ForType(fieldspec.Card)
	}
}
