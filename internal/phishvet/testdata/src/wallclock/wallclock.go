// Package wallclock exercises the wallclock rule: clock reads are flagged
// in seeded code, while duration arithmetic and explicit timers pass.
package wallclock

import "time"

func flagged() time.Duration {
	t := time.Now()    // want "time.Now reads the wall clock in seeded code"
	d := time.Since(t) // want "time.Since reads the wall clock in seeded code"
	_ = time.Until(t)  // want "time.Until reads the wall clock in seeded code"
	return d
}

// A stored function value escapes the seam just like a call.
var clock = time.Now // want "time.Now reads the wall clock in seeded code"

func ok(ch chan struct{}) {
	// Durations and explicit timers take no clock reading.
	const budget = 5 * time.Second
	timer := time.AfterFunc(budget, func() {})
	defer timer.Stop()
	<-ch
}
