// Package journal is the crash-safe crawl record store: an append-only log
// of finished crawl sessions in rolling, CRC-framed segment files. The
// paper's measurement crawl runs for 43 days; this package is what makes
// such a run survivable — every finished session is durable the moment it
// is appended, a crash (even one that tears the final record mid-write) is
// recovered on the next Open by truncating the torn tail, and the
// completed-URL checkpoint index lets a resumed run re-crawl only the URLs
// it never finished. A MANIFEST file tracks segment order; a CHECKPOINT
// file caches the completed-URL index so reopening a long journal does not
// re-parse every session payload. Both are replaced atomically
// (write-temp, fsync, rename), so the segment files themselves are the
// only mutable state — and they only ever grow, except for tail
// truncation during recovery.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/crawler"
	"repro/internal/farm"
)

// SyncPolicy controls when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every record: a crash loses at most the
	// record being written. The default, and what a 43-day crawl wants.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs every Options.SyncEvery records and at checkpoint,
	// roll, and close: bounded loss, far fewer fsyncs.
	SyncBatch
	// SyncNone leaves durability to the OS page cache (tests, throwaway
	// runs). Close still syncs.
	SyncNone
	// SyncGroup batches concurrent appends behind a background commit
	// loop: everything queued while the previous fsync was in flight is
	// written together and made durable with one fsync, then every waiter
	// is released. Per caller this is as strong as SyncAlways — an append
	// that returned nil is durable — but a farm of workers shares each
	// fsync instead of paying one apiece. A crash loses only appends that
	// had not yet returned (at most one per concurrent appender); a
	// resumed run re-crawls exactly those URLs.
	SyncGroup
)

// Options tunes a journal; the zero value is production-safe.
type Options struct {
	// SegmentBytes rolls to a new segment file once the active one would
	// exceed this size (default 4 MiB).
	SegmentBytes int
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncBatch interval in records (default 32).
	SyncEvery int
	// CheckpointEvery rewrites the completed-URL checkpoint after this
	// many session appends (default 256). The checkpoint is an
	// optimization only — recovery never trusts it past the data.
	CheckpointEvery int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 32
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 256
	}
	return o
}

const (
	manifestName   = "MANIFEST"
	checkpointName = "CHECKPOINT"
	segmentPrefix  = "seg-"
	segmentSuffix  = ".wal"
)

// segmentInfo is one manifest entry. FirstSeq is the sequence number the
// segment's first record has (or would have, while it is still empty).
type segmentInfo struct {
	Name     string `json:"name"`
	FirstSeq uint64 `json:"firstSeq"`
}

type manifest struct {
	Version  int           `json:"version"`
	Segments []segmentInfo `json:"segments"`
}

type checkpoint struct {
	// Seq is the last sequence number the URL index below reflects; every
	// record at or below it was durable when the checkpoint was written.
	Seq uint64 `json:"seq"`
	// URLs maps each completed URL to the sequence number of its latest
	// session record.
	URLs map[string]uint64 `json:"urls"`
}

// Journal is an open crawl journal. All methods are safe for concurrent
// use; appends are serialized internally, so it can be handed directly to
// farm.Config.Sink.
type Journal struct {
	dir  string
	opts Options

	mu         sync.Mutex
	segments   []segmentInfo
	active     *os.File
	activeSize int64
	nextSeq    uint64
	completed  map[string]uint64
	unsynced   int // appends since the last fsync (SyncBatch, SyncGroup)
	dirtyCkpt  int // session appends since the last checkpoint write
	closed     bool

	// Group-commit state (SyncGroup only). pending is the queue the commit
	// loop drains; groupCond (sharing mu) wakes it; stopping tells it to
	// exit once drained, and loopDone reports that it has. groupBuf is the
	// loop's frame-packing scratch.
	groupCond *sync.Cond
	pending   []*groupReq
	stopping  bool
	loopDone  chan struct{}
	groupBuf  []byte
}

// Open opens (or creates) the journal in dir, recovering from any crash
// that interrupted a previous writer: a torn record at the tail of the
// last segment is truncated away, an orphan segment from an interrupted
// roll is adopted, stale segments from an interrupted compaction are
// removed, and a checkpoint that claims more than the surviving data is
// discarded and rebuilt by scanning. Corruption anywhere else (a sealed
// segment that no longer parses) is an error, never silent loss.
func Open(dir string, opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, completed: map[string]uint64{}}
	if err := j.loadManifest(); err != nil {
		return nil, err
	}
	ckpt, err := j.loadCheckpoint()
	if err != nil {
		return nil, err
	}
	if err := j.recover(ckpt); err != nil {
		// A checkpoint ahead of the surviving data (possible after an OS
		// crash under SyncNone) is discarded, and the index rebuilt from
		// the records alone.
		if !errors.Is(err, errStaleCheckpoint) {
			return nil, err
		}
		j.completed = map[string]uint64{}
		if err := j.recover(nil); err != nil {
			return nil, err
		}
	}
	last := j.segments[len(j.segments)-1]
	f, err := os.OpenFile(filepath.Join(dir, last.Name), os.O_WRONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("journal: opening active segment: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close() // the Seek failure is the error worth reporting
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.active = f
	if j.opts.Sync == SyncGroup {
		j.groupCond = sync.NewCond(&j.mu)
		j.loopDone = make(chan struct{})
		go j.commitLoop()
	}
	return j, nil
}

// loadManifest reads MANIFEST, reconciles it with the segment files
// actually on disk, and initializes an empty journal when there is
// neither.
func (j *Journal) loadManifest() error {
	onDisk, err := listSegments(j.dir)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(filepath.Join(j.dir, manifestName))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// No manifest. Adopt whatever segments exist, in name order (the
		// manifest is reconstructible; the data files are authoritative).
		for _, name := range onDisk {
			j.segments = append(j.segments, segmentInfo{Name: name})
		}
	case err != nil:
		return fmt.Errorf("journal: reading manifest: %w", err)
	default:
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return fmt.Errorf("journal: parsing manifest: %w", err)
		}
		j.segments = m.Segments
		listed := make(map[string]bool, len(m.Segments))
		for _, s := range m.Segments {
			if _, err := os.Stat(filepath.Join(j.dir, s.Name)); err != nil {
				return fmt.Errorf("journal: manifest names missing segment %s: %w", s.Name, err)
			}
			listed[s.Name] = true
		}
		lastName := ""
		if len(m.Segments) > 0 {
			lastName = m.Segments[len(m.Segments)-1].Name
		}
		for _, name := range onDisk {
			switch {
			case listed[name]:
			case name > lastName:
				// An orphan past the manifest's tail: a roll crashed after
				// creating the file but before committing the manifest. It
				// holds no records (writes only move after the commit);
				// adopt it as the next segment.
				j.segments = append(j.segments, segmentInfo{Name: name})
			default:
				// A leftover below the manifest's tail: an interrupted
				// compaction already committed a manifest without it.
				if err := os.Remove(filepath.Join(j.dir, name)); err != nil {
					return fmt.Errorf("journal: removing stale segment: %w", err)
				}
			}
		}
	}
	if len(j.segments) == 0 {
		name := segmentName(1)
		if err := createFileSync(filepath.Join(j.dir, name)); err != nil {
			return err
		}
		j.segments = []segmentInfo{{Name: name, FirstSeq: 1}}
		j.nextSeq = 1
		return j.writeManifest()
	}
	return nil
}

func (j *Journal) loadCheckpoint() (*checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(j.dir, checkpointName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: reading checkpoint: %w", err)
	}
	var c checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		// A half-written checkpoint cannot happen (atomic rename), but a
		// damaged one is still only a cache: rebuild by scanning.
		return nil, nil
	}
	return &c, nil
}

var errStaleCheckpoint = errors.New("journal: checkpoint ahead of data")

// recover scans the segments, rebuilding the completed-URL index and
// truncating a torn tail off the final segment. With a checkpoint, sealed
// segments wholly covered by it are skipped and the index is seeded from
// it.
func (j *Journal) recover(ckpt *checkpoint) error {
	if ckpt != nil {
		for u, s := range ckpt.URLs {
			j.completed[u] = s
		}
	}
	// dataMax is the highest sequence number the segment files provably
	// hold — from scanning, or from a skipped sealed segment's coverage
	// (it ends just below the next segment's first sequence). A checkpoint
	// claiming more than dataMax outran the data (an OS crash under a
	// relaxed sync policy) and must not be trusted.
	var dataMax uint64
	for i := range j.segments {
		last := i == len(j.segments)-1
		if ckpt != nil && !last {
			// Segment i holds seqs below segments[i+1].FirstSeq; if the
			// checkpoint already covers all of them, skip the scan.
			if next := j.segments[i+1].FirstSeq; next > 0 && next-1 <= ckpt.Seq {
				if next-1 > dataMax {
					dataMax = next - 1
				}
				continue
			}
		}
		segMax, first, err := j.scanSegment(i, last, ckpt)
		if err != nil {
			return err
		}
		if first > 0 && j.segments[i].FirstSeq == 0 {
			j.segments[i].FirstSeq = first
		}
		if segMax > dataMax {
			dataMax = segMax
		}
	}
	if ckpt != nil && ckpt.Seq > dataMax {
		return errStaleCheckpoint
	}
	j.nextSeq = dataMax + 1
	if j.segments[len(j.segments)-1].FirstSeq == 0 {
		j.segments[len(j.segments)-1].FirstSeq = j.nextSeq
	}
	return nil
}

// scanSegment replays one segment into the completed index. For the final
// segment a torn tail is truncated in place; anywhere else it is
// corruption. Returns the highest sequence seen and the first sequence in
// the segment (0 when empty).
func (j *Journal) scanSegment(i int, last bool, ckpt *checkpoint) (maxSeq, firstSeq uint64, err error) {
	path := filepath.Join(j.dir, j.segments[i].Name)
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, 0, fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("journal: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	for {
		rec, n, err := readFrame(br, size-off)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !last {
				return 0, 0, fmt.Errorf("%w: segment %s offset %d: %v", ErrCorrupt, j.segments[i].Name, off, err)
			}
			// Torn tail: drop the partial record, keep everything before it.
			if terr := os.Truncate(path, off); terr != nil {
				return 0, 0, fmt.Errorf("journal: truncating torn tail: %w", terr)
			}
			if terr := syncPath(path); terr != nil {
				return 0, 0, terr
			}
			break
		}
		if firstSeq == 0 {
			firstSeq = rec.Seq
		}
		maxSeq = rec.Seq
		if rec.Kind == KindSession && (ckpt == nil || rec.Seq > ckpt.Seq) {
			if url := sessionURL(rec.Payload); url != "" {
				j.completed[url] = rec.Seq
			}
		}
		off += int64(n)
	}
	if last {
		j.activeSize = off
	}
	return maxSeq, firstSeq, nil
}

// sessionURL extracts just the SeedURL from a session payload without
// decoding the full log.
func sessionURL(payload []byte) string {
	var probe struct{ SeedURL string }
	if err := json.Unmarshal(payload, &probe); err != nil {
		return ""
	}
	return probe.SeedURL
}

// AppendSession appends one finished crawl session and marks its SeedURL
// completed. Durability follows the configured sync policy.
func (j *Journal) AppendSession(lg *crawler.SessionLog) error {
	payload, err := json.Marshal(lg)
	if err != nil {
		return fmt.Errorf("journal: encoding session: %w", err)
	}
	if j.opts.Sync == SyncGroup {
		return j.appendGroup(KindSession, payload, lg.SeedURL)
	}
	//phishvet:ignore locknoblock: j.mu is the WAL's write order — the append and its fsync must be serialized against every other writer
	j.mu.Lock()
	defer j.mu.Unlock()
	seq, err := j.appendLocked(KindSession, payload)
	if err != nil {
		return err
	}
	j.completed[lg.SeedURL] = seq
	j.dirtyCkpt++
	if j.dirtyCkpt >= j.opts.CheckpointEvery {
		return j.writeCheckpointLocked()
	}
	return nil
}

// AppendStats appends one run's aggregate statistics. A resumed crawl
// merges the stats records of every run that reached completion; a run
// killed mid-crawl leaves no stats record, and its outcome counts are
// recovered from the session records instead (farm.Tally).
func (j *Journal) AppendStats(st farm.Stats) error {
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("journal: encoding stats: %w", err)
	}
	if j.opts.Sync == SyncGroup {
		return j.appendGroup(KindStats, payload, "")
	}
	//phishvet:ignore locknoblock: j.mu is the WAL's write order — the append and its fsync must be serialized against every other writer
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.appendLocked(KindStats, payload)
	return err
}

func (j *Journal) appendLocked(kind Kind, payload []byte) (uint64, error) {
	if j.closed {
		return 0, fmt.Errorf("journal: closed")
	}
	if len(payload) > MaxRecordBytes-bodyMinSize {
		return 0, fmt.Errorf("journal: record of %d bytes exceeds limit", len(payload))
	}
	frame := encodeFrame(Record{Seq: j.nextSeq, Kind: kind, Payload: payload})
	if j.activeSize > 0 && j.activeSize+int64(len(frame)) > int64(j.opts.SegmentBytes) {
		if err := j.rollLocked(); err != nil {
			return 0, err
		}
	}
	if _, err := j.active.Write(frame); err != nil {
		return 0, fmt.Errorf("journal: append: %w", err)
	}
	j.activeSize += int64(len(frame))
	seq := j.nextSeq
	j.nextSeq++
	j.unsynced++
	switch j.opts.Sync {
	case SyncAlways:
		if err := j.syncActiveLocked(); err != nil {
			return 0, err
		}
	case SyncBatch:
		if j.unsynced >= j.opts.SyncEvery {
			if err := j.syncActiveLocked(); err != nil {
				return 0, err
			}
		}
	case SyncGroup, SyncNone:
		// SyncGroup records reach here through the commit loop, which
		// fsyncs the whole batch in commitBatchLocked; SyncNone leaves
		// durability to the OS page cache by contract.
	}
	return seq, nil
}

func (j *Journal) syncActiveLocked() error {
	if j.unsynced == 0 {
		return nil
	}
	if err := j.active.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.unsynced = 0
	return nil
}

// rollLocked seals the active segment and starts the next one. The commit
// point is the manifest rename; a crash before it leaves an empty orphan
// that Open adopts.
func (j *Journal) rollLocked() error {
	if err := j.active.Sync(); err != nil {
		return fmt.Errorf("journal: sealing segment: %w", err)
	}
	if err := j.active.Close(); err != nil {
		return fmt.Errorf("journal: sealing segment: %w", err)
	}
	j.unsynced = 0
	name := segmentName(segmentNumber(j.segments[len(j.segments)-1].Name) + 1)
	if err := createFileSync(filepath.Join(j.dir, name)); err != nil {
		return err
	}
	j.segments = append(j.segments, segmentInfo{Name: name, FirstSeq: j.nextSeq})
	if err := j.writeManifest(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(j.dir, name), os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.active = f
	j.activeSize = 0
	return nil
}

// writeCheckpointLocked syncs the data first, then atomically replaces the
// checkpoint, so the checkpoint never claims records the disk does not
// hold.
func (j *Journal) writeCheckpointLocked() error {
	if err := j.syncActiveLocked(); err != nil {
		return err
	}
	c := checkpoint{Seq: j.nextSeq - 1, URLs: j.completed}
	data, err := json.Marshal(&c)
	if err != nil {
		return fmt.Errorf("journal: encoding checkpoint: %w", err)
	}
	if err := atomicWriteFile(filepath.Join(j.dir, checkpointName), data); err != nil {
		return err
	}
	j.dirtyCkpt = 0
	return nil
}

func (j *Journal) writeManifest() error {
	data, err := json.MarshalIndent(manifest{Version: 1, Segments: j.segments}, "", "  ")
	if err != nil {
		return fmt.Errorf("journal: encoding manifest: %w", err)
	}
	return atomicWriteFile(filepath.Join(j.dir, manifestName), data)
}

// Sync forces everything appended so far — including appends still queued
// for group commit — to stable storage.
func (j *Journal) Sync() error {
	//phishvet:ignore locknoblock: Sync's contract is "blocked appenders wait for stable storage" — the fsync must happen inside the write lock
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	if err := j.flushPendingLocked(); err != nil {
		return err
	}
	return j.syncActiveLocked()
}

// Close syncs, writes a final checkpoint, and releases the journal. Under
// SyncGroup it first stops the commit loop, which drains and commits every
// append accepted before Close.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	if j.groupCond != nil {
		if !j.stopping {
			j.stopping = true
			j.groupCond.Signal()
		}
		j.mu.Unlock()
		<-j.loopDone
		//phishvet:ignore locknoblock: final checkpoint + segment close must exclude any late appender; nothing else runs after Close
		j.mu.Lock()
		if j.closed { // a concurrent Close finished while we waited
			j.mu.Unlock()
			return nil
		}
	}
	defer j.mu.Unlock()
	err := j.writeCheckpointLocked()
	if cerr := j.active.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("journal: close: %w", cerr)
	}
	j.closed = true
	return err
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Completed reports whether url already has a journaled session — the
// resume predicate handed to farm.Config.Skip.
func (j *Journal) Completed(url string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.completed[url]
	return ok
}

// CompletedCount returns how many distinct URLs have journaled sessions.
func (j *Journal) CompletedCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.completed)
}

// CompletedURLs returns a copy of the completed-URL set.
func (j *Journal) CompletedURLs() map[string]bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]bool, len(j.completed))
	for u := range j.completed {
		out[u] = true
	}
	return out
}

// Scan streams every record in sequence order through fn, reading straight
// off the segment files without loading a segment into memory. It may run
// while appends continue; records appended after the Scan starts may or
// may not be seen.
func (j *Journal) Scan(fn func(Record) error) error {
	// Appends write straight to the fd (no user-space buffering), so a
	// scan sees every record already appended by this process.
	j.mu.Lock()
	segs := append([]segmentInfo(nil), j.segments...)
	j.mu.Unlock()
	for _, seg := range segs {
		if err := scanSegmentFile(filepath.Join(j.dir, seg.Name), fn); err != nil {
			return err
		}
	}
	return nil
}

func scanSegmentFile(path string, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	size := info.Size()
	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	for {
		rec, n, err := readFrame(br, size-off)
		if err == io.EOF || errors.Is(err, errTorn) {
			// A torn tail mid-scan only happens when scanning a journal
			// another process is appending to; stop at the last whole
			// record.
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += int64(n)
	}
}

// Sessions decodes every session record and returns the latest session per
// URL (compaction semantics applied at read time), ordered by FeedIndex —
// the same order an uninterrupted in-memory run would have produced, so
// the export is byte-identical to one.
func (j *Journal) Sessions() ([]*crawler.SessionLog, error) {
	type slot struct {
		seq uint64
		lg  *crawler.SessionLog
	}
	latest := map[string]slot{}
	err := j.Scan(func(r Record) error {
		if r.Kind != KindSession {
			return nil
		}
		var lg crawler.SessionLog
		if err := json.Unmarshal(r.Payload, &lg); err != nil {
			return fmt.Errorf("journal: decoding session seq %d: %w", r.Seq, err)
		}
		if prev, ok := latest[lg.SeedURL]; !ok || r.Seq > prev.seq {
			latest[lg.SeedURL] = slot{seq: r.Seq, lg: &lg}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*crawler.SessionLog, 0, len(latest))
	for _, s := range latest {
		out = append(out, s.lg)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].FeedIndex != out[b].FeedIndex {
			return out[a].FeedIndex < out[b].FeedIndex
		}
		return out[a].SeedURL < out[b].SeedURL
	})
	return out, nil
}

// AppendTriage appends one triage plan record (an opaque, already-encoded
// payload — the journal stays a byte store and never decodes triage
// structures). Appended once, before a triage-enabled crawl's first
// session, so a resumed run can verify its rebuilt plan matches.
func (j *Journal) AppendTriage(payload []byte) error {
	if j.opts.Sync == SyncGroup {
		return j.appendGroup(KindTriage, append([]byte(nil), payload...), "")
	}
	//phishvet:ignore locknoblock: j.mu is the WAL's write order — the append and its fsync must be serialized against every other writer
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err := j.appendLocked(KindTriage, payload)
	return err
}

// TriagePlans returns the payload of every triage plan record, oldest
// first. A journal written by one uninterrupted or correctly-resumed
// triage run holds exactly one; more than one with differing bytes means
// runs with different triage configs wrote into the same directory.
func (j *Journal) TriagePlans() ([][]byte, error) {
	var out [][]byte
	err := j.Scan(func(r Record) error {
		if r.Kind != KindTriage {
			return nil
		}
		out = append(out, append([]byte(nil), r.Payload...))
		return nil
	})
	return out, err
}

// AppendCloak appends one cloak configuration record (an opaque,
// already-encoded payload, like AppendTriage's plan records). Appended
// once, before a cloak-enabled crawl's first session.
func (j *Journal) AppendCloak(payload []byte) error {
	if j.opts.Sync == SyncGroup {
		return j.appendGroup(KindCloak, append([]byte(nil), payload...), "")
	}
	//phishvet:ignore locknoblock: j.mu is the WAL's write order — the append and its fsync must be serialized against every other writer
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err := j.appendLocked(KindCloak, payload)
	return err
}

// CloakRecords returns the payload of every cloak configuration record,
// oldest first. A journal written by one uninterrupted or correctly-resumed
// cloak-enabled run holds exactly one.
func (j *Journal) CloakRecords() ([][]byte, error) {
	var out [][]byte
	err := j.Scan(func(r Record) error {
		if r.Kind != KindCloak {
			return nil
		}
		out = append(out, append([]byte(nil), r.Payload...))
		return nil
	})
	return out, err
}

// StatsRuns decodes the stats record of every completed run, oldest first.
func (j *Journal) StatsRuns() ([]farm.Stats, error) {
	var out []farm.Stats
	err := j.Scan(func(r Record) error {
		if r.Kind != KindStats {
			return nil
		}
		var st farm.Stats
		if err := json.Unmarshal(r.Payload, &st); err != nil {
			return fmt.Errorf("journal: decoding stats seq %d: %w", r.Seq, err)
		}
		out = append(out, st)
		return nil
	})
	return out, err
}

// --- small file helpers ---

func segmentName(n int) string {
	return fmt.Sprintf("%s%08d%s", segmentPrefix, n, segmentSuffix)
}

func segmentNumber(name string) int {
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix))
	if err != nil {
		return 0 // not a segment name we wrote; callers treat 0 as "before the first"
	}
	return n
}

func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, segmentPrefix) && strings.HasSuffix(name, segmentSuffix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

func createFileSync(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the Sync failure is the error worth reporting
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// atomicWriteFile replaces path with data: temp file in the same
// directory, fsync, rename, directory fsync. A crash leaves either the old
// file or the new one, never a truncated mix.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = os.Remove(tmpName) } // best-effort temp removal
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close() // the Write failure is the error worth reporting
		cleanup()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // the Sync failure is the error worth reporting
		cleanup()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("journal: %w", err)
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: syncing directory: %w", err)
	}
	return nil
}

func syncPath(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
