package farm

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/browser"
	"repro/internal/chaos"
	"repro/internal/crawler"
	"repro/internal/phishserver"
	"repro/internal/site"
)

// chaosFarmCrawler builds a crawler template whose browser fetches through
// the given fault injector (wrapping the registry transport).
func chaosFarmCrawler(reg *phishserver.Registry, in *chaos.Injector, fetchTimeout time.Duration) *crawler.Crawler {
	in.Inner = phishserver.Transport{Registry: reg}
	c := testCrawler(reg, nil)
	c.NewBrowser = func() *browser.Browser {
		return browser.New(browser.Options{Transport: in, Timeout: fetchTimeout})
	}
	return c
}

func TestRetryFlakyEventuallySucceeds(t *testing.T) {
	reg := phishserver.NewRegistry()
	s := quickSite("flaky0.test")
	reg.AddSite(s)
	in := &chaos.Injector{Profile: chaos.Profile{FlakyRate: 1, FlakyFailures: 2}, Seed: 1}
	cfg := Config{
		Workers: 2, Crawler: chaosFarmCrawler(reg, in, 0),
		MaxRetries: 3, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
	}
	logs, stats := Run(cfg, []string{s.SeedURL()})
	if logs[0].Outcome != crawler.OutcomeCompleted {
		t.Fatalf("outcome = %q (error %q), want completed", logs[0].Outcome, logs[0].Error)
	}
	if logs[0].Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (two connection resets, then success)", logs[0].Attempts)
	}
	if stats.Retries != 2 {
		t.Errorf("stats.Retries = %d, want 2", stats.Retries)
	}
	if stats.Degraded != 1 {
		t.Errorf("stats.Degraded = %d, want 1", stats.Degraded)
	}
	if len(stats.Failures) != 0 {
		t.Errorf("failures on a recovered run: %v", stats.Failures)
	}
}

func TestDeadSiteExhaustsRetries(t *testing.T) {
	reg := phishserver.NewRegistry()
	s := quickSite("dead0.test")
	reg.AddSite(s)
	in := &chaos.Injector{Profile: chaos.Profile{DeadRate: 1}, Seed: 1}
	cfg := Config{
		Workers: 1, Crawler: chaosFarmCrawler(reg, in, 0),
		MaxRetries: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
	}
	logs, stats := Run(cfg, []string{s.SeedURL()})
	if logs[0].Outcome != OutcomeGaveUp {
		t.Fatalf("outcome = %q, want %q", logs[0].Outcome, OutcomeGaveUp)
	}
	if logs[0].Error != crawler.OutcomeDead {
		t.Errorf("preserved class = %q, want %q", logs[0].Error, crawler.OutcomeDead)
	}
	if logs[0].Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (initial + 2 retries)", logs[0].Attempts)
	}
	if stats.Failures[crawler.OutcomeDead] != 1 {
		t.Errorf("failure taxonomy = %v, want dead:1", stats.Failures)
	}
	if stats.Outcomes[OutcomeGaveUp] != 1 {
		t.Errorf("outcomes = %v", stats.Outcomes)
	}
}

func TestRetryDisabledGivesUpImmediately(t *testing.T) {
	reg := phishserver.NewRegistry()
	s := quickSite("dead1.test")
	reg.AddSite(s)
	in := &chaos.Injector{Profile: chaos.Profile{DeadRate: 1}, Seed: 1}
	logs, stats := Run(Config{
		Workers: 1, Crawler: chaosFarmCrawler(reg, in, 0), MaxRetries: -1,
	}, []string{s.SeedURL()})
	if logs[0].Outcome != OutcomeGaveUp || logs[0].Attempts != 1 {
		t.Errorf("outcome = %q attempts = %d, want gave-up after 1", logs[0].Outcome, logs[0].Attempts)
	}
	if stats.Retries != 0 {
		t.Errorf("retries = %d with retries disabled", stats.Retries)
	}
}

func TestPanicInOneSessionDoesNotLoseRun(t *testing.T) {
	reg := phishserver.NewRegistry()
	var urls []string
	for i := 0; i < 6; i++ {
		s := quickSite(fmtHost(300 + i))
		reg.AddSite(s)
		urls = append(urls, s.SeedURL())
	}
	tmpl := testCrawler(reg, nil)
	inner := tmpl.NewBrowser
	var calls int64
	tmpl.NewBrowser = func() *browser.Browser {
		if atomic.AddInt64(&calls, 1) == 1 {
			panic("simulated renderer crash")
		}
		return inner()
	}
	logs, stats := Run(Config{
		Workers: 3, Crawler: tmpl,
		MaxRetries: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
	}, urls)
	for i, l := range logs {
		if l == nil {
			t.Fatalf("log %d lost", i)
		}
	}
	if stats.Panics != 1 {
		t.Errorf("panics = %d, want 1", stats.Panics)
	}
	if stats.Outcomes[OutcomeLost] != 0 || stats.Outcomes[OutcomePanic] != 0 {
		t.Errorf("outcomes = %v: the panicked session should have been retried", stats.Outcomes)
	}
	if stats.Outcomes[crawler.OutcomeCompleted] != 6 {
		t.Errorf("outcomes = %v, want all 6 completed", stats.Outcomes)
	}
	if stats.Degraded != 1 {
		t.Errorf("degraded = %d, want 1 (the session that survived its panic)", stats.Degraded)
	}
}

// TestChaosDeterministicAcrossWorkerCounts is the acceptance pin for the
// fault-injection layer: a fault-injected crawl loses no sessions,
// classifies every site, and — because fault assignment is a pure function
// of (seed, host) and retry scheduling never leaks into session inputs —
// produces identical outcomes whether run serially or with 30 workers.
func TestChaosDeterministicAcrossWorkerCounts(t *testing.T) {
	profile := chaos.Profile{
		DeadRate: 0.15, StallRate: 0.05, SlowRate: 0.10,
		ServerErrorRate: 0.10, TruncateRate: 0.10, TakedownRate: 0.10,
		FlakyRate: 0.15, SlowDelay: time.Millisecond, FlakyFailures: 2,
	}
	const seed = 99
	run := func(workers int) ([]*crawler.SessionLog, Stats, *chaos.Injector) {
		reg := phishserver.NewRegistry()
		var urls []string
		var sites []*site.Site
		for i := 0; i < 40; i++ {
			s := quickSite(fmtHost(400 + i))
			reg.AddSite(s)
			sites = append(sites, s)
			urls = append(urls, s.SeedURL())
		}
		// Fresh injector per run: flaky-failure counters are stateful.
		in := &chaos.Injector{Profile: profile, Seed: seed}
		logs, stats := Run(Config{
			Workers: workers, Crawler: chaosFarmCrawler(reg, in, 150*time.Millisecond),
			MaxRetries: 3, RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
		}, urls)
		return logs, stats, in
	}

	serial, serialStats, in := run(1)
	wide, wideStats, _ := run(30)

	// Zero lost sessions; every site classified identically in both runs.
	for i := range serial {
		a, b := serial[i], wide[i]
		if a == nil || b == nil {
			t.Fatalf("site %d: lost session (serial=%v wide=%v)", i, a == nil, b == nil)
		}
		if a.Outcome == "" || b.Outcome == "" {
			t.Fatalf("site %d: unclassified session", i)
		}
		if a.Outcome != b.Outcome || a.Error != b.Error || a.Attempts != b.Attempts {
			t.Errorf("site %d: serial (%s/%s/%d) vs wide (%s/%s/%d)",
				i, a.Outcome, a.Error, a.Attempts, b.Outcome, b.Error, b.Attempts)
		}
	}

	// Aggregate counts identical.
	for o, n := range serialStats.Outcomes {
		if wideStats.Outcomes[o] != n {
			t.Errorf("outcome %q: %d serial vs %d wide", o, n, wideStats.Outcomes[o])
		}
	}
	for c, n := range serialStats.Failures {
		if wideStats.Failures[c] != n {
			t.Errorf("failure %q: %d serial vs %d wide", c, n, wideStats.Failures[c])
		}
	}
	if serialStats.Retries != wideStats.Retries || serialStats.Degraded != wideStats.Degraded {
		t.Errorf("retries/degraded: %d/%d serial vs %d/%d wide",
			serialStats.Retries, serialStats.Degraded, wideStats.Retries, wideStats.Degraded)
	}

	// Every session's fate matches its injected fault — the ground truth
	// the injector exposes via FaultFor.
	for i, l := range serial {
		host := fmtHost(400 + i)
		switch in.FaultFor(host) {
		case chaos.FaultDead:
			if l.Outcome != OutcomeGaveUp || l.Error != crawler.OutcomeDead {
				t.Errorf("%s (dead): %s/%s", host, l.Outcome, l.Error)
			}
		case chaos.FaultStall:
			if l.Outcome != OutcomeGaveUp || l.Error != crawler.OutcomeTimeout {
				t.Errorf("%s (stall): %s/%s", host, l.Outcome, l.Error)
			}
		case chaos.FaultServerError:
			if l.Outcome != OutcomeGaveUp || l.Error != crawler.OutcomeServerError {
				t.Errorf("%s (server-error): %s/%s", host, l.Outcome, l.Error)
			}
		case chaos.FaultTruncate:
			if l.Outcome != OutcomeGaveUp || l.Error != crawler.OutcomeTruncated {
				t.Errorf("%s (truncate): %s/%s", host, l.Outcome, l.Error)
			}
		case chaos.FaultTakedown:
			if l.Outcome != crawler.OutcomeTakedown {
				t.Errorf("%s (takedown): %s", host, l.Outcome)
			}
		case chaos.FaultFlaky:
			if l.Outcome != crawler.OutcomeCompleted || l.Attempts != 3 {
				t.Errorf("%s (flaky): %s after %d attempts, want completed after 3", host, l.Outcome, l.Attempts)
			}
		case chaos.FaultNone, chaos.FaultSlow:
			if l.Outcome != crawler.OutcomeCompleted || l.Attempts != 1 {
				t.Errorf("%s (healthy): %s after %d attempts", host, l.Outcome, l.Attempts)
			}
		}
	}
}

func TestBackoffDelayCappedAndJittered(t *testing.T) {
	base, max := 25*time.Millisecond, 400*time.Millisecond
	prev := time.Duration(0)
	for attempt := 0; attempt < 8; attempt++ {
		d := backoffDelay(base, max, attempt, 1, 0)
		if d > max {
			t.Errorf("attempt %d: delay %s exceeds cap %s", attempt, d, max)
		}
		if d < base/2 {
			t.Errorf("attempt %d: delay %s below half the base", attempt, d)
		}
		if d < prev/2 {
			t.Errorf("attempt %d: delay %s collapsed from %s", attempt, d, prev)
		}
		prev = d
	}
	// Deterministic: same (seed, idx, attempt) → same jitter.
	if backoffDelay(base, max, 3, 7, 9) != backoffDelay(base, max, 3, 7, 9) {
		t.Error("backoff jitter not deterministic")
	}
	// Different sites decorrelate.
	same := true
	for idx := 1; idx < 10; idx++ {
		if backoffDelay(base, max, 3, 7, idx) != backoffDelay(base, max, 3, 7, 0) {
			same = false
		}
	}
	if same {
		t.Error("jitter identical across sites")
	}
}
