// Package analysis implements the data-analyzer half of the system
// (Section 5): it consumes the crawl-session logs and produces every
// measurement the paper reports — UI patterns (brand cloning, input-field
// distribution, keylogging), multi-stage patterns (page-count histogram,
// per-stage field distribution, double login, UX termination), and
// user-verification patterns (click-through, CAPTCHAs, 2FA) — plus the
// corpus summaries of Tables 1, 2, and 7 and the campaign clustering of
// Section 4.6.
package analysis

import (
	"net/url"
	"sort"
	"strings"

	"repro/internal/captcha"
	"repro/internal/crawler"
	"repro/internal/farm"
	"repro/internal/feed"
	"repro/internal/fieldspec"
	"repro/internal/metrics"
	"repro/internal/phash"
	"repro/internal/script"
	"repro/internal/vision"
)

// multiLevelSuffixes lists the common two-label public suffixes, so
// "login.bank.co.uk" resolves to "bank.co.uk" rather than "co.uk". A full
// public-suffix list is overkill for the corpora this system measures; these
// cover the registries that actually appear in phishing feeds.
var multiLevelSuffixes = map[string]bool{
	"co.uk": true, "org.uk": true, "ac.uk": true, "gov.uk": true,
	"com.au": true, "net.au": true, "org.au": true,
	"co.jp": true, "ne.jp": true, "or.jp": true,
	"com.br": true, "com.cn": true, "com.mx": true, "co.in": true,
	"co.za": true, "com.ar": true, "com.tr": true, "co.nz": true,
}

// ESLD returns the effective second-level domain of a host or URL — the
// registrable domain, the unit Table 1 and Table 4 count in.
func ESLD(rawURL string) string {
	host := rawURL
	if strings.Contains(rawURL, "://") {
		if u, err := url.Parse(rawURL); err == nil {
			host = u.Host
		}
	}
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	parts := strings.Split(host, ".")
	if len(parts) <= 2 {
		return host
	}
	n := 2
	if multiLevelSuffixes[strings.Join(parts[len(parts)-2:], ".")] {
		n = 3
	}
	return strings.Join(parts[len(parts)-n:], ".")
}

// AttachMeta copies feed metadata (site id, brand, sector, campaign) onto
// session logs by seed-URL match, the join the farm performs implicitly in
// the paper's pipeline.
func AttachMeta(logs []*crawler.SessionLog, entries []feed.Entry) {
	byURL := MetaIndex(entries)
	for _, l := range logs {
		AttachMetaIndexed(l, byURL)
	}
}

// MetaIndex builds the seed-URL → feed-entry join index once, so a
// streaming consumer (the journal sink journaling each session as it
// completes) can attach metadata per log without rebuilding the map.
func MetaIndex(entries []feed.Entry) map[string]feed.Entry {
	byURL := make(map[string]feed.Entry, len(entries))
	for _, e := range entries {
		byURL[e.URL] = e
	}
	return byURL
}

// AttachMetaIndexed attaches one log's feed metadata from a prebuilt
// MetaIndex.
func AttachMetaIndexed(l *crawler.SessionLog, byURL map[string]feed.Entry) {
	if e, ok := byURL[l.SeedURL]; ok && e.Site != nil {
		l.SiteID = e.Site.ID
		l.Brand = e.Brand
		l.Category = e.Sector
		l.CampaignID = e.Site.CampaignID
	}
}

// Summary reproduces Table 1: seed URLs, filtered URLs, crawled URLs, and
// crawled SLDs.
type Summary struct {
	SeedURLs     int
	FilteredURLs int
	CrawledURLs  int
	CrawledSLDs  int
}

// Summarize computes the Table 1 row.
func Summarize(f *feed.Feed, logs []*crawler.SessionLog) Summary {
	urls := map[string]bool{}
	slds := map[string]bool{}
	for _, l := range logs {
		for _, p := range l.Pages {
			urls[p.URL] = true
			slds[ESLD(p.URL)] = true
		}
	}
	return Summary{
		SeedURLs:     f.SeedCount(),
		FilteredURLs: len(f.Filter()),
		CrawledURLs:  len(urls),
		CrawledSLDs:  len(slds),
	}
}

// CategoryCounts reproduces Table 2: sites per business category.
func CategoryCounts(logs []*crawler.SessionLog) *metrics.Histogram {
	h := metrics.NewHistogram()
	for _, l := range logs {
		if l.Category != "" {
			h.Add(l.Category, 1)
		}
	}
	return h
}

// BrandCounts reproduces Table 7: sites per targeted brand.
func BrandCounts(logs []*crawler.SessionLog) *metrics.Histogram {
	h := metrics.NewHistogram()
	for _, l := range logs {
		if l.Brand != "" {
			h.Add(l.Brand, 1)
		}
	}
	return h
}

// CampaignClusterThreshold is the pHash distance below which two first
// pages are considered the same campaign design. Calibrated against the
// corpus: identical kit deployments hash identically (distance 0) while
// distinct campaigns sit at distance >= 10 even when they share a brand.
const CampaignClusterThreshold = 8

// ClusterCampaigns groups sessions into campaigns by first-page perceptual
// hash (Section 4.6) and returns the number of clusters.
func ClusterCampaigns(logs []*crawler.SessionLog) int {
	hashes := make([]phash.Hash, 0, len(logs))
	for _, l := range logs {
		hashes = append(hashes, l.FirstPageEmbedding.PHash)
	}
	assign := phash.Cluster(hashes, CampaignClusterThreshold)
	max := -1
	for _, a := range assign {
		if a > max {
			max = a
		}
	}
	return max + 1
}

// sitePages returns the session's pages on the phishing site itself,
// excluding pages reached after leaving for another eSLD (terminal
// redirects).
func sitePages(l *crawler.SessionLog) []crawler.PageLog {
	if len(l.Pages) == 0 {
		return nil
	}
	seed := ESLD(l.SeedURL)
	var out []crawler.PageLog
	for _, p := range l.Pages {
		if ESLD(p.URL) == seed {
			out = append(out, p)
		}
	}
	return out
}

// IsMultiPage reports whether the crawler progressed past the first page on
// the phishing site.
func IsMultiPage(l *crawler.SessionLog) bool {
	return len(sitePages(l)) >= 2
}

// FieldDistribution reproduces Figure 7: for each field type, the number of
// pages requesting it, plus context-group totals.
type FieldDistribution struct {
	PerType  *metrics.Histogram
	PerGroup *metrics.Histogram
}

// FieldsAcrossPages computes the Figure 7 distribution.
func FieldsAcrossPages(logs []*crawler.SessionLog) FieldDistribution {
	d := FieldDistribution{PerType: metrics.NewHistogram(), PerGroup: metrics.NewHistogram()}
	for _, l := range logs {
		for _, p := range l.Pages {
			seen := map[fieldspec.Type]bool{}
			for _, f := range p.Fields {
				if f.Label == fieldspec.Unknown || seen[f.Label] {
					continue
				}
				seen[f.Label] = true
				d.PerType.Add(string(f.Label), 1)
				d.PerGroup.Add(string(fieldspec.GroupOf(f.Label)), 1)
			}
		}
	}
	return d
}

// PageCountHistogram reproduces Figure 8: the distribution of total on-site
// page counts for multi-page sites.
func PageCountHistogram(logs []*crawler.SessionLog) map[int]int {
	h := map[int]int{}
	for _, l := range logs {
		n := len(sitePages(l))
		if n >= 2 {
			h[n]++
		}
	}
	return h
}

// StageField is one cell of Figure 9: the share of multi-page sites whose
// page at the given stage requested the given field type.
type StageField struct {
	Stage int // 1-based page index
	Type  fieldspec.Type
	Pct   float64
}

// FieldsPerStage reproduces Figure 9: per stage (1..5), the percentage of
// multi-step sites requesting each field type at that stage. Percentages
// are per field type across stages, as in the paper's caption.
func FieldsPerStage(logs []*crawler.SessionLog) []StageField {
	// counts[stage][type]
	counts := map[int]map[fieldspec.Type]int{}
	typeTotals := map[fieldspec.Type]int{}
	for _, l := range logs {
		pages := sitePages(l)
		if len(pages) < 2 {
			continue
		}
		for i, p := range pages {
			stage := i + 1
			if stage > 5 {
				break
			}
			seen := map[fieldspec.Type]bool{}
			for _, f := range p.Fields {
				if f.Label == fieldspec.Unknown || seen[f.Label] {
					continue
				}
				seen[f.Label] = true
				if counts[stage] == nil {
					counts[stage] = map[fieldspec.Type]int{}
				}
				counts[stage][f.Label]++
				typeTotals[f.Label]++
			}
		}
	}
	var out []StageField
	for stage := 1; stage <= 5; stage++ {
		// Emit types in sorted order: Figure 9 renders straight from this
		// slice, so its row order must not depend on map iteration.
		typs := make([]fieldspec.Type, 0, len(counts[stage]))
		for t := range counts[stage] {
			typs = append(typs, t)
		}
		sort.Slice(typs, func(i, j int) bool { return typs[i] < typs[j] })
		for _, t := range typs {
			out = append(out, StageField{
				Stage: stage,
				Type:  t,
				Pct:   100 * float64(counts[stage][t]) / float64(typeTotals[t]),
			})
		}
	}
	return out
}

// ObfuscationRates reproduces the Section 5.1.2 auxiliary numbers: the
// fraction of sites where OCR was needed and where only visual detection
// found a submit control.
type ObfuscationRates struct {
	OCRRate          float64
	VisualSubmitRate float64
}

// Obfuscation computes the OCR and visual-submit rates.
func Obfuscation(logs []*crawler.SessionLog) ObfuscationRates {
	if len(logs) == 0 {
		return ObfuscationRates{}
	}
	ocrN, visN := 0, 0
	for _, l := range logs {
		sawOCR, sawVisual := false, false
		for _, p := range l.Pages {
			if p.UsedOCR {
				sawOCR = true
			}
			if p.SubmitMethod == crawler.SubmitVisual || p.SubmitMethod == crawler.SubmitVisualClick {
				sawVisual = true
			}
		}
		if sawOCR {
			ocrN++
		}
		if sawVisual {
			visN++
		}
	}
	n := float64(len(logs))
	return ObfuscationRates{OCRRate: float64(ocrN) / n, VisualSubmitRate: float64(visN) / n}
}

// KeyloggingCounts reproduces Section 5.1.3's three nested measurements.
type KeyloggingCounts struct {
	// Monitoring sites register a keydown listener that stores data.
	Monitoring int
	// ImmediateRequest sites issue a network request as data is entered.
	ImmediateRequest int
	// DataExfiltrated sites include the entered data in that request
	// before any submit action.
	DataExfiltrated int
}

// Keylogging computes the keylogger tiers from listener logs and network
// traffic.
func Keylogging(logs []*crawler.SessionLog) KeyloggingCounts {
	var out KeyloggingCounts
	for _, l := range logs {
		monitors, sends, exfil := false, false, false
		// Typed values across the session, for matching beacon payloads.
		typed := map[string]bool{}
		for _, p := range l.Pages {
			for _, f := range p.Fields {
				if f.Value != "" {
					typed[f.Value] = true
				}
			}
			for _, lst := range p.Listeners {
				if lst.Event == "keydown" {
					monitors = true
				}
			}
		}
		for _, r := range l.NetLog {
			if r.Kind != "beacon" {
				continue
			}
			sends = true
			for _, d := range r.CarriedData {
				if typed[d] {
					exfil = true
				}
			}
		}
		if monitors {
			out.Monitoring++
		}
		if monitors && sends {
			out.ImmediateRequest++
		}
		if monitors && sends && exfil {
			out.DataExfiltrated++
		}
	}
	return out
}

// DoubleLoginCount reproduces Section 5.2.2: multi-page sites presenting
// two consecutive pages that request the same login credentials.
func DoubleLoginCount(logs []*crawler.SessionLog) int {
	login := fieldspec.LoginTypes()
	n := 0
	for _, l := range logs {
		pages := sitePages(l)
		if len(pages) < 2 {
			continue
		}
		for i := 1; i < len(pages); i++ {
			a := loginSet(pages[i-1], login)
			b := loginSet(pages[i], login)
			if len(a) >= 2 && setsEqual(a, b) {
				n++
				break
			}
		}
	}
	return n
}

func loginSet(p crawler.PageLog, login map[fieldspec.Type]bool) map[fieldspec.Type]bool {
	out := map[fieldspec.Type]bool{}
	for _, f := range p.Fields {
		if login[f.Label] {
			out[f.Label] = true
		}
	}
	return out
}

func setsEqual(a, b map[fieldspec.Type]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TerminationClassifier labels terminal-page text; satisfied by
// termclass.Classifier.
type TerminationClassifier interface {
	Classify(pageText string) (string, float64)
}

// TerminationCounts reproduces Section 5.2.3.
type TerminationCounts struct {
	// RedirectSites left the phishing site for a legitimate domain.
	RedirectSites int
	// RedirectDomains is the Table 4 histogram of landing eSLDs.
	RedirectDomains *metrics.Histogram
	// FinalNoInputSites ended on a terminal page with no input fields.
	FinalNoInputSites int
	// ByCategory counts terminal pages per classified category.
	ByCategory *metrics.Histogram
	// AwarenessCampaigns is the number of distinct campaigns among
	// awareness terminations.
	AwarenessCampaigns int
}

// Termination computes the UX-termination measurements over multi-page
// sites.
func Termination(logs []*crawler.SessionLog, clf TerminationClassifier) TerminationCounts {
	out := TerminationCounts{
		RedirectDomains: metrics.NewHistogram(),
		ByCategory:      metrics.NewHistogram(),
	}
	awarenessCamps := map[string]bool{}
	for _, l := range logs {
		if !IsMultiPage(l) || len(l.Pages) == 0 {
			continue
		}
		seed := ESLD(l.SeedURL)
		last := l.Pages[len(l.Pages)-1]
		if ESLD(last.URL) != seed {
			// Left the phishing site: terminal-redirect pattern.
			out.RedirectSites++
			out.RedirectDomains.Add(ESLD(last.URL), 1)
			continue
		}
		// Same-domain terminal page with no inputs.
		onSite := sitePages(l)
		final := onSite[len(onSite)-1]
		if final.HasInputs() {
			continue
		}
		out.FinalNoInputSites++
		if final.Status >= 400 {
			out.ByCategory.Add("http-error", 1)
			continue
		}
		if clf == nil {
			continue
		}
		label, _ := clf.Classify(final.Text)
		out.ByCategory.Add(label, 1)
		if label == "awareness" {
			awarenessCamps[l.CampaignID] = true
		}
	}
	out.AwarenessCampaigns = len(awarenessCamps)
	return out
}

// ClickThroughCounts reproduces Section 5.3.1.
type ClickThroughCounts struct {
	Total     int // multi-stage sites with a click-through pattern
	FirstPage int
	Internal  int
}

// ClickThrough finds no-input pages followed by input pages among
// multi-stage sites. CAPTCHA verification pages also fit that structural
// description but are measured separately (Section 5.3.2), so pages that
// carry a known CAPTCHA library or a detected CAPTCHA challenge are
// excluded here, as the paper's disjoint counts imply.
func ClickThrough(logs []*crawler.SessionLog) ClickThroughCounts {
	var out ClickThroughCounts
	for _, l := range logs {
		pages := sitePages(l)
		if len(pages) < 2 {
			continue
		}
		first, internal := false, false
		for i := 0; i+1 < len(pages); i++ {
			if !pages[i].HasInputs() && pages[i+1].HasInputs() && !isCaptchaPage(pages[i]) {
				if i == 0 {
					first = true
				} else {
					internal = true
				}
			}
		}
		if first || internal {
			out.Total++
		}
		if first {
			out.FirstPage++
		}
		if internal {
			out.Internal++
		}
	}
	return out
}

// isCaptchaPage reports whether a page carries CAPTCHA signals: a known
// provider script or a detected challenge.
func isCaptchaPage(p crawler.PageLog) bool {
	for _, src := range p.ScriptSrcs {
		if captcha.DetectProvider(src) != captcha.ProviderNone {
			return true
		}
	}
	for _, det := range p.Detections {
		if _, ok := kindFromClass(det.Class); ok {
			return true
		}
	}
	return false
}

// CaptchaCounts reproduces Section 5.3.2's prevalence measurements.
type CaptchaCounts struct {
	Total        int
	KnownTotal   int
	Recaptcha    int
	Hcaptcha     int
	CustomText   int
	CustomVisual int
}

// CaptchaOptions configures the custom-CAPTCHA verification heuristics.
type CaptchaOptions struct {
	// Exemplars are pHashes of training CAPTCHA crops per visual kind for
	// the >= 3 nearby exemplars rule.
	Exemplars []phash.Hash
	// InputNearDist is the pixel distance within which a text CAPTCHA must
	// have an input field. Default 120.
	InputNearDist int
	// VisualThreshold is the pHash distance for the exemplar rule.
	// Calibrated on this substrate: true challenge crops sit within ~35 of
	// several exemplars while false positives match none even at 40.
	// Default 35.
	VisualThreshold int
}

// Captchas measures known-library and custom CAPTCHA prevalence.
func Captchas(logs []*crawler.SessionLog, opts CaptchaOptions) CaptchaCounts {
	if opts.InputNearDist <= 0 {
		opts.InputNearDist = 120
	}
	if opts.VisualThreshold <= 0 {
		opts.VisualThreshold = 35
	}
	var out CaptchaCounts
	for _, l := range logs {
		var known captcha.Provider
		customText, customVis := false, false
		for _, p := range l.Pages {
			for _, src := range p.ScriptSrcs {
				if prov := captcha.DetectProvider(src); prov != captcha.ProviderNone {
					known = prov
				}
			}
			for di, det := range p.Detections {
				kind, ok := kindFromClass(det.Class)
				if !ok {
					continue
				}
				if kind.IsText() {
					// Heuristic 1: a text CAPTCHA needs an input box nearby
					// that the crawler did not map to a meaningful type.
					if textCaptchaVerified(p, det, opts.InputNearDist) {
						customText = true
					}
				} else {
					// Heuristic 2: visual CAPTCHAs must resemble >= 3
					// training exemplars by pHash.
					if di < len(p.DetectionHashes) &&
						phash.NearCount(p.DetectionHashes[di], opts.Exemplars, opts.VisualThreshold) >= 3 {
						customVis = true
					}
				}
			}
		}
		if known == captcha.ProviderNone && !customText && !customVis {
			continue
		}
		out.Total++
		switch known {
		case captcha.ProviderRecaptcha:
			out.KnownTotal++
			out.Recaptcha++
		case captcha.ProviderHcaptcha:
			out.KnownTotal++
			out.Hcaptcha++
		default:
			if customText {
				out.CustomText++
			}
			if customVis {
				out.CustomVisual++
			}
		}
	}
	return out
}

func kindFromClass(class string) (captcha.Kind, bool) {
	for _, k := range captcha.AllKinds() {
		if k.String() == class {
			return k, true
		}
	}
	return 0, false
}

func textCaptchaVerified(p crawler.PageLog, det vision.Detection, dist int) bool {
	for _, f := range p.Fields {
		if f.Label != fieldspec.Unknown && f.Label != fieldspec.Code {
			continue
		}
		// The answer box sits beside or on the row(s) just below the
		// challenge; its horizontal offset is label-driven and carries no
		// signal, so proximity is judged vertically.
		vertGap := 0
		switch {
		case f.Box.Y > det.Box.Y+det.Box.H:
			vertGap = f.Box.Y - (det.Box.Y + det.Box.H)
		case det.Box.Y > f.Box.Y+f.Box.H:
			vertGap = det.Box.Y - (f.Box.Y + f.Box.H)
		}
		if vertGap < dist {
			return true
		}
	}
	return false
}

// TwoFactorCounts reproduces Section 5.3.3.
type TwoFactorCounts struct {
	// CodeFieldSites contain at least one field classified as Code.
	CodeFieldSites int
	// OTPSites additionally label the field with 2FA keywords.
	OTPSites int
}

// TwoFactor measures code and OTP/SMS field prevalence.
func TwoFactor(logs []*crawler.SessionLog) TwoFactorCounts {
	var out TwoFactorCounts
	for _, l := range logs {
		hasCode, hasOTP := false, false
		for _, p := range l.Pages {
			for _, f := range p.Fields {
				if f.Label != fieldspec.Code {
					continue
				}
				hasCode = true
				if fieldspec.IsTwoFactorLabel(f.Description) {
					hasOTP = true
				}
			}
		}
		if hasCode {
			out.CodeFieldSites++
		}
		if hasOTP {
			out.OTPSites++
		}
	}
	return out
}

// SubmitMethodBreakdown counts, per site, the first submit strategy that
// worked (Section 4.3's ladder): how often the Enter key sufficed, how often
// a DOM button or programmatic form submission was needed, and how often
// only visual detection found the control. The paper reports the last
// number as its 12% statistic.
func SubmitMethodBreakdown(logs []*crawler.SessionLog) *metrics.Histogram {
	h := metrics.NewHistogram()
	for _, l := range logs {
		method := ""
		for _, p := range l.Pages {
			if p.HasInputs() && p.SubmitMethod != "" {
				method = p.SubmitMethod
				break
			}
		}
		if method != "" {
			h.Add(method, 1)
		}
	}
	return h
}

// FailureTaxonomy tallies the operational fate of every session: healthy
// outcomes (completed, stuck, page-limit) under their own names, takedown
// pages, and gave-up sessions broken down by their preserved failure class
// ("gave-up:dead", "gave-up:timeout", ...). Benign endings split by what
// the uncloaking loop learned: "benign:cloaked" is a cloaking gate the
// retry budget never opened (a measurable miss), plain "benign" a parked
// page that implicated no request dimension. Every session — including nil
// (lost) ones — lands in exactly one row, so the histogram total equals
// the crawled site count; it is the table a real crawl's reachability
// triage starts from.
func FailureTaxonomy(logs []*crawler.SessionLog) *metrics.Histogram {
	h := metrics.NewHistogram()
	for _, l := range logs {
		switch {
		case l == nil:
			h.Add(farm.OutcomeLost, 1)
		case l.Outcome == farm.OutcomeGaveUp && l.Error != "":
			h.Add(farm.OutcomeGaveUp+":"+l.Error, 1)
		case l.Outcome == crawler.OutcomeBenign && l.Cloak != nil:
			h.Add(crawler.OutcomeBenign+":cloaked", 1)
		default:
			h.Add(l.Outcome, 1)
		}
	}
	return h
}

// keydownListenerCount is exposed for white-box tests.
func keydownListenerCount(listeners []script.Listener) int {
	n := 0
	for _, l := range listeners {
		if l.Event == "keydown" {
			n++
		}
	}
	return n
}
