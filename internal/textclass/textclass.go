// Package textclass implements the statistical text classifiers the paper
// builds with scikit-learn: a bag-of-words featurizer and a multiclass
// linear model trained with stochastic gradient descent (the SGDClassifier
// of Section 4.2), with a confidence-threshold reject option. Two instances
// are used in the system: the input-field classifier (18 classes, threshold
// 0.8, rejects to "unknown") and the terminal-page classifier (4 classes,
// threshold 0.65).
package textclass

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// stopwords filtered during featurization (Section 4.2 step 1).
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "and": true, "or": true, "of": true,
	"to": true, "in": true, "on": true, "for": true, "is": true, "are": true,
	"be": true, "this": true, "that": true, "with": true, "as": true,
	"at": true, "by": true, "from": true, "it": true, "its": true,
	"was": true, "were": true, "will": true, "would": true, "can": true,
	"could": true, "should": true, "do": true, "does": true, "did": true,
	"has": true, "have": true, "had": true, "not": true, "no": true,
	"but": true, "if": true, "so": true, "we": true, "our": true,
	"us": true, "they": true, "them": true, "their": true, "he": true,
	"she": true, "his": true, "her": true, "i": true, "me": true, "my": true,
}

// acronyms that survive filtering even though they are short or contain
// digits, mirroring the paper's "valid dictionary words including common
// acronyms".
var acronyms = map[string]bool{
	"ssn": true, "otp": true, "cvv": true, "cvc": true, "cvn": true,
	"dob": true, "id": true, "pin": true, "atm": true, "2fa": true,
	"sms": true, "mm": true, "yy": true, "dd": true, "yyyy": true,
	"dl": true, "tel": true, "fax": true, "nin": true, "itin": true,
	"pan": true, "cc": true, "url": true, "http": true, "pwd": true,
}

// Tokenize lowercases, strips non-alphanumeric characters, removes
// stopwords, and keeps word-like tokens and known acronyms.
func Tokenize(text string) []string {
	text = strings.ToLower(text)
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		tok := cur.String()
		cur.Reset()
		if stopwords[tok] {
			return
		}
		if acronyms[tok] {
			tokens = append(tokens, tok)
			return
		}
		// Keep alphabetic tokens of length >= 2; drop pure numbers and
		// mixed junk (but keep short digit-letter combos like "2fa" via the
		// acronym table above).
		alpha := true
		for _, r := range tok {
			if r < 'a' || r > 'z' {
				alpha = false
				break
			}
		}
		if alpha && len(tok) >= 2 {
			tokens = append(tokens, tok)
		}
	}
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// HasTokens reports whether Tokenize would emit at least one token, without
// allocating — the crawler's hot-path "is this description informative?"
// test. It mirrors Tokenize's filtering byte-wise: ASCII case folding (the
// corpus is ASCII; a non-ASCII letter never forms a token in either
// implementation), stopword and acronym lookups via allocation-free map
// probes, and the alpha-run rule for everything else.
func HasTokens(text string) bool {
	var buf [64]byte
	n, long, alpha := 0, false, true
	for i := 0; i <= len(text); i++ {
		var c byte
		if i < len(text) {
			c = text[i]
		}
		if lc := c | 0x20; lc >= 'a' && lc <= 'z' {
			if n < len(buf) {
				buf[n] = lc
				n++
			} else {
				long = true
			}
			continue
		}
		if c >= '0' && c <= '9' {
			alpha = false
			if n < len(buf) {
				buf[n] = c
				n++
			} else {
				long = true
			}
			continue
		}
		if n == 0 {
			continue
		}
		// Token boundary: apply Tokenize's keep rules. A token that
		// overflowed the scratch cannot be a stopword or acronym (both
		// tables hold short words), so only the alpha rule applies.
		if long {
			if alpha {
				return true
			}
		} else if tok := buf[:n]; !stopwords[string(tok)] {
			if acronyms[string(tok)] {
				return true
			}
			if alpha && n >= 2 {
				return true
			}
		}
		n, long, alpha = 0, false, true
	}
	return false
}

// Sample is one labelled training example.
type Sample struct {
	Text  string `json:"text"`
	Label string `json:"label"`
}

// Model is a multiclass linear classifier over bag-of-words features,
// trained by SGD on the multinomial logistic (softmax) loss.
type Model struct {
	Vocab   map[string]int `json:"vocab"`
	Classes []string       `json:"classes"`
	// W is row-major: Classes x (len(Vocab)+1); the final column is bias.
	W []float64 `json:"w"`
}

// TrainConfig controls SGD training.
type TrainConfig struct {
	Epochs       int     // default 30
	LearningRate float64 // default 0.1
	L2           float64 // default 1e-4
	Seed         int64   // shuffling seed
	MinTokenFreq int     // drop vocabulary seen fewer times; default 1
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.L2 < 0 {
		c.L2 = 0
	} else if c.L2 == 0 {
		c.L2 = 1e-4
	}
	if c.MinTokenFreq <= 0 {
		c.MinTokenFreq = 1
	}
	return c
}

// ErrNoData is returned when Train receives no usable samples.
var ErrNoData = errors.New("textclass: no training samples")

// Train fits a model on the samples.
func Train(samples []Sample, cfg TrainConfig) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(samples) == 0 {
		return nil, ErrNoData
	}
	// Build vocabulary and class list.
	freq := map[string]int{}
	classSet := map[string]bool{}
	for _, s := range samples {
		for _, tok := range Tokenize(s.Text) {
			freq[tok]++
		}
		classSet[s.Label] = true
	}
	var classes []string
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	if len(classes) < 2 {
		return nil, fmt.Errorf("textclass: need >= 2 classes, got %d", len(classes))
	}
	vocab := map[string]int{}
	for tok, n := range freq {
		if n >= cfg.MinTokenFreq {
			vocab[tok] = 0 // placeholder
		}
	}
	// Stable vocabulary indices.
	var toks []string
	for tok := range vocab {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	for i, tok := range toks {
		vocab[tok] = i
	}
	m := &Model{
		Vocab:   vocab,
		Classes: classes,
		W:       make([]float64, len(classes)*(len(vocab)+1)),
	}
	classIdx := map[string]int{}
	for i, c := range classes {
		classIdx[c] = i
	}

	// Pre-featurize.
	feats := make([][]int, len(samples))
	ys := make([]int, len(samples))
	for i, s := range samples {
		feats[i] = m.featurize(s.Text)
		ys[i] = classIdx[s.Label]
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(samples))
	probs := make([]float64, len(classes))
	d := len(vocab) + 1
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Reshuffle per epoch for SGD.
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := cfg.LearningRate / (1 + 0.05*float64(epoch))
		for _, idx := range order {
			x := feats[idx]
			y := ys[idx]
			m.scores(x, probs)
			softmaxInPlace(probs)
			for c := range m.Classes {
				grad := probs[c]
				if c == y {
					grad -= 1
				}
				if grad == 0 {
					continue
				}
				row := m.W[c*d : (c+1)*d]
				for _, f := range x {
					row[f] -= lr * grad
				}
				row[d-1] -= lr * grad // bias
			}
			// L2 shrinkage, applied sparsely for speed.
			if cfg.L2 > 0 {
				shrink := 1 - lr*cfg.L2
				for c := range m.Classes {
					row := m.W[c*d : (c+1)*d]
					for _, f := range x {
						row[f] *= shrink
					}
				}
			}
		}
	}
	return m, nil
}

// featurize maps text to vocabulary indices (with repeats for counts).
func (m *Model) featurize(text string) []int {
	var out []int
	for _, tok := range Tokenize(text) {
		if i, ok := m.Vocab[tok]; ok {
			out = append(out, i)
		}
	}
	return out
}

// predictScratch is the reusable working set of one Predict call, pooled so
// the crawler's per-field classification stops allocating: the token build
// buffer, the feature-index list, and the class-score vector.
type predictScratch struct {
	buf   []byte
	feats []int
	probs []float64
}

var predictPool = sync.Pool{New: func() any { return new(predictScratch) }}

// featurizeInto is featurize without allocations: tokens are assembled in
// buf and looked up through the compiler's free map[string(bytes)] pattern.
// Tokenization is byte-wise — ASCII letters are lowercased in place and
// everything outside [a-z0-9] delimits, which matches Tokenize (whose token
// alphabet is [a-z0-9] after lowercasing) for all inputs the corpus
// produces. Appends indices to dst; returns the grown buffers.
func (m *Model) featurizeInto(text string, buf []byte, dst []int) ([]byte, []int) {
	for i := 0; i <= len(text); i++ {
		var c byte
		if i < len(text) {
			c = text[i]
		}
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			buf = append(buf, c)
		case c >= 'A' && c <= 'Z':
			buf = append(buf, c|0x20)
		default:
			if len(buf) == 0 {
				continue
			}
			tok := buf
			buf = buf[:0]
			if stopwords[string(tok)] {
				continue
			}
			if !acronyms[string(tok)] {
				alpha := true
				for _, b := range tok {
					if b < 'a' || b > 'z' {
						alpha = false
						break
					}
				}
				if !alpha || len(tok) < 2 {
					continue
				}
			}
			if idx, ok := m.Vocab[string(tok)]; ok {
				dst = append(dst, idx)
			}
		}
	}
	return buf, dst
}

// scores fills dst with the raw linear scores for each class.
func (m *Model) scores(x []int, dst []float64) {
	d := len(m.Vocab) + 1
	for c := range m.Classes {
		row := m.W[c*d : (c+1)*d]
		s := row[d-1]
		for _, f := range x {
			s += row[f]
		}
		dst[c] = s
	}
}

func softmaxInPlace(v []float64) {
	maxV := math.Inf(-1)
	for _, x := range v {
		if x > maxV {
			maxV = x
		}
	}
	sum := 0.0
	for i, x := range v {
		e := math.Exp(x - maxV)
		v[i] = e
		sum += e
	}
	for i := range v {
		v[i] /= sum
	}
}

// Predict returns the most probable class and its confidence in [0, 1].
// Text with no in-vocabulary tokens carries no evidence and yields the
// uniform distribution, so thresholded callers reject it. The working set
// is pooled: steady-state prediction does not allocate.
func (m *Model) Predict(text string) (string, float64) {
	s := predictPool.Get().(*predictScratch)
	defer predictPool.Put(s)
	s.buf, s.feats = m.featurizeInto(text, s.buf[:0], s.feats[:0])
	x := s.feats
	if len(x) == 0 {
		return m.Classes[0], 1 / float64(len(m.Classes))
	}
	if cap(s.probs) < len(m.Classes) {
		s.probs = make([]float64, len(m.Classes))
	}
	probs := s.probs[:len(m.Classes)]
	m.scores(x, probs)
	softmaxInPlace(probs)
	best, bestP := 0, probs[0]
	for i, p := range probs {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return m.Classes[best], bestP
}

// PredictThreshold applies the reject option of Section 4.2: predictions
// below threshold return rejectLabel.
func (m *Model) PredictThreshold(text string, threshold float64, rejectLabel string) (string, float64) {
	label, conf := m.Predict(text)
	if conf < threshold {
		return rejectLabel, conf
	}
	return label, conf
}

// Probabilities returns the full class-probability distribution. As with
// Predict, token-free text yields the uniform distribution.
func (m *Model) Probabilities(text string) map[string]float64 {
	x := m.featurize(text)
	probs := make([]float64, len(m.Classes))
	if len(x) == 0 {
		for i := range probs {
			probs[i] = 1 / float64(len(probs))
		}
	} else {
		m.scores(x, probs)
		softmaxInPlace(probs)
	}
	out := make(map[string]float64, len(m.Classes))
	for i, c := range m.Classes {
		out[c] = probs[i]
	}
	return out
}

// Marshal serializes the model to JSON.
func (m *Model) Marshal() ([]byte, error) { return json.Marshal(m) }

// Unmarshal deserializes a model produced by Marshal.
func Unmarshal(data []byte) (*Model, error) {
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("textclass: %w", err)
	}
	if len(m.Classes) == 0 || m.W == nil {
		return nil, errors.New("textclass: incomplete model")
	}
	return &m, nil
}

// ActiveLearner implements the iterative training loop of Section 4.2: the
// model labels incoming samples; low-confidence ones are queued for a human
// oracle and folded back into the training set on Retrain.
type ActiveLearner struct {
	Model       *Model
	Threshold   float64
	RejectLabel string
	Config      TrainConfig

	labelled []Sample
	queue    []string // texts awaiting oracle labels
}

// NewActiveLearner trains an initial model on the seed set.
func NewActiveLearner(seed []Sample, threshold float64, rejectLabel string, cfg TrainConfig) (*ActiveLearner, error) {
	m, err := Train(seed, cfg)
	if err != nil {
		return nil, err
	}
	return &ActiveLearner{
		Model:       m,
		Threshold:   threshold,
		RejectLabel: rejectLabel,
		Config:      cfg,
		labelled:    append([]Sample(nil), seed...),
	}, nil
}

// Classify labels text; rejected samples are queued for the oracle.
func (a *ActiveLearner) Classify(text string) (string, float64) {
	label, conf := a.Model.PredictThreshold(text, a.Threshold, a.RejectLabel)
	if label == a.RejectLabel {
		a.queue = append(a.queue, text)
	}
	return label, conf
}

// Pending returns the texts awaiting oracle labels.
func (a *ActiveLearner) Pending() []string { return append([]string(nil), a.queue...) }

// Teach records oracle labels for pending texts and clears them from the
// queue.
func (a *ActiveLearner) Teach(labels map[string]string) {
	var remaining []string
	for _, text := range a.queue {
		if label, ok := labels[text]; ok {
			a.labelled = append(a.labelled, Sample{Text: text, Label: label})
		} else {
			remaining = append(remaining, text)
		}
	}
	a.queue = remaining
}

// Retrain refits the model on the accumulated labelled set.
func (a *ActiveLearner) Retrain() error {
	m, err := Train(a.labelled, a.Config)
	if err != nil {
		return err
	}
	a.Model = m
	return nil
}

// TrainingSetSize returns the current number of labelled samples.
func (a *ActiveLearner) TrainingSetSize() int { return len(a.labelled) }
