// Package trace records what one crawl session actually did, as a tree of
// timed spans: the session, each page it visited, and each instrumented
// stage (render, ocr, detect, submit) on that page. The collector is the
// telemetry layer the ROADMAP's production-scale crawl needs — the paper's
// run covered 51,859 URLs over weeks, and auditing a run of that size
// means being able to replay any single session's timeline.
//
// Spans are measured on a deterministic session-logical clock, NOT the
// wall clock. The clock starts at the Unix epoch and advances one logical
// millisecond per observable event (every timestamped browser log entry,
// every span boundary) plus a work-proportional cost the crawler charges
// per stage (DOM nodes rendered, fields OCR'd, detections scored). Two
// crawls of the same seed therefore produce byte-identical traces, traces
// survive journal kill/resume unchanged, and stage-latency percentiles
// derived from them are identical across any worker count — none of which
// a wall-clock trace can promise. Wall time stays behind the
// internal/metrics seam; phishvet's wallclock rule keeps it out of here.
//
// The collector is allocation-free on the hot path once its span slab has
// grown (spans live in one flat slice linked by parent indices), so
// tracing every session of a production crawl costs a few appends per
// page.
package trace

import "time"

// Kind classifies a span.
type Kind string

// Span kinds, outermost first. The hierarchy is fixed:
// session → page → stage.
const (
	KindSession Kind = "session"
	KindPage    Kind = "page"
	KindStage   Kind = "stage"
)

// Span is one timed node of the session tree. Start and End are offsets
// on the session-logical clock from the session's origin (the Unix
// epoch); Parent is the index of the enclosing span in the flat slice
// (-1 for the root). The flat parent-linked layout is what the journal
// stores and what keeps collection allocation-free.
type Span struct {
	Kind   Kind          `json:"kind"`
	Name   string        `json:"name"`
	Parent int           `json:"parent"`
	Start  time.Duration `json:"start"`
	End    time.Duration `json:"end"`
}

// Duration is the span's logical duration.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// initialSpanCap covers a full DefaultMaxPages session (1 session + 10
// pages + ~5 stages per page) without regrowing the slab.
const initialSpanCap = 64

// Session collects one session's spans and owns its logical clock. It is
// not safe for concurrent use — a session is driven by one worker — and a
// nil *Session is a valid no-op collector, mirroring metrics.StageTimings.
type Session struct {
	spans []Span
	stack []int // indices of open spans, innermost last
	now   time.Duration
}

// NewSession returns a collector with a pre-grown span slab.
func NewSession() *Session {
	return &Session{
		spans: make([]Span, 0, initialSpanCap),
		stack: make([]int, 0, 8),
	}
}

// Reset rewinds the collector for a new session, keeping the grown span
// slab. A reset session is indistinguishable from a new one: empty span
// list, empty stack, clock back at the origin. Callers recycling a session
// must have copied the previous Spans() result out first — Reset reuses
// that storage.
func (s *Session) Reset() {
	if s == nil {
		return
	}
	s.spans = s.spans[:0]
	s.stack = s.stack[:0]
	s.now = 0
}

// Clock returns the session-logical timestamp source, for sharing with the
// browser: every call advances the clock one logical millisecond and
// returns the epoch-based time, so browser log timestamps and span
// boundaries interleave on one deterministic timeline. A nil session
// returns nil (callers keep their default clock).
func (s *Session) Clock() func() time.Time {
	if s == nil {
		return nil
	}
	return func() time.Time {
		s.now += time.Millisecond
		return time.Unix(0, int64(s.now)).UTC()
	}
}

// Advance charges n logical milliseconds of work to the open span — the
// crawler calls it with work-proportional costs (DOM nodes rendered,
// detections scored, label glyphs OCR'd) so span durations, and the
// latency percentiles derived from them, reflect relative stage cost
// while staying a pure function of the session's content.
func (s *Session) Advance(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.now += time.Duration(n) * time.Millisecond
}

// Begin opens a span and returns its index for End. Opening a span
// advances the clock one tick, so zero-work spans still have non-zero
// extent. A nil session returns -1.
func (s *Session) Begin(kind Kind, name string) int {
	if s == nil {
		return -1
	}
	s.now += time.Millisecond
	parent := -1
	if len(s.stack) > 0 {
		parent = s.stack[len(s.stack)-1]
	}
	s.spans = append(s.spans, Span{Kind: kind, Name: name, Parent: parent, Start: s.now})
	id := len(s.spans) - 1
	s.stack = append(s.stack, id)
	return id
}

// End closes the span returned by Begin (and any still-open spans nested
// inside it), advancing the clock one tick, and returns the span's logical
// duration. Out-of-range ids (including Begin's nil-session -1) are
// no-ops.
func (s *Session) End(id int) time.Duration {
	if s == nil || id < 0 || id >= len(s.spans) || s.spans[id].End != 0 {
		return 0
	}
	s.now += time.Millisecond
	for i := len(s.stack) - 1; i >= 0; i-- {
		open := s.stack[i]
		s.stack = s.stack[:i]
		if s.spans[open].End == 0 {
			s.spans[open].End = s.now
		}
		if open == id {
			break
		}
	}
	return s.spans[id].Duration()
}

// Spans returns the collected spans in Begin order, closing any spans
// still open (a session aborted by an error leaves its root open; the
// exported trace is still well-formed). The returned slice is the
// collector's own slab; callers must be done collecting.
func (s *Session) Spans() []Span {
	if s == nil {
		return nil
	}
	for len(s.stack) > 0 {
		s.End(s.stack[len(s.stack)-1])
	}
	return s.spans
}
