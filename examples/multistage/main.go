// Multistage reproduces the Figure 2 case study: a Netflix-style six-page
// phishing flow (click-through, click-through, subscription page, payment
// page, OTP page, "congratulations" terminal) served over a real TCP
// listener, crawled end-to-end by the intelligent crawler — including the
// fake 2FA prompt it answers with a forged code.
package main

import (
	"fmt"
	"log"
	"net/url"

	"repro/internal/browser"
	"repro/internal/crawler"
	"repro/internal/fielddata"
	"repro/internal/fieldspec"
	"repro/internal/phishserver"
	"repro/internal/site"
)

func netflixSite() *site.Site {
	page := func(body string) string {
		return `<html><head><title>Watch anywhere</title></head><body>
<div style="background-color: maroon; height: 28px"><span style="color:white">NETFLIX</span></div>` + body + `</body></html>`
	}
	return &site.Site{
		ID: "fig2", Host: "netfl1x-billing.test", Brand: "Netflix",
		Pages: []*site.Page{
			{Path: "/", HTML: page(`<div><p>See what's next. Watch anywhere. Cancel anytime.</p></div>
<a class="btn" href="/plan">Next</a>`)},
			{Path: "/plan", HTML: page(`<div><p>Choose the plan that's right for you. Downgrade or upgrade at any time.</p></div>
<a class="btn" href="/signup">Continue</a>`)},
			{Path: "/signup", HTML: page(`<div><p>Create your account to start your membership.</p></div>
<form action="/signup"><div><label>Email address</label><input name="email"></div>
<div><label>Password</label><input type="password" name="password"></div>
<button>Start membership</button></form>`),
				Next: "/payment", Mode: site.NextRedirect,
				Validate: map[string]string{"email": site.ValidateEmail}},
			{Path: "/payment", HTML: page(`<div><p>Set up your payment. You can cancel at any time.</p></div>
<form action="/payment"><div><label>Name on card</label><input name="nm"></div>
<div><label>Card number</label><input name="card"></div>
<div><label>Expiration date MM/YY</label><input name="exp"></div>
<div><label>CVV security code</label><input name="cvv"></div>
<button>Save payment</button></form>`),
				Next: "/otp", Mode: site.NextRedirect,
				Validate: map[string]string{"card": site.ValidateLuhn}},
			{Path: "/otp", HTML: page(`<form action="/otp">
<div><span>Enter the one time password sent to your phone</span><input name="code"></div>
<button>Confirm</button></form>`),
				Next: "/done", Mode: site.NextRedirect,
				Validate: map[string]string{"code": site.ValidateDigits}},
			{Path: "/done", HTML: page(`<div><p>Congratulations! Your membership has been reactivated. Enjoy!</p></div>`)},
		},
		Images: map[string][]byte{},
	}
}

func main() {
	s := netflixSite()
	srv := phishserver.Listen(s) // real TCP
	defer srv.Close()
	fmt.Printf("Serving the Figure 2 flow at %s\n\n", srv.URL)

	classifier, err := fielddata.TrainDefault(1)
	if err != nil {
		log.Fatal(err)
	}
	c := &crawler.Crawler{
		Classifier: classifier,
		NewBrowser: func() *browser.Browser { return browser.New(browser.Options{}) },
		FakerSeed:  7,
	}
	logres := c.Crawl(srv.URL + "/")
	for _, pg := range logres.Pages {
		u, _ := url.Parse(pg.URL)
		fmt.Printf("Page %d %-10s", pg.Index+1, u.Path)
		switch {
		case len(pg.Fields) == 0 && pg.SubmitMethod != "":
			fmt.Printf(" click-through (%s)\n", pg.SubmitMethod)
		case len(pg.Fields) == 0:
			fmt.Printf(" terminal: %.60q\n", pg.Text)
		default:
			fmt.Println(" data page:")
			for _, f := range pg.Fields {
				fmt.Printf("    %-8s <- %q\n", f.Label, f.Value)
				if f.Label == fieldspec.Code && fieldspec.IsTwoFactorLabel(f.Description) {
					fmt.Println("    ^ fake 2FA prompt answered with a forged code (Section 5.3.3)")
				}
			}
		}
	}
	fmt.Printf("\nOutcome: %s over %d pages — the full victim UX, start to finish.\n",
		logres.Outcome, len(logres.Pages))
}
