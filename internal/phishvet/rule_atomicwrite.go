package phishvet

import (
	"go/ast"
)

// atomicwriteFuncs are the os entry points that create or clobber a file
// in place. Run artifacts (session exports, reports, journal state) must
// go through the temp+fsync+rename helpers in internal/sessionio or
// internal/journal, so a crash never leaves a truncated artifact for a
// later analysis to choke on.
var atomicwriteFuncs = map[string]bool{"WriteFile": true, "Create": true}

func atomicwriteRule() Rule {
	return Rule{
		Name: "atomicwrite",
		Doc:  "direct os.WriteFile/os.Create outside sessionio/journal",
		Run: func(p *Pass) {
			if within(p.Pkg.Path, "internal/sessionio") || within(p.Pkg.Path, "internal/journal") {
				return
			}
			for _, f := range p.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					path, name := p.selectorPkgFunc(sel)
					if path == "os" && atomicwriteFuncs[name] {
						p.Reportf(sel.Pos(), "os.%s writes in place: run artifacts go through sessionio/journal's atomic temp+fsync+rename writers", name)
					}
					return true
				})
			}
		},
	}
}
