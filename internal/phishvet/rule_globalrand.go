package phishvet

import (
	"go/ast"
)

// randConstructors are the math/rand functions that build seed-plumbed
// generators; everything else at package level draws from the process
// global source, which no seed in this codebase controls.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors, should the tree ever migrate.
	"NewPCG": true, "NewChaCha8": true,
}

func globalrandRule() Rule {
	return Rule{
		Name: "globalrand",
		Doc:  "top-level math/rand calls (process-global randomness) in seeded code",
		Run: func(p *Pass) {
			for _, f := range p.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					path, name := p.selectorPkgFunc(sel)
					if (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name] {
						p.Reportf(sel.Pos(), "rand.%s draws from the process-global source: plumb a seeded *rand.Rand instead", name)
					}
					return true
				})
			}
		},
	}
}
