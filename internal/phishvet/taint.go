package phishvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the forward taint engine under the detertaint rule: a
// flow-insensitive, field-sensitive dataflow over the call graph. Sources
// are reads of nondeterministic state (the wall clock — directly or
// through the internal/metrics seam — global math/rand, process
// identity); sinks are the functions whose output the reproduction pins
// byte-for-byte (journal appends, sessionio writes, fleet wire encoding,
// report rendering). A value is tainted if any part of what built it came
// from a source; a tainted value reaching a sink is a finding at the call
// site.
//
// Precision choices, in order of consequence:
//   - Field-sensitive on the base object: tainting p.Stats does not taint
//     p.Logs, which is what keeps the journal's session stream clean while
//     its stats record is correctly flagged.
//   - Summaries are symbolic in the parameters: analyzing a function once
//     yields which params flow to which results and sinks, so taint steps
//     across call boundaries without reanalysis (the per-function summary
//     cache).
//   - Methods do not summarize writes to their receiver's fields, and
//     calls through function values or interface methods propagate taint
//     from arguments to results but not into summaries. Both are
//     under-approximations; the golden fixtures pin what is caught.
//   - Map iteration order stays the maporder rule's domain.

// taintMask is a bit set: bit 0 marks "derived from a nondeterminism
// source", bit i+1 marks "derived from parameter i".
type taintMask uint64

const maskSource taintMask = 1

func paramBit(i int) taintMask {
	if i > 61 {
		return 0
	}
	return 1 << (uint(i) + 1)
}

// taintKey addresses one tracked value: a variable, or one first-level
// field of it ("" is the whole variable).
type taintKey struct {
	obj   types.Object
	field string
}

// taintHit is one source→sink flow found while analyzing a function,
// reported by the rule when that function's package is checked.
type taintHit struct {
	pos  token.Pos
	sink string
	via  string // callee carrying the flow, "" when the sink is called directly
}

// taintSummary is the cached per-function result.
type taintSummary struct {
	// results holds, per result index, the taint produced independent of
	// the caller plus symbolic parameter bits.
	results []taintMask
	// paramToSink names the sink reached by each parameter index (the
	// receiver is parameter 0 on methods).
	paramToSink map[int]string
	hits        []taintHit
}

type taintAnalysis struct {
	cg         *CallGraph
	summaries  map[*types.Func]*taintSummary
	inProgress map[*types.Func]bool
}

func newTaintAnalysis(cg *CallGraph) *taintAnalysis {
	return &taintAnalysis{
		cg:         cg,
		summaries:  map[*types.Func]*taintSummary{},
		inProgress: map[*types.Func]bool{},
	}
}

// summary computes (and caches) the taint summary for fn. Recursive
// cycles resolve optimistically: the inner frame sees an empty summary,
// the outer frame's fixpoint still converges on everything acyclic.
func (ta *taintAnalysis) summary(fn *types.Func) *taintSummary {
	if s, ok := ta.summaries[fn]; ok {
		return s
	}
	fi := ta.cg.Info(fn)
	if fi == nil || fi.Decl.Body == nil || ta.inProgress[fn] {
		return &taintSummary{}
	}
	ta.inProgress[fn] = true
	defer delete(ta.inProgress, fn)
	s := ta.analyze(fi)
	ta.summaries[fn] = s
	return s
}

// funcScope is the per-analysis mutable state for one declaration.
type funcScope struct {
	ta      *taintAnalysis
	fi      *FuncInfo
	state   map[taintKey]taintMask
	sum     *taintSummary
	hitSeen map[token.Pos]bool
	changed bool
}

func (ta *taintAnalysis) analyze(fi *FuncInfo) *taintSummary {
	fs := &funcScope{
		ta:      ta,
		fi:      fi,
		state:   map[taintKey]taintMask{},
		sum:     &taintSummary{paramToSink: map[int]string{}},
		hitSeen: map[token.Pos]bool{},
	}
	// Seed the parameters (receiver first) with their symbolic bits.
	for i, obj := range paramObjects(fi) {
		if obj != nil {
			fs.state[taintKey{obj: obj, field: ""}] = paramBit(i)
		}
	}
	sig := fi.Fn.Type().(*types.Signature)
	fs.sum.results = make([]taintMask, sig.Results().Len())
	// Flow-insensitive fixpoint: masks only grow, so a handful of passes
	// reaches stability regardless of statement order (a closure assigned
	// before the value it captures is tainted still sees the taint).
	for pass := 0; pass < 8; pass++ {
		fs.changed = false
		fs.walk(fi.Decl.Body)
		if !fs.changed {
			break
		}
	}
	return fs.sum
}

// paramObjects lists the declaration's receiver and parameter objects in
// signature order.
func paramObjects(fi *FuncInfo) []types.Object {
	var out []types.Object
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				out = append(out, nil) // unnamed: position still consumes a slot
				continue
			}
			for _, name := range f.Names {
				out = append(out, fi.Pkg.Info.Defs[name])
			}
		}
	}
	addFields(fi.Decl.Recv)
	addFields(fi.Decl.Type.Params)
	return out
}

// namedResultObjects lists the named result objects, or nil if unnamed.
func namedResultObjects(fi *FuncInfo) []types.Object {
	if fi.Decl.Type.Results == nil {
		return nil
	}
	var out []types.Object
	for _, f := range fi.Decl.Type.Results.List {
		for _, name := range f.Names {
			out = append(out, fi.Pkg.Info.Defs[name])
		}
	}
	return out
}

func (fs *funcScope) grow(key taintKey, m taintMask) {
	if key.obj == nil || m == 0 {
		return
	}
	if old := fs.state[key]; old|m != old {
		fs.state[key] = old | m
		fs.changed = true
	}
}

func (fs *funcScope) growResult(i int, m taintMask) {
	if i < len(fs.sum.results) && fs.sum.results[i]|m != fs.sum.results[i] {
		fs.sum.results[i] |= m
		fs.changed = true
	}
}

// walk drives statement handling; expression evaluation happens in eval,
// which also performs the sink checks.
func (fs *funcScope) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			fs.assignStmt(n)
			return false
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						fs.valueSpec(vs)
					}
				}
			}
			return false
		case *ast.ReturnStmt:
			fs.returnStmt(n)
			return false
		case *ast.ExprStmt:
			fs.eval(n.X)
			return false
		case *ast.GoStmt:
			fs.eval(n.Call)
			return false
		case *ast.DeferStmt:
			fs.eval(n.Call)
			return false
		case *ast.SendStmt:
			fs.eval(n.Chan)
			fs.eval(n.Value)
			return false
		case *ast.IncDecStmt:
			fs.eval(n.X)
			return false
		case *ast.IfStmt:
			fs.eval(n.Cond)
			return true // Init/Body/Else continue as statements
		case *ast.ForStmt:
			if n.Cond != nil {
				fs.eval(n.Cond)
			}
			return true
		case *ast.SwitchStmt:
			if n.Tag != nil {
				fs.eval(n.Tag)
			}
			return true
		case *ast.CaseClause:
			for _, e := range n.List {
				fs.eval(e)
			}
			return true
		case *ast.RangeStmt:
			m := fs.eval(n.X)
			fs.assign(n.Key, m)
			fs.assign(n.Value, m)
			return true
		}
		return true
	})
}

func (fs *funcScope) valueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			masks := fs.callResults(call)
			for i, name := range vs.Names {
				if i < len(masks) {
					fs.assign(name, masks[i])
				}
			}
			return
		}
	}
	for i, v := range vs.Values {
		if i < len(vs.Names) {
			fs.assign(vs.Names[i], fs.eval(v))
		} else {
			fs.eval(v)
		}
	}
}

func (fs *funcScope) assignStmt(n *ast.AssignStmt) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		var masks []taintMask
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			masks = fs.callResults(call)
		} else {
			m := fs.eval(n.Rhs[0]) // map index / type assert "comma ok"
			masks = []taintMask{m, m}
		}
		for i, lhs := range n.Lhs {
			if i < len(masks) {
				fs.assign(lhs, masks[i])
			}
		}
		return
	}
	for i, rhs := range n.Rhs {
		m := fs.eval(rhs)
		if i < len(n.Lhs) {
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN ||
				n.Tok == token.MUL_ASSIGN || n.Tok == token.QUO_ASSIGN || n.Tok == token.OR_ASSIGN {
				m |= fs.eval(n.Lhs[i])
			}
			fs.assign(n.Lhs[i], m)
		}
	}
}

func (fs *funcScope) returnStmt(n *ast.ReturnStmt) {
	if len(n.Results) == 0 {
		// Naked return: read the named result objects.
		for i, obj := range namedResultObjects(fs.fi) {
			if obj != nil {
				fs.growResult(i, fs.state[taintKey{obj: obj}])
			}
		}
		return
	}
	if len(n.Results) == 1 && len(fs.sum.results) > 1 {
		if call, ok := ast.Unparen(n.Results[0]).(*ast.CallExpr); ok {
			for i, m := range fs.callResults(call) {
				fs.growResult(i, m)
			}
			return
		}
	}
	for i, e := range n.Results {
		fs.growResult(i, fs.eval(e))
	}
}

// assign taints the storage a left-hand side names: whole variables, one
// field of a based variable, or — coarsely — the base of an index or
// dereference.
func (fs *funcScope) assign(lhs ast.Expr, m taintMask) {
	if lhs == nil || m == 0 {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if obj := fs.objectOf(l); obj != nil {
			fs.grow(taintKey{obj: obj}, m)
		}
	case *ast.SelectorExpr:
		if obj, field := fs.baseField(l); obj != nil {
			fs.grow(taintKey{obj: obj, field: field}, m)
		}
	case *ast.IndexExpr:
		fs.assign(l.X, m)
	case *ast.StarExpr:
		fs.assign(l.X, m)
	}
}

func (fs *funcScope) objectOf(id *ast.Ident) types.Object {
	if obj := fs.fi.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return fs.fi.Pkg.Info.Defs[id]
}

// baseField peels a selector chain down to its base variable and the
// first-level field on it: p.Stats.Sites → (p, "Stats"). A non-variable
// base (package qualifier, call result) returns nil.
func (fs *funcScope) baseField(sel *ast.SelectorExpr) (types.Object, string) {
	field := sel.Sel.Name
	x := ast.Unparen(sel.X)
	for {
		switch cur := x.(type) {
		case *ast.SelectorExpr:
			field = cur.Sel.Name
			x = ast.Unparen(cur.X)
		case *ast.StarExpr:
			x = ast.Unparen(cur.X)
		case *ast.IndexExpr:
			x = ast.Unparen(cur.X)
		case *ast.Ident:
			obj := fs.objectOf(cur)
			if obj == nil {
				return nil, ""
			}
			if _, isPkg := obj.(*types.PkgName); isPkg {
				return nil, ""
			}
			return obj, field
		default:
			return nil, ""
		}
	}
}

// eval returns the taint mask of an expression, firing sink checks on any
// call it contains.
func (fs *funcScope) eval(e ast.Expr) taintMask {
	if e == nil {
		return 0
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := fs.objectOf(e); obj != nil {
			return fs.state[taintKey{obj: obj}]
		}
		return 0
	case *ast.SelectorExpr:
		if obj, field := fs.baseField(e); obj != nil {
			return fs.state[taintKey{obj: obj}] | fs.state[taintKey{obj: obj, field: field}]
		}
		return fs.eval(e.X)
	case *ast.CallExpr:
		masks := fs.callResults(e)
		var m taintMask
		for _, r := range masks {
			m |= r
		}
		return m
	case *ast.ParenExpr:
		return fs.eval(e.X)
	case *ast.StarExpr:
		return fs.eval(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return 0 // channel payloads are not tracked
		}
		return fs.eval(e.X)
	case *ast.BinaryExpr:
		return fs.eval(e.X) | fs.eval(e.Y)
	case *ast.IndexExpr:
		return fs.eval(e.X)
	case *ast.SliceExpr:
		return fs.eval(e.X)
	case *ast.TypeAssertExpr:
		return fs.eval(e.X)
	case *ast.CompositeLit:
		var m taintMask
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= fs.eval(kv.Value)
			} else {
				m |= fs.eval(el)
			}
		}
		return m
	case *ast.FuncLit:
		// The literal's body shares this scope's state and is walked as
		// statements by the enclosing fixpoint; the value itself is clean.
		return 0
	}
	return 0
}

// callResults evaluates one call: classifies sources, fires sink checks,
// and returns the per-result taint masks.
func (fs *funcScope) callResults(call *ast.CallExpr) []taintMask {
	info := fs.fi.Pkg.Info
	fn := staticCallee(info, call)
	if fn != nil && sourceFunc(fn) {
		return fs.uniformResults(call, maskSource)
	}
	// Argument masks, with a method's receiver prepended as argument 0.
	var args []taintMask
	if fn != nil && fn.Type().(*types.Signature).Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			args = append(args, fs.eval(sel.X))
		} else {
			args = append(args, 0)
		}
	}
	for _, a := range call.Args {
		args = append(args, fs.eval(a))
	}
	if fn == nil {
		// Function value, interface method, conversion, builtin: taint
		// flows from arguments to results, nothing else is known.
		var m taintMask
		for _, a := range args {
			m |= a
		}
		return fs.uniformResults(call, m)
	}
	if fs.ta.cg.Info(fn) == nil {
		if sink, ok := sinkFunc(fn); ok {
			// A sink whose body is not loaded (interface method on a
			// journal type, partial run): still check the arguments.
			for _, a := range args {
				fs.noteSinkReach(call.Pos(), sink, "", a)
			}
			return fs.uniformResults(call, 0)
		}
		// Resolved but bodiless (stdlib, unloaded package): taint flows
		// from arguments to results — t.String() on a clock reading is
		// still the clock.
		var m taintMask
		for _, a := range args {
			m |= a
		}
		return fs.uniformResults(call, m)
	}
	if sink, ok := sinkFunc(fn); ok {
		recvSlots := 0
		if fn.Type().(*types.Signature).Recv() != nil {
			recvSlots = 1
		}
		for i := recvSlots; i < len(args); i++ {
			fs.noteSinkReach(call.Pos(), sink, "", args[i])
		}
		return fs.uniformResults(call, 0)
	}
	sum := fs.ta.summary(fn)
	// Interprocedural: substitute this call's argument masks into the
	// callee's symbolic parameter bits.
	expand := func(m taintMask) taintMask {
		out := m & maskSource
		for i, a := range args {
			if m&paramBit(i) != 0 {
				out |= a
			}
		}
		return out
	}
	sinkParams := make([]int, 0, len(sum.paramToSink))
	for i := range sum.paramToSink {
		sinkParams = append(sinkParams, i)
	}
	sort.Ints(sinkParams)
	for _, i := range sinkParams {
		if i < len(args) {
			fs.noteSinkReach(call.Pos(), sum.paramToSink[i], funcDisplay(fn), args[i])
		}
	}
	sig := fn.Type().(*types.Signature)
	out := make([]taintMask, sig.Results().Len())
	for i := range out {
		if i < len(sum.results) {
			out[i] = expand(sum.results[i])
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// uniformResults spreads one mask across every result of the call.
func (fs *funcScope) uniformResults(call *ast.CallExpr, m taintMask) []taintMask {
	tv, ok := fs.fi.Pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return []taintMask{m}
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		out := make([]taintMask, tup.Len())
		for i := range out {
			out[i] = m
		}
		return out
	}
	return []taintMask{m}
}

// noteSinkReach records what a mask reaching a sink means: a source bit
// is a finding in this function; parameter bits become part of the
// summary so callers inherit the check.
func (fs *funcScope) noteSinkReach(pos token.Pos, sink, via string, m taintMask) {
	if m&maskSource != 0 && !fs.hitSeen[pos] {
		fs.hitSeen[pos] = true
		fs.sum.hits = append(fs.sum.hits, taintHit{pos: pos, sink: sink, via: via})
		fs.changed = true
	}
	for i := 0; i < 62; i++ {
		if m&paramBit(i) != 0 {
			if _, dup := fs.sum.paramToSink[i]; !dup {
				fs.sum.paramToSink[i] = sink
				fs.changed = true
			}
		}
	}
}

// sourceFunc classifies nondeterminism sources: the wall clock read
// directly or through the metrics seam (the seam legalizes *reading* the
// clock for operational telemetry, not journaling what it returns),
// global math/rand, and process identity.
func sourceFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path, name := pkg.Path(), fn.Name()
	switch path {
	case "time":
		return name == "Now" || name == "Since" || name == "Until"
	case "math/rand", "math/rand/v2":
		return !randConstructors[name]
	case "os":
		return name == "Getpid" || name == "Getppid" || name == "Hostname"
	}
	if within(path, "internal/metrics") {
		return name == "Now" || name == "Elapsed"
	}
	return false
}

// sinkFunc classifies the exported surfaces the reproduction pins
// byte-for-byte. Path matching is segment-based so fixture packages under
// testdata mimic production paths.
func sinkFunc(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	path, name := pkg.Path(), fn.Name()
	switch {
	case within(path, "internal/journal") && hasPrefix(name, "Append"):
		return "journal." + name, true
	case within(path, "internal/sessionio") && hasPrefix(name, "Write"):
		return "sessionio." + name, true
	case within(path, "internal/fleet") && (name == "writeJSON" || name == "post"):
		return "fleet." + name, true
	case within(path, "internal/report") && ast.IsExported(name):
		return "report." + name, true
	}
	return "", false
}

func hasPrefix(s, prefix string) bool {
	return len(s) > len(prefix) && s[:len(prefix)] == prefix
}
