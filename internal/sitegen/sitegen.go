// Package sitegen generates the synthetic phishing corpus: campaigns of
// sites whose UX/UI design-pattern mix is parameterised by the rates the
// paper reports (params.go cites each number). A campaign models one
// phishing kit: every site in it shares brand, visual design, flow
// structure, and behaviours, deployed under different hostnames — which is
// exactly the property the paper's perceptual-hash clustering exploits to
// find campaigns in the first place.
//
// Because campaign sizes are heavy-tailed (a few kits deploy hundreds of
// sites), assigning design patterns to campaigns i.i.d. would give the
// site-level rates enormous variance. Pattern flags are therefore assigned
// by size-weighted quota: each campaign receives a flag when the running
// site-weighted rate is below the paper's target, which keeps corpus rates
// within a fraction of a percent of the paper at any scale while preserving
// kit coherence.
package sitegen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/brands"
	"repro/internal/captcha"
	"repro/internal/fieldspec"
	"repro/internal/site"
)

// Corpus is a generated set of phishing sites.
type Corpus struct {
	Sites []*site.Site
	// Campaigns is the number of distinct campaigns generated.
	Campaigns int
	// Seed echoes the generation seed.
	Seed int64
}

// quota assigns a boolean flag to size-weighted draws such that the running
// assigned fraction tracks the target. A small randomized prior decorrelates
// the first draws of independent quotas.
type quota struct {
	target   float64
	got, tot float64
}

func newQuota(target float64, rng *rand.Rand) *quota {
	const prior = 40
	return &quota{target: target, got: target * prior * rng.Float64() * 2, tot: prior}
}

// draw decides the flag for a campaign of n sites, choosing whichever
// outcome leaves the running rate closest to the target. This matters for
// large campaigns: a 400-site kit must not absorb a 1%-rate flag just
// because the quota is one site short.
func (q *quota) draw(n int) bool {
	s := float64(n)
	q.tot += s
	withErr := abs(q.got + s - q.target*q.tot)
	withoutErr := abs(q.got - q.target*q.tot)
	if withErr <= withoutErr {
		q.got += s
		return true
	}
	return false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// multiQuota picks one of several options tracking target proportions.
type multiQuota struct {
	targets []float64
	got     []float64
	tot     float64
}

func newMultiQuota(targets []float64, rng *rand.Rand) *multiQuota {
	const prior = 40
	m := &multiQuota{targets: targets, got: make([]float64, len(targets)), tot: prior}
	for i := range m.got {
		m.got[i] = targets[i] * prior * rng.Float64() * 2
	}
	return m
}

// draw returns the option whose assignment most improves tracking. The raw
// marginal error change is normalized by the option's expected magnitude so
// rare options (e.g. the 0.15%-rate custom visual CAPTCHA) are not starved
// by the natural fluctuation of popular options: a rare option wins as soon
// as a campaign small enough to fit its deficit comes along, while large
// campaigns still land on popular options.
func (m *multiQuota) draw(n int) int {
	s := float64(n)
	m.tot += s
	best, bestScore := 0, 1e18
	for i := range m.targets {
		t := m.targets[i] * m.tot
		errChange := abs(m.got[i]+s-t) - abs(m.got[i]-t)
		score := errChange / math.Sqrt(t+s)
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	m.got[best] += s
	return best
}

// genState holds every quota used during generation.
type genState struct {
	rng *rand.Rand

	multi       *quota
	pageCount   *multiQuota // options: 2, 3, 4, 5 (among multi)
	ctFirst     *quota      // among multi
	ctInner     *quota      // among multi
	doubleLogin *quota      // among multi
	termination *multiQuota // among multi
	captchaType *multiQuota // among multi: none/recaptcha/hcaptcha/text/visual
	keylog1     *quota
	keylog2     *quota      // among keylog1
	keylog3     *quota      // among keylog2
	obfuscation *multiQuota // normal / ocr / formless
	hasCode     *quota
	otpStyle    *quota // among hasCode
	cloneBrand  map[string]*quota
	sharedSLD   *quota
	noButton    *quota // among normal-obfuscation campaigns
	consent     *quota // "I agree" checkbox on the first data page
	brandPick   *multiQuota
	brandList   []brands.Brand
	language    *multiQuota // en / fr / es (Section 6 extension)

	// Cloaking quotas, nil unless Params.CloakRate > 0: the nil state
	// draws nothing from the rng, so corpora without cloaking stay
	// byte-identical to earlier generator versions.
	cloak      *quota
	cloakDepth *multiQuota // 1 / 2 / 3 rules per cloaked campaign
	cloakKind  *multiQuota // first rule kind, cloakKinds order
}

func newGenState(p Params) *genState {
	seed := p.Seed
	rng := rand.New(rand.NewSource(seed))
	pMulti := rate(PaperMultiPageSites)
	pcTotal := 0
	for _, w := range pageCountWeights {
		pcTotal += w
	}
	// CAPTCHA targets are expressed per eligible campaign (multi-page
	// without a click-through first page), so the overall rate lands on
	// the paper's per-site numbers.
	captchaEligible := 1 - rateOfMulti(paperClickThroughFirst)
	captchaNone := 1 - (rate(paperRecaptchaSites)+rate(paperHcaptchaSites)+
		rate(paperCustomTextCaptcha)+rate(paperCustomVisCaptcha))/pMulti/captchaEligible
	g := &genState{
		rng:   rng,
		multi: newQuota(pMulti, rng),
		pageCount: newMultiQuota([]float64{
			float64(pageCountWeights[2]) / float64(pcTotal),
			float64(pageCountWeights[3]) / float64(pcTotal),
			float64(pageCountWeights[4]) / float64(pcTotal),
			float64(pageCountWeights[5]) / float64(pcTotal),
		}, rng),
		ctFirst:     newQuota(rateOfMulti(paperClickThroughFirst), rng),
		ctInner:     newQuota(rateOfMulti(paperClickThroughInner), rng),
		doubleLogin: newQuota(rateOfMulti(paperDoubleLogin), rng),
		termination: newMultiQuota([]float64{
			rateOfMulti(paperTermRedirect),
			rateOfMulti(paperTermSuccess),
			rateOfMulti(paperTermCustomErr),
			rateOfMulti(paperTermHTTPErr),
			rateOfMulti(paperTermAwareness),
			rateOfMulti(paperTermFinalPage - paperTermSuccess - paperTermCustomErr - paperTermHTTPErr - paperTermAwareness),
			1 - rateOfMulti(paperTermRedirect) - rateOfMulti(paperTermFinalPage),
		}, rng),
		captchaType: newMultiQuota([]float64{
			captchaNone,
			rate(paperRecaptchaSites) / pMulti / captchaEligible,
			rate(paperHcaptchaSites) / pMulti / captchaEligible,
			rate(paperCustomTextCaptcha) / pMulti / captchaEligible,
			rate(paperCustomVisCaptcha) / pMulti / captchaEligible,
		}, rng),
		keylog1: newQuota(rate(paperKeyloggerListen), rng),
		keylog2: newQuota(float64(paperKeyloggerSend)/float64(paperKeyloggerListen), rng),
		keylog3: newQuota(float64(paperKeyloggerExfil)/float64(paperKeyloggerSend), rng),
		obfuscation: newMultiQuota([]float64{
			1 - paperOCRRate - paperVisualSubmitRate,
			paperOCRRate,
			paperVisualSubmitRate,
		}, rng),
		hasCode:    newQuota(rate(paperCodeFieldSites), rng),
		otpStyle:   newQuota(float64(paperOTPSites)/float64(paperCodeFieldSites), rng),
		cloneBrand: map[string]*quota{},
		sharedSLD:  newQuota(0.3, rng),
		noButton:   newQuota(0.08, rng),
		consent:    newQuota(0.15, rng),
		brandPick:  newBrandQuota(rng),
		brandList:  brands.All(),
		language:   newMultiQuota([]float64{0.85, 0.10, 0.05}, rng),
	}
	// Cloak quotas are created after every always-on quota, so enabling
	// cloaking appends to the rng stream instead of shifting it.
	if p.CloakRate > 0 {
		g.cloak = newQuota(p.CloakRate, rng)
		g.cloakDepth = newMultiQuota([]float64{0.60, 0.30, 0.10}, rng)
		g.cloakKind = newMultiQuota([]float64{0.30, 0.20, 0.15, 0.10, 0.15, 0.10}, rng)
	}
	return g
}

// newBrandQuota builds the Table 7-weighted brand selector.
func newBrandQuota(rng *rand.Rand) *multiQuota {
	all := brands.All()
	topTotal := 0
	for _, c := range paperBrandCounts {
		topTotal += c
	}
	restEach := (PaperFilteredSites - topTotal) / (len(all) - len(paperBrandCounts))
	targets := make([]float64, len(all))
	for i, b := range all {
		w, ok := paperBrandCounts[b.Name]
		if !ok {
			w = restEach
		}
		targets[i] = float64(w) / float64(PaperFilteredSites)
	}
	return newMultiQuota(targets, rng)
}

func (g *genState) cloneFor(brand string, n int) bool {
	q, ok := g.cloneBrand[brand]
	if !ok {
		nonClone := paperNonCloneDefault
		if r, found := paperNonCloneByBrand[brand]; found {
			nonClone = r
		}
		q = newQuota(1-nonClone, g.rng)
		g.cloneBrand[brand] = q
	}
	return q.draw(n)
}

// campaignSpec is the kit: everything shared by a campaign's sites.
type campaignSpec struct {
	id     string
	design design
	// Flow structure.
	pageCount   int
	multi       bool
	ctFirst     bool
	ctInner     bool
	captchaProv captcha.Provider
	captchaKind captcha.Kind
	hasCaptcha  bool
	termination string
	redirectTo  string
	doubleLogin bool
	hasCode     bool
	otpStyle    bool
	ocr         bool
	formless    bool
	consent     bool
	dataFields  [][]fieldspec.Type
	size        int
	sharedSLD   bool
	// cloakRules, when non-empty, gate every site in the campaign.
	cloakRules []site.CloakRule
	// pageSeed drives page construction so every site in the campaign gets
	// the identical kit pages (as real deployments do), which is what makes
	// perceptual-hash campaign clustering recover campaigns.
	pageSeed int64
}

// Generate builds a corpus of p.NumSites sites.
func Generate(p Params) *Corpus {
	g := newGenState(p)
	var specs []*campaignSpec
	total := 0
	// Cap campaign size relative to corpus scale so one giant kit cannot
	// dominate a small corpus's statistics; at paper scale the cap is far
	// above the distribution's maximum.
	maxSize := p.NumSites/25 + 3
	// A clone-heavy corpus (MinCampaignSize > 0) lifts the floor — and the
	// cap, when the floor exceeds it — while drawing from the same size
	// distribution, so the campaign mix stays seeded identically.
	if p.MinCampaignSize > maxSize {
		maxSize = p.MinCampaignSize
	}
	for i := 0; total < p.NumSites; i++ {
		size := campaignSize(g.rng)
		if size < p.MinCampaignSize {
			size = p.MinCampaignSize
		}
		if size > maxSize {
			size = maxSize
		}
		if total+size > p.NumSites {
			size = p.NumSites - total
		}
		specs = append(specs, drawCampaign(g, i, size))
		total += size
	}
	corpus := &Corpus{Campaigns: len(specs), Seed: p.Seed}
	siteIdx := 0
	for ci, spec := range specs {
		for si := 0; si < spec.size; si++ {
			corpus.Sites = append(corpus.Sites, buildSite(spec, ci, si, siteIdx))
			siteIdx++
		}
	}
	return corpus
}

// campaignSize samples the skewed kit-deployment size distribution
// (Section 4.6: most campaigns < 50 sites, a few > 500).
func campaignSize(rng *rand.Rand) int {
	switch u := rng.Float64(); {
	case u < 0.70:
		return 1 + rng.Intn(3)
	case u < 0.95:
		return 4 + rng.Intn(17)
	case u < 0.995:
		return 21 + rng.Intn(60)
	default:
		return 100 + rng.Intn(500)
	}
}

func drawCampaign(g *genState, idx, size int) *campaignSpec {
	rng := g.rng
	b := g.brandList[g.brandPick.draw(size)]
	spec := &campaignSpec{
		id:   fmt.Sprintf("camp-%05d", idx),
		size: size,
	}
	spec.design = design{
		brand:        b,
		buttonTxt:    buttonTexts[rng.Intn(len(buttonTexts))],
		headline:     headlines[rng.Intn(len(headlines))],
		awarenessOrg: fmt.Sprintf("%s Training Dept %d", strings.Fields(b.Name)[0], rng.Intn(900)+100),
	}
	spec.design.clone = g.cloneFor(b.Name, size)
	spec.design.lang = fieldspec.Langs()[g.language.draw(size)]

	// Obfuscation dimension: normal / OCR background labels / formless.
	switch g.obfuscation.draw(size) {
	case 1:
		spec.ocr = true
		spec.design.submitStyle = "button"
		spec.design.labelMode = "label"
	case 2:
		spec.formless = true
		spec.design.submitStyle = "formless"
		spec.design.labelMode = "label"
	default:
		spec.design.submitStyle = "button"
		if g.noButton.draw(size) {
			spec.design.submitStyle = "noButton"
		}
		switch rng.Intn(3) {
		case 0:
			spec.design.labelMode = "label"
		case 1:
			spec.design.labelMode = "placeholder"
		default:
			spec.design.labelMode = "attr"
		}
	}

	// Keylogging tiers (nested quotas).
	if g.keylog1.draw(size) {
		spec.design.keyloggerTier = 1
		if g.keylog2.draw(size) {
			spec.design.keyloggerTier = 2
			if g.keylog3.draw(size) {
				spec.design.keyloggerTier = 3
			}
		}
	}

	// Multi-page structure.
	spec.multi = g.multi.draw(size)
	if spec.multi {
		spec.pageCount = 2 + g.pageCount.draw(size)
		spec.ctFirst = g.ctFirst.draw(size)
		spec.ctInner = g.ctInner.draw(size)
		spec.doubleLogin = g.doubleLogin.draw(size)
		switch g.termination.draw(size) {
		case 0:
			spec.termination = site.TermRedirectLegit
			spec.redirectTo = drawRedirectDomain(rng, b)
		case 1:
			spec.termination = site.TermSuccess
		case 2:
			spec.termination = site.TermCustomError
		case 3:
			spec.termination = site.TermHTTPError
		case 4:
			spec.termination = site.TermAwareness
		case 5:
			spec.termination = "other-final"
		default:
			spec.termination = site.TermNone
		}
		// Kits deploy one verification gate, not two: CAPTCHAs are drawn
		// only among campaigns without a click-through first page. The
		// quota's denominator advances only on eligible campaigns, keeping
		// the overall CAPTCHA rate on target.
		captchaChoice := 0
		if !spec.ctFirst {
			captchaChoice = g.captchaType.draw(size)
		}
		switch captchaChoice {
		case 1:
			spec.hasCaptcha = true
			spec.captchaProv = captcha.ProviderRecaptcha
			spec.captchaKind = captcha.Visual2
		case 2:
			spec.hasCaptcha = true
			spec.captchaProv = captcha.ProviderHcaptcha
			spec.captchaKind = captcha.Visual2
		case 3:
			spec.hasCaptcha = true
			spec.captchaProv = captcha.ProviderCustom
			spec.captchaKind = captcha.TextKinds()[rng.Intn(6)]
		case 4:
			spec.hasCaptcha = true
			spec.captchaProv = captcha.ProviderCustom
			spec.captchaKind = captcha.Visual1
		}
	} else {
		spec.pageCount = 1
		spec.termination = site.TermNone
	}

	// Code / 2FA fields.
	spec.hasCode = g.hasCode.draw(size)
	if spec.hasCode {
		spec.otpStyle = g.otpStyle.draw(size)
	}

	spec.dataFields = planDataFields(rng, spec)
	spec.sharedSLD = g.sharedSLD.draw(size)
	spec.consent = g.consent.draw(size)
	// Cloaking: drawn only when enabled, so disabled corpora consume the
	// identical rng stream as before the dimension existed.
	if g.cloak != nil && g.cloak.draw(size) {
		spec.cloakRules = drawCloakRules(g, size)
	}
	spec.pageSeed = rng.Int63()
	return spec
}

func drawRedirectDomain(rng *rand.Rand, b brands.Brand) string {
	generic := []string{
		"google.com", "youtube.com", "example.com", "example.org",
		"example.net", "yahoo.com", "godaddy.com", "live.com",
	}
	if rng.Float64() < 0.62 {
		return b.LegitDomain
	}
	return generic[rng.Intn(len(generic))]
}

func loginFields(rng *rand.Rand) []fieldspec.Type {
	switch u := rng.Float64(); {
	case u < 0.70:
		return []fieldspec.Type{fieldspec.Email, fieldspec.Password}
	case u < 0.85:
		return []fieldspec.Type{fieldspec.UserID, fieldspec.Password}
	default:
		return []fieldspec.Type{fieldspec.Phone, fieldspec.Password}
	}
}

func personalFields(rng *rand.Rand) []fieldspec.Type {
	base := []fieldspec.Type{fieldspec.Name, fieldspec.Address, fieldspec.City}
	if rng.Intn(2) == 0 {
		base = append(base, fieldspec.State)
	}
	if rng.Intn(2) == 0 {
		base = append(base, fieldspec.Phone)
	}
	if rng.Intn(3) == 0 {
		base = append(base, fieldspec.Date)
	}
	return base
}

func socialFields(rng *rand.Rand) []fieldspec.Type {
	out := []fieldspec.Type{fieldspec.SSN}
	if rng.Intn(2) == 0 {
		out = append(out, fieldspec.License)
	}
	if rng.Intn(2) == 0 {
		out = append(out, fieldspec.Question, fieldspec.Answer)
	}
	if rng.Intn(3) == 0 {
		out = append(out, fieldspec.Date)
	}
	return out
}

func financialFields(rng *rand.Rand) []fieldspec.Type {
	out := []fieldspec.Type{fieldspec.Card, fieldspec.ExpDate, fieldspec.CVV}
	if rng.Intn(2) == 0 {
		out = append(out, fieldspec.Name)
	}
	return out
}

// planDataFields lays out the data-stealing stages: login information early,
// personal and financial data in later stages (the Figure 9 shape).
func planDataFields(rng *rand.Rand, spec *campaignSpec) [][]fieldspec.Type {
	extras := 0
	if spec.ctFirst {
		extras++
	}
	if spec.ctInner {
		extras++
	}
	if spec.hasCaptcha {
		extras++
	}
	needsTerminal := spec.termination == site.TermSuccess || spec.termination == site.TermCustomError ||
		spec.termination == site.TermAwareness || spec.termination == "other-final"
	if needsTerminal {
		extras++
	}
	n := spec.pageCount - extras
	if n < 1 {
		// Budget pressure: drop the optional inner click-through first,
		// then grow the flow rather than dropping the CAPTCHA or the
		// first-page click-through — those are the rare patterns whose
		// corpus rates must hold.
		if spec.ctInner {
			spec.ctInner = false
			extras--
		}
		n = spec.pageCount - extras
		if n < 1 {
			n = 1
			spec.pageCount = extras + 1
		}
	}
	var stages [][]fieldspec.Type
	loginless := rng.Float64() < 0.05 // the Figure 11 pattern
	for i := 0; i < n; i++ {
		switch {
		case i == 0 && !loginless:
			stages = append(stages, loginFields(rng))
		case i == 0 && loginless:
			stages = append(stages, personalFields(rng))
		case i == n-1 && spec.hasCode && n >= 2:
			stages = append(stages, []fieldspec.Type{fieldspec.Code})
		case i == 1 && n >= 3:
			if rng.Float64() < 0.12 {
				stages = append(stages, socialFields(rng))
			} else {
				stages = append(stages, personalFields(rng))
			}
		default:
			stages = append(stages, financialFields(rng))
		}
	}
	if spec.hasCode && len(stages) == 1 {
		stages[0] = append(stages[0], fieldspec.Code)
	}
	return stages
}

// buildSite instantiates one deployment of the campaign kit. Page
// construction is seeded per campaign, so every deployment serves the
// identical pages; only the hostname differs.
func buildSite(spec *campaignSpec, campIdx, siteInCamp, globalIdx int) *site.Site {
	rng := rand.New(rand.NewSource(spec.pageSeed))
	var host string
	word := strings.ToLower(strings.Fields(spec.design.brand.Name)[0])
	word = strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' {
			return r
		}
		return -1
	}, word)
	if word == "" {
		word = "secure"
	}
	if spec.sharedSLD {
		host = fmt.Sprintf("v%d.%s-c%d.test", siteInCamp, word, campIdx)
	} else {
		host = fmt.Sprintf("login.%s-%d-%d.test", word, campIdx, siteInCamp)
	}
	s := &site.Site{
		ID:         fmt.Sprintf("site-%06d", globalIdx),
		Host:       host,
		Brand:      spec.design.brand.Name,
		Category:   spec.design.brand.Category,
		CampaignID: spec.id,
		Images:     map[string][]byte{},
	}
	d := spec.design
	pb := newPageBuilder(&d, rng, s.Images)

	type slot struct{ kind string }
	var slots []slot
	if spec.ctFirst {
		slots = append(slots, slot{"ct"})
	}
	if spec.hasCaptcha {
		slots = append(slots, slot{"captcha"})
	}
	for i := range spec.dataFields {
		slots = append(slots, slot{fmt.Sprintf("data%d", i)})
		if spec.ctInner && i == 0 && len(spec.dataFields) > 1 {
			slots = append(slots, slot{"ct"})
		}
	}
	needsTerminalPage := spec.termination == site.TermSuccess ||
		spec.termination == site.TermCustomError ||
		spec.termination == site.TermAwareness || spec.termination == "other-final"
	if needsTerminalPage {
		slots = append(slots, slot{"terminal"})
	}
	paths := make([]string, len(slots))
	for i := range slots {
		if i == 0 {
			paths[i] = "/"
		} else {
			paths[i] = fmt.Sprintf("/s%d", i+1)
		}
	}

	truth := site.Truth{
		ClickThroughFirst: spec.ctFirst,
		ClickThroughInner: spec.ctInner,
		HasCaptcha:        spec.hasCaptcha,
		CaptchaKind:       spec.captchaKind,
		CaptchaProvider:   spec.captchaProv,
		KeyloggerTier:     spec.design.keyloggerTier,
		DoubleLogin:       spec.doubleLogin,
		Termination:       spec.termination,
		RedirectDomain:    spec.redirectTo,
		TwoFactor:         spec.hasCode && spec.otpStyle,
		Clones:            spec.design.clone,
		Language:          string(spec.design.lang),
	}
	if truth.Termination == "other-final" {
		truth.Termination = site.TermNone
	}
	if len(spec.cloakRules) > 0 {
		s.Cloak = &site.Cloak{Rules: spec.cloakRules, DecoyHTML: buildDecoyHTML(host)}
		truth.Cloaked = true
		for _, r := range spec.cloakRules {
			truth.CloakKinds = append(truth.CloakKinds, r.Kind)
		}
	}

	dataSeen := 0
	firstData := true
	for i, sl := range slots {
		next := ""
		if i+1 < len(slots) {
			next = paths[i+1]
		}
		pg := &site.Page{Path: paths[i]}
		switch {
		case sl.kind == "ct":
			pg.HTML = pb.buildClickThroughPage(next)
		case sl.kind == "captcha":
			pg.HTML, pg.Validate = pb.buildCaptchaPage(spec.captchaProv, spec.captchaKind, paths[i], next)
			if pg.Validate != nil {
				pg.Mode = site.NextRedirect
				pg.Next = next
			}
		case strings.HasPrefix(sl.kind, "data"):
			fields := spec.dataFields[dataSeen]
			specPage := dataPageSpec{
				fields:   fields,
				otpStyle: spec.otpStyle,
				ocr:      spec.ocr,
				clone:    spec.design.clone && firstData,
				consent:  spec.consent && firstData && !spec.ocr,
			}
			if specPage.clone && specPage.ocr {
				// A cloned capture with OCR labels is the Figure 3 page.
				truth.OCRObfuscated = true
			} else if specPage.ocr {
				truth.OCRObfuscated = true
			}
			if spec.formless {
				truth.NoStandardSubmit = true
			}
			var labels []string
			pg.HTML, labels = pb.buildDataPage(specPage, paths[i])
			pg.Fields = fields
			pg.FieldLabels = labels
			if specPage.consent {
				// Submission requires the checkbox to be ticked.
				if pg.Validate == nil {
					pg.Validate = map[string]string{}
				}
				pg.Validate["agree"] = site.ValidateAny
			}
			truth.FieldsPerPage = append(truth.FieldsPerPage, fields)
			switch {
			case next == "" && spec.termination == site.TermRedirectLegit && dataSeen == len(spec.dataFields)-1:
				pg.Mode = site.NextExternal
				pg.Next = "http://" + spec.redirectTo + "/"
			case next == "" && spec.termination == site.TermHTTPError && dataSeen == len(spec.dataFields)-1:
				pg.FailStatus = []int{404, 500, 503}[rng.Intn(3)]
			case next == "":
				pg.Mode = site.NextNone
			case rng.Intn(4) == 0:
				pg.Mode = site.NextInline
				pg.Next = next
			default:
				pg.Mode = site.NextRedirect
				pg.Next = next
			}
			if spec.doubleLogin && firstData && fields[0] != fieldspec.Card {
				retry := dataPageSpec{fields: fields, otpStyle: spec.otpStyle, withErr: true, ocr: spec.ocr, clone: specPage.clone}
				pg.DoubleLoginHTML, _ = pb.buildDataPage(retry, paths[i])
			}
			dataSeen++
			firstData = false
		case sl.kind == "terminal":
			pg.HTML = pb.buildTerminalPage(spec.termination)
		}
		s.Pages = append(s.Pages, pg)
	}
	truth.NumPages = len(s.Pages)
	truth.MultiPage = len(s.Pages) > 1
	s.Truth = truth
	return s
}
