package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestTornTailTruncationRecovery is the crash-recovery table test: a
// journal whose final record is cut off at EVERY possible byte offset —
// from losing the entire record down to losing its last byte — must open
// without error, recover every preceding record intact, and stay
// appendable. This is the exact shape a SIGKILL or power cut leaves
// behind.
func TestTornTailTruncationRecovery(t *testing.T) {
	master := t.TempDir()
	j := mustOpen(t, master, Options{Sync: SyncNone})
	logs := appendN(t, j, 4, 0)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	want := logs[:3]

	segs, err := listSegments(master)
	if err != nil || len(segs) != 1 {
		t.Fatalf("expected one segment, got %v (%v)", segs, err)
	}
	segName := segs[0]
	whole, err := os.ReadFile(filepath.Join(master, segName))
	if err != nil {
		t.Fatal(err)
	}
	// Find where the final record starts by decoding the first three.
	start := 0
	for i := 0; i < 3; i++ {
		_, n, err := decodeFrame(whole[start:])
		if err != nil {
			t.Fatalf("decoding record %d: %v", i, err)
		}
		start += n
	}

	manifestData, err := os.ReadFile(filepath.Join(master, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	ckptData, err := os.ReadFile(filepath.Join(master, checkpointName))
	if err != nil {
		t.Fatal(err)
	}

	for cut := start; cut < len(whole); cut++ {
		dir := t.TempDir()
		// Keep the (now overly optimistic) checkpoint in place: recovery
		// must notice it claims more than the data holds and discard it.
		if err := os.WriteFile(filepath.Join(dir, manifestName), manifestData, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, checkpointName), ckptData, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		j, err := Open(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("cut at byte %d: Open failed: %v", cut, err)
		}
		got, err := j.Sessions()
		if err != nil {
			t.Fatalf("cut at byte %d: Sessions: %v", cut, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut at byte %d: recovered %d sessions, want the 3 preceding the tear", cut, len(got))
		}
		if j.CompletedCount() != 3 {
			t.Fatalf("cut at byte %d: CompletedCount = %d, want 3", cut, j.CompletedCount())
		}
		// The journal must accept new appends right where it healed.
		appendN(t, j, 1, 3)
		if err := j.Close(); err != nil {
			t.Fatalf("cut at byte %d: Close: %v", cut, err)
		}
		j2 := mustOpen(t, dir, Options{})
		if j2.CompletedCount() != 4 {
			t.Fatalf("cut at byte %d: reopen lost the healed append", cut)
		}
		j2.Close()
	}
}
