package main

import (
	"fmt"
	"time"

	"repro/internal/fleet"
	"repro/internal/triage"
)

// cliFlags collects the parsed command-line values whose combinations can
// be incoherent. validateFlags rejects bad configurations immediately
// after flag parsing — before corpus generation and model training — so an
// operator typo fails in milliseconds, not minutes into a run.
type cliFlags struct {
	sites         int
	sample        int
	workers       int
	retries       int
	sessionBudget time.Duration
	fetchTimeout  time.Duration
	progress      time.Duration
	journalDir    string
	journalSync   string
	resume        bool
	compact       bool
	statusAddr    string
	out           string
	coordinator   bool
	worker        bool
	fleetAddr     string
	leaseSites    int
	leaseTTL      time.Duration

	triage            bool
	campaignThreshold float64
	triageTopK        int
	campaignMin       int

	cloakRate    float64
	cloakRetries int
}

// validateFlags returns the first configuration error, or nil. Kept free
// of flag.* and os.* so tests can table-drive it directly.
func validateFlags(f cliFlags) error {
	if f.sites <= 0 {
		return fmt.Errorf("-sites must be positive (got %d)", f.sites)
	}
	if f.sample < 0 {
		return fmt.Errorf("-sample must be >= 0 (got %d; 0 crawls the full feed)", f.sample)
	}
	if f.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d; 0 uses the default)", f.workers)
	}
	if f.retries < 0 {
		return fmt.Errorf("-retries must be >= 0 (got %d; 0 uses the farm default)", f.retries)
	}
	if f.sessionBudget < 0 {
		return fmt.Errorf("-session-budget must be >= 0 (got %v; 0 uses the crawler default)", f.sessionBudget)
	}
	if f.fetchTimeout < 0 {
		return fmt.Errorf("-fetch-timeout must be >= 0 (got %v; 0 uses the browser default)", f.fetchTimeout)
	}
	if f.progress < 0 {
		return fmt.Errorf("-progress must be >= 0 (got %v; 0 disables the periodic progress line)", f.progress)
	}
	switch f.journalSync {
	case "always", "group", "batch", "none":
	default:
		return fmt.Errorf("unknown -journal-sync %q (want always, group, batch, or none)", f.journalSync)
	}
	if f.resume && f.journalDir == "" {
		return fmt.Errorf("-resume requires -journal <dir>")
	}
	if f.compact && f.journalDir == "" {
		return fmt.Errorf("-compact requires -journal <dir>")
	}
	if f.statusAddr != "" && f.compact {
		return fmt.Errorf("-status-addr cannot be combined with -compact: compaction rewrites the journal after the crawl ends, when the status server no longer reports live progress; run the compaction pass separately")
	}
	if f.coordinator && f.worker {
		return fmt.Errorf("-coordinator and -worker are mutually exclusive: run each fleet process as exactly one role (the coordinator shards and merges, workers crawl)")
	}
	if f.worker && f.fleetAddr == "" {
		return fmt.Errorf("-worker requires -fleet-addr with the coordinator's address (e.g. -fleet-addr 127.0.0.1:8870)")
	}
	if f.coordinator && f.fleetAddr == "" {
		return fmt.Errorf("-coordinator requires -fleet-addr with an address to listen on (e.g. -fleet-addr 127.0.0.1:8870)")
	}
	if f.fleetAddr != "" && !f.coordinator && !f.worker {
		return fmt.Errorf("-fleet-addr does nothing without -coordinator or -worker: pick the role this process plays in the fleet")
	}
	if (f.coordinator || f.worker) && f.journalDir == "" {
		return fmt.Errorf("fleet mode requires -journal <dir>: every lease journals into a shard directory under it, and the coordinator merges from there")
	}
	if f.worker && f.resume {
		return fmt.Errorf("-resume is coordinator-side in fleet mode: restart the coordinator with -resume and it will hand workers leases that skip already-journaled URLs")
	}
	if (f.coordinator || f.worker) && f.compact {
		return fmt.Errorf("-compact cannot run in fleet mode: shard journals are merged, not compacted in place; compact them offline after the run if needed")
	}
	if f.worker && f.out != "" {
		return fmt.Errorf("-o in worker mode would export a single shard, not the run: pass -o to the coordinator, whose export is the merged fleet view")
	}
	if f.worker && f.statusAddr != "" {
		return fmt.Errorf("-status-addr in worker mode is not served: the coordinator's -status-addr shows fleet-wide progress including this worker's lease and stage percentiles")
	}
	if f.leaseSites < 0 {
		return fmt.Errorf("-lease-sites must be >= 0 (got %d; 0 uses the default %d)", f.leaseSites, fleet.DefaultLeaseSites)
	}
	if f.leaseTTL < 0 {
		return fmt.Errorf("-lease-ttl must be >= 0 (got %v; 0 uses the default %v)", f.leaseTTL, fleet.DefaultLeaseTTL)
	}
	if f.campaignThreshold < 0 || f.campaignThreshold > 1 {
		return fmt.Errorf("-campaign-threshold must be in [0,1] (got %g; it is a similarity, default %g)", f.campaignThreshold, triage.DefaultCampaignThreshold)
	}
	if f.triageTopK < 0 {
		return fmt.Errorf("-triage-topk must be >= 0 (got %d; 0 disables the lexical cut)", f.triageTopK)
	}
	if f.campaignMin < 0 {
		return fmt.Errorf("-campaign-min must be >= 0 (got %d; 0 keeps the paper's campaign-size distribution)", f.campaignMin)
	}
	if f.triage && f.compact {
		return fmt.Errorf("-triage cannot be combined with -compact: compaction drops superseded session records, but the triage plan record must stay paired with every session that was crawled under it; compact the journal offline after the run")
	}
	if !f.triage && f.triageTopK > 0 {
		return fmt.Errorf("-triage-topk does nothing without -triage: the lexical cut is the first stage of the triage funnel")
	}
	if !f.triage && f.campaignThreshold != triage.DefaultCampaignThreshold && f.campaignThreshold != 0 {
		return fmt.Errorf("-campaign-threshold does nothing without -triage: attribution runs only inside the triage funnel")
	}
	if f.cloakRate < 0 || f.cloakRate > 1 {
		return fmt.Errorf("-cloak-rate must be in [0,1] (got %g; it is the fraction of campaigns that cloak, 0 disables)", f.cloakRate)
	}
	if f.cloakRetries < 0 {
		return fmt.Errorf("-cloak-retries must be >= 0 (got %d; 0 crawls honestly with no uncloaking re-crawls)", f.cloakRetries)
	}
	if f.cloakRetries > 0 && f.cloakRate == 0 {
		return fmt.Errorf("-cloak-retries does nothing without -cloak-rate: with no cloaked campaigns in the corpus there is nothing to uncloak")
	}
	return nil
}
