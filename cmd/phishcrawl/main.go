// Command phishcrawl runs the full measurement pipeline: generate the
// corpus, serve it, train the crawler's models, and crawl every site with
// the farm, printing per-outcome statistics, per-stage timings, and
// throughput. The -cpuprofile/-memprofile flags capture pprof profiles of
// the run for performance work.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sessionio"
)

func main() {
	numSites := flag.Int("sites", 1000, "corpus size")
	seed := flag.Int64("seed", 42, "seed")
	workers := flag.Int("workers", 30, "parallel crawl sessions (paper: 30)")
	sample := flag.Int("sample", 0, "crawl only the first N sites (0 = all)")
	out := flag.String("o", "", "write session logs as JSON Lines to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the crawl to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	fmt.Printf("Building pipeline (%d sites, seed %d)...\n", *numSites, *seed)
	p, err := core.NewPipeline(core.Options{NumSites: *numSites, Seed: *seed, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Corpus: %d sites in %d campaigns. Crawling with %d workers...\n",
		len(p.Corpus.Sites), p.Corpus.Campaigns, *workers)
	if *sample > 0 {
		p.CrawlSample(*sample)
	} else {
		p.Crawl()
	}

	fmt.Printf("\nCrawled %d sites in %s (%.0f sites/day extrapolated; paper: >1,000/day)\n",
		p.Stats.Sites, p.Stats.Elapsed.Round(1e6), p.Stats.SitesPerDay())
	var outcomes []string
	for o := range p.Stats.Outcomes {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		fmt.Printf("  %-12s %d\n", o, p.Stats.Outcomes[o])
	}

	pages, fields := 0, 0
	for _, l := range p.Logs {
		pages += len(l.Pages)
		for _, pg := range l.Pages {
			fields += len(pg.Fields)
		}
	}
	fmt.Printf("Pages visited: %d; input fields identified and filled: %d\n", pages, fields)

	if len(p.Stats.Stages) > 0 {
		fmt.Printf("\nPer-stage timing (aggregated across workers):\n%s", metrics.StageTable(p.Stats.Stages))
	}

	if *out != "" {
		if err := sessionio.WriteFile(*out, p.Logs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("session logs written to %s\n", *out)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}
}
