package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestStatusSmoke is the live-progress smoke run wired into `make
// status-smoke` (and `make chaos`): start a short crawl with -status-addr,
// hit the endpoint while the run is in flight, and require well-formed
// JSON with the documented fields plus a readable plain-text view.
func TestStatusSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "phishcrawl")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building phishcrawl: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-sites", "200", "-workers", "8", "-detector-train", "100", "-seed", "7",
		"-status-addr", "127.0.0.1:0", "-progress", "50ms")
	cmd.Stderr = io.Discard // the -progress lines; the test reads the endpoint
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Scrape the resolved listen address from the serving banner, draining
	// the rest of stdout in the background so the process never blocks on a
	// full pipe.
	const banner = "Status: serving live progress on http://"
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), banner); ok {
				addrCh <- strings.TrimSuffix(rest, "/status")
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("status banner never appeared on stdout")
	}

	// Poll the JSON endpoint while the crawl runs, keeping the most
	// advanced snapshot; the process serves from before model training
	// through the end of the crawl, so some poll lands mid-flight.
	getJSON := func() (statusView, error) {
		var v statusView
		resp, err := http.Get(base + "/status?format=json")
		if err != nil {
			return v, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return v, fmt.Errorf("status %s", resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			return v, fmt.Errorf("Content-Type = %q, want application/json", ct)
		}
		return v, json.NewDecoder(resp.Body).Decode(&v)
	}

	var last statusView
	var text string
	polls := 0
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		v, err := getJSON()
		if err != nil {
			// The process exits (closing the server) when the crawl ends;
			// everything we need must have been observed by then.
			break
		}
		polls++
		if v.Done >= last.Done {
			last = v
		}
		if text == "" && len(v.Stages) > 0 {
			// Grab the plain-text twin while the server is certainly alive.
			if resp, err := http.Get(base + "/status"); err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				text = string(body)
			}
		}
		if v.Total > 0 && v.Done == v.Total {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if polls == 0 {
		t.Fatal("never got a successful JSON response from /status")
	}
	if last.Total != 200 {
		t.Errorf("total = %d, want 200", last.Total)
	}
	if last.Done == 0 {
		t.Error("no completed sessions ever reported")
	}
	if last.ElapsedMs <= 0 {
		t.Errorf("elapsedMs = %d, want > 0", last.ElapsedMs)
	}
	if len(last.Stages) == 0 {
		t.Fatalf("no stage percentiles in snapshot: %+v", last)
	}
	seen := map[string]bool{}
	for _, s := range last.Stages {
		seen[s.Stage] = true
		if s.Count <= 0 {
			t.Errorf("stage %s has count %d", s.Stage, s.Count)
		}
		if s.P50Ms <= 0 || s.P90Ms < s.P50Ms || s.P99Ms < s.P90Ms {
			t.Errorf("stage %s percentiles not monotone: p50=%d p90=%d p99=%d",
				s.Stage, s.P50Ms, s.P90Ms, s.P99Ms)
		}
	}
	if !seen["render"] {
		t.Errorf("render stage missing from %+v", last.Stages)
	}

	// The plain-text view is the human-facing twin of the same snapshot.
	if text == "" {
		t.Fatal("never captured the plain-text status view")
	}
	if !strings.Contains(text, "progress:") {
		t.Errorf("text view missing progress line:\n%s", text)
	}
	if !strings.Contains(text, "P50") || !strings.Contains(text, "P99") {
		t.Errorf("text view missing percentile table:\n%s", text)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("phishcrawl exited with %v", err)
	}
}
