package captcha

import (
	"math/rand"
	"testing"

	"repro/internal/raster"
)

func TestAllKindsRender(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range AllKinds() {
		img, text := Render(k, rng)
		if img == nil || img.W < 20 || img.H < 10 {
			t.Errorf("%s rendered degenerate image", k)
		}
		if k.IsText() && text == "" {
			t.Errorf("%s should return challenge text", k)
		}
		if k.IsVisual() && text != "" {
			t.Errorf("%s should not return challenge text, got %q", k, text)
		}
		// Every CAPTCHA must contain non-background pixels.
		h := img.Histogram()
		nonWhite := 0
		for c, n := range h {
			if raster.Color(c) != raster.White {
				nonWhite += n
			}
		}
		if nonWhite == 0 {
			t.Errorf("%s rendered an all-white image", k)
		}
	}
}

func TestKindStringNames(t *testing.T) {
	if Text1.String() != "text-type1" || Text6.String() != "text-type6" {
		t.Errorf("text names: %s %s", Text1, Text6)
	}
	if Visual1.String() != "visual-type1" || Visual2.String() != "visual-type2" {
		t.Errorf("visual names: %s %s", Visual1, Visual2)
	}
}

func TestKindPartition(t *testing.T) {
	if len(TextKinds()) != 6 || len(VisualKinds()) != 2 || len(AllKinds()) != 8 {
		t.Error("kind partition sizes wrong")
	}
	for _, k := range TextKinds() {
		if !k.IsText() || k.IsVisual() {
			t.Errorf("%s misclassified", k)
		}
	}
	for _, k := range VisualKinds() {
		if !k.IsVisual() || k.IsText() {
			t.Errorf("%s misclassified", k)
		}
	}
}

func TestChallengeCharset(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		c := Challenge(rng, 6)
		if len(c) != 6 {
			t.Fatalf("challenge length %d", len(c))
		}
		for _, r := range c {
			// Excludes easily-confused characters 0, O, 1, I.
			if r == '0' || r == 'O' || r == '1' || r == 'I' {
				t.Errorf("confusing character %q in challenge", r)
			}
		}
	}
}

func TestInstancesVary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, _ := Render(Text1, rng)
	b, _ := Render(Text1, rng)
	if a.W == b.W && a.H == b.H {
		same := true
		for i := range a.Pix {
			if a.Pix[i] != b.Pix[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("two instances are pixel-identical")
		}
	}
}

func TestVisual2HasCheckboxStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	img, _ := Render(Visual2, rng)
	// A white region (the checkbox) must exist in the left third.
	found := false
	for y := 0; y < img.H && !found; y++ {
		for x := 0; x < img.W/3; x++ {
			if img.At(x, y) == raster.White {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("visual-type2 lacks a checkbox region")
	}
}

func TestProviderScriptDetection(t *testing.T) {
	if DetectProvider(ScriptURL(ProviderRecaptcha)) != ProviderRecaptcha {
		t.Error("recaptcha script not detected")
	}
	if DetectProvider(ScriptURL(ProviderHcaptcha)) != ProviderHcaptcha {
		t.Error("hcaptcha script not detected")
	}
	if DetectProvider("https://cdn.example.com/jquery.js") != ProviderNone {
		t.Error("unrelated script misdetected")
	}
	if ScriptURL(ProviderCustom) != "" || ScriptURL(ProviderNone) != "" {
		t.Error("custom/none providers must have no script URL")
	}
}
