package dom

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
)

// shapeTags are the element tags retained by the lightweight DOM hash. Per
// Section 4.4 of the paper, input, div, span, button, and label elements are
// "often sufficient to shape the structure of a phishing page". We also keep
// select and form, which the crawler treats as input-bearing structure.
var shapeTags = map[string]bool{
	"input":  true,
	"div":    true,
	"span":   true,
	"button": true,
	"label":  true,
	"select": true,
	"form":   true,
}

// StructureHash computes the lightweight DOM hash used for page-transition
// detection: traverse the tree depth-first, keep only the shape tags,
// concatenate their tag names in order, and hash the result. Two renderings
// of the same page produce the same hash; a page whose content JavaScript
// swapped out produces a different one even when the URL is unchanged.
func StructureHash(root *Node) string {
	var b strings.Builder
	root.Walk(func(n *Node) bool {
		if n.Type == ElementNode && shapeTags[n.Tag] {
			b.WriteString(n.Tag)
			b.WriteByte('|')
		}
		return true
	})
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// StructureString returns the pre-hash concatenation, useful in tests and
// debugging to see exactly which elements shaped the hash.
func StructureString(root *Node) string {
	var b strings.Builder
	root.Walk(func(n *Node) bool {
		if n.Type == ElementNode && shapeTags[n.Tag] {
			b.WriteString(n.Tag)
			b.WriteByte('|')
		}
		return true
	})
	return b.String()
}

// ShapeTagCount returns the number of shape-contributing elements, a cheap
// structural size signal used by analysis code.
func ShapeTagCount(root *Node) int {
	count := 0
	root.Walk(func(n *Node) bool {
		if n.Type == ElementNode && shapeTags[n.Tag] {
			count++
		}
		return true
	})
	return count
}
