// Package metrics implements the evaluation measures reported in the paper:
// per-class precision, recall and F1 for the input-field classifier
// (Table 6), accuracy for the terminal-page classifier (Section 5.2.3), and
// average precision for the CAPTCHA/button/logo object detector (Table 5).
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Confusion is a multiclass confusion matrix keyed by label strings.
type Confusion struct {
	labels []string
	index  map[string]int
	// counts[i][j] is the number of samples with true label i predicted as j.
	counts [][]int
}

// NewConfusion returns a confusion matrix over the given label set. Labels
// encountered later via Add are appended automatically.
func NewConfusion(labels ...string) *Confusion {
	c := &Confusion{index: make(map[string]int)}
	for _, l := range labels {
		c.ensure(l)
	}
	return c
}

func (c *Confusion) ensure(label string) int {
	if i, ok := c.index[label]; ok {
		return i
	}
	i := len(c.labels)
	c.labels = append(c.labels, label)
	c.index[label] = i
	for r := range c.counts {
		c.counts[r] = append(c.counts[r], 0)
	}
	c.counts = append(c.counts, make([]int, len(c.labels)))
	return i
}

// Add records one (true, predicted) observation.
func (c *Confusion) Add(truth, pred string) {
	ti := c.ensure(truth)
	pi := c.ensure(pred)
	c.counts[ti][pi]++
}

// Labels returns the label set in insertion order.
func (c *Confusion) Labels() []string { return append([]string(nil), c.labels...) }

// Total returns the number of recorded observations.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Support returns the number of observations whose true label is label.
func (c *Confusion) Support(label string) int {
	i, ok := c.index[label]
	if !ok {
		return 0
	}
	n := 0
	for _, v := range c.counts[i] {
		n += v
	}
	return n
}

// Accuracy returns the fraction of observations predicted correctly.
func (c *Confusion) Accuracy() float64 {
	total, correct := 0, 0
	for i, row := range c.counts {
		for j, v := range row {
			total += v
			if i == j {
				correct += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PRF holds precision, recall, and F1 for one class.
type PRF struct {
	Label     string
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// PerClass returns precision/recall/F1 for every label with nonzero support
// or predictions, sorted by label.
func (c *Confusion) PerClass() []PRF {
	var out []PRF
	for li, label := range c.labels {
		tp := c.counts[li][li]
		fn := 0
		for j, v := range c.counts[li] {
			if j != li {
				fn += v
			}
		}
		fp := 0
		for i := range c.counts {
			if i != li {
				fp += c.counts[i][li]
			}
		}
		if tp+fn+fp == 0 {
			continue
		}
		p := safeDiv(tp, tp+fp)
		r := safeDiv(tp, tp+fn)
		f1 := 0.0
		if p+r > 0 {
			f1 = 2 * p * r / (p + r)
		}
		out = append(out, PRF{Label: label, Precision: p, Recall: r, F1: f1, Support: tp + fn})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// MacroF1 returns the unweighted mean F1 across classes with support, the
// "average of all F1-score values" the paper reports (90% in Table 6).
func (c *Confusion) MacroF1() float64 {
	rows := c.PerClass()
	sum, n := 0.0, 0
	for _, r := range rows {
		if r.Support > 0 {
			sum += r.F1
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Table formats the per-class results like Table 6.
func (c *Confusion) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %7s %8s %6s\n", "Category", "Precision", "Recall", "F1-Score", "Count")
	for _, r := range c.PerClass() {
		if r.Support == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %9.2f %7.2f %8.2f %6d\n", r.Label, r.Precision, r.Recall, r.F1, r.Support)
	}
	fmt.Fprintf(&b, "%-12s %9s %7s %8.2f %6d\n", "Overall", "", "", c.MacroF1(), c.Total())
	return b.String()
}

// Detection is one scored detector output used for average precision.
type Detection struct {
	Score float64
	// TruePositive marks whether this detection matched a ground-truth box
	// (IoU above threshold and not previously matched).
	TruePositive bool
}

// AveragePrecision computes AP over ranked detections given the number of
// ground-truth positives, using the standard all-points interpolation.
func AveragePrecision(dets []Detection, numPositives int) float64 {
	if numPositives == 0 {
		return 0
	}
	sorted := append([]Detection(nil), dets...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	var precisions, recalls []float64
	tp, fp := 0, 0
	for _, d := range sorted {
		if d.TruePositive {
			tp++
		} else {
			fp++
		}
		precisions = append(precisions, float64(tp)/float64(tp+fp))
		recalls = append(recalls, float64(tp)/float64(numPositives))
	}
	// Interpolate: precision at recall r is the max precision at recall>=r.
	for i := len(precisions) - 2; i >= 0; i-- {
		if precisions[i+1] > precisions[i] {
			precisions[i] = precisions[i+1]
		}
	}
	ap := 0.0
	prevRecall := 0.0
	for i := range precisions {
		ap += (recalls[i] - prevRecall) * precisions[i]
		prevRecall = recalls[i]
	}
	return ap
}

// PrecisionRecall computes detection-level precision and recall given true
// positive, false positive, and false negative counts.
func PrecisionRecall(tp, fp, fn int) (precision, recall float64) {
	return safeDiv(tp, tp+fp), safeDiv(tp, tp+fn)
}

// Histogram is an ordered counter used by the figure benches.
type Histogram struct {
	keys   []string
	counts map[string]int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[string]int)}
}

// Add increments key by n.
func (h *Histogram) Add(key string, n int) {
	if _, ok := h.counts[key]; !ok {
		h.keys = append(h.keys, key)
	}
	h.counts[key] += n
}

// Get returns the count for key.
func (h *Histogram) Get(key string) int { return h.counts[key] }

// Keys returns keys in first-seen order.
func (h *Histogram) Keys() []string { return append([]string(nil), h.keys...) }

// SortedByCount returns (key, count) pairs in descending count order.
func (h *Histogram) SortedByCount() []struct {
	Key   string
	Count int
} {
	out := make([]struct {
		Key   string
		Count int
	}, 0, len(h.keys))
	for _, k := range h.keys {
		out = append(out, struct {
			Key   string
			Count int
		}{k, h.counts[k]})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// Total returns the sum of all counts.
func (h *Histogram) Total() int {
	n := 0
	for _, v := range h.counts {
		n += v
	}
	return n
}
