package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/crawler"
)

// triageCluster aggregates one triage campaign's sessions.
type triageCluster struct {
	key        string
	size       int
	attributed int
	brand      string
	firstIdx   int
}

// TriageTable renders the triage funnel and the campaign clusters the
// near-duplicate index discovered: how many sessions were cut at the
// lexical stage, fast-pathed as campaign clones, or fully crawled, and the
// cluster-size distribution that explains the saving. Returns "" when the
// logs carry no triage verdicts (triage was off), so callers can print it
// unconditionally.
func TriageTable(logs []*crawler.SessionLog) string {
	var cut, attributed, full int
	byCamp := map[string]*triageCluster{}
	seen := false
	for _, lg := range logs {
		if lg.TriageScore > 0 || lg.TriageCampaign != "" ||
			lg.Outcome == crawler.OutcomeAttributed || lg.Outcome == crawler.OutcomeTriagedOut {
			seen = true
		}
		switch lg.Outcome {
		case crawler.OutcomeTriagedOut:
			cut++
			continue
		case crawler.OutcomeAttributed:
			attributed++
		default:
			full++
		}
		if lg.TriageCampaign == "" {
			continue
		}
		c := byCamp[lg.TriageCampaign]
		if c == nil {
			c = &triageCluster{key: lg.TriageCampaign, firstIdx: lg.FeedIndex, brand: lg.Brand}
			byCamp[lg.TriageCampaign] = c
		}
		c.size++
		if lg.Outcome == crawler.OutcomeAttributed {
			c.attributed++
		}
		// The founder (lowest feed index) names the cluster's brand: it is
		// the one session that ran a full crawl and carries feed metadata.
		if lg.FeedIndex < c.firstIdx || (c.brand == "" && lg.Brand != "") {
			if lg.FeedIndex < c.firstIdx {
				c.firstIdx = lg.FeedIndex
			}
			if lg.Brand != "" {
				c.brand = lg.Brand
			}
		}
	}
	if !seen {
		return ""
	}

	var b strings.Builder
	b.WriteString("Triage funnel: pre-session URL scoring and campaign attribution\n")
	total := cut + attributed + full
	pct := func(n int) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(total)
	}
	fmt.Fprintf(&b, "%-32s %8d\n", "Feed URLs", total)
	fmt.Fprintf(&b, "%-32s %8d %7.1f%%\n", "Cut at lexical stage", cut, pct(cut))
	fmt.Fprintf(&b, "%-32s %8d %7.1f%%\n", "Attributed to campaign (fast)", attributed, pct(attributed))
	fmt.Fprintf(&b, "%-32s %8d %7.1f%%\n", "Full browser sessions", full, pct(full))
	if full > 0 {
		fmt.Fprintf(&b, "%-32s %8.1fx\n", "Session reduction", float64(total)/float64(full))
	}

	clusters := make([]*triageCluster, 0, len(byCamp))
	for _, c := range byCamp {
		clusters = append(clusters, c)
	}
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].size != clusters[j].size {
			return clusters[i].size > clusters[j].size
		}
		return clusters[i].key < clusters[j].key
	})
	fmt.Fprintf(&b, "Campaign clusters: %d (paper: 8,472 campaigns over 51,859 sites)\n", len(clusters))
	fmt.Fprintf(&b, "%-10s %6s %10s  %s\n", "Campaign", "Sites", "Attributed", "Brand")
	for i, c := range clusters {
		if i >= 15 {
			fmt.Fprintf(&b, "  ... and %d more clusters\n", len(clusters)-i)
			break
		}
		fmt.Fprintf(&b, "%-10s %6d %10d  %s\n", c.key, c.size, c.attributed, c.brand)
	}
	return b.String()
}
