package analysis_test

// Hand-built-log unit tests for each analysis, complementing the
// integration tests that run the full pipeline.

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/browser"
	"repro/internal/crawler"
	"repro/internal/fieldspec"
	"repro/internal/script"
)

func page(idx int, url string, types ...fieldspec.Type) crawler.PageLog {
	p := crawler.PageLog{Index: idx, URL: url, Status: 200}
	for _, t := range types {
		p.Fields = append(p.Fields, crawler.FieldLog{Label: t, Value: "v-" + string(t)})
	}
	return p
}

func sessionOf(seed string, pages ...crawler.PageLog) *crawler.SessionLog {
	return &crawler.SessionLog{SeedURL: seed, Pages: pages, SiteID: seed, CampaignID: "c-" + seed}
}

func TestIsMultiPageUnit(t *testing.T) {
	single := sessionOf("http://a.test/", page(0, "http://a.test/", fieldspec.Email))
	if analysis.IsMultiPage(single) {
		t.Error("single page flagged multi")
	}
	multi := sessionOf("http://a.test/",
		page(0, "http://a.test/", fieldspec.Email),
		page(1, "http://a.test/s2", fieldspec.Card))
	if !analysis.IsMultiPage(multi) {
		t.Error("two-page flow not flagged multi")
	}
	// A redirect off-site does not make a site multi-page.
	redirected := sessionOf("http://a.test/",
		page(0, "http://a.test/", fieldspec.Email),
		page(1, "http://google.com/"))
	if analysis.IsMultiPage(redirected) {
		t.Error("off-site page counted as site page")
	}
}

func TestDoubleLoginUnit(t *testing.T) {
	dl := sessionOf("http://a.test/",
		page(0, "http://a.test/", fieldspec.Email, fieldspec.Password),
		page(1, "http://a.test/retry", fieldspec.Email, fieldspec.Password),
		page(2, "http://a.test/s3", fieldspec.Card))
	if got := analysis.DoubleLoginCount([]*crawler.SessionLog{dl}); got != 1 {
		t.Errorf("double login = %d, want 1", got)
	}
	// Different login sets are not double logins.
	notDL := sessionOf("http://b.test/",
		page(0, "http://b.test/", fieldspec.Email, fieldspec.Password),
		page(1, "http://b.test/s2", fieldspec.UserID, fieldspec.Password))
	if got := analysis.DoubleLoginCount([]*crawler.SessionLog{notDL}); got != 0 {
		t.Errorf("mismatched login sets counted: %d", got)
	}
	// A single login field repeated (< 2 login types) does not count.
	weak := sessionOf("http://c.test/",
		page(0, "http://c.test/", fieldspec.Email),
		page(1, "http://c.test/s2", fieldspec.Email))
	if got := analysis.DoubleLoginCount([]*crawler.SessionLog{weak}); got != 0 {
		t.Errorf("single-field repetition counted: %d", got)
	}
}

func TestClickThroughUnit(t *testing.T) {
	first := sessionOf("http://a.test/",
		page(0, "http://a.test/"),
		page(1, "http://a.test/s2", fieldspec.Email))
	inner := sessionOf("http://b.test/",
		page(0, "http://b.test/", fieldspec.Email),
		page(1, "http://b.test/s2"),
		page(2, "http://b.test/s3", fieldspec.Card))
	terminalOnly := sessionOf("http://c.test/",
		page(0, "http://c.test/", fieldspec.Email),
		page(1, "http://c.test/done")) // no-input page NOT followed by inputs
	ct := analysis.ClickThrough([]*crawler.SessionLog{first, inner, terminalOnly})
	if ct.Total != 2 || ct.FirstPage != 1 || ct.Internal != 1 {
		t.Errorf("click-through = %+v", ct)
	}
}

func TestKeyloggingUnit(t *testing.T) {
	mk := func(action string, carried []string) *crawler.SessionLog {
		p := page(0, "http://k.test/", fieldspec.Email)
		p.Fields[0].Value = "typed@x.yz"
		p.Listeners = []script.Listener{{Target: "input", Event: "keydown", Action: action}}
		s := sessionOf("http://k.test/", p)
		if carried != nil {
			s.NetLog = []browser.NetRequest{{Method: "POST", URL: "http://k.test/k", Kind: "beacon", CarriedData: carried}}
		}
		return s
	}
	logs := []*crawler.SessionLog{
		mk("store", nil),                        // tier 1
		mk("send", []string{}),                  // tier 2
		mk("send-data", []string{"typed@x.yz"}), // tier 3
		sessionOf("http://n.test/", page(0, "http://n.test/", fieldspec.Email)), // none
	}
	k := analysis.Keylogging(logs)
	if k.Monitoring != 3 || k.ImmediateRequest != 2 || k.DataExfiltrated != 1 {
		t.Errorf("keylogging = %+v", k)
	}
}

func TestTerminationUnit(t *testing.T) {
	clf := fixedClassifier{}
	// Termination is measured over multi-page sites only: the redirect
	// session needs >= 2 on-site pages before leaving.
	redirect := sessionOf("http://r.test/",
		page(0, "http://r.test/", fieldspec.Email),
		page(1, "http://r.test/s2", fieldspec.Card),
		page(2, "http://netflix.com/"))
	finalSuccess := sessionOf("http://s.test/",
		page(0, "http://s.test/", fieldspec.Email),
		crawler.PageLog{Index: 1, URL: "http://s.test/done", Status: 200, Text: "congratulations"})
	httpErr := sessionOf("http://h.test/",
		page(0, "http://h.test/", fieldspec.Email),
		crawler.PageLog{Index: 1, URL: "http://h.test/", Status: 500, Text: "internal error"})
	stillInputs := sessionOf("http://i.test/",
		page(0, "http://i.test/", fieldspec.Email),
		page(1, "http://i.test/s2", fieldspec.Card)) // ends with inputs: no termination
	tc := analysis.Termination([]*crawler.SessionLog{redirect, finalSuccess, httpErr, stillInputs}, clf)
	if tc.RedirectSites != 1 {
		t.Errorf("redirects = %d", tc.RedirectSites)
	}
	if tc.RedirectDomains.Get("netflix.com") != 1 {
		t.Error("redirect domain missing")
	}
	if tc.FinalNoInputSites != 2 {
		t.Errorf("final pages = %d", tc.FinalNoInputSites)
	}
	if tc.ByCategory.Get("success") != 1 || tc.ByCategory.Get("http-error") != 1 {
		t.Errorf("categories = %v", tc.ByCategory.SortedByCount())
	}
}

type fixedClassifier struct{}

func (fixedClassifier) Classify(text string) (string, float64) {
	if text == "congratulations" {
		return "success", 0.99
	}
	return "other", 0.2
}

func TestTwoFactorUnit(t *testing.T) {
	otp := sessionOf("http://o.test/", crawler.PageLog{
		Index: 0, URL: "http://o.test/",
		Fields: []crawler.FieldLog{{
			Label:       fieldspec.Code,
			Description: "an otp has been sent to the registered mobile number via sms",
		}},
	})
	genericCode := sessionOf("http://g.test/", crawler.PageLog{
		Index: 0, URL: "http://g.test/",
		Fields: []crawler.FieldLog{{Label: fieldspec.Code, Description: "enter your access code"}},
	})
	tf := analysis.TwoFactor([]*crawler.SessionLog{otp, genericCode})
	if tf.CodeFieldSites != 2 || tf.OTPSites != 1 {
		t.Errorf("two factor = %+v", tf)
	}
}

func TestFieldsAcrossPagesDeduplicatesPerPage(t *testing.T) {
	// Two email fields on one page count once for that page.
	s := sessionOf("http://d.test/", crawler.PageLog{
		Index: 0, URL: "http://d.test/",
		Fields: []crawler.FieldLog{
			{Label: fieldspec.Email}, {Label: fieldspec.Email}, {Label: fieldspec.Unknown},
		},
	})
	d := analysis.FieldsAcrossPages([]*crawler.SessionLog{s})
	if d.PerType.Get(string(fieldspec.Email)) != 1 {
		t.Errorf("email pages = %d, want 1", d.PerType.Get(string(fieldspec.Email)))
	}
	if d.PerType.Get(string(fieldspec.Unknown)) != 0 {
		t.Error("unknown fields must not be counted")
	}
}

func TestPageCountHistogramUnit(t *testing.T) {
	logs := []*crawler.SessionLog{
		sessionOf("http://a.test/", page(0, "http://a.test/")),
		sessionOf("http://b.test/", page(0, "http://b.test/"), page(1, "http://b.test/2")),
		sessionOf("http://c.test/", page(0, "http://c.test/"), page(1, "http://c.test/2"), page(2, "http://c.test/3")),
	}
	h := analysis.PageCountHistogram(logs)
	if h[2] != 1 || h[3] != 1 || h[1] != 0 {
		t.Errorf("histogram = %v", h)
	}
}

func TestObfuscationUnit(t *testing.T) {
	ocrPage := crawler.PageLog{Index: 0, URL: "http://a.test/", UsedOCR: true,
		Fields: []crawler.FieldLog{{Label: fieldspec.Card, UsedOCR: true}}}
	visualPage := crawler.PageLog{Index: 0, URL: "http://b.test/", SubmitMethod: crawler.SubmitVisual,
		Fields: []crawler.FieldLog{{Label: fieldspec.Email}}}
	plain := page(0, "http://c.test/", fieldspec.Email)
	logs := []*crawler.SessionLog{
		sessionOf("http://a.test/", ocrPage),
		sessionOf("http://b.test/", visualPage),
		sessionOf("http://c.test/", plain),
	}
	r := analysis.Obfuscation(logs)
	if r.OCRRate < 0.32 || r.OCRRate > 0.34 {
		t.Errorf("OCR rate = %f", r.OCRRate)
	}
	if r.VisualSubmitRate < 0.32 || r.VisualSubmitRate > 0.34 {
		t.Errorf("visual rate = %f", r.VisualSubmitRate)
	}
	if got := analysis.Obfuscation(nil); got.OCRRate != 0 {
		t.Error("empty logs should yield zero rates")
	}
}

func TestESLDPublicSuffixes(t *testing.T) {
	cases := map[string]string{
		"http://login.barclays.co.uk/x": "barclays.co.uk",
		"http://a.b.bank.com.au/":       "bank.com.au",
		"phish.co.uk":                   "phish.co.uk", // bare 2-label host
		"http://deep.sub.example.com/":  "example.com",
	}
	for in, want := range cases {
		if got := analysis.ESLD(in); got != want {
			t.Errorf("analysis.ESLD(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSubmitMethodBreakdownUnit(t *testing.T) {
	enter := page(0, "http://a.test/", fieldspec.Email)
	enter.SubmitMethod = crawler.SubmitEnter
	visual := page(0, "http://b.test/", fieldspec.Email)
	visual.SubmitMethod = crawler.SubmitVisual
	ct := page(0, "http://c.test/") // click-through only: no data submission
	ct.SubmitMethod = crawler.SubmitClickThru
	logs := []*crawler.SessionLog{
		sessionOf("http://a.test/", enter),
		sessionOf("http://b.test/", visual),
		sessionOf("http://c.test/", ct),
	}
	h := analysis.SubmitMethodBreakdown(logs)
	if h.Get(crawler.SubmitEnter) != 1 || h.Get(crawler.SubmitVisual) != 1 {
		t.Errorf("breakdown = %v", h.SortedByCount())
	}
	if h.Get(crawler.SubmitClickThru) != 0 {
		t.Error("input-less pages must not count as data submissions")
	}
}
