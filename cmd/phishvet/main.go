// Command phishvet runs the project's determinism-and-durability linter
// over package patterns, printing compiler-style diagnostics and gating CI
// through its exit code:
//
//	phishvet ./...                            # whole tree (make lint does this)
//	phishvet -rules maporder,wallclock ./...  # a subset of rules
//	phishvet ./internal/phishvet/testdata/src/maporder/...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load failure
// (including packages that do not type-check — findings in a broken
// package are not trustworthy).
//
// Suppress a finding with a justified ignore on the same line or the line
// above; bare ignores are themselves diagnostics:
//
//	//phishvet:ignore <rule>: <justification>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/phishvet"
)

func main() {
	rules := flag.String("rules", "", "comma-separated rule subset (default: all)")
	list := flag.Bool("list", false, "list rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: phishvet [-rules r1,r2] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, r := range phishvet.Rules() {
			fmt.Printf("%-12s %s\n", r.Name, r.Doc)
		}
		return
	}
	selected, err := phishvet.Select(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	loader, err := phishvet.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			broken = true
			fmt.Fprintf(os.Stderr, "phishvet: %s: %v\n", pkg.Path, terr)
		}
	}
	if broken {
		os.Exit(2)
	}

	diags := phishvet.Check(pkgs, selected)
	for _, d := range diags {
		// Relative paths keep output stable across checkouts and clickable
		// from the repo root.
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "phishvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
