package phishvet

import (
	"go/ast"
	"go/types"
)

// The checkedsync rule flags EVERY call whose error return is silently
// dropped inside the two packages that own the durability path —
// internal/journal and internal/sessionio. In ordinary code an ignored
// error is a style question; on the commit path (group-commit loop,
// segment rolls, checkpoint writes, manifest parsing) it silently turns
// "synced to stable storage" into "probably synced", so the whole package
// is held to the checked-or-acknowledged standard.

func checkedsyncRule() Rule {
	return Rule{
		Name: "checkedsync",
		Doc:  "discarded error returns in journal/sessionio",
		Run: func(p *Pass) {
			if !within(p.Pkg.Path, "internal/journal") && !within(p.Pkg.Path, "internal/sessionio") {
				return
			}
			for _, f := range p.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					// Only silent drops are flagged: a call used as a bare
					// statement. `_ = f.Close()` is a visible, greppable
					// acknowledgment (the idiom on error-cleanup paths) and
					// passes; deferred closes pass because the durable
					// pattern is an explicit checked Sync+Close before
					// return, which this rule does enforce.
					stmt, ok := n.(*ast.ExprStmt)
					if !ok {
						return true
					}
					call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
					if !ok {
						return true
					}
					name := calleeName(call)
					if name == "" || !returnsError(p, call) {
						return true
					}
					p.Reportf(call.Pos(), "%s error discarded on the durability path: check it, or acknowledge with `_ = ...`", name)
					return true
				})
			}
		},
	}
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// returnsError reports whether the call produces at least one error value.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
