// Package vision implements the deep-learning object detector of the paper
// (a Faster R-CNN fine-tuned on 10,000 generated pages, Sections 4.3 and
// 5.3.2) as a classical detection pipeline over raster screenshots: salient
// region proposals from connected components, a hand-crafted appearance
// feature vector per region, and a nearest-centroid classifier whose
// per-class statistics are fitted ("fine-tuned") on annotated generated
// pages. It detects the same classes as Table 5: six text-CAPTCHA styles,
// two visual-CAPTCHA styles, buttons, and logos.
package vision

import (
	"math"

	"repro/internal/raster"
)

// FeatureDim is the length of the appearance feature vector.
const FeatureDim = 28

// Features computes the appearance feature vector of the region r in img.
// One-off convenience wrapper: it builds a summed-area table over r only, so
// the cost is O(r.Area()) regardless of image size. Callers computing several
// statistics of the same window should build the integral once with
// raster.NewIntegralRegion and call FeaturesFrom.
func Features(img *raster.Image, r raster.Rect) []float64 {
	in := raster.NewIntegralRegion(img, r)
	f := FeaturesFrom(in, r)
	in.Release()
	return f
}

// FeaturesFrom computes the appearance feature vector of the window r using
// a prebuilt integral image covering (at least) r. Repeatedly-queried
// statistics are O(1) against the table; whole-window statistics come from
// one streaming Stats pass, so one table per proposal region serves
// tightening plus the whole feature vector.
func FeaturesFrom(in *raster.Integral, r raster.Rect) []float64 {
	return featuresInto(make([]float64, FeatureDim), in, r)
}

// featuresInto fills f (length FeatureDim) with the window's feature vector
// and returns it, letting batch callers reuse one buffer across windows.
func featuresInto(f []float64, in *raster.Integral, r raster.Rect) []float64 {
	for i := range f {
		f[i] = 0
	}
	r = r.Intersect(in.Region)
	if r.Empty() {
		return f
	}
	w, h := float64(r.W), float64(r.H)
	f[0] = math.Log(w)
	f[1] = math.Log(h)
	f[2] = w / h

	area := float64(r.Area())
	hist, hTrans, vTrans := in.Stats(r)
	for c, n := range hist {
		f[3+c] = float64(n) / area
	}
	f[19] = float64(in.InkCount(r)) / area
	f[20] = float64(hTrans) / area
	f[21] = float64(vTrans) / area
	f[22] = gridScoreH(in, r)
	f[23] = gridScoreV(in, r)
	f[24] = glyphBandRatio(in, r)
	f[25] = borderScore(in, r)
	f[26] = checkboxScore(in, r)
	f[27] = headerScore(in, r)
	return f
}

// gridScoreH returns the fraction of interior rows that are near-uniform
// non-background lines (grid/stripe structure).
func gridScoreH(in *raster.Integral, r raster.Rect) float64 {
	if r.H < 4 {
		return 0
	}
	lines := 0
	for y := r.Y + 1; y < r.Y+r.H-1; y++ {
		nonBG := in.NonWhiteCount(raster.R(r.X+1, y, r.W-2, 1))
		if float64(nonBG) >= 0.85*float64(r.W-2) {
			lines++
		}
	}
	return float64(lines) / float64(r.H-2)
}

func gridScoreV(in *raster.Integral, r raster.Rect) float64 {
	if r.W < 4 {
		return 0
	}
	lines := 0
	for x := r.X + 1; x < r.X+r.W-1; x++ {
		nonBG := in.NonWhiteCount(raster.R(x, r.Y+1, 1, r.H-2))
		if float64(nonBG) >= 0.85*float64(r.H-2) {
			lines++
		}
	}
	return float64(lines) / float64(r.W-2)
}

// glyphBandRatio measures how much of the region's ink falls into a
// glyph-height band around the vertical center — high for single-line text
// such as button labels and text CAPTCHAs.
func glyphBandRatio(in *raster.Integral, r raster.Rect) float64 {
	totalInk := in.InkCount(r)
	if totalInk == 0 {
		return 0
	}
	bandY0 := r.CenterY() - raster.GlyphH
	bandY1 := r.CenterY() + raster.GlyphH
	band := r.Intersect(raster.R(r.X, bandY0, r.W, bandY1-bandY0+1))
	bandInk := in.InkCount(band)
	return float64(bandInk) / float64(totalInk)
}

// borderScore returns the fraction of perimeter pixels that differ from the
// page background, indicating an outlined widget. Perimeter corners count
// twice (in both numerator and denominator), matching the row/column strip
// decomposition.
func borderScore(in *raster.Integral, r raster.Rect) float64 {
	per := 2*r.W + 2*r.H
	if per == 0 {
		return 0
	}
	hit := in.NonWhiteCount(raster.R(r.X, r.Y, r.W, 1)) +
		in.NonWhiteCount(raster.R(r.X, r.Y+r.H-1, r.W, 1)) +
		in.NonWhiteCount(raster.R(r.X, r.Y, 1, r.H)) +
		in.NonWhiteCount(raster.R(r.X+r.W-1, r.Y, 1, r.H))
	return float64(hit) / float64(per)
}

// checkboxScore looks for a small light square with a darker outline in the
// left quarter of the region — the signature of the "I'm not a robot"
// widget. With the integral image each candidate square costs O(1) instead
// of O(size^2).
func checkboxScore(in *raster.Integral, r raster.Rect) float64 {
	if r.W < 30 || r.H < 14 {
		return 0
	}
	best := 0.0
	for size := 8; size <= 16; size += 2 {
		inner := size - 4
		n := inner * inner
		for y := r.Y + 2; y+size < r.Y+r.H-2; y++ {
			for x := r.X + 2; x+size < r.X+r.W/3; x++ {
				sq := raster.R(x, y, size, size)
				// Outline must be non-white, interior light.
				edge := borderScore(in, sq)
				interiorLight := in.LightCount(raster.R(sq.X+2, sq.Y+2, inner, inner))
				s := edge * float64(interiorLight) / float64(n)
				if s > best {
					best = s
				}
			}
		}
	}
	return best
}

// headerScore measures whether the region's top strip is a solid saturated
// color while the rest is not — the banner structure of image-grid
// CAPTCHAs.
func headerScore(in *raster.Integral, r raster.Rect) float64 {
	if r.H < 20 {
		return 0
	}
	stripH := r.H / 5
	if stripH < 4 {
		stripH = 4
	}
	strip := raster.R(r.X+1, r.Y+1, r.W-2, stripH-1)
	n := strip.Intersect(in.Region).Area()
	if strip.W <= 0 || n == 0 {
		return 0
	}
	hist, _, _ := in.Stats(strip)
	best, bestC := 0, raster.White
	for c := raster.Color(0); c < raster.NumColors; c++ {
		if v := hist[c]; v > best {
			best, bestC = v, c
		}
	}
	if bestC == raster.White || bestC == raster.LightGray {
		return 0
	}
	return float64(best) / float64(n)
}
