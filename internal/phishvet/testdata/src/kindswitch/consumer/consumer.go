// Package consumer exercises kindswitch across package boundaries: the
// closed sets are defined in the mimic journal and crawler packages, and
// the switches here are checked against those scopes.
package consumer

import (
	"repro/internal/phishvet/testdata/src/kindswitch/internal/crawler"
	"repro/internal/phishvet/testdata/src/kindswitch/internal/journal"
)

// Missing a member of another package's closed set.
func payloadName(k journal.Kind) string {
	switch k { // want "switch over journal record kinds has no default and misses KindStats"
	case journal.KindSession:
		return "session"
	case journal.KindTriage:
		return "triage"
	}
	return ""
}

// Untyped string members are matched by prefix, not type.
func retryable(outcome string) bool {
	switch outcome { // want "switch over session outcomes has no default and misses OutcomeTakedown"
	case crawler.OutcomeCompleted, crawler.OutcomeStuck:
		return false
	}
	return true
}

// A default arm closes the remainder: clean.
func terminal(outcome string) bool {
	switch outcome {
	case crawler.OutcomeTakedown:
		return true
	default:
		return false
	}
}
