package report

import (
	"strings"
	"testing"

	"repro/internal/crawler"
	"repro/internal/farm"
)

func TestCloakTableEmptyWithoutCloakData(t *testing.T) {
	logs := []*crawler.SessionLog{
		{SeedURL: "http://a.test/", Outcome: "completed"},
		nil,
	}
	if got := CloakTable(logs, farm.Stats{}); got != "" {
		t.Errorf("cloak-less logs rendered %q, want empty", got)
	}
}

func TestCloakTableAggregates(t *testing.T) {
	logs := []*crawler.SessionLog{
		{SeedURL: "http://a.test/", Outcome: "completed", Cloak: &crawler.CloakLog{
			Uncloaked: true,
			Attempts: []crawler.CloakAttempt{
				{Profile: "ua=0 ref=0 lang=0 geo=0 js=0 ck=0", Outcome: crawler.OutcomeBenign, Signals: []string{crawler.SignalUserAgent}},
				{Profile: "ua=2 ref=0 lang=0 geo=0 js=0 ck=0", Outcome: "completed"},
			},
		}},
		{SeedURL: "http://b.test/", Outcome: crawler.OutcomeBenign, Cloak: &crawler.CloakLog{
			Attempts: []crawler.CloakAttempt{
				{Outcome: crawler.OutcomeBenign, Signals: []string{crawler.SignalJS, crawler.SignalUserAgent}},
				{Outcome: crawler.OutcomeBenign, Signals: []string{crawler.SignalJS}},
			},
		}},
		{SeedURL: "http://c.test/", Outcome: crawler.OutcomeBenign}, // genuinely parked
		{SeedURL: "http://d.test/", Outcome: "stuck"},
	}
	got := CloakTable(logs, farm.Stats{})
	for _, want := range []string{
		"Sessions gated by a decoy               2",
		"Uncloaked (gate opened)                 1    50.0%",
		"Still cloaked after budget              1    50.0%",
		"Benign with no cloak signals            1",
		"js=1 user-agent=2",
		"Mutated attempts to uncloak: 1:1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("table missing %q:\n%s", want, got)
		}
	}
}
