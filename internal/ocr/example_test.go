package ocr_test

import (
	"fmt"

	"repro/internal/ocr"
	"repro/internal/raster"
)

func ExampleEngine_Text() {
	// A page that painted its field label into pixels instead of the DOM.
	img := raster.New(240, 20, raster.White)
	img.DrawString("CARD NUMBER", 4, 4, raster.Black)

	fmt.Println(ocr.New().Text(img))
	// Output: CARD NUMBER
}

func ExampleEngine_TextNear() {
	img := raster.New(400, 60, raster.White)
	img.DrawString("PASSWORD", 10, 20, raster.Black)
	inputBox := raster.R(80, 16, 150, 16) // the input sits right of the label
	img.Outline(inputBox, raster.Gray)

	fmt.Println(ocr.New().TextNear(img, inputBox, 100))
	// Output: PASSWORD
}
