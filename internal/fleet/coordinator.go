package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/crawler"
	"repro/internal/farm"
	"repro/internal/journal"
	"repro/internal/metrics"
)

// CoordinatorConfig configures a fleet coordinator.
type CoordinatorConfig struct {
	// URLs is the full (post -sample) feed the fleet crawls, in feed
	// order. Leases are index ranges over this slice.
	URLs []string
	// Params pins the deterministic universe; lease requests whose params
	// differ are refused.
	Params Params
	// Root is the fleet journal root: every shard directory lives under
	// it, and a resumed coordinator recovers completed work by scanning
	// it.
	Root string
	// LeaseSites is the URLs-per-lease granularity (default
	// DefaultLeaseSites).
	LeaseSites int
	// TTL is the heartbeat expiry: a lease silent for longer is reclaimed
	// and re-issued (default DefaultLeaseTTL).
	TTL time.Duration
	// Resume permits existing shard directories under Root; without it
	// the coordinator refuses a non-empty root, mirroring the journal
	// CLI's own refuse-unless--resume contract.
	Resume bool
	// Logf, when non-nil, receives operational log lines (lease grants,
	// expiries, rejected results).
	Logf func(format string, args ...any)
}

const (
	leasePending = iota
	leaseActive
	leaseDone
)

// leaseState is the coordinator's book-keeping for one feed range.
type leaseState struct {
	id, start, end int
	state          int
	attempt        int       // current (or last granted) attempt, 0 = never granted
	worker         string    // holder of the active attempt
	lastBeat       time.Time // metrics seam, never session bytes
	doneBy         string
	doneAttempt    int
}

// workerView is the coordinator's live view of one worker, fed by lease
// grants and heartbeats.
type workerView struct {
	name     string
	leaseID  int // -1 = idle
	attempt  int
	progress Progress
	lastSeen time.Time
}

// Coordinator shards the feed into leases, serves them to workers, expires
// the ones whose workers go silent, and merges the finished shards.
type Coordinator struct {
	cfg CoordinatorConfig

	mu          sync.Mutex
	leases      []*leaseState
	completed   map[string]bool // URLs journaled before this incarnation started
	startupDirs []string        // shard dirs found at startup (dead writers)
	accepted    []Lease         // leases completed this incarnation, in acceptance order
	acceptedSt  farm.Stats      // merged stats of accepted shards
	workers     map[string]*workerView
	crawled     int // sessions in accepted shards this incarnation

	start    metrics.Stopwatch
	done     chan struct{}
	doneOnce sync.Once
}

// NewCoordinator builds the lease table over cfg.URLs and, when resuming,
// recovers completed work by opening every shard journal under Root —
// torn tails from killed workers are truncated by the journal's own
// recovery, and a journaled URL that is not in this feed means the root
// belongs to a different -sites/-seed and is refused.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.LeaseSites <= 0 {
		cfg.LeaseSites = DefaultLeaseSites
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultLeaseTTL
	}
	c := &Coordinator{
		cfg:       cfg,
		completed: map[string]bool{},
		workers:   map[string]*workerView{},
		start:     metrics.NewStopwatch(),
		done:      make(chan struct{}),
	}
	dirs, err := listShardDirs(cfg.Root)
	if err != nil {
		return nil, err
	}
	if len(dirs) > 0 && !cfg.Resume {
		return nil, fmt.Errorf("fleet: journal root %s already holds %d shard directories; pass -resume to continue the run or point -journal at a fresh directory", cfg.Root, len(dirs))
	}
	inFeed := make(map[string]bool, len(cfg.URLs))
	for _, u := range cfg.URLs {
		inFeed[u] = true
	}
	for _, dir := range dirs {
		j, err := journal.Open(dir, journal.Options{})
		if err != nil {
			return nil, fmt.Errorf("fleet: recovering shard %s: %w", dir, err)
		}
		urls := j.CompletedURLs()
		if err := j.Close(); err != nil {
			return nil, fmt.Errorf("fleet: closing shard %s: %w", dir, err)
		}
		for u := range urls {
			if !inFeed[u] {
				return nil, fmt.Errorf("fleet: shard %s holds sessions for URLs not in this feed (e.g. %s); it was recorded with different -sites/-seed", dir, u)
			}
			c.completed[u] = true
		}
		c.startupDirs = append(c.startupDirs, dir)
	}
	for start := 0; start < len(cfg.URLs); start += cfg.LeaseSites {
		end := start + cfg.LeaseSites
		if end > len(cfg.URLs) {
			end = len(cfg.URLs)
		}
		ls := &leaseState{id: len(c.leases), start: start, end: end}
		if c.remainingIn(start, end) == 0 {
			// Every URL in the range was journaled by a previous
			// incarnation; nothing to lease.
			ls.state = leaseDone
			ls.doneBy = "resume"
		}
		c.leases = append(c.leases, ls)
	}
	if c.cfg.Resume && len(c.startupDirs) > 0 {
		c.logf("fleet: resumed %s — %d URLs already journaled across %d shard directories",
			cfg.Root, len(c.completed), len(c.startupDirs))
	}
	c.checkDoneLocked()
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// remainingIn counts URLs in [start, end) not yet journaled.
func (c *Coordinator) remainingIn(start, end int) int {
	n := 0
	for i := start; i < end; i++ {
		if !c.completed[c.cfg.URLs[i]] {
			n++
		}
	}
	return n
}

// Done is closed once every lease has an accepted result (or was complete
// at startup).
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// checkDoneLocked closes the done channel when no lease remains open.
func (c *Coordinator) checkDoneLocked() {
	for _, ls := range c.leases {
		if ls.state != leaseDone {
			return
		}
	}
	c.doneOnce.Do(func() { close(c.done) })
}

// sweepExpiredLocked reclaims active leases whose workers missed the TTL.
func (c *Coordinator) sweepExpiredLocked(now time.Time) {
	for _, ls := range c.leases {
		if ls.state == leaseActive && now.Sub(ls.lastBeat) > c.cfg.TTL {
			c.logf("fleet: lease %d %s expired (worker %s silent for %s); re-issuing",
				ls.id, Lease{Start: ls.start, End: ls.end}.Range(), ls.worker,
				now.Sub(ls.lastBeat).Round(time.Millisecond))
			ls.state = leasePending
			if w := c.workers[ls.worker]; w != nil && w.leaseID == ls.id {
				w.leaseID = -1
				w.progress = Progress{}
			}
		}
	}
}

// grant answers one lease request.
func (c *Coordinator) grant(req LeaseRequest) (LeaseResponse, error) {
	if req.Params != c.cfg.Params {
		return LeaseResponse{}, fmt.Errorf("fleet: worker %s params (%s) do not match coordinator (%s); every fleet process needs identical -sites/-seed/-chaos flags",
			req.Worker, req.Params, c.cfg.Params)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := metrics.Now()
	c.noteWorkerLocked(req.Worker, now)
	c.sweepExpiredLocked(now)
	allDone := true
	for _, ls := range c.leases {
		switch ls.state {
		case leaseDone:
			continue
		case leaseActive:
			allDone = false
			continue
		}
		allDone = false
		ls.state = leaseActive
		ls.attempt++
		ls.worker = req.Worker
		ls.lastBeat = now
		l := Lease{ID: ls.id, Start: ls.start, End: ls.end, Attempt: ls.attempt}
		for i := ls.start; i < ls.end; i++ {
			if c.completed[c.cfg.URLs[i]] {
				l.Completed = append(l.Completed, c.cfg.URLs[i])
			}
		}
		sort.Strings(l.Completed)
		if w := c.workers[req.Worker]; w != nil {
			w.leaseID = ls.id
			w.attempt = ls.attempt
			w.progress = Progress{}
		}
		c.logf("fleet: lease %d %s granted to %s (attempt %d, %d already complete)",
			ls.id, l.Range(), req.Worker, ls.attempt, len(l.Completed))
		return LeaseResponse{Lease: &l}, nil
	}
	if allDone {
		return LeaseResponse{Done: true}, nil
	}
	retry := int(c.cfg.TTL.Milliseconds() / 4)
	if retry < 50 {
		retry = 50
	}
	return LeaseResponse{Wait: true, RetryMs: retry}, nil
}

// beat answers one heartbeat.
func (c *Coordinator) beat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := metrics.Now()
	c.noteWorkerLocked(req.Worker, now)
	if req.LeaseID < 0 || req.LeaseID >= len(c.leases) {
		return HeartbeatResponse{}
	}
	ls := c.leases[req.LeaseID]
	if ls.state != leaseActive || ls.worker != req.Worker || ls.attempt != req.Attempt {
		return HeartbeatResponse{}
	}
	ls.lastBeat = now
	if w := c.workers[req.Worker]; w != nil {
		w.leaseID = ls.id
		w.attempt = ls.attempt
		w.progress = req.Progress
	}
	return HeartbeatResponse{Valid: true}
}

// result answers one shard submission, suppressing duplicates: a range
// completes exactly once, and a stale worker whose lease was re-issued
// gets a rejection instead of double-counting its work. Re-submitting an
// already-accepted result (a worker retrying after a lost response) is
// acknowledged idempotently.
func (c *Coordinator) result(req ResultRequest) ResultResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := metrics.Now()
	c.noteWorkerLocked(req.Worker, now)
	if req.LeaseID < 0 || req.LeaseID >= len(c.leases) {
		return ResultResponse{Reason: fmt.Sprintf("unknown lease %d", req.LeaseID)}
	}
	ls := c.leases[req.LeaseID]
	if ls.state == leaseDone {
		if ls.doneBy == req.Worker && ls.doneAttempt == req.Attempt {
			return ResultResponse{Accepted: true} // idempotent re-submit
		}
		return ResultResponse{Reason: fmt.Sprintf("range already completed by %s", ls.doneBy)}
	}
	if ls.worker != req.Worker || ls.attempt != req.Attempt {
		c.logf("fleet: rejecting stale result for lease %d from %s (attempt %d; lease now at attempt %d held by %s)",
			ls.id, req.Worker, req.Attempt, ls.attempt, ls.worker)
		return ResultResponse{Reason: "lease was re-issued after missed heartbeats"}
	}
	ls.state = leaseDone
	ls.doneBy = req.Worker
	ls.doneAttempt = req.Attempt
	c.accepted = append(c.accepted, Lease{ID: ls.id, Start: ls.start, End: ls.end, Attempt: req.Attempt})
	c.acceptedSt.Merge(req.Stats)
	c.crawled += req.Stats.Sites
	if w := c.workers[req.Worker]; w != nil && w.leaseID == ls.id {
		w.leaseID = -1
		w.progress = Progress{}
	}
	c.logf("fleet: lease %d %s completed by %s (%d sessions)",
		ls.id, Lease{Start: ls.start, End: ls.end}.Range(), req.Worker, req.Stats.Sites)
	c.checkDoneLocked()
	return ResultResponse{Accepted: true}
}

func (c *Coordinator) noteWorkerLocked(name string, now time.Time) {
	w := c.workers[name]
	if w == nil {
		w = &workerView{name: name, leaseID: -1}
		c.workers[name] = w
	}
	w.lastSeen = now
}

// Merge reads every authoritative shard journal — the directories found at
// startup plus the shards accepted this incarnation — deduplicates
// sessions by seed URL (a re-crawled URL produces a byte-identical
// session, so either copy serves), re-assembles feed order, and recomputes
// the run statistics exactly as the single-process journal path does:
// outcomes and stage histograms from the sessions via farm.Tally, elapsed
// and panic totals from the per-shard stats records. Directories of
// abandoned lease attempts (expired mid-run) are excluded; their URLs are
// covered by the accepted re-issue, and skipping them means a stale
// still-running worker can never race the merge.
func (c *Coordinator) Merge() ([]*crawler.SessionLog, farm.Stats, error) {
	c.mu.Lock()
	dirs := append([]string(nil), c.startupDirs...)
	for _, l := range c.accepted {
		dirs = append(dirs, ShardDir(c.cfg.Root, l))
	}
	c.mu.Unlock()
	seenDir := map[string]bool{}
	seenURL := map[string]bool{}
	var logs []*crawler.SessionLog
	var runLevel farm.Stats
	for _, dir := range dirs {
		if seenDir[dir] {
			continue
		}
		seenDir[dir] = true
		j, err := journal.Open(dir, journal.Options{})
		if err != nil {
			return nil, farm.Stats{}, fmt.Errorf("fleet: merging shard %s: %w", dir, err)
		}
		sessions, err := j.Sessions()
		if err == nil {
			var runs []farm.Stats
			runs, err = j.StatsRuns()
			for _, r := range runs {
				runLevel.Merge(r)
			}
			for _, lg := range sessions {
				if !seenURL[lg.SeedURL] {
					seenURL[lg.SeedURL] = true
					logs = append(logs, lg)
				}
			}
		}
		if cerr := j.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return nil, farm.Stats{}, fmt.Errorf("fleet: merging shard %s: %w", dir, err)
		}
	}
	sort.Slice(logs, func(a, b int) bool {
		if logs[a].FeedIndex != logs[b].FeedIndex {
			return logs[a].FeedIndex < logs[b].FeedIndex
		}
		return logs[a].SeedURL < logs[b].SeedURL
	})
	stats := farm.Tally(logs)
	stats.Elapsed = runLevel.Elapsed
	stats.Panics = runLevel.Panics
	return logs, stats, nil
}

// Handler returns the coordinator's HTTP interface: the three POST
// endpoints of the wire protocol plus GET /status serving the fleet-wide
// progress view.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathLease, func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeInto(w, r, &req) {
			return
		}
		resp, err := c.grant(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc(PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeInto(w, r, &req) {
			return
		}
		writeJSON(w, c.beat(req))
	})
	mux.HandleFunc(PathResult, func(w http.ResponseWriter, r *http.Request) {
		var req ResultRequest
		if !decodeInto(w, r, &req) {
			return
		}
		writeJSON(w, c.result(req))
	})
	mux.HandleFunc(PathStatus, func(w http.ResponseWriter, r *http.Request) {
		st := c.Status()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(st) // best-effort response; a failed write surfaces client-side
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, st.String())
		if len(st.Stages) > 0 {
			fmt.Fprintf(w, "\n%s", metrics.StageTable(st.Stages))
		}
	})
	return mux
}

func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v) // best-effort response; a failed write surfaces as the client's error
}

// listShardDirs returns the shard journal directories under root, sorted
// by name (range order, then attempt order). A missing root is an empty
// fleet, not an error.
func listShardDirs(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("fleet: reading journal root: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			out = append(out, filepath.Join(root, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}
