package phishserver

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"

	"repro/internal/site"
)

// Cloak-gate cookie and header names. They mirror internal/browser's
// JSChallengeCookie/JSChallengeHeader constants — the two packages stay
// import-independent, so the shared wire names are pinned by
// TestCloakWireNames instead of a common package.
const (
	// cloakRevisitCookie marks a repeat visitor; decoy responses set it so
	// a jar-persisting second visit passes CloakCookie rules.
	cloakRevisitCookie = "rv"
	// cloakJSCookie carries a JS-capability probe answer.
	cloakJSCookie = "jsc"
	// cloakJSHeader poses the probe on decoy responses.
	cloakJSHeader = "X-Js-Challenge"
)

// jsToken derives the deterministic JS-probe answer for a host: the value
// a JS-capable visitor's probe script would compute and store in the
// cloakJSCookie.
func jsToken(host string) string {
	h := fnv.New32a()
	h.Write([]byte(host))
	return fmt.Sprintf("%08x", h.Sum32())
}

// cloakFailures evaluates every rule against the request and returns the
// failing ones in rule order. An empty result means the gate is open.
func cloakFailures(c *site.Cloak, req *http.Request) []site.CloakRule {
	var failing []site.CloakRule
	for _, r := range c.Rules {
		if !cloakRulePasses(r, req) {
			failing = append(failing, r)
		}
	}
	return failing
}

func cloakRulePasses(r site.CloakRule, req *http.Request) bool {
	switch r.Kind {
	case site.CloakUserAgent:
		return strings.Contains(req.UserAgent(), r.Value)
	case site.CloakReferrer:
		return strings.Contains(req.Referer(), r.Value)
	case site.CloakLanguage:
		return strings.HasPrefix(req.Header.Get("Accept-Language"), r.Value)
	case site.CloakGeo:
		return strings.HasPrefix(req.Header.Get("X-Forwarded-For"), r.Value)
	case site.CloakCookie:
		_, err := req.Cookie(cloakRevisitCookie)
		return err == nil
	case site.CloakJS:
		c, err := req.Cookie(cloakJSCookie)
		return err == nil && c.Value == jsToken(requestHost(req))
	}
	// Unknown kinds never pass: a misconfigured rule cloaks rather than
	// exposing the flow.
	return false
}

// cloakVaryHeader maps a rule kind to the request header its check reads,
// for the decoy's Vary header. CloakJS signals via cloakJSHeader instead.
func cloakVaryHeader(kind string) string {
	switch kind {
	case site.CloakUserAgent:
		return "User-Agent"
	case site.CloakReferrer:
		return "Referer"
	case site.CloakLanguage:
		return "Accept-Language"
	case site.CloakGeo:
		return "X-Forwarded-For"
	case site.CloakCookie:
		return "Cookie"
	}
	return ""
}

// serveDecoy answers a gated request with the site's benign decoy page,
// leaking exactly the signals a real kit leaks: a Vary header naming the
// request dimensions the gate read (in rule order), the JS probe when a js
// rule failed, and the repeat-visit cookie so a persistent jar's next
// visit counts as a revisit.
func serveDecoy(w http.ResponseWriter, req *http.Request, c *site.Cloak, failing []site.CloakRule) {
	var vary []string
	for _, r := range failing {
		if h := cloakVaryHeader(r.Kind); h != "" {
			vary = append(vary, h)
		}
		if r.Kind == site.CloakJS {
			w.Header().Set(cloakJSHeader, jsToken(requestHost(req)))
		}
	}
	if len(vary) > 0 {
		w.Header().Set("Vary", strings.Join(vary, ", "))
	}
	for _, r := range c.Rules {
		if r.Kind == site.CloakCookie {
			http.SetCookie(w, &http.Cookie{Name: cloakRevisitCookie, Value: "1", Path: "/"})
			break
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, c.DecoyHTML)
}

// requestHost returns the request's host with any port stripped, the form
// jsToken is computed over.
func requestHost(req *http.Request) string {
	host := req.Host
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	return host
}
