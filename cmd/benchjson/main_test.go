package main

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCrawlThroughput             	       3	 408707098 ns/op	   8196201 ns/site	       122.0 sites/sec	51839965 B/op	   81353 allocs/op
BenchmarkCrawlThroughputJournalGroup 	       3	 513300611 ns/op	  10277767 ns/site	        97.30 sites/sec	53547634 B/op	   83016 allocs/op
PASS
ok  	repro	3.983s
`

func TestParse(t *testing.T) {
	snap, err := parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" || snap.CPU == "" {
		t.Errorf("environment = %q/%q/%q", snap.Goos, snap.Goarch, snap.CPU)
	}
	if len(snap.Results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(snap.Results))
	}
	r := snap.Results[0]
	if r.Name != "BenchmarkCrawlThroughput" || r.Iterations != 3 {
		t.Errorf("first result = %+v", r)
	}
	for _, m := range []struct {
		unit string
		want float64
	}{
		{"ns/op", 408707098}, {"sites/sec", 122.0}, {"B/op", 51839965}, {"allocs/op", 81353},
	} {
		if got := r.Metrics[m.unit]; got != m.want {
			t.Errorf("%s = %v, want %v", m.unit, got, m.want)
		}
	}
	if snap.Results[1].Metrics["sites/sec"] != 97.30 {
		t.Errorf("second result metrics = %v", snap.Results[1].Metrics)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-4 3 12 ns/op trailing",
		"BenchmarkX-4 notanumber 12 ns/op",
		"BenchmarkX-4 3 notafloat ns/op",
	} {
		if _, err := parse([]byte(line + "\n")); err == nil {
			t.Errorf("parse(%q) succeeded, want error", line)
		}
	}
}
