package phishserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/site"
)

func minimalSite(host string) *site.Site {
	return &site.Site{
		ID: "m1", Host: host,
		Pages: []*site.Page{
			{Path: "/", HTML: "<html><body><form action='/'><input name='a'><button>Go</button></form></body></html>",
				Next: "/two", Mode: site.NextRedirect},
			{Path: "/two", HTML: "<html><body>page two</body></html>"},
		},
		Images: map[string][]byte{"/x.pxi": []byte("PXI1 not really")},
	}
}

func doReq(t *testing.T, h http.Handler, method, rawURL string, form url.Values) *http.Response {
	t.Helper()
	var req *http.Request
	if form != nil {
		req = httptest.NewRequest(method, rawURL, strings.NewReader(form.Encode()))
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	} else {
		req = httptest.NewRequest(method, rawURL, nil)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result()
}

func TestRegistryDispatchByHost(t *testing.T) {
	reg := NewRegistry()
	reg.AddSite(minimalSite("a.test"))
	reg.AddBenignHost("google.com")

	resp := doReq(t, reg, "GET", "http://a.test/", nil)
	if resp.StatusCode != 200 {
		t.Errorf("site status = %d", resp.StatusCode)
	}
	resp = doReq(t, reg, "GET", "http://google.com/anything", nil)
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "legitimate") {
		t.Errorf("benign host: %d %q", resp.StatusCode, body)
	}
	// Subdomain of a benign host also resolves.
	resp = doReq(t, reg, "GET", "http://www.google.com/", nil)
	if resp.StatusCode != 200 {
		t.Errorf("benign subdomain status = %d", resp.StatusCode)
	}
	resp = doReq(t, reg, "GET", "http://who.test/", nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("unknown host status = %d", resp.StatusCode)
	}
	if reg.SiteCount() != 1 {
		t.Errorf("SiteCount = %d", reg.SiteCount())
	}
	reg.RemoveSite("a.test")
	if reg.SiteCount() != 0 {
		t.Error("RemoveSite failed")
	}
}

func TestImageServing(t *testing.T) {
	reg := NewRegistry()
	reg.AddSite(minimalSite("a.test"))
	resp := doReq(t, reg, "GET", "http://a.test/x.pxi", nil)
	if resp.StatusCode != 200 {
		t.Errorf("image status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/pxi" {
		t.Errorf("content type = %q", ct)
	}
	resp = doReq(t, reg, "GET", "http://a.test/missing.pxi", nil)
	if resp.StatusCode != 404 {
		t.Errorf("missing image status = %d", resp.StatusCode)
	}
}

func TestKeyloggerEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.AddSite(minimalSite("a.test"))
	resp := doReq(t, reg, "POST", "http://a.test/k", url.Values{"d": {"secret"}})
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("beacon status = %d", resp.StatusCode)
	}
}

func TestSubmitRedirect(t *testing.T) {
	reg := NewRegistry()
	reg.AddSite(minimalSite("a.test"))
	resp := doReq(t, reg, "POST", "http://a.test/", url.Values{"a": {"x"}})
	if resp.StatusCode != http.StatusFound {
		t.Errorf("status = %d, want 302", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/two" {
		t.Errorf("location = %q", loc)
	}
}

func TestValidators(t *testing.T) {
	cases := []struct {
		validator, value string
		want             bool
	}{
		{site.ValidateAny, "x", true},
		{site.ValidateAny, "  ", false},
		{site.ValidateEmail, "a@b.co", true},
		{site.ValidateEmail, "a@b", false},
		{site.ValidateEmail, "@b.co", false},
		{site.ValidateEmail, "a@b.", false},
		{site.ValidateLuhn, "4111111111111111", true},
		{site.ValidateLuhn, "4111 1111 1111 1111", true},
		{site.ValidateLuhn, "4111111111111112", false},
		{site.ValidateDigits, "123456", true},
		{site.ValidateDigits, "12a", false},
		{site.ValidateDigits, "", false},
		{site.ValidatePhone, "555-123-4567", true},
		{site.ValidatePhone, "12345", false},
		{"unknown-validator", "anything", true},
	}
	for _, c := range cases {
		if got := validate(c.validator, c.value); got != c.want {
			t.Errorf("validate(%s, %q) = %v, want %v", c.validator, c.value, got, c.want)
		}
	}
}

func TestFlakyValidatorDeterministicAndMixed(t *testing.T) {
	acc, rej := 0, 0
	for _, v := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"} {
		first := validate(site.ValidateFlaky, v)
		second := validate(site.ValidateFlaky, v)
		if first != second {
			t.Fatal("flaky validator must be deterministic per value")
		}
		if first {
			acc++
		} else {
			rej++
		}
	}
	if acc == 0 || rej == 0 {
		t.Errorf("flaky should accept some and reject some: %d/%d", acc, rej)
	}
}

func TestHTTPErrorTermination(t *testing.T) {
	s := minimalSite("a.test")
	s.Pages[0].FailStatus = 404
	reg := NewRegistry()
	reg.AddSite(s)
	resp := doReq(t, reg, "POST", "http://a.test/", url.Values{"a": {"x"}})
	if resp.StatusCode != 404 {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestDoubleLoginPerSession(t *testing.T) {
	s := minimalSite("a.test")
	s.Pages[0].DoubleLoginHTML = "<html><body>try again</body></html>"
	reg := NewRegistry()
	reg.AddSite(s)

	// Session 1: first POST gets the retry page, second proceeds.
	post := func(cookie string) (*http.Response, string) {
		req := httptest.NewRequest("POST", "http://a.test/", strings.NewReader("a=x"))
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		if cookie != "" {
			req.AddCookie(&http.Cookie{Name: "sess", Value: cookie})
		}
		rec := httptest.NewRecorder()
		reg.ServeHTTP(rec, req)
		resp := rec.Result()
		body, _ := io.ReadAll(resp.Body)
		return resp, string(body)
	}
	resp1, body1 := post("c1")
	if resp1.StatusCode != 200 || !strings.Contains(body1, "try again") {
		t.Errorf("first attempt: %d %q", resp1.StatusCode, body1)
	}
	resp2, _ := post("c1")
	if resp2.StatusCode != http.StatusFound {
		t.Errorf("second attempt: %d, want 302", resp2.StatusCode)
	}
	// A different session starts over.
	resp3, body3 := post("c2")
	if resp3.StatusCode != 200 || !strings.Contains(body3, "try again") {
		t.Errorf("new session first attempt: %d", resp3.StatusCode)
	}
}

func TestInlineModeServesNextAtSameURL(t *testing.T) {
	s := minimalSite("a.test")
	s.Pages[0].Mode = site.NextInline
	reg := NewRegistry()
	reg.AddSite(s)
	resp := doReq(t, reg, "POST", "http://a.test/", url.Values{"a": {"x"}})
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "page two") {
		t.Errorf("inline mode: %d %q", resp.StatusCode, body)
	}
}

func TestListenRealTCP(t *testing.T) {
	srv := Listen(minimalSite("ignored.test"))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("TCP status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "form") {
		t.Error("TCP body missing form")
	}
}

func TestConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	reg.AddSite(minimalSite("a.test"))
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- true }()
			for j := 0; j < 50; j++ {
				doReq(t, reg, "GET", "http://a.test/", nil)
				doReq(t, reg, "POST", "http://a.test/", url.Values{"a": {"x"}})
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
