// Adaptive uncloaking: the Crawl wrapper around crawlAttempt. Cloaked kits
// serve a benign decoy to profiles that fail their gate; the decoy leaks
// which request dimensions the gate read (its Vary header and JS-challenge
// probe), and the loop re-crawls with a profile mutated along exactly those
// dimensions on a seed-pinned schedule. Because the schedule is a pure
// function of the session's FakerSeed (itself derived from the feed index),
// the attempt sequence — and therefore the journaled session bytes — is
// identical whatever the worker count and across kill/resume.

package crawler

import (
	"math/rand"
	"sort"
	"strings"

	"repro/internal/browser"
)

// Cloak signal names: the request dimensions a decoy response can implicate.
// They match internal/site's CloakRule kinds by convention (the packages
// stay import-independent).
const (
	SignalUserAgent = "user-agent"
	SignalReferrer  = "referrer"
	SignalLanguage  = "language"
	SignalGeo       = "geo"
	SignalCookie    = "cookie"
	SignalJS        = "js"
)

// benignPhrases mark parked/benign pages — registrar lander boilerplate and
// the decoys cloaking kits serve. Distinct from takedownPhrases: a takedown
// is a dead phishing site (final), a benign page may be a cloak worth
// re-crawling. Generated phishing pages never contain them.
var benignPhrases = []string{
	"coming soon", "under construction", "domain is for sale",
}

// IsBenignParkedText reports whether a page's title and body text read as a
// parked/benign lander rather than phishing content.
func IsBenignParkedText(title, text string) bool {
	joined := strings.ToLower(title + " " + text)
	for _, phrase := range benignPhrases {
		if strings.Contains(joined, phrase) {
			return true
		}
	}
	return false
}

func isBenignParkedPage(pl *PageLog) bool {
	return IsBenignParkedText(pl.Title, pl.Text)
}

// CloakAttempt records one crawl attempt of the uncloaking loop.
type CloakAttempt struct {
	// Profile is the presented profile's pool-index fingerprint.
	Profile string
	// Outcome is the attempt's session outcome.
	Outcome string
	// Signals are the cloak dimensions the attempt's responses implicated,
	// sorted (empty once the gate opened).
	Signals []string `json:",omitempty"`
}

// CloakLog is the journaled record of a session's uncloaking loop:
// Attempts[0] is the honest crawl that landed on the benign page.
type CloakLog struct {
	Attempts []CloakAttempt
	// Uncloaked reports that a mutated profile got past the gate: the
	// session's final log measures the real phishing flow.
	Uncloaked bool
}

// Crawl runs one session against seedURL: an honest crawl first, then —
// when it lands on a benign/parked page that leaked cloak signals and
// CloakRetries allows — adaptive re-crawls with mutated profiles.
func (c *Crawler) Crawl(seedURL string) *SessionLog {
	prof := browser.DefaultProfile()
	lg, jar := c.crawlAttempt(seedURL, prof, nil)
	if c.CloakRetries <= 0 || lg.Outcome != OutcomeBenign {
		return lg
	}
	signals := cloakSignals(lg.NetLog)
	if len(signals) == 0 {
		// A benign page that implicated nothing is genuinely parked; no
		// profile would change what it serves.
		return lg
	}
	sched := newMutationSchedule(c.FakerSeed)
	cl := &CloakLog{Attempts: []CloakAttempt{{Profile: prof.Fingerprint(), Outcome: lg.Outcome, Signals: signals}}}
	for try := 0; try < c.CloakRetries; try++ {
		if !sched.mutate(&prof, signals) {
			// Every implicated dimension is exhausted: give up.
			break
		}
		var carry map[string]string
		if prof.PersistCookies {
			carry = jar
		}
		next, nextJar := c.crawlAttempt(seedURL, prof, carry)
		signals = cloakSignals(next.NetLog)
		cl.Attempts = append(cl.Attempts, CloakAttempt{Profile: prof.Fingerprint(), Outcome: next.Outcome, Signals: signals})
		lg, jar = next, nextJar
		if lg.Outcome != OutcomeBenign {
			cl.Uncloaked = true
			break
		}
		if len(signals) == 0 {
			break
		}
	}
	lg.Cloak = cl
	return lg
}

// cloakSignals extracts the implicated cloak dimensions from an attempt's
// net log: Vary header names map to their dimensions, a JS-challenge probe
// implicates js. The result is deduplicated and sorted — journaled bytes
// must not depend on response order.
func cloakSignals(netlog []browser.NetRequest) []string {
	seen := map[string]bool{}
	for i := range netlog {
		e := &netlog[i]
		if e.JSChallenge != "" {
			seen[SignalJS] = true
		}
		if e.Vary == "" {
			continue
		}
		for _, h := range strings.Split(e.Vary, ",") {
			switch strings.ToLower(strings.TrimSpace(h)) {
			case "user-agent":
				seen[SignalUserAgent] = true
			case "referer", "referrer":
				seen[SignalReferrer] = true
			case "accept-language":
				seen[SignalLanguage] = true
			case "x-forwarded-for":
				seen[SignalGeo] = true
			case "cookie":
				seen[SignalCookie] = true
			}
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// mutationSchedule is the seed-pinned order in which candidate values are
// tried per dimension. Every implicated dimension advances one candidate
// per mutation (boolean dimensions flip once), so a gate of depth d over
// pools of size k opens within max(k-1, 1) mutations.
type mutationSchedule struct {
	order map[string][]int // dimension -> remaining candidate pool indices
	rng   *rand.Rand
}

// cloakSeedSalt decorrelates the mutation schedule's rng stream from the
// faker's, which shares the session seed.
const cloakSeedSalt = 0x636c6f616b // "cloak"

func newMutationSchedule(seed int64) *mutationSchedule {
	rng := rand.New(rand.NewSource(seed ^ cloakSeedSalt))
	perm := func(pool []string) []int {
		// Candidate indices 1..len-1 in seed-pinned order; index 0 is the
		// honest default the failed attempt already presented.
		p := rng.Perm(len(pool) - 1)
		for i := range p {
			p[i]++
		}
		return p
	}
	return &mutationSchedule{
		rng: rng,
		order: map[string][]int{
			SignalUserAgent: perm(browser.UserAgents()),
			SignalReferrer:  perm(browser.Referrers()),
			SignalLanguage:  perm(browser.Languages()),
			SignalGeo:       perm(browser.ForwardedAddrs()),
		},
	}
}

// mutate advances the profile along every implicated dimension, reporting
// whether anything changed (false means the schedule is exhausted for all
// of signals and retrying is pointless).
func (m *mutationSchedule) mutate(p *browser.Profile, signals []string) bool {
	changed := false
	next := func(dim string) (int, bool) {
		q := m.order[dim]
		if len(q) == 0 {
			return 0, false
		}
		m.order[dim] = q[1:]
		return q[0], true
	}
	for _, s := range signals {
		switch s {
		case SignalUserAgent:
			if i, ok := next(s); ok {
				p.UserAgent = browser.UserAgents()[i]
				changed = true
			}
		case SignalReferrer:
			if i, ok := next(s); ok {
				p.Referrer = browser.Referrers()[i]
				changed = true
			}
		case SignalLanguage:
			if i, ok := next(s); ok {
				p.AcceptLanguage = browser.Languages()[i]
				changed = true
			}
		case SignalGeo:
			if i, ok := next(s); ok {
				p.XForwardedFor = browser.ForwardedAddrs()[i]
				changed = true
			}
		case SignalCookie:
			if !p.PersistCookies {
				p.PersistCookies = true
				changed = true
			}
		case SignalJS:
			if !p.JSCapable {
				p.JSCapable = true
				changed = true
			}
		}
	}
	return changed
}
