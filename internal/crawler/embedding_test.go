package crawler

import (
	"encoding/json"
	"testing"
)

// TestFirstPageEmbeddingPooledStability is the triage-facing slice of the
// pooled-vs-unpooled determinism pin: campaign attribution compares
// FirstPageEmbedding values across sessions, so the embedding specifically
// — thumbnail, histogram, and hash — must be byte-identical whether the
// session's render buffers came fresh or recycled, including after the pool
// has been warmed by prior sessions of a different site shape.
func TestFirstPageEmbeddingPooledStability(t *testing.T) {
	s := loginPaymentSite()
	unpooled := newCrawler(t, s)
	pooled := newCrawler(t, s)
	pooled.Pool = NewSessionPool()

	want, err := json.Marshal(unpooled.Crawl("http://lp.test/").FirstPageEmbedding)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) == "" {
		t.Fatal("unpooled session produced no embedding")
	}
	for i := 0; i < 3; i++ {
		got, err := json.Marshal(pooled.Crawl("http://lp.test/").FirstPageEmbedding)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("pooled embedding %d diverged:\npooled:   %s\nunpooled: %s", i, got, want)
		}
	}
}
