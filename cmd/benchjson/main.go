// Command benchjson runs the repo's benchmark suite and writes the parsed
// results as a machine-readable JSON snapshot (`make bench-json` commits it
// as BENCH_8.json), so perf claims in EXPERIMENTS.md are backed by a file a
// reviewer can diff instead of a number pasted into prose:
//
//	benchjson -o BENCH_8.json
//	benchjson -bench 'BenchmarkCrawlThroughput' -benchtime 6x -o /dev/stdout
//
// Each entry carries the benchmark's name, iteration count, and every
// reported metric (ns/op, B/op, allocs/op, plus custom metrics such as
// sites/sec) keyed by unit. Entries appear in the order `go test` printed
// them, so the file is stable run-to-run up to timing noise.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"repro/internal/sessionio"
)

// defaultBench mirrors the Makefile's `bench` target selection — the
// throughput, model, and pipeline-construction benchmarks the perf
// acceptance criteria are stated against — plus the per-session
// allocation benchmark behind the pooling budget and the triage funnel
// benchmark (attribution hit-rate, fast-path latency).
const defaultBench = "BenchmarkDetect|BenchmarkOCRPage|BenchmarkCrawlThroughput|BenchmarkNewPipeline|BenchmarkCrawlSession|BenchmarkTriage"

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the file layout: the environment lines go test reports plus
// every benchmark result.
type Snapshot struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	benchRe := flag.String("bench", defaultBench, "benchmarks to run (go test -bench regex)")
	benchtime := flag.String("benchtime", "2x", "go test -benchtime value")
	pkg := flag.String("pkg", "./...", "package pattern to benchmark")
	out := flag.String("o", "BENCH_8.json", "output path")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *benchRe, "-benchmem", "-benchtime", *benchtime, *pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		log.Fatalf("benchjson: go test -bench: %v", err)
	}
	snap, err := parse(raw)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if len(snap.Results) == 0 {
		log.Fatalf("benchjson: no benchmark lines in go test output:\n%s", raw)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	data = append(data, '\n')
	if err := sessionio.WriteRaw(*out, data); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Printf("wrote %d benchmark(s) to %s\n", len(snap.Results), *out)
}

// parse extracts environment headers and benchmark lines from `go test
// -bench` output. A benchmark line is
//
//	BenchmarkName-P   N   v1 unit1   v2 unit2   ...
//
// where each metric is a value/unit pair after the iteration count.
func parse(raw []byte) (*Snapshot, error) {
	snap := &Snapshot{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("unparseable benchmark line: %q", line)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("iteration count in %q: %w", line, err)
		}
		r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("metric value in %q: %w", line, err)
			}
			r.Metrics[fields[i+1]] = v
		}
		snap.Results = append(snap.Results, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}
