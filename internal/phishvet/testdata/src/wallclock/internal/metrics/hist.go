package metrics

import "time"

// A non-clock file inside internal/metrics gets no exemption: histogram
// and stage-timing code must route every read through the clock.go seam,
// or worker scheduling leaks into the percentiles.
func bucketNow() time.Time {
	return time.Now() // want "time.Now reads the wall clock in seeded code"
}
