package fleet

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/farm"
)

// fleetHarness runs a coordinator behind a real HTTP server, exercising
// the full wire protocol the way the CLI does.
type fleetHarness struct {
	coord *Coordinator
	srv   *httptest.Server
	root  string
}

func newFleetHarness(t *testing.T, urls []string, leaseSites int) *fleetHarness {
	t.Helper()
	root := t.TempDir()
	coord, err := NewCoordinator(CoordinatorConfig{
		URLs:       urls,
		Params:     testParams,
		Root:       root,
		LeaseSites: leaseSites,
		TTL:        time.Minute,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	return &fleetHarness{coord: coord, srv: srv, root: root}
}

func (h *fleetHarness) workerConfig(t *testing.T, name string, urls []string) WorkerConfig {
	t.Helper()
	return WorkerConfig{
		Coordinator:    h.srv.URL,
		Name:           name,
		Params:         testParams,
		Root:           h.root,
		HeartbeatEvery: 10 * time.Millisecond,
		Logf:           t.Logf,
		Crawl: func(l Lease, dir string) (farm.Stats, error) {
			skip := make(map[string]bool, len(l.Completed))
			for _, u := range l.Completed {
				skip[u] = true
			}
			var idxs []int
			for i := l.Start; i < l.End; i++ {
				if !skip[urls[i]] {
					idxs = append(idxs, i)
				}
			}
			journalLease(t, h.root, l, urls, idxs, "stub")
			return farm.Stats{Sites: len(idxs), Elapsed: time.Second}, nil
		},
	}
}

// TestRunWorkerCompletesFleet drives two workers over the protocol: every
// lease is crawled exactly once, both exit nil on Done, and the merged
// view covers the feed in order.
func TestRunWorkerCompletesFleet(t *testing.T) {
	urls := testURLs(10)
	h := newFleetHarness(t, urls, 3)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			errs[i] = RunWorker(h.workerConfig(t, name, urls))
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	select {
	case <-h.coord.Done():
	default:
		t.Fatal("workers exited but coordinator not done")
	}
	logs, stats, err := h.coord.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != len(urls) {
		t.Fatalf("merged %d sessions, want %d", len(logs), len(urls))
	}
	for i, lg := range logs {
		if lg.FeedIndex != i {
			t.Fatalf("merged log %d has feed index %d", i, lg.FeedIndex)
		}
	}
	if stats.Sites != len(urls) || stats.Outcomes["stub"] != len(urls) {
		t.Fatalf("merged stats wrong: %+v", stats)
	}
	// 4 leases of 1s shard elapsed each.
	if stats.Elapsed != 4*time.Second {
		t.Fatalf("merged elapsed = %v, want 4s", stats.Elapsed)
	}
}

// TestRunWorkerHeartbeats verifies the heartbeat goroutine reports live
// progress while Crawl runs.
func TestRunWorkerHeartbeats(t *testing.T) {
	urls := testURLs(4)
	h := newFleetHarness(t, urls, 4)
	cfg := h.workerConfig(t, "w1", urls)
	inner := cfg.Crawl
	release := make(chan struct{})
	cfg.Snapshot = func() Progress { return Progress{Done: 3} }
	cfg.Crawl = func(l Lease, dir string) (farm.Stats, error) {
		<-release // hold the lease open across several heartbeat ticks
		return inner(l, dir)
	}
	done := make(chan error, 1)
	go func() { done <- RunWorker(cfg) }()

	deadline := time.After(5 * time.Second)
	for {
		st := h.coord.Status()
		if len(st.Workers) == 1 && st.Workers[0].Done == 3 && st.Workers[0].Lease == "[0,4)" {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("heartbeat progress never reached the coordinator: %+v", st.Workers)
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestRunWorkerParamsMismatchFatal: a refused worker must exit with the
// coordinator's message, not retry forever.
func TestRunWorkerParamsMismatchFatal(t *testing.T) {
	urls := testURLs(4)
	h := newFleetHarness(t, urls, 4)
	cfg := h.workerConfig(t, "w1", urls)
	cfg.Params.Seed = 99
	err := RunWorker(cfg)
	if err == nil {
		t.Fatal("mismatched worker ran to completion")
	}
	if !strings.Contains(err.Error(), "409") && !strings.Contains(err.Error(), "params") {
		t.Fatalf("unhelpful refusal error: %v", err)
	}
}

// TestRunWorkerExitsWhenCoordinatorGone: after a successful exchange, a
// vanished coordinator means the run completed — exit nil, not an error.
func TestRunWorkerExitsWhenCoordinatorGone(t *testing.T) {
	urls := testURLs(4)
	h := newFleetHarness(t, urls, 4)
	cfg := h.workerConfig(t, "w1", urls)
	inner := cfg.Crawl
	cfg.Crawl = func(l Lease, dir string) (farm.Stats, error) {
		st, err := inner(l, dir)
		h.srv.Close() // coordinator exits before the result lands
		return st, err
	}
	if err := RunWorker(cfg); err != nil {
		t.Fatalf("worker treated post-completion shutdown as an error: %v", err)
	}
}

// TestRunWorkerNeverConnected: a worker that can never reach the
// coordinator reports it instead of spinning forever.
func TestRunWorkerNeverConnected(t *testing.T) {
	cfg := WorkerConfig{
		Coordinator: "127.0.0.1:1", // nothing listens on port 1
		Name:        "w1",
		Params:      testParams,
		Root:        t.TempDir(),
		Crawl:       func(Lease, string) (farm.Stats, error) { return farm.Stats{}, nil },
		Logf:        t.Logf,
	}
	if err := RunWorker(cfg); err == nil {
		t.Fatal("unreachable coordinator reported as success")
	}
}

// TestRunWorkerRejectedResultContinues: a worker whose result is rejected
// (lease re-issued) keeps serving the fleet instead of dying.
func TestRunWorkerRejectedResultContinues(t *testing.T) {
	urls := testURLs(6)
	h := newFleetHarness(t, urls, 3)
	cfg := h.workerConfig(t, "w1", urls)

	// Steal lease 0 before the worker starts: grant it to a phantom, then
	// force expiry by completing it under another name so the worker's own
	// later grant path is unaffected. Simpler: complete lease 0 directly so
	// the worker's submission for it can never happen; instead intercept the
	// worker's first result by pre-completing the lease from a rival.
	crawled := make(chan Lease, 8)
	inner := cfg.Crawl
	cfg.Crawl = func(l Lease, dir string) (farm.Stats, error) {
		st, err := inner(l, dir)
		if l.ID == 0 && l.Attempt == 1 {
			// A rival submits the same range first (as if the lease had
			// expired and been re-issued, and the rival finished sooner).
			h.coord.mu.Lock()
			ls := h.coord.leases[0]
			ls.attempt++
			ls.worker = "rival"
			h.coord.mu.Unlock()
			journalLease(t, h.root, Lease{ID: 0, Start: l.Start, End: l.End, Attempt: 2}, urls, []int{0, 1, 2}, "stub")
			if res := h.coord.result(ResultRequest{Worker: "rival", LeaseID: 0, Attempt: 2, Stats: farm.Stats{Sites: 3, Elapsed: time.Second}}); !res.Accepted {
				t.Errorf("rival result rejected: %s", res.Reason)
			}
		}
		crawled <- l
		return st, err
	}
	if err := RunWorker(cfg); err != nil {
		t.Fatalf("worker died after a rejected result: %v", err)
	}
	var ids []int
	for {
		select {
		case l := <-crawled:
			ids = append(ids, l.ID)
			continue
		default:
		}
		break
	}
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("worker crawled leases %v, want [0 1] (rejected 0, then continued to 1)", ids)
	}
	logs, _, err := h.coord.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != len(urls) {
		t.Fatalf("merged %d sessions, want %d", len(logs), len(urls))
	}
}
