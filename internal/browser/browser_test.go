package browser

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/phishserver"
	"repro/internal/raster"
	"repro/internal/site"
)

// testSite builds a 3-page flow: login (double submit not enabled) ->
// payment (inline swap) -> terminal success, with a keylogger on page 1.
func testSite() *site.Site {
	login := `<html><head><title>Sign in</title></head><body>
<script type="application/x-behavior">{"listeners":[{"target":"input","event":"keydown","action":"send-data","endpoint":"/k"}]}</script>
<form id="f" action="/"><div><label>Email</label><input name="email"></div>
<div><label>Password</label><input type="password" name="password"></div>
<button type="submit">Sign in</button></form></body></html>`
	payment := `<html><body><form id="pay" action="/pay">
<div><label>Card number</label><input name="card"></div>
<div><label>CVV</label><input name="cvv"></div>
<button>Pay</button></form></body></html>`
	done := `<html><body><div id="msg">Congratulations! Your account has been verified.</div></body></html>`
	return &site.Site{
		ID: "t1", Host: "phish.test", Brand: "Netflix",
		Pages: []*site.Page{
			{Path: "/", HTML: login, Next: "/pay", Mode: site.NextRedirect,
				Validate: map[string]string{"email": site.ValidateEmail}},
			{Path: "/pay", HTML: payment, Next: "/done", Mode: site.NextInline,
				Validate: map[string]string{"card": site.ValidateLuhn}},
			{Path: "/done", HTML: done},
		},
		Images: map[string][]byte{},
	}
}

func newBrowser(sites ...*site.Site) *Browser {
	reg := phishserver.NewRegistry()
	for _, s := range sites {
		reg.AddSite(s)
	}
	reg.AddBenignHost("netflix.com")
	return New(Options{Transport: phishserver.Transport{Registry: reg}})
}

func TestNavigateAndParse(t *testing.T) {
	b := newBrowser(testSite())
	p, err := b.Navigate("http://phish.test/")
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != 200 {
		t.Errorf("status = %d", p.Status)
	}
	if got := dom.Title(p.Doc); got != "Sign in" {
		t.Errorf("title = %q", got)
	}
	if len(p.VisibleInputs()) != 2 {
		t.Errorf("visible inputs = %d, want 2", len(p.VisibleInputs()))
	}
	if len(p.ListenerLog) != 1 || p.ListenerLog[0].Action != "send-data" {
		t.Errorf("listener log = %+v", p.ListenerLog)
	}
	if len(b.NetLog) == 0 || b.NetLog[0].Kind != "document" {
		t.Errorf("net log = %+v", b.NetLog)
	}
}

func TestTypeFiresKeydownAndKeylogger(t *testing.T) {
	b := newBrowser(testSite())
	p, err := b.Navigate("http://phish.test/")
	if err != nil {
		t.Fatal(err)
	}
	inputs := p.VisibleInputs()
	p.Type(inputs[0], "victim@example.com")
	// Keydown events: one per rune.
	keydowns := 0
	for _, e := range p.EventLog {
		if e.Type == "keydown" {
			keydowns++
		}
	}
	if keydowns != len("victim@example.com") {
		t.Errorf("keydowns = %d", keydowns)
	}
	// The send-data keylogger must have exfiltrated the value pre-submit.
	var beacon *NetRequest
	for i := range b.NetLog {
		if b.NetLog[i].Kind == "beacon" {
			beacon = &b.NetLog[i]
		}
	}
	if beacon == nil {
		t.Fatal("no beacon request logged")
	}
	found := false
	for _, d := range beacon.CarriedData {
		if d == "victim@example.com" {
			found = true
		}
	}
	if !found {
		t.Errorf("beacon did not carry the typed data: %+v", beacon)
	}
	// Value is set on the element.
	if v := inputs[0].AttrOr("value", ""); v != "victim@example.com" {
		t.Errorf("input value = %q", v)
	}
}

func TestSubmitRedirectFlow(t *testing.T) {
	b := newBrowser(testSite())
	p, _ := b.Navigate("http://phish.test/")
	inputs := p.VisibleInputs()
	p.Type(inputs[0], "a.b@c.com")
	p.Type(inputs[1], "hunter2!")
	btn := p.Doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "button" })
	next, err := p.Click(btn)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(next.URL, "/pay") {
		t.Errorf("after submit URL = %q, want /pay", next.URL)
	}
	// Note: the login and payment pages happen to share an identical
	// shape-tag sequence, so the DOM hash alone would NOT detect this
	// transition — the URL change does. This is exactly why the crawler's
	// progress check is "URL changed OR DOM hash changed" (Section 4.4).
	if next.URL == p.URL && next.DOMHash() == p.DOMHash() {
		t.Error("no observable transition at all")
	}
}

func TestValidationRejectionKeepsPage(t *testing.T) {
	b := newBrowser(testSite())
	p, _ := b.Navigate("http://phish.test/")
	inputs := p.VisibleInputs()
	p.Type(inputs[0], "not-an-email") // fails ValidateEmail
	p.Type(inputs[1], "x")
	btn := p.Doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "button" })
	next, err := p.Click(btn)
	if err != nil {
		t.Fatal(err)
	}
	// Server re-serves the identical page: same DOM hash, crawler should
	// retry.
	if next.DOMHash() != p.DOMHash() {
		t.Error("rejected submission should re-serve identical page")
	}
}

func TestInlineTransitionChangesHashNotURL(t *testing.T) {
	b := newBrowser(testSite())
	p, _ := b.Navigate("http://phish.test/pay")
	inputs := p.VisibleInputs()
	p.Type(inputs[0], "4111111111111111") // Luhn-valid
	p.Type(inputs[1], "123")
	btn := p.Doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "button" })
	next, err := p.Click(btn)
	if err != nil {
		t.Fatal(err)
	}
	if next.URL != p.URL {
		t.Errorf("inline transition changed URL: %q -> %q", p.URL, next.URL)
	}
	if next.DOMHash() == p.DOMHash() {
		t.Error("inline transition should change DOM hash")
	}
	if !strings.Contains(next.Doc.InnerText(), "Congratulations") {
		t.Errorf("terminal content missing: %q", next.Doc.InnerText())
	}
}

func TestPressEnterSubmits(t *testing.T) {
	b := newBrowser(testSite())
	p, _ := b.Navigate("http://phish.test/")
	inputs := p.VisibleInputs()
	p.Type(inputs[0], "a.b@c.com")
	p.Type(inputs[1], "pw")
	next, err := p.PressEnter(inputs[1])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(next.URL, "/pay") {
		t.Errorf("Enter did not submit: %q", next.URL)
	}
}

func TestExternalRedirectToBenign(t *testing.T) {
	s := testSite()
	s.Pages[1].Mode = site.NextExternal
	s.Pages[1].Next = "http://netflix.com/login"
	b := newBrowser(s)
	p, _ := b.Navigate("http://phish.test/pay")
	inputs := p.VisibleInputs()
	p.Type(inputs[0], "4111111111111111")
	p.Type(inputs[1], "999")
	btn := p.Doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "button" })
	next, err := p.Click(btn)
	if err != nil {
		t.Fatal(err)
	}
	if next.Host() != "netflix.com" {
		t.Errorf("redirect landed on %q", next.Host())
	}
	if !strings.Contains(next.Doc.InnerText(), "legitimate") {
		t.Error("benign page content missing")
	}
}

func TestSwapBehavior(t *testing.T) {
	html := `<html><body>
<script type="application/x-behavior">{"swaps":[{"trigger":"next","html":"<form id=\"f2\" action=\"/\"><input name=\"card\"><button>Go</button></form>"}]}</script>
<div>Welcome. Click through to continue.</div>
<button id="next" type="button">Next</button>
</body></html>`
	s := &site.Site{ID: "swap", Host: "swap.test",
		Pages:  []*site.Page{{Path: "/", HTML: html}},
		Images: map[string][]byte{}}
	b := newBrowser(s)
	p, _ := b.Navigate("http://swap.test/")
	before := p.DOMHash()
	if len(p.VisibleInputs()) != 0 {
		t.Fatal("click-through page should have no inputs")
	}
	btn := p.Doc.ElementByID("next")
	next, err := p.Click(btn)
	if err != nil {
		t.Fatal(err)
	}
	if next.URL != p.URL {
		t.Error("swap should not change URL")
	}
	if next.DOMHash() == before {
		t.Error("swap should change DOM hash")
	}
	if len(next.VisibleInputs()) != 1 {
		t.Errorf("swapped content inputs = %d", len(next.VisibleInputs()))
	}
}

func TestClickAtZone(t *testing.T) {
	html := `<html><body>
<script type="application/x-behavior">{"clickzones":[{"x":100,"y":150,"w":90,"h":20,"action":"submit","form":"f"}]}</script>
<form id="f" action="/"><input name="email"></form>
<canvas data-label="SUBMIT" width="90" height="20"></canvas>
</body></html>`
	done := `<html><body><div>thanks</div></body></html>`
	s := &site.Site{ID: "cz", Host: "cz.test",
		Pages: []*site.Page{
			{Path: "/", HTML: html, Next: "/d", Mode: site.NextRedirect},
			{Path: "/d", HTML: done},
		},
		Images: map[string][]byte{}}
	b := newBrowser(s)
	p, _ := b.Navigate("http://cz.test/")
	p.Type(p.VisibleInputs()[0], "x@y.zz")
	next, err := p.ClickAt(120, 160)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(next.URL, "/d") {
		t.Errorf("zone click landed at %q", next.URL)
	}
}

func TestClickAtHitTest(t *testing.T) {
	b := newBrowser(testSite())
	p, _ := b.Navigate("http://phish.test/")
	inputs := p.VisibleInputs()
	p.Type(inputs[0], "a.b@c.com")
	p.Type(inputs[1], "pw")
	btn := p.Doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "button" })
	box, ok := p.Render().Layout.Box(btn)
	if !ok {
		t.Fatal("button has no box")
	}
	next, err := p.ClickAt(box.CenterX(), box.CenterY())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(next.URL, "/pay") {
		t.Errorf("hit-test click landed at %q", next.URL)
	}
}

func TestClickNonInteractive(t *testing.T) {
	b := newBrowser(testSite())
	p, _ := b.Navigate("http://phish.test/")
	div := p.Doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "label" })
	if _, err := p.Click(div); err != ErrNoNavigation {
		t.Errorf("clicking label: err = %v, want ErrNoNavigation", err)
	}
	if _, err := p.ClickAt(795, 1); err != ErrNoNavigation {
		t.Errorf("clicking empty space: err = %v", err)
	}
}

func TestUnknownHost(t *testing.T) {
	b := newBrowser(testSite())
	p, err := b.Navigate("http://nonexistent.test/")
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != 502 {
		t.Errorf("unknown host status = %d, want 502", p.Status)
	}
}

func TestImagesFetchedAndRendered(t *testing.T) {
	logo := raster.New(40, 20, raster.Maroon)
	html := `<html><body><img src="/logo.pxi" width="40" height="20"><div>TEXT</div></body></html>`
	s := &site.Site{ID: "img", Host: "img.test",
		Pages:  []*site.Page{{Path: "/", HTML: html}},
		Images: map[string][]byte{"/logo.pxi": raster.Encode(logo)}}
	b := newBrowser(s)
	p, err := b.Navigate("http://img.test/")
	if err != nil {
		t.Fatal(err)
	}
	shot := p.Screenshot()
	found := false
	for _, px := range shot.Pix {
		if px == raster.Maroon {
			found = true
			break
		}
	}
	if !found {
		t.Error("image pixels not rendered")
	}
	// Image request logged.
	sawImage := false
	for _, r := range b.NetLog {
		if r.Kind == "image" && strings.Contains(r.URL, "logo.pxi") {
			sawImage = true
		}
	}
	if !sawImage {
		t.Errorf("image fetch not in net log: %+v", b.NetLog)
	}
}

func TestDoubleLoginFlow(t *testing.T) {
	loginHTML := `<html><body><form id="f" action="/"><input name="email"><input type="password" name="password"><button>Sign in</button></form></body></html>`
	retryHTML := `<html><body><div class="error">Password invalid! Please try again.</div><form id="f" action="/"><input name="email"><input type="password" name="password"><button>Sign in</button></form></body></html>`
	s := &site.Site{ID: "dl", Host: "dl.test",
		Pages: []*site.Page{
			{Path: "/", HTML: loginHTML, Next: "/in", Mode: site.NextRedirect, DoubleLoginHTML: retryHTML},
			{Path: "/in", HTML: `<html><body><div>inside</div></body></html>`},
		},
		Images: map[string][]byte{}}
	b := newBrowser(s)
	p, _ := b.Navigate("http://dl.test/")
	fill := func(pg *Page) {
		ins := pg.VisibleInputs()
		pg.Type(ins[0], "v@w.xy")
		pg.Type(ins[1], "pw")
	}
	fill(p)
	btn := p.Doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "button" })
	second, err := p.Click(btn)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.Doc.InnerText(), "invalid") {
		t.Errorf("first submit should show error page: %q", second.Doc.InnerText())
	}
	// Second attempt proceeds.
	fill(second)
	btn2 := second.Doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "button" })
	third, err := second.Click(btn2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(third.Doc.InnerText(), "inside") {
		t.Errorf("second submit should proceed: %q at %q", third.Doc.InnerText(), third.URL)
	}
}

func TestHTTPErrorTermination(t *testing.T) {
	s := testSite()
	s.Pages[1].FailStatus = 500
	b := newBrowser(s)
	p, _ := b.Navigate("http://phish.test/pay")
	ins := p.VisibleInputs()
	p.Type(ins[0], "4111111111111111")
	p.Type(ins[1], "123")
	btn := p.Doc.FindFirst(func(n *dom.Node) bool { return n.Tag == "button" })
	next, err := p.Click(btn)
	if err != nil {
		t.Fatal(err)
	}
	if next.Status != 500 {
		t.Errorf("status = %d, want 500", next.Status)
	}
}

func TestFreshProfilePerBrowser(t *testing.T) {
	s := testSite()
	reg := phishserver.NewRegistry()
	reg.AddSite(s)
	tr := phishserver.Transport{Registry: reg}
	b1 := New(Options{Transport: tr})
	b1.Navigate("http://phish.test/")
	b2 := New(Options{Transport: tr})
	if len(b2.NetLog) != 0 {
		t.Error("new browser must start with empty logs")
	}
}

func TestSubmitBareInputs(t *testing.T) {
	html := `<html><body><div><label>Email</label><input name="email"></div>
<div><label>Code</label><input name="code"></div></body></html>`
	s := &site.Site{ID: "bare", Host: "bare.test",
		Pages: []*site.Page{
			{Path: "/", HTML: html, Next: "/in", Mode: site.NextRedirect,
				Validate: map[string]string{"email": site.ValidateEmail}},
			{Path: "/in", HTML: "<html><body>in</body></html>"},
		},
		Images: map[string][]byte{}}
	b := newBrowser(s)
	p, _ := b.Navigate("http://bare.test/")
	ins := p.VisibleInputs()
	p.Type(ins[0], "a@b.cd")
	p.Type(ins[1], "123456")
	np, err := p.SubmitBareInputs()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(np.URL, "/in") {
		t.Errorf("bare submit landed at %q", np.URL)
	}
	// Empty page: nothing to submit.
	empty := &site.Site{ID: "e", Host: "e.test",
		Pages:  []*site.Page{{Path: "/", HTML: "<html><body><p>x</p></body></html>"}},
		Images: map[string][]byte{}}
	b2 := newBrowser(empty)
	p2, _ := b2.Navigate("http://e.test/")
	if _, err := p2.SubmitBareInputs(); err != ErrNoNavigation {
		t.Errorf("empty bare submit err = %v", err)
	}
}

func TestRedirectLoopBounded(t *testing.T) {
	// A site that 302s to itself forever must not hang the browser.
	reg := phishserver.NewRegistry()
	b := New(Options{Transport: loopTransport{}})
	_ = reg
	_, err := b.Navigate("http://loop.test/")
	if err == nil {
		t.Fatal("redirect loop should error")
	}
	if !strings.Contains(err.Error(), "redirect") {
		t.Errorf("err = %v", err)
	}
}

type loopTransport struct{}

func (loopTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	rec.Header().Set("Location", "/again")
	rec.WriteHeader(http.StatusFound)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

func TestTypeIntoSelect(t *testing.T) {
	s := testSite()
	s.Pages[0].HTML = `<html><body><form action="/"><select name="state"><option>Alabama</option><option>Alaska</option></select><button>Go</button></form></body></html>`
	b := newBrowser(s)
	p, _ := b.Navigate("http://phish.test/")
	sel := p.Doc.ElementsByTag("select")[0]
	p.Type(sel, "Alaska")
	if v := sel.AttrOr("value", ""); v != "Alaska" {
		t.Errorf("select value = %q", v)
	}
	changed := false
	for _, e := range p.EventLog {
		if e.Type == "change" {
			changed = true
		}
	}
	if !changed {
		t.Error("change event not fired for select")
	}
}

func TestDataURIImage(t *testing.T) {
	logo := raster.New(20, 10, raster.Teal)
	html := `<html><body><img src="` + raster.EncodeDataURI(logo) + `" width="20" height="10"></body></html>`
	s := &site.Site{ID: "du", Host: "du.test",
		Pages:  []*site.Page{{Path: "/", HTML: html}},
		Images: map[string][]byte{}}
	b := newBrowser(s)
	p, err := b.Navigate("http://du.test/")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, px := range p.Screenshot().Pix {
		if px == raster.Teal {
			found = true
			break
		}
	}
	if !found {
		t.Error("data-URI image not rendered")
	}
}

func TestPressEnterWithoutForm(t *testing.T) {
	html := `<html><body><div><input name="q"></div></body></html>`
	s := &site.Site{ID: "nf", Host: "nf.test",
		Pages:  []*site.Page{{Path: "/", HTML: html}},
		Images: map[string][]byte{}}
	b := newBrowser(s)
	p, _ := b.Navigate("http://nf.test/")
	in := p.VisibleInputs()[0]
	if _, err := p.PressEnter(in); err != ErrNoNavigation {
		t.Errorf("formless Enter err = %v", err)
	}
	if _, err := p.PressEnter(nil); err != ErrNoNavigation {
		t.Errorf("nil Enter err = %v", err)
	}
}

func TestClickAnchorWithoutHref(t *testing.T) {
	s := testSite()
	s.Pages[0].HTML = `<html><body><a id="x">dead link</a><a id="y" href="#">hash</a></body></html>`
	b := newBrowser(s)
	p, _ := b.Navigate("http://phish.test/")
	if _, err := p.Click(p.Doc.ElementByID("x")); err != ErrNoNavigation {
		t.Errorf("href-less anchor err = %v", err)
	}
	if _, err := p.Click(p.Doc.ElementByID("y")); err != ErrNoNavigation {
		t.Errorf("hash anchor err = %v", err)
	}
}

func TestButtonDataHref(t *testing.T) {
	s := testSite()
	s.Pages[0].HTML = `<html><body><button id="go" type="button" data-href="/pay">Proceed</button></body></html>`
	b := newBrowser(s)
	p, _ := b.Navigate("http://phish.test/")
	np, err := p.Click(p.Doc.ElementByID("go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(np.URL, "/pay") {
		t.Errorf("data-href click landed at %q", np.URL)
	}
}
