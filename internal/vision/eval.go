package vision

import (
	"sort"

	"repro/internal/metrics"
)

// MatchIoU is the overlap threshold at which a detection counts as matching
// a ground-truth box.
const MatchIoU = 0.5

// EvalResult summarizes detector performance on an annotated set.
type EvalResult struct {
	// APPerClass maps each class to its average precision (Table 5 rows).
	APPerClass map[string]float64
	// SupportPerClass is the ground-truth count per class.
	SupportPerClass map[string]int
	// MeanAP is the unweighted mean over classes with support.
	MeanAP float64
	// TP, FP, FN are aggregate detection counts at the detector threshold.
	TP, FP, FN int
}

// Precision returns aggregate detection precision.
func (e EvalResult) Precision() float64 {
	p, _ := metrics.PrecisionRecall(e.TP, e.FP, e.FN)
	return p
}

// Recall returns aggregate detection recall.
func (e EvalResult) Recall() float64 {
	_, r := metrics.PrecisionRecall(e.TP, e.FP, e.FN)
	return r
}

// Evaluate runs the detector over every example and computes per-class AP
// with greedy IoU matching, the Table 5 protocol.
func Evaluate(d *Detector, examples []Example) EvalResult {
	res := EvalResult{
		APPerClass:      map[string]float64{},
		SupportPerClass: map[string]int{},
	}
	detsByClass := map[string][]metrics.Detection{}
	for _, ex := range examples {
		dets := d.Detect(ex.Image)
		// Sort detections by descending score for greedy matching.
		sort.SliceStable(dets, func(i, j int) bool { return dets[i].Score > dets[j].Score })
		matched := make([]bool, len(ex.Annotations))
		for _, det := range dets {
			tp := false
			for ai, an := range ex.Annotations {
				if matched[ai] || an.Class != det.Class {
					continue
				}
				if det.Box.IoU(an.Box) >= MatchIoU {
					matched[ai] = true
					tp = true
					break
				}
			}
			detsByClass[det.Class] = append(detsByClass[det.Class], metrics.Detection{
				Score: det.Score, TruePositive: tp,
			})
			if tp {
				res.TP++
			} else {
				res.FP++
			}
		}
		for ai, an := range ex.Annotations {
			res.SupportPerClass[an.Class]++
			if !matched[ai] {
				res.FN++
			}
		}
	}
	sum, n := 0.0, 0
	for class, support := range res.SupportPerClass {
		ap := metrics.AveragePrecision(detsByClass[class], support)
		res.APPerClass[class] = ap
		sum += ap
		n++
	}
	if n > 0 {
		res.MeanAP = sum / float64(n)
	}
	return res
}
