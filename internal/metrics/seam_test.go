package metrics

import (
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for driving the metrics seam.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestStartObserveSinceUsesClockSeam is the regression test for the
// wallclock bug: StageTimings.Start and ObserveSince used to call
// time.Now()/time.Since directly, bypassing the metrics clock seam and
// making stage timings untestable. Both must now read the swappable
// package clock, so a fake clock fully determines the observed duration
// and its histogram bucket.
func TestStartObserveSinceUsesClockSeam(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	defer SetClockForTest(clk.now)()

	var st StageTimings
	start := st.Start()
	if !start.Equal(clk.t) {
		t.Fatalf("Start() = %v, want the fake clock's %v", start, clk.t)
	}
	clk.advance(5 * time.Millisecond)
	st.ObserveSince(StageRender, start)
	clk.advance(300 * time.Millisecond)
	start2 := st.Start()
	clk.advance(100 * time.Millisecond)
	st.ObserveSince(StageRender, start2)

	render := findStage(t, st.Snapshot(), "render")
	if render.Count != 2 || render.Total != 105*time.Millisecond {
		t.Fatalf("render = %+v, want Count 2, Total 105ms", render)
	}
	// The fake durations land in exactly the buckets the fake clock
	// dictates: 5ms -> bucket 3 (8ms bound), 100ms -> bucket 7 (128ms).
	if render.Buckets[3] != 1 || render.Buckets[7] != 1 {
		t.Fatalf("buckets = %v, want one observation each in buckets 3 and 7", render.Buckets)
	}
	if p99 := render.P99(); p99 != 128*time.Millisecond {
		t.Fatalf("P99 = %v, want 128ms", p99)
	}
}

// TestSetClockForTestRestores pins the restore contract: after the
// returned func runs, Now() reads the real clock again.
func TestSetClockForTestRestores(t *testing.T) {
	frozen := time.Unix(42, 0)
	restore := SetClockForTest(func() time.Time { return frozen })
	if !Now().Equal(frozen) {
		t.Fatal("Now() did not follow the injected clock")
	}
	restore()
	if Now().Equal(frozen) {
		t.Fatal("restore() did not reinstate the real clock")
	}
}

// TestStopwatchUsesClockSeam: Stopwatch start and Elapsed both read the
// package clock, so elapsed time is exactly the fake clock's advance.
func TestStopwatchUsesClockSeam(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	defer SetClockForTest(clk.now)()
	sw := NewStopwatch()
	clk.advance(7 * time.Second)
	if e := sw.Elapsed(); e != 7*time.Second {
		t.Fatalf("Elapsed() = %v, want exactly 7s", e)
	}
}
