package raster

import (
	"sort"
	"strings"
)

// The bitmap font: each glyph is 5 pixels wide and 7 tall, described by 7
// strings where 'X' marks an on pixel. Lowercase letters render with their
// uppercase glyphs (the OCR engine therefore reads text back uppercased;
// all downstream keyword matching is case-insensitive, so no information
// that matters to the system is lost).
//
// GlyphW/GlyphH describe the glyph cell; AdvanceX/LineH include spacing.
const (
	GlyphW   = 5
	GlyphH   = 7
	AdvanceX = 6 // glyph width + 1 px gap
	LineH    = 9 // glyph height + 2 px leading
)

var glyphs = map[rune][7]string{
	'A':  {".XXX.", "X...X", "X...X", "XXXXX", "X...X", "X...X", "X...X"},
	'B':  {"XXXX.", "X...X", "X...X", "XXXX.", "X...X", "X...X", "XXXX."},
	'C':  {".XXX.", "X...X", "X....", "X....", "X....", "X...X", ".XXX."},
	'D':  {"XXXX.", "X...X", "X...X", "X...X", "X...X", "X...X", "XXXX."},
	'E':  {"XXXXX", "X....", "X....", "XXXX.", "X....", "X....", "XXXXX"},
	'F':  {"XXXXX", "X....", "X....", "XXXX.", "X....", "X....", "X...."},
	'G':  {".XXX.", "X...X", "X....", "X.XXX", "X...X", "X...X", ".XXX."},
	'H':  {"X...X", "X...X", "X...X", "XXXXX", "X...X", "X...X", "X...X"},
	'I':  {"XXXXX", "..X..", "..X..", "..X..", "..X..", "..X..", "XXXXX"},
	'J':  {"..XXX", "...X.", "...X.", "...X.", "...X.", "X..X.", ".XX.."},
	'K':  {"X...X", "X..X.", "X.X..", "XX...", "X.X..", "X..X.", "X...X"},
	'L':  {"X....", "X....", "X....", "X....", "X....", "X....", "XXXXX"},
	'M':  {"X...X", "XX.XX", "X.X.X", "X.X.X", "X...X", "X...X", "X...X"},
	'N':  {"X...X", "XX..X", "X.X.X", "X..XX", "X...X", "X...X", "X...X"},
	'O':  {".XXX.", "X...X", "X...X", "X...X", "X...X", "X...X", ".XXX."},
	'P':  {"XXXX.", "X...X", "X...X", "XXXX.", "X....", "X....", "X...."},
	'Q':  {".XXX.", "X...X", "X...X", "X...X", "X.X.X", "X..X.", ".XX.X"},
	'R':  {"XXXX.", "X...X", "X...X", "XXXX.", "X.X..", "X..X.", "X...X"},
	'S':  {".XXXX", "X....", "X....", ".XXX.", "....X", "....X", "XXXX."},
	'T':  {"XXXXX", "..X..", "..X..", "..X..", "..X..", "..X..", "..X.."},
	'U':  {"X...X", "X...X", "X...X", "X...X", "X...X", "X...X", ".XXX."},
	'V':  {"X...X", "X...X", "X...X", "X...X", "X...X", ".X.X.", "..X.."},
	'W':  {"X...X", "X...X", "X...X", "X.X.X", "X.X.X", "XX.XX", "X...X"},
	'X':  {"X...X", "X...X", ".X.X.", "..X..", ".X.X.", "X...X", "X...X"},
	'Y':  {"X...X", "X...X", ".X.X.", "..X..", "..X..", "..X..", "..X.."},
	'Z':  {"XXXXX", "....X", "...X.", "..X..", ".X...", "X....", "XXXXX"},
	'0':  {".XXX.", "X...X", "X..XX", "X.X.X", "XX..X", "X...X", ".XXX."},
	'1':  {"..X..", ".XX..", "..X..", "..X..", "..X..", "..X..", ".XXX."},
	'2':  {".XXX.", "X...X", "....X", "...X.", "..X..", ".X...", "XXXXX"},
	'3':  {".XXX.", "X...X", "....X", "..XX.", "....X", "X...X", ".XXX."},
	'4':  {"...X.", "..XX.", ".X.X.", "X..X.", "XXXXX", "...X.", "...X."},
	'5':  {"XXXXX", "X....", "XXXX.", "....X", "....X", "X...X", ".XXX."},
	'6':  {".XXX.", "X....", "X....", "XXXX.", "X...X", "X...X", ".XXX."},
	'7':  {"XXXXX", "....X", "...X.", "..X..", ".X...", ".X...", ".X..."},
	'8':  {".XXX.", "X...X", "X...X", ".XXX.", "X...X", "X...X", ".XXX."},
	'9':  {".XXX.", "X...X", "X...X", ".XXXX", "....X", "....X", ".XXX."},
	'.':  {".....", ".....", ".....", ".....", ".....", ".XX..", ".XX.."},
	',':  {".....", ".....", ".....", ".....", "..X..", "..X..", ".X..."},
	':':  {".....", ".XX..", ".XX..", ".....", ".XX..", ".XX..", "....."},
	';':  {".....", ".XX..", ".XX..", ".....", ".XX..", "..X..", ".X..."},
	'-':  {".....", ".....", ".....", "XXXXX", ".....", ".....", "....."},
	'_':  {".....", ".....", ".....", ".....", ".....", ".....", "XXXXX"},
	'/':  {"....X", "....X", "...X.", "..X..", ".X...", "X....", "X...."},
	'\\': {"X....", "X....", ".X...", "..X..", "...X.", "....X", "....X"},
	'@':  {".XXX.", "X...X", "X.XXX", "X.X.X", "X.XXX", "X....", ".XXXX"},
	'?':  {".XXX.", "X...X", "....X", "...X.", "..X..", ".....", "..X.."},
	'!':  {"..X..", "..X..", "..X..", "..X..", "..X..", ".....", "..X.."},
	'(':  {"...X.", "..X..", ".X...", ".X...", ".X...", "..X..", "...X."},
	')':  {".X...", "..X..", "...X.", "...X.", "...X.", "..X..", ".X..."},
	'\'': {"..X..", "..X..", ".X...", ".....", ".....", ".....", "....."},
	'"':  {".X.X.", ".X.X.", ".....", ".....", ".....", ".....", "....."},
	'&':  {".XX..", "X..X.", "X..X.", ".XX..", "X.X.X", "X..X.", ".XX.X"},
	'*':  {".....", "..X..", "X.X.X", ".XXX.", "X.X.X", "..X..", "....."},
	'#':  {".X.X.", "XXXXX", ".X.X.", ".X.X.", ".X.X.", "XXXXX", ".X.X."},
	'$':  {"..X..", ".XXXX", "X.X..", ".XXX.", "..X.X", "XXXX.", "..X.."},
	'%':  {"XX..X", "XX.X.", "...X.", "..X..", ".X...", ".X.XX", "X..XX"},
	'+':  {".....", "..X..", "..X..", "XXXXX", "..X..", "..X..", "....."},
	'=':  {".....", ".....", "XXXXX", ".....", "XXXXX", ".....", "....."},
	'>':  {"X....", ".X...", "..X..", "...X.", "..X..", ".X...", "X...."},
	'<':  {"...X.", "..X..", ".X...", "X....", ".X...", "..X..", "...X."},
	'•':  {".....", ".....", ".XXX.", ".XXX.", ".XXX.", ".....", "....."},
}

// Glyph returns the bitmap for r, uppercasing letters, and reports whether a
// glyph exists.
func Glyph(r rune) ([7]string, bool) {
	if r >= 'a' && r <= 'z' {
		r = r - 'a' + 'A'
	}
	g, ok := glyphs[r]
	return g, ok
}

// HasGlyph reports whether the font can draw r (after case folding).
func HasGlyph(r rune) bool {
	_, ok := Glyph(r)
	return ok || r == ' '
}

// GlyphRunes returns every rune the font defines, in ascending code-point
// order. The order is stable so that consumers resolving ties by table
// position (OCR glyph matching) behave identically across processes.
func GlyphRunes() []rune {
	out := make([]rune, 0, len(glyphs))
	for r := range glyphs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DrawGlyph draws the glyph for r with its top-left at (x, y) in color fg.
// Unknown runes draw as a filled block so they remain visible (and OCR reads
// them as unknown).
func (im *Image) DrawGlyph(r rune, x, y int, fg Color) {
	if r == ' ' {
		return
	}
	g, ok := Glyph(r)
	if !ok {
		im.Fill(R(x, y+1, GlyphW, GlyphH-2), fg)
		return
	}
	for gy := 0; gy < GlyphH; gy++ {
		row := g[gy]
		for gx := 0; gx < GlyphW; gx++ {
			if row[gx] == 'X' {
				im.Set(x+gx, y+gy, fg)
			}
		}
	}
}

// DrawString draws s starting at (x, y) with the given foreground color. It
// does not wrap; callers that need wrapping should split lines themselves.
// The return value is the x coordinate just past the final glyph.
func (im *Image) DrawString(s string, x, y int, fg Color) int {
	cx := x
	for _, r := range s {
		im.DrawGlyph(r, cx, y, fg)
		cx += AdvanceX
	}
	return cx
}

// StringWidth returns the pixel width DrawString would occupy for s.
func StringWidth(s string) int {
	n := 0
	for range s {
		n++
	}
	return n * AdvanceX
}

// WrapString splits s into lines no wider than maxW pixels, breaking at
// spaces where possible.
func WrapString(s string, maxW int) []string {
	if maxW < AdvanceX {
		maxW = AdvanceX
	}
	perLine := maxW / AdvanceX
	var lines []string
	for _, paragraph := range strings.Split(s, "\n") {
		words := strings.Fields(paragraph)
		if len(words) == 0 {
			lines = append(lines, "")
			continue
		}
		cur := ""
		for _, w := range words {
			switch {
			case cur == "" && len(w) <= perLine:
				cur = w
			case cur == "":
				// A single over-long word: hard-split.
				for len(w) > perLine {
					lines = append(lines, w[:perLine])
					w = w[perLine:]
				}
				cur = w
			case len(cur)+1+len(w) <= perLine:
				cur += " " + w
			default:
				lines = append(lines, cur)
				cur = ""
				for len(w) > perLine {
					lines = append(lines, w[:perLine])
					w = w[perLine:]
				}
				cur = w
			}
		}
		if cur != "" {
			lines = append(lines, cur)
		}
	}
	return lines
}
