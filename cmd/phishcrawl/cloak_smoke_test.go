package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// parseCloakBanner parses the "Cloak: ..." line from a run's output.
func parseCloakBanner(t *testing.T, out string) (cloaked, sites int) {
	t.Helper()
	i := strings.Index(out, "Cloak: ")
	if i < 0 {
		t.Fatalf("no cloak banner in output:\n%s", out)
	}
	line := out[i:]
	if j := strings.IndexByte(line, '\n'); j >= 0 {
		line = line[:j]
	}
	var rate float64
	var retries int
	if _, err := fmt.Sscanf(line, "Cloak: %d of %d sites cloaked (rate %g, retries %d)",
		&cloaked, &sites, &rate, &retries); err != nil {
		t.Fatalf("unparseable cloak banner %q: %v", line, err)
	}
	return cloaked, sites
}

// benignURLs reads an export and returns the seed URLs whose session ended
// on a benign/parked page — the cloaking gate's wins.
func benignURLs(t *testing.T, path string) map[string]bool {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	set := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		var rec struct {
			SeedURL string
			Outcome string
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Outcome == "benign" {
			set[rec.SeedURL] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return set
}

// TestCloakSmoke is the cloaking acceptance run wired into `make
// cloak-smoke` (and `make chaos`): on a corpus where most campaigns cloak,
// an honest crawl must lose the majority of its sites to benign decoys, the
// adaptive uncloaking loop must recover >= 90% of those losses into real
// measurements, and the adaptive crawl must stay byte-deterministic —
// identical exports at 1 and 30 workers, and across a SIGKILL + torn-tail +
// resume of a journaled run.
func TestCloakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary five times")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "phishcrawl")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building phishcrawl: %v\n%s", err, out)
	}

	args := []string{"-sites", "140", "-cloak-rate", "0.7", "-detector-train", "150", "-seed", "42"}
	run := func(extra ...string) string {
		out, err := exec.Command(bin, append(append([]string{}, args...), extra...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("phishcrawl %v: %v\n%s", extra, err, out)
		}
		return string(out)
	}

	// Honest crawl: no retries. The gates must actually bite — a majority
	// of the corpus hides behind decoys the honest profile cannot pass.
	honest := filepath.Join(dir, "honest.jsonl")
	outHonest := run("-workers", "30", "-o", honest)
	cloaked, sites := parseCloakBanner(t, outHonest)
	if sites != 140 || cloaked*2 < sites {
		t.Fatalf("corpus has %d/%d cloaked sites, want >= 50%%", cloaked, sites)
	}
	lost := benignURLs(t, honest)
	if len(lost) < cloaked {
		t.Fatalf("honest crawl saw %d benign sessions for %d cloaked sites", len(lost), cloaked)
	}

	// Adaptive crawl at two worker counts: the mutation schedule is a pure
	// function of per-session seeds, so the exports must be byte-identical.
	ad1 := filepath.Join(dir, "adaptive-w1.jsonl")
	ad30 := filepath.Join(dir, "adaptive-w30.jsonl")
	run("-cloak-retries", "5", "-workers", "1", "-o", ad1)
	run("-cloak-retries", "5", "-workers", "30", "-o", ad30)
	b1 := readExport(t, ad1)
	b30 := readExport(t, ad30)
	if b1 != b30 {
		t.Fatal("adaptive exports differ between 1 and 30 workers")
	}

	// Recovery: >= 90% of the URLs the honest crawl lost to decoys must
	// reach a real measurement under the adaptive loop.
	covered := detectedURLs(t, ad30)
	recovered := 0
	for u := range lost {
		if covered[u] {
			recovered++
		}
	}
	if recovered*10 < len(lost)*9 {
		t.Fatalf("adaptive loop recovered %d of %d cloaked URLs, want >= 90%%", recovered, len(lost))
	}

	// Kill/resume leg: journal an adaptive run, SIGKILL it once the journal
	// holds data, tear the tail mid-record, resume with the same flags, and
	// require the merged export to match the clean run byte-for-byte (the
	// journaled cloak config record must verify against this run's).
	jdir := filepath.Join(dir, "journal")
	jargs := append(append([]string{}, args...), "-cloak-retries", "5", "-workers", "30", "-journal", jdir, "-journal-sync", "group")
	cmd := exec.Command(bin, jargs...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(90 * time.Second)
	for {
		var total int64
		for _, seg := range segmentFiles(jdir) {
			if fi, err := os.Stat(seg); err == nil {
				total += fi.Size()
			}
		}
		if total > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("journal never grew; crawl did not start?")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	segs := segmentFiles(jdir)
	if len(segs) == 0 {
		t.Fatal("no journal segments after kill")
	}
	last := segs[len(segs)-1]
	if fi, err := os.Stat(last); err == nil && fi.Size() > 1 {
		if err := os.Truncate(last, fi.Size()-1); err != nil {
			t.Fatal(err)
		}
	}

	resumed := filepath.Join(dir, "adaptive-resumed.jsonl")
	out := run("-cloak-retries", "5", "-workers", "30", "-journal", jdir, "-resume", "-o", resumed)
	if !strings.Contains(out, "Journal: resumed") {
		t.Fatalf("resume banner missing from output:\n%s", out)
	}
	if rb := readExport(t, resumed); rb != b30 {
		t.Fatal("resumed adaptive export diverges from the clean run")
	}
}
