package metrics

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageTimingsObserve(t *testing.T) {
	var st StageTimings
	st.Observe(StageRender, 10*time.Millisecond)
	st.Observe(StageRender, 20*time.Millisecond)
	st.Observe(StageDetect, 5*time.Millisecond)

	snap := st.Snapshot()
	if len(snap) != int(numStages) {
		t.Fatalf("snapshot has %d stages, want %d", len(snap), numStages)
	}
	byName := map[string]StageStat{}
	for _, s := range snap {
		byName[s.Stage] = s
	}
	r := byName["render"]
	if r.Count != 2 || r.Total != 30*time.Millisecond || r.Mean() != 15*time.Millisecond {
		t.Errorf("render = %+v", r)
	}
	if d := byName["detect"]; d.Count != 1 || d.Total != 5*time.Millisecond {
		t.Errorf("detect = %+v", d)
	}
	// Unobserved stages are present with zero counts (and zero Mean).
	if o := byName["ocr"]; o.Count != 0 || o.Total != 0 || o.Mean() != 0 {
		t.Errorf("ocr = %+v", o)
	}
}

func TestStageTimingsNilSafe(t *testing.T) {
	var st *StageTimings
	if !st.Start().IsZero() {
		t.Error("nil collector Start is not zero")
	}
	st.Observe(StageOCR, time.Second)                     // must not panic
	st.ObserveSince(StageOCR, time.Now())                 // must not panic
	(&StageTimings{}).ObserveSince(StageOCR, time.Time{}) // zero start is a no-op
	if st.Snapshot() != nil {
		t.Error("nil collector snapshot not nil")
	}
}

func TestStageTimingsConcurrent(t *testing.T) {
	var st StageTimings
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				st.Observe(StageSubmit, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	for _, s := range st.Snapshot() {
		if s.Stage != "submit" {
			continue
		}
		if s.Count != workers*per || s.Total != workers*per*time.Microsecond {
			t.Errorf("submit = %+v", s)
		}
	}
}

func TestStageTableAndNames(t *testing.T) {
	var st StageTimings
	st.Observe(StageSubmit, 2*time.Millisecond)
	out := StageTable(st.Snapshot())
	for _, name := range []string{"render", "ocr", "detect", "submit"} {
		if !strings.Contains(out, name) {
			t.Errorf("table missing stage %q:\n%s", name, out)
		}
	}
	if StageRender.String() != "render" || Stage(99).String() != "stage(99)" {
		t.Error("stage names wrong")
	}
}

func TestStageTimingsMerge(t *testing.T) {
	var a, b StageTimings
	a.Observe(StageRender, 10*time.Millisecond)
	a.Observe(StageOCR, time.Millisecond)
	b.Observe(StageRender, 5*time.Millisecond)
	b.Observe(StageRender, 5*time.Millisecond)
	b.Observe(StageDetect, 2*time.Millisecond)
	a.Merge(&b)
	for _, s := range a.Snapshot() {
		switch s.Stage {
		case "render":
			if s.Count != 3 || s.Total != 20*time.Millisecond {
				t.Errorf("render = %+v", s)
			}
		case "ocr":
			if s.Count != 1 || s.Total != time.Millisecond {
				t.Errorf("ocr = %+v", s)
			}
		case "detect":
			if s.Count != 1 || s.Total != 2*time.Millisecond {
				t.Errorf("detect = %+v", s)
			}
		}
	}
	// b is untouched by the merge.
	for _, s := range b.Snapshot() {
		if s.Stage == "render" && s.Count != 2 {
			t.Errorf("merge mutated the source: %+v", s)
		}
	}
	// Nil on either side is a no-op, not a crash.
	var nilT *StageTimings
	nilT.Merge(&a)
	a.Merge(nil)
}

func TestMergeStageStats(t *testing.T) {
	a := []StageStat{
		{Stage: "render", Count: 2, Total: 20 * time.Millisecond},
		{Stage: "ocr", Count: 1, Total: time.Millisecond},
	}
	b := []StageStat{
		{Stage: "ocr", Count: 3, Total: 3 * time.Millisecond},
		{Stage: "submit", Count: 5, Total: 5 * time.Millisecond},
	}
	got := MergeStageStats(a, b)
	want := []StageStat{
		{Stage: "render", Count: 2, Total: 20 * time.Millisecond},
		{Stage: "ocr", Count: 4, Total: 4 * time.Millisecond},
		{Stage: "submit", Count: 5, Total: 5 * time.Millisecond},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged = %+v, want %+v", got, want)
	}
	// Inputs must not be mutated (aliasing bug guard).
	if a[1].Count != 1 {
		t.Error("MergeStageStats mutated its input")
	}
	// Empty sides.
	if got := MergeStageStats(nil, b); !reflect.DeepEqual(got, b) {
		t.Errorf("nil+b = %+v", got)
	}
	if got := MergeStageStats(a, nil); !reflect.DeepEqual(got, a) {
		t.Errorf("a+nil = %+v", got)
	}
}
