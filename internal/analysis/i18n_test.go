package analysis_test

// End-to-end test of the Section 6 multi-language extension: the corpus
// contains French- and Spanish-labelled campaigns; the multilingual field
// classifier must classify their fields, while a monolingual (English-only)
// classifier — the paper's published limitation — loses most of them.

import (
	"testing"

	"repro/internal/fielddata"
	"repro/internal/fieldspec"
	"repro/internal/site"
)

func TestMultilingualFieldClassification(t *testing.T) {
	p := pipeline(t)
	truths := map[string]site.Truth{}
	for _, s := range p.Corpus.Sites {
		truths[s.ID] = s.Truth
	}
	perLang := map[string][2]int{} // lang -> [classified, total]
	for _, l := range p.Logs {
		lang := truths[l.SiteID].Language
		if lang == "" {
			continue
		}
		c := perLang[lang]
		for _, pg := range l.Pages {
			for _, f := range pg.Fields {
				c[1]++
				if f.Label != fieldspec.Unknown {
					c[0]++
				}
			}
		}
		perLang[lang] = c
	}
	for _, lang := range []string{"en", "fr", "es"} {
		c := perLang[lang]
		if c[1] == 0 {
			t.Errorf("no %s fields in corpus", lang)
			continue
		}
		rate := float64(c[0]) / float64(c[1])
		if rate < 0.6 {
			t.Errorf("%s classification coverage = %.2f (%d/%d)", lang, rate, c[0], c[1])
		}
	}
}

func TestMonolingualClassifierMissesLocalizedLabels(t *testing.T) {
	mono, err := fielddata.TrainDefault(3)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := fielddata.TrainMultilingual(3)
	if err != nil {
		t.Fatal(err)
	}
	localized := map[string]fieldspec.Type{
		"mot de passe":           fieldspec.Password,
		"numero de carte":        fieldspec.Card,
		"cryptogramme visuel":    fieldspec.CVV,
		"contrasena":             fieldspec.Password,
		"numero de tarjeta":      fieldspec.Card,
		"codigo de verificacion": fieldspec.Code,
	}
	monoHits, multiHits := 0, 0
	for text, want := range localized {
		if got, _ := mono.PredictThreshold(text, 0.8, "unknown"); got == string(want) {
			monoHits++
		}
		if got, conf := multi.PredictThreshold(text, 0.8, "unknown"); got == string(want) {
			multiHits++
		} else {
			t.Errorf("multilingual Predict(%q) = %s (%.2f), want %s", text, got, conf, want)
		}
	}
	if monoHits >= multiHits {
		t.Errorf("monolingual classifier (%d/%d) should underperform multilingual (%d/%d) on localized labels",
			monoHits, len(localized), multiHits, len(localized))
	}
}

func TestEnglishAccuracySurvivesMultilingualTraining(t *testing.T) {
	multi, err := fielddata.TrainMultilingual(3)
	if err != nil {
		t.Fatal(err)
	}
	_, test := fielddata.Split(fielddata.Corpus(99))
	correct := 0
	for _, s := range test {
		if got, _ := multi.Predict(s.Text); got == s.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.85 {
		t.Errorf("English accuracy after multilingual training = %.2f", acc)
	}
}
