// Command phishanalyze runs the measurement end-to-end and prints any of
// the paper's tables and figures, with the paper's published values beside
// the measured ones.
//
// Usage:
//
//	phishanalyze -sites 2000 -all
//	phishanalyze -sites 2000 -table 3 -figure 8
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/brands"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/report"
	"repro/internal/sessionio"
)

func main() {
	numSites := flag.Int("sites", 1000, "corpus size")
	seed := flag.Int64("seed", 42, "seed")
	workers := flag.Int("workers", 30, "parallel crawl sessions")
	table := flag.Int("table", 0, "print one table (1-7)")
	figure := flag.Int("figure", 0, "print one figure (7-9)")
	all := flag.Bool("all", false, "print everything")
	in := flag.String("i", "", "analyze previously saved session logs (JSON Lines) instead of crawling")
	flag.Parse()
	if *table == 0 && *figure == 0 {
		*all = true
	}

	p, err := core.NewPipeline(core.Options{NumSites: *numSites, Seed: *seed, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	var logs []*crawler.SessionLog
	if *in != "" {
		logs, err = sessionio.ReadFile(*in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d saved sessions from %s (corpus regenerated for models only)\n\n", len(logs), *in)
	} else {
		p.Crawl()
		logs = p.Logs
	}
	n := *numSites

	want := func(t int) bool { return *all || *table == t }
	wantFig := func(f int) bool { return *all || *figure == f }

	if want(1) {
		fmt.Println(report.Table1(analysis.Summarize(p.Feed, logs), n))
	}
	if want(2) {
		fmt.Println(report.Table2(analysis.CategoryCounts(logs), n))
	}
	if want(3) {
		fmt.Println(report.Table3(analysis.Cloning(logs, p.Gallery, brands.Table3Brands(), 50)))
	}
	tc := analysis.Termination(logs, p.TermClassifier)
	if want(4) {
		fmt.Println(report.Table4(tc, n))
	}
	if want(7) {
		fmt.Println(report.Table7(analysis.BrandCounts(logs), n))
	}
	if wantFig(7) {
		fmt.Println(report.Figure7(analysis.FieldsAcrossPages(logs), n))
	}
	if wantFig(8) {
		fmt.Println(report.Figure8(analysis.PageCountHistogram(logs), n))
	}
	if wantFig(9) {
		fmt.Println(report.Figure9(analysis.FieldsPerStage(logs)))
	}
	if *all {
		fmt.Println(report.SectionRates(
			analysis.Obfuscation(logs),
			analysis.Keylogging(logs),
			analysis.DoubleLoginCount(logs),
			analysis.ClickThrough(logs),
			analysis.Captchas(logs, p.CaptchaAnalysisOptions()),
			analysis.TwoFactor(logs),
			tc, n))
		fmt.Println(report.SubmitMethods(analysis.SubmitMethodBreakdown(logs)))
		fmt.Printf("Campaign clusters (perceptual hash): %d measured | %d generated | 8,472 paper\n",
			analysis.ClusterCampaigns(logs), p.Corpus.Campaigns)
	}
}
