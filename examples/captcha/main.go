// Captcha reproduces the Table 5 experiment at a small scale: generate
// annotated web pages containing logos, buttons, and the eight CAPTCHA
// styles; fine-tune the object detector on them; and report per-class
// average precision on a held-out set — then detect a CAPTCHA on a fresh
// page and apply the verification heuristics of Section 5.3.2.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/captcha"
	"repro/internal/pagegen"
	"repro/internal/phash"
	"repro/internal/report"
	"repro/internal/vision"
)

func main() {
	fmt.Println("Training detector on 800 generated pages...")
	det, err := vision.Train(pagegen.GenerateSet(800, 1, pagegen.Config{}), 2)
	if err != nil {
		log.Fatal(err)
	}
	test := pagegen.GenerateSet(200, 3, pagegen.Config{})
	res := vision.Evaluate(det, test)
	fmt.Println(report.Table5(res))

	// Detect on one fresh page and verify visually.
	rng := rand.New(rand.NewSource(9))
	ex := pagegen.Generate(rng, pagegen.Config{CaptchaProb: 1})
	fmt.Println("Detections on a fresh page:")
	var exemplars []phash.Hash
	for _, kind := range captcha.VisualKinds() {
		for _, crop := range pagegen.CaptchaCrops(kind, 10, 4) {
			exemplars = append(exemplars, phash.Compute(crop))
		}
	}
	for _, d := range det.Detect(ex.Image) {
		line := fmt.Sprintf("  %-13s score %.2f at %v", d.Class, d.Score, d.Box)
		if k, ok := kindOf(d.Class); ok && k.IsVisual() {
			n := phash.NearCount(phash.Compute(ex.Image.Sub(d.Box)), exemplars, phash.DefaultSimilarityThreshold)
			line += fmt.Sprintf(" — pHash matches %d training exemplars (>=3 verifies)", n)
		}
		fmt.Println(line)
	}
	fmt.Println("\nGround truth:")
	for _, an := range ex.Annotations {
		fmt.Printf("  %-13s at %v\n", an.Class, an.Box)
	}
}

func kindOf(class string) (captcha.Kind, bool) {
	for _, k := range captcha.AllKinds() {
		if k.String() == class {
			return k, true
		}
	}
	return 0, false
}
