// Package faker forges syntactically valid data for every field type in the
// taxonomy, playing the role of the Faker library in Section 4.3 of the
// paper: the crawler maps each classified input field to a generator here and
// types the result into the form. Generated values are plausible enough to
// pass the client-side validation phishing kits perform (Luhn-valid card
// numbers, well-formed emails, digit-count-correct phones and SSNs) while
// being entirely fictitious.
package faker

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/fieldspec"
)

// Faker generates forged data. It is deterministic for a given seed, and safe
// to use from a single goroutine (use New per crawler session).
type Faker struct {
	rng *rand.Rand
}

// New returns a Faker seeded with seed.
func New(seed int64) *Faker {
	return &Faker{rng: rand.New(rand.NewSource(seed))}
}

var (
	firstNames = []string{
		"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
		"Linda", "David", "Elizabeth", "William", "Barbara", "Richard",
		"Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
		"Daniel", "Nancy", "Matthew", "Lisa", "Anthony", "Betty",
	}
	lastNames = []string{
		"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
		"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
		"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson",
		"Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Clark",
	}
	emailDomains = []string{
		"gmail.com", "yahoo.com", "outlook.com", "hotmail.com", "aol.com",
		"icloud.com", "mail.com", "protonmail.com",
	}
	streets = []string{
		"Main St", "Oak Ave", "Maple Dr", "Cedar Ln", "Park Blvd", "Elm St",
		"Washington Ave", "Lake Rd", "Hill St", "Sunset Blvd", "2nd Ave",
		"River Rd", "Church St", "Highland Ave",
	}
	cities = []string{
		"Springfield", "Riverton", "Fairview", "Georgetown", "Clinton",
		"Madison", "Salem", "Franklin", "Arlington", "Ashland", "Dover",
		"Hudson", "Kingston", "Milton", "Newport", "Oxford",
	}
	states = []string{
		"AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI",
		"ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI",
		"MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY", "NC",
		"ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT",
		"VT", "VA", "WA", "WV", "WI", "WY",
	}
	questions = []string{
		"What was the name of your first pet?",
		"What is your mother's maiden name?",
		"What city were you born in?",
		"What was your first car?",
		"What is your favorite teacher's name?",
	}
	answers = []string{
		"Rex", "Buttons", "Smokey", "Bella", "Charlie", "Luna", "Max",
		"Whiskers", "Shadow", "Ginger",
	}
	passwordWords = []string{
		"Sunshine", "Dragon", "Monkey", "Football", "Princess", "Shadow",
		"Master", "Flower", "Winter", "Summer",
	}
	searchTerms = []string{
		"order status", "account help", "reset instructions", "pricing",
		"contact support", "shipping times",
	}
	// cardPrefixes gives IIN prefixes with realistic lengths: Visa 4,
	// Mastercard 51-55, Amex-excluded (different length handling kept simple).
	cardPrefixes = []string{"4", "51", "52", "53", "54", "55"}
)

func (f *Faker) pick(list []string) string {
	return list[f.rng.Intn(len(list))]
}

func (f *Faker) digits(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('0' + f.rng.Intn(10)))
	}
	return b.String()
}

// FirstName returns a forged first name.
func (f *Faker) FirstName() string { return f.pick(firstNames) }

// LastName returns a forged last name.
func (f *Faker) LastName() string { return f.pick(lastNames) }

// FullName returns a forged "First Last" name.
func (f *Faker) FullName() string { return f.FirstName() + " " + f.LastName() }

// Email returns a well-formed forged email address.
func (f *Faker) Email() string {
	return fmt.Sprintf("%s.%s%d@%s",
		strings.ToLower(f.FirstName()),
		strings.ToLower(f.LastName()),
		f.rng.Intn(90)+10,
		f.pick(emailDomains))
}

// UserID returns a plausible login handle.
func (f *Faker) UserID() string {
	return strings.ToLower(f.FirstName()) + f.digits(3)
}

// Password returns a password that satisfies common complexity rules (length
// >= 10, mixed case, digit, symbol).
func (f *Faker) Password() string {
	return f.pick(passwordWords) + f.digits(2) + "!" + f.pick(passwordWords)[:2]
}

// Phone returns a NANP-shaped phone number.
func (f *Faker) Phone() string {
	// Area codes don't start with 0 or 1.
	area := fmt.Sprintf("%d%s", f.rng.Intn(8)+2, f.digits(2))
	exch := fmt.Sprintf("%d%s", f.rng.Intn(8)+2, f.digits(2))
	return fmt.Sprintf("%s-%s-%s", area, exch, f.digits(4))
}

// Address returns a street address.
func (f *Faker) Address() string {
	return fmt.Sprintf("%d %s", f.rng.Intn(9899)+100, f.pick(streets))
}

// City returns a city name.
func (f *Faker) City() string { return f.pick(cities) }

// State returns a US state abbreviation.
func (f *Faker) State() string { return f.pick(states) }

// Zip returns a 5-digit ZIP code.
func (f *Faker) Zip() string { return f.digits(5) }

// Question returns a security question.
func (f *Faker) Question() string { return f.pick(questions) }

// Answer returns a security answer.
func (f *Faker) Answer() string { return f.pick(answers) }

// DateOfBirth returns an MM/DD/YYYY date for a plausible adult.
func (f *Faker) DateOfBirth() string {
	return fmt.Sprintf("%02d/%02d/%d", f.rng.Intn(12)+1, f.rng.Intn(28)+1, 1950+f.rng.Intn(50))
}

// Code returns a 6-digit verification code.
func (f *Faker) Code() string { return f.digits(6) }

// License returns a driver's-license-shaped identifier.
func (f *Faker) License() string {
	return string(rune('A'+f.rng.Intn(26))) + f.digits(7)
}

// SSN returns an SSN-shaped number avoiding invalid areas 000, 666, 9xx.
func (f *Faker) SSN() string {
	area := f.rng.Intn(665-1) + 1 // 001..664
	return fmt.Sprintf("%03d-%02d-%04d", area, f.rng.Intn(99)+1, f.rng.Intn(9999)+1)
}

// CardNumber returns a Luhn-valid 16-digit payment card number.
func (f *Faker) CardNumber() string {
	prefix := f.pick(cardPrefixes)
	body := prefix + f.digits(15-len(prefix))
	return body + luhnCheckDigit(body)
}

// ExpDate returns an MM/YY card expiration in the future relative to a fixed
// reference year, keeping the generator deterministic.
func (f *Faker) ExpDate() string {
	return fmt.Sprintf("%02d/%02d", f.rng.Intn(12)+1, 27+f.rng.Intn(5))
}

// CVV returns a 3-digit card verification value.
func (f *Faker) CVV() string { return f.digits(3) }

// SearchTerm returns an innocuous search query.
func (f *Faker) SearchTerm() string { return f.pick(searchTerms) }

// ForType returns forged data appropriate for the given field type. For
// Unknown it returns the crawler's predetermined default string.
func (f *Faker) ForType(t fieldspec.Type) string {
	switch t {
	case fieldspec.Email:
		return f.Email()
	case fieldspec.UserID:
		return f.UserID()
	case fieldspec.Password:
		return f.Password()
	case fieldspec.Name:
		return f.FullName()
	case fieldspec.Address:
		return f.Address()
	case fieldspec.Phone:
		return f.Phone()
	case fieldspec.City:
		return f.City()
	case fieldspec.State:
		return f.State()
	case fieldspec.Question:
		return f.Question()
	case fieldspec.Answer:
		return f.Answer()
	case fieldspec.Date:
		return f.DateOfBirth()
	case fieldspec.Code:
		return f.Code()
	case fieldspec.License:
		return f.License()
	case fieldspec.SSN:
		return f.SSN()
	case fieldspec.Card:
		return f.CardNumber()
	case fieldspec.ExpDate:
		return f.ExpDate()
	case fieldspec.CVV:
		return f.CVV()
	case fieldspec.Search:
		return f.SearchTerm()
	default:
		return fieldspec.DefaultValue
	}
}

// luhnCheckDigit returns the digit that makes body+digit Luhn-valid.
func luhnCheckDigit(body string) string {
	sum := 0
	// Positions counted from the right of the final number; the check digit
	// will be position 1, so body digits start at position 2.
	double := true
	for i := len(body) - 1; i >= 0; i-- {
		d := int(body[i] - '0')
		if double {
			d *= 2
			if d > 9 {
				d -= 9
			}
		}
		sum += d
		double = !double
	}
	return fmt.Sprintf("%d", (10-sum%10)%10)
}

// LuhnValid reports whether s (digits only) passes the Luhn checksum. It is
// exported so phishing-site form validators and tests can share it.
func LuhnValid(s string) bool {
	if len(s) == 0 {
		return false
	}
	sum := 0
	double := false
	for i := len(s) - 1; i >= 0; i-- {
		c := s[i]
		if c < '0' || c > '9' {
			return false
		}
		d := int(c - '0')
		if double {
			d *= 2
			if d > 9 {
				d -= 9
			}
		}
		sum += d
		double = !double
	}
	return sum%10 == 0
}
