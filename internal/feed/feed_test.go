package feed

import (
	"strings"
	"testing"

	"repro/internal/sitegen"
)

func TestFromCorpusRatios(t *testing.T) {
	c := sitegen.Generate(sitegen.ScaledParams(500, 1))
	f := FromCorpus(c, 2)
	if f.SeedCount() <= 500 {
		t.Errorf("seed count = %d, want > 500 (noise included)", f.SeedCount())
	}
	filtered := f.Filter()
	if len(filtered) != 500 {
		t.Errorf("filtered = %d, want 500", len(filtered))
	}
	// The seed/filtered ratio matches Table 1's 56,027/51,859.
	wantNoise := 500 * (sitegen.PaperSeedURLs - sitegen.PaperFilteredSites) / sitegen.PaperFilteredSites
	if got := f.SeedCount() - 500; got != wantNoise {
		t.Errorf("noise = %d, want %d", got, wantNoise)
	}
}

func TestEntriesCarryMetadata(t *testing.T) {
	c := sitegen.Generate(sitegen.ScaledParams(50, 3))
	f := FromCorpus(c, 4)
	for _, e := range f.Filter() {
		if e.Site == nil || e.Brand == "" || e.Sector == "" {
			t.Fatalf("incomplete entry: %+v", e)
		}
		if !strings.HasPrefix(e.URL, "http://") {
			t.Errorf("bad URL %q", e.URL)
		}
		if e.URL != e.Site.SeedURL() {
			t.Errorf("URL mismatch: %q vs %q", e.URL, e.Site.SeedURL())
		}
	}
}

func TestNoiseEntriesAreBenign(t *testing.T) {
	c := sitegen.Generate(sitegen.ScaledParams(200, 5))
	f := FromCorpus(c, 6)
	noise := 0
	for _, e := range f.Entries {
		if e.Noise {
			noise++
			if e.Site != nil {
				t.Error("noise entry has a backing site")
			}
			if !strings.Contains(e.URL, "example.") {
				t.Errorf("noise URL %q not on a benign host", e.URL)
			}
		}
	}
	if noise == 0 {
		t.Error("no noise entries")
	}
}

func TestURLsMatchFilter(t *testing.T) {
	c := sitegen.Generate(sitegen.ScaledParams(30, 7))
	f := FromCorpus(c, 8)
	urls := f.URLs()
	filtered := f.Filter()
	if len(urls) != len(filtered) {
		t.Fatalf("len mismatch: %d vs %d", len(urls), len(filtered))
	}
	for i := range urls {
		if urls[i] != filtered[i].URL {
			t.Fatal("order mismatch")
		}
	}
}

func TestShuffleDeterministic(t *testing.T) {
	c := sitegen.Generate(sitegen.ScaledParams(50, 9))
	a := FromCorpus(c, 10)
	b := FromCorpus(c, 10)
	for i := range a.Entries {
		if a.Entries[i].URL != b.Entries[i].URL {
			t.Fatal("same seed produced different feed order")
		}
	}
}
