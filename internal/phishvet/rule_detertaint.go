package phishvet

import (
	"go/ast"
	"go/types"
)

// The detertaint rule reports interprocedural flows from nondeterminism
// sources to the surfaces the reproduction pins byte-for-byte. The
// syntactic wallclock/globalrand rules stay on as fast-path checks — they
// flag the read itself at near-zero cost — but they cannot see a clock
// value that legally enters through the metrics seam and then crosses two
// call boundaries into a journal append. This rule follows the value: a
// metrics.Stopwatch elapsed reading built into farm.Stats three frames
// away from the journal.AppendStats call is a finding at the append.
//
// Sources, sinks, and the engine's precision trade-offs are documented in
// taint.go.

func detertaintRule() Rule {
	return Rule{
		Name: "detertaint",
		Doc:  "nondeterministic values (clock, rand, pid) flowing into journaled/exported output",
		Run: func(p *Pass) {
			ta := p.taintState()
			for _, f := range p.Pkg.Files {
				for _, d := range f.Decls {
					decl, ok := d.(*ast.FuncDecl)
					if !ok || decl.Body == nil {
						continue
					}
					fn, ok := p.Pkg.Info.Defs[decl.Name].(*types.Func)
					if !ok {
						continue
					}
					for _, hit := range ta.summary(fn).hits {
						if hit.via != "" {
							p.Reportf(hit.pos,
								"nondeterministic value (wall clock, global rand, or process identity) reaches %s through %s: journaled/exported bytes must be a pure function of the feed seed",
								hit.sink, hit.via)
							continue
						}
						p.Reportf(hit.pos,
							"nondeterministic value (wall clock, global rand, or process identity) reaches %s: journaled/exported bytes must be a pure function of the feed seed",
							hit.sink)
					}
				}
			}
		},
	}
}
