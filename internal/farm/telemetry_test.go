package farm

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/crawler"
)

// TestStagesIdenticalAcrossWorkerCounts pins the telemetry acceptance
// property: stage latency histograms (and therefore p50/p90/p99) derive
// from session-logical traces, so a 1-worker run and a 30-worker run of
// the same feed report byte-identical Stats.Stages — impossible with
// wall-clock stage timing.
func TestStagesIdenticalAcrossWorkerCounts(t *testing.T) {
	reg, urls := streamFixture(t, 400, 30)
	_, serial := Run(Config{Workers: 1, Crawler: testCrawler(reg, nil)}, urls)
	_, wide := Run(Config{Workers: 30, Crawler: testCrawler(reg, nil)}, urls)

	a, err := json.Marshal(serial.Stages)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(wide.Stages)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("Stages diverge across worker counts:\n1:  %s\n30: %s", a, b)
	}
	var renderP50 bool
	for _, s := range serial.Stages {
		if s.Stage == "render" && s.Count > 0 && s.P50() > 0 && s.P99() >= s.P50() {
			renderP50 = true
		}
	}
	if !renderP50 {
		t.Fatalf("render percentiles missing from Stages: %+v", serial.Stages)
	}
}

// TestResumedStatsMatchUninterrupted is the regression test for the
// stats double-counting audit: a crawl split across two runs (as journal
// resume splits it) must tally to exactly the Stats — including stage
// histograms — of one uninterrupted run. Under the old scheme Stages came
// from live per-attempt worker collectors (lost for killed runs, and
// counting superseded attempts), so resumed and uninterrupted runs could
// not agree.
func TestResumedStatsMatchUninterrupted(t *testing.T) {
	reg, urls := streamFixture(t, 440, 24)
	fullLogs, fullStats := Run(Config{Workers: 6, Crawler: testCrawler(reg, nil)}, urls)

	// First "run" crawls the even indices, the "resumed run" the rest —
	// the exact split Config.Skip produces when a journal already holds
	// half the URLs.
	combined := make([]*crawler.SessionLog, len(urls))
	for _, skipEven := range []bool{true, false} {
		skipEven := skipEven
		_, err := RunStream(Config{
			Workers: 6,
			Crawler: testCrawler(reg, nil),
			Skip:    func(idx int, _ string) bool { return (idx%2 == 0) == skipEven },
			Sink: func(idx int, lg *crawler.SessionLog) error {
				combined[idx] = lg
				return nil
			},
		}, urls)
		if err != nil {
			t.Fatalf("RunStream: %v", err)
		}
	}

	resumed := Tally(combined)
	uninterrupted := Tally(fullLogs)
	if !reflect.DeepEqual(resumed.Stages, uninterrupted.Stages) {
		t.Errorf("resumed Stages diverge from uninterrupted:\n%+v\nvs\n%+v",
			resumed.Stages, uninterrupted.Stages)
	}
	// And the tallied view matches what the uninterrupted live run itself
	// reported — one source of truth across all three paths.
	if !reflect.DeepEqual(resumed.Stages, fullStats.Stages) {
		t.Errorf("tallied Stages diverge from the live run's:\n%+v\nvs\n%+v",
			resumed.Stages, fullStats.Stages)
	}
	if !reflect.DeepEqual(resumed.Outcomes, uninterrupted.Outcomes) {
		t.Errorf("Outcomes = %v, want %v", resumed.Outcomes, uninterrupted.Outcomes)
	}
	if resumed.Sites != uninterrupted.Sites || resumed.Retries != uninterrupted.Retries ||
		resumed.Degraded != uninterrupted.Degraded {
		t.Errorf("resumed tally %+v diverges from uninterrupted %+v", resumed, uninterrupted)
	}
}

// TestMonitorProgress drives a run with a Monitor attached and checks the
// snapshot the status endpoint would serve.
func TestMonitorProgress(t *testing.T) {
	reg, urls := streamFixture(t, 470, 12)
	mon := NewMonitor()
	mon.SetTotal(len(urls))
	_, stats := Run(Config{Workers: 4, Crawler: testCrawler(reg, nil), Monitor: mon}, urls)

	p := mon.Snapshot()
	if p.Total != len(urls) || p.Done != len(urls) {
		t.Errorf("progress = %d/%d, want %d/%d", p.Done, p.Total, len(urls), len(urls))
	}
	if p.Failed != 0 || p.Panics != 0 {
		t.Errorf("clean run reported failures: %+v", p)
	}
	if p.SitesPerDay <= 0 {
		t.Error("throughput not computed")
	}
	if p.ETA != 0 {
		t.Errorf("finished run still reports ETA %v", p.ETA)
	}
	// The monitor's stage view matches the run's Stats exactly: both fold
	// the same finished traces.
	if !reflect.DeepEqual(p.Stages, stats.Stages) {
		t.Errorf("monitor Stages %+v diverge from run Stages %+v", p.Stages, stats.Stages)
	}
	line := p.String()
	if !strings.Contains(line, "progress: 12/12 (100.0%) done") {
		t.Errorf("progress line = %q", line)
	}

	// Resume accounting: pre-completed URLs count toward Done.
	mon2 := NewMonitor()
	mon2.SetTotal(10)
	mon2.AddPreCompleted(4)
	if got := mon2.Snapshot(); got.Done != 4 || got.PreCompleted != 4 {
		t.Errorf("pre-completed snapshot = %+v", got)
	}
	if !strings.Contains(mon2.Snapshot().String(), "(4 resumed)") {
		t.Errorf("resumed marker missing: %q", mon2.Snapshot().String())
	}

	// A nil monitor is a valid no-op everywhere the farm touches it.
	var nilMon *Monitor
	nilMon.SetTotal(1)
	nilMon.AddPreCompleted(1)
	nilMon.noteDone(&crawler.SessionLog{})
	nilMon.noteRetry()
	nilMon.notePanic()
	if got := nilMon.Snapshot(); got.Total != 0 {
		t.Errorf("nil snapshot = %+v", got)
	}
}
