package phishserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/browser"
	"repro/internal/site"
)

// TestCloakWireNames pins the cookie and header names this package shares
// with internal/browser by convention: the packages stay import-independent,
// so a rename on either side must fail here, not silently break uncloaking.
func TestCloakWireNames(t *testing.T) {
	if cloakJSCookie != browser.JSChallengeCookie {
		t.Errorf("JS probe cookie: phishserver %q != browser %q", cloakJSCookie, browser.JSChallengeCookie)
	}
	if cloakJSHeader != browser.JSChallengeHeader {
		t.Errorf("JS probe header: phishserver %q != browser %q", cloakJSHeader, browser.JSChallengeHeader)
	}
}

func cloakedSite(host string, rules ...site.CloakRule) *site.Site {
	s := minimalSite(host)
	s.Cloak = &site.Cloak{
		Rules:     rules,
		DecoyHTML: "<html><head><title>coming soon</title></head><body>This site is under construction.</body></html>",
	}
	return s
}

func TestCloakGateServesDecoyThenOpens(t *testing.T) {
	ua := browser.UserAgents()[2]
	reg := NewRegistry()
	reg.AddSite(cloakedSite("c.test", site.CloakRule{Kind: site.CloakUserAgent, Value: ua}))

	// Honest request: decoy, with the failing dimension leaked via Vary.
	resp := doReq(t, reg, "GET", "http://c.test/", nil)
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "coming soon") {
		t.Fatalf("gated request got %q, want the decoy", body)
	}
	if got := resp.Header.Get("Vary"); got != "User-Agent" {
		t.Errorf("Vary = %q, want User-Agent", got)
	}

	// Matching user agent: the real page.
	req := httptest.NewRequest("GET", "http://c.test/", nil)
	req.Header.Set("User-Agent", ua)
	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, req)
	if got := rec.Body.String(); !strings.Contains(got, "<form") {
		t.Errorf("passing request got %q, want the phishing page", got)
	}
}

func TestCloakRulePasses(t *testing.T) {
	withHeader := func(k, v string) *http.Request {
		req := httptest.NewRequest("GET", "http://c.test/", nil)
		if k != "" {
			req.Header.Set(k, v)
		}
		return req
	}
	withCookie := func(name, value string) *http.Request {
		req := httptest.NewRequest("GET", "http://c.test/", nil)
		req.AddCookie(&http.Cookie{Name: name, Value: value})
		return req
	}
	cases := []struct {
		name string
		rule site.CloakRule
		req  *http.Request
		want bool
	}{
		{"ua-match", site.CloakRule{Kind: site.CloakUserAgent, Value: "iPhone"}, withHeader("User-Agent", "Mozilla/5.0 (iPhone; CPU)"), true},
		{"ua-miss", site.CloakRule{Kind: site.CloakUserAgent, Value: "iPhone"}, withHeader("User-Agent", "PhishCrawl/1.0"), false},
		{"referrer-match", site.CloakRule{Kind: site.CloakReferrer, Value: "mail.google.com"}, withHeader("Referer", "https://mail.google.com/mail/u/0/"), true},
		{"referrer-empty", site.CloakRule{Kind: site.CloakReferrer, Value: "mail.google.com"}, withHeader("", ""), false},
		{"language-match", site.CloakRule{Kind: site.CloakLanguage, Value: "fr-FR"}, withHeader("Accept-Language", "fr-FR,fr;q=0.9"), true},
		{"language-miss", site.CloakRule{Kind: site.CloakLanguage, Value: "fr-FR"}, withHeader("Accept-Language", "en-US"), false},
		{"geo-match", site.CloakRule{Kind: site.CloakGeo, Value: "203.0.113.7"}, withHeader("X-Forwarded-For", "203.0.113.7"), true},
		{"geo-miss", site.CloakRule{Kind: site.CloakGeo, Value: "203.0.113.7"}, withHeader("", ""), false},
		{"cookie-revisit", site.CloakRule{Kind: site.CloakCookie}, withCookie(cloakRevisitCookie, "1"), true},
		{"cookie-first-visit", site.CloakRule{Kind: site.CloakCookie}, withHeader("", ""), false},
		{"js-answered", site.CloakRule{Kind: site.CloakJS}, withCookie(cloakJSCookie, jsToken("c.test")), true},
		{"js-wrong-token", site.CloakRule{Kind: site.CloakJS}, withCookie(cloakJSCookie, "00000000"), false},
		{"js-unanswered", site.CloakRule{Kind: site.CloakJS}, withHeader("", ""), false},
		{"unknown-kind", site.CloakRule{Kind: "bogus"}, withHeader("", ""), false},
	}
	for _, tc := range cases {
		if got := cloakRulePasses(tc.rule, tc.req); got != tc.want {
			t.Errorf("%s: cloakRulePasses = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDecoyLeaksAllFailingDimensions(t *testing.T) {
	reg := NewRegistry()
	reg.AddSite(cloakedSite("c.test",
		site.CloakRule{Kind: site.CloakReferrer, Value: browser.Referrers()[1]},
		site.CloakRule{Kind: site.CloakCookie},
		site.CloakRule{Kind: site.CloakJS},
	))
	resp := doReq(t, reg, "GET", "http://c.test/", nil)
	if got := resp.Header.Get("Vary"); got != "Referer, Cookie" {
		t.Errorf("Vary = %q, want failing dimensions in rule order", got)
	}
	if got := resp.Header.Get(cloakJSHeader); got != jsToken("c.test") {
		t.Errorf("JS probe header = %q, want %q", got, jsToken("c.test"))
	}
	// The decoy sets the revisit cookie so a persistent jar's next visit
	// counts as a repeat visit.
	var rv *http.Cookie
	for _, c := range resp.Cookies() {
		if c.Name == cloakRevisitCookie {
			rv = c
		}
	}
	if rv == nil || rv.Value != "1" {
		t.Errorf("revisit cookie not set: %v", resp.Cookies())
	}
}

func TestDecoyVaryOmitsPassingDimensions(t *testing.T) {
	reg := NewRegistry()
	reg.AddSite(cloakedSite("c.test",
		site.CloakRule{Kind: site.CloakLanguage, Value: browser.Languages()[2]},
		site.CloakRule{Kind: site.CloakGeo, Value: browser.ForwardedAddrs()[2]},
	))
	req := httptest.NewRequest("GET", "http://c.test/", nil)
	req.Header.Set("Accept-Language", browser.Languages()[2])
	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, req)
	resp := rec.Result()
	if got := resp.Header.Get("Vary"); got != "X-Forwarded-For" {
		t.Errorf("Vary = %q, want only the still-failing dimension", got)
	}
	if body := rec.Body.String(); !strings.Contains(body, "coming soon") {
		t.Errorf("partially-passing request got the real page: %q", body)
	}
}

func TestCloakGateCoversWholeSite(t *testing.T) {
	// Every path — pages, images, beacons — hides behind the gate, as a real
	// kit's server-side include does.
	reg := NewRegistry()
	reg.AddSite(cloakedSite("c.test", site.CloakRule{Kind: site.CloakCookie}))
	for _, path := range []string{"/", "/two", "/x.pxi"} {
		resp := doReq(t, reg, "GET", "http://c.test"+path, nil)
		body, _ := io.ReadAll(resp.Body)
		if !strings.Contains(string(body), "coming soon") {
			t.Errorf("%s served %q past the gate", path, body)
		}
	}
}

func TestUncloakedSiteUnaffected(t *testing.T) {
	// Sites without a Cloak spec serve exactly as before.
	reg := NewRegistry()
	reg.AddSite(minimalSite("plain.test"))
	resp := doReq(t, reg, "GET", "http://plain.test/", nil)
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "<form") {
		t.Errorf("plain site: %d %q", resp.StatusCode, body)
	}
	if v := resp.Header.Get("Vary"); v != "" {
		t.Errorf("plain site sets Vary %q", v)
	}
}
