package fieldspec

import "testing"

func TestLangs(t *testing.T) {
	ls := Langs()
	if len(ls) != 3 || ls[0] != LangEN {
		t.Fatalf("Langs = %v", ls)
	}
}

func TestKeywordsForCoverage(t *testing.T) {
	// The core data-stealing types must be covered in every language.
	must := []Type{Email, Password, Card, ExpDate, CVV, Code, Name, Phone}
	for _, lang := range []Lang{LangFR, LangES} {
		bank := KeywordsFor(lang)
		for _, ty := range must {
			if len(bank[ty]) == 0 {
				t.Errorf("%s bank missing %s", lang, ty)
			}
		}
	}
	if len(KeywordsFor(LangEN)) != len(Keywords) {
		t.Error("English bank should be the full Table 6 bank")
	}
}

func TestPhraseAtLang(t *testing.T) {
	if got := PhraseAtLang(LangFR, Password, 0); got != "mot de passe" {
		t.Errorf("FR password = %q", got)
	}
	if got := PhraseAtLang(LangES, Password, 0); got != "contrasena" {
		t.Errorf("ES password = %q", got)
	}
	// Fallback: a type the FR bank lacks uses the English phrase.
	if got := PhraseAtLang(LangFR, Search, 0); got != PhraseAt(Search, 0) {
		t.Errorf("FR search fallback = %q", got)
	}
	// Wrapping.
	n := len(KeywordsFor(LangFR)[Email])
	if PhraseAtLang(LangFR, Email, 0) != PhraseAtLang(LangFR, Email, n) {
		t.Error("PhraseAtLang should wrap")
	}
}

func TestLangSupports(t *testing.T) {
	if !LangSupports(LangFR, Card) || !LangSupports(LangES, Code) {
		t.Error("core types should be supported")
	}
	if LangSupports(LangFR, Search) {
		t.Error("FR bank does not cover search")
	}
	if !LangSupports(LangEN, Search) {
		t.Error("EN covers everything")
	}
}

func TestLocalizedPhrasesAreTokenizable(t *testing.T) {
	// Every localized phrase must survive the tokenizer (lower-case ASCII
	// words), since that is how the classifier sees them.
	for _, lang := range []Lang{LangFR, LangES} {
		for ty, phrases := range KeywordsFor(lang) {
			for _, p := range phrases {
				for _, r := range p {
					if r >= 'A' && r <= 'Z' {
						t.Errorf("%s %s phrase %q contains upper-case", lang, ty, p)
					}
					if r > 127 {
						t.Errorf("%s %s phrase %q contains non-ASCII %q (write it tokenizer-normalized)", lang, ty, p, r)
					}
				}
			}
		}
	}
}
