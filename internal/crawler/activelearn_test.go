package crawler

// Reproduces the active-learning loop of Section 4.2 end-to-end: the field
// classifier starts without knowledge of a data type (SSN), the crawler's
// sessions surface unknown-labelled field descriptions, a simulated human
// expert labels them, and after retraining the crawler classifies the type
// on fresh sites.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/browser"
	"repro/internal/fielddata"
	"repro/internal/fieldspec"
	"repro/internal/phishserver"
	"repro/internal/site"
	"repro/internal/textclass"
)

func ssnSite(idx int) *site.Site {
	host := fmt.Sprintf("ssn%d.test", idx)
	// Cycle through the first four SSN phrasings so the round-2 sites use
	// wordings the expert's round-1 labels cover (the loop teaches
	// phrasings, not telepathy).
	html := fmt.Sprintf(`<html><body><form action="/">
<div><label>%s</label><input name="f1"></div>
<button>Continue</button></form></body></html>`,
		fieldspec.PhraseAt(fieldspec.SSN, idx%4))
	return &site.Site{ID: host, Host: host,
		Pages:  []*site.Page{{Path: "/", HTML: html, Next: "/x", Mode: site.NextRedirect}, {Path: "/x", HTML: "<html><body>ok</body></html>"}},
		Images: map[string][]byte{}}
}

func TestActiveLearningLoopWithCrawler(t *testing.T) {
	// Seed corpus WITHOUT any SSN samples: the paper's "initially trained
	// on a relatively small dataset" condition for a type it hasn't seen.
	var seed []textclass.Sample
	for _, s := range fielddata.Corpus(1) {
		if s.Label != string(fieldspec.SSN) {
			seed = append(seed, s)
		}
	}
	al, err := textclass.NewActiveLearner(seed, ConfidenceThreshold, string(fieldspec.Unknown), textclass.TrainConfig{Seed: 2, Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}

	reg := phishserver.NewRegistry()
	var urls []string
	for i := 0; i < 6; i++ {
		s := ssnSite(i)
		reg.AddSite(s)
		urls = append(urls, s.SeedURL())
	}
	newCrawlerWith := func(m *textclass.Model) *Crawler {
		return &Crawler{
			Classifier: m,
			NewBrowser: func() *browser.Browser {
				return browser.New(browser.Options{Transport: phishserver.Transport{Registry: reg}})
			},
			FakerSeed: 3,
		}
	}

	// Round 1: crawl with the seed model; SSN fields come back unknown and
	// their descriptions are queued for the expert. Each campaign deploys
	// many sites, so the expert labels several instances of each phrasing
	// before retraining — the accumulation the paper's loop relies on.
	c := newCrawlerWith(al.Model)
	unknownDescs := 0
	for round := 0; round < 4; round++ {
		for _, u := range urls[:4] {
			log := c.Crawl(u)
			for _, pg := range log.Pages {
				for _, f := range pg.Fields {
					if f.Label == fieldspec.Unknown && f.Description != "" {
						unknownDescs++
						al.Classify(f.Description) // queue for the oracle
					}
				}
			}
		}
		// The human expert labels the queued descriptions (Section 4.2's
		// labelling web application, simulated by string matching).
		labels := map[string]string{}
		for _, text := range al.Pending() {
			if strings.Contains(strings.ToLower(text), "social") || strings.Contains(strings.ToLower(text), "ssn") {
				labels[text] = string(fieldspec.SSN)
			}
		}
		if len(labels) == 0 {
			t.Fatalf("no labellable descriptions queued: %q", al.Pending())
		}
		al.Teach(labels)
	}
	if unknownDescs == 0 {
		t.Fatal("seed model unexpectedly knew SSN fields")
	}
	if err := al.Retrain(); err != nil {
		t.Fatal(err)
	}

	// Round 2: fresh sites, retrained model.
	c2 := newCrawlerWith(al.Model)
	recovered := 0
	for _, u := range urls[4:] {
		log := c2.Crawl(u)
		for _, pg := range log.Pages {
			for _, f := range pg.Fields {
				if f.Label == fieldspec.SSN {
					recovered++
				}
			}
		}
	}
	if recovered == 0 {
		t.Error("retrained model still cannot classify SSN fields")
	}
}
