package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/triage"
)

// validFlags returns a baseline configuration every field of which passes
// validation; cases mutate one knob at a time.
func validFlags() cliFlags {
	return cliFlags{
		sites:       100,
		workers:     8,
		journalSync: "always",
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliFlags)
		wantErr string // empty = must pass
	}{
		{"baseline", func(*cliFlags) {}, ""},
		{"zero workers is the default", func(f *cliFlags) { f.workers = 0 }, ""},
		{"journal alone", func(f *cliFlags) { f.journalDir = "j" }, ""},
		{"resume with journal", func(f *cliFlags) { f.journalDir = "j"; f.resume = true }, ""},
		{"compact with journal", func(f *cliFlags) { f.journalDir = "j"; f.compact = true }, ""},
		{"status with journal", func(f *cliFlags) { f.journalDir = "j"; f.statusAddr = ":0" }, ""},
		{"progress interval", func(f *cliFlags) { f.progress = time.Second }, ""},
		{"sync group", func(f *cliFlags) { f.journalSync = "group" }, ""},
		{"sync batch", func(f *cliFlags) { f.journalSync = "batch" }, ""},
		{"sync none", func(f *cliFlags) { f.journalSync = "none" }, ""},

		{"zero sites", func(f *cliFlags) { f.sites = 0 }, "-sites"},
		{"negative sites", func(f *cliFlags) { f.sites = -5 }, "-sites"},
		{"negative sample", func(f *cliFlags) { f.sample = -1 }, "-sample"},
		{"negative workers", func(f *cliFlags) { f.workers = -1 }, "-workers"},
		{"negative retries", func(f *cliFlags) { f.retries = -1 }, "-retries"},
		{"negative session budget", func(f *cliFlags) { f.sessionBudget = -time.Second }, "-session-budget"},
		{"negative fetch timeout", func(f *cliFlags) { f.fetchTimeout = -time.Second }, "-fetch-timeout"},
		{"negative progress", func(f *cliFlags) { f.progress = -time.Second }, "-progress"},
		{"bad journal sync", func(f *cliFlags) { f.journalSync = "fsync" }, "-journal-sync"},
		{"resume without journal", func(f *cliFlags) { f.resume = true }, "-resume requires -journal"},
		{"compact without journal", func(f *cliFlags) { f.compact = true }, "-compact requires -journal"},
		{"status with compact", func(f *cliFlags) {
			f.journalDir = "j"
			f.compact = true
			f.statusAddr = ":0"
		}, "-status-addr cannot be combined with -compact"},

		{"coordinator role", func(f *cliFlags) {
			f.coordinator = true
			f.fleetAddr = ":0"
			f.journalDir = "j"
		}, ""},
		{"worker role", func(f *cliFlags) {
			f.worker = true
			f.fleetAddr = "127.0.0.1:8870"
			f.journalDir = "j"
		}, ""},
		{"coordinator with resume and export", func(f *cliFlags) {
			f.coordinator = true
			f.fleetAddr = ":0"
			f.journalDir = "j"
			f.resume = true
			f.out = "o.jsonl"
			f.statusAddr = ":0"
		}, ""},
		{"lease tuning", func(f *cliFlags) {
			f.coordinator = true
			f.fleetAddr = ":0"
			f.journalDir = "j"
			f.leaseSites = 60
			f.leaseTTL = 2 * time.Second
		}, ""},
		{"both roles at once", func(f *cliFlags) {
			f.coordinator = true
			f.worker = true
			f.fleetAddr = ":0"
			f.journalDir = "j"
		}, "mutually exclusive"},
		{"worker without coordinator addr", func(f *cliFlags) {
			f.worker = true
			f.journalDir = "j"
		}, "-worker requires -fleet-addr"},
		{"coordinator without listen addr", func(f *cliFlags) {
			f.coordinator = true
			f.journalDir = "j"
		}, "-coordinator requires -fleet-addr"},
		{"fleet addr without role", func(f *cliFlags) {
			f.fleetAddr = ":0"
		}, "-fleet-addr does nothing without"},
		{"coordinator without journal", func(f *cliFlags) {
			f.coordinator = true
			f.fleetAddr = ":0"
		}, "fleet mode requires -journal"},
		{"worker without journal", func(f *cliFlags) {
			f.worker = true
			f.fleetAddr = "127.0.0.1:8870"
		}, "fleet mode requires -journal"},
		{"resume in worker mode", func(f *cliFlags) {
			f.worker = true
			f.fleetAddr = "127.0.0.1:8870"
			f.journalDir = "j"
			f.resume = true
		}, "-resume is coordinator-side"},
		{"compact in fleet mode", func(f *cliFlags) {
			f.coordinator = true
			f.fleetAddr = ":0"
			f.journalDir = "j"
			f.compact = true
		}, "-compact cannot run in fleet mode"},
		{"export in worker mode", func(f *cliFlags) {
			f.worker = true
			f.fleetAddr = "127.0.0.1:8870"
			f.journalDir = "j"
			f.out = "o.jsonl"
		}, "-o in worker mode"},
		{"status addr in worker mode", func(f *cliFlags) {
			f.worker = true
			f.fleetAddr = "127.0.0.1:8870"
			f.journalDir = "j"
			f.statusAddr = ":0"
		}, "-status-addr in worker mode"},
		{"negative lease sites", func(f *cliFlags) {
			f.coordinator = true
			f.fleetAddr = ":0"
			f.journalDir = "j"
			f.leaseSites = -1
		}, "-lease-sites"},
		{"negative lease ttl", func(f *cliFlags) {
			f.coordinator = true
			f.fleetAddr = ":0"
			f.journalDir = "j"
			f.leaseTTL = -time.Second
		}, "-lease-ttl"},

		{"triage alone", func(f *cliFlags) {
			f.triage = true
			f.campaignThreshold = triage.DefaultCampaignThreshold
		}, ""},
		{"triage with topk and threshold", func(f *cliFlags) {
			f.triage = true
			f.campaignThreshold = 0.8
			f.triageTopK = 50
		}, ""},
		{"campaign-min alone reshapes the corpus", func(f *cliFlags) {
			f.campaignMin = 12
		}, ""},
		{"triage with journal and resume", func(f *cliFlags) {
			f.triage = true
			f.campaignThreshold = triage.DefaultCampaignThreshold
			f.journalDir = "j"
			f.resume = true
		}, ""},
		{"threshold above one", func(f *cliFlags) {
			f.triage = true
			f.campaignThreshold = 1.5
		}, "-campaign-threshold must be in [0,1]"},
		{"threshold below zero", func(f *cliFlags) {
			f.triage = true
			f.campaignThreshold = -0.1
		}, "-campaign-threshold must be in [0,1]"},
		{"negative topk", func(f *cliFlags) {
			f.triage = true
			f.campaignThreshold = triage.DefaultCampaignThreshold
			f.triageTopK = -1
		}, "-triage-topk"},
		{"negative campaign-min", func(f *cliFlags) {
			f.campaignMin = -1
		}, "-campaign-min"},
		{"triage with compact", func(f *cliFlags) {
			f.triage = true
			f.campaignThreshold = triage.DefaultCampaignThreshold
			f.journalDir = "j"
			f.compact = true
		}, "-triage cannot be combined with -compact"},
		{"topk without triage", func(f *cliFlags) {
			f.triageTopK = 10
		}, "-triage-topk does nothing without -triage"},
		{"threshold without triage", func(f *cliFlags) {
			f.campaignThreshold = 0.7
		}, "-campaign-threshold does nothing without -triage"},
		{"cloak rate alone", func(f *cliFlags) {
			f.cloakRate = 0.6
		}, ""},
		{"cloak rate with retries", func(f *cliFlags) {
			f.cloakRate = 0.6
			f.cloakRetries = 5
		}, ""},
		{"cloak rate above one", func(f *cliFlags) {
			f.cloakRate = 1.5
		}, "-cloak-rate must be in [0,1]"},
		{"cloak rate negative", func(f *cliFlags) {
			f.cloakRate = -0.1
		}, "-cloak-rate must be in [0,1]"},
		{"negative cloak retries", func(f *cliFlags) {
			f.cloakRate = 0.5
			f.cloakRetries = -1
		}, "-cloak-retries must be >= 0"},
		{"cloak retries without rate", func(f *cliFlags) {
			f.cloakRetries = 3
		}, "-cloak-retries does nothing without -cloak-rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validFlags()
			tc.mutate(&f)
			err := validateFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%+v) = %v, want nil", f, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags(%+v) passed, want error mentioning %q", f, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
