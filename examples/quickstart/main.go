// Quickstart: build the pipeline at a small scale, crawl a handful of
// phishing sites, and print the UX transcript of one multi-stage session —
// the fastest way to see the intelligent crawler at work.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
)

func main() {
	p, err := core.NewPipeline(core.Options{NumSites: 60, Seed: 3, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	p.Crawl()

	// Pick the session with the most pages: the richest UX flow.
	best := p.Logs[0]
	for _, l := range p.Logs {
		if len(l.Pages) > len(best.Pages) {
			best = l
		}
	}

	fmt.Printf("Crawled %d sites. Deepest flow: %s (%s, brand %q)\n\n",
		len(p.Logs), best.SiteID, best.SeedURL, best.Brand)
	for _, pg := range best.Pages {
		fmt.Printf("Page %d  %s (status %d)\n", pg.Index+1, pg.URL, pg.Status)
		if len(pg.Fields) == 0 {
			fmt.Printf("  no input fields — advanced via %q\n", pg.SubmitMethod)
		}
		for _, f := range pg.Fields {
			ocr := ""
			if f.UsedOCR {
				ocr = " [label read via OCR]"
			}
			fmt.Printf("  field %-10s (conf %.2f)%s <- forged %q\n", f.Label, f.Confidence, ocr, f.Value)
		}
		if pg.SubmitMethod != "" && len(pg.Fields) > 0 {
			fmt.Printf("  submitted via %q after %d attempt(s)\n", pg.SubmitMethod, pg.DataAttempts)
		}
	}
	fmt.Printf("\nOutcome: %s\n", best.Outcome)
	if analysis.IsMultiPage(best) {
		fmt.Println("This site used the multi-page data-stealing pattern (Section 5.2.1).")
	}
}
