// Package phash implements perceptual hashing of raster images, used in two
// places mirroring the paper: clustering phishing first pages into campaigns
// (Section 4.6, "using perceptual hashing, in a way similar to previous
// work") and the visual-CAPTCHA verification heuristic of Section 5.3.2
// (a detection is kept only if its pHash is within distance 20 of at least 3
// training exemplars).
//
// The hash is a 256-bit gradient (difference) hash: the image is downsampled
// to a 17x16 intensity grid and each bit records whether a cell is brighter
// than its right neighbour. Gradient hashes are robust to uniform
// brightness shifts and small noise while distinguishing different layouts.
package phash

import (
	"fmt"
	"math/bits"

	"repro/internal/raster"
)

// Bits is the number of bits in a Hash.
const Bits = 256

const gridW, gridH = 17, 16 // 16 comparisons per row x 16 rows = 256 bits

// Hash is a 256-bit perceptual hash.
type Hash [4]uint64

// String returns the hash as hex.
func (h Hash) String() string {
	return fmt.Sprintf("%016x%016x%016x%016x", h[0], h[1], h[2], h[3])
}

// Compute returns the perceptual hash of img.
func Compute(img *raster.Image) Hash {
	// Downsample intensities to gridW x gridH by block averaging.
	var grid [gridH][gridW]int
	if img.W == 0 || img.H == 0 {
		return Hash{}
	}
	for gy := 0; gy < gridH; gy++ {
		for gx := 0; gx < gridW; gx++ {
			x0, x1 := gx*img.W/gridW, (gx+1)*img.W/gridW
			y0, y1 := gy*img.H/gridH, (gy+1)*img.H/gridH
			if x1 <= x0 {
				x1 = x0 + 1
			}
			if y1 <= y0 {
				y1 = y0 + 1
			}
			sum, n := 0, 0
			for y := y0; y < y1 && y < img.H; y++ {
				for x := x0; x < x1 && x < img.W; x++ {
					sum += img.Intensity(x, y)
					n++
				}
			}
			if n > 0 {
				grid[gy][gx] = sum / n
			}
		}
	}
	var h Hash
	// First 128 bits: horizontal gradients on the even rows (8 rows x 16
	// comparisons). Gradients capture layout edges.
	bit := 0
	for gy := 0; gy < gridH; gy += 2 {
		for gx := 0; gx < gridW-1; gx++ {
			if grid[gy][gx] > grid[gy][gx+1] {
				h[bit/64] |= 1 << uint(bit%64)
			}
			bit++
		}
	}
	// Last 128 bits: brightness versus the global mean (16 rows x 8 cells).
	// This distinguishes uniformly dark pages from uniformly light ones,
	// which gradients alone cannot.
	sum, n := 0, 0
	for gy := 0; gy < gridH; gy++ {
		for gx := 0; gx < gridW; gx++ {
			sum += grid[gy][gx]
			n++
		}
	}
	mean := sum / n
	for gy := 0; gy < gridH; gy++ {
		for gx := 0; gx < 8; gx++ {
			if grid[gy][gx*2] > mean {
				h[bit/64] |= 1 << uint(bit%64)
			}
			bit++
		}
	}
	return h
}

// Distance returns the Hamming distance between two hashes (0..256).
func Distance(a, b Hash) int {
	d := 0
	for i := 0; i < 4; i++ {
		d += bits.OnesCount64(a[i] ^ b[i])
	}
	return d
}

// DefaultSimilarityThreshold is the distance below which two pages are
// considered the same design; the paper uses 20 for CAPTCHA verification.
const DefaultSimilarityThreshold = 20

// Similar reports whether two hashes are within the default threshold.
func Similar(a, b Hash) bool {
	return Distance(a, b) <= DefaultSimilarityThreshold
}

// Cluster groups items by hash similarity using single-linkage greedy
// assignment: each item joins the first cluster whose exemplar is within
// threshold, otherwise it starts a new cluster. Returns the cluster index of
// each input. This is how first-page screenshots are grouped into phishing
// campaigns.
func Cluster(hashes []Hash, threshold int) []int {
	assign := make([]int, len(hashes))
	var exemplars []Hash
	for i, h := range hashes {
		found := -1
		for ci, ex := range exemplars {
			if Distance(h, ex) <= threshold {
				found = ci
				break
			}
		}
		if found < 0 {
			found = len(exemplars)
			exemplars = append(exemplars, h)
		}
		assign[i] = found
	}
	return assign
}

// NearCount returns how many of the exemplars are within threshold of h,
// implementing the >= 3 exemplar rule for visual-CAPTCHA verification.
func NearCount(h Hash, exemplars []Hash, threshold int) int {
	n := 0
	for _, ex := range exemplars {
		if Distance(h, ex) <= threshold {
			n++
		}
	}
	return n
}
