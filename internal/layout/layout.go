// Package layout computes rendering bounding boxes for DOM elements: the
// getBoundingClientRect equivalent the paper's crawler injects into pages
// (Listing 1 in the Appendix). It implements a simplified CSS flow model —
// block elements stack vertically, inline elements flow and wrap — plus the
// handful of style properties the phishing corpus uses: explicit width and
// height, display:none, visibility:hidden, colors, and background images.
package layout

import (
	"strconv"
	"strings"
	"sync"

	"repro/internal/dom"
	"repro/internal/raster"
)

// Style is the resolved visual style of an element.
type Style struct {
	Display         string // "block", "inline", or "none"
	Hidden          bool   // visibility:hidden — occupies space but invisible
	Color           raster.Color
	Background      raster.Color
	HasBackground   bool
	BackgroundImage string // URL from background-image:url(...)
	Width, Height   int    // explicit pixel sizes; -1 when unset
}

var blockTags = map[string]bool{
	"html": true, "body": true, "div": true, "form": true, "p": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "ul": true, "ol": true,
	"li": true, "table": true, "tr": true, "header": true, "footer": true,
	"section": true, "article": true, "nav": true, "main": true,
	"fieldset": true, "hr": true, "br": true, "center": true,
}

// Default intrinsic sizes for interactive elements.
const (
	inputW, inputH   = 160, 14
	selectW, selectH = 120, 14
	imgW, imgH       = 48, 24
	padding          = 4
	vGap             = 4
)

// Result holds the computed layout of a document.
type Result struct {
	boxes  map[*dom.Node]raster.Rect
	styles map[*dom.Node]Style
	// Height is the total content height in pixels.
	Height int
	// Width is the viewport width used.
	Width int
}

// Box returns the bounding box of n and whether n was laid out (hidden
// subtrees are not).
func (r *Result) Box(n *dom.Node) (raster.Rect, bool) {
	b, ok := r.boxes[n]
	return b, ok
}

// Style returns the resolved style of n.
func (r *Result) Style(n *dom.Node) Style {
	if s, ok := r.styles[n]; ok {
		return s
	}
	return defaultStyle()
}

// Visible reports whether n occupies visible space in the rendering.
func (r *Result) Visible(n *dom.Node) bool {
	s, ok := r.styles[n]
	if !ok {
		return false
	}
	if s.Display == "none" || s.Hidden {
		return false
	}
	b := r.boxes[n]
	return b.W > 0 && b.H > 0
}

func defaultStyle() Style {
	return Style{Display: "inline", Color: raster.Black, Width: -1, Height: -1}
}

// ParseStyle resolves the style of an element from its tag, style attribute,
// and width/height attributes.
func ParseStyle(n *dom.Node) Style {
	s := defaultStyle()
	if n.Type != dom.ElementNode {
		return s
	}
	if blockTags[n.Tag] {
		s.Display = "block"
	}
	switch n.Tag {
	case "a":
		s.Color = raster.Blue
	case "button":
		s.Background = raster.LightGray
		s.HasBackground = true
	}
	// Most elements carry no width/height attribute; skip the failed-parse
	// error allocation strconv.Atoi makes on empty input.
	if attr := n.AttrOr("width", ""); attr != "" {
		if w, err := strconv.Atoi(attr); err == nil {
			s.Width = w
		}
	}
	if attr := n.AttrOr("height", ""); attr != "" {
		if h, err := strconv.Atoi(attr); err == nil {
			s.Height = h
		}
	}
	if t, _ := n.Attr("type"); n.Tag == "input" && strings.EqualFold(t, "hidden") {
		s.Display = "none"
	}
	// Iterate declarations with Cut instead of Split: no slice per element,
	// and style-less elements (the majority) skip the loop entirely.
	style, _ := n.Attr("style")
	for style != "" {
		var decl string
		decl, style, _ = strings.Cut(style, ";")
		k, v, ok := strings.Cut(decl, ":")
		if !ok {
			continue
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		switch k {
		case "display":
			lv := strings.ToLower(v)
			if lv == "none" || lv == "block" || lv == "inline" {
				s.Display = lv
			}
		case "visibility":
			s.Hidden = strings.EqualFold(v, "hidden")
		case "color":
			s.Color = raster.ParseColor(v)
		case "background", "background-color":
			s.Background = raster.ParseColor(v)
			s.HasBackground = true
		case "background-image":
			s.BackgroundImage = extractURL(v)
		case "width":
			if px, ok := parsePx(v); ok {
				s.Width = px
			}
		case "height":
			if px, ok := parsePx(v); ok {
				s.Height = px
			}
		}
	}
	return s
}

func parsePx(v string) (int, bool) {
	v = strings.TrimSuffix(strings.TrimSpace(v), "px")
	n, err := strconv.Atoi(strings.TrimSpace(v))
	return n, err == nil
}

func extractURL(v string) string {
	i := strings.Index(v, "url(")
	if i < 0 {
		return ""
	}
	rest := v[i+4:]
	j := strings.IndexByte(rest, ')')
	if j < 0 {
		return ""
	}
	u := strings.TrimSpace(rest[:j])
	u = strings.Trim(u, `'"`)
	return u
}

// resultPool recycles Result map storage between Compute and Release: a
// crawl session recomputes layout after every DOM mutation, and reusing the
// grown map buckets removes the per-recompute allocation churn.
var resultPool = sync.Pool{New: func() any {
	return &Result{
		boxes:  make(map[*dom.Node]raster.Rect),
		styles: make(map[*dom.Node]Style),
	}
}}

// Compute lays out the document within the given viewport width and returns
// the boxes for every visible node.
func Compute(doc *dom.Node, viewportW int) *Result {
	if viewportW < 64 {
		viewportW = 64
	}
	res := resultPool.Get().(*Result)
	res.Width = viewportW
	body := dom.Body(doc)
	h := layoutBlock(res, body, padding, padding, viewportW-2*padding)
	res.Height = h + 2*padding
	if res.Height < 1 {
		res.Height = 1
	}
	return res
}

// Release clears the Result and returns its map storage to the pool. The
// Result must not be used afterwards. Calling Release is optional — an
// unreleased Result is garbage-collected like any other value.
func (r *Result) Release() {
	if r == nil {
		return
	}
	clear(r.boxes)
	clear(r.styles)
	r.Height, r.Width = 0, 0
	resultPool.Put(r)
}

// layoutBlock lays out the children of n in a column starting at (x, y) with
// the given width, records n's own box, and returns the content height.
func layoutBlock(res *Result, n *dom.Node, x, y, w int) int {
	style := ParseStyle(n)
	res.styles[n] = style
	if style.Display == "none" {
		res.boxes[n] = raster.R(x, y, 0, 0)
		return 0
	}
	if style.Width >= 0 && style.Width < w {
		w = style.Width
	}
	startY := y
	cy := y
	// Inline run accumulator.
	var run []*dom.Node
	flushRun := func() {
		if len(run) == 0 {
			return
		}
		cy += layoutInlineRun(res, run, x, cy, w)
		run = nil
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		switch c.Type {
		case dom.TextNode:
			run = append(run, c)
		case dom.ElementNode:
			cs := ParseStyle(c)
			if cs.Display == "none" {
				res.styles[c] = cs
				res.boxes[c] = raster.R(x, cy, 0, 0)
				continue
			}
			if cs.Display == "block" {
				flushRun()
				if c.Tag == "br" || c.Tag == "hr" {
					res.styles[c] = cs
					res.boxes[c] = raster.R(x, cy, w, 2)
					cy += vGap
					continue
				}
				ch := layoutBlock(res, c, x+padding, cy+padding, w-2*padding)
				// The recursive call recorded the box; extend for padding.
				b := res.boxes[c]
				b.X, b.Y = x, cy
				b.W, b.H = w, ch+2*padding
				if cs.Height >= 0 {
					b.H = cs.Height
				}
				res.boxes[c] = b
				cy += b.H + vGap
			} else {
				run = append(run, c)
			}
		}
	}
	flushRun()
	h := cy - startY
	if style.Height >= 0 {
		h = style.Height
	}
	res.boxes[n] = raster.R(x, startY, w, h)
	return h
}

// layoutInlineRun flows inline nodes left to right with wrapping and returns
// the total height consumed.
func layoutInlineRun(res *Result, nodes []*dom.Node, x, y, w int) int {
	cx, cy := x, y
	rowH := 0
	place := func(n *dom.Node, nw, nh int) {
		if nw > w {
			nw = w
		}
		if cx+nw > x+w && cx > x {
			cx = x
			cy += rowH + 2
			rowH = 0
		}
		res.boxes[n] = raster.R(cx, cy, nw, nh)
		cx += nw + raster.AdvanceX
		if nh > rowH {
			rowH = nh
		}
	}
	for _, n := range nodes {
		switch {
		case n.Type == dom.TextNode:
			res.styles[n] = defaultStyle()
			text := raster.CollapseSpace(n.Data)
			if text == "" {
				continue
			}
			tw := raster.StringWidth(text)
			nh := raster.WrapCount(text, w) * raster.LineH
			if tw <= w-(cx-x) || tw <= w {
				place(n, minInt(tw, w), nh)
			} else {
				place(n, w, nh)
			}
		case n.Type == dom.ElementNode:
			s := ParseStyle(n)
			res.styles[n] = s
			nw, nh := intrinsicSize(n, s, w)
			place(n, nw, nh)
			// Inline containers (span, a, label, b, ...) get their entire
			// subtree boxed at the same position for hit-testing and
			// painting.
			if isInlineContainer(n.Tag) {
				assignSubtree(res, n, res.boxes[n], s)
			}
		}
	}
	return cy + rowH + 2 - y
}

// assignSubtree gives every descendant of n the container's box. Text
// descendants inherit the container's style so they paint in its color.
func assignSubtree(res *Result, n *dom.Node, box raster.Rect, s Style) {
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == dom.TextNode {
			res.styles[c] = s
			res.boxes[c] = box
		} else if c.Type == dom.ElementNode {
			cs := ParseStyle(c)
			cs.Color = s.Color
			res.styles[c] = cs
			res.boxes[c] = box
			assignSubtree(res, c, box, s)
		}
	}
}

func isInlineContainer(tag string) bool {
	switch tag {
	case "span", "a", "label", "b", "i", "em", "strong", "u", "small", "font", "td", "th":
		return true
	}
	return false
}

// intrinsicSize returns the natural size of an inline element.
func intrinsicSize(n *dom.Node, s Style, maxW int) (int, int) {
	w, h := 0, raster.LineH
	switch n.Tag {
	case "input":
		w, h = inputW, inputH
		if t, _ := n.Attr("type"); strings.EqualFold(t, "checkbox") || strings.EqualFold(t, "radio") {
			w, h = 10, 10
		}
	case "select":
		w, h = selectW, selectH
	case "button":
		label := n.InnerText()
		w = raster.StringWidth(label) + 14
		if w < 40 {
			w = 40
		}
		h = inputH
	case "img":
		w, h = imgW, imgH
	case "textarea":
		w, h = inputW, inputH*3
	default:
		text := n.InnerText()
		tw := raster.StringWidth(text)
		if tw > maxW {
			return maxW, raster.WrapCount(text, maxW) * raster.LineH
		}
		w = tw
		if w == 0 {
			w = 2
		}
	}
	if s.Width >= 0 {
		w = s.Width
	}
	if s.Height >= 0 {
		h = s.Height
	}
	if w > maxW {
		w = maxW
	}
	return w, h
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
