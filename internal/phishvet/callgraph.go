package phishvet

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the flow-aware substrate under the phishvet 2.0 rules: a
// module-local call graph resolved purely from go/types object identity.
// No go/packages, no SSA — edges are the static calls the type checker can
// name (package functions, concrete methods), which is exactly the shape
// of this codebase's durability and concurrency paths (journal commit
// chain, farm → core → journal streaming). Calls through function values
// (cfg.Sink, cfg.Logf) and interface methods resolve to nothing and are
// treated as unknown by the rules built on top; that blind spot is
// documented per rule.

// FuncInfo ties one declared function or method to its declaration and
// the package it lives in.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// CallGraph maps every function declared in the analyzed packages to its
// statically resolvable callees. Calls made inside function literals are
// folded into the enclosing declaration: closures in this tree are defers
// and inline helpers that execute within the call, so attributing their
// effects to the declarer is the conservative choice.
type CallGraph struct {
	funcs   map[*types.Func]*FuncInfo
	callees map[*types.Func][]*types.Func
	// order preserves deterministic iteration (packages are loaded in
	// import-path order, decls in file order).
	order []*FuncInfo
}

// BuildCallGraph indexes every function declaration in pkgs and resolves
// its static call edges.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		funcs:   map[*types.Func]*FuncInfo{},
		callees: map[*types.Func][]*types.Func{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Fn: fn, Decl: decl, Pkg: pkg}
				g.funcs[fn] = fi
				g.order = append(g.order, fi)
			}
		}
	}
	for _, fi := range g.order {
		if fi.Decl.Body == nil {
			continue
		}
		seen := map[*types.Func]bool{}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := staticCallee(fi.Pkg.Info, call); callee != nil && !seen[callee] {
				seen[callee] = true
				g.callees[fi.Fn] = append(g.callees[fi.Fn], callee)
			}
			return true
		})
	}
	return g
}

// Info returns the declaration record for fn, or nil for functions the
// analyzed packages do not declare (stdlib, interface methods).
func (g *CallGraph) Info(fn *types.Func) *FuncInfo { return g.funcs[fn] }

// Callees returns fn's statically resolved callees in first-call order.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func { return g.callees[fn] }

// Funcs returns every indexed declaration in deterministic order.
func (g *CallGraph) Funcs() []*FuncInfo { return g.order }

// staticCallee resolves a call expression to the *types.Func it invokes,
// when the type checker can name one: direct calls to package functions
// and method calls on concrete receivers. Conversions, builtins, function
// values, and function literals return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcDisplay renders fn compactly for diagnostics: methods keep their
// receiver, and import-path prefixes are stripped so messages stay
// readable ("(*os.File).Sync", "journal.AppendStats").
func funcDisplay(fn *types.Func) string {
	name := fn.FullName() // "os.WriteFile" or "(*net/http.Server).Serve"
	if strings.HasPrefix(name, "(") {
		if i := strings.Index(name, ")"); i >= 0 {
			recv := name[:i]
			if j := strings.LastIndex(recv, "/"); j >= 0 {
				prefix := "("
				if strings.HasPrefix(recv, "(*") {
					prefix = "(*"
				}
				name = prefix + recv[j+1:] + name[i:]
			}
		}
		return name
	}
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	return name
}
