package raster

import (
	"math/rand"
	"testing"
)

// randomImage fills a w x h image with random palette colors, biased toward
// White so images have background structure like real pages.
func randomImage(rng *rand.Rand, w, h int) *Image {
	img := New(w, h, White)
	for i := range img.Pix {
		if rng.Intn(3) == 0 {
			img.Pix[i] = Color(rng.Intn(int(NumColors)))
		}
	}
	return img
}

// brute-force reference statistics for one window.
func bruteStats(img *Image, r Rect) (hist [NumColors]int, ink, light, nonWhite, hTrans, vTrans int) {
	r = r.Clip(img.W, img.H)
	for y := r.Y; y < r.Y+r.H; y++ {
		for x := r.X; x < r.X+r.W; x++ {
			c := img.At(x, y)
			hist[c]++
			if c != White {
				nonWhite++
			}
			if img.Intensity(x, y) < 128 {
				ink++
			}
			if img.Intensity(x, y) >= 200 {
				light++
			}
			if x > r.X && c != img.At(x-1, y) {
				hTrans++
			}
			if y > r.Y && c != img.At(x, y-1) {
				vTrans++
			}
		}
	}
	return
}

func checkWindows(t *testing.T, img *Image, in *Integral, rng *rand.Rand, queries int) {
	t.Helper()
	w, h := img.W, img.H
	for q := 0; q < queries; q++ {
		// Random windows, including ones hanging off the image edges.
		r := R(rng.Intn(w+10)-5, rng.Intn(h+10)-5, 1+rng.Intn(w), 1+rng.Intn(h))
		hist, ink, light, nonWhite, hT, vT := bruteStats(img, r)
		if got := in.InkCount(r); got != ink {
			t.Fatalf("InkCount(%v) = %d, want %d", r, got, ink)
		}
		if got := in.LightCount(r); got != light {
			t.Fatalf("LightCount(%v) = %d, want %d", r, got, light)
		}
		if got := in.NonWhiteCount(r); got != nonWhite {
			t.Fatalf("NonWhiteCount(%v) = %d, want %d", r, got, nonWhite)
		}
		gotHist, gotH, gotV := in.Stats(r)
		if gotHist != hist {
			t.Fatalf("Stats(%v) hist = %v, want %v", r, gotHist, hist)
		}
		if gotH != hT || gotV != vT {
			t.Fatalf("Stats(%v) trans = (%d, %d), want (%d, %d)", r, gotH, gotV, hT, vT)
		}
	}
}

func TestIntegralMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		w, h := 8+rng.Intn(120), 8+rng.Intn(90)
		img := randomImage(rng, w, h)
		in := NewIntegral(img)
		checkWindows(t, img, in, rng, 40)
		in.Release()
	}
}

// TestIntegralRegionMatchesBruteForce builds region-scoped tables and checks
// queries both inside and partially outside the covered region (the latter
// must clip to the region).
func TestIntegralRegionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		w, h := 16+rng.Intn(100), 16+rng.Intn(80)
		img := randomImage(rng, w, h)
		region := R(rng.Intn(w-8), rng.Intn(h-8), 8+rng.Intn(w), 8+rng.Intn(h)).Clip(w, h)
		in := NewIntegralRegion(img, region)
		for q := 0; q < 30; q++ {
			sub := R(region.X+rng.Intn(region.W)-2, region.Y+rng.Intn(region.H)-2,
				1+rng.Intn(region.W+4), 1+rng.Intn(region.H+4))
			want := sub.Intersect(region)
			_, _, _, nonWhite, _, _ := bruteStats(img, want)
			if got := in.NonWhiteCount(sub); got != nonWhite {
				t.Fatalf("region %v: NonWhiteCount(%v) = %d, want %d", region, sub, got, nonWhite)
			}
			hist, _, _ := in.Stats(sub)
			wantHist, _, _, _, _, _ := bruteStats(img, want)
			if hist != wantHist {
				t.Fatalf("region %v: Stats(%v) hist = %v, want %v", region, sub, hist, wantHist)
			}
		}
		in.Release()
	}
}

// TestIntegralPoolReuse exercises the buffer-recycling path: a released
// table's buffer must serve a smaller region without stale counts leaking
// through the top row or left column.
func TestIntegralPoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	big := randomImage(rng, 120, 90)
	in := NewIntegral(big)
	checkWindows(t, big, in, rng, 10)
	in.Release()
	for trial := 0; trial < 30; trial++ {
		w, h := 4+rng.Intn(100), 4+rng.Intn(70)
		img := randomImage(rng, w, h)
		in := NewIntegral(img)
		checkWindows(t, img, in, rng, 10)
		in.Release()
	}
}

func TestIntegralEmptyAndAbsentColor(t *testing.T) {
	img := New(10, 10, White) // only White present
	in := NewIntegral(img)
	hist, _, _ := in.Stats(R(0, 0, 10, 10))
	if hist[Red] != 0 {
		t.Errorf("absent color count = %d", hist[Red])
	}
	if hist[White] != 100 {
		t.Errorf("white count = %d", hist[White])
	}
	if got := in.NonWhiteCount(R(0, 0, 10, 10)); got != 0 {
		t.Errorf("nonwhite = %d", got)
	}
	if got := in.InkCount(R(-5, -5, 3, 3)); got != 0 {
		t.Errorf("fully out-of-bounds ink = %d", got)
	}
	empty := NewIntegral(New(0, 0, White))
	if got := empty.InkCount(R(0, 0, 5, 5)); got != 0 {
		t.Errorf("empty image ink = %d", got)
	}
}
