package sitegen

import (
	"repro/internal/dom"
	"repro/internal/raster"
	"repro/internal/render"
	"repro/internal/site"
)

// RenderPage renders one of a site's pages offline (no HTTP), resolving
// image resources from the site's own image map. Used by calibration tests
// and the Table 3 analysis when screenshots are needed without a crawl.
func RenderPage(s *site.Site, html string, viewportW int) *raster.Image {
	doc := dom.Parse(html)
	page := render.Render(doc, viewportW, func(u string) *raster.Image {
		if data, ok := s.Images[u]; ok {
			if img, err := raster.Decode(data); err == nil {
				return img
			}
		}
		return nil
	})
	return page.Screenshot
}

// RenderLanding renders the site's first page at the standard viewport.
func RenderLanding(s *site.Site) *raster.Image {
	return RenderPage(s, s.Pages[0].HTML, 800)
}
