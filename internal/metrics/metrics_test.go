package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestConfusionPerfect(t *testing.T) {
	c := NewConfusion()
	for i := 0; i < 10; i++ {
		c.Add("a", "a")
		c.Add("b", "b")
	}
	if !almostEq(c.Accuracy(), 1.0) {
		t.Errorf("accuracy = %f", c.Accuracy())
	}
	if !almostEq(c.MacroF1(), 1.0) {
		t.Errorf("macro F1 = %f", c.MacroF1())
	}
	for _, r := range c.PerClass() {
		if !almostEq(r.Precision, 1) || !almostEq(r.Recall, 1) || !almostEq(r.F1, 1) {
			t.Errorf("class %s: %+v", r.Label, r)
		}
	}
}

func TestConfusionKnownValues(t *testing.T) {
	// Class a: 8 true, 6 predicted correctly (2 leaked to b).
	// Class b: 4 true, all correct, plus 2 false positives from a.
	c := NewConfusion("a", "b")
	for i := 0; i < 6; i++ {
		c.Add("a", "a")
	}
	for i := 0; i < 2; i++ {
		c.Add("a", "b")
	}
	for i := 0; i < 4; i++ {
		c.Add("b", "b")
	}
	rows := c.PerClass()
	var ra, rb PRF
	for _, r := range rows {
		if r.Label == "a" {
			ra = r
		} else {
			rb = r
		}
	}
	if !almostEq(ra.Precision, 1.0) || !almostEq(ra.Recall, 0.75) {
		t.Errorf("a: %+v", ra)
	}
	if !almostEq(rb.Precision, 4.0/6.0) || !almostEq(rb.Recall, 1.0) {
		t.Errorf("b: %+v", rb)
	}
	if !almostEq(c.Accuracy(), 10.0/12.0) {
		t.Errorf("accuracy = %f", c.Accuracy())
	}
	if c.Support("a") != 8 || c.Support("b") != 4 {
		t.Errorf("support = %d, %d", c.Support("a"), c.Support("b"))
	}
	if c.Total() != 12 {
		t.Errorf("total = %d", c.Total())
	}
}

func TestConfusionUnseenLabelsAppend(t *testing.T) {
	c := NewConfusion()
	c.Add("x", "y") // both new
	c.Add("y", "y")
	if c.Total() != 2 {
		t.Errorf("total = %d", c.Total())
	}
	if len(c.Labels()) != 2 {
		t.Errorf("labels = %v", c.Labels())
	}
}

func TestConfusionEmptySafe(t *testing.T) {
	c := NewConfusion()
	if c.Accuracy() != 0 || c.MacroF1() != 0 || c.Total() != 0 {
		t.Error("empty confusion should return zeros")
	}
	if c.Support("nothing") != 0 {
		t.Error("support of unknown label should be 0")
	}
}

func TestF1Bounds(t *testing.T) {
	f := func(tpc, fpc, fnc uint8) bool {
		c := NewConfusion("pos", "neg")
		for i := 0; i < int(tpc); i++ {
			c.Add("pos", "pos")
		}
		for i := 0; i < int(fpc); i++ {
			c.Add("neg", "pos")
		}
		for i := 0; i < int(fnc); i++ {
			c.Add("pos", "neg")
		}
		for _, r := range c.PerClass() {
			if r.F1 < 0 || r.F1 > 1 || r.Precision < 0 || r.Precision > 1 || r.Recall < 0 || r.Recall > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTableFormat(t *testing.T) {
	c := NewConfusion()
	c.Add("email", "email")
	c.Add("password", "password")
	tbl := c.Table()
	for _, want := range []string{"Category", "email", "password", "Overall"} {
		if !containsStr(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestAveragePrecisionPerfect(t *testing.T) {
	dets := []Detection{
		{Score: 0.9, TruePositive: true},
		{Score: 0.8, TruePositive: true},
		{Score: 0.7, TruePositive: true},
	}
	if ap := AveragePrecision(dets, 3); !almostEq(ap, 1.0) {
		t.Errorf("perfect AP = %f", ap)
	}
}

func TestAveragePrecisionAllWrong(t *testing.T) {
	dets := []Detection{{Score: 0.9}, {Score: 0.8}}
	if ap := AveragePrecision(dets, 2); ap != 0 {
		t.Errorf("all-wrong AP = %f", ap)
	}
}

func TestAveragePrecisionKnownValue(t *testing.T) {
	// Ranked: TP, FP, TP with 2 positives.
	// precision at rank1 = 1 (recall .5), rank2 = .5, rank3 = 2/3 (recall 1).
	// Interpolated: recall .5 -> max(1, .5, .667)=1; recall 1 -> 2/3.
	// AP = .5*1 + .5*(2/3) = 0.8333...
	dets := []Detection{
		{Score: 0.9, TruePositive: true},
		{Score: 0.8, TruePositive: false},
		{Score: 0.7, TruePositive: true},
	}
	ap := AveragePrecision(dets, 2)
	if !almostEq(ap, 0.5+0.5*(2.0/3.0)) {
		t.Errorf("AP = %f, want %f", ap, 0.5+0.5*(2.0/3.0))
	}
}

func TestAveragePrecisionMissedPositives(t *testing.T) {
	// One TP detected of 4 positives caps recall at 0.25, so AP <= 0.25.
	dets := []Detection{{Score: 0.9, TruePositive: true}}
	ap := AveragePrecision(dets, 4)
	if !almostEq(ap, 0.25) {
		t.Errorf("AP = %f, want 0.25", ap)
	}
}

func TestAveragePrecisionEmpty(t *testing.T) {
	if AveragePrecision(nil, 0) != 0 {
		t.Error("no positives should yield AP 0")
	}
	if AveragePrecision(nil, 5) != 0 {
		t.Error("no detections should yield AP 0")
	}
}

func TestAveragePrecisionBoundsProperty(t *testing.T) {
	f := func(flags []bool, extra uint8) bool {
		dets := make([]Detection, len(flags))
		tps := 0
		for i, tp := range flags {
			dets[i] = Detection{Score: float64(len(flags) - i), TruePositive: tp}
			if tp {
				tps++
			}
		}
		np := tps + int(extra%5)
		if np == 0 {
			np = 1
		}
		ap := AveragePrecision(dets, np)
		return ap >= 0 && ap <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPrecisionRecall(t *testing.T) {
	p, r := PrecisionRecall(75, 0, 10)
	if !almostEq(p, 1.0) {
		t.Errorf("precision = %f", p)
	}
	if !almostEq(r, 75.0/85.0) {
		t.Errorf("recall = %f", r)
	}
	p, r = PrecisionRecall(0, 0, 0)
	if p != 0 || r != 0 {
		t.Error("zero counts should be safe")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add("b", 2)
	h.Add("a", 5)
	h.Add("b", 3)
	if h.Get("b") != 5 || h.Get("a") != 5 {
		t.Errorf("counts = %d, %d", h.Get("b"), h.Get("a"))
	}
	if h.Total() != 10 {
		t.Errorf("total = %d", h.Total())
	}
	keys := h.Keys()
	if len(keys) != 2 || keys[0] != "b" || keys[1] != "a" {
		t.Errorf("keys = %v", keys)
	}
	sorted := h.SortedByCount()
	if len(sorted) != 2 {
		t.Fatalf("sorted = %v", sorted)
	}
	// Equal counts keep first-seen order (stable).
	if sorted[0].Key != "b" {
		t.Errorf("stable sort violated: %v", sorted)
	}
}
