// Package farm runs crawl sessions at scale, modelling the Docker-based
// crawler farm of Section 4.6: a pool of parallel workers, each giving
// every site a fresh browser profile (the paper's clean container per
// session), with aggregate throughput accounting (the paper sustains more
// than 1,000 sites per day on 30 parallel sessions). Because real feeds
// are full of dead, slow, and flaky sites, the farm also carries the
// operational machinery a production crawl needs: a retry queue with
// capped exponential backoff and deterministic jitter for transient
// failures, a per-session panic guard so one bad site cannot kill a
// worker, and a failure taxonomy in its Stats.
package farm

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crawler"
	"repro/internal/metrics"
)

// DefaultWorkers matches the paper's 30 parallel Docker sessions.
const DefaultWorkers = 30

// DefaultMaxRetries is how many extra attempts a transiently-failed
// session gets before the farm gives up.
const DefaultMaxRetries = 2

// Default backoff bounds, tuned to the synthetic corpus's timescale
// (sessions complete in milliseconds; a real deployment would configure
// seconds-to-minutes here).
const (
	defaultRetryBase = 25 * time.Millisecond
	defaultRetryMax  = 400 * time.Millisecond
)

// OutcomeLost is the Stats.Outcomes key counting sessions that produced no
// log at all — a worker never wrote one — so outcome counts always sum to
// Sites and silent losses are visible in the report.
const OutcomeLost = "lost"

// OutcomeGaveUp replaces a transient-failure outcome once retries are
// exhausted; the underlying classification is preserved in
// SessionLog.Error and tallied in Stats.Failures.
const OutcomeGaveUp = "gave-up"

// OutcomePanic classifies a session whose crawl panicked and was recovered
// by the worker guard. Panics are treated as transient (retryable).
const OutcomePanic = "panic"

// Config configures a crawl farm.
type Config struct {
	// Workers is the parallel session count (default 30).
	Workers int
	// Crawler is the shared crawler template; its NewBrowser hook supplies
	// the per-session fresh profile.
	Crawler *crawler.Crawler
	// MaxRetries is how many extra attempts a transiently-failed session
	// gets before the farm gives up (0 = DefaultMaxRetries; negative
	// disables retrying).
	MaxRetries int
	// RetryBase is the backoff before the first retry; each further retry
	// doubles it (default 25ms at synthetic timescale).
	RetryBase time.Duration
	// RetryMax caps the exponential backoff (default 400ms).
	RetryMax time.Duration
	// RetrySeed drives the deterministic backoff jitter, so a run's retry
	// schedule is reproducible from its seeds.
	RetrySeed int64
	// FastPath, when non-nil, is consulted before a browser session is
	// spawned for a URL: a non-nil session log (e.g. the triage plan's
	// "attributed to campaign X" synthesis) is landed directly — no
	// browser, no retries — through the same completion path as a crawled
	// session, so sinks, stats, and the monitor see it uniformly. The hook
	// must return a fresh log per call and be safe for concurrent use.
	FastPath func(idx int, url string) *crawler.SessionLog
	// Skip, when non-nil, reports whether the URL at index idx should be
	// skipped entirely — typically because a resumed run's journal already
	// holds its session. Skipped URLs get no session, no log slot, and no
	// stats contribution, but every crawled URL keeps deriving its
	// per-session seed from its original index, so a resumed crawl
	// reproduces the uninterrupted run's sessions exactly.
	Skip func(idx int, url string) bool
	// Sink, when non-nil, receives each finished session as it completes
	// and switches the farm to streaming mode: logs are not accumulated and
	// Run returns a nil slice. The index is the session's position in the
	// input URL list. By default calls are serialized — a journal append
	// needs no extra locking. After a sink error the farm keeps crawling
	// but stops delivering; RunStream surfaces the first error.
	Sink func(idx int, lg *crawler.SessionLog) error
	// SinkConcurrent declares that Sink is safe for concurrent use, letting
	// workers deliver sessions without holding the farm's shared tally
	// lock: the expensive part of a delivery — JSON encoding plus fsync in
	// the journal sink — then runs in each worker's own goroutine, and the
	// journal's group commit can batch overlapping deliveries into one
	// fsync. After a sink error no NEW deliveries start, but deliveries
	// already in flight run to completion; the first error recorded is the
	// one surfaced.
	SinkConcurrent bool
	// Monitor, when non-nil, receives live progress (completions, retries,
	// panics, stage latencies) for the status endpoint and progress line.
	Monitor *Monitor
}

// Stats summarizes a finished run.
type Stats struct {
	Sites    int
	Elapsed  time.Duration
	Outcomes map[string]int
	// Stages is the per-stage latency breakdown (render, OCR, detect,
	// submit) in stage order: counts, totals, and streaming histogram
	// percentiles. It folds from finished sessions' traces — final
	// attempts only, on the session-logical clock — so it is byte-identical
	// across worker counts and across journal kill/resume.
	Stages []metrics.StageStat
	// FastPathed counts sessions resolved by the FastPath hook (triage
	// attribution or lexical cut) — sessions that cost no browser.
	FastPathed int
	// Retries counts re-queued attempts beyond each session's first.
	Retries int
	// Degraded counts sessions that reached a non-failure outcome only
	// after at least one retry — the crawl completed, but the site made
	// it fight for it.
	Degraded int
	// Panics counts worker panics the guard recovered (including ones
	// whose retry later succeeded).
	Panics int
	// Failures is the failure taxonomy of gave-up sessions: the last
	// classified failure (dead, timeout, server-error, truncated, error,
	// panic) per site that exhausted its retries.
	Failures map[string]int
	// Uncloaked counts sessions whose adaptive uncloaking loop got past a
	// cloaking gate (the honest crawl saw a benign decoy, a mutated
	// profile reached the phishing flow). CloakAttempts counts the extra
	// crawl attempts the loop spent across all sessions. Both omit from
	// JSON when zero so stats records without cloaking are byte-unchanged.
	Uncloaked     int `json:",omitempty"`
	CloakAttempts int `json:",omitempty"`
}

// SitesPerDay extrapolates throughput.
func (s Stats) SitesPerDay() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Sites) / s.Elapsed.Seconds() * 86400
}

// Merge folds another run's statistics into s: counters add, outcome and
// failure maps merge, elapsed times sum (total crawl time across runs),
// and stage timings combine via metrics.MergeStageStats. It is how a
// resumed crawl's per-run stats records accumulate into one report.
func (s *Stats) Merge(o Stats) {
	s.Sites += o.Sites
	s.Elapsed += o.Elapsed
	s.FastPathed += o.FastPathed
	s.Retries += o.Retries
	s.Degraded += o.Degraded
	s.Panics += o.Panics
	s.Uncloaked += o.Uncloaked
	s.CloakAttempts += o.CloakAttempts
	if len(o.Outcomes) > 0 && s.Outcomes == nil {
		s.Outcomes = map[string]int{}
	}
	for k, v := range o.Outcomes {
		s.Outcomes[k] += v
	}
	if len(o.Failures) > 0 && s.Failures == nil {
		s.Failures = map[string]int{}
	}
	for k, v := range o.Failures {
		s.Failures[k] += v
	}
	s.Stages = metrics.MergeStageStats(s.Stages, o.Stages)
}

// Tally recomputes the session-derived part of Stats from final logs:
// Sites, Outcomes, Failures, Degraded, Retries (each session's final
// Attempts-1 re-queues), and Stages — stage latencies fold from each log's
// trace spans exactly as a live run folds them at completion, so a resumed
// crawl's tallied Stages match an uninterrupted run's byte for byte even
// when an earlier run was killed before writing its stats record. (They
// must NOT additionally be merged from journaled per-run stats records:
// that would double-count every session a completed run already tallied.)
// Elapsed and Panics are run-level facts a log cannot carry; they stay
// zero. A nil entry counts as lost, exactly as Run counts a session no
// worker recorded.
func Tally(logs []*crawler.SessionLog) Stats {
	s := Stats{
		Sites:    len(logs),
		Outcomes: map[string]int{},
		Failures: map[string]int{},
	}
	stages := &metrics.StageTimings{}
	for _, l := range logs {
		if l == nil {
			s.Outcomes[OutcomeLost]++
			continue
		}
		observeTrace(stages, l.Trace)
		s.Outcomes[l.Outcome]++
		s.Retries += l.Attempts - 1
		if l.Cloak != nil {
			s.CloakAttempts += len(l.Cloak.Attempts) - 1
			if l.Cloak.Uncloaked {
				s.Uncloaked++
			}
		}
		switch l.Outcome {
		case OutcomeGaveUp:
			s.Failures[l.Error]++
		case crawler.OutcomeAttributed, crawler.OutcomeTriagedOut:
			s.FastPathed++
		default:
			if l.Attempts > 1 {
				s.Degraded++
			}
		}
	}
	s.Stages = stages.Snapshot()
	return s
}

// job is one queued crawl attempt.
type job struct {
	idx     int
	attempt int // 0 = first try
}

// Run crawls every URL with the configured parallelism and returns the
// session logs in input order plus run statistics. Sessions that fail with
// a transient (retryable) outcome are re-queued with capped exponential
// backoff up to MaxRetries times; a session that panics is recovered,
// classified, and retried like any other transient failure, so one bad
// site never costs a worker or loses the run. With Config.Sink set the
// farm streams instead of accumulating and the returned slice is nil; use
// RunStream to also observe sink errors.
func Run(cfg Config, urls []string) ([]*crawler.SessionLog, Stats) {
	logs, stats, _ := run(cfg, urls)
	return logs, stats
}

// RunStream crawls like Run but requires Config.Sink: each finished
// session is handed to the sink as it completes and never retained, so a
// 43-day crawl holds O(workers) sessions in memory instead of O(feed).
// The returned error is the first sink failure (the crawl itself finishes
// regardless, and Stats still counts every session).
func RunStream(cfg Config, urls []string) (Stats, error) {
	if cfg.Sink == nil {
		return Stats{}, fmt.Errorf("farm: RunStream requires a Config.Sink")
	}
	_, stats, err := run(cfg, urls)
	return stats, err
}

func run(cfg Config, urls []string) ([]*crawler.SessionLog, Stats, error) {
	// Apply the skip filter first: include holds the original feed indices
	// that will actually be crawled, so seed derivation below is untouched
	// by resume.
	include := make([]int, 0, len(urls))
	for i, u := range urls {
		if cfg.Skip == nil || !cfg.Skip(i, u) {
			include = append(include, i)
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers > len(include) && len(include) > 0 {
		workers = len(include)
	}
	maxRetries := cfg.MaxRetries
	if maxRetries == 0 {
		maxRetries = DefaultMaxRetries
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	retryBase, retryMax := cfg.RetryBase, cfg.RetryMax
	if retryBase <= 0 {
		retryBase = defaultRetryBase
	}
	if retryMax < retryBase {
		retryMax = defaultRetryMax
	}
	if retryMax < retryBase {
		retryMax = retryBase
	}

	// Streaming mode keeps no log slice at all; that is the point.
	var logs []*crawler.SessionLog
	if cfg.Sink == nil {
		logs = make([]*crawler.SessionLog, len(urls))
	}
	// Stats.Stages folds from each FINISHED session's trace spans, never
	// from live per-attempt worker timings: a killed run's stats record is
	// lost but its journaled sessions are not, so deriving stages from
	// sessions is what keeps a resumed run's Stats identical to an
	// uninterrupted run's (and what made the old two-source scheme —
	// worker collectors live, stats records on resume — double-count
	// retried attempts relative to the journal view).
	stages := &metrics.StageTimings{}
	// Throughput accounting is operational, not measured output; it goes
	// through the metrics stopwatch so the farm itself never reads the
	// wall clock (phishvet's wallclock rule pins this).
	start := metrics.NewStopwatch()
	var (
		wg      sync.WaitGroup
		pending sync.WaitGroup // open jobs: one per URL until its final attempt lands
		retries int64
		panics  int64
	)
	// land serializes the completion path: sink delivery and the incremental
	// outcome tally.
	var land struct {
		sync.Mutex
		outcomes      map[string]int
		failures      map[string]int
		degraded      int
		uncloaked     int
		cloakAttempts int
		count         int
		sinkErr       error
	}
	land.outcomes = map[string]int{}
	land.failures = map[string]int{}
	finish := func(lg *crawler.SessionLog) {
		land.Lock()
		land.count++
		observeTrace(stages, lg.Trace)
		cfg.Monitor.noteDone(lg)
		land.outcomes[lg.Outcome]++
		if lg.Outcome == OutcomeGaveUp {
			land.failures[lg.Error]++
		} else if lg.Attempts > 1 {
			land.degraded++
		}
		if lg.Cloak != nil {
			land.cloakAttempts += len(lg.Cloak.Attempts) - 1
			if lg.Cloak.Uncloaked {
				land.uncloaked++
			}
		}
		if cfg.Sink == nil {
			logs[lg.FeedIndex] = lg
			land.Unlock()
			return
		}
		if !cfg.SinkConcurrent {
			if land.sinkErr == nil {
				land.sinkErr = cfg.Sink(lg.FeedIndex, lg)
			}
			land.Unlock()
			return
		}
		// Concurrent sink: deliver outside the tally lock, so the encode
		// and fsync work of one session never stalls every other worker's
		// completion path (and a group-commit journal can batch the
		// overlapping appends into one fsync).
		deliver := land.sinkErr == nil
		land.Unlock()
		if !deliver {
			return
		}
		if err := cfg.Sink(lg.FeedIndex, lg); err != nil {
			land.Lock()
			if land.sinkErr == nil {
				land.sinkErr = err
			}
			land.Unlock()
		}
	}
	// Buffered to the full job count so neither the producer nor a retry
	// timer ever blocks: each URL has at most one outstanding job at any
	// moment, so capacity len(include) suffices.
	jobs := make(chan job, len(include))
	pending.Add(len(include))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker gets its own crawler so faker sequences differ
			// across sessions without shared state. The copy shares the
			// template's optional Timings collector (atomic, attempt-level);
			// Stats.Stages does not read it.
			c := *cfg.Crawler
			for jb := range jobs {
				// Pre-session fast path: a triage-attributed (or cut) URL
				// lands its synthesized log through the normal completion
				// path without ever opening a browser. Fast-path outcomes
				// are never retryable, so this only triggers on attempt 0.
				if cfg.FastPath != nil && jb.attempt == 0 {
					if lg := cfg.FastPath(jb.idx, urls[jb.idx]); lg != nil {
						lg.Attempts = 1
						lg.FeedIndex = jb.idx
						finish(lg)
						pending.Done()
						continue
					}
				}
				// The faker seed derives from the job index (not the worker
				// or the attempt), which keeps runs reproducible across
				// worker counts and makes retries exact re-executions.
				c.FakerSeed = cfg.Crawler.FakerSeed + int64(jb.idx)*7919
				lg := crawlGuarded(&c, urls[jb.idx], &panics, cfg.Monitor)
				if retryable(lg.Outcome) {
					if jb.attempt < maxRetries {
						atomic.AddInt64(&retries, 1)
						cfg.Monitor.noteRetry()
						next := job{idx: jb.idx, attempt: jb.attempt + 1}
						time.AfterFunc(
							backoffDelay(retryBase, retryMax, next.attempt, cfg.RetrySeed, next.idx),
							func() { jobs <- next })
						continue
					}
					// Retries exhausted: keep the taxonomy class in Error.
					lg.Error = lg.Outcome
					lg.Outcome = OutcomeGaveUp
				}
				lg.Attempts = jb.attempt + 1
				lg.FeedIndex = jb.idx
				finish(lg)
				pending.Done()
			}
		}()
	}
	for _, i := range include {
		jobs <- job{idx: i}
	}
	go func() {
		// Close only once every URL has a final log; retry timers always
		// fire before that, so no send can race the close.
		pending.Wait()
		close(jobs)
	}()
	wg.Wait()

	stats := Stats{
		Sites:         len(include),
		Elapsed:       start.Elapsed(),
		FastPathed:    land.outcomes[crawler.OutcomeAttributed] + land.outcomes[crawler.OutcomeTriagedOut],
		Outcomes:      land.outcomes,
		Stages:        stages.Snapshot(),
		Retries:       int(atomic.LoadInt64(&retries)),
		Panics:        int(atomic.LoadInt64(&panics)),
		Failures:      land.failures,
		Degraded:      land.degraded,
		Uncloaked:     land.uncloaked,
		CloakAttempts: land.cloakAttempts,
	}
	// Sessions that never landed (a worker died without recording — the
	// panic guard should make this impossible) stay visible as lost.
	if lost := len(include) - land.count; lost > 0 {
		stats.Outcomes[OutcomeLost] += lost
	}
	return logs, stats, land.sinkErr
}

// retryable extends the crawler's transient-failure set with the farm's
// own panic classification.
func retryable(outcome string) bool {
	return crawler.Retryable(outcome) || outcome == OutcomePanic
}

// crawlGuarded runs one session under the per-worker panic guard: a panic
// anywhere in the crawl (browser, renderer, models) is recovered into a
// classified, retryable session log instead of killing the worker.
func crawlGuarded(c *crawler.Crawler, url string, panics *int64, mon *Monitor) (lg *crawler.SessionLog) {
	defer func() {
		if r := recover(); r != nil {
			atomic.AddInt64(panics, 1)
			mon.notePanic()
			lg = &crawler.SessionLog{
				SeedURL: url,
				Outcome: OutcomePanic,
				Error:   fmt.Sprintf("recovered panic: %v", r),
			}
		}
	}()
	lg = c.Crawl(url)
	if lg == nil {
		lg = &crawler.SessionLog{SeedURL: url, Outcome: OutcomeLost}
	}
	return lg
}

// backoffDelay computes the capped exponential backoff before attempt
// (1-based), jittered deterministically into [d/2, d] by hashing
// (seed, idx, attempt) — the full-jitter scheme real crawl farms use to
// de-synchronize retry bursts, made reproducible for the determinism
// tests.
func backoffDelay(base, max time.Duration, attempt int, seed int64, idx int) time.Duration {
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d", seed, idx, attempt)
	half := uint64(d / 2)
	if half == 0 {
		return d
	}
	return d/2 + time.Duration(h.Sum64()%(half+1))
}
