package vision

import (
	"math/rand"
	"testing"

	"repro/internal/captcha"
	"repro/internal/raster"
)

// buildPage draws a simple page with a button and a CAPTCHA at known boxes.
func buildPage(rng *rand.Rand, kind captcha.Kind) Example {
	img := raster.New(400, 300, raster.White)
	img.DrawString("PLEASE VERIFY YOUR ACCOUNT", 20, 12, raster.Black)
	// Input box.
	img.Outline(raster.R(20, 40, 180, 14), raster.Gray)

	cimg, _ := captcha.Render(kind, rng)
	cx, cy := 20, 80
	img.Blit(cimg, cx, cy)
	cbox := raster.R(cx, cy, cimg.W, cimg.H)

	bbox := raster.R(20, 220, 70, 18)
	img.Fill(bbox, raster.LightGray)
	img.Outline(bbox, raster.Gray)
	img.DrawString("Submit", bbox.X+6, bbox.Y+5, raster.Black)

	return Example{Image: img, Annotations: []Annotation{
		{Class: kind.String(), Box: cbox},
		{Class: ClassButton, Box: bbox},
	}}
}

func trainedDetector(t testing.TB) *Detector {
	rng := rand.New(rand.NewSource(42))
	var examples []Example
	for i := 0; i < 120; i++ {
		kind := captcha.AllKinds()[i%int(captcha.NumKinds)]
		examples = append(examples, buildPage(rng, kind))
	}
	d, err := Train(examples, 7)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTrainRequiresData(t *testing.T) {
	if _, err := Train(nil, 1); err == nil {
		t.Error("empty training should fail")
	}
}

func TestProposalsFindWidgets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ex := buildPage(rng, captcha.Text1)
	props := Proposals(ex.Image)
	if len(props) == 0 {
		t.Fatal("no proposals on a page with widgets")
	}
	// Each annotation must be covered by some proposal with decent IoU.
	for _, an := range ex.Annotations {
		best := 0.0
		for _, p := range props {
			if iou := p.IoU(an.Box); iou > best {
				best = iou
			}
		}
		if best < MatchIoU {
			t.Errorf("no proposal covers %s (best IoU %.2f)", an.Class, best)
		}
	}
}

func TestProposalsEmptyImage(t *testing.T) {
	if got := Proposals(raster.New(0, 0, raster.White)); got != nil {
		t.Error("empty image should yield no proposals")
	}
	blank := raster.New(200, 200, raster.White)
	if got := Proposals(blank); len(got) != 0 {
		t.Errorf("blank page yielded %d proposals", len(got))
	}
}

func TestDetectButtonAndCaptcha(t *testing.T) {
	d := trainedDetector(t)
	rng := rand.New(rand.NewSource(99))
	ex := buildPage(rng, captcha.Text2)
	dets := d.Detect(ex.Image)
	foundButton, foundCaptcha := false, false
	for _, det := range dets {
		for _, an := range ex.Annotations {
			if det.Box.IoU(an.Box) >= MatchIoU && det.Class == an.Class {
				if an.Class == ClassButton {
					foundButton = true
				} else {
					foundCaptcha = true
				}
			}
		}
	}
	if !foundButton {
		t.Errorf("button not detected; detections: %+v", dets)
	}
	if !foundCaptcha {
		t.Errorf("captcha not detected; detections: %+v", dets)
	}
}

func TestDetectClassFiltering(t *testing.T) {
	d := trainedDetector(t)
	rng := rand.New(rand.NewSource(5))
	ex := buildPage(rng, captcha.Text1)
	for _, det := range d.DetectClass(ex.Image, ClassButton) {
		if det.Class != ClassButton {
			t.Errorf("DetectClass leaked class %s", det.Class)
		}
	}
}

func TestNonMaxSuppression(t *testing.T) {
	dets := []Detection{
		{Class: "button", Score: 0.9, Box: raster.R(0, 0, 50, 20)},
		{Class: "button", Score: 0.8, Box: raster.R(2, 2, 50, 20)},   // overlaps first
		{Class: "button", Score: 0.7, Box: raster.R(200, 0, 50, 20)}, // distinct
		{Class: "logo", Score: 0.6, Box: raster.R(1, 1, 50, 20)},     // other class
	}
	kept := NonMaxSuppression(dets, 0.3)
	if len(kept) != 3 {
		t.Fatalf("kept %d, want 3: %+v", len(kept), kept)
	}
	if kept[0].Score != 0.9 {
		t.Error("NMS must keep highest score first")
	}
}

func TestEvaluatePerfectOnTraining(t *testing.T) {
	// On clean, well-separated synthetic pages the detector should achieve
	// high AP — the Table 5 regime (77-99 AP).
	d := trainedDetector(t)
	rng := rand.New(rand.NewSource(1234))
	var test []Example
	for i := 0; i < 40; i++ {
		test = append(test, buildPage(rng, captcha.AllKinds()[i%8]))
	}
	res := Evaluate(d, test)
	if res.MeanAP < 0.6 {
		t.Errorf("mean AP = %.2f, want >= 0.6; per-class: %v", res.MeanAP, res.APPerClass)
	}
	if res.APPerClass[ClassButton] < 0.7 {
		t.Errorf("button AP = %.2f", res.APPerClass[ClassButton])
	}
	if res.Precision() <= 0 || res.Recall() <= 0 {
		t.Error("aggregate precision/recall should be positive")
	}
}

func TestFeaturesDimAndStability(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ex := buildPage(rng, captcha.Text3)
	f := Features(ex.Image, ex.Annotations[0].Box)
	if len(f) != FeatureDim {
		t.Fatalf("feature dim = %d, want %d", len(f), FeatureDim)
	}
	f2 := Features(ex.Image, ex.Annotations[0].Box)
	for i := range f {
		if f[i] != f2[i] {
			t.Fatal("features not deterministic")
		}
	}
	// Empty region yields the zero vector without panicking.
	zero := Features(ex.Image, raster.R(500, 500, 10, 10))
	for _, v := range zero {
		if v != 0 {
			t.Error("out-of-bounds region should yield zero features")
		}
	}
}

func TestDetectorMarshalRoundTrip(t *testing.T) {
	d := trainedDetector(t)
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := UnmarshalDetector(data)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	ex := buildPage(rng, captcha.Visual2)
	a := d.Detect(ex.Image)
	b := d2.Detect(ex.Image)
	if len(a) != len(b) {
		t.Fatalf("round trip changed detections: %d vs %d", len(a), len(b))
	}
	if _, err := UnmarshalDetector([]byte("junk")); err == nil {
		t.Error("junk should fail to unmarshal")
	}
}

func TestScoreRegionBackgroundOnBlank(t *testing.T) {
	d := trainedDetector(t)
	blank := raster.New(300, 200, raster.White)
	blank.DrawString("JUST SOME RUNNING TEXT HERE", 10, 50, raster.Black)
	dets := d.Detect(blank)
	for _, det := range dets {
		if det.Class == ClassButton && det.Score > 0.9 {
			t.Errorf("plain text confidently detected as button: %+v", det)
		}
	}
}

func BenchmarkDetect(b *testing.B) {
	d := trainedDetector(b)
	rng := rand.New(rand.NewSource(3))
	ex := buildPage(rng, captcha.Text4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(ex.Image)
	}
}
