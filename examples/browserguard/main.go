// Browserguard demonstrates the defense sketched in the paper's Discussion
// (Section 6): a user starts typing credentials into a suspicious page; the
// browser buffers the keystrokes instead of delivering them, and in the
// background an intelligent-crawler session interacts with the page using
// forged data. If the investigation finds phishing behaviour the buffered
// data is discarded and the user alerted; a benign page gets the buffer
// replayed transparently.
package main

import (
	"fmt"
	"log"

	"repro/internal/browser"
	"repro/internal/crawler"
	"repro/internal/fielddata"
	"repro/internal/guard"
	"repro/internal/phishserver"
	"repro/internal/site"
)

func main() {
	phish := &site.Site{ID: "ph", Host: "account-verify-billing.test",
		Pages: []*site.Page{
			{Path: "/", HTML: `<html><head>
<script type="application/x-behavior">{"listeners":[{"target":"input","event":"keydown","action":"send-data"}]}</script>
</head><body><form action="/"><div><label>Email</label><input name="e"></div>
<div><label>Password</label><input type="password" name="p"></div><button>Verify</button></form></body></html>`,
				Next: "/card", Mode: site.NextRedirect},
			{Path: "/card", HTML: `<html><body><form action="/card">
<div><label>Card number</label><input name="c"></div><div><label>CVV</label><input name="v"></div>
<button>Confirm</button></form></body></html>`, Next: "/ok", Mode: site.NextRedirect},
			{Path: "/ok", HTML: `<html><body><div>Congratulations! Your account has been verified successfully.</div></body></html>`},
		}, Images: map[string][]byte{}}

	benign := &site.Site{ID: "ok", Host: "mail.legit-corp.test",
		Pages: []*site.Page{
			{Path: "/", HTML: `<html><body><form action="/">
<div><label>Email</label><input name="email"></div>
<div><label>Password</label><input type="password" name="pw"></div>
<button>Sign in</button></form></body></html>`,
				Next: "/inbox", Mode: site.NextRedirect,
				// A real account check: unknown credentials are rejected.
				Validate: map[string]string{"pw": site.ValidateEmail}},
			{Path: "/inbox", HTML: "<html><body>inbox</body></html>"},
		}, Images: map[string][]byte{}}

	reg := phishserver.NewRegistry()
	reg.AddSite(phish)
	reg.AddSite(benign)
	classifier, err := fielddata.TrainDefault(1)
	if err != nil {
		log.Fatal(err)
	}
	c := &crawler.Crawler{
		Classifier: classifier,
		NewBrowser: func() *browser.Browser {
			return browser.New(browser.Options{Transport: phishserver.Transport{Registry: reg}})
		},
		FakerSeed: 11,
	}

	for _, target := range []*site.Site{phish, benign} {
		fmt.Printf("User opens %s and starts typing...\n", target.SeedURL())
		buf := guard.NewBuffer()
		buf.TypeString("email", "victim@example.com")
		buf.TypeString("password", "Tr0ub4dor&3")
		fmt.Printf("  %d fields buffered by the browser (nothing delivered to the page)\n", buf.Len())

		fmt.Println("  Background investigation crawls the page with forged data...")
		verdict := guard.Judge(c.Crawl(target.SeedURL()))
		for _, s := range verdict.Signals {
			fmt.Printf("    signal %-24s +%d  %s\n", s.Name, s.Weight, s.Detail)
		}
		if verdict.Phishing {
			buf.Discard()
			fmt.Printf("  VERDICT: PHISHING (score %d) — user alerted, buffer discarded (%d fields remain)\n\n",
				verdict.Score, buf.Len())
		} else {
			fmt.Printf("  VERDICT: benign (score %d) — replaying %d buffered fields into the page\n\n",
				verdict.Score, buf.Len())
		}
	}
}
