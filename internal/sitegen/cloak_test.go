package sitegen

import (
	"testing"

	"repro/internal/browser"
	"repro/internal/site"
)

func cloakedParams(n int, seed int64, rate float64) Params {
	p := ScaledParams(n, seed)
	p.CloakRate = rate
	return p
}

func TestCloakRateZeroKeepsCorpusByteIdentical(t *testing.T) {
	// The cloaking quotas must not perturb the generator's rng stream when
	// disabled: a CloakRate-0 corpus is the exact corpus earlier versions
	// generated, page bytes included.
	a := Generate(ScaledParams(60, 11))
	b := Generate(cloakedParams(60, 11, 0))
	if len(a.Sites) != len(b.Sites) {
		t.Fatal("sizes differ")
	}
	for i := range a.Sites {
		if a.Sites[i].Host != b.Sites[i].Host {
			t.Fatalf("site %d host %q != %q", i, a.Sites[i].Host, b.Sites[i].Host)
		}
		for j := range a.Sites[i].Pages {
			if a.Sites[i].Pages[j].HTML != b.Sites[i].Pages[j].HTML {
				t.Fatalf("site %d page %d HTML differs with CloakRate=0", i, j)
			}
		}
		if b.Sites[i].Cloak != nil {
			t.Fatalf("site %d cloaked with CloakRate=0", i)
		}
	}
}

func TestCloakRateApproximatelyHeld(t *testing.T) {
	c := Generate(cloakedParams(200, 5, 0.5))
	cloaked := 0
	for _, s := range c.Sites {
		if s.Cloak != nil {
			cloaked++
		}
	}
	frac := float64(cloaked) / float64(len(c.Sites))
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("cloaked fraction = %.2f (%d/%d), want ~0.5", frac, cloaked, len(c.Sites))
	}
}

func TestCloakDeterministicAndCampaignCoherent(t *testing.T) {
	a := Generate(cloakedParams(120, 3, 0.6))
	b := Generate(cloakedParams(120, 3, 0.6))
	for i := range a.Sites {
		ac, bc := a.Sites[i].Cloak, b.Sites[i].Cloak
		if (ac == nil) != (bc == nil) {
			t.Fatalf("site %d cloak presence differs across identical params", i)
		}
		if ac == nil {
			continue
		}
		if len(ac.Rules) != len(bc.Rules) {
			t.Fatalf("site %d rule counts differ", i)
		}
		for j := range ac.Rules {
			if ac.Rules[j] != bc.Rules[j] {
				t.Fatalf("site %d rule %d differs: %+v != %+v", i, j, ac.Rules[j], bc.Rules[j])
			}
		}
	}

	// Cloaking is a campaign property: every site of a campaign shares the
	// founder's gate (clones deploy the same kit, gate included).
	byCampaign := map[string][]*site.Site{}
	for _, s := range a.Sites {
		byCampaign[s.CampaignID] = append(byCampaign[s.CampaignID], s)
	}
	for id, sites := range byCampaign {
		first := sites[0].Cloak
		for _, s := range sites[1:] {
			if (first == nil) != (s.Cloak == nil) {
				t.Fatalf("campaign %s mixes cloaked and uncloaked sites", id)
			}
			if first == nil {
				continue
			}
			for j := range first.Rules {
				if first.Rules[j] != s.Cloak.Rules[j] {
					t.Fatalf("campaign %s sites disagree on rule %d", id, j)
				}
			}
		}
	}
}

func TestCloakRulesWellFormed(t *testing.T) {
	pools := map[string][]string{
		site.CloakUserAgent: browser.UserAgents(),
		site.CloakReferrer:  browser.Referrers(),
		site.CloakLanguage:  browser.Languages(),
		site.CloakGeo:       browser.ForwardedAddrs(),
	}
	c := Generate(cloakedParams(150, 9, 0.7))
	sawCloak := false
	for _, s := range c.Sites {
		if s.Cloak == nil {
			if s.Truth.Cloaked || len(s.Truth.CloakKinds) != 0 {
				t.Fatalf("site %s truth claims cloaking without a Cloak spec", s.ID)
			}
			continue
		}
		sawCloak = true
		if !s.Truth.Cloaked || len(s.Truth.CloakKinds) != len(s.Cloak.Rules) {
			t.Fatalf("site %s truth out of sync with Cloak spec", s.ID)
		}
		if s.Cloak.DecoyHTML == "" {
			t.Fatalf("site %s has no decoy page", s.ID)
		}
		if n := len(s.Cloak.Rules); n < 1 || n > 3 {
			t.Fatalf("site %s has %d rules, want 1-3", s.ID, n)
		}
		seen := map[string]bool{}
		for _, r := range s.Cloak.Rules {
			if seen[r.Kind] {
				t.Fatalf("site %s repeats rule kind %s", s.ID, r.Kind)
			}
			seen[r.Kind] = true
			pool, valued := pools[r.Kind]
			if !valued {
				if r.Kind != site.CloakCookie && r.Kind != site.CloakJS {
					t.Fatalf("site %s has unknown rule kind %q", s.ID, r.Kind)
				}
				if r.Value != "" {
					t.Fatalf("site %s boolean rule %s carries value %q", s.ID, r.Kind, r.Value)
				}
				continue
			}
			// Required values come from candidate indices >= 1: the honest
			// default (index 0) must never satisfy a gate.
			idx := -1
			for i, v := range pool {
				if v == r.Value {
					idx = i
				}
			}
			if idx < 1 {
				t.Fatalf("site %s rule %s value %q not in pool tail (idx %d)", s.ID, r.Kind, r.Value, idx)
			}
		}
	}
	if !sawCloak {
		t.Fatal("rate 0.7 corpus generated no cloaked sites")
	}
}
