// Command phishtrain trains and evaluates the system's machine-learning
// components with the paper's protocols: the input-field classifier
// (Table 6: 1,000 train / 310 test), the CAPTCHA/button/logo object
// detector (Table 5: generated pages train/val/test), and the terminal-page
// classifier (Section 5.2.3: 200 train / 100 test, reject at 0.65).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/fielddata"
	"repro/internal/metrics"
	"repro/internal/pagegen"
	"repro/internal/report"
	"repro/internal/termclass"
	"repro/internal/textclass"
	"repro/internal/vision"
)

func main() {
	fields := flag.Bool("fields", false, "train and evaluate the input-field classifier (Table 6)")
	detector := flag.Bool("detector", false, "train and evaluate the object detector (Table 5)")
	terminal := flag.Bool("terminal", false, "train and evaluate the terminal-page classifier")
	trainPages := flag.Int("detector-train", 2000, "generated pages for detector training (paper: 10,000)")
	valPages := flag.Int("detector-val", 200, "validation pages (paper: 1,000)")
	testPages := flag.Int("detector-test", 400, "test pages (paper: 2,000)")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()
	if !*fields && !*detector && !*terminal {
		*fields, *detector, *terminal = true, true, true
	}

	if *fields {
		corpus := fielddata.Corpus(*seed)
		train, test := fielddata.Split(corpus)
		m, err := textclass.Train(train, textclass.TrainConfig{Seed: *seed, Epochs: 40})
		if err != nil {
			log.Fatalf("training field classifier: %v", err)
		}
		conf := metrics.NewConfusion()
		for _, s := range test {
			pred, _ := m.Predict(s.Text)
			conf.Add(s.Label, pred)
		}
		fmt.Println(report.Table6(conf))
	}

	if *detector {
		fmt.Printf("Training detector on %d generated pages (validating on %d, testing on %d)...\n",
			*trainPages, *valPages, *testPages)
		d, err := vision.Train(pagegen.GenerateSet(*trainPages, *seed+1, pagegen.Config{}), *seed+2)
		if err != nil {
			log.Fatalf("training detector: %v", err)
		}
		val := vision.Evaluate(d, pagegen.GenerateSet(*valPages, *seed+3, pagegen.Config{}))
		fmt.Printf("Validation mean AP: %.1f (paper: 91.9)\n", val.MeanAP*100)
		test := vision.Evaluate(d, pagegen.GenerateSet(*testPages, *seed+4, pagegen.Config{}))
		fmt.Println(report.Table5(test))
	}

	if *terminal {
		c, err := termclass.Train(*seed + 5)
		if err != nil {
			log.Fatalf("training terminal classifier: %v", err)
		}
		acc := c.Evaluate(*seed+6, termclass.TestSize)
		fmt.Printf("Terminal-page classifier accuracy on %d held-out samples: %.1f%% (paper: 97%%)\n",
			termclass.TestSize, acc*100)
	}
}
