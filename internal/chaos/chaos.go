// Package chaos injects deterministic, seed-driven faults into the
// synthetic phishing feed so the crawl pipeline can be exercised — and
// tested — against the operational reality the paper crawled: a large
// share of reported phishing URLs are already dead, slow, cloaked, or
// mid-takedown by the time the crawler reaches them. An Injector wraps the
// in-process phishserver transport (or any http.RoundTripper) and assigns
// each hostname at most one Fault as a pure function of (seed, host), so
// identical seeds produce identical fault schedules regardless of worker
// count or request interleaving — the property the farm's 1-vs-30-worker
// determinism test pins.
//
// The injected failure modes mirror the field conditions phishing crawlers
// report: connection-refused dead sites, stalling and slow responses,
// 5xx-broken backends, truncated response bodies, hosting-provider
// takedown pages, and intermittent flakiness that clears after a few
// attempts. EXPERIMENTS.md maps the default rates to the paper's
// reachability discussion.
package chaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Fault identifies one injected failure mode.
type Fault string

// The failure modes an Injector can assign to a host.
const (
	// FaultNone leaves the host healthy.
	FaultNone Fault = ""
	// FaultDead refuses every connection: the site is gone.
	FaultDead Fault = "dead"
	// FaultStall never answers within any reasonable deadline; the
	// response arrives only if the request context outlives StallDelay.
	FaultStall Fault = "stall"
	// FaultSlow delays every response by SlowDelay but then succeeds.
	FaultSlow Fault = "slow"
	// FaultServerError answers every request with a 503 — the site's
	// backend is broken. Injected at the transport so it is an operational
	// failure, distinct from the corpus's own HTTP-error termination
	// pattern (a measured UX behaviour, where only the final POST of a
	// flow fails; see site.Page.FailStatus).
	FaultServerError Fault = "server-error"
	// FaultTruncate cuts every response body short, ending the read with
	// io.ErrUnexpectedEOF.
	FaultTruncate Fault = "truncate"
	// FaultTakedown swaps the whole site for a hosting-provider
	// suspension page.
	FaultTakedown Fault = "takedown"
	// FaultFlaky resets the first FlakyFailures connections to the host,
	// then behaves normally — the transient failure a retry queue turns
	// into a degraded completion.
	FaultFlaky Fault = "flaky"
)

// Profile parameterises the fault mix. Rates are independent per-site
// probabilities evaluated in field order; their sum must be <= 1 and the
// remainder of the probability mass leaves sites healthy.
type Profile struct {
	DeadRate        float64
	StallRate       float64
	SlowRate        float64
	ServerErrorRate float64
	TruncateRate    float64
	TakedownRate    float64
	FlakyRate       float64

	// SlowDelay is the per-request latency of FaultSlow sites (default
	// 2ms — well inside any sane fetch deadline at synthetic timescale).
	SlowDelay time.Duration
	// StallDelay bounds how long a FaultStall site blocks when the
	// request context carries no deadline (default 30s, a safety net:
	// stalls are normally ended by the per-fetch deadline).
	StallDelay time.Duration
	// FlakyFailures is how many connections to a FaultFlaky host are
	// reset before it recovers (default 2).
	FlakyFailures int
}

// DefaultProfile returns the fault mix calibrated against the paper's
// reachability discussion (see EXPERIMENTS.md): roughly 40% of reported
// URLs exhibit some operational fault by crawl time, dominated by dead
// and transiently unreachable sites.
func DefaultProfile() Profile {
	return Profile{
		DeadRate:        0.12,
		StallRate:       0.04,
		SlowRate:        0.10,
		ServerErrorRate: 0.05,
		TruncateRate:    0.03,
		TakedownRate:    0.06,
		FlakyRate:       0.10,
	}
}

func (p Profile) withDefaults() Profile {
	if p.SlowDelay <= 0 {
		p.SlowDelay = 2 * time.Millisecond
	}
	if p.StallDelay <= 0 {
		p.StallDelay = 30 * time.Second
	}
	if p.FlakyFailures <= 0 {
		p.FlakyFailures = 2
	}
	return p
}

// FaultRate returns the total probability mass assigned to faults.
func (p Profile) FaultRate() float64 {
	return p.DeadRate + p.StallRate + p.SlowRate + p.ServerErrorRate +
		p.TruncateRate + p.TakedownRate + p.FlakyRate
}

// TakedownHTML is the suspension page FaultTakedown hosts serve — the
// page a hosting provider substitutes after abuse reports. The crawler's
// takedown detector keys on its phrasing.
const TakedownHTML = `<html><head><title>Account Suspended</title></head><body>
<div><h1>This site has been suspended</h1>
<p>This website has been taken down for violating our acceptable use policy.
If you are the owner of this domain, please contact your hosting provider.</p>
</div></body></html>`

// Injector wraps an http.RoundTripper with per-host fault injection. The
// zero value is unusable; populate Profile, Seed, and Inner.
type Injector struct {
	// Profile is the fault mix.
	Profile Profile
	// Seed drives fault assignment; the same seed yields the same
	// schedule.
	Seed int64
	// Inner serves the requests of healthy hosts (and the healthy phases
	// of slow/flaky hosts).
	Inner http.RoundTripper
	// InjectHost, when non-nil, limits injection to hosts it accepts —
	// the pipeline passes the phishing-site host set so benign redirect
	// targets stay healthy. nil injects everywhere.
	InjectHost func(host string) bool

	mu     sync.Mutex
	resets map[string]int // FaultFlaky hosts: connections reset so far
}

// FaultFor returns the fault assigned to host: a pure function of
// (Seed, host), independent of request history and of InjectHost.
func (in *Injector) FaultFor(host string) Fault {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", in.Seed, host)
	// 53 uniform bits -> [0, 1).
	u := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	p := in.Profile
	for _, c := range []struct {
		rate  float64
		fault Fault
	}{
		{p.DeadRate, FaultDead},
		{p.StallRate, FaultStall},
		{p.SlowRate, FaultSlow},
		{p.ServerErrorRate, FaultServerError},
		{p.TruncateRate, FaultTruncate},
		{p.TakedownRate, FaultTakedown},
		{p.FlakyRate, FaultFlaky},
	} {
		if u < c.rate {
			return c.fault
		}
		u -= c.rate
	}
	return FaultNone
}

// Summary tallies the faults FaultFor assigns across hosts — the injected
// ground truth an experiment report compares crawl outcomes against.
func (in *Injector) Summary(hosts []string) map[Fault]int {
	out := map[Fault]int{}
	for _, h := range hosts {
		out[in.FaultFor(h)]++
	}
	return out
}

// RoundTrip implements http.RoundTripper with the host's fault applied.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Hostname()
	if in.InjectHost != nil && !in.InjectHost(host) {
		return in.Inner.RoundTrip(req)
	}
	p := in.Profile.withDefaults()
	switch in.FaultFor(host) {
	case FaultDead:
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	case FaultStall:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(p.StallDelay):
			return nil, &net.OpError{Op: "read", Net: "tcp", Err: context.DeadlineExceeded}
		}
	case FaultSlow:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(p.SlowDelay):
		}
		return in.Inner.RoundTrip(req)
	case FaultServerError:
		return synthResponse(req, http.StatusServiceUnavailable, "text/plain; charset=utf-8", "backend unavailable\n"), nil
	case FaultTruncate:
		resp, err := in.Inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		return truncateBody(resp), nil
	case FaultTakedown:
		return synthResponse(req, http.StatusOK, "text/html; charset=utf-8", TakedownHTML), nil
	case FaultFlaky:
		in.mu.Lock()
		if in.resets == nil {
			in.resets = make(map[string]int)
		}
		reset := in.resets[host] < p.FlakyFailures
		if reset {
			in.resets[host]++
		}
		in.mu.Unlock()
		if reset {
			return nil, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
		}
		return in.Inner.RoundTrip(req)
	default:
		return in.Inner.RoundTrip(req)
	}
}

// synthResponse fabricates a complete http.Response the way the in-process
// phishserver transport does, so faulted responses are indistinguishable
// from served ones at the client.
func synthResponse(req *http.Request, status int, contentType, body string) *http.Response {
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {contentType}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody replaces resp's body with its first half followed by
// io.ErrUnexpectedEOF, the client-visible signature of a connection torn
// down mid-transfer. The original body is NOT closed here: the serving
// transport recycles the response's header and buffers on Close, and the
// caller is still going to read resp.Header, so the close is chained into
// the replacement body and happens only when the caller closes it.
func truncateBody(resp *http.Response) *http.Response {
	data, err := io.ReadAll(resp.Body)
	if err != nil || len(data) == 0 {
		resp.Body = &replacedBody{Reader: strings.NewReader(""), inner: resp.Body}
		return resp
	}
	cut := len(data) / 2
	resp.Body = &replacedBody{Reader: &truncatedReader{data: data[:cut]}, inner: resp.Body}
	resp.ContentLength = int64(len(data))
	return resp
}

// replacedBody substitutes a response payload while deferring the original
// body's Close to the caller's Close, keeping the response valid (headers
// included) until the caller is done with it.
type replacedBody struct {
	io.Reader
	inner io.ReadCloser
}

func (b *replacedBody) Close() error { return b.inner.Close() }

// truncatedReader yields its data and then fails with io.ErrUnexpectedEOF
// instead of a clean EOF.
type truncatedReader struct {
	data []byte
	off  int
}

func (r *truncatedReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
