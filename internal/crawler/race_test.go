//go:build race

package crawler

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation allocates on its own and makes
// testing.AllocsPerRun budgets meaningless.
const raceEnabled = true
