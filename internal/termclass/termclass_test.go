package termclass

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCorpusBalanced(t *testing.T) {
	c := Corpus(200, 1)
	if len(c) != 200 {
		t.Fatalf("corpus = %d", len(c))
	}
	counts := map[string]int{}
	for _, s := range c {
		counts[s.Label]++
		if s.Text == "" {
			t.Fatal("empty sample")
		}
	}
	for _, l := range []string{Success, CustomErr, HTTPError, Awareness} {
		if counts[l] != 50 {
			t.Errorf("label %s count = %d, want 50", l, counts[l])
		}
	}
}

func TestTrainAndClassify(t *testing.T) {
	c, err := Train(2)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"Congratulations! Your account has been verified successfully.":     Success,
		"404 not found the requested resource was not found on this server": HTTPError,
		"An error occurred while processing your request.":                  CustomErr,
		"You fell for a Contoso phishing simulation. Your computer is safe": Awareness,
	}
	for text, want := range cases {
		got, conf := c.Classify(text)
		if got != want {
			t.Errorf("Classify(%q) = %s (%.2f), want %s", text, got, conf, want)
		}
	}
}

func TestRejectOption(t *testing.T) {
	c, err := Train(3)
	if err != nil {
		t.Fatal(err)
	}
	label, _ := c.Classify("zqxwv unrelated gibberish tokens entirely")
	if label != Other {
		t.Errorf("gibberish classified as %s", label)
	}
}

func TestEvaluateAccuracy(t *testing.T) {
	// The paper reports 97% accuracy on 100 held-out samples with the 0.65
	// reject option.
	c, err := Train(4)
	if err != nil {
		t.Fatal(err)
	}
	acc := c.Evaluate(5, TestSize)
	if acc < 0.9 {
		t.Errorf("held-out accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestSampleGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := Sample(rng, Awareness)
	if s.Label != Awareness {
		t.Errorf("label = %s", s.Label)
	}
	if strings.Contains(s.Text, "%s") {
		t.Errorf("template placeholder not substituted: %q", s.Text)
	}
}

func TestSprintf1(t *testing.T) {
	if got := sprintf1("a %s b", "X"); got != "a X b" {
		t.Errorf("sprintf1 = %q", got)
	}
	if got := sprintf1("no placeholder", "X"); got != "no placeholder" {
		t.Errorf("sprintf1 = %q", got)
	}
}
