package vision

import (
	"sort"
	"sync"

	"repro/internal/raster"
)

// Proposal generation: connected components of non-background pixels with a
// small dilation radius, so glyphs merge into text lines and widget chrome
// merges into whole widgets. This plays the role of Faster R-CNN's region
// proposal network.

const (
	dilate       = 3   // merge radius in pixels
	minPropW     = 10  // discard smaller proposals
	minPropH     = 8   //
	maxProposals = 300 // safety cap for pathological pages
)

// proposal couples a candidate box with the integral image of its window,
// so tightening and feature extraction share one table per region instead
// of re-scanning the window's pixels per statistic.
type proposal struct {
	box raster.Rect
	in  *raster.Integral
}

// propScratch holds the transient buffers of one proposalsIn call, recycled
// through a pool so steady-state detection does not allocate per page.
type propScratch struct {
	occupied []bool
	label    []int32
	queue    []int32
	boxes    []raster.Rect
}

var scratchPool = sync.Pool{New: func() any { return new(propScratch) }}

// Proposals returns candidate object regions in img, largest first.
func Proposals(img *raster.Image) []raster.Rect {
	props := proposalsIn(img)
	if props == nil {
		return nil
	}
	out := make([]raster.Rect, len(props))
	for i, p := range props {
		out[i] = p.box
		p.in.Release()
	}
	return out
}

// proposalsIn finds, tightens, filters, and ranks candidate regions,
// returning each with its window integral for downstream scoring.
func proposalsIn(img *raster.Image) []proposal {
	w, h := img.W, img.H
	if w == 0 || h == 0 {
		return nil
	}
	// Downscale the problem: operate on a coarse grid of dilate-sized cells
	// marking cells containing any non-white pixel, then connected
	// components over cells. This is O(pixels) and merges features within
	// the dilation radius.
	cw := (w + dilate - 1) / dilate
	ch := (h + dilate - 1) / dilate
	s := scratchPool.Get().(*propScratch)
	defer scratchPool.Put(s)
	if cap(s.occupied) < cw*ch {
		s.occupied = make([]bool, cw*ch)
		s.label = make([]int32, cw*ch)
	}
	occupied := s.occupied[:cw*ch]
	for i := range occupied {
		occupied[i] = false
	}
	for y := 0; y < h; y++ {
		row := img.Pix[y*w : y*w+w]
		cellRow := occupied[(y/dilate)*cw:]
		// Pages are mostly background; OR eight pixels at a time and only
		// fall back to per-pixel marking when a chunk has content. Relies
		// on White being palette index 0.
		x := 0
		for ; x+8 <= w; x += 8 {
			if row[x]|row[x+1]|row[x+2]|row[x+3]|row[x+4]|row[x+5]|row[x+6]|row[x+7] != 0 {
				for i := x; i < x+8; i++ {
					if row[i] != raster.White {
						cellRow[i/dilate] = true
					}
				}
			}
		}
		for ; x < w; x++ {
			if row[x] != raster.White {
				cellRow[x/dilate] = true
			}
		}
	}
	label := s.label[:cw*ch]
	for i := range label {
		label[i] = -1
	}
	boxes := s.boxes[:0]
	queue := s.queue[:0]
	for start := 0; start < cw*ch; start++ {
		if !occupied[start] || label[start] >= 0 {
			continue
		}
		id := int32(len(boxes))
		minX, minY, maxX, maxY := cw, ch, -1, -1
		queue = queue[:0]
		queue = append(queue, int32(start))
		label[start] = id
		for len(queue) > 0 {
			cur := int(queue[len(queue)-1])
			queue = queue[:len(queue)-1]
			cx, cy := cur%cw, cur/cw
			if cx < minX {
				minX = cx
			}
			if cy < minY {
				minY = cy
			}
			if cx > maxX {
				maxX = cx
			}
			if cy > maxY {
				maxY = cy
			}
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := cx+dx, cy+dy
					if nx < 0 || ny < 0 || nx >= cw || ny >= ch {
						continue
					}
					ni := ny*cw + nx
					if occupied[ni] && label[ni] < 0 {
						label[ni] = id
						queue = append(queue, int32(ni))
					}
				}
			}
		}
		boxes = append(boxes, raster.R(
			minX*dilate, minY*dilate,
			(maxX-minX+1)*dilate, (maxY-minY+1)*dilate,
		))
	}
	// Tighten to content, filter, and clip. Tightening removes the
	// cell-granularity margins the coarse grid introduces, so detection
	// features align with the exact-box features the detector trained on.
	var out []proposal
	for _, b := range boxes {
		b = b.Clip(w, h)
		in := raster.NewIntegralRegion(img, b)
		b = tighten(in, b)
		if b.W < minPropW || b.H < minPropH || b.Area() > w*h*9/10 {
			// Too small to classify, or a whole-page blob with no
			// localization signal.
			in.Release()
			continue
		}
		out = append(out, proposal{box: b, in: in})
	}
	// Stable insertion sort by descending area: proposal counts are small
	// and this avoids the per-call closure and swapper allocations of the
	// reflection-based sort.
	for i := 1; i < len(out); i++ {
		p := out[i]
		j := i - 1
		for j >= 0 && out[j].box.Area() < p.box.Area() {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = p
	}
	if len(out) > maxProposals {
		for _, p := range out[maxProposals:] {
			p.in.Release()
		}
		out = out[:maxProposals]
	}
	// Return the grown scratch buffers to the pool (out escapes; the rest
	// do not outlive this call).
	s.boxes, s.queue = boxes[:0], queue[:0]
	return out
}

// tighten shrinks box to the bounding rectangle of its non-white pixels,
// binary-searching prefix counts on the integral image instead of scanning
// the box's pixels: O(log) queries per edge rather than O(area).
func tighten(in *raster.Integral, box raster.Rect) raster.Rect {
	if in.NonWhiteCount(box) == 0 {
		return box // no content: keep as-is
	}
	// minX: smallest x whose prefix [box.X, x] contains content.
	minX := box.X + sort.Search(box.W, func(i int) bool {
		return in.NonWhiteCount(raster.R(box.X, box.Y, i+1, box.H)) > 0
	})
	// maxX: largest x whose suffix [x, end) contains content.
	maxX := box.X + box.W - 1 - sort.Search(box.W, func(i int) bool {
		return in.NonWhiteCount(raster.R(box.X+box.W-1-i, box.Y, i+1, box.H)) > 0
	})
	minY := box.Y + sort.Search(box.H, func(i int) bool {
		return in.NonWhiteCount(raster.R(box.X, box.Y, box.W, i+1)) > 0
	})
	maxY := box.Y + box.H - 1 - sort.Search(box.H, func(i int) bool {
		return in.NonWhiteCount(raster.R(box.X, box.Y+box.H-1-i, box.W, i+1)) > 0
	})
	return raster.R(minX, minY, maxX-minX+1, maxY-minY+1)
}

// NonMaxSuppression removes detections that overlap a higher-scoring
// detection of the same class by more than iouThreshold.
func NonMaxSuppression(dets []Detection, iouThreshold float64) []Detection {
	sorted := append([]Detection(nil), dets...)
	// Stable insertion sort by descending score (detection lists are
	// short; avoids the reflection-based sort's allocations).
	for i := 1; i < len(sorted); i++ {
		d := sorted[i]
		j := i - 1
		for j >= 0 && sorted[j].Score < d.Score {
			sorted[j+1] = sorted[j]
			j--
		}
		sorted[j+1] = d
	}
	var kept []Detection
	for _, d := range sorted {
		ok := true
		for _, k := range kept {
			if k.Class == d.Class && k.Box.IoU(d.Box) > iouThreshold {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, d)
		}
	}
	return kept
}
