package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/farm"
	"repro/internal/metrics"
)

// statusView is the JSON shape GET /status?format=json serves. Durations
// are flattened to integer milliseconds so the payload stays trivially
// parseable from shell tooling (jq, curl | python).
type statusView struct {
	Total        int         `json:"total"`
	Done         int         `json:"done"`
	PreCompleted int         `json:"preCompleted"`
	Retried      int         `json:"retried"`
	Degraded     int         `json:"degraded"`
	Failed       int         `json:"failed"`
	Panics       int         `json:"panics"`
	FastPathed   int         `json:"fastPathed"`
	ElapsedMs    int64       `json:"elapsedMs"`
	EtaMs        int64       `json:"etaMs"`
	SitesPerDay  float64     `json:"sitesPerDay"`
	Stages       []stageView `json:"stages"`
}

// stageView carries one stage's latency summary: call count, total, and
// the p50/p90/p99 read off the stage's streaming histogram.
type stageView struct {
	Stage   string `json:"stage"`
	Count   int64  `json:"count"`
	TotalMs int64  `json:"totalMs"`
	P50Ms   int64  `json:"p50Ms"`
	P90Ms   int64  `json:"p90Ms"`
	P99Ms   int64  `json:"p99Ms"`
}

func makeStatusView(p farm.Progress) statusView {
	v := statusView{
		Total:        p.Total,
		Done:         p.Done,
		PreCompleted: p.PreCompleted,
		Retried:      p.Retried,
		Degraded:     p.Degraded,
		Failed:       p.Failed,
		Panics:       p.Panics,
		FastPathed:   p.FastPathed,
		ElapsedMs:    p.Elapsed.Milliseconds(),
		EtaMs:        p.ETA.Milliseconds(),
		SitesPerDay:  p.SitesPerDay,
	}
	for _, s := range p.Stages {
		v.Stages = append(v.Stages, stageView{
			Stage:   string(s.Stage),
			Count:   s.Count,
			TotalMs: s.Total.Milliseconds(),
			P50Ms:   s.P50().Milliseconds(),
			P90Ms:   s.P90().Milliseconds(),
			P99Ms:   s.P99().Milliseconds(),
		})
	}
	return v
}

// startStatus binds addr and serves live run progress at /status: plain
// text by default (the one-line progress summary plus the per-stage
// percentile table), JSON with ?format=json. Returns the server (so main
// can Close it) and the resolved listen address — pass ":0" or
// "127.0.0.1:0" to let the kernel pick a free port.
func startStatus(addr string, mon *farm.Monitor) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("-status-addr %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		p := mon.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(makeStatusView(p))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, p.String())
		if len(p.Stages) > 0 {
			fmt.Fprintf(w, "\n%s", metrics.StageTable(p.Stages))
		}
	})
	srv := &http.Server{Handler: mux}
	//phishvet:ignore goroleak: Serve is stopped by the caller's deferred srv.Close; its return error is the normal ErrServerClosed
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// startProgressLog prints the monitor's one-line progress summary to
// stderr every interval. The returned stop function halts the ticker and
// prints one final line so the last state of a finished crawl is always
// visible, however the interval aligned.
func startProgressLog(mon *farm.Monitor, every time.Duration) (stop func()) {
	tick := time.NewTicker(every)
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-tick.C:
				fmt.Fprintln(os.Stderr, mon.Snapshot().String())
			case <-done:
				return
			}
		}
	}()
	return func() {
		tick.Stop()
		close(done)
		<-finished
		fmt.Fprintln(os.Stderr, mon.Snapshot().String())
	}
}
