package fleet

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/farm"
	"repro/internal/journal"
	"repro/internal/metrics"
)

// testURLs builds a small deterministic feed.
func testURLs(n int) []string {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://site-%03d.test/login", i)
	}
	return urls
}

var testParams = Params{Sites: 10, Seed: 42, FeedURLs: 10}

func newTestCoordinator(t *testing.T, urls []string, leaseSites int, ttl time.Duration, resume bool) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(CoordinatorConfig{
		URLs:       urls,
		Params:     testParams,
		Root:       t.TempDir(),
		LeaseSites: leaseSites,
		TTL:        ttl,
		Resume:     resume,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fakeClock installs a settable clock behind the metrics seam.
func fakeClock(t *testing.T) func(advance time.Duration) {
	t.Helper()
	base := time.Unix(1_700_000_000, 0)
	cur := base
	restore := metrics.SetClockForTest(func() time.Time { return cur })
	t.Cleanup(restore)
	return func(d time.Duration) { cur = cur.Add(d) }
}

// mkLog fabricates a finished session for url at feed index idx.
func mkLog(idx int, url, outcome string) *crawler.SessionLog {
	return &crawler.SessionLog{SeedURL: url, FeedIndex: idx, Outcome: outcome, Attempts: 1}
}

// journalLease writes sessions for the given indices into the lease's
// shard directory, plus a stats record, exactly as a worker would.
func journalLease(t *testing.T, root string, l Lease, urls []string, idxs []int, outcome string) {
	t.Helper()
	j, err := journal.Open(ShardDir(root, l), journal.Options{Sync: journal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range idxs {
		if err := j.AppendSession(mkLog(i, urls[i], outcome)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.AppendStats(farm.Stats{Sites: len(idxs), Elapsed: time.Second, Panics: 0}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseShardingPartitionsFeed(t *testing.T) {
	urls := testURLs(10)
	c := newTestCoordinator(t, urls, 4, time.Minute, false)
	var got []Lease
	for {
		resp, err := c.grant(LeaseRequest{Worker: "w1", Params: testParams})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Wait {
			break // everything leased out
		}
		if resp.Done {
			t.Fatal("run done before any results")
		}
		got = append(got, *resp.Lease)
	}
	want := []struct{ start, end int }{{0, 4}, {4, 8}, {8, 10}}
	if len(got) != len(want) {
		t.Fatalf("granted %d leases, want %d", len(got), len(want))
	}
	for i, l := range got {
		if l.Start != want[i].start || l.End != want[i].end || l.Attempt != 1 {
			t.Errorf("lease %d = %s attempt %d, want [%d,%d) attempt 1", i, l.Range(), l.Attempt, want[i].start, want[i].end)
		}
		if len(l.Completed) != 0 {
			t.Errorf("fresh lease %d carries completed URLs: %v", i, l.Completed)
		}
	}
}

func TestParamsMismatchRefused(t *testing.T) {
	c := newTestCoordinator(t, testURLs(4), 4, time.Minute, false)
	bad := testParams
	bad.Seed = 99
	if _, err := c.grant(LeaseRequest{Worker: "w1", Params: bad}); err == nil {
		t.Fatal("mismatched params were granted a lease")
	} else if !strings.Contains(err.Error(), "params") {
		t.Fatalf("unhelpful mismatch error: %v", err)
	}
}

func TestLeaseExpiryReissueAndDuplicateSuppression(t *testing.T) {
	advance := fakeClock(t)
	urls := testURLs(4)
	c := newTestCoordinator(t, urls, 4, 10*time.Second, false)

	resp, err := c.grant(LeaseRequest{Worker: "w1", Params: testParams})
	if err != nil || resp.Lease == nil {
		t.Fatalf("grant to w1: %+v, %v", resp, err)
	}
	l1 := *resp.Lease

	// Heartbeats keep the lease alive past a TTL of silence measured from
	// grant time.
	advance(8 * time.Second)
	if hb := c.beat(HeartbeatRequest{Worker: "w1", LeaseID: l1.ID, Attempt: l1.Attempt}); !hb.Valid {
		t.Fatal("heartbeat on live lease rejected")
	}
	advance(8 * time.Second)
	if resp, err := c.grant(LeaseRequest{Worker: "w2", Params: testParams}); err != nil || !resp.Wait {
		t.Fatalf("lease with recent heartbeat was reclaimed: %+v, %v", resp, err)
	}

	// Silence past the TTL: the range is re-issued to w2 at attempt 2.
	advance(11 * time.Second)
	resp, err = c.grant(LeaseRequest{Worker: "w2", Params: testParams})
	if err != nil || resp.Lease == nil {
		t.Fatalf("expired lease not re-issued: %+v, %v", resp, err)
	}
	l2 := *resp.Lease
	if l2.ID != l1.ID || l2.Attempt != 2 {
		t.Fatalf("re-issue got lease %d attempt %d, want lease %d attempt 2", l2.ID, l2.Attempt, l1.ID)
	}
	if ShardDir("r", l1) == ShardDir("r", l2) {
		t.Fatal("re-issued attempt shares the stale worker's shard directory")
	}

	// The stale worker's heartbeat and result are both rejected.
	if hb := c.beat(HeartbeatRequest{Worker: "w1", LeaseID: l1.ID, Attempt: l1.Attempt}); hb.Valid {
		t.Fatal("stale heartbeat accepted")
	}
	if res := c.result(ResultRequest{Worker: "w1", LeaseID: l1.ID, Attempt: l1.Attempt, Stats: farm.Stats{Sites: 4}}); res.Accepted {
		t.Fatal("stale result accepted: duplicate work double-counted")
	}

	// The live attempt completes; re-submitting is idempotent; the stale
	// worker still cannot claim it.
	if res := c.result(ResultRequest{Worker: "w2", LeaseID: l2.ID, Attempt: l2.Attempt, Stats: farm.Stats{Sites: 4}}); !res.Accepted {
		t.Fatalf("live result rejected: %s", res.Reason)
	}
	if res := c.result(ResultRequest{Worker: "w2", LeaseID: l2.ID, Attempt: l2.Attempt, Stats: farm.Stats{Sites: 4}}); !res.Accepted {
		t.Fatal("idempotent re-submit rejected")
	}
	if res := c.result(ResultRequest{Worker: "w1", LeaseID: l1.ID, Attempt: l1.Attempt, Stats: farm.Stats{Sites: 4}}); res.Accepted {
		t.Fatal("stale result accepted after completion")
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("all leases complete but Done not closed")
	}
}

func TestMergeExcludesAbandonedAttempt(t *testing.T) {
	advance := fakeClock(t)
	urls := testURLs(4)
	root := t.TempDir()
	c, err := NewCoordinator(CoordinatorConfig{URLs: urls, Params: testParams, Root: root, LeaseSites: 4, TTL: 10 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := c.grant(LeaseRequest{Worker: "w1", Params: testParams})
	l1 := *resp.Lease
	// w1 journals half the range, then dies silently.
	journalLease(t, root, l1, urls, []int{0, 1}, "from-abandoned")
	advance(11 * time.Second)
	resp, _ = c.grant(LeaseRequest{Worker: "w2", Params: testParams})
	l2 := *resp.Lease
	journalLease(t, root, l2, urls, []int{0, 1, 2, 3}, "from-accepted")
	if res := c.result(ResultRequest{Worker: "w2", LeaseID: l2.ID, Attempt: l2.Attempt, Stats: farm.Stats{Sites: 4}}); !res.Accepted {
		t.Fatalf("result rejected: %s", res.Reason)
	}
	logs, stats, err := c.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 4 {
		t.Fatalf("merged %d sessions, want 4", len(logs))
	}
	for _, lg := range logs {
		if lg.Outcome != "from-accepted" {
			t.Fatalf("merge read the abandoned attempt's journal: %s has outcome %q", lg.SeedURL, lg.Outcome)
		}
	}
	if stats.Outcomes["from-accepted"] != 4 {
		t.Fatalf("stats outcomes = %v, want 4 from-accepted", stats.Outcomes)
	}
}

// TestCoordinatorRestartResume is the coordinator-crash story: shard
// journals (and their manifests) on disk are the only state, and a new
// coordinator over the same root recovers completed work, marks fully
// journaled ranges done, and hands out leases whose Completed sets cover
// partially crawled ranges.
func TestCoordinatorRestartResume(t *testing.T) {
	urls := testURLs(10)
	root := t.TempDir()
	mk := func(resume bool) *Coordinator {
		c, err := NewCoordinator(CoordinatorConfig{URLs: urls, Params: testParams, Root: root, LeaseSites: 4, TTL: time.Minute, Resume: resume, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// First incarnation: lease 0 fully journaled and accepted, lease 1
	// only half journaled (no result), lease 2 untouched. Then the
	// coordinator "crashes" (is dropped).
	c1 := mk(false)
	r0, _ := c1.grant(LeaseRequest{Worker: "w1", Params: testParams})
	journalLease(t, root, *r0.Lease, urls, []int{0, 1, 2, 3}, "done")
	if res := c1.result(ResultRequest{Worker: "w1", LeaseID: r0.Lease.ID, Attempt: r0.Lease.Attempt, Stats: farm.Stats{Sites: 4, Elapsed: time.Second}}); !res.Accepted {
		t.Fatalf("result rejected: %s", res.Reason)
	}
	r1, _ := c1.grant(LeaseRequest{Worker: "w1", Params: testParams})
	journalLease(t, root, *r1.Lease, urls, []int{4, 5}, "done")

	// Second incarnation must refuse the root without -resume.
	if _, err := NewCoordinator(CoordinatorConfig{URLs: urls, Params: testParams, Root: root, LeaseSites: 4, TTL: time.Minute}); err == nil {
		t.Fatal("restart over a non-empty root without Resume was allowed")
	}

	c2 := mk(true)
	// Range [0,4) was fully recovered: never leased again.
	g1, err := c2.grant(LeaseRequest{Worker: "w2", Params: testParams})
	if err != nil || g1.Lease == nil {
		t.Fatalf("grant after restart: %+v, %v", g1, err)
	}
	if g1.Lease.Start != 4 || g1.Lease.End != 8 {
		t.Fatalf("first lease after restart is %s, want [4,8)", g1.Lease.Range())
	}
	wantDone := []string{urls[4], urls[5]}
	if !reflect.DeepEqual(g1.Lease.Completed, wantDone) {
		t.Fatalf("resumed lease completed set = %v, want %v", g1.Lease.Completed, wantDone)
	}
	journalLease(t, root, *g1.Lease, urls, []int{6, 7}, "done")
	if res := c2.result(ResultRequest{Worker: "w2", LeaseID: g1.Lease.ID, Attempt: g1.Lease.Attempt, Stats: farm.Stats{Sites: 2, Elapsed: time.Second}}); !res.Accepted {
		t.Fatalf("result rejected: %s", res.Reason)
	}
	g2, _ := c2.grant(LeaseRequest{Worker: "w2", Params: testParams})
	if g2.Lease == nil || g2.Lease.Start != 8 {
		t.Fatalf("second lease after restart = %+v, want [8,10)", g2)
	}
	journalLease(t, root, *g2.Lease, urls, []int{8, 9}, "done")
	if res := c2.result(ResultRequest{Worker: "w2", LeaseID: g2.Lease.ID, Attempt: g2.Lease.Attempt, Stats: farm.Stats{Sites: 2, Elapsed: time.Second}}); !res.Accepted {
		t.Fatalf("result rejected: %s", res.Reason)
	}
	select {
	case <-c2.Done():
	default:
		t.Fatal("resumed run complete but Done not closed")
	}

	// The merged view covers the whole feed exactly once, in feed order,
	// and matches what farm.Tally reports for the same sessions.
	logs, stats, err := c2.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != len(urls) {
		t.Fatalf("merged %d sessions, want %d", len(logs), len(urls))
	}
	for i, lg := range logs {
		if lg.FeedIndex != i || lg.SeedURL != urls[i] {
			t.Fatalf("merged log %d = {idx %d, %s}, want {idx %d, %s}", i, lg.FeedIndex, lg.SeedURL, i, urls[i])
		}
	}
	want := farm.Tally(logs)
	if !reflect.DeepEqual(stats.Outcomes, want.Outcomes) || stats.Sites != want.Sites {
		t.Fatalf("merged stats %+v diverge from Tally %+v", stats, want)
	}
	// Elapsed folds from the per-shard stats records (3 accepted shards at
	// 1s each across both incarnations, plus the half-shard's record).
	if stats.Elapsed != 4*time.Second {
		t.Fatalf("merged elapsed = %v, want 4s", stats.Elapsed)
	}
}

func TestResumeRefusesForeignJournal(t *testing.T) {
	urls := testURLs(4)
	root := t.TempDir()
	journalLease(t, root, Lease{Start: 0, End: 4, Attempt: 1}, []string{"http://other.test/a", "x", "x", "x"}, []int{0}, "done")
	_, err := NewCoordinator(CoordinatorConfig{URLs: urls, Params: testParams, Root: root, LeaseSites: 4, TTL: time.Minute, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "different -sites/-seed") {
		t.Fatalf("foreign journal accepted (err = %v)", err)
	}
}

func TestStatusView(t *testing.T) {
	urls := testURLs(10)
	c := newTestCoordinator(t, urls, 4, time.Minute, false)
	resp, _ := c.grant(LeaseRequest{Worker: "w1", Params: testParams})
	l := *resp.Lease
	c.beat(HeartbeatRequest{Worker: "w1", LeaseID: l.ID, Attempt: l.Attempt, Progress: Progress{Done: 2}})
	st := c.Status()
	if st.TotalURLs != 10 || st.Leases != 3 || st.LeasesActive != 1 || st.LeasesPending != 2 {
		t.Fatalf("status totals wrong: %+v", st)
	}
	if len(st.Workers) != 1 || st.Workers[0].Name != "w1" || st.Workers[0].Lease != "[0,4)" || st.Workers[0].Done != 2 {
		t.Fatalf("worker view wrong: %+v", st.Workers)
	}
	if st.DoneURLs != 2 {
		t.Fatalf("DoneURLs = %d, want 2 (live heartbeat progress)", st.DoneURLs)
	}
	if !strings.Contains(st.String(), "worker w1") || !strings.Contains(st.String(), "lease [0,4)") {
		t.Fatalf("status text missing worker row:\n%s", st.String())
	}
}
