package triage

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"

	"repro/internal/browser"
	"repro/internal/crawler"
	"repro/internal/dom"
	"repro/internal/phash"
	"repro/internal/visualphish"
)

// Fingerprint is what one probe fetch learns about a URL: the visual and
// structural identity the campaign index clusters on, plus enough page
// metadata to synthesize the fast-path session log without a second fetch.
type Fingerprint struct {
	URL     string `json:"url"`
	Host    string `json:"host"`
	Status  int    `json:"status"`
	Title   string `json:"title"`
	Text    string `json:"text"`
	DOMHash string `json:"domHash"`
	// ContentHash is the exact-clone identity: structure + title + text +
	// rendering hash. DOMHash alone is the transition-detection structural
	// hash, which different kits sharing a page template collide on; the
	// content hash only matches byte-identical deployments of one kit.
	ContentHash string                `json:"contentHash"`
	PHash       phash.Hash            `json:"pHash"`
	Emb         visualphish.Embedding `json:"emb"`
	// OK marks a healthy, indexable landing page. Dead/timeout/5xx/takedown
	// probes are not indexable: a full session must classify the failure
	// (preserving the failure taxonomy and recall under chaos), and a
	// hosting provider's shared suspension page must never found a
	// "campaign" that swallows every other suspended site.
	OK bool `json:"ok"`
	// Err is the failure-taxonomy class when !OK.
	Err string `json:"err,omitempty"`
}

// probe fetches url once and fingerprints the landing page. One Navigate,
// one render — no interaction budget, no retries. The browser comes from
// the same factory (and therefore the same chaos-wrapped transport) the
// crawler uses, so a fault-injected feed faults probes exactly as it would
// fault a session's first fetch.
func probe(newBrowser func() *browser.Browser, rawURL string) Fingerprint {
	fp := Fingerprint{URL: rawURL}
	b := newBrowser()
	page, err := b.Navigate(rawURL)
	if err != nil {
		fp.Err = crawler.ClassifyError(err)
		return fp
	}
	fp.Host = page.Host()
	fp.Status = page.Status
	fp.Title = dom.Title(page.Doc)
	fp.Text = page.Doc.InnerText()
	if page.Status >= http.StatusInternalServerError {
		fp.Err = crawler.OutcomeServerError
		return fp
	}
	if crawler.IsTakedownText(fp.Title, fp.Text) {
		fp.Err = crawler.OutcomeTakedown
		return fp
	}
	shot := page.Screenshot()
	fp.DOMHash = page.DOMHash()
	fp.PHash = phash.Compute(shot)
	fp.Emb = visualphish.EmbedCropped(shot)
	fp.ContentHash = contentHash(fp.DOMHash, fp.Title, fp.Text, fp.PHash)
	fp.OK = true
	return fp
}

// contentHash folds a page's structural hash, visible text, and rendering
// hash into one identity: equal only for byte-identical kit deployments.
func contentHash(domHash, title, text string, ph phash.Hash) string {
	h := fnv.New64a()
	for _, s := range []string{domHash, title, text, ph.String()} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// probeAll fingerprints every URL whose eligible flag is set, fanning out
// over workers goroutines. Results land by index, and each probe is a pure
// function of its URL (every process probes each URL exactly once, so even
// the chaos injector's stateful flaky-connection budget is consumed
// identically everywhere) — the output is independent of scheduling.
func probeAll(urls []string, eligible []bool, workers int, newBrowser func() *browser.Browser) []*Fingerprint {
	fps := make([]*Fingerprint, len(urls))
	if workers <= 0 {
		workers = 1
	}
	idxCh := make(chan int, len(urls))
	for i := range urls {
		if eligible[i] {
			idxCh <- i
		}
	}
	close(idxCh)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				fp := probe(newBrowser, urls[i])
				fps[i] = &fp
			}
		}()
	}
	wg.Wait()
	return fps
}
