// Package brands is the brand catalogue behind the synthetic corpus: the
// targeted brands of Table 7, the business categories of Table 2, the
// legitimate domains of Table 4, and the rendering recipes for brand logos
// and legitimate-site page designs used by the visual-similarity model
// (Section 5.1.1) and the page generators.
package brands

import (
	"math/rand"
	"strings"

	"repro/internal/raster"
)

// Category is an OpenPhish-style industry sector (Table 2).
type Category string

// The business categories of Table 2.
const (
	OnlineCloud Category = "Online/Cloud Service"
	Financial   Category = "Financial"
	SocialNet   Category = "Social Networking"
	Logistics   Category = "Logistics & Couriers"
	EmailProv   Category = "Email Provider"
	Crypto      Category = "Cryptocurrency"
	Telecom     Category = "Telecommunications"
	ECommerce   Category = "e-Commerce"
	Payment     Category = "Payment Service"
	Gaming      Category = "Gaming"
)

// Categories returns every category in Table 2 order.
func Categories() []Category {
	return []Category{
		OnlineCloud, Financial, SocialNet, Logistics, EmailProv,
		Crypto, Telecom, ECommerce, Payment, Gaming,
	}
}

// Brand describes one impersonated brand.
type Brand struct {
	Name        string
	Category    Category
	Color       raster.Color
	Accent      raster.Color
	LegitDomain string
	// LogoText is the short text drawn inside the logo block.
	LogoText string
	// WantsPayment marks brands whose legitimate flows collect payment
	// data, making multi-stage financial phishing plausible.
	WantsPayment bool
}

// catalogue lists every brand in the corpus. The first ten are the Table 7
// top-10 in order; the Table 3 brands (DHL, Netflix, Facebook, Microsoft
// OneDrive, Chase) are all present.
var catalogue = []Brand{
	{"Office365", OnlineCloud, raster.Orange, raster.Navy, "office.com", "O365", false},
	{"DHL Airways, Inc.", Logistics, raster.Yellow, raster.Red, "dhl.com", "DHL", true},
	{"Facebook, Inc.", SocialNet, raster.Blue, raster.White, "facebook.com", "FB", false},
	{"WhatsApp", SocialNet, raster.Green, raster.White, "whatsapp.com", "WA", false},
	{"Tencent", OnlineCloud, raster.Teal, raster.White, "qq.com", "QQ", false},
	{"Crypto/Wallet", Crypto, raster.Purple, raster.Yellow, "blockchain.com", "CW", true},
	{"Outlook", EmailProv, raster.Navy, raster.White, "live.com", "OUT", false},
	{"La Banque Postale", Financial, raster.Navy, raster.Yellow, "labanquepostale.fr", "LBP", true},
	{"Chase Personal Banking", Financial, raster.Navy, raster.White, "chase.com", "CHASE", true},
	{"M & T Bank Corporation", Financial, raster.Green, raster.White, "mtb.com", "M&T", true},
	{"Netflix", OnlineCloud, raster.Maroon, raster.Black, "netflix.com", "NFX", true},
	{"Microsoft OneDrive", OnlineCloud, raster.Blue, raster.White, "microsoftonline.com", "1DRV", false},
	{"Microsoft", OnlineCloud, raster.Teal, raster.White, "microsoft.com", "MS", false},
	{"Google", OnlineCloud, raster.Blue, raster.Red, "google.com", "G", false},
	{"YouTube", OnlineCloud, raster.Red, raster.White, "youtube.com", "YT", false},
	{"Yahoo", EmailProv, raster.Purple, raster.White, "yahoo.com", "Y!", false},
	{"AOL Mail", EmailProv, raster.Navy, raster.White, "aol.com", "AOL", false},
	{"Glacier Bank", Financial, raster.Teal, raster.White, "glacierbank.com", "GB", true},
	{"America First CU", Financial, raster.Red, raster.Navy, "americafirst.com", "AFCU", true},
	{"Citi", Financial, raster.Blue, raster.Red, "citi.com", "CITI", true},
	{"BT Group", Telecom, raster.Purple, raster.White, "bt.com", "BT", true},
	{"GoDaddy", OnlineCloud, raster.Green, raster.Black, "godaddy.com", "GD", true},
	{"Alaska USA FCU", Financial, raster.Navy, raster.Yellow, "alaskausa.org", "AK", true},
	{"USAA", Financial, raster.Navy, raster.White, "usaa.com", "USAA", true},
	{"PayPal", Payment, raster.Navy, raster.Blue, "paypal.com", "PP", true},
	{"Stripe Payments", Payment, raster.Purple, raster.White, "stripe.com", "STR", true},
	{"Amazon", ECommerce, raster.Orange, raster.Black, "amazon.com", "AMZ", true},
	{"eBay", ECommerce, raster.Red, raster.Blue, "ebay.com", "EBAY", true},
	{"FedEx", Logistics, raster.Purple, raster.Orange, "fedex.com", "FDX", true},
	{"UPS", Logistics, raster.Brown, raster.Yellow, "ups.com", "UPS", true},
	{"USPS", Logistics, raster.Navy, raster.Red, "usps.com", "USPS", true},
	{"Binance", Crypto, raster.Yellow, raster.Black, "binance.com", "BNB", true},
	{"Coinbase", Crypto, raster.Blue, raster.White, "coinbase.com", "CB", true},
	{"MetaMask", Crypto, raster.Orange, raster.Brown, "metamask.io", "MM", true},
	{"Verizon", Telecom, raster.Red, raster.Black, "verizon.com", "VZ", true},
	{"AT&T", Telecom, raster.Blue, raster.White, "att.com", "ATT", true},
	{"Orange S.A.", Telecom, raster.Orange, raster.Black, "orange.fr", "OR", true},
	{"Steam", Gaming, raster.Navy, raster.Teal, "steampowered.com", "STM", true},
	{"Epic Games", Gaming, raster.Black, raster.White, "epicgames.com", "EPIC", true},
	{"Instagram", SocialNet, raster.Pink, raster.Purple, "instagram.com", "IG", false},
	{"LinkedIn", SocialNet, raster.Blue, raster.White, "linkedin.com", "IN", false},
	{"Spotify", OnlineCloud, raster.Green, raster.Black, "spotify.com", "SPT", true},
	{"Apple iCloud", OnlineCloud, raster.Gray, raster.White, "icloud.com", "APL", true},
	{"Banco Santander", Financial, raster.Red, raster.White, "santander.com", "SAN", true},
	{"SBI YONO", Financial, raster.Purple, raster.White, "onlinesbi.sbi", "SBI", true},
}

// All returns the full brand catalogue.
func All() []Brand { return append([]Brand(nil), catalogue...) }

// Count returns the catalogue size.
func Count() int { return len(catalogue) }

// ByName returns the brand with the given name.
func ByName(name string) (Brand, bool) {
	for _, b := range catalogue {
		if b.Name == name {
			return b, true
		}
	}
	return Brand{}, false
}

// Top10 returns the Table 7 top-10 targeted brands in order.
func Top10() []Brand { return append([]Brand(nil), catalogue[:10]...) }

// Table3Brands returns the five brands of the cloning analysis (Table 3).
func Table3Brands() []string {
	return []string{
		"DHL Airways, Inc.", "Netflix", "Facebook, Inc.",
		"Microsoft OneDrive", "Chase Personal Banking",
	}
}

// ByCategory returns all brands in the given category.
func ByCategory(c Category) []Brand {
	var out []Brand
	for _, b := range catalogue {
		if b.Category == c {
			out = append(out, b)
		}
	}
	return out
}

// DrawLogo renders the brand's logo block: a filled rectangle in the brand
// color carrying the logo text in the accent color. rng jitters the size so
// logo instances are not pixel-identical.
func (b Brand) DrawLogo(rng *rand.Rand) *raster.Image {
	w := raster.StringWidth(b.LogoText) + 16 + rng.Intn(8)
	h := 18 + rng.Intn(6)
	img := raster.New(w, h, b.Color)
	fg := b.Accent
	if fg == b.Color {
		fg = raster.White
	}
	img.DrawString(b.LogoText, 8, (h-raster.GlyphH)/2, fg)
	return img
}

// LegitScreenshot renders the canonical design of the brand's legitimate
// login page. The visual-similarity gallery (VisualPhishNet substitute) is
// built from these renders; phishing pages that "clone" the brand reuse
// this design, those that merely impersonate do not.
func (b Brand) LegitScreenshot() *raster.Image {
	img := raster.New(480, 360, raster.White)
	// Deterministic per-brand layout jitter so brands that share colors and
	// categories (e.g. two navy banks) still have distinguishable designs,
	// as real sites do.
	j := int(nameHash(b.Name))
	hdr := 36 + j%32       // header height 36..67
	ox := 20 + (j/7)%80    // form column offset
	oy := 90 + (j/11)%60   // form row offset
	bw := 160 + (j/13)%100 // input width
	// Brand-colored header band.
	img.Fill(raster.R(0, 0, 480, hdr), b.Color)
	img.DrawString(b.LogoText, 16, hdr/2-raster.GlyphH/2, b.Accent)
	// Accent-colored signature block: position and size derive from the
	// name hash, giving same-palette brands clearly distinct layouts. A
	// white accent would be invisible, so such brands get a hash-picked
	// visible tone instead.
	sigColor := b.Accent
	if sigColor == raster.White {
		sigColor = raster.Color(4 + (j/43)%12)
	}
	sig := raster.R(300+(j/17)%150, 100+(j/23)%200, 30+(j/29)%60, 24+(j/31)%48)
	img.Fill(sig, sigColor)
	// Footer band in a hash-picked neutral tone.
	footH := 12 + (j/37)%26
	img.Fill(raster.R(0, 360-footH, 480, footH), raster.Color(2+(j/41)%3))
	// Category-specific body layout.
	switch b.Category {
	case Financial, Payment:
		img.Fill(raster.R(0, hdr, 480, 24+(j/3)%24), b.Accent)
		img.Outline(raster.R(ox, oy+30, bw, 18), raster.Gray)
		img.Outline(raster.R(ox, oy+70, bw, 18), raster.Gray)
		img.Fill(raster.R(ox, oy+110, 90, 20), b.Color)
		img.DrawString("SECURE SIGN ON", ox, oy+10, raster.Black)
	case SocialNet:
		img.Fill(raster.R(0, hdr, 180+(j/5)%80, 360-hdr), b.Color)
		img.Outline(raster.R(260+ox/4, oy+30, 170, 18), raster.Gray)
		img.Outline(raster.R(260+ox/4, oy+70, 170, 18), raster.Gray)
		img.Fill(raster.R(260+ox/4, oy+110, 80, 20), b.Color)
	case Logistics:
		img.Fill(raster.R(0, 300-(j/3)%40, 480, 60+(j/3)%40), b.Accent)
		img.DrawString("TRACK YOUR SHIPMENT", ox+40, oy-10, raster.Black)
		img.Outline(raster.R(ox+40, oy+20, bw, 18), raster.Gray)
		img.Fill(raster.R(ox+100, oy+60, 80, 20), b.Color)
	default:
		img.DrawString("SIGN IN TO "+strings.ToUpper(b.LogoText), ox+60, oy, raster.Black)
		img.Outline(raster.R(ox+60, oy+40, bw, 18), raster.Gray)
		img.Outline(raster.R(ox+60, oy+80, bw, 18), raster.Gray)
		img.Fill(raster.R(ox+60, oy+120, 80, 20), b.Color)
	}
	return img
}

// nameHash is a small FNV-style hash of the brand name used for layout
// jitter.
func nameHash(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
