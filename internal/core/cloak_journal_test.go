package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/journal"
)

// TestCrawlJournalCloakProtocol pins the journaled cloak-config handshake:
// a cloak-enabled journaled crawl records its canonical config before any
// session, a resume under the same flags byte-verifies the stored record,
// and config drift in either direction — cloaking turned off over a
// configured journal, turned on over a plain one, or different knobs — is
// refused instead of silently mixing two cloak universes (and therefore two
// mutation-schedule universes) in one journal.
func TestCrawlJournalCloakProtocol(t *testing.T) {
	opts := core.Options{
		NumSites:           40,
		Seed:               9,
		Workers:            8,
		DetectorTrainPages: 80,
		CloakRate:          0.5,
		CloakRetries:       3,
	}
	pipe := func(o core.Options) *core.Pipeline {
		t.Helper()
		p, err := core.NewPipeline(o)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	crawl := func(p *core.Pipeline, dir string) (int, error) {
		t.Helper()
		j, err := journal.Open(dir, journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		return p.CrawlJournal(j, 0)
	}

	dir := t.TempDir()
	if _, err := crawl(pipe(opts), dir); err != nil {
		t.Fatalf("fresh cloak crawl: %v", err)
	}

	// Resume under identical flags: config verifies, every URL complete.
	p := pipe(opts)
	skipped, err := crawl(p, dir)
	if err != nil {
		t.Fatalf("cloak resume: %v", err)
	}
	if skipped != len(p.Feed.URLs()) {
		t.Fatalf("resume skipped %d of %d URLs", skipped, len(p.Feed.URLs()))
	}

	// Turning cloaking off entirely changes the generated corpus, so the
	// feed-mismatch guard refuses such a resume before the cloak check can.
	noCloak := opts
	noCloak.CloakRate, noCloak.CloakRetries = 0, 0
	if _, err := crawl(pipe(noCloak), dir); err == nil || !strings.Contains(err.Error(), "different -sites/-seed") {
		t.Fatalf("cloak-off resume over configured journal: err = %v, want feed refusal", err)
	}

	// Different retry budget over the SAME corpus (rate unchanged): the
	// canonical config record no longer byte-matches.
	drift := opts
	drift.CloakRetries = 5
	if _, err := crawl(pipe(drift), dir); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("drifted-budget resume: err = %v, want config mismatch", err)
	}

	// The shard path carries no feed guard (workers trust the coordinator's
	// params handshake), so the cloak reconciliation itself must refuse a
	// config-less run over a configured journal — and the reverse.
	shard := func(p *core.Pipeline, dir string) error {
		t.Helper()
		j, err := journal.Open(dir, journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		return p.CrawlJournalShard(j, 0, 0, nil)
	}
	if err := shard(pipe(noCloak), dir); err == nil || !strings.Contains(err.Error(), "cloaking off") {
		t.Fatalf("cloak-off shard over configured journal: err = %v, want refusal", err)
	}
	plainDir := t.TempDir()
	if _, err := crawl(pipe(noCloak), plainDir); err != nil {
		t.Fatalf("plain journaled crawl: %v", err)
	}
	if err := shard(pipe(opts), plainDir); err == nil || !strings.Contains(err.Error(), "without cloaking") {
		t.Fatalf("cloak shard over plain journal: err = %v, want refusal", err)
	}
}
