package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/farm"
	"repro/internal/metrics"
)

// testSession fabricates a distinguishable session log.
func testSession(idx int, url, outcome string) *crawler.SessionLog {
	return &crawler.SessionLog{
		SeedURL:   url,
		SiteID:    strings.ReplaceAll(url, "http://", "site-"),
		Outcome:   outcome,
		Attempts:  1 + idx%3,
		FeedIndex: idx,
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return j
}

func appendN(t *testing.T, j *Journal, n, from int) []*crawler.SessionLog {
	t.Helper()
	var logs []*crawler.SessionLog
	for i := from; i < from+n; i++ {
		lg := testSession(i, "http://host"+itoa(i)+".example/login", "completed")
		if err := j.AppendSession(lg); err != nil {
			t.Fatalf("AppendSession(%d): %v", i, err)
		}
		logs = append(logs, lg)
	}
	return logs
}

func itoa(i int) string {
	b, _ := json.Marshal(i)
	return string(b)
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Sync: SyncNone})
	want := appendN(t, j, 10, 0)
	st := farm.Stats{
		Sites: 10, Elapsed: 3 * time.Second,
		Outcomes: map[string]int{"completed": 10},
		Failures: map[string]int{},
		Stages:   []metrics.StageStat{{Stage: "render", Count: 10, Total: time.Second}},
	}
	if err := j.AppendStats(st); err != nil {
		t.Fatalf("AppendStats: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	got, err := j2.Sessions()
	if err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sessions round-trip mismatch:\n got %+v\nwant %+v", got[0], want[0])
	}
	runs, err := j2.StatsRuns()
	if err != nil {
		t.Fatalf("StatsRuns: %v", err)
	}
	if len(runs) != 1 || !reflect.DeepEqual(runs[0], st) {
		t.Fatalf("stats round-trip mismatch: %+v", runs)
	}
	if j2.CompletedCount() != 10 {
		t.Fatalf("CompletedCount = %d, want 10", j2.CompletedCount())
	}
	if !j2.Completed(want[3].SeedURL) || j2.Completed("http://never.example/") {
		t.Fatal("Completed() wrong for known/unknown URL")
	}
}

func TestJournalSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 512, Sync: SyncNone})
	want := appendN(t, j, 40, 0)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several rolled segments, got %v", segs)
	}
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	got, err := j2.Sessions()
	if err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("rolled journal did not round-trip")
	}
	// The journal must stay appendable across reopen with rolled segments.
	appendN(t, j2, 5, 40)
	if j2.CompletedCount() != 45 {
		t.Fatalf("CompletedCount = %d, want 45", j2.CompletedCount())
	}
}

func TestJournalResumeSkipsCompleted(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Sync: SyncNone})
	appendN(t, j, 7, 0)
	// Simulate a crash: no Close, no final checkpoint.
	j.active.Close()

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if j2.CompletedCount() != 7 {
		t.Fatalf("CompletedCount after crash-reopen = %d, want 7", j2.CompletedCount())
	}
	appendN(t, j2, 3, 7)
	got, err := j2.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("Sessions = %d, want 10", len(got))
	}
	for i, lg := range got {
		if lg.FeedIndex != i {
			t.Fatalf("session %d has FeedIndex %d; want feed order", i, lg.FeedIndex)
		}
	}
}

func TestJournalSupersededRetryRecordsAndCompaction(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 512, Sync: SyncNone})
	appendN(t, j, 12, 0)
	// Re-crawl three URLs (a later resumed run re-adjudicating them): the
	// newer records supersede the old ones.
	for _, i := range []int{2, 5, 9} {
		lg := testSession(i, "http://host"+itoa(i)+".example/login", "stuck")
		lg.Attempts = 9
		if err := j.AppendSession(lg); err != nil {
			t.Fatal(err)
		}
	}
	check := func(j *Journal, total int) {
		t.Helper()
		got, err := j.Sessions()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != total {
			t.Fatalf("Sessions = %d, want %d (latest per URL)", len(got), total)
		}
		for _, i := range []int{2, 5, 9} {
			if got[i].Outcome != "stuck" || got[i].Attempts != 9 {
				t.Fatalf("session %d not superseded: %+v", i, got[i])
			}
		}
	}
	check(j, 12)

	dropped, err := j.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if dropped != 3 {
		t.Fatalf("Compact dropped %d records, want 3", dropped)
	}
	check(j, 12)
	// Still appendable after compaction, and the rewrite survives reopen.
	appendN(t, j, 1, 12)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if j2.CompletedCount() != 13 {
		t.Fatalf("CompletedCount after compact+reopen = %d, want 13", j2.CompletedCount())
	}
	check(j2, 13)
}

func TestJournalManifestRebuiltFromSegments(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 512, Sync: SyncNone})
	want := appendN(t, j, 20, 0)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Lose the manifest (and the checkpoint, which might otherwise mask
	// index rebuilding): the segment files alone must reconstruct the
	// journal.
	os.Remove(filepath.Join(dir, manifestName))
	os.Remove(filepath.Join(dir, checkpointName))
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	got, err := j2.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("manifest rebuild lost records")
	}
}

func TestJournalStaleCheckpointDiscarded(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Sync: SyncNone})
	appendN(t, j, 6, 0)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate an OS crash that lost the tail data but kept the newer
	// checkpoint: chop the last record off the segment while CHECKPOINT
	// still claims it.
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	info, _ := os.Stat(path)
	if err := os.Truncate(path, info.Size()-40); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	// The torn sixth record is gone; the checkpoint must not resurrect it.
	if j2.CompletedCount() != 5 {
		t.Fatalf("CompletedCount = %d, want 5 after stale checkpoint discard", j2.CompletedCount())
	}
	got, err := j2.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("Sessions = %d, want 5", len(got))
	}
}

func TestJournalOrphanSegmentAdopted(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Sync: SyncNone})
	want := appendN(t, j, 4, 0)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// A roll that crashed after creating the next segment but before
	// committing the manifest leaves an empty orphan.
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	got, err := j2.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("orphan adoption lost records")
	}
	appendN(t, j2, 2, 4)
	if j2.CompletedCount() != 6 {
		t.Fatalf("CompletedCount = %d, want 6", j2.CompletedCount())
	}
}

func TestJournalCheckpointSpeedsReopen(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 1024, CheckpointEvery: 4, Sync: SyncNone})
	appendN(t, j, 30, 0)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointName)); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if j2.CompletedCount() != 30 {
		t.Fatalf("CompletedCount = %d, want 30", j2.CompletedCount())
	}
}

func TestJournalRejectsSealedSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{SegmentBytes: 512, Sync: SyncNone})
	appendN(t, j, 20, 0)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, checkpointName)) // force a full scan
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need rolled segments, got %v", segs)
	}
	// Flip a byte in the middle of the FIRST (sealed) segment: that is
	// corruption, not a torn tail, and Open must refuse rather than
	// silently drop records.
	path := filepath.Join(dir, segs[0])
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt sealed segment")
	}
}
