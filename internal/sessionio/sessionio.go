// Package sessionio persists crawl-session logs as JSON Lines, one session
// per line, the storage format the measurement pipeline uses between its
// crawl and analysis halves (the paper crawls for 43 days and analyzes the
// accumulated logs afterwards; this is the accumulation). Logs round-trip
// losslessly, so an analysis can be re-run — or a new analysis written —
// without re-crawling.
package sessionio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/crawler"
)

// Write streams the sessions to w as JSON Lines.
func Write(w io.Writer, logs []*crawler.SessionLog) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, l := range logs {
		if l == nil {
			continue
		}
		if err := enc.Encode(l); err != nil {
			return fmt.Errorf("sessionio: encoding session %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read loads all sessions from r.
func Read(r io.Reader) ([]*crawler.SessionLog, error) {
	var out []*crawler.SessionLog
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		data := sc.Bytes()
		if len(data) == 0 {
			continue
		}
		var l crawler.SessionLog
		if err := json.Unmarshal(data, &l); err != nil {
			return nil, fmt.Errorf("sessionio: line %d: %w", line, err)
		}
		out = append(out, &l)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sessionio: reading: %w", err)
	}
	return out, nil
}

// WriteFile writes the sessions to path crash-safely: the JSONL is
// written to a temporary file in the target directory, fsynced, and
// atomically renamed over the destination. A crash mid-write leaves
// either the previous file or the complete new one — never a truncated
// JSONL that would poison later analysis.
func WriteFile(path string, logs []*crawler.SessionLog) error {
	return atomicReplace(path, func(tmp *os.File) error {
		return Write(tmp, logs)
	})
}

// WriteRaw atomically replaces path with data, with the same
// temp+fsync+rename guarantee as WriteFile. It is the sanctioned writer
// for every non-session run artifact (reports, exports): phishvet's
// atomicwrite rule forbids direct os.WriteFile outside this package and
// the journal.
func WriteRaw(path string, data []byte) error {
	return atomicReplace(path, func(tmp *os.File) error {
		if _, err := tmp.Write(data); err != nil {
			return fmt.Errorf("sessionio: %w", err)
		}
		return nil
	})
}

// atomicReplace runs write against a temp file in path's directory, then
// fsyncs, renames over path, and fsyncs the directory so the rename
// itself is durable. Every error on that chain is checked: a silently
// dropped fsync failure would turn "durable" into "probably durable".
func atomicReplace(path string, write func(*os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("sessionio: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		_ = tmp.Close()        // already failing; the close error would mask err
		_ = os.Remove(tmpName) // best-effort temp removal
		return err
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("sessionio: %w", err))
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName) // best-effort temp removal
		return fmt.Errorf("sessionio: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName) // best-effort temp removal
		return fmt.Errorf("sessionio: %w", err)
	}
	// Make the rename itself durable.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("sessionio: %w", err)
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // surface the sync failure, not the close
		return fmt.Errorf("sessionio: syncing directory: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("sessionio: %w", err)
	}
	return nil
}

// ReadFile loads sessions from path.
func ReadFile(path string) ([]*crawler.SessionLog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sessionio: %w", err)
	}
	defer f.Close()
	return Read(f)
}
