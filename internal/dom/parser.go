package dom

import (
	"strings"
)

// voidTags never have children and never receive an end tag.
var voidTags = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// impliedEndTags lists, for each tag, the open tags it implicitly closes when
// encountered (a tiny subset of the HTML5 tree-construction rules, enough for
// real-world-shaped phishing markup).
var impliedEndTags = map[string][]string{
	"li":     {"li"},
	"option": {"option"},
	"tr":     {"tr", "td", "th"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"p":      {"p"},
}

// Parse parses HTML source into a document tree. The returned node has
// Type == DocumentNode. Parse never fails: malformed input produces a
// best-effort tree, mirroring browser behavior.
func Parse(src string) *Node {
	doc := &Node{Type: DocumentNode}
	z := NewTokenizer(src)
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	for {
		tok := z.Next()
		if tok.Type == ErrorToken {
			break
		}
		switch tok.Type {
		case TextToken:
			if strings.TrimSpace(tok.Data) == "" {
				// Preserve a single space inside elements that may care, but
				// drop pure-whitespace runs elsewhere to keep trees small.
				continue
			}
			top().AppendChild(NewText(tok.Data))
		case CommentToken:
			top().AppendChild(&Node{Type: CommentNode, Data: tok.Data})
		case DoctypeToken:
			doc.AppendChild(&Node{Type: DoctypeNode, Data: tok.Data})
		case SelfClosingTagToken:
			el := &Node{Type: ElementNode, Tag: tok.Tag, Attrs: tok.Attrs}
			top().AppendChild(el)
		case StartTagToken:
			// Apply implied end tags.
			if closes, ok := impliedEndTags[tok.Tag]; ok {
				for _, c := range closes {
					if top().Type == ElementNode && top().Tag == c {
						stack = stack[:len(stack)-1]
						break
					}
				}
			}
			el := &Node{Type: ElementNode, Tag: tok.Tag, Attrs: tok.Attrs}
			top().AppendChild(el)
			if !voidTags[tok.Tag] {
				stack = append(stack, el)
			}
		case EndTagToken:
			// Pop to the matching open tag if one exists; otherwise ignore.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == tok.Tag {
					stack = stack[:i]
					break
				}
			}
		}
	}
	return doc
}

// Body returns the <body> element of a parsed document, or the document
// itself when no body element exists.
func Body(doc *Node) *Node {
	if b := doc.FindFirst(func(n *Node) bool { return n.Type == ElementNode && n.Tag == "body" }); b != nil {
		return b
	}
	return doc
}

// Head returns the <head> element, or nil.
func Head(doc *Node) *Node {
	return doc.FindFirst(func(n *Node) bool { return n.Type == ElementNode && n.Tag == "head" })
}

// Title returns the document title text, or empty.
func Title(doc *Node) string {
	t := doc.FindFirst(func(n *Node) bool { return n.Type == ElementNode && n.Tag == "title" })
	if t == nil {
		return ""
	}
	return t.InnerText()
}

// Render serializes the subtree rooted at n back to HTML. Round-tripping is
// not byte-exact (whitespace and entity forms normalize) but is structurally
// faithful.
func Render(n *Node) string {
	var b strings.Builder
	renderTo(&b, n)
	return b.String()
}

func renderTo(b *strings.Builder, n *Node) {
	switch n.Type {
	case DocumentNode:
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			renderTo(b, c)
		}
	case DoctypeNode:
		b.WriteString("<!")
		b.WriteString(n.Data)
		b.WriteString(">")
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case TextNode:
		b.WriteString(Escape(n.Data))
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			b.WriteString(Escape(a.Value))
			b.WriteByte('"')
		}
		b.WriteByte('>')
		if voidTags[n.Tag] {
			return
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			renderTo(b, c)
		}
		b.WriteString("</")
		b.WriteString(n.Tag)
		b.WriteByte('>')
	}
}
