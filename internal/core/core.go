// Package core is the public facade of the PhishInPatterns reproduction:
// it wires the full measurement pipeline of Figure 6 — live phishing feed,
// intelligent crawler (with its trained input-field classifier, OCR engine
// and object detector), crawl farm, and data analyzer — into a single
// Pipeline that callers configure with a corpus size and a seed. The cmd/
// tools, the examples, and the benchmark harness are all thin wrappers over
// this package.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/brands"
	"repro/internal/browser"
	"repro/internal/chaos"
	"repro/internal/crawler"
	"repro/internal/farm"
	"repro/internal/feed"
	"repro/internal/journal"
	"repro/internal/phash"
	"repro/internal/phishserver"
	"repro/internal/sitegen"
	"repro/internal/termclass"
	"repro/internal/textclass"
	"repro/internal/triage"
	"repro/internal/vision"
	"repro/internal/visualphish"
)

// Options configures a Pipeline.
type Options struct {
	// NumSites is the corpus size (paper scale: 51,859). Default 1,000.
	NumSites int
	// Seed drives all generation and training randomness.
	Seed int64
	// Workers is the farm parallelism (default 30, the paper's setting).
	Workers int
	// DetectorTrainPages is the number of generated pages the object
	// detector is fitted on (paper: 10,000). Default 600, which reaches
	// comparable accuracy on this substrate far faster.
	DetectorTrainPages int
	// MaxPagesPerSite bounds each crawl session.
	MaxPagesPerSite int

	// Chaos, when non-nil, wraps the serving transport in the fault
	// injector so the synthetic feed exhibits the dead/slow/flaky/5xx mix
	// a real reported-URL feed does. nil serves a perfectly healthy feed.
	Chaos *chaos.Profile
	// ChaosSeed seeds fault assignment (0 derives Seed+7). Faults are a
	// pure function of (ChaosSeed, host), so runs are reproducible.
	ChaosSeed int64
	// SessionBudget bounds each session's wall clock (0 = crawler
	// default; negative = unlimited).
	SessionBudget time.Duration
	// FetchTimeout bounds each browser fetch (0 = browser default).
	FetchTimeout time.Duration
	// MaxRetries, RetryBase, and RetryMax configure the farm's retry
	// queue (zero values = farm defaults; MaxRetries < 0 disables).
	MaxRetries int
	RetryBase  time.Duration
	RetryMax   time.Duration

	// Triage, when non-nil, enables the pre-session triage funnel
	// (internal/triage): feed URLs are lexically scored, probed once, and
	// clustered into a campaign near-duplicate index before the crawl, and
	// URLs attributed to an indexed campaign (or cut by top-K) take a
	// fast-path session instead of a full browser crawl. The plan is a
	// pure function of (feed, Triage options), so it is identical across
	// worker counts, resumes, and fleet members. nil disables triage.
	Triage *triage.Options
	// MinCampaignSize clamps generated campaign sizes from below — the
	// clone-heavy-feed knob for triage experiments (0 = the paper's
	// distribution). It changes the corpus, so every process in a fleet
	// must agree on it.
	MinCampaignSize int

	// CloakRate is the site-weighted fraction of generated campaigns that
	// cloak: their kits serve a benign decoy unless the request passes the
	// campaign's gate (user-agent, referrer, repeat-visit cookie, language,
	// forwarded-for, or a JS-capability probe). 0 disables cloaking and
	// keeps the corpus byte-identical to earlier seeds. It changes the
	// corpus, so every process in a fleet must agree on it.
	CloakRate float64
	// CloakRetries is the adaptive uncloaking budget: how many re-crawls
	// with a mutated profile a session landing on a benign decoy may spend
	// (0 = honest single crawl, the pre-cloaking behaviour).
	CloakRetries int

	// Models, when non-nil, injects an already-trained model bundle and
	// skips training entirely; the caller vouches that it was trained with
	// this pipeline's Seed and DetectorTrainPages. nil uses the
	// process-wide shared cache (SharedModels), so repeated pipelines with
	// equal params train once.
	Models *Models
	// DisablePooling turns off per-session object-graph recycling: every
	// session allocates its browser, trace slab, and render buffers fresh.
	// Session exports are byte-identical either way (the pooled-vs-unpooled
	// determinism pin); the switch exists for A/B measurement and as an
	// escape hatch.
	DisablePooling bool
}

func (o Options) withDefaults() Options {
	if o.NumSites <= 0 {
		o.NumSites = 1000
	}
	if o.Workers <= 0 {
		o.Workers = farm.DefaultWorkers
	}
	if o.DetectorTrainPages <= 0 {
		o.DetectorTrainPages = 600
	}
	if o.MaxPagesPerSite <= 0 {
		o.MaxPagesPerSite = crawler.DefaultMaxPages
	}
	return o
}

// Pipeline is the assembled measurement system.
type Pipeline struct {
	Opts     Options
	Corpus   *sitegen.Corpus
	Feed     *feed.Feed
	Registry *phishserver.Registry

	// Models is the trained bundle this pipeline crawls with — shared
	// read-only with every other pipeline built from the same params
	// unless Options.Models injected a private one. The individual model
	// fields below alias it (kept for source compatibility); none may be
	// mutated.
	Models *Models

	FieldClassifier  *textclass.Model
	Detector         *vision.Detector
	TermClassifier   *termclass.Classifier
	Gallery          *visualphish.Gallery
	CaptchaExemplars []phash.Hash

	Crawler *crawler.Crawler
	// Injector is the fault-injection layer (nil when Options.Chaos is
	// nil); its FaultFor/Summary expose the injected ground truth.
	Injector *chaos.Injector

	// Triage is the precomputed triage plan (nil when Options.Triage is
	// nil): the per-URL fast-path/full verdicts and the campaign
	// near-duplicate index, derived before any crawl session runs.
	Triage *triage.Plan

	// Monitor, when set before crawling, receives live run progress
	// (completions, retries, stage latencies) for cmd/phishcrawl's status
	// endpoint and progress line. nil disables progress tracking.
	Monitor *farm.Monitor

	// Crawl outputs.
	Logs  []*crawler.SessionLog
	Stats farm.Stats
}

// NewFeed builds only the deterministic URL universe for opts — the
// corpus and feed, no model training, no crawler. It is what a fleet
// coordinator derives its lease ranges from: every process that shares
// (-sites, -seed) derives exactly this feed, so the coordinator can shard
// by index and never ship a URL over the wire.
func NewFeed(opts Options) (*sitegen.Corpus, *feed.Feed) {
	opts = opts.withDefaults()
	params := sitegen.ScaledParams(opts.NumSites, opts.Seed)
	params.MinCampaignSize = opts.MinCampaignSize
	params.CloakRate = opts.CloakRate
	c := sitegen.Generate(params)
	return c, feed.FromCorpus(c, opts.Seed+1)
}

// NewPipeline generates the corpus, trains every model, and assembles the
// crawler; call Crawl to run the measurement.
func NewPipeline(opts Options) (*Pipeline, error) {
	opts = opts.withDefaults()
	p := &Pipeline{Opts: opts}

	// Corpus and feed.
	p.Corpus, p.Feed = NewFeed(opts)

	// Serving registry: every phishing site plus the benign hosts terminal
	// redirects land on.
	p.Registry = phishserver.NewRegistry()
	for _, s := range p.Corpus.Sites {
		p.Registry.AddSite(s)
	}
	for _, b := range brands.All() {
		p.Registry.AddBenignHost(b.LegitDomain)
	}
	for _, h := range []string{"example.com", "example.org", "example.net", "google.com", "youtube.com", "yahoo.com", "godaddy.com", "live.com"} {
		p.Registry.AddBenignHost(h)
	}

	// Models: an injected bundle wins; otherwise the process-wide cache
	// returns (and on first use trains) the bundle for this pipeline's
	// params, so repeated NewPipeline calls — bench iterations, resume
	// runs, worker fleets — stop retraining identical models.
	m := opts.Models
	if m == nil {
		var err error
		m, err = SharedModels(ModelParams{Seed: opts.Seed, DetectorTrainPages: opts.DetectorTrainPages})
		if err != nil {
			return nil, err
		}
	}
	p.Models = m
	p.FieldClassifier = m.FieldClassifier
	p.Detector = m.Detector
	p.TermClassifier = m.TermClassifier
	p.Gallery = m.Gallery
	p.CaptchaExemplars = m.CaptchaExemplars

	// Crawler template. The serving transport is optionally wrapped in
	// the fault injector, scoped to phishing hosts so benign redirect
	// targets stay reachable.
	var transport http.RoundTripper = phishserver.Transport{Registry: p.Registry}
	if opts.Chaos != nil {
		chaosSeed := opts.ChaosSeed
		if chaosSeed == 0 {
			chaosSeed = opts.Seed + 7
		}
		phishHosts := make(map[string]bool, len(p.Corpus.Sites))
		for _, s := range p.Corpus.Sites {
			phishHosts[s.Host] = true
		}
		p.Injector = &chaos.Injector{
			Profile:    *opts.Chaos,
			Seed:       chaosSeed,
			Inner:      transport,
			InjectHost: func(host string) bool { return phishHosts[host] },
		}
		transport = p.Injector
	}
	p.Crawler = &crawler.Crawler{
		Classifier: p.FieldClassifier,
		Detector:   p.Detector,
		NewBrowser: func() *browser.Browser {
			return browser.New(browser.Options{Transport: transport, Timeout: opts.FetchTimeout})
		},
		MaxPages:      opts.MaxPagesPerSite,
		SessionBudget: opts.SessionBudget,
		FakerSeed:     opts.Seed + 6,
		CloakRetries:  opts.CloakRetries,
	}
	if !opts.DisablePooling {
		p.Crawler.Pool = crawler.NewSessionPool()
	}

	// Triage plan: built before any crawl, over the same browser factory
	// (and therefore the same chaos-wrapped transport) the crawler uses.
	// Probing consumes each URL's first connection exactly once per
	// process, which keeps even the injector's stateful flaky-connection
	// budget identical across runs, resumes, and fleet members.
	if opts.Triage != nil {
		p.Triage = triage.BuildPlan(p.Feed.URLs(), triage.Config{
			Options:     *opts.Triage,
			Workers:     opts.Workers,
			NewBrowser:  p.Crawler.NewBrowser,
			BrandTokens: brandTokens(),
		})
	}
	return p, nil
}

// brandTokens derives the lowercase brand vocabulary for the lexical
// brand-in-host feature from the brand catalogue: the leading word of each
// brand name plus the registrable label of its legitimate domain, deduped
// and sorted so the scorer's input is deterministic.
func brandTokens() []string {
	seen := map[string]bool{}
	var out []string
	add := func(tok string) {
		tok = strings.ToLower(tok)
		tok = strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' {
				return r
			}
			return -1
		}, tok)
		if len(tok) >= 3 && !seen[tok] {
			seen[tok] = true
			out = append(out, tok)
		}
	}
	for _, b := range brands.All() {
		add(strings.Fields(b.Name)[0])
		add(strings.SplitN(b.LegitDomain, ".", 2)[0])
	}
	sort.Strings(out)
	return out
}

// farmConfig assembles the farm configuration from the pipeline options.
func (p *Pipeline) farmConfig() farm.Config {
	cfg := farm.Config{
		Workers:    p.Opts.Workers,
		Crawler:    p.Crawler,
		MaxRetries: p.Opts.MaxRetries,
		RetryBase:  p.Opts.RetryBase,
		RetryMax:   p.Opts.RetryMax,
		RetrySeed:  p.Opts.Seed + 8,
		Monitor:    p.Monitor,
	}
	if p.Triage != nil {
		cfg.FastPath = p.Triage.FastPath
	}
	return cfg
}

// Crawl runs the farm over the filtered feed and attaches feed metadata to
// the session logs.
func (p *Pipeline) Crawl() {
	urls := p.Feed.URLs()
	p.Logs, p.Stats = farm.Run(p.farmConfig(), urls)
	analysis.AttachMeta(p.Logs, p.Feed.Filter())
	p.stampTriage(p.Logs)
}

// stampTriage attaches the triage verdicts to finished logs (no-op when
// triage is off).
func (p *Pipeline) stampTriage(logs []*crawler.SessionLog) {
	if p.Triage == nil {
		return
	}
	for _, lg := range logs {
		p.Triage.Stamp(lg)
	}
}

// ensureTriageJournaled reconciles this pipeline's triage plan with the
// journal's plan record. A fresh triage-enabled journal gets the encoded
// plan appended before any session; a resumed one must hold a record that
// byte-matches the locally rebuilt plan (the plan is a pure function of the
// feed and the triage flags, so any mismatch means the journal belongs to a
// different triage universe). A journal with sessions but no plan record
// was recorded without -triage and cannot be resumed with it — and vice
// versa — because the two runs disagree on which URLs get full sessions.
func (p *Pipeline) ensureTriageJournaled(j *journal.Journal) error {
	stored, err := j.TriagePlans()
	if err != nil {
		return fmt.Errorf("core: reading journaled triage plans: %w", err)
	}
	if p.Triage == nil {
		if len(stored) > 0 {
			return fmt.Errorf("core: journal holds a triage plan record but this run has -triage off; resume with the original triage flags")
		}
		return nil
	}
	if len(stored) == 0 {
		if len(j.CompletedURLs()) > 0 {
			return fmt.Errorf("core: journal holds sessions but no triage plan record; it was recorded without -triage and cannot be resumed with it")
		}
		enc, err := p.Triage.Encode()
		if err != nil {
			return fmt.Errorf("core: encoding triage plan: %w", err)
		}
		if err := j.AppendTriage(enc); err != nil {
			return fmt.Errorf("core: journaling triage plan: %w", err)
		}
		return nil
	}
	for _, rec := range stored {
		if err := p.Triage.Verify(rec); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// cloakConfig is the journaled cloak configuration record: the corpus's
// cloak rate and the crawler's retry budget. Field order is fixed, so its
// JSON encoding is canonical and resume can compare records byte-for-byte.
type cloakConfig struct {
	Rate    float64 `json:"rate"`
	Retries int     `json:"retries"`
}

// cloakEnabled reports whether this run participates in cloaking at all —
// either the corpus cloaks or the crawler spends uncloaking retries.
func (o Options) cloakEnabled() bool {
	return o.CloakRate > 0 || o.CloakRetries > 0
}

// ensureCloakJournaled reconciles this run's cloak configuration with the
// journal's config record, mirroring ensureTriageJournaled: a fresh
// cloak-enabled journal gets the canonical config appended before any
// session; a resumed one must hold a byte-identical record. The per-session
// mutation schedules are pure functions of the config and the feed, so a
// config mismatch means the journaled sessions were produced by a different
// cloak universe and cannot be mixed with this run's.
func (p *Pipeline) ensureCloakJournaled(j *journal.Journal) error {
	stored, err := j.CloakRecords()
	if err != nil {
		return fmt.Errorf("core: reading journaled cloak config: %w", err)
	}
	if !p.Opts.cloakEnabled() {
		if len(stored) > 0 {
			return fmt.Errorf("core: journal holds a cloak config record but this run has cloaking off; resume with the original -cloak-rate/-cloak-retries")
		}
		return nil
	}
	enc, err := json.Marshal(cloakConfig{Rate: p.Opts.CloakRate, Retries: p.Opts.CloakRetries})
	if err != nil {
		return fmt.Errorf("core: encoding cloak config: %w", err)
	}
	if len(stored) == 0 {
		if len(j.CompletedURLs()) > 0 {
			return fmt.Errorf("core: journal holds sessions but no cloak config record; it was recorded without cloaking and cannot be resumed with it")
		}
		if err := j.AppendCloak(enc); err != nil {
			return fmt.Errorf("core: journaling cloak config: %w", err)
		}
		return nil
	}
	for _, rec := range stored {
		if !bytes.Equal(rec, enc) {
			return fmt.Errorf("core: journaled cloak config %s does not match this run's %s; resume with the original -cloak-rate/-cloak-retries", rec, enc)
		}
	}
	return nil
}

// CrawlJournal crawls up to sample feed URLs (0 = all), streaming every
// finished session into j the moment it completes instead of accumulating
// logs in memory — the run-level durability layer for a 43-day crawl. URLs
// the journal already holds are skipped, so reopening the journal of an
// interrupted run resumes it: only incomplete URLs are re-crawled, and
// because per-session seeds derive from feed indices, the resumed sessions
// are identical to the ones an uninterrupted run would have produced. Feed
// metadata is attached before journaling; a stats record is appended when
// the run completes. p.Stats reports THIS run only (merged totals come
// from the journal); p.Logs stays nil. Returns how many URLs were skipped
// as already complete.
func (p *Pipeline) CrawlJournal(j *journal.Journal, sample int) (skipped int, err error) {
	urls := p.Feed.URLs()
	// Guard the operator against resuming with a mismatched corpus: every
	// journaled URL must exist in this feed, or the checkpoint (and the
	// sessions behind it) belong to a different -sites/-seed.
	inFeed := make(map[string]bool, len(urls))
	for _, u := range urls {
		inFeed[u] = true
	}
	for u := range j.CompletedURLs() {
		if !inFeed[u] {
			return 0, fmt.Errorf("core: journal holds sessions for URLs not in this feed (e.g. %s); it was recorded with different -sites/-seed", u)
		}
	}
	if sample > 0 && sample < len(urls) {
		urls = urls[:sample]
	}
	for _, u := range urls {
		if j.Completed(u) {
			skipped++
		}
	}
	p.Monitor.AddPreCompleted(skipped)
	if err := p.ensureTriageJournaled(j); err != nil {
		return skipped, err
	}
	if err := p.ensureCloakJournaled(j); err != nil {
		return skipped, err
	}
	byURL := analysis.MetaIndex(p.Feed.Filter())
	cfg := p.farmConfig()
	cfg.Skip = func(_ int, u string) bool { return j.Completed(u) }
	cfg.Sink = func(_ int, lg *crawler.SessionLog) error {
		analysis.AttachMetaIndexed(lg, byURL)
		p.Triage.Stamp(lg)
		return j.AppendSession(lg)
	}
	// The sink touches only its own session (metadata attach) and the
	// journal, whose appends are internally serialized — and batched, under
	// the group-commit sync policy. Concurrent delivery keeps workers from
	// queueing on the farm's tally lock for every fsync.
	cfg.SinkConcurrent = true
	p.Logs = nil
	p.Stats, err = farm.RunStream(cfg, urls)
	if err != nil {
		return skipped, fmt.Errorf("core: journaling crawl: %w", err)
	}
	//phishvet:ignore detertaint: Stats.Elapsed is per-run operational accounting — determinism pins compare session records, never stats timing
	if err := j.AppendStats(p.Stats); err != nil {
		return skipped, fmt.Errorf("core: journaling run stats: %w", err)
	}
	return skipped, nil
}

// CrawlJournalShard is the fleet-worker crawl: it crawls only the feed
// indices in [start, end), skipping URLs in done (the coordinator's
// already-journaled set) and URLs this shard journal itself holds (a
// resumed shard directory), streaming every finished session into j. The
// skip filter composes over the full feed exactly as CrawlJournal's does,
// so per-session seeds still derive from global feed indices and a shard's
// sessions are byte-identical to the same sessions in a single-process
// run. p.Stats reports this shard's crawl; a stats record is appended on
// completion so the coordinator's merge can account elapsed time and
// panics per shard.
func (p *Pipeline) CrawlJournalShard(j *journal.Journal, start, end int, done map[string]bool) error {
	urls := p.Feed.URLs()
	if start < 0 || end > len(urls) || start > end {
		return fmt.Errorf("core: shard range [%d,%d) outside feed of %d URLs", start, end, len(urls))
	}
	if err := p.ensureTriageJournaled(j); err != nil {
		return err
	}
	if err := p.ensureCloakJournaled(j); err != nil {
		return err
	}
	byURL := analysis.MetaIndex(p.Feed.Filter())
	cfg := p.farmConfig()
	cfg.Skip = func(idx int, u string) bool {
		return idx < start || idx >= end || done[u] || j.Completed(u)
	}
	cfg.Sink = func(_ int, lg *crawler.SessionLog) error {
		analysis.AttachMetaIndexed(lg, byURL)
		p.Triage.Stamp(lg)
		return j.AppendSession(lg)
	}
	cfg.SinkConcurrent = true
	p.Logs = nil
	var err error
	p.Stats, err = farm.RunStream(cfg, urls)
	if err != nil {
		return fmt.Errorf("core: journaling shard crawl: %w", err)
	}
	//phishvet:ignore detertaint: Stats.Elapsed is per-run operational accounting — determinism pins compare session records, never stats timing
	if err := j.AppendStats(p.Stats); err != nil {
		return fmt.Errorf("core: journaling shard stats: %w", err)
	}
	return nil
}

// CrawlSample crawls only the first n feed entries (for quick looks and
// examples); metadata is attached as in Crawl.
func (p *Pipeline) CrawlSample(n int) {
	urls := p.Feed.URLs()
	if n < len(urls) {
		urls = urls[:n]
	}
	p.Logs, p.Stats = farm.Run(p.farmConfig(), urls)
	analysis.AttachMeta(p.Logs, p.Feed.Filter())
	p.stampTriage(p.Logs)
}

// CaptchaAnalysisOptions returns the configured verification options for
// analysis.Captchas.
func (p *Pipeline) CaptchaAnalysisOptions() analysis.CaptchaOptions {
	return analysis.CaptchaOptions{Exemplars: p.CaptchaExemplars}
}
