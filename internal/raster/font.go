package raster

import (
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// The bitmap font: each glyph is 5 pixels wide and 7 tall, described by 7
// strings where 'X' marks an on pixel. Lowercase letters render with their
// uppercase glyphs (the OCR engine therefore reads text back uppercased;
// all downstream keyword matching is case-insensitive, so no information
// that matters to the system is lost).
//
// GlyphW/GlyphH describe the glyph cell; AdvanceX/LineH include spacing.
const (
	GlyphW   = 5
	GlyphH   = 7
	AdvanceX = 6 // glyph width + 1 px gap
	LineH    = 9 // glyph height + 2 px leading
)

var glyphs = map[rune][7]string{
	'A':  {".XXX.", "X...X", "X...X", "XXXXX", "X...X", "X...X", "X...X"},
	'B':  {"XXXX.", "X...X", "X...X", "XXXX.", "X...X", "X...X", "XXXX."},
	'C':  {".XXX.", "X...X", "X....", "X....", "X....", "X...X", ".XXX."},
	'D':  {"XXXX.", "X...X", "X...X", "X...X", "X...X", "X...X", "XXXX."},
	'E':  {"XXXXX", "X....", "X....", "XXXX.", "X....", "X....", "XXXXX"},
	'F':  {"XXXXX", "X....", "X....", "XXXX.", "X....", "X....", "X...."},
	'G':  {".XXX.", "X...X", "X....", "X.XXX", "X...X", "X...X", ".XXX."},
	'H':  {"X...X", "X...X", "X...X", "XXXXX", "X...X", "X...X", "X...X"},
	'I':  {"XXXXX", "..X..", "..X..", "..X..", "..X..", "..X..", "XXXXX"},
	'J':  {"..XXX", "...X.", "...X.", "...X.", "...X.", "X..X.", ".XX.."},
	'K':  {"X...X", "X..X.", "X.X..", "XX...", "X.X..", "X..X.", "X...X"},
	'L':  {"X....", "X....", "X....", "X....", "X....", "X....", "XXXXX"},
	'M':  {"X...X", "XX.XX", "X.X.X", "X.X.X", "X...X", "X...X", "X...X"},
	'N':  {"X...X", "XX..X", "X.X.X", "X..XX", "X...X", "X...X", "X...X"},
	'O':  {".XXX.", "X...X", "X...X", "X...X", "X...X", "X...X", ".XXX."},
	'P':  {"XXXX.", "X...X", "X...X", "XXXX.", "X....", "X....", "X...."},
	'Q':  {".XXX.", "X...X", "X...X", "X...X", "X.X.X", "X..X.", ".XX.X"},
	'R':  {"XXXX.", "X...X", "X...X", "XXXX.", "X.X..", "X..X.", "X...X"},
	'S':  {".XXXX", "X....", "X....", ".XXX.", "....X", "....X", "XXXX."},
	'T':  {"XXXXX", "..X..", "..X..", "..X..", "..X..", "..X..", "..X.."},
	'U':  {"X...X", "X...X", "X...X", "X...X", "X...X", "X...X", ".XXX."},
	'V':  {"X...X", "X...X", "X...X", "X...X", "X...X", ".X.X.", "..X.."},
	'W':  {"X...X", "X...X", "X...X", "X.X.X", "X.X.X", "XX.XX", "X...X"},
	'X':  {"X...X", "X...X", ".X.X.", "..X..", ".X.X.", "X...X", "X...X"},
	'Y':  {"X...X", "X...X", ".X.X.", "..X..", "..X..", "..X..", "..X.."},
	'Z':  {"XXXXX", "....X", "...X.", "..X..", ".X...", "X....", "XXXXX"},
	'0':  {".XXX.", "X...X", "X..XX", "X.X.X", "XX..X", "X...X", ".XXX."},
	'1':  {"..X..", ".XX..", "..X..", "..X..", "..X..", "..X..", ".XXX."},
	'2':  {".XXX.", "X...X", "....X", "...X.", "..X..", ".X...", "XXXXX"},
	'3':  {".XXX.", "X...X", "....X", "..XX.", "....X", "X...X", ".XXX."},
	'4':  {"...X.", "..XX.", ".X.X.", "X..X.", "XXXXX", "...X.", "...X."},
	'5':  {"XXXXX", "X....", "XXXX.", "....X", "....X", "X...X", ".XXX."},
	'6':  {".XXX.", "X....", "X....", "XXXX.", "X...X", "X...X", ".XXX."},
	'7':  {"XXXXX", "....X", "...X.", "..X..", ".X...", ".X...", ".X..."},
	'8':  {".XXX.", "X...X", "X...X", ".XXX.", "X...X", "X...X", ".XXX."},
	'9':  {".XXX.", "X...X", "X...X", ".XXXX", "....X", "....X", ".XXX."},
	'.':  {".....", ".....", ".....", ".....", ".....", ".XX..", ".XX.."},
	',':  {".....", ".....", ".....", ".....", "..X..", "..X..", ".X..."},
	':':  {".....", ".XX..", ".XX..", ".....", ".XX..", ".XX..", "....."},
	';':  {".....", ".XX..", ".XX..", ".....", ".XX..", "..X..", ".X..."},
	'-':  {".....", ".....", ".....", "XXXXX", ".....", ".....", "....."},
	'_':  {".....", ".....", ".....", ".....", ".....", ".....", "XXXXX"},
	'/':  {"....X", "....X", "...X.", "..X..", ".X...", "X....", "X...."},
	'\\': {"X....", "X....", ".X...", "..X..", "...X.", "....X", "....X"},
	'@':  {".XXX.", "X...X", "X.XXX", "X.X.X", "X.XXX", "X....", ".XXXX"},
	'?':  {".XXX.", "X...X", "....X", "...X.", "..X..", ".....", "..X.."},
	'!':  {"..X..", "..X..", "..X..", "..X..", "..X..", ".....", "..X.."},
	'(':  {"...X.", "..X..", ".X...", ".X...", ".X...", "..X..", "...X."},
	')':  {".X...", "..X..", "...X.", "...X.", "...X.", "..X..", ".X..."},
	'\'': {"..X..", "..X..", ".X...", ".....", ".....", ".....", "....."},
	'"':  {".X.X.", ".X.X.", ".....", ".....", ".....", ".....", "....."},
	'&':  {".XX..", "X..X.", "X..X.", ".XX..", "X.X.X", "X..X.", ".XX.X"},
	'*':  {".....", "..X..", "X.X.X", ".XXX.", "X.X.X", "..X..", "....."},
	'#':  {".X.X.", "XXXXX", ".X.X.", ".X.X.", ".X.X.", "XXXXX", ".X.X."},
	'$':  {"..X..", ".XXXX", "X.X..", ".XXX.", "..X.X", "XXXX.", "..X.."},
	'%':  {"XX..X", "XX.X.", "...X.", "..X..", ".X...", ".X.XX", "X..XX"},
	'+':  {".....", "..X..", "..X..", "XXXXX", "..X..", "..X..", "....."},
	'=':  {".....", ".....", "XXXXX", ".....", "XXXXX", ".....", "....."},
	'>':  {"X....", ".X...", "..X..", "...X.", "..X..", ".X...", "X...."},
	'<':  {"...X.", "..X..", ".X...", "X....", ".X...", "..X..", "...X."},
	'•':  {".....", ".....", ".XXX.", ".XXX.", ".XXX.", ".....", "....."},
}

// Glyph returns the bitmap for r, uppercasing letters, and reports whether a
// glyph exists.
func Glyph(r rune) ([7]string, bool) {
	if r >= 'a' && r <= 'z' {
		r = r - 'a' + 'A'
	}
	g, ok := glyphs[r]
	return g, ok
}

// HasGlyph reports whether the font can draw r (after case folding).
func HasGlyph(r rune) bool {
	_, ok := Glyph(r)
	return ok || r == ' '
}

// GlyphRunes returns every rune the font defines, in ascending code-point
// order. The order is stable so that consumers resolving ties by table
// position (OCR glyph matching) behave identically across processes.
func GlyphRunes() []rune {
	out := make([]rune, 0, len(glyphs))
	for r := range glyphs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DrawGlyph draws the glyph for r with its top-left at (x, y) in color fg.
// Unknown runes draw as a filled block so they remain visible (and OCR reads
// them as unknown).
func (im *Image) DrawGlyph(r rune, x, y int, fg Color) {
	if r == ' ' {
		return
	}
	g, ok := Glyph(r)
	if !ok {
		im.Fill(R(x, y+1, GlyphW, GlyphH-2), fg)
		return
	}
	for gy := 0; gy < GlyphH; gy++ {
		row := g[gy]
		for gx := 0; gx < GlyphW; gx++ {
			if row[gx] == 'X' {
				im.Set(x+gx, y+gy, fg)
			}
		}
	}
}

// DrawString draws s starting at (x, y) with the given foreground color. It
// does not wrap; callers that need wrapping should split lines themselves.
// The return value is the x coordinate just past the final glyph.
func (im *Image) DrawString(s string, x, y int, fg Color) int {
	cx := x
	for _, r := range s {
		im.DrawGlyph(r, cx, y, fg)
		cx += AdvanceX
	}
	return cx
}

// StringWidth returns the pixel width DrawString would occupy for s.
func StringWidth(s string) int {
	n := 0
	for range s {
		n++
	}
	return n * AdvanceX
}

// WrapString splits s into lines no wider than maxW pixels, breaking at
// spaces where possible.
func WrapString(s string, maxW int) []string {
	var lines []string
	WrapEach(s, maxW, func(line string) { lines = append(lines, line) })
	return lines
}

// WrapCount returns len(WrapString(s, maxW)) without building the lines —
// the layout engine only needs the line count to size text boxes.
func WrapCount(s string, maxW int) int {
	n := 0
	WrapEach(s, maxW, func(string) { n++ })
	return n
}

// WrapEach wraps s at maxW pixels and calls emit once per line, in order.
// Single-word lines are substrings of s; only lines joined from several
// words are built fresh. WrapString and WrapCount are thin wrappers.
func WrapEach(s string, maxW int, emit func(line string)) {
	if maxW < AdvanceX {
		maxW = AdvanceX
	}
	perLine := maxW / AdvanceX
	for start := 0; ; {
		var paragraph string
		if nl := strings.IndexByte(s[start:], '\n'); nl >= 0 {
			paragraph = s[start : start+nl]
			start += nl + 1
		} else {
			paragraph = s[start:]
			start = -1
		}
		wrapParagraph(paragraph, perLine, emit)
		if start < 0 {
			return
		}
	}
}

// wrapParagraph wraps one newline-free paragraph, iterating its fields in
// place (same boundaries as strings.Fields). The current line is tracked as
// the substring p[cs:ce) whenever possible — every single word, and runs of
// words whose gaps are exactly one space, which is all of them once the
// caller has applied CollapseSpace (the render hot path) — so wrapping then
// allocates nothing; only joins across wider gaps build a fresh string.
func wrapParagraph(p string, perLine int, emit func(string)) {
	cs, ce := 0, 0
	built := ""
	curLen := func() int {
		if built != "" {
			return len(built)
		}
		return ce - cs
	}
	any := false
	for i := 0; i < len(p); {
		r, size := utf8.DecodeRuneInString(p[i:])
		if unicode.IsSpace(r) {
			i += size
			continue
		}
		j := i
		for j < len(p) {
			r2, s2 := utf8.DecodeRuneInString(p[j:])
			if unicode.IsSpace(r2) {
				break
			}
			j += s2
		}
		any = true
		if n := curLen(); n > 0 && n+1+(j-i) <= perLine {
			// The word joins the current line.
			if built == "" && ce+1 == i && p[ce] == ' ' {
				ce = j
			} else {
				if built == "" {
					built = p[cs:ce]
				}
				built += " " + p[i:j]
			}
			i = j
			continue
		}
		// The word starts a new line (emitting any current one), hard-split
		// if over-long; the tail becomes the new current line.
		if built != "" {
			emit(built)
			built = ""
		} else if ce > cs {
			emit(p[cs:ce])
		}
		for j-i > perLine {
			emit(p[i : i+perLine])
			i += perLine
		}
		cs, ce = i, j
		i = j
	}
	if !any {
		emit("")
		return
	}
	if built != "" {
		emit(built)
	} else if ce > cs {
		emit(p[cs:ce])
	}
}

// CollapseSpace is strings.Join(strings.Fields(s), " ") with an
// allocation-free fast path for strings that are already collapsed — the
// common case for generated page text, which the renderer and layout engine
// normalize on every paint.
func CollapseSpace(s string) string {
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c == ' ' {
				if i == 0 || i+1 == len(s) || s[i+1] == ' ' {
					return strings.Join(strings.Fields(s), " ")
				}
			} else if c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r' {
				return strings.Join(strings.Fields(s), " ")
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if unicode.IsSpace(r) {
			return strings.Join(strings.Fields(s), " ")
		}
		i += size
	}
	return s
}
