package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// triageFunnel parses the "Triage: ..." banner from a run's output.
type triageFunnel struct {
	total, cut, attributed, campaigns, full int
}

func parseTriageBanner(t *testing.T, out string) triageFunnel {
	t.Helper()
	i := strings.Index(out, "Triage: ")
	if i < 0 {
		t.Fatalf("no triage banner in output:\n%s", out)
	}
	line := out[i:]
	if j := strings.IndexByte(line, '\n'); j >= 0 {
		line = line[:j]
	}
	var f triageFunnel
	if _, err := fmt.Sscanf(line, "Triage: %d URLs -> %d cut, %d attributed to %d campaigns, %d full sessions",
		&f.total, &f.cut, &f.attributed, &f.campaigns, &f.full); err != nil {
		t.Fatalf("unparseable triage banner %q: %v", line, err)
	}
	return f
}

// detectedURLs reads an export and returns the set of seed URLs whose
// session completed — fully crawled or attributed to a campaign. This is
// the recall set: a URL the measurement covered, whichever path it took.
func detectedURLs(t *testing.T, path string) map[string]bool {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	set := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		var rec struct {
			SeedURL string
			Outcome string
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		switch rec.Outcome {
		case "completed", "stuck", "page-limit", "attributed":
			set[rec.SeedURL] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return set
}

// TestTriageSmoke is the clone-heavy-feed acceptance run wired into `make
// triage-smoke` (and `make chaos`): on a feed where ~90% of URLs are
// duplicates of a handful of kits, a triage-enabled crawl must spawn >= 5x
// fewer full browser sessions than the feed has URLs, lose no detection
// recall against a full (non-triage) crawl, and stay byte-deterministic —
// identical exports at 1 and 30 workers, and across a SIGKILL + torn-tail
// + resume of a journaled triage run.
func TestTriageSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary five times")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "phishcrawl")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building phishcrawl: %v\n%s", err, out)
	}

	// -campaign-min 12 clamps the generated campaign-size distribution from
	// below: 240 sites land in at most 20 campaigns, so >= 90% of the feed
	// is a near-duplicate of an earlier URL.
	args := []string{"-sites", "240", "-campaign-min", "12", "-detector-train", "150", "-seed", "42"}
	run := func(extra ...string) string {
		out, err := exec.Command(bin, append(append([]string{}, args...), extra...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("phishcrawl %v: %v\n%s", extra, err, out)
		}
		return string(out)
	}

	// Reference: the same feed crawled in full, no triage.
	full := filepath.Join(dir, "full.jsonl")
	run("-workers", "30", "-o", full)

	// Triage at two worker counts: the plan is a pure function of the feed,
	// so the exports must be byte-identical.
	tri1 := filepath.Join(dir, "triage-w1.jsonl")
	tri30 := filepath.Join(dir, "triage-w30.jsonl")
	out1 := run("-triage", "-workers", "1", "-o", tri1)
	out30 := run("-triage", "-workers", "30", "-o", tri30)

	b1 := readExport(t, tri1)
	b30 := readExport(t, tri30)
	if b1 != b30 {
		t.Fatal("triage exports differ between 1 and 30 workers")
	}

	// The funnel: >= 5x fewer full sessions than feed URLs.
	fn := parseTriageBanner(t, out30)
	if fn.total != 240 || fn.cut != 0 {
		t.Fatalf("funnel %+v: want 240 URLs, 0 cut (no -triage-topk)", fn)
	}
	if fn.full*5 > fn.total {
		t.Fatalf("funnel %+v: %d full sessions for %d URLs, want >= 5x reduction", fn, fn.full, fn.total)
	}
	if fn.attributed == 0 || fn.campaigns == 0 {
		t.Fatalf("funnel %+v: no attribution happened", fn)
	}
	if fb := parseTriageBanner(t, out1); fb != fn {
		t.Fatalf("funnel differs between worker counts: %+v vs %+v", fb, fn)
	}

	// Recall: the set of covered URLs must be identical — every URL the
	// full crawl measured is either fully crawled or campaign-attributed
	// under triage, and nothing extra appears.
	want := detectedURLs(t, full)
	got := detectedURLs(t, tri1)
	if len(want) != 240 {
		t.Fatalf("full run covered %d of 240 URLs", len(want))
	}
	for u := range want {
		if !got[u] {
			t.Errorf("URL %s detected by the full crawl but lost under triage", u)
		}
	}
	for u := range got {
		if !want[u] {
			t.Errorf("URL %s appears only under triage", u)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Kill/resume leg: journal a triage run, SIGKILL it once the journal
	// holds data, tear the tail mid-record, resume with the same triage
	// flags, and require the merged export to match the clean triage run
	// byte-for-byte (the journaled plan record must Verify against the
	// rebuilt plan).
	jdir := filepath.Join(dir, "journal")
	jargs := append(append([]string{}, args...), "-triage", "-workers", "30", "-journal", jdir, "-journal-sync", "group")
	cmd := exec.Command(bin, jargs...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(90 * time.Second)
	for {
		var total int64
		for _, seg := range segmentFiles(jdir) {
			if fi, err := os.Stat(seg); err == nil {
				total += fi.Size()
			}
		}
		if total > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("journal never grew; crawl did not start?")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	segs := segmentFiles(jdir)
	if len(segs) == 0 {
		t.Fatal("no journal segments after kill")
	}
	last := segs[len(segs)-1]
	if fi, err := os.Stat(last); err == nil && fi.Size() > 1 {
		if err := os.Truncate(last, fi.Size()-1); err != nil {
			t.Fatal(err)
		}
	}

	resumed := filepath.Join(dir, "triage-resumed.jsonl")
	out := run("-triage", "-workers", "30", "-journal", jdir, "-resume", "-o", resumed)
	if !strings.Contains(out, "Journal: resumed") {
		t.Fatalf("resume banner missing from output:\n%s", out)
	}
	if rb := readExport(t, resumed); rb != b30 {
		t.Fatal("resumed triage export diverges from the clean triage run")
	}
}
