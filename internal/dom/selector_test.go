package dom

import "testing"

const selectorDoc = `<html><body>
<form id="login" class="auth form">
  <div class="row"><label for="em">Email</label><input id="em" name="email" type="email"></div>
  <div class="row"><input name="pw" type="password"></div>
  <button type="submit" class="btn primary">Go</button>
</form>
<div id="footer">
  <a class="btn" href="/next">Next</a>
  <a href="/privacy">Privacy</a>
  <input type="submit" value="Alt">
</div>
</body></html>`

func q(t *testing.T, sel string) []*Node {
	t.Helper()
	doc := Parse(selectorDoc)
	ms, err := Query(doc, sel)
	if err != nil {
		t.Fatalf("Query(%q): %v", sel, err)
	}
	return ms
}

func TestTagSelector(t *testing.T) {
	if got := len(q(t, "input")); got != 3 {
		t.Errorf("input matches = %d, want 3", got)
	}
	if got := len(q(t, "a")); got != 2 {
		t.Errorf("a matches = %d, want 2", got)
	}
}

func TestUniversalSelector(t *testing.T) {
	all := q(t, "*")
	if len(all) < 10 {
		t.Errorf("* matched only %d elements", len(all))
	}
}

func TestIDSelector(t *testing.T) {
	ms := q(t, "#login")
	if len(ms) != 1 || ms[0].Tag != "form" {
		t.Errorf("#login = %v", ms)
	}
	if got := q(t, "form#login"); len(got) != 1 {
		t.Errorf("form#login = %d", len(got))
	}
	if got := q(t, "div#login"); len(got) != 0 {
		t.Errorf("div#login should not match")
	}
}

func TestClassSelector(t *testing.T) {
	if got := len(q(t, ".btn")); got != 2 {
		t.Errorf(".btn = %d, want 2 (button + styled link)", got)
	}
	if got := len(q(t, "a.btn")); got != 1 {
		t.Errorf("a.btn = %d, want 1", got)
	}
	if got := len(q(t, ".btn.primary")); got != 1 {
		t.Errorf(".btn.primary = %d, want 1", got)
	}
	if got := len(q(t, ".auth.form")); got != 1 {
		t.Errorf("multi-class on form = %d", got)
	}
}

func TestAttributeSelector(t *testing.T) {
	if got := len(q(t, "[type]")); got != 4 {
		t.Errorf("[type] = %d, want 4", got)
	}
	if got := len(q(t, "input[type=password]")); got != 1 {
		t.Errorf("input[type=password] = %d", got)
	}
	if got := len(q(t, `input[type="submit"]`)); got != 1 {
		t.Errorf(`quoted value = %d`, got)
	}
	if got := len(q(t, "[name=email]")); got != 1 {
		t.Errorf("[name=email] = %d", got)
	}
	if got := len(q(t, "label[for=em]")); got != 1 {
		t.Errorf("label[for=em] = %d", got)
	}
}

func TestDescendantCombinator(t *testing.T) {
	if got := len(q(t, "form input")); got != 2 {
		t.Errorf("form input = %d, want 2", got)
	}
	if got := len(q(t, "#footer input")); got != 1 {
		t.Errorf("#footer input = %d, want 1", got)
	}
	if got := len(q(t, "body form .row input")); got != 2 {
		t.Errorf("deep descendant = %d", got)
	}
}

func TestChildCombinator(t *testing.T) {
	// Inputs are children of .row, not of form.
	if got := len(q(t, "form > input")); got != 0 {
		t.Errorf("form > input = %d, want 0", got)
	}
	if got := len(q(t, "div.row > input")); got != 2 {
		t.Errorf("div.row > input = %d, want 2", got)
	}
	if got := len(q(t, "form > button")); got != 1 {
		t.Errorf("form > button = %d", got)
	}
	// Spaces around > are optional.
	if got := len(q(t, "form>button")); got != 1 {
		t.Errorf("form>button = %d", got)
	}
}

func TestSelectorGroups(t *testing.T) {
	ms := q(t, "button, input[type=submit], a.btn")
	if len(ms) != 3 {
		t.Errorf("group = %d, want 3", len(ms))
	}
	// Document order preserved, no duplicates.
	doc := Parse(selectorDoc)
	ms2, _ := Query(doc, "input, [name]")
	seen := map[*Node]bool{}
	for _, m := range ms2 {
		if seen[m] {
			t.Fatal("duplicate in group result")
		}
		seen[m] = true
	}
}

func TestQueryFirst(t *testing.T) {
	doc := Parse(selectorDoc)
	n, err := QueryFirst(doc, "input")
	if err != nil || n == nil || n.AttrOr("name", "") != "email" {
		t.Errorf("QueryFirst = %v, %v", n, err)
	}
	n, err = QueryFirst(doc, "video")
	if err != nil || n != nil {
		t.Errorf("no-match QueryFirst = %v, %v", n, err)
	}
}

func TestInvalidSelectors(t *testing.T) {
	doc := Parse(selectorDoc)
	for _, sel := range []string{"", " ", ">", "div >", "#", ".", "[", "[x", `[x="y`, "div,,a", "??"} {
		if _, err := Query(doc, sel); err == nil {
			t.Errorf("Query(%q) should fail", sel)
		}
	}
}

func TestMustQueryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustQuery should panic on bad selector")
		}
	}()
	MustQuery(Parse(selectorDoc), "[")
}

func TestMatchScopedToRoot(t *testing.T) {
	doc := Parse(selectorDoc)
	form := doc.ElementByID("login")
	// Querying within the form must not see the footer's input.
	ms, err := Query(form, "input")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Errorf("scoped input = %d, want 2", len(ms))
	}
}

func BenchmarkQuery(b *testing.B) {
	doc := Parse(selectorDoc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Query(doc, "form .row > input[type=password]"); err != nil {
			b.Fatal(err)
		}
	}
}
