// Package visualphish is the stand-in for VisualPhishNet (Abdelnabi et al.,
// CCS 2020), the visual-similarity model the paper uses in Section 5.1.1 to
// measure how many phishing pages actually clone the design of the brand
// they impersonate. A gallery of legitimate-site screenshots is embedded
// into a feature space (downsampled layout signature + colour histogram +
// perceptual hash bits); a query screenshot is matched to its nearest
// gallery brand. If the match differs from the ground-truth target brand —
// as with the paper's DHL page classified as "Alibaba" — the page is deemed
// *not* to clone the brand's design.
package visualphish

import (
	"math"
	"sort"

	"repro/internal/phash"
	"repro/internal/raster"
)

const thumbW, thumbH = 16, 16

// Embedding is the visual feature representation of a screenshot.
type Embedding struct {
	// Thumb is a 16x16 dominant-color thumbnail capturing layout.
	Thumb []raster.Color
	// Hist is the normalized color histogram.
	Hist [raster.NumColors]float64
	// PHash captures edge structure.
	PHash phash.Hash
}

// Embed computes the embedding of a screenshot.
func Embed(img *raster.Image) Embedding {
	e := Embedding{PHash: phash.Compute(img)}
	th := img.Downsample(thumbW, thumbH)
	e.Thumb = th.Pix
	hist := img.Histogram()
	total := 0
	for _, n := range hist {
		total += n
	}
	if total > 0 {
		for c, n := range hist {
			e.Hist[c] = float64(n) / float64(total)
		}
	}
	return e
}

// Distance returns a dissimilarity in [0, ~2] combining thumbnail layout
// agreement, histogram divergence, and perceptual-hash distance.
func Distance(a, b Embedding) float64 {
	// Thumbnail mismatch rate.
	mism := 0
	n := len(a.Thumb)
	if len(b.Thumb) < n {
		n = len(b.Thumb)
	}
	for i := 0; i < n; i++ {
		if a.Thumb[i] != b.Thumb[i] {
			mism++
		}
	}
	thumbD := 1.0
	if n > 0 {
		thumbD = float64(mism) / float64(n)
	}
	// Histogram L1/2 distance.
	histD := 0.0
	for c := range a.Hist {
		histD += math.Abs(a.Hist[c] - b.Hist[c])
	}
	histD /= 2
	// pHash distance normalized.
	hashD := float64(phash.Distance(a.PHash, b.PHash)) / float64(phash.Bits)
	return 0.5*thumbD + 0.3*histD + 0.2*hashD
}

// CropContent returns the sub-image bounded by the non-white content of
// img, normalizing away viewport margins before similarity comparison:
// screenshots taken at different viewport widths then compare by layout,
// not by how much white space surrounded the page.
func CropContent(img *raster.Image) *raster.Image {
	minX, minY, maxX, maxY := img.W, img.H, -1, -1
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			if img.At(x, y) != raster.White {
				if x < minX {
					minX = x
				}
				if y < minY {
					minY = y
				}
				if x > maxX {
					maxX = x
				}
				if y > maxY {
					maxY = y
				}
			}
		}
	}
	if maxX < 0 {
		return img.Clone()
	}
	return img.Sub(raster.R(minX, minY, maxX-minX+1, maxY-minY+1))
}

// EmbedCropped embeds the content-cropped image; use it when query and
// gallery screenshots come from different viewport geometries.
func EmbedCropped(img *raster.Image) Embedding {
	return Embed(CropContent(img))
}

// AddCropped inserts a gallery exemplar using the cropped embedding.
func (g *Gallery) AddCropped(brand string, screenshot *raster.Image) {
	g.entries = append(g.entries, entry{brand: brand, emb: EmbedCropped(screenshot)})
}

// MatchEmbedding matches a precomputed embedding against the gallery.
func (g *Gallery) MatchEmbedding(q Embedding) (string, float64) {
	best, bestD := "", math.Inf(1)
	for _, e := range g.entries {
		if d := Distance(q, e.emb); d < bestD {
			best, bestD = e.brand, d
		}
	}
	if bestD > g.MatchThreshold {
		return "", bestD
	}
	return best, bestD
}

// Gallery is the trained model: one or more exemplar embeddings per brand.
type Gallery struct {
	entries []entry
	// MatchThreshold is the maximum distance for a match to count at all;
	// queries farther than this from every exemplar return no match.
	MatchThreshold float64
}

type entry struct {
	brand string
	emb   Embedding
}

// NewGallery returns an empty gallery with the default match threshold.
func NewGallery() *Gallery {
	return &Gallery{MatchThreshold: 0.25}
}

// Add inserts a legitimate screenshot for a brand. Multiple screenshots per
// brand are allowed (profile pages, regional variants, ...).
func (g *Gallery) Add(brand string, screenshot *raster.Image) {
	g.entries = append(g.entries, entry{brand: brand, emb: Embed(screenshot)})
}

// Len returns the number of gallery exemplars.
func (g *Gallery) Len() int { return len(g.entries) }

// Brands returns the distinct brands in the gallery, sorted.
func (g *Gallery) Brands() []string {
	set := map[string]bool{}
	for _, e := range g.entries {
		set[e.brand] = true
	}
	out := make([]string, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Match returns the nearest gallery brand for the screenshot and the
// distance, or ("", dist) when nothing is within the threshold — meaning the
// page does not closely resemble any known legitimate design.
func (g *Gallery) Match(screenshot *raster.Image) (string, float64) {
	q := Embed(screenshot)
	best, bestD := "", math.Inf(1)
	for _, e := range g.entries {
		if d := Distance(q, e.emb); d < bestD {
			best, bestD = e.brand, d
		}
	}
	if bestD > g.MatchThreshold {
		return "", bestD
	}
	return best, bestD
}

// Clones reports whether the screenshot closely mimics the given target
// brand: the Section 5.1.1 decision. It is false when the nearest brand
// differs from the target or nothing matches at all.
func (g *Gallery) Clones(screenshot *raster.Image, targetBrand string) bool {
	match, _ := g.Match(screenshot)
	return match == targetBrand
}
