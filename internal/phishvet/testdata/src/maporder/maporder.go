// Package maporder exercises the maporder rule: map ranges whose bodies
// observe iteration order (output calls, channel sends, defer/go, unsorted
// accumulation) are flagged; order-insensitive bodies and the sanctioned
// collect-and-sort idiom pass.
package maporder

import (
	"fmt"
	"sort"
)

func flagged(m map[string]int, ch chan string) {
	for k := range m {
		fmt.Println(k) // want "Println called for effect in map-iteration order"
	}
	for k := range m {
		ch <- k // want "channel send in map-iteration order"
	}
	for k := range m {
		defer fmt.Println(k) // want "defer scheduled in map-iteration order"
	}
	for k := range m {
		go work(k) // want "goroutines launched in map-iteration order"
	}
	var out []string
	for k := range m {
		out = append(out, k) // want "out accumulates in map-iteration order"
	}
	_ = out
}

func ok(m map[string]int) []string {
	// The sanctioned emission idiom: collect keys, sort, then emit.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Order-insensitive accumulation passes: map writes, counters, delete.
	total := 0
	inverse := map[int]string{}
	for k, v := range m {
		total += v
		inverse[v] = k
		delete(m, k)
	}
	_ = total

	// Closures stored per element are not entered: storing is order-free.
	fns := map[string]func(){}
	for k := range m {
		k := k
		fns[k] = func() { fmt.Println(k) }
	}
	return keys
}

func work(string) {}
