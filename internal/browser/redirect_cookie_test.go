package browser

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// transportFunc adapts a function to http.RoundTripper for scripted servers.
type transportFunc func(*http.Request) (*http.Response, error)

func (f transportFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// recordedReq captures what the server actually observed on one request.
type recordedReq struct {
	method string
	path   string
	body   string
	cookie string
}

func respond(status int, hdr map[string]string, body string) *http.Response {
	rec := httptest.NewRecorder()
	for k, v := range hdr {
		rec.Header().Set(k, v)
	}
	rec.WriteHeader(status)
	rec.Body.WriteString(body)
	return rec.Result()
}

// record reads and stores the request as the server saw it.
func record(seen *[]recordedReq, req *http.Request) {
	var body string
	if req.Body != nil {
		raw, _ := io.ReadAll(req.Body)
		body = string(raw)
	}
	*seen = append(*seen, recordedReq{
		method: req.Method,
		path:   req.URL.Path,
		body:   body,
		cookie: req.Header.Get("Cookie"),
	})
}

func TestRedirect307PreservesMethodAndBody(t *testing.T) {
	for _, status := range []int{http.StatusTemporaryRedirect, http.StatusPermanentRedirect} {
		var seen []recordedReq
		b := New(Options{Transport: transportFunc(func(req *http.Request) (*http.Response, error) {
			record(&seen, req)
			if req.URL.Path == "/submit" {
				return respond(status, map[string]string{"Location": "/final"}, ""), nil
			}
			return respond(200, nil, "<html><body>landed</body></html>"), nil
		})})
		form := url.Values{"password": {"hunter2"}, "email": {"a@b.c"}}
		body, finalURL, st, err := b.fetch("POST", "http://kit.test/submit", form, "document")
		if err != nil {
			t.Fatalf("%d: fetch: %v", status, err)
		}
		if st != 200 || !strings.Contains(body, "landed") || !strings.HasSuffix(finalURL, "/final") {
			t.Fatalf("%d: landed at %q status %d", status, finalURL, st)
		}
		if len(seen) != 2 {
			t.Fatalf("%d: server saw %d requests, want 2", status, len(seen))
		}
		// The redirected hop must re-POST the identical credential body.
		if seen[1].method != "POST" {
			t.Errorf("%d: redirect hop method = %s, want POST", status, seen[1].method)
		}
		if seen[1].body != seen[0].body || !strings.Contains(seen[1].body, "password=hunter2") {
			t.Errorf("%d: redirect hop body = %q, want %q", status, seen[1].body, seen[0].body)
		}
		// And the net log must attribute the carried credentials to BOTH hops:
		// the redirect hop is still a credential-bearing request.
		if len(b.NetLog) != 2 {
			t.Fatalf("%d: netlog has %d entries, want 2", status, len(b.NetLog))
		}
		for i, e := range b.NetLog {
			if e.Method != "POST" {
				t.Errorf("%d: netlog[%d].Method = %s, want POST", status, i, e.Method)
			}
			if len(e.CarriedData) != 2 {
				t.Errorf("%d: netlog[%d].CarriedData = %v", status, i, e.CarriedData)
			}
		}
		if b.NetLog[1].Kind != "redirect" {
			t.Errorf("%d: netlog[1].Kind = %q", status, b.NetLog[1].Kind)
		}
	}
}

func TestRedirect3xxRewritesToGet(t *testing.T) {
	for _, status := range []int{http.StatusMovedPermanently, http.StatusFound, http.StatusSeeOther} {
		var seen []recordedReq
		b := New(Options{Transport: transportFunc(func(req *http.Request) (*http.Response, error) {
			record(&seen, req)
			if req.URL.Path == "/submit" {
				return respond(status, map[string]string{"Location": "/thanks"}, ""), nil
			}
			return respond(200, nil, "<html><body>ok</body></html>"), nil
		})})
		if _, _, _, err := b.fetch("POST", "http://kit.test/submit", url.Values{"u": {"x"}}, "document"); err != nil {
			t.Fatalf("%d: fetch: %v", status, err)
		}
		if len(seen) != 2 {
			t.Fatalf("%d: server saw %d requests, want 2", status, len(seen))
		}
		if seen[1].method != "GET" || seen[1].body != "" {
			t.Errorf("%d: redirect hop = %s body %q, want bodyless GET", status, seen[1].method, seen[1].body)
		}
		if b.NetLog[1].CarriedData != nil {
			t.Errorf("%d: GET hop still logs carried data %v", status, b.NetLog[1].CarriedData)
		}
	}
}

func TestRedirectEmptyLocation(t *testing.T) {
	// A 3xx with no Location header is a dead end, not a crash and not an
	// infinite loop: the fetch terminates with the redirect status itself.
	b := New(Options{Transport: transportFunc(func(req *http.Request) (*http.Response, error) {
		return respond(http.StatusFound, nil, ""), nil
	})})
	body, finalURL, status, err := b.fetch("GET", "http://kit.test/", nil, "document")
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if status != http.StatusFound || body != "" {
		t.Errorf("status = %d body = %q, want bare 302", status, body)
	}
	if finalURL != "http://kit.test/" {
		t.Errorf("finalURL = %q", finalURL)
	}
	if len(b.NetLog) != 1 {
		t.Errorf("netlog has %d entries, want 1", len(b.NetLog))
	}
}

// chainTransport serves /hop/N -> /hop/N+1 up to depth, then 200.
func chainTransport(depth int) http.RoundTripper {
	return transportFunc(func(req *http.Request) (*http.Response, error) {
		var n int
		fmt.Sscanf(req.URL.Path, "/hop/%d", &n)
		if n < depth {
			return respond(http.StatusFound, map[string]string{"Location": fmt.Sprintf("/hop/%d", n+1)}, ""), nil
		}
		return respond(200, nil, "<html><body>end</body></html>"), nil
	})
}

func TestRedirectHopLimit(t *testing.T) {
	// Nine redirects plus the final document fill exactly the 10-hop budget.
	b := New(Options{Transport: chainTransport(9)})
	body, finalURL, status, err := b.fetch("GET", "http://kit.test/hop/0", nil, "document")
	if err != nil {
		t.Fatalf("9-redirect chain: %v", err)
	}
	if status != 200 || !strings.Contains(body, "end") || !strings.HasSuffix(finalURL, "/hop/9") {
		t.Errorf("9-redirect chain landed at %q status %d", finalURL, status)
	}

	// One more redirect exceeds the budget.
	b = New(Options{Transport: chainTransport(10)})
	if _, _, _, err := b.fetch("GET", "http://kit.test/hop/0", nil, "document"); !errors.Is(err, ErrTooManyRedirects) {
		t.Errorf("10-redirect chain err = %v, want ErrTooManyRedirects", err)
	}
}

func TestCookieDeletionRoundTrips(t *testing.T) {
	cases := []struct {
		name   string
		delete string // Set-Cookie header value that should delete "sid"
	}{
		{"max-age-zero", "sid=; Max-Age=0"},
		{"past-expires", "sid=; Expires=Thu, 01 Jan 1970 00:00:00 GMT"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var seen []recordedReq
			b := New(Options{Transport: transportFunc(func(req *http.Request) (*http.Response, error) {
				record(&seen, req)
				switch req.URL.Path {
				case "/set":
					return respond(200, map[string]string{"Set-Cookie": "sid=abc123; Path=/"}, "<html></html>"), nil
				case "/del":
					return respond(200, map[string]string{"Set-Cookie": tc.delete}, "<html></html>"), nil
				}
				return respond(200, nil, "<html></html>"), nil
			})})
			fetch := func(path string) {
				t.Helper()
				if _, _, _, err := b.fetch("GET", "http://kit.test"+path, nil, "document"); err != nil {
					t.Fatal(err)
				}
			}
			fetch("/set")
			fetch("/check")
			if got := seen[1].cookie; got != "sid=abc123" {
				t.Fatalf("after /set, Cookie = %q, want sid=abc123", got)
			}
			fetch("/del")
			fetch("/check")
			if got := seen[3].cookie; got != "" {
				t.Errorf("after %s deletion, Cookie = %q, want none", tc.name, got)
			}
			if _, live := b.cookies["sid"]; live {
				t.Errorf("jar still holds sid after %s deletion", tc.name)
			}
		})
	}
}

func TestEpochExpired(t *testing.T) {
	cases := []struct {
		name string
		c    http.Cookie
		want bool
	}{
		{"live", http.Cookie{Name: "a", Value: "1"}, false},
		{"max-age-positive", http.Cookie{Name: "a", Value: "1", MaxAge: 60}, false},
		{"max-age-delete", http.Cookie{Name: "a", MaxAge: -1}, true},
		{"expires-epoch", http.Cookie{Name: "a", Expires: time.Unix(0, 0)}, true},
		{"expires-pre-epoch", http.Cookie{Name: "a", Expires: time.Unix(0, 0).Add(-time.Hour)}, true},
		{"expires-future", http.Cookie{Name: "a", Expires: time.Unix(0, 0).Add(time.Hour)}, false},
	}
	for _, tc := range cases {
		if got := epochExpired(&tc.c); got != tc.want {
			t.Errorf("%s: epochExpired = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCarriedDataLogsEveryMultiValue(t *testing.T) {
	// A keyed exfil beacon repeats its field per keystroke; the log must
	// carry every value, in sorted field order.
	b := New(Options{Transport: transportFunc(func(req *http.Request) (*http.Response, error) {
		return respond(200, nil, "ok"), nil
	})})
	form := url.Values{"d": {"h", "hu", "hun"}, "a": {"first"}}
	if _, _, _, err := b.fetch("POST", "http://kit.test/k", form, "beacon"); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "h", "hu", "hun"}
	got := b.NetLog[0].CarriedData
	if len(got) != len(want) {
		t.Fatalf("CarriedData = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CarriedData = %v, want %v", got, want)
		}
	}
}
