// Package sessionio mimics the production atomic writer: the atomicwrite
// rule exempts internal/sessionio, where temp+fsync+rename lives, so the
// direct write below produces no finding.
package sessionio

import "os"

// WriteRaw stands in for the production atomic writer.
func WriteRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
