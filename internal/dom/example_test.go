package dom_test

import (
	"fmt"

	"repro/internal/dom"
)

func ExampleParse() {
	doc := dom.Parse(`<html><body>
		<form><label>Email</label><input name="email" type="email"></form>
	</body></html>`)
	for _, in := range doc.ElementsByTag("input") {
		fmt.Println(in.AttrOr("name", ""), in.AttrOr("type", ""))
	}
	// Output: email email
}

func ExampleQuery() {
	doc := dom.Parse(`<body>
		<form id="f"><input type="password"><button class="btn">Go</button></form>
		<a class="btn" href="/next">Next</a>
	</body>`)
	buttons, _ := dom.Query(doc, `#f button, a.btn`)
	for _, b := range buttons {
		fmt.Println(b.Tag, b.InnerText())
	}
	// Output:
	// button Go
	// a Next
}

func ExampleStructureHash() {
	before := dom.Parse(`<div><input><button>Next</button></div>`)
	after := dom.Parse(`<div><input><input><button>Pay</button></div>`)
	// Text changes don't alter the hash; structural changes do.
	fmt.Println(dom.StructureHash(before) == dom.StructureHash(after))
	// Output: false
}

func ExampleNode_InnerText() {
	doc := dom.Parse(`<p>Please <b>verify</b> your account<script>evil()</script></p>`)
	fmt.Println(doc.InnerText())
	// Output: Please verify your account
}
