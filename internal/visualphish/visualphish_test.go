package visualphish

import (
	"testing"

	"repro/internal/brands"
	"repro/internal/raster"
)

func gallery(t testing.TB) *Gallery {
	g := NewGallery()
	for _, b := range brands.All() {
		g.Add(b.Name, b.LegitScreenshot())
	}
	return g
}

func TestGalleryMatchesOwnExemplars(t *testing.T) {
	g := gallery(t)
	for _, b := range brands.Top10() {
		match, d := g.Match(b.LegitScreenshot())
		if match != b.Name {
			t.Errorf("legit %s matched %q (d=%.3f)", b.Name, match, d)
		}
		if d > 0.01 {
			t.Errorf("self-distance for %s = %.3f", b.Name, d)
		}
	}
}

func TestCloneDetected(t *testing.T) {
	g := gallery(t)
	chase, _ := brands.ByName("Chase Personal Banking")
	// A cloning phish: start from the legit design, tweak a detail.
	clone := chase.LegitScreenshot()
	clone.DrawString("V2", 440, 340, raster.Gray)
	if !g.Clones(clone, chase.Name) {
		match, d := g.Match(clone)
		t.Errorf("near-identical page not recognized as clone (matched %q, d=%.3f)", match, d)
	}
}

func TestNonCloneImpersonation(t *testing.T) {
	g := gallery(t)
	// A DHL-brand phish that uses a completely generic design — the
	// Figure 1 case. It impersonates DHL (logo colors) but shares no layout
	// with dhl.com.
	generic := raster.New(480, 360, raster.White)
	generic.Fill(raster.R(180, 20, 120, 30), raster.Yellow) // small logo-ish block
	generic.DrawString("DOWNLOAD SHIPMENT DOCUMENT", 100, 80, raster.Black)
	generic.Outline(raster.R(140, 140, 200, 18), raster.Gray)
	generic.Outline(raster.R(140, 180, 200, 18), raster.Gray)
	generic.Fill(raster.R(140, 260, 200, 60), raster.Red)
	if g.Clones(generic, "DHL Airways, Inc.") {
		t.Error("generic design incorrectly judged a clone of DHL")
	}
}

func TestEmbeddingDistanceProperties(t *testing.T) {
	a := Embed(raster.New(100, 100, raster.White))
	b := Embed(raster.New(100, 100, raster.Navy))
	if Distance(a, a) != 0 {
		t.Error("self distance nonzero")
	}
	if Distance(a, b) != Distance(b, a) {
		t.Error("distance asymmetric")
	}
	if Distance(a, b) <= 0 {
		t.Error("distinct images at zero distance")
	}
}

func TestMatchThresholdRejectsAlienDesign(t *testing.T) {
	g := gallery(t)
	// A page unlike any gallery design: dense random-ish pattern.
	alien := raster.New(480, 360, raster.White)
	for y := 0; y < 360; y += 3 {
		for x := (y / 3 % 2) * 3; x < 480; x += 6 {
			alien.Fill(raster.R(x, y, 3, 3), raster.Color(1+(x+y)%15))
		}
	}
	match, d := g.Match(alien)
	if match != "" {
		t.Errorf("alien design matched %q at d=%.3f", match, d)
	}
}

func TestBrandsListing(t *testing.T) {
	g := gallery(t)
	bs := g.Brands()
	if len(bs) != brands.Count() {
		t.Errorf("gallery brands = %d, want %d", len(bs), brands.Count())
	}
	for i := 1; i < len(bs); i++ {
		if bs[i-1] >= bs[i] {
			t.Error("brands not sorted")
		}
	}
	if g.Len() != brands.Count() {
		t.Errorf("gallery size = %d", g.Len())
	}
}

func TestEmptyGallery(t *testing.T) {
	g := NewGallery()
	match, _ := g.Match(raster.New(100, 100, raster.White))
	if match != "" {
		t.Error("empty gallery should match nothing")
	}
}

func BenchmarkMatch(b *testing.B) {
	g := gallery(b)
	query, _ := brands.ByName("Netflix")
	img := query.LegitScreenshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Match(img)
	}
}

func TestCropContent(t *testing.T) {
	img := raster.New(200, 100, raster.White)
	img.Fill(raster.R(50, 20, 60, 30), raster.Navy)
	crop := CropContent(img)
	if crop.W != 60 || crop.H != 30 {
		t.Errorf("crop = %dx%d, want 60x30", crop.W, crop.H)
	}
	// All-white image crops to itself.
	blank := raster.New(10, 10, raster.White)
	if c := CropContent(blank); c.W != 10 || c.H != 10 {
		t.Errorf("blank crop = %dx%d", c.W, c.H)
	}
}

func TestEmbedCroppedNormalizesMargins(t *testing.T) {
	design := func(offsetX, canvasW int) *raster.Image {
		img := raster.New(canvasW, 200, raster.White)
		img.Fill(raster.R(offsetX, 10, 300, 40), raster.Navy)
		img.Outline(raster.R(offsetX+20, 80, 200, 18), raster.Gray)
		img.Fill(raster.R(offsetX+20, 120, 80, 20), raster.Red)
		return img
	}
	// Same design with and without a wide white margin.
	a := EmbedCropped(design(0, 320))
	b := EmbedCropped(design(0, 800))
	if d := Distance(a, b); d > 0.1 {
		t.Errorf("margin changed cropped embedding by %.3f", d)
	}
	// Without cropping the margin dominates.
	c := Embed(design(0, 320))
	e := Embed(design(0, 800))
	if d := Distance(c, e); d < 0.1 {
		t.Errorf("uncropped embeddings unexpectedly close: %.3f", d)
	}
}

func TestAddCroppedAndMatchEmbedding(t *testing.T) {
	g := NewGallery()
	chase, _ := brands.ByName("Chase Personal Banking")
	g.AddCropped(chase.Name, chase.LegitScreenshot())
	q := EmbedCropped(chase.LegitScreenshot())
	match, d := g.MatchEmbedding(q)
	if match != chase.Name || d > 0.01 {
		t.Errorf("MatchEmbedding = %q (%.3f)", match, d)
	}
	// A far-away embedding misses.
	far := EmbedCropped(raster.New(100, 100, raster.Olive))
	if m, _ := g.MatchEmbedding(far); m != "" {
		t.Errorf("far embedding matched %q", m)
	}
}
