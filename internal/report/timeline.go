package report

import (
	"fmt"
	"strings"

	"repro/internal/crawler"
	"repro/internal/trace"
)

// PickTimelineSession chooses the exemplar session whose trace the report
// renders: the session with the most visited pages — the richest span tree
// — breaking ties by feed order. Deterministic for a fixed seed, so the
// rendered timeline is byte-stable across report runs. Returns nil when no
// session carries a trace.
func PickTimelineSession(logs []*crawler.SessionLog) *crawler.SessionLog {
	var best *crawler.SessionLog
	for _, lg := range logs {
		if lg == nil || len(lg.Trace) == 0 {
			continue
		}
		if best == nil || len(lg.Pages) > len(best.Pages) {
			best = lg
		}
	}
	return best
}

// SessionTimeline renders one session's span tree (session → page →
// stage) as an indented timeline with proportional duration bars.
func SessionTimeline(lg *crawler.SessionLog) string {
	if lg == nil {
		return "(no session with a recorded trace)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — outcome %s, %d pages, %d attempt(s)\n\n",
		lg.SeedURL, lg.Outcome, len(lg.Pages), lg.Attempts)
	b.WriteString(trace.Timeline(lg.Trace))
	return b.String()
}
