// Package triage is the pre-session work-avoidance funnel of ROADMAP item
// 1: real phishing feeds are ~90% clones of a few hundred kits, so crawling
// every URL with a full interactive browser session wastes most of the
// fleet's budget re-measuring pages it has already seen. The funnel has two
// stages, both deterministic:
//
//  1. A URL-lexical scorer (per *Know Your Phish*: length, host entropy,
//     digit/hyphen density, subdomain depth, brand-in-host, suspicious
//     tokens) ranks feed entries before any browser session is spawned;
//     -triage-topk optionally cuts the tail of the ranking outright.
//  2. A campaign near-duplicate index (per *PhishSnap*): every eligible URL
//     is probed once (one fetch, no interaction budget) and fingerprinted
//     by DOM hash + pHash + the visualphish embedding; fingerprints land in
//     a banded LSH index, and a URL matching an already-indexed campaign
//     takes a fast-path "attributed to campaign X" session instead of a
//     full crawl.
//
// The whole plan — scores, cuts, probes, campaign assignments — is computed
// up front as a pure function of (feed, config): every process derives the
// same feed locally (the property the fleet already leans on), probes each
// URL exactly once, and clusters sequentially in feed order. A live index
// updated as sessions complete would depend on completion order and break
// the 1-vs-30-worker byte-determinism pin; the plan-ahead form cannot.
package triage

import (
	"math"
	"net/url"
	"strings"
)

// Features are the URL-lexical signals, each normalized to [0, 1]. They are
// exported so tests and reports can show per-feature attributions.
type Features struct {
	Length      float64 // overall URL length
	HostEntropy float64 // Shannon entropy of the hostname characters
	DigitRatio  float64 // digits in the hostname
	Hyphens     float64 // hyphen density in the hostname
	Subdomains  float64 // subdomain depth beyond the registrable domain
	PathDepth   float64 // path segment count
	BrandInHost float64 // a known brand token inside a non-brand hostname
	Tokens      float64 // credential-phishing vocabulary in the URL
	IPHost      float64 // raw-IP hostname
}

// Feature weights; they sum to 1 so Score stays in [0, 1].
const (
	wLength      = 0.10
	wHostEntropy = 0.15
	wDigitRatio  = 0.10
	wHyphens     = 0.10
	wSubdomains  = 0.10
	wPathDepth   = 0.05
	wBrandInHost = 0.20
	wTokens      = 0.15
	wIPHost      = 0.05
)

// suspiciousTokens is the credential-phishing vocabulary of *Know Your
// Phish*-style lexical classifiers: terms that appear in phishing URLs far
// more often than in benign ones.
var suspiciousTokens = []string{
	"login", "log-in", "signin", "sign-in", "verify", "secure", "account",
	"update", "confirm", "webscr", "banking", "wallet", "password",
	"support", "recover", "unlock", "auth",
}

// Score folds the features into one phishiness score in [0, 1]. Pure
// float arithmetic over the weights above — no randomness, no clock — so
// every process ranks a feed identically.
func (f Features) Score() float64 {
	s := wLength*f.Length + wHostEntropy*f.HostEntropy + wDigitRatio*f.DigitRatio +
		wHyphens*f.Hyphens + wSubdomains*f.Subdomains + wPathDepth*f.PathDepth +
		wBrandInHost*f.BrandInHost + wTokens*f.Tokens + wIPHost*f.IPHost
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Extract computes the lexical features of one URL. brandTokens is the
// lowercase brand vocabulary (e.g. "paypal", "chase"); a token occurring
// inside the hostname is the classic deceptive-domain signal.
func Extract(rawURL string, brandTokens []string) Features {
	var f Features
	f.Length = clamp01(float64(len(rawURL)) / 80)
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		// An unparseable feed entry scores on length alone; the crawl will
		// classify it properly.
		return f
	}
	host := strings.ToLower(u.Hostname())
	f.HostEntropy = clamp01(shannonEntropy(host) / 4.5)
	digits, hyphens := 0, 0
	for _, r := range host {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '-':
			hyphens++
		}
	}
	if len(host) > 0 {
		f.DigitRatio = clamp01(3 * float64(digits) / float64(len(host)))
		f.Hyphens = clamp01(float64(hyphens) / 3)
	}
	if dots := strings.Count(host, "."); dots > 1 {
		f.Subdomains = clamp01(float64(dots-1) / 3)
	}
	if segs := pathSegments(u.Path); segs > 0 {
		f.PathDepth = clamp01(float64(segs) / 4)
	}
	if isIPHost(host) {
		f.IPHost = 1
	}
	for _, tok := range brandTokens {
		// The brand name inside a hostname that is not the brand's own
		// domain label: "login.paypal-3-1.test" carries "paypal" as bait.
		if tok != "" && strings.Contains(host, tok) {
			f.BrandInHost = 1
			break
		}
	}
	full := strings.ToLower(rawURL)
	hits := 0
	for _, tok := range suspiciousTokens {
		if strings.Contains(full, tok) {
			hits++
		}
	}
	f.Tokens = clamp01(float64(hits) / 2)
	return f
}

// ScoreURL is the one-call form: extract features, fold to a score.
func ScoreURL(rawURL string, brandTokens []string) float64 {
	return Extract(rawURL, brandTokens).Score()
}

// Rank orders feed indices by descending lexical score, ties broken by
// ascending feed index so the ranking is total and reproducible. Returns
// the scores (indexed by feed position) and the ranked index order.
func Rank(urls []string, brandTokens []string) (scores []float64, order []int) {
	scores = make([]float64, len(urls))
	order = make([]int, len(urls))
	for i, u := range urls {
		scores[i] = ScoreURL(u, brandTokens)
		order[i] = i
	}
	// Insertion-grade stability is not enough here: the comparator itself is
	// total (score desc, index asc), so any sort yields one answer.
	sortRank(order, scores)
	return scores, order
}

// sortRank sorts order by (score descending, index ascending).
func sortRank(order []int, scores []float64) {
	// A simple binary-insertion sort keeps this dependency-free; feed sizes
	// here are crawl feeds (thousands), and this runs once per plan.
	for i := 1; i < len(order); i++ {
		x := order[i]
		lo, hi := 0, i
		for lo < hi {
			mid := (lo + hi) / 2
			y := order[mid]
			if scores[y] > scores[x] || (scores[y] == scores[x] && y < x) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		copy(order[lo+1:i+1], order[lo:i])
		order[lo] = x
	}
}

func shannonEntropy(s string) float64 {
	if s == "" {
		return 0
	}
	var counts [256]int
	n := 0
	for i := 0; i < len(s); i++ {
		counts[s[i]]++
		n++
	}
	e := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		e -= p * math.Log2(p)
	}
	return e
}

func pathSegments(p string) int {
	n := 0
	for _, seg := range strings.Split(p, "/") {
		if seg != "" {
			n++
		}
	}
	return n
}

func isIPHost(host string) bool {
	if host == "" {
		return false
	}
	for _, r := range host {
		if (r < '0' || r > '9') && r != '.' {
			return false
		}
	}
	return strings.Count(host, ".") == 3
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
