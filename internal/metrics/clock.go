package metrics

import "time"

// This file is the project's only sanctioned wall-clock entry point
// outside _test.go files. Crawl *output* must be a pure function of the
// feed seed, so seeded code never reads the clock; operational code that
// legitimately needs wall time — throughput accounting, report headers —
// routes through here, where phishvet's wallclock rule can see exactly
// what depends on it.

// Now returns the current wall-clock time.
func Now() time.Time { return time.Now() }

// Stopwatch measures elapsed wall-clock time for operational accounting
// (farm throughput, stage totals). It never feeds session output.
type Stopwatch struct{ start time.Time }

// NewStopwatch starts a stopwatch.
func NewStopwatch() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the wall-clock time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }
