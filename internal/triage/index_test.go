package triage

import (
	"testing"

	"repro/internal/phash"
	"repro/internal/raster"
	"repro/internal/visualphish"
)

// mkFP builds a healthy fingerprint with a uniform thumbnail so embedding
// distance between two mkFP results is 0 when their colors match.
func mkFP(content string, h phash.Hash, thumb raster.Color) *Fingerprint {
	emb := visualphish.Embedding{Thumb: make([]raster.Color, 256), PHash: h}
	for i := range emb.Thumb {
		emb.Thumb[i] = thumb
	}
	emb.Hist[thumb] = 1
	return &Fingerprint{ContentHash: content, PHash: h, Emb: emb, OK: true}
}

// flipBit returns h with bit n (0..255) inverted.
func flipBit(h phash.Hash, n int) phash.Hash {
	h[n/64] ^= 1 << uint(n%64)
	return h
}

func TestBandKey(t *testing.T) {
	var h phash.Hash
	h[0] = 0x0123456789ABCDEF
	h[1] = 0xFEDCBA9876543210
	tests := []struct {
		band int
		want uint16
	}{
		{0, 0xCDEF}, {1, 0x89AB}, {2, 0x4567}, {3, 0x0123},
		{4, 0x3210}, {7, 0xFEDC},
	}
	for _, tc := range tests {
		if got := bandKey(h, tc.band); got != tc.want {
			t.Errorf("bandKey(band %d) = %04x, want %04x", tc.band, got, tc.want)
		}
	}
}

func TestLookupExactContent(t *testing.T) {
	ix := NewIndex()
	id := ix.Add(mkFP("content-a", phash.Hash{1, 2, 3, 4}, raster.Blue))
	// Same content hash, arbitrarily different pHash: the exact-clone path
	// wins before any band lookup.
	q := mkFP("content-a", phash.Hash{0xFFFF, 0, 0, 0}, raster.Red)
	got, sim, ok := ix.Lookup(q)
	if !ok || got != id || sim != 1 {
		t.Fatalf("Lookup(same content) = (%d, %g, %v), want (%d, 1, true)", got, sim, ok, id)
	}
}

// TestLookupBandBoundaryFlips pins the LSH recall property at the band
// edges: flipping one bit — including the first and last bit of a 16-bit
// band — changes at most one band key, so the other 15 bands still collide
// and Lookup finds the campaign with near-1 similarity.
func TestLookupBandBoundaryFlips(t *testing.T) {
	base := phash.Hash{0x0123456789ABCDEF, 0xFEDCBA9876543210, 0xAAAA5555AAAA5555, 0x00FF00FF00FF00FF}
	ix := NewIndex()
	id := ix.Add(mkFP("", base, raster.Blue))
	for _, bit := range []int{0, 15, 16, 31, 63, 64, 79, 127, 128, 191, 192, 240, 255} {
		q := mkFP("", flipBit(base, bit), raster.Blue)
		got, sim, ok := ix.Lookup(q)
		if !ok || got != id {
			t.Errorf("bit %d flip: Lookup = (%d, %g, %v), want campaign %d found", bit, got, sim, ok, id)
			continue
		}
		// One bit of 256: the pHash term costs 0.5 * 1/16, the embedding's
		// own pHash component a sliver more.
		if sim < 0.95 {
			t.Errorf("bit %d flip: similarity %g, want >= 0.95", bit, sim)
		}
	}
}

func TestLookupTieBreaksTowardEarliestCampaign(t *testing.T) {
	h := phash.Hash{7, 7, 7, 7}
	ix := NewIndex()
	first := ix.Add(mkFP("content-1", h, raster.Green))
	ix.Add(mkFP("content-2", h, raster.Green))
	// The query matches both reps identically (different content hash, same
	// visuals).
	q := mkFP("content-3", h, raster.Green)
	got, sim, ok := ix.Lookup(q)
	if !ok || got != first {
		t.Fatalf("Lookup tie = (%d, %g, %v), want earliest campaign %d", got, sim, ok, first)
	}
	if sim != 1 {
		t.Fatalf("identical visuals similarity = %g, want 1", sim)
	}
}

func TestLookupMissesWhenNoBandCollides(t *testing.T) {
	ix := NewIndex()
	ix.Add(mkFP("", phash.Hash{0, 0, 0, 0}, raster.Blue))
	// All-ones differs from all-zeros in every bit of every band.
	q := mkFP("", phash.Hash{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}, raster.Red)
	if _, _, ok := ix.Lookup(q); ok {
		t.Fatal("Lookup found a campaign despite zero band collisions")
	}
}

func TestSimilarityScale(t *testing.T) {
	a := mkFP("", phash.Hash{1, 2, 3, 4}, raster.Blue)
	if s := Similarity(a, a); s != 1 {
		t.Errorf("Similarity(a, a) = %g, want 1", s)
	}
	// Distance >= 32 bits saturates the pHash term.
	far := mkFP("", phash.Hash{^uint64(1), ^uint64(2), ^uint64(3), ^uint64(4)}, raster.Red)
	if s := Similarity(a, far); s >= DefaultCampaignThreshold {
		t.Errorf("Similarity(a, far) = %g, want < threshold %g", s, DefaultCampaignThreshold)
	}
	// Empty content hashes must not match the exact-clone path.
	b := mkFP("", phash.Hash{1, 2, 3, 4}, raster.Blue)
	a2 := *a
	a2.PHash = flipBit(a.PHash, 5)
	a2.Emb.PHash = a2.PHash
	if s := Similarity(&a2, b); s >= 1 {
		t.Errorf("Similarity with empty content hashes = %g, want < 1 (no exact-clone match)", s)
	}
}
