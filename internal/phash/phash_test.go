package phash

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/raster"
)

func pageA() *raster.Image {
	img := raster.New(400, 300, raster.White)
	img.Fill(raster.R(0, 0, 400, 40), raster.Navy)
	img.DrawString("ACME BANK LOGIN", 20, 60, raster.Black)
	img.Outline(raster.R(20, 100, 200, 16), raster.Gray)
	img.Outline(raster.R(20, 140, 200, 16), raster.Gray)
	img.Fill(raster.R(20, 180, 80, 16), raster.LightGray)
	return img
}

func pageB() *raster.Image {
	img := raster.New(400, 300, raster.White)
	img.Fill(raster.R(0, 250, 400, 50), raster.Red)
	img.DrawString("STREAMING SERVICE", 120, 20, raster.Black)
	img.Fill(raster.R(150, 100, 100, 100), raster.Yellow)
	return img
}

func TestIdenticalImagesZeroDistance(t *testing.T) {
	a, b := pageA(), pageA()
	if d := Distance(Compute(a), Compute(b)); d != 0 {
		t.Errorf("identical pages distance = %d", d)
	}
}

func TestDifferentLayoutsFarApart(t *testing.T) {
	d := Distance(Compute(pageA()), Compute(pageB()))
	if d <= DefaultSimilarityThreshold {
		t.Errorf("different layouts distance = %d, want > %d", d, DefaultSimilarityThreshold)
	}
}

func TestSmallPerturbationStaysClose(t *testing.T) {
	a := pageA()
	b := pageA()
	// Small text change, same layout — the campaign-clustering case where
	// the same kit is deployed under a different domain.
	b.DrawString("X7", 350, 280, raster.Gray)
	if d := Distance(Compute(a), Compute(b)); d > DefaultSimilarityThreshold {
		t.Errorf("small perturbation distance = %d, want <= %d", d, DefaultSimilarityThreshold)
	}
}

func TestScaleInvariance(t *testing.T) {
	// The same design rendered at a different size should hash nearby.
	small := pageA()
	big := raster.New(800, 600, raster.White)
	big.Fill(raster.R(0, 0, 800, 80), raster.Navy)
	big.DrawString("ACME BANK LOGIN", 40, 120, raster.Black)
	big.Outline(raster.R(40, 200, 400, 32), raster.Gray)
	big.Outline(raster.R(40, 280, 400, 32), raster.Gray)
	big.Fill(raster.R(40, 360, 160, 32), raster.LightGray)
	d := Distance(Compute(small), Compute(big))
	if d > 60 {
		t.Errorf("scaled design distance = %d, want reasonably small", d)
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(a, b, c [4]uint64) bool {
		ha, hb, hc := Hash(a), Hash(b), Hash(c)
		// Identity, symmetry, triangle inequality, bounds.
		if Distance(ha, ha) != 0 {
			return false
		}
		if Distance(ha, hb) != Distance(hb, ha) {
			return false
		}
		if Distance(ha, hc) > Distance(ha, hb)+Distance(hb, hc) {
			return false
		}
		d := Distance(ha, hb)
		return d >= 0 && d <= Bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEmptyImage(t *testing.T) {
	empty := raster.New(0, 0, raster.White)
	if Compute(empty) != (Hash{}) {
		t.Error("empty image should hash to zero")
	}
	tiny := raster.New(1, 1, raster.Black)
	_ = Compute(tiny) // must not panic
}

func TestClusterGroupsCampaigns(t *testing.T) {
	// 3 copies of design A, 2 of design B, 1 unique -> 3 clusters.
	var hashes []Hash
	for i := 0; i < 3; i++ {
		img := pageA()
		img.DrawString("V", 380+0, 290, raster.Gray) // trivial variation
		hashes = append(hashes, Compute(img))
	}
	for i := 0; i < 2; i++ {
		hashes = append(hashes, Compute(pageB()))
	}
	unique := raster.New(400, 300, raster.Olive)
	hashes = append(hashes, Compute(unique))

	assign := Cluster(hashes, DefaultSimilarityThreshold)
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Errorf("design A copies split: %v", assign)
	}
	if assign[3] != assign[4] {
		t.Errorf("design B copies split: %v", assign)
	}
	if assign[0] == assign[3] || assign[0] == assign[5] || assign[3] == assign[5] {
		t.Errorf("distinct designs merged: %v", assign)
	}
}

func TestClusterEmpty(t *testing.T) {
	if got := Cluster(nil, 10); len(got) != 0 {
		t.Errorf("Cluster(nil) = %v", got)
	}
}

func TestNearCount(t *testing.T) {
	base := Compute(pageA())
	exemplars := []Hash{base, base, Compute(pageB())}
	if n := NearCount(base, exemplars, DefaultSimilarityThreshold); n != 2 {
		t.Errorf("NearCount = %d, want 2", n)
	}
	if n := NearCount(Compute(pageB()), exemplars, DefaultSimilarityThreshold); n != 1 {
		t.Errorf("NearCount = %d, want 1", n)
	}
}

func TestHashStringHex(t *testing.T) {
	h := Hash{1, 2, 3, 4}
	s := h.String()
	if len(s) != 64 {
		t.Errorf("hex length = %d, want 64", len(s))
	}
}

func TestNoiseRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := pageA()
	noisy := pageA()
	for i := 0; i < 30; i++ {
		noisy.Set(rng.Intn(400), rng.Intn(300), raster.Gray)
	}
	if d := Distance(Compute(base), Compute(noisy)); d > 15 {
		t.Errorf("30 noisy pixels moved hash by %d", d)
	}
}

func BenchmarkCompute(b *testing.B) {
	img := pageA()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compute(img)
	}
}

func BenchmarkCluster1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	hashes := make([]Hash, 1000)
	for i := range hashes {
		// ~50 base designs with small perturbations.
		base := Hash{uint64(i % 50), uint64(i % 50 * 7), 0, 0}
		base[2] = uint64(rng.Intn(4))
		hashes[i] = base
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(hashes, 20)
	}
}
