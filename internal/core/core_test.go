package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/crawler"
)

func TestNewPipelineDefaults(t *testing.T) {
	p, err := core.NewPipeline(core.Options{NumSites: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Corpus.Sites) != 40 {
		t.Fatalf("corpus = %d sites", len(p.Corpus.Sites))
	}
	if p.FieldClassifier == nil || p.Detector == nil || p.TermClassifier == nil || p.Gallery == nil {
		t.Fatal("models not trained")
	}
	if len(p.CaptchaExemplars) == 0 {
		t.Fatal("no captcha exemplars")
	}
	if p.Registry.SiteCount() != 40 {
		t.Fatalf("registry sites = %d", p.Registry.SiteCount())
	}
}

func TestCrawlSample(t *testing.T) {
	p, err := core.NewPipeline(core.Options{NumSites: 40, Seed: 9, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	p.CrawlSample(10)
	if len(p.Logs) != 10 {
		t.Fatalf("sampled logs = %d", len(p.Logs))
	}
	for _, l := range p.Logs {
		if l.Outcome == crawler.OutcomeError {
			t.Errorf("session errored: %s", l.SeedURL)
		}
		if l.SiteID == "" {
			t.Error("metadata not attached")
		}
	}
	if p.Stats.Sites != 10 {
		t.Errorf("stats sites = %d", p.Stats.Sites)
	}
	opts := p.CaptchaAnalysisOptions()
	if len(opts.Exemplars) == 0 {
		t.Error("captcha analysis options empty")
	}
}

func TestPipelineDeterministicCorpus(t *testing.T) {
	a, err := core.NewPipeline(core.Options{NumSites: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewPipeline(core.Options{NumSites: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Corpus.Sites {
		if a.Corpus.Sites[i].Host != b.Corpus.Sites[i].Host {
			t.Fatal("same seed produced different corpora")
		}
	}
}

// TestPipelineDeterministicModels pins down that the concurrent training
// steps in NewPipeline stay bit-identical run to run: each step owns an
// independent seeded RNG stream, so scheduling must not leak into any
// model's bytes.
func TestPipelineDeterministicModels(t *testing.T) {
	a, err := core.NewPipeline(core.Options{NumSites: 20, Seed: 5, DetectorTrainPages: 80})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewPipeline(core.Options{NumSites: 20, Seed: 5, DetectorTrainPages: 80})
	if err != nil {
		t.Fatal(err)
	}
	da, err := a.Detector.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Detector.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Error("same seed produced different detectors")
	}
	fa, err := a.FieldClassifier.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.FieldClassifier.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(fa) != string(fb) {
		t.Error("same seed produced different field classifiers")
	}
	if len(a.CaptchaExemplars) == 0 || len(a.CaptchaExemplars) != len(b.CaptchaExemplars) {
		t.Fatalf("exemplar counts differ: %d vs %d", len(a.CaptchaExemplars), len(b.CaptchaExemplars))
	}
	for i := range a.CaptchaExemplars {
		if a.CaptchaExemplars[i] != b.CaptchaExemplars[i] {
			t.Fatal("same seed produced different captcha exemplars")
		}
	}
}
