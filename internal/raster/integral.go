package raster

import "sync"

// Integral is a summed-area table (integral image) over a rectangular
// region of an Image, turning the per-window statistics the vision layer
// queries repeatedly — non-background coverage, ink coverage, and light
// coverage — into O(1) lookups per window.
//
// An Integral can cover the whole image (NewIntegral) or just one window
// of it (NewIntegralRegion). The detector builds one Integral per proposal
// region and shares it across proposal tightening (binary-searched on
// NonWhiteCount), the grid/border scores (one query per row, column, or
// strip), and the checkbox search (one query per candidate square instead
// of a quadratic pixel scan). Screenshots are mostly background, so region
// tables touch far fewer pixels than a whole-page table would.
//
// Only the three statistics that are queried many times per window get
// prefix-sum lanes; one-shot whole-window statistics (the color histogram
// and the transition counts) are served by Stats, a single streaming pass
// over the region's pixels, which is cheaper than maintaining a lane per
// palette color.
//
// Storage is a single (W+1) x (H+1) x 3 prefix-sum grid, interleaved by
// lane so the build is one streaming pass. Tables are recycled through a
// sync.Pool: call Release when done with an Integral to make its buffer
// available for reuse and keep steady-state detection allocation-free.
type Integral struct {
	// Region is the pixel rectangle the table covers (clipped to the
	// image). Queries are clipped to it.
	Region Rect

	im   *Image
	data []int32
}

// Lane positions inside the interleaved prefix-sum grid.
const (
	laneNonWhite = 0
	laneInk      = 1
	laneLight    = 2
	intLanes     = 3
)

var integralPool = sync.Pool{New: func() any { return new(Integral) }}

// NewIntegral builds the summed-area table for the whole image.
func NewIntegral(im *Image) *Integral {
	return NewIntegralRegion(im, R(0, 0, im.W, im.H))
}

// NewIntegralRegion builds a summed-area table covering only r (clipped to
// the image), in one O(r.Area()) pass. The table comes from a pool; pass it
// to Release when done to recycle its buffer.
func NewIntegralRegion(im *Image, r Rect) *Integral {
	r = r.Clip(im.W, im.H)
	in := integralPool.Get().(*Integral)
	in.Region = r
	in.im = im
	stride := (r.W + 1) * intLanes
	n := stride * (r.H + 1)
	if cap(in.data) < n {
		in.data = make([]int32, n)
	} else {
		// The build pass writes every interior cell but relies on the top
		// row and left column staying zero; clear just those on reuse.
		in.data = in.data[:n]
		for i := 0; i < stride; i++ {
			in.data[i] = 0
		}
		for y := 1; y <= r.H; y++ {
			base := y * stride
			in.data[base] = 0
			in.data[base+1] = 0
			in.data[base+2] = 0
		}
	}
	if r.Empty() {
		return in
	}
	d := in.data
	for iy := 1; iy <= r.H; iy++ {
		y := r.Y + iy - 1
		row := im.Pix[y*im.W+r.X : y*im.W+r.X+r.W]
		var nw, ink, light int32
		rowBase := iy * stride
		prevBase := rowBase - stride
		for x, px := range row {
			if px < NumColors {
				iv := intensity[px]
				if px != White {
					nw++
				}
				if iv < 128 {
					ink++
				}
				if iv >= 200 {
					light++
				}
			} else {
				light++ // out-of-palette reads as blank (intensity 255)
			}
			o := rowBase + (x+1)*intLanes
			p := prevBase + (x+1)*intLanes
			d[o] = d[p] + nw
			d[o+1] = d[p+1] + ink
			d[o+2] = d[p+2] + light
		}
	}
	return in
}

// Release returns the table's buffer to the pool. The Integral must not be
// used afterwards. Calling Release is optional — an unreleased table is
// simply collected by the GC.
func (in *Integral) Release() {
	in.im = nil
	integralPool.Put(in)
}

// sumLane evaluates one lane over r, which must already be clipped to the
// covered region.
func (in *Integral) sumLane(lane int, r Rect) int {
	s := (in.Region.W + 1) * intLanes
	x0, y0 := r.X-in.Region.X, r.Y-in.Region.Y
	x1, y1 := x0+r.W, y0+r.H
	d := in.data
	return int(d[y1*s+x1*intLanes+lane] - d[y0*s+x1*intLanes+lane] -
		d[y1*s+x0*intLanes+lane] + d[y0*s+x0*intLanes+lane])
}

// NonWhiteCount returns the number of non-background pixels inside r.
func (in *Integral) NonWhiteCount(r Rect) int {
	r = r.Intersect(in.Region)
	if r.Empty() {
		return 0
	}
	return in.sumLane(laneNonWhite, r)
}

// InkCount returns the number of dark pixels (Intensity < 128) inside r —
// the OCR "ink" rule.
func (in *Integral) InkCount(r Rect) int {
	r = r.Intersect(in.Region)
	if r.Empty() {
		return 0
	}
	return in.sumLane(laneInk, r)
}

// LightCount returns the number of light pixels (Intensity >= 200) inside
// r, the white background included.
func (in *Integral) LightCount(r Rect) int {
	r = r.Intersect(in.Region)
	if r.Empty() {
		return 0
	}
	return in.sumLane(laneLight, r)
}

// Stats scans r directly (one O(r.Area()) pass over the source image) and
// returns its per-color histogram and the counts of horizontally and
// vertically adjacent pixel pairs inside r whose colors differ. These are
// whole-window statistics computed once per feature vector, so a streaming
// scan beats carrying a prefix-sum lane per palette color.
func (in *Integral) Stats(r Rect) (hist [NumColors]int, hTrans, vTrans int) {
	r = r.Intersect(in.Region)
	if r.Empty() {
		return
	}
	im := in.im
	for y := r.Y; y < r.Y+r.H; y++ {
		row := im.Pix[y*im.W+r.X : y*im.W+r.X+r.W]
		var prevRow []Color
		if y > r.Y {
			prevRow = im.Pix[(y-1)*im.W+r.X : (y-1)*im.W+r.X+r.W]
		}
		for x, px := range row {
			if px < NumColors {
				hist[px]++
			}
			if x > 0 && px != row[x-1] {
				hTrans++
			}
			if prevRow != nil && px != prevRow[x] {
				vTrans++
			}
		}
	}
	return
}
