package dom

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleDocument(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><html><head><title>Login</title></head>
		<body><form id="f"><input type="text" name="user"><input type="password" name="pass">
		<button type="submit">Sign in</button></form></body></html>`)
	if doc.Type != DocumentNode {
		t.Fatalf("root type = %v, want document", doc.Type)
	}
	if got := Title(doc); got != "Login" {
		t.Errorf("Title = %q, want Login", got)
	}
	inputs := doc.ElementsByTag("input")
	if len(inputs) != 2 {
		t.Fatalf("len(inputs) = %d, want 2", len(inputs))
	}
	if v, _ := inputs[1].Attr("type"); v != "password" {
		t.Errorf("second input type = %q, want password", v)
	}
	form := doc.ElementByID("f")
	if form == nil || form.Tag != "form" {
		t.Fatalf("ElementByID(f) = %v, want form", form)
	}
	if btn := doc.FindFirst(func(n *Node) bool { return n.Tag == "button" }); btn == nil || btn.InnerText() != "Sign in" {
		t.Errorf("button text wrong: %v", btn)
	}
}

func TestParseMalformed(t *testing.T) {
	cases := []string{
		"<div><span>unclosed",
		"</div>stray end tag",
		"<p>first<p>second<p>third",
		"<input><input><input>",
		"<div class=unquoted attr>x</div>",
		"< notatag",
		"<div",
		"",
		"<!-- unterminated comment",
		"<b><i>cross</b>ing</i>",
	}
	for _, src := range cases {
		doc := Parse(src) // must not panic
		if doc == nil {
			t.Fatalf("Parse(%q) returned nil", src)
		}
	}
}

func TestImpliedEndTags(t *testing.T) {
	doc := Parse("<ul><li>a<li>b<li>c</ul>")
	lis := doc.ElementsByTag("li")
	if len(lis) != 3 {
		t.Fatalf("len(li) = %d, want 3", len(lis))
	}
	for _, li := range lis {
		if li.Parent.Tag != "ul" {
			t.Errorf("li parent = %q, want ul", li.Parent.Tag)
		}
	}
}

func TestVoidElements(t *testing.T) {
	doc := Parse("<div><img src=x><br><input name=q>text</div>")
	div := doc.ElementsByTag("div")[0]
	// text must be a child of div, not of input.
	if got := div.OwnText(); got != "text" {
		t.Errorf("div own text = %q, want text", got)
	}
	img := doc.ElementsByTag("img")[0]
	if img.FirstChild != nil {
		t.Error("img should have no children")
	}
}

func TestRawTextScript(t *testing.T) {
	doc := Parse(`<script>if (a < b) { document.write("<div>not a tag</div>"); }</script><div id=real></div>`)
	divs := doc.ElementsByTag("div")
	if len(divs) != 1 {
		t.Fatalf("len(div) = %d, want 1 (script content must stay raw)", len(divs))
	}
	if divs[0].ID() != "real" {
		t.Errorf("div id = %q, want real", divs[0].ID())
	}
	script := doc.ElementsByTag("script")[0]
	if !strings.Contains(script.OwnText(), "a < b") {
		t.Errorf("script text lost: %q", script.OwnText())
	}
}

func TestAttributes(t *testing.T) {
	doc := Parse(`<input ID="Email" Type="TEXT" placeholder="Enter your email" data-x='single' checked>`)
	in := doc.ElementsByTag("input")[0]
	if v, ok := in.Attr("id"); !ok || v != "Email" {
		t.Errorf("id = %q, %v", v, ok)
	}
	if v := in.AttrOr("placeholder", ""); v != "Enter your email" {
		t.Errorf("placeholder = %q", v)
	}
	if v := in.AttrOr("data-x", ""); v != "single" {
		t.Errorf("data-x = %q", v)
	}
	if _, ok := in.Attr("checked"); !ok {
		t.Error("boolean attribute checked missing")
	}
	in.SetAttr("value", "abc")
	if v := in.AttrOr("value", ""); v != "abc" {
		t.Errorf("SetAttr value = %q", v)
	}
	in.SetAttr("value", "def")
	if v := in.AttrOr("value", ""); v != "def" {
		t.Errorf("SetAttr overwrite = %q", v)
	}
	in.RemoveAttr("value")
	if _, ok := in.Attr("value"); ok {
		t.Error("RemoveAttr failed")
	}
}

func TestEntities(t *testing.T) {
	doc := Parse(`<p>Fish &amp; Chips &lt;now&gt; &quot;cheap&quot; &nbsp;here</p>`)
	got := doc.InnerText()
	want := `Fish & Chips <now> "cheap" here`
	if got != want {
		t.Errorf("InnerText = %q, want %q", got, want)
	}
}

func TestTreeMutation(t *testing.T) {
	parent := NewElement("div")
	a := NewElement("span", "id", "a")
	b := NewElement("span", "id", "b")
	c := NewElement("span", "id", "c")
	parent.AppendChild(a)
	parent.AppendChild(c)
	parent.InsertBefore(b, c)
	var ids []string
	for _, ch := range parent.Children() {
		ids = append(ids, ch.ID())
	}
	if strings.Join(ids, "") != "abc" {
		t.Fatalf("order = %v, want a b c", ids)
	}
	b.Detach()
	if len(parent.Children()) != 2 {
		t.Fatalf("after detach: %d children", len(parent.Children()))
	}
	if b.Parent != nil || b.NextSibling != nil || b.PrevSibling != nil {
		t.Error("detached node retains links")
	}
	parent.RemoveChildren()
	if parent.FirstChild != nil || parent.LastChild != nil {
		t.Error("RemoveChildren left children")
	}
}

func TestAppendChildReparents(t *testing.T) {
	p1 := NewElement("div")
	p2 := NewElement("div")
	c := NewElement("span")
	p1.AppendChild(c)
	p2.AppendChild(c)
	if len(p1.Children()) != 0 {
		t.Error("child not removed from old parent")
	}
	if c.Parent != p2 {
		t.Error("child not attached to new parent")
	}
}

func TestClone(t *testing.T) {
	doc := Parse(`<div id="a"><span>hi</span><input name="x"></div>`)
	div := doc.ElementsByTag("div")[0]
	cp := div.Clone()
	if cp.Parent != nil {
		t.Error("clone should be detached")
	}
	if Render(cp) != Render(div) {
		t.Errorf("clone renders differently:\n%s\n%s", Render(cp), Render(div))
	}
	// Mutating the clone must not affect the original.
	cp.FirstChild.Detach()
	if len(div.Children()) != 2 {
		t.Error("mutating clone affected original")
	}
}

func TestClosestAndAncestors(t *testing.T) {
	doc := Parse(`<form id="f"><div><label><input id="i"></label></div></form>`)
	in := doc.ElementByID("i")
	if f := in.Closest("form"); f == nil || f.ID() != "f" {
		t.Errorf("Closest(form) = %v", f)
	}
	if l := in.Closest("label"); l == nil {
		t.Error("Closest(label) = nil")
	}
	if x := in.Closest("table"); x != nil {
		t.Errorf("Closest(table) = %v, want nil", x)
	}
	anc := in.Ancestors()
	if len(anc) < 4 { // label, div, form, (body synthesized? no), document
		t.Errorf("len(ancestors) = %d, want >= 4", len(anc))
	}
}

func TestInnerTextSkipsScriptStyle(t *testing.T) {
	doc := Parse(`<div>visible<script>var hidden = 1;</script><style>.x{}</style>more</div>`)
	got := doc.InnerText()
	if strings.Contains(got, "hidden") || strings.Contains(got, ".x") {
		t.Errorf("InnerText leaked script/style: %q", got)
	}
	if !strings.Contains(got, "visible") || !strings.Contains(got, "more") {
		t.Errorf("InnerText dropped content: %q", got)
	}
}

func TestStructureHashStability(t *testing.T) {
	a := Parse(`<div><input><span>x</span><button>go</button></div>`)
	b := Parse(`<div><input><span>y</span><button>stop</button></div>`)
	if StructureHash(a) != StructureHash(b) {
		t.Error("text changes should not change the structure hash")
	}
	c := Parse(`<div><input><input><span>x</span><button>go</button></div>`)
	if StructureHash(a) == StructureHash(c) {
		t.Error("adding an input must change the structure hash")
	}
}

func TestStructureHashIgnoresNonShapeTags(t *testing.T) {
	a := Parse(`<div><input></div>`)
	b := Parse(`<div><p><em><input></em></p></div>`)
	if StructureHash(a) != StructureHash(b) {
		t.Errorf("p/em should not contribute: %q vs %q", StructureString(a), StructureString(b))
	}
}

func TestStructureString(t *testing.T) {
	doc := Parse(`<form><div><label>Email</label><input><button>Go</button></div></form>`)
	got := StructureString(doc)
	want := "form|div|label|input|button|"
	if got != want {
		t.Errorf("StructureString = %q, want %q", got, want)
	}
	if ShapeTagCount(doc) != 5 {
		t.Errorf("ShapeTagCount = %d, want 5", ShapeTagCount(doc))
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := `<div id="a" class="b c"><span>hello</span><input type="text" name="q"><br></div>`
	doc := Parse(src)
	out := Render(doc)
	doc2 := Parse(out)
	if StructureString(doc) != StructureString(doc2) {
		t.Errorf("round trip changed structure: %q vs %q", StructureString(doc), StructureString(doc2))
	}
	if doc.InnerText() != doc2.InnerText() {
		t.Errorf("round trip changed text: %q vs %q", doc.InnerText(), doc2.InnerText())
	}
}

// Property: parsing never panics and always yields a document whose rendered
// output reparses to the same structure hash (parse∘render is a fixpoint).
func TestParseRenderFixpointProperty(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		once := Render(doc)
		doc2 := Parse(once)
		twice := Render(doc2)
		return StructureHash(doc) == StructureHash(doc2) && once == twice
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Escape output never contains raw <, >, or " and unescapes back.
func TestEscapeProperty(t *testing.T) {
	f := func(s string) bool {
		e := Escape(s)
		if strings.ContainsAny(e, "<>") {
			return false
		}
		return unescape(e) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: every node found by Find satisfies the predicate and appears in
// document order (verified by walking with a counter).
func TestFindOrderProperty(t *testing.T) {
	doc := Parse(`<div><span>a</span><div><span>b</span></div><span>c</span></div>`)
	order := map[*Node]int{}
	i := 0
	doc.Walk(func(n *Node) bool { order[n] = i; i++; return true })
	spans := doc.ElementsByTag("span")
	for j := 1; j < len(spans); j++ {
		if order[spans[j-1]] >= order[spans[j]] {
			t.Fatal("Find results out of document order")
		}
	}
}

func TestHasClass(t *testing.T) {
	n := NewElement("a", "class", "btn btn-primary large")
	for _, c := range []string{"btn", "btn-primary", "large"} {
		if !n.HasClass(c) {
			t.Errorf("HasClass(%q) = false", c)
		}
	}
	if n.HasClass("btn-") || n.HasClass("primary") {
		t.Error("HasClass matched a substring")
	}
}

func TestPath(t *testing.T) {
	doc := Parse(`<html><body><div><input id="x"></div></body></html>`)
	in := doc.ElementByID("x")
	if got := in.Path(); got != "#document/html/body/div/input" {
		t.Errorf("Path = %q", got)
	}
}

func TestCount(t *testing.T) {
	doc := Parse(`<div><span>a</span></div>`)
	// document, div, span, text = 4
	if got := doc.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
}

func TestTokenizerComment(t *testing.T) {
	z := NewTokenizer(`<!-- hello --><div>`)
	tok := z.Next()
	if tok.Type != CommentToken || strings.TrimSpace(tok.Data) != "hello" {
		t.Errorf("comment token = %+v", tok)
	}
	tok = z.Next()
	if tok.Type != StartTagToken || tok.Tag != "div" {
		t.Errorf("tag token = %+v", tok)
	}
}

func TestTokenizerDoctype(t *testing.T) {
	z := NewTokenizer(`<!DOCTYPE html><p>`)
	tok := z.Next()
	if tok.Type != DoctypeToken {
		t.Errorf("doctype token = %+v", tok)
	}
}

func TestTokenizerSelfClosing(t *testing.T) {
	z := NewTokenizer(`<br/><img src="x" />`)
	tok := z.Next()
	if tok.Type != SelfClosingTagToken || tok.Tag != "br" {
		t.Errorf("br = %+v", tok)
	}
	tok = z.Next()
	if tok.Type != SelfClosingTagToken || tok.Tag != "img" {
		t.Errorf("img = %+v", tok)
	}
	if v := tok.Attrs[0].Value; v != "x" {
		t.Errorf("img src = %q", v)
	}
}

func BenchmarkParse(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString(`<div class="row"><label>Field</label><input type="text" name="f"><span>hint</span></div>`)
	}
	src := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parse(src)
	}
}

func BenchmarkStructureHash(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		sb.WriteString(`<div><input><span>x</span></div>`)
	}
	doc := Parse(sb.String())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StructureHash(doc)
	}
}
