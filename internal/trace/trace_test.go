package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	s := NewSession()
	root := s.Begin(KindSession, "http://x.test/")
	pg := s.Begin(KindPage, "page-0")
	st := s.Begin(KindStage, "render")
	s.Advance(10)
	if d := s.End(st); d != 11*time.Millisecond {
		t.Errorf("stage duration = %v, want 11ms (10 work + 1 closing tick)", d)
	}
	s.End(pg)
	s.End(root)

	spans := s.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].Parent != -1 || spans[1].Parent != 0 || spans[2].Parent != 1 {
		t.Errorf("parent links wrong: %+v", spans)
	}
	if spans[0].Kind != KindSession || spans[1].Kind != KindPage || spans[2].Kind != KindStage {
		t.Errorf("kinds wrong: %+v", spans)
	}
	for i, sp := range spans {
		if sp.End <= sp.Start {
			t.Errorf("span %d has non-positive extent: %+v", i, sp)
		}
	}
	// Children are contained in their parents on the logical timeline.
	if spans[2].Start < spans[1].Start || spans[2].End > spans[1].End ||
		spans[1].Start < spans[0].Start || spans[1].End > spans[0].End {
		t.Errorf("child spans escape their parents: %+v", spans)
	}
}

// TestDeterministicBytes: the same sequence of operations produces
// byte-identical JSON — the property the journal's kill/resume guarantee
// extends to traces.
func TestDeterministicBytes(t *testing.T) {
	build := func() []byte {
		s := NewSession()
		clock := s.Clock()
		root := s.Begin(KindSession, "u")
		clock() // a browser log event interleaves
		pg := s.Begin(KindPage, "p0")
		st := s.Begin(KindStage, "render")
		s.Advance(42)
		s.End(st)
		clock()
		s.End(pg)
		s.End(root)
		j, err := json.Marshal(s.Spans())
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Fatalf("traces diverge:\n%s\n%s", a, b)
	}
}

// TestClockShared: the clock handed to the browser and the span
// boundaries advance one shared timeline.
func TestClockShared(t *testing.T) {
	s := NewSession()
	clock := s.Clock()
	t0 := clock()
	if want := time.Unix(0, int64(time.Millisecond)).UTC(); !t0.Equal(want) {
		t.Fatalf("first tick = %v, want %v", t0, want)
	}
	id := s.Begin(KindStage, "x")
	if s.spans[id].Start != 2*time.Millisecond {
		t.Fatalf("span start = %v, want 2ms (after one clock tick)", s.spans[id].Start)
	}
	t1 := clock()
	if !t1.After(t0) {
		t.Fatal("clock did not advance past span begin")
	}
}

// TestSpansClosesOpenSpans: an aborted session (error mid-page) still
// exports a well-formed trace.
func TestSpansClosesOpenSpans(t *testing.T) {
	s := NewSession()
	s.Begin(KindSession, "u")
	s.Begin(KindPage, "p0")
	spans := s.Spans()
	for i, sp := range spans {
		if sp.End <= sp.Start {
			t.Errorf("span %d left open: %+v", i, sp)
		}
	}
}

func TestNilSessionIsNoOp(t *testing.T) {
	var s *Session
	if s.Clock() != nil {
		t.Error("nil session Clock() should be nil")
	}
	id := s.Begin(KindPage, "p")
	if id != -1 {
		t.Errorf("nil Begin = %d, want -1", id)
	}
	s.Advance(10)
	if d := s.End(id); d != 0 {
		t.Errorf("nil End = %v", d)
	}
	if s.Spans() != nil {
		t.Error("nil Spans() should be nil")
	}
	// A live session must also ignore the -1 a nil collector handed out.
	live := NewSession()
	live.End(-1)
	live.End(99)
}

// TestZeroAllocHotPath: once the slab has grown, Begin/Advance/End
// allocate nothing.
func TestZeroAllocHotPath(t *testing.T) {
	s := NewSession()
	allocs := testing.AllocsPerRun(100, func() {
		id := s.Begin(KindStage, "render")
		s.Advance(3)
		s.End(id)
	})
	// The slab doubles a handful of times across 100+ iterations; amortized
	// per-span cost must stay below a tenth of an allocation.
	if allocs > 0.1 {
		t.Errorf("hot path allocates %.2f allocs/span, want ~0", allocs)
	}
}

func TestTimeline(t *testing.T) {
	s := NewSession()
	root := s.Begin(KindSession, "http://a.test/")
	pg := s.Begin(KindPage, "http://a.test/")
	st := s.Begin(KindStage, "render")
	s.Advance(20)
	s.End(st)
	s.End(pg)
	s.End(root)
	out := Timeline(s.Spans())
	for _, want := range []string{"session http://a.test/", "  page", "    stage render", "█"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if got := Timeline(nil); !strings.Contains(got, "no trace") {
		t.Errorf("empty timeline = %q", got)
	}
}
