package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageTimingsObserve(t *testing.T) {
	var st StageTimings
	st.Observe(StageRender, 10*time.Millisecond)
	st.Observe(StageRender, 20*time.Millisecond)
	st.Observe(StageDetect, 5*time.Millisecond)

	snap := st.Snapshot()
	if len(snap) != int(numStages) {
		t.Fatalf("snapshot has %d stages, want %d", len(snap), numStages)
	}
	byName := map[string]StageStat{}
	for _, s := range snap {
		byName[s.Stage] = s
	}
	r := byName["render"]
	if r.Count != 2 || r.Total != 30*time.Millisecond || r.Mean() != 15*time.Millisecond {
		t.Errorf("render = %+v", r)
	}
	if d := byName["detect"]; d.Count != 1 || d.Total != 5*time.Millisecond {
		t.Errorf("detect = %+v", d)
	}
	// Unobserved stages are present with zero counts (and zero Mean).
	if o := byName["ocr"]; o.Count != 0 || o.Total != 0 || o.Mean() != 0 {
		t.Errorf("ocr = %+v", o)
	}
}

func TestStageTimingsNilSafe(t *testing.T) {
	var st *StageTimings
	if !st.Start().IsZero() {
		t.Error("nil collector Start is not zero")
	}
	st.Observe(StageOCR, time.Second)                     // must not panic
	st.ObserveSince(StageOCR, time.Now())                 // must not panic
	(&StageTimings{}).ObserveSince(StageOCR, time.Time{}) // zero start is a no-op
	if st.Snapshot() != nil {
		t.Error("nil collector snapshot not nil")
	}
}

func TestStageTimingsConcurrent(t *testing.T) {
	var st StageTimings
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				st.Observe(StageSubmit, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	for _, s := range st.Snapshot() {
		if s.Stage != "submit" {
			continue
		}
		if s.Count != workers*per || s.Total != workers*per*time.Microsecond {
			t.Errorf("submit = %+v", s)
		}
	}
}

func TestStageTableAndNames(t *testing.T) {
	var st StageTimings
	st.Observe(StageSubmit, 2*time.Millisecond)
	out := StageTable(st.Snapshot())
	for _, name := range []string{"render", "ocr", "detect", "submit"} {
		if !strings.Contains(out, name) {
			t.Errorf("table missing stage %q:\n%s", name, out)
		}
	}
	if StageRender.String() != "render" || Stage(99).String() != "stage(99)" {
		t.Error("stage names wrong")
	}
}
