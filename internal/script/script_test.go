package script

import (
	"strings"
	"testing"

	"repro/internal/dom"
)

func TestMarshalExtractRoundTrip(t *testing.T) {
	b := Behavior{
		Listeners: []Listener{
			{Target: "input", Event: "keydown", Action: ActionStore},
			{Target: "input", Event: "keydown", Action: ActionSendData, Endpoint: "/steal"},
		},
		Swaps: []Swap{{TriggerID: "next", HTML: "<div>step 2</div>"}},
		ClickZones: []ClickZone{
			{X: 10, Y: 20, W: 80, H: 18, Action: "submit", FormID: "f1"},
		},
	}
	tag, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tag, BehaviorType) {
		t.Errorf("marshalled tag missing type: %s", tag)
	}
	doc := dom.Parse("<html><body>" + tag + "<input></body></html>")
	got, err := Extract(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Listeners) != 2 || got.Listeners[1].Endpoint != "/steal" {
		t.Errorf("listeners = %+v", got.Listeners)
	}
	if len(got.Swaps) != 1 || got.Swaps[0].TriggerID != "next" {
		t.Errorf("swaps = %+v", got.Swaps)
	}
	if len(got.ClickZones) != 1 || got.ClickZones[0].W != 80 {
		t.Errorf("clickzones = %+v", got.ClickZones)
	}
}

func TestExtractNoBehavior(t *testing.T) {
	doc := dom.Parse(`<html><body><script src="app.js"></script></body></html>`)
	b, err := Extract(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Empty() {
		t.Errorf("expected empty behavior, got %+v", b)
	}
}

func TestExtractMalformed(t *testing.T) {
	doc := dom.Parse(`<script type="application/x-behavior">{not json</script>`)
	if _, err := Extract(doc); err == nil {
		t.Error("malformed behavior should error")
	}
}

func TestKeyloggerTier(t *testing.T) {
	cases := []struct {
		b    Behavior
		want int
	}{
		{Behavior{}, 0},
		{Behavior{Listeners: []Listener{{Target: "input", Event: "keydown", Action: ActionStore}}}, 1},
		{Behavior{Listeners: []Listener{{Target: "input", Event: "keydown", Action: ActionSend}}}, 2},
		{Behavior{Listeners: []Listener{{Target: "input", Event: "keydown", Action: ActionSendData}}}, 3},
		// Strongest wins.
		{Behavior{Listeners: []Listener{
			{Target: "input", Event: "keydown", Action: ActionStore},
			{Target: "input", Event: "keydown", Action: ActionSendData},
		}}, 3},
		// Non-keydown listeners don't count.
		{Behavior{Listeners: []Listener{{Target: "button", Event: "click", Action: ActionSendData}}}, 0},
	}
	for i, c := range cases {
		if got := c.b.KeyloggerTier(); got != c.want {
			t.Errorf("case %d: tier = %d, want %d", i, got, c.want)
		}
	}
}

func TestSwapFor(t *testing.T) {
	b := Behavior{Swaps: []Swap{{TriggerID: "go", HTML: "<p>x</p>"}}}
	if _, ok := b.SwapFor("go"); !ok {
		t.Error("SwapFor(go) not found")
	}
	if _, ok := b.SwapFor("other"); ok {
		t.Error("SwapFor(other) should miss")
	}
}

func TestZoneAt(t *testing.T) {
	b := Behavior{ClickZones: []ClickZone{{X: 10, Y: 10, W: 20, H: 10, Action: "submit"}}}
	if _, ok := b.ZoneAt(15, 15); !ok {
		t.Error("point inside zone not found")
	}
	if _, ok := b.ZoneAt(9, 15); ok {
		t.Error("point outside zone matched")
	}
	if _, ok := b.ZoneAt(30, 15); ok {
		t.Error("right edge should be exclusive")
	}
}

func TestExternalScripts(t *testing.T) {
	doc := dom.Parse(`<html><head>
		<script src="https://www.google.com/recaptcha/api.js"></script>
		<script>inline();</script>
		<script src="/local.js"></script>
	</head><body></body></html>`)
	got := ExternalScripts(doc)
	if len(got) != 2 {
		t.Fatalf("got %d scripts: %v", len(got), got)
	}
	if !strings.Contains(got[0], "recaptcha") {
		t.Errorf("scripts = %v", got)
	}
}
