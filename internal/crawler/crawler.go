// Package crawler implements the paper's primary contribution: the
// intelligent phishing crawler of Section 4. Given a phishing URL, it loads
// the page in a fresh browser profile, identifies and classifies every
// input field (DOM analysis with an OCR fallback), forges syntactically
// valid data with the faker, submits it through a ladder of strategies
// (Enter key, DOM submit button, programmatic form submission, and visual
// button detection), detects page transitions via URL or lightweight DOM
// hash, and walks the entire multi-stage phishing UX until no more progress
// can be made — collecting the logs the analysis layer (Section 5) runs on.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"time"

	"repro/internal/browser"
	"repro/internal/dom"
	"repro/internal/faker"
	"repro/internal/fieldspec"
	"repro/internal/metrics"
	"repro/internal/ocr"
	"repro/internal/phash"
	"repro/internal/raster"
	"repro/internal/script"
	"repro/internal/textclass"
	"repro/internal/trace"
	"repro/internal/vision"
	"repro/internal/visualphish"
)

// ConfidenceThreshold is the reject threshold of the field classifier
// (Section 4.2): predictions below it are labelled unknown.
const ConfidenceThreshold = 0.8

// MaxDataAttempts is how many times freshly forged data is submitted to one
// page before the session aborts (Section 4.3: "up to three times").
const MaxDataAttempts = 3

// DefaultMaxPages bounds the number of page transitions per session,
// standing in for the paper's 20-minute wall-clock timeout.
const DefaultMaxPages = 10

// DefaultSessionBudget is the per-session wall-clock budget: the paper's
// 20-minute session timeout scaled to the synthetic corpus's timescale
// (sessions complete in milliseconds, so 20s is proportionally generous).
const DefaultSessionBudget = 20 * time.Second

// Submit strategy names, in ladder order (Section 4.3).
const (
	SubmitEnter       = "enter"
	SubmitButton      = "button"
	SubmitFormAction  = "form-action"
	SubmitVisual      = "visual"
	SubmitClickThru   = "click-through"
	SubmitVisualClick = "visual-click-through"
)

// Session outcomes.
const (
	OutcomeCompleted = "completed" // reached a page with nothing left to do
	OutcomeStuck     = "stuck"     // data never accepted / no interactable element
	OutcomePageLimit = "page-limit"
	OutcomeError     = "error" // unclassified navigation failure

	// Failure taxonomy (the operational outcomes a real crawl of reported
	// phishing URLs produces; injected by internal/chaos in synthetic runs).
	OutcomeDead        = "dead"         // connection refused: the site is gone
	OutcomeTimeout     = "timeout"      // fetch deadline or session budget exhausted
	OutcomeServerError = "server-error" // the landing page answered with a 5xx
	OutcomeTruncated   = "truncated"    // response body cut off mid-transfer
	OutcomeTakedown    = "takedown"     // a hosting-provider suspension page
	OutcomeBenign      = "benign"       // a parked/benign page: nothing phishing-like to measure

	// Triage fast-path outcomes (internal/triage): sessions that never
	// spawned a browser because the pre-session funnel resolved them.
	OutcomeAttributed = "attributed"  // near-duplicate of an indexed campaign
	OutcomeTriagedOut = "triaged-out" // cut by the lexical top-K stage
)

// Retryable reports whether outcome names a transient failure worth
// re-queueing: the farm's retry queue consults it before backing off.
// Takedown pages and healthy outcomes are final.
func Retryable(outcome string) bool {
	switch outcome {
	case OutcomeDead, OutcomeTimeout, OutcomeServerError, OutcomeTruncated, OutcomeError:
		return true
	case OutcomeCompleted, OutcomeStuck, OutcomePageLimit, OutcomeTakedown,
		OutcomeBenign, OutcomeAttributed, OutcomeTriagedOut:
		// OutcomeBenign is final at the farm level: re-running the identical
		// honest profile would measure the identical benign page. The
		// adaptive uncloaking loop inside Crawl is what retries it, with a
		// mutated profile.
		return false
	}
	// Outcomes minted outside this package (the farm's gave-up/lost/panic
	// run-level outcomes) are final by definition.
	return false
}

// ClassifyError maps a navigation error onto the failure taxonomy.
func ClassifyError(err error) string {
	var ne net.Error
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return OutcomeTimeout
	case errors.As(err, &ne) && ne.Timeout():
		return OutcomeTimeout
	case errors.Is(err, syscall.ECONNREFUSED):
		return OutcomeDead
	case errors.Is(err, io.ErrUnexpectedEOF):
		return OutcomeTruncated
	default:
		return OutcomeError
	}
}

// takedownPhrases mark hosting-provider suspension pages. They are matched
// against the lower-cased page title and text; generated phishing pages
// never contain them.
var takedownPhrases = []string{
	"has been suspended", "account suspended", "has been taken down",
	"domain has been seized", "this domain is parked",
}

// IsTakedownText reports whether a page's title and body text read as a
// hosting-provider takedown notice. Exported for the triage probe, which
// must classify a suspension page without building a PageLog (a shared
// suspension page must never found a triage "campaign").
func IsTakedownText(title, text string) bool {
	joined := strings.ToLower(title + " " + text)
	for _, phrase := range takedownPhrases {
		if strings.Contains(joined, phrase) {
			return true
		}
	}
	return false
}

// isTakedownPage reports whether the observed page is a takedown notice.
func isTakedownPage(pl *PageLog) bool {
	return IsTakedownText(pl.Title, pl.Text)
}

// FieldLog records one identified, classified, and filled input field.
type FieldLog struct {
	Description string
	HTMLType    string
	Label       fieldspec.Type
	Confidence  float64
	UsedOCR     bool
	Value       string
	// Box is the field's rendering bounding box, used by the CAPTCHA
	// verification heuristic (a text CAPTCHA needs an input beside it).
	Box raster.Rect
}

// PageLog records everything collected about one visited page.
type PageLog struct {
	Index        int
	URL          string
	Host         string
	Status       int
	Title        string
	Text         string
	DOMHash      string
	PHash        phash.Hash
	Fields       []FieldLog
	UsedOCR      bool
	SubmitMethod string
	DataAttempts int
	Listeners    []script.Listener
	ScriptSrcs   []string
	Detections   []vision.Detection
	// DetectionHashes holds the perceptual hash of each detection's crop
	// (parallel to Detections), enabling the visual-CAPTCHA exemplar
	// verification of Section 5.3.2 without retaining screenshots.
	DetectionHashes []phash.Hash
}

// HasInputs reports whether the page presented any fillable fields.
func (p *PageLog) HasInputs() bool { return len(p.Fields) > 0 }

// FieldTypes returns the classified types of the page's fields.
func (p *PageLog) FieldTypes() []fieldspec.Type {
	out := make([]fieldspec.Type, len(p.Fields))
	for i, f := range p.Fields {
		out[i] = f.Label
	}
	return out
}

// SessionLog is the full record of one crawl session.
type SessionLog struct {
	SiteID     string
	SeedURL    string
	Brand      string
	Category   string
	CampaignID string
	Pages      []PageLog
	NetLog     []browser.NetRequest
	Outcome    string
	// Error carries the failure detail behind an error-class Outcome: the
	// raw navigation error for classified failures, and the preserved
	// taxonomy class once the farm marks a session gave-up.
	Error string
	// Attempts is how many times the farm ran this session (1 = first
	// try); set by the farm's retry queue.
	Attempts int
	// FeedIndex is this session's position in the crawl feed, recorded by
	// the farm. Journaled and exported logs are re-assembled in feed order
	// by this index, and a resumed crawl derives the same per-session
	// seeds from it that the uninterrupted run would have used.
	FeedIndex int
	// Trace is the session's span tree (session → page → stage) on the
	// session-logical clock: what the crawler actually did, in order, with
	// work-proportional durations. Being logical, it is a pure function of
	// the session's content — byte-stable across runs, worker counts, and
	// journal resume — and it is the single source the farm derives
	// Stats.Stages latency histograms from.
	Trace []trace.Span `json:",omitempty"`
	// FirstPageEmbedding supports campaign clustering and the cloning
	// analysis without retaining full screenshots.
	FirstPageEmbedding visualphish.Embedding
	// Triage verdicts (internal/triage; zero/empty when triage is off, and
	// omitted from exports so non-triage session bytes are unchanged).
	// TriageScore is the URL-lexical phishiness score; TriageCampaign is
	// the triage campaign this session founded or was attributed to;
	// TriageSimilarity is the attribution similarity for fast-path
	// sessions.
	TriageScore      float64 `json:",omitempty"`
	TriageCampaign   string  `json:",omitempty"`
	TriageSimilarity float64 `json:",omitempty"`
	// Cloak records the adaptive uncloaking attempts when the session's
	// first honest crawl landed on a benign/parked page and the loop
	// re-crawled with mutated profiles (nil otherwise, and omitted from
	// exports so non-cloak session bytes are unchanged).
	Cloak *CloakLog `json:",omitempty"`
}

// Crawler drives sessions. It is stateless across sessions except for the
// injected models, so one Crawler can be shared by the farm's workers.
type Crawler struct {
	// Classifier labels input-field descriptions (nil disables
	// classification: every field becomes unknown).
	Classifier *textclass.Model
	// Detector finds buttons and CAPTCHAs visually (nil disables the
	// visual submit strategy).
	Detector *vision.Detector
	// OCR reads labels out of renderings.
	OCR *ocr.Engine
	// NewBrowser builds the fresh per-session browser profile.
	NewBrowser func() *browser.Browser
	// MaxPages bounds transitions per session.
	MaxPages int
	// SessionBudget bounds one session's wall clock, cancelling in-flight
	// fetches when it expires (the paper's 20-minute timeout). 0 uses
	// DefaultSessionBudget; negative disables the budget.
	SessionBudget time.Duration
	// FakerSeed seeds the per-session forged-data generator and the
	// uncloaking loop's profile-mutation schedule.
	FakerSeed int64
	// CloakRetries is the adaptive uncloaking budget: how many times a
	// session that landed on a benign/parked page is re-crawled with a
	// profile mutated from the failed attempt's observed signals. 0 (the
	// default) disables the loop — an honest single crawl.
	CloakRetries int
	// Pool, when non-nil, recycles the per-session object graph (browser,
	// trace slab, render/mask buffers) across sessions instead of
	// allocating it fresh. Session exports are byte-identical either way;
	// see SessionPool for the recycling contract.
	Pool *SessionPool
	// Timings, when non-nil, accumulates per-stage durations (render, OCR,
	// detect, submit) across every attempt this crawler runs. Durations
	// are measured on the session-logical trace clock, not the wall clock,
	// so accumulated timings are deterministic. The farm does NOT use this
	// collector for Stats.Stages (those fold from finished sessions'
	// traces, final attempt only); it exists for direct callers such as
	// the profiling harness. nil disables it at zero cost.
	Timings *metrics.StageTimings

	// DisableOCR turns off the visual label fallback of Section 4.1 — the
	// ablation quantifying what a DOM-only crawler would miss.
	DisableOCR bool
	// URLOnlyTransitions disables the DOM-hash progress check of Section
	// 4.4, detecting transitions by URL change alone — the ablation
	// quantifying premature session termination on JS-swap pages.
	URLOnlyTransitions bool
}

// crawlAttempt runs one end-to-end crawl of seedURL presenting prof, with
// the jar optionally seeded from a prior visit's snapshot. It returns the
// session log and the final jar snapshot (for cookie persistence across
// adaptive attempts). Crawl wraps it with the uncloaking loop.
func (c *Crawler) crawlAttempt(seedURL string, prof browser.Profile, jar map[string]string) (lg *SessionLog, jarOut map[string]string) {
	maxPages := c.MaxPages
	if maxPages <= 0 {
		maxPages = DefaultMaxPages
	}
	eng := c.OCR
	if eng == nil && !c.DisableOCR {
		eng = ocr.New()
	}
	if c.DisableOCR {
		eng = nil
	}
	budget := c.SessionBudget
	if budget == 0 {
		budget = DefaultSessionBudget
	}
	ctx := context.Background()
	cancel := func() {}
	if budget > 0 {
		ctx, cancel = context.WithTimeout(ctx, budget)
	}
	defer cancel()

	// Pooled mode recycles the whole session graph; unpooled builds it
	// fresh. Both paths produce byte-identical exports — pooled mode copies
	// the net log and trace out of recycled storage before release.
	pooled := c.Pool != nil
	var (
		b  *browser.Browser
		tr *trace.Session
		sc *sessionScratch
	)
	if pooled {
		sc = c.Pool.acquire(c.NewBrowser)
		b, tr = sc.browser, sc.trace
	} else {
		b = c.NewBrowser()
		// The trace session owns the logical clock for the whole session:
		// the browser's log timestamps and the span boundaries advance one
		// shared timeline, so the exported trace is byte-stable for a
		// fixed seed.
		tr = trace.NewSession()
	}
	b.SetContext(ctx)
	b.SetProfile(prof)
	if len(jar) > 0 {
		b.ImportCookies(jar)
	}
	fk := faker.New(c.FakerSeed)
	log := &SessionLog{SeedURL: seedURL}

	var page *browser.Page
	b.SetClock(tr.Clock())
	root := tr.Begin(trace.KindSession, seedURL)
	defer func() {
		// The jar snapshot must be taken before the pooled browser goes
		// back to its pool (the next acquire resets it).
		jarOut = b.CookieSnapshot()
		tr.End(root)
		if !pooled {
			log.Trace = tr.Spans()
			return
		}
		log.Trace = append([]trace.Span(nil), tr.Spans()...)
		if page != nil {
			page.ReleaseRender()
		}
		c.Pool.release(sc)
	}()
	exportNetLog := func() []browser.NetRequest {
		if !pooled {
			return b.NetLog
		}
		if len(b.NetLog) == 0 {
			return nil
		}
		return append([]browser.NetRequest(nil), b.NetLog...)
	}

	var err error
	page, err = b.Navigate(seedURL)
	if err != nil {
		log.Outcome = ClassifyError(err)
		log.Error = err.Error()
		log.NetLog = exportNetLog()
		return log, nil
	}
	if page.Status >= http.StatusInternalServerError {
		log.Outcome = OutcomeServerError
		log.Error = fmt.Sprintf("HTTP %d on landing page", page.Status)
		log.NetLog = exportNetLog()
		return log, nil
	}
	log.FirstPageEmbedding = visualphish.EmbedCropped(page.Screenshot())

	for step := 0; ; step++ {
		if ctx.Err() != nil {
			log.Outcome = OutcomeTimeout
			log.Error = "session budget exhausted"
			break
		}
		if step >= maxPages {
			log.Outcome = OutcomePageLimit
			break
		}
		pg := tr.Begin(trace.KindPage, page.URL)
		pl := c.observePage(page, step, eng, tr)
		if isTakedownPage(&pl) {
			log.Pages = append(log.Pages, pl)
			log.Outcome = OutcomeTakedown
			tr.End(pg)
			break
		}
		if isBenignParkedPage(&pl) {
			// A parked/benign page: either the URL really hosts nothing, or
			// a cloaking kit served its decoy to this profile. The Crawl
			// wrapper decides whether to re-crawl with a mutated profile.
			log.Pages = append(log.Pages, pl)
			log.Outcome = OutcomeBenign
			tr.End(pg)
			break
		}
		fields := c.identifyFields(page, eng, tr)
		c.classifyAndLog(&pl, fields)

		var next *browser.Page
		// The submit span needs no explicit work cost: every keystroke and
		// request the ladder performs ticks the shared logical clock.
		submit := tr.Begin(trace.KindStage, metrics.StageSubmit.String())
		if len(fields) > 0 {
			next = c.fillAndSubmit(page, fields, &pl, fk)
		} else {
			next = c.clickThrough(page, &pl)
		}
		c.Timings.Observe(metrics.StageSubmit, tr.End(submit))
		log.Pages = append(log.Pages, pl)
		tr.End(pg)
		if next == nil {
			switch {
			case ctx.Err() != nil:
				// Interactions failed because the budget ran out, not
				// because the site resisted them.
				log.Outcome = OutcomeTimeout
				log.Error = "session budget exhausted"
			case pl.SubmitMethod == "" && len(fields) == 0:
				// Nothing to interact with: natural end of the UX.
				log.Outcome = OutcomeCompleted
			default:
				log.Outcome = OutcomeStuck
			}
			break
		}
		// A mid-flow error page is NOT an operational failure: the paper
		// measures it as the HTTP-error UX-termination pattern (Section
		// 5.2.3), so the loop continues and logs it like any other page.
		// In pooled mode the page we are leaving hands its render buffers
		// back (content swaps return the SAME page — nothing to release).
		if pooled && next != page {
			page.ReleaseRender()
		}
		page = next
	}
	log.NetLog = exportNetLog()
	return log, nil
}

// observePage collects the per-page metadata of Section 4.5, recording
// render and detect stage spans with work-proportional logical costs (DOM
// nodes rendered; detections scored) so trace durations reflect relative
// stage cost deterministically.
func (c *Crawler) observePage(p *browser.Page, index int, eng *ocr.Engine, tr *trace.Session) PageLog {
	render := tr.Begin(trace.KindStage, metrics.StageRender.String())
	shot := p.Screenshot()
	tr.Advance(countNodes(p.Doc))
	c.Timings.Observe(metrics.StageRender, tr.End(render))
	pl := PageLog{
		Index:      index,
		URL:        p.URL,
		Host:       p.Host(),
		Status:     p.Status,
		Title:      dom.Title(p.Doc),
		Text:       p.Doc.InnerText(),
		DOMHash:    p.DOMHash(),
		PHash:      phash.Compute(shot),
		Listeners:  append([]script.Listener(nil), p.ListenerLog...),
		ScriptSrcs: script.ExternalScripts(p.Doc),
	}
	if c.Detector != nil {
		detect := tr.Begin(trace.KindStage, metrics.StageDetect.String())
		pl.Detections = c.Detector.Detect(shot)
		tr.Advance(1 + 8*len(pl.Detections))
		c.Timings.Observe(metrics.StageDetect, tr.End(detect))
		for _, det := range pl.Detections {
			pl.DetectionHashes = append(pl.DetectionHashes, phash.Compute(shot.Sub(det.Box)))
		}
	}
	return pl
}

// countNodes is the render stage's logical work cost: one tick per DOM
// node, the quantity render time actually scales with.
func countNodes(doc *dom.Node) int {
	n := 0
	doc.Walk(func(*dom.Node) bool {
		n++
		return true
	})
	return n
}

func (c *Crawler) classifyAndLog(pl *PageLog, fields []FieldInfo) {
	for _, f := range fields {
		fl := FieldLog{
			Description: f.Description,
			HTMLType:    f.HTMLType,
			UsedOCR:     f.UsedOCR,
			Label:       fieldspec.Unknown,
			Box:         f.Box,
		}
		if c.Classifier != nil && f.Description != "" {
			label, conf := c.Classifier.PredictThreshold(
				f.Description, ConfidenceThreshold, string(fieldspec.Unknown))
			fl.Label = fieldspec.Type(label)
			fl.Confidence = conf
		}
		if fl.UsedOCR {
			pl.UsedOCR = true
		}
		pl.Fields = append(pl.Fields, fl)
	}
}

// fillAndSubmit forges data for every field and walks the submit-strategy
// ladder, retrying with fresh data when the site rejects a submission
// (detected as "no page transition"). Returns the new page, or nil when the
// site never accepted the data.
func (c *Crawler) fillAndSubmit(p *browser.Page, fields []FieldInfo, pl *PageLog, fk *faker.Faker) *browser.Page {
	beforeURL, beforeHash := p.URL, p.DOMHash()
	transitioned := func(np *browser.Page) bool {
		if np == nil {
			return false
		}
		if c.URLOnlyTransitions {
			return np.URL != beforeURL
		}
		return np.URL != beforeURL || np.DOMHash() != beforeHash
	}
	// record notes which strategy actually performed a submission (a POST
	// reached the site), even when the site re-served the same page: the
	// Section 5.1.2 "12% required visual detection" measurement counts the
	// interaction used, not whether the flow continued.
	record := func(method string) {
		if pl.SubmitMethod == "" {
			pl.SubmitMethod = method
		}
	}
	// Consent checkboxes ("I agree to the terms") gate many real sign-up
	// forms; tick them all before submitting, as a user would.
	for _, cb := range dom.MustQuery(p.Doc, `input[type=checkbox]`) {
		cb.SetAttr("value", "on")
		cb.SetAttr("checked", "checked")
	}
	for attempt := 0; attempt < MaxDataAttempts; attempt++ {
		pl.DataAttempts = attempt + 1
		// Forge and enter data (fresh values every attempt).
		for i, f := range fields {
			value := fk.ForType(pl.Fields[i].Label)
			pl.Fields[i].Value = value
			p.Type(f.Node, value)
		}
		// Strategy 1: Enter key with focus on the first input.
		if np, err := p.PressEnter(fields[0].Node); err == nil && np != nil {
			record(SubmitEnter)
			if transitioned(np) {
				pl.SubmitMethod = SubmitEnter
				return np
			}
		}
		// Strategy 2: DOM submit button (or a link styled as a button).
		if btn := findSubmitElement(p); btn != nil {
			if np, err := p.Click(btn); err == nil && np != nil {
				record(SubmitButton)
				if transitioned(np) {
					pl.SubmitMethod = SubmitButton
					return np
				}
			}
		}
		// Strategy 3: programmatic form.submit().
		if form := fields[0].Node.Closest("form"); form != nil {
			if np, err := p.SubmitForm(form); err == nil && np != nil {
				record(SubmitFormAction)
				if transitioned(np) {
					pl.SubmitMethod = SubmitFormAction
					return np
				}
			}
		}
		// Strategy 4: visual submit-button detection.
		if np, performed := c.visualSubmit(p, transitioned); performed {
			record(SubmitVisual)
			if np != nil {
				pl.SubmitMethod = SubmitVisual
				return np
			}
		}
	}
	return nil
}

// visualSubmit uses the object detector to find button-looking regions and
// clicks their centers. It reports whether any click actually performed an
// interaction, and returns the new page when the interaction progressed.
func (c *Crawler) visualSubmit(p *browser.Page, transitioned func(*browser.Page) bool) (*browser.Page, bool) {
	if c.Detector == nil {
		return nil, false
	}
	performed := false
	dets := c.Detector.DetectClass(p.Screenshot(), vision.ClassButton)
	for _, det := range dets {
		np, err := p.ClickAt(det.Box.CenterX(), det.Box.CenterY())
		if err != nil || np == nil {
			continue
		}
		performed = true
		if transitioned(np) {
			return np, true
		}
	}
	return nil, performed
}

// clickThrough handles input-less pages (Section 4.4): find a button-like
// element to advance, falling back to visual detection.
func (c *Crawler) clickThrough(p *browser.Page, pl *PageLog) *browser.Page {
	beforeURL, beforeHash := p.URL, p.DOMHash()
	transitioned := func(np *browser.Page) bool {
		if np == nil {
			return false
		}
		if c.URLOnlyTransitions {
			return np.URL != beforeURL
		}
		return np.URL != beforeURL || np.DOMHash() != beforeHash
	}
	// DOM buttons and button-like links first.
	for _, el := range clickCandidates(p.Doc) {
		if np, err := p.Click(el); err == nil && transitioned(np) {
			pl.SubmitMethod = SubmitClickThru
			return np
		}
	}
	// Visual detection of buttons that exist only as pixels.
	if np, _ := c.visualSubmit(p, transitioned); np != nil {
		pl.SubmitMethod = SubmitVisualClick
		return np
	}
	return nil
}

// buttonWords are link texts that mark an anchor as a styled button.
var buttonWords = []string{
	"next", "continue", "verify", "proceed", "submit", "download", "view",
	"sign in", "log in", "login", "start", "get started", "confirm", "ok",
	"accept", "agree", "unlock",
}

// findSubmitElement performs the DOM analysis of Section 4.3: button
// elements, input[type=submit|image], and hyperlinks styled as buttons.
func findSubmitElement(p *browser.Page) *dom.Node {
	doc := p.Doc
	if btn := dom.MustQuery(doc, `button, input[type=submit], input[type=image]`); len(btn) > 0 {
		return btn[0]
	}
	// Heuristics for links styled as buttons.
	if a := doc.FindFirst(func(n *dom.Node) bool {
		return n.Type == dom.ElementNode && n.Tag == "a" && looksLikeButton(n)
	}); a != nil {
		return a
	}
	return nil
}

// clickCandidates returns, in preference order, the elements worth clicking
// on an input-less page.
func clickCandidates(doc *dom.Node) []*dom.Node {
	out := dom.MustQuery(doc, `button, input[type=submit], input[type=image], input[type=button]`)
	out = append(out, doc.Find(func(n *dom.Node) bool {
		return n.Type == dom.ElementNode && n.Tag == "a" && looksLikeButton(n)
	})...)
	return out
}

// looksLikeButton applies the styled-link heuristics: a button-ish class
// name or short imperative text.
func looksLikeButton(a *dom.Node) bool {
	class := strings.ToLower(a.AttrOr("class", ""))
	if strings.Contains(class, "btn") || strings.Contains(class, "button") {
		return true
	}
	text := strings.ToLower(strings.TrimSpace(a.InnerText()))
	if text == "" || len(text) > 24 {
		return false
	}
	for _, w := range buttonWords {
		if text == w || strings.HasPrefix(text, w+" ") {
			return true
		}
	}
	return false
}
