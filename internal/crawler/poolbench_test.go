package crawler

import "testing"

func BenchmarkCrawlSessionPooled(b *testing.B) {
	c := newCrawler(b, loginPaymentSite())
	c.Pool = NewSessionPool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Crawl("http://lp.test/")
	}
}
