// Package phishvet is the project's determinism-and-durability linter: a
// small go/ast + go/types analyzer framework with rules tuned to the
// invariants this codebase's reproduction guarantees rest on. The paper's
// analyses (Tables 1-7) only reproduce if a crawl is a pure function of
// the feed seed, and the journal's kill-and-resume guarantee only holds if
// every byte on the durability path is written atomically and checked.
// Those invariants are exactly the class of bugs `go vet` and the race
// detector cannot see — map-iteration order leaking into output, a stray
// wall-clock read in seeded code, a dropped fsync error — so phishvet
// machine-checks them on every `make lint`.
//
// Each rule reports diagnostics at file:line:col. A finding can be
// suppressed with a justified ignore comment on the same line (or the
// line above):
//
//	//phishvet:ignore <rule>: <justification>
//
// Bare ignores (no justification) are rejected with a diagnostic of their
// own, so every suppression in the tree stays auditable.
package phishvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String formats the diagnostic the way compilers do, so editors and CI
// log scrapers pick the location up.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// Rule is one named check.
type Rule struct {
	// Name is the identifier used in -rules filters and ignore comments.
	Name string
	// Doc is the one-line description shown by `phishvet -list`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass hands one package to one rule and collects its reports.
type Pass struct {
	Pkg    *Package
	rule   string
	diags  *[]Diagnostic
	shared *shared
}

// shared is the per-Check analysis state the flow-aware rules build over
// the whole package set: the call graph and the per-function summary
// caches (blocking classification, taint). It is constructed lazily — a
// run restricted to the purely syntactic rules never pays for it — and
// computed once per Check call, so checking N packages costs one graph
// and one summary pass, not N.
type shared struct {
	pkgs  []*Package
	cg    *CallGraph
	block *blockAnalysis
	taint *taintAnalysis
}

// graph returns the lazily built whole-run call graph.
func (p *Pass) graph() *CallGraph {
	if p.shared.cg == nil {
		p.shared.cg = BuildCallGraph(p.shared.pkgs)
	}
	return p.shared.cg
}

// blocking returns the lazily built blocking-call summary cache.
func (p *Pass) blocking() *blockAnalysis {
	if p.shared.block == nil {
		p.shared.block = newBlockAnalysis(p.graph())
	}
	return p.shared.block
}

// taintState returns the lazily built taint summary cache.
func (p *Pass) taintState() *taintAnalysis {
	if p.shared.taint == nil {
		p.shared.taint = newTaintAnalysis(p.graph())
	}
	return p.shared.taint
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// calleePkgFunc resolves a call of the form pkg.Fn(...) to the imported
// package path and function name. It returns ("", "") for anything else
// (method calls, locals, type conversions).
func (p *Pass) calleePkgFunc(call *ast.CallExpr) (path, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return p.selectorPkgFunc(sel)
}

// selectorPkgFunc resolves pkg.Name selectors (calls or bare references)
// to (import path, name) when pkg is an imported package and Name is a
// function; anything else returns ("", "").
func (p *Pass) selectorPkgFunc(sel *ast.SelectorExpr) (path, name string) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	if _, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func); !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// isBuiltin reports whether the call invokes the named builtin.
func (p *Pass) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// within reports whether the package's import path contains the given
// "/"-separated segment sequence (e.g. "internal/journal"). Fixture
// packages under testdata mimic production paths this way, so path-scoped
// rules behave identically on both.
func within(pkgPath, segments string) bool {
	return strings.Contains("/"+pkgPath+"/", "/"+segments+"/")
}

// Rules returns every rule in stable order: the five syntactic fast-path
// rules first, then the four flow-aware rules built on the call graph and
// taint engine.
func Rules() []Rule {
	return []Rule{
		maporderRule(), wallclockRule(), globalrandRule(), checkedsyncRule(), atomicwriteRule(),
		locknoblockRule(), goroleakRule(), detertaintRule(), kindswitchRule(),
	}
}

// RuleNames returns the names of rs.
func RuleNames(rs []Rule) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out
}

// suppressionRule is the meta-rule name attached to diagnostics about the
// ignore comments themselves (bare ignores, unknown rules, dead ignores).
const suppressionRule = "suppression"

// suppression is one parsed //phishvet:ignore comment.
type suppression struct {
	file string
	line int
	rule string
	just string
	pos  token.Pos
	used bool
	// bad carries the rejection message for malformed ignores ("" = valid).
	bad string
}

// parseSuppressions extracts every //phishvet:ignore comment in the
// package. Malformed ones (no rule, no ": justification", unknown rule)
// come back with bad set and never suppress anything.
func parseSuppressions(pkg *Package, known map[string]bool) []suppression {
	var out []suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//phishvet:ignore")
				if !ok {
					continue
				}
				// Tolerate a trailing comment on the same line (the fixture
				// harness puts // want expectations there).
				if i := strings.Index(text, "// want"); i >= 0 {
					text = text[:i]
				}
				s := suppression{
					file: pkg.Fset.Position(c.Pos()).Filename,
					line: pkg.Fset.Position(c.Pos()).Line,
					pos:  c.Pos(),
				}
				rule, just, found := strings.Cut(strings.TrimSpace(text), ":")
				rule = strings.TrimSpace(rule)
				switch {
				case !found || strings.TrimSpace(just) == "":
					s.bad = "bare //phishvet:ignore: write //phishvet:ignore <rule>: <justification> so the suppression stays auditable"
				case !known[rule]:
					s.bad = fmt.Sprintf("//phishvet:ignore names unknown rule %q (known: %s)", rule, strings.Join(RuleNames(Rules()), ", "))
				default:
					s.rule = rule
					s.just = strings.TrimSpace(just)
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// covers reports whether the suppression applies to a diagnostic of rule
// at (file, line): same line as the comment, or the line directly below
// (for ignores placed on their own line above the flagged statement).
func (s *suppression) covers(rule string, pos token.Position) bool {
	return s.bad == "" && s.rule == rule && s.file == pos.Filename &&
		(s.line == pos.Line || s.line == pos.Line-1)
}

// Check runs the rules over the packages, applies justified suppressions,
// reports malformed and dead suppressions, and returns the surviving
// diagnostics sorted by position.
func Check(pkgs []*Package, rules []Rule) []Diagnostic {
	known := map[string]bool{}
	for _, r := range Rules() {
		known[r.Name] = true
	}
	enabled := map[string]bool{}
	for _, r := range rules {
		enabled[r.Name] = true
	}
	sh := &shared{pkgs: pkgs}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, r := range rules {
			r.Run(&Pass{Pkg: pkg, rule: r.Name, diags: &raw, shared: sh})
		}
		sups := parseSuppressions(pkg, known)
		for _, d := range raw {
			suppressed := false
			for i := range sups {
				if sups[i].covers(d.Rule, d.Pos) {
					sups[i].used = true
					suppressed = true
				}
			}
			if !suppressed {
				out = append(out, d)
			}
		}
		for _, s := range sups {
			switch {
			case s.bad != "":
				out = append(out, Diagnostic{Pos: pkg.Fset.Position(s.pos), Rule: suppressionRule, Message: s.bad})
			case !s.used && enabled[s.rule]:
				// A justified ignore that matches nothing is stale — the code
				// it excused was fixed or moved. Keep the tree honest.
				out = append(out, Diagnostic{
					Pos:     pkg.Fset.Position(s.pos),
					Rule:    suppressionRule,
					Message: fmt.Sprintf("//phishvet:ignore %s suppresses nothing here: delete the stale suppression", s.rule),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// AuditEntry is one //phishvet:ignore comment found in the tree, for the
// CLI's -audit mode. Malformed ignores come back with Bad set to their
// rejection message.
type AuditEntry struct {
	Pos           token.Position
	Rule          string
	Justification string
	Bad           string
}

// Audit collects every //phishvet:ignore in the packages, in position
// order, so the full suppression inventory stays one command away as the
// count grows.
func Audit(pkgs []*Package) []AuditEntry {
	known := map[string]bool{}
	for _, r := range Rules() {
		known[r.Name] = true
	}
	var out []AuditEntry
	for _, pkg := range pkgs {
		for _, s := range parseSuppressions(pkg, known) {
			out = append(out, AuditEntry{
				Pos:           pkg.Fset.Position(s.pos),
				Rule:          s.rule,
				Justification: s.just,
				Bad:           s.bad,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// Select returns the rules whose names appear in the comma-separated
// filter ("" selects all), erroring on unknown names.
func Select(filter string) ([]Rule, error) {
	all := Rules()
	if filter == "" {
		return all, nil
	}
	byName := map[string]Rule{}
	for _, r := range all {
		byName[r.Name] = r
	}
	var out []Rule
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("phishvet: unknown rule %q (known: %s)", name, strings.Join(RuleNames(all), ", "))
		}
		out = append(out, r)
	}
	return out, nil
}
