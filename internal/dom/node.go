// Package dom implements an HTML document object model: a tokenizer and
// parser that build a mutable tree of nodes, query helpers modeled on the
// browser DOM API, and the lightweight structural DOM hash used by the
// PhishInPatterns crawler to detect page transitions (Section 4.4 of the
// paper).
//
// The parser is intentionally forgiving, in the spirit of real browsers:
// unclosed tags, stray end tags, and attribute quoting variations are all
// accepted, because phishing pages are frequently malformed on purpose to
// confuse naive HTML parsing.
package dom

import (
	"fmt"
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// NodeType discriminates the kinds of nodes in the tree.
type NodeType int

const (
	// ElementNode is a tag such as <div> or <input>.
	ElementNode NodeType = iota
	// TextNode holds character data.
	TextNode
	// CommentNode holds an HTML comment.
	CommentNode
	// DocumentNode is the synthetic root of a parsed document.
	DocumentNode
	// DoctypeNode records a <!DOCTYPE ...> declaration.
	DoctypeNode
)

// String returns a human-readable name for the node type.
func (t NodeType) String() string {
	switch t {
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case DocumentNode:
		return "document"
	case DoctypeNode:
		return "doctype"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// Node is a single node in the DOM tree. The zero value is not useful;
// create nodes with NewElement, NewText, or by parsing.
type Node struct {
	Type NodeType

	// Tag is the lower-cased tag name for ElementNode, empty otherwise.
	Tag string
	// Data holds text for TextNode and CommentNode.
	Data string

	// Attrs holds the element attributes in document order.
	Attrs []Attr

	Parent      *Node
	FirstChild  *Node
	LastChild   *Node
	PrevSibling *Node
	NextSibling *Node
}

// Attr is a single name="value" attribute.
type Attr struct {
	Name  string
	Value string
}

// NewElement returns a detached element node with the given tag (lower-cased)
// and optional attributes given as alternating name, value pairs.
func NewElement(tag string, nameValuePairs ...string) *Node {
	n := &Node{Type: ElementNode, Tag: strings.ToLower(tag)}
	for i := 0; i+1 < len(nameValuePairs); i += 2 {
		n.Attrs = append(n.Attrs, Attr{Name: strings.ToLower(nameValuePairs[i]), Value: nameValuePairs[i+1]})
	}
	return n
}

// NewText returns a detached text node.
func NewText(data string) *Node {
	return &Node{Type: TextNode, Data: data}
}

// Attr returns the value of the named attribute and whether it is present.
// Attribute names are matched case-insensitively.
func (n *Node) Attr(name string) (string, bool) {
	name = strings.ToLower(name)
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the value of the named attribute, or def when absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// SetAttr sets (or replaces) the named attribute.
func (n *Node) SetAttr(name, value string) {
	name = strings.ToLower(name)
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// RemoveAttr deletes the named attribute if present.
func (n *Node) RemoveAttr(name string) {
	name = strings.ToLower(name)
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs = append(n.Attrs[:i], n.Attrs[i+1:]...)
			return
		}
	}
}

// ID returns the element's id attribute (empty when absent).
func (n *Node) ID() string { return n.AttrOr("id", "") }

// HasClass reports whether the element's class list contains name.
func (n *Node) HasClass(name string) bool {
	for _, c := range strings.Fields(n.AttrOr("class", "")) {
		if c == name {
			return true
		}
	}
	return false
}

// AppendChild attaches child as the last child of n. The child is detached
// from any previous parent first.
func (n *Node) AppendChild(child *Node) {
	if child == nil {
		return
	}
	child.Detach()
	child.Parent = n
	if n.LastChild == nil {
		n.FirstChild = child
		n.LastChild = child
		return
	}
	child.PrevSibling = n.LastChild
	n.LastChild.NextSibling = child
	n.LastChild = child
}

// InsertBefore inserts child immediately before ref, which must be a child of
// n. When ref is nil the child is appended.
func (n *Node) InsertBefore(child, ref *Node) {
	if ref == nil {
		n.AppendChild(child)
		return
	}
	if ref.Parent != n {
		panic("dom: InsertBefore reference node is not a child")
	}
	child.Detach()
	child.Parent = n
	child.NextSibling = ref
	child.PrevSibling = ref.PrevSibling
	if ref.PrevSibling != nil {
		ref.PrevSibling.NextSibling = child
	} else {
		n.FirstChild = child
	}
	ref.PrevSibling = child
}

// Detach removes n from its parent, leaving n as the root of its own subtree.
func (n *Node) Detach() {
	if n.Parent == nil {
		return
	}
	p := n.Parent
	if n.PrevSibling != nil {
		n.PrevSibling.NextSibling = n.NextSibling
	} else {
		p.FirstChild = n.NextSibling
	}
	if n.NextSibling != nil {
		n.NextSibling.PrevSibling = n.PrevSibling
	} else {
		p.LastChild = n.PrevSibling
	}
	n.Parent = nil
	n.PrevSibling = nil
	n.NextSibling = nil
}

// RemoveChildren detaches every child of n.
func (n *Node) RemoveChildren() {
	for n.FirstChild != nil {
		n.FirstChild.Detach()
	}
}

// Children returns the direct children of n as a slice.
func (n *Node) Children() []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		out = append(out, c)
	}
	return out
}

// Walk calls fn for every node in the subtree rooted at n in depth-first
// document order (n first). If fn returns false the walk skips that node's
// descendants but continues with its siblings.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		c.Walk(fn)
	}
}

// Find returns all nodes in the subtree (including n) for which pred is true,
// in document order.
func (n *Node) Find(pred func(*Node) bool) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if pred(m) {
			out = append(out, m)
		}
		return true
	})
	return out
}

// FindFirst returns the first node in document order satisfying pred, or nil.
func (n *Node) FindFirst(pred func(*Node) bool) *Node {
	var found *Node
	n.Walk(func(m *Node) bool {
		if found != nil {
			return false
		}
		if pred(m) {
			found = m
			return false
		}
		return true
	})
	return found
}

// ElementsByTag returns every element with the given tag name (case
// insensitive) in document order.
func (n *Node) ElementsByTag(tags ...string) []*Node {
	set := make(map[string]bool, len(tags))
	for _, t := range tags {
		set[strings.ToLower(t)] = true
	}
	return n.Find(func(m *Node) bool {
		return m.Type == ElementNode && set[m.Tag]
	})
}

// ElementByID returns the first element whose id attribute equals id, or nil.
func (n *Node) ElementByID(id string) *Node {
	return n.FindFirst(func(m *Node) bool {
		return m.Type == ElementNode && m.ID() == id
	})
}

// InnerText concatenates all descendant text, collapsing runs of whitespace
// to single spaces and trimming the result, approximating the browser's
// visible innerText for simple documents.
func (n *Node) InnerText() string {
	var b strings.Builder
	n.Walk(func(m *Node) bool {
		if m.Type == ElementNode && (m.Tag == "script" || m.Tag == "style") {
			return false
		}
		if m.Type == TextNode {
			b.WriteString(m.Data)
			b.WriteByte(' ')
		}
		return true
	})
	return strings.Join(strings.Fields(b.String()), " ")
}

// OwnText returns only the text held in direct text-node children.
func (n *Node) OwnText() string {
	var b strings.Builder
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == TextNode {
			b.WriteString(c.Data)
			b.WriteByte(' ')
		}
	}
	return strings.Join(strings.Fields(b.String()), " ")
}

// AppendInnerText appends exactly what appending InnerText() would — the
// node's whitespace-normalized text, space-separated from b's existing
// content — without materializing the intermediate string. Callers
// assembling descriptions from many nodes share one builder this way.
func (n *Node) AppendInnerText(b *strings.Builder) {
	n.Walk(func(m *Node) bool {
		if m.Type == ElementNode && (m.Tag == "script" || m.Tag == "style") {
			return false
		}
		if m.Type == TextNode {
			appendFields(b, m.Data)
		}
		return true
	})
}

// AppendOwnText is AppendInnerText restricted to direct text-node children,
// mirroring OwnText.
func (n *Node) AppendOwnText(b *strings.Builder) {
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == TextNode {
			appendFields(b, c.Data)
		}
	}
}

// appendFields writes s's whitespace-separated fields to b, one space
// before each field that doesn't start the builder — the streaming form of
// appending strings.Join(strings.Fields(s), " ").
func appendFields(b *strings.Builder, s string) {
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		if unicode.IsSpace(r) {
			i += size
			continue
		}
		j := i
		for j < len(s) {
			r2, s2 := utf8.DecodeRuneInString(s[j:])
			if unicode.IsSpace(r2) {
				break
			}
			j += s2
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s[i:j])
		i = j
	}
}

// Ancestors returns the chain of parents from n's parent up to the root.
func (n *Node) Ancestors() []*Node {
	var out []*Node
	for p := n.Parent; p != nil; p = p.Parent {
		out = append(out, p)
	}
	return out
}

// Closest returns the nearest ancestor (or n itself) with the given tag, or
// nil when none exists.
func (n *Node) Closest(tag string) *Node {
	tag = strings.ToLower(tag)
	for m := n; m != nil; m = m.Parent {
		if m.Type == ElementNode && m.Tag == tag {
			return m
		}
	}
	return nil
}

// Siblings returns the other children of n's parent, in document order.
func (n *Node) Siblings() []*Node {
	if n.Parent == nil {
		return nil
	}
	var out []*Node
	for c := n.Parent.FirstChild; c != nil; c = c.NextSibling {
		if c != n {
			out = append(out, c)
		}
	}
	return out
}

// Clone returns a deep copy of the subtree rooted at n. The copy is detached.
func (n *Node) Clone() *Node {
	cp := &Node{Type: n.Type, Tag: n.Tag, Data: n.Data}
	cp.Attrs = append([]Attr(nil), n.Attrs...)
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		cp.AppendChild(c.Clone())
	}
	return cp
}

// Count returns the number of nodes in the subtree rooted at n.
func (n *Node) Count() int {
	total := 0
	n.Walk(func(*Node) bool { total++; return true })
	return total
}

// Path returns a /-separated tag path from the root to n, useful in logs.
func (n *Node) Path() string {
	var parts []string
	for m := n; m != nil; m = m.Parent {
		switch m.Type {
		case ElementNode:
			parts = append(parts, m.Tag)
		case DocumentNode:
			parts = append(parts, "#document")
		}
	}
	// Reverse.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// SortedAttrNames returns the attribute names sorted, for stable output.
func (n *Node) SortedAttrNames() []string {
	names := make([]string, 0, len(n.Attrs))
	for _, a := range n.Attrs {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}
