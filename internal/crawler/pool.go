package crawler

import (
	"sync"

	"repro/internal/browser"
	"repro/internal/trace"
)

// SessionPool recycles the per-session object graph across crawl sessions:
// the browser profile (cookie jar buckets, net-log backing array) and the
// trace span slab, plus — transitively, through the browser's recycle mode
// — every render screenshot, layout table, and OCR ink mask a session
// produces. One pool is shared by all of a farm's workers (sync.Pool is
// concurrency-safe), so steady-state crawling stops allocating its largest
// buffers entirely.
//
// The recycling contract: every pooled type has a Reset (or Release) that
// returns it to a state observationally identical to a fresh value, and
// the crawler copies anything that outlives the session (NetLog, Trace)
// out of pooled storage before the graph is recycled. Pooled and unpooled
// runs therefore produce byte-identical SessionLog exports — pinned by
// TestCrawlPooledMatchesUnpooled.
type SessionPool struct {
	pool sync.Pool // holds *sessionScratch
}

// sessionScratch is one recyclable session graph.
type sessionScratch struct {
	browser *browser.Browser
	trace   *trace.Session
}

// NewSessionPool returns an empty pool.
func NewSessionPool() *SessionPool { return &SessionPool{} }

// acquire returns a session graph ready for use: a recycled one reset to
// its initial state, or a fresh one built with newBrowser. Fresh browsers
// are switched into recycle mode — the pool's existence is the ownership
// assertion that mode requires.
func (sp *SessionPool) acquire(newBrowser func() *browser.Browser) *sessionScratch {
	if sc, ok := sp.pool.Get().(*sessionScratch); ok {
		sc.browser.Reset()
		sc.trace.Reset()
		return sc
	}
	b := newBrowser()
	b.EnableRecycle()
	return &sessionScratch{browser: b, trace: trace.NewSession()}
}

// release returns the graph to the pool for the next session.
func (sp *SessionPool) release(sc *sessionScratch) {
	sp.pool.Put(sc)
}
