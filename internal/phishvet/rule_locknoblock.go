package phishvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The locknoblock rule flags a sync.Mutex/RWMutex held across a blocking
// operation — file I/O, fsync, channel sends and receives, net/http
// round-trips, WaitGroup.Wait — directly or through any statically
// resolvable call chain. Holding a lock across I/O turns every other
// acquirer into a queue behind the disk: the exact hazard class of the
// journal's commit path, the farm's tally lock, and the fleet
// coordinator's lease table. sync.Cond.Wait is deliberately not counted
// (it releases its mutex while parked), and calls through function values
// or interface methods are unknown to the call graph and pass unchecked.
//
// The one legitimate shape — a mutex that exists to serialize the I/O
// itself, like the journal WAL's — is expected to carry a justified
// //phishvet:ignore at each Lock site, so the full inventory of
// lock-across-I/O sections stays visible in `phishvet -audit`.

func locknoblockRule() Rule {
	return Rule{
		Name: "locknoblock",
		Doc:  "sync.Mutex/RWMutex held across blocking operations (I/O, channels, HTTP, Wait)",
		Run: func(p *Pass) {
			ba := p.blocking()
			for _, f := range p.Pkg.Files {
				for _, d := range f.Decls {
					decl, ok := d.(*ast.FuncDecl)
					if !ok || decl.Body == nil {
						continue
					}
					rs := &regionScanner{pass: p, ba: ba, held: map[string]*lockRegion{}}
					rs.walk(decl.Body.List)
				}
			}
		},
	}
}

// lockRegion is one critical section in flight during the scan.
type lockRegion struct {
	pos      token.Pos
	reported bool
}

// regionScanner walks one function's statements in source order tracking
// which mutexes are held. The tracking is deliberately syntactic: an
// Unlock inside a nested block that ends by returning (the common
// `if closed { mu.Unlock(); return }` guard) does not release the outer
// region, because the fallthrough path still holds the lock; any other
// nested Unlock conservatively does, so follow-up statements are not
// falsely flagged (the journal's Close unlocks mid-function to wait for
// the commit loop).
type regionScanner struct {
	pass *Pass
	ba   *blockAnalysis
	held map[string]*lockRegion
}

func (rs *regionScanner) walk(stmts []ast.Stmt) {
	for _, s := range stmts {
		rs.stmt(s)
	}
}

// nested walks a block whose execution is conditional. If the block ends
// by leaving the function or loop, lock-state changes inside it are
// discarded for the code after it — that path never falls through.
func (rs *regionScanner) nested(stmts []ast.Stmt) {
	if endsTerminating(stmts) {
		saved := map[string]*lockRegion{}
		for k, v := range rs.held {
			saved[k] = v
		}
		rs.walk(stmts)
		rs.held = saved
		return
	}
	rs.walk(stmts)
}

func endsTerminating(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
	}
	return false
}

func (rs *regionScanner) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, acquire, ok := rs.lockCall(call); ok {
				if acquire {
					rs.held[key] = &lockRegion{pos: call.Pos()}
				} else {
					delete(rs.held, key)
				}
				return
			}
		}
		rs.checkExpr(s.X)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the region open to function end; any
		// other deferred call runs at return, outside the scan's scope.
	case *ast.GoStmt:
		// The spawned goroutine does not block the section that launches it.
	case *ast.SendStmt:
		rs.report("channel send", s.Pos())
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			rs.checkExpr(e)
		}
		for _, e := range s.Lhs {
			rs.checkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						rs.checkExpr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			rs.checkExpr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			rs.stmt(s.Init)
		}
		rs.checkExpr(s.Cond)
		rs.nested(s.Body.List)
		if s.Else != nil {
			rs.nested([]ast.Stmt{s.Else})
		}
	case *ast.ForStmt:
		if s.Init != nil {
			rs.stmt(s.Init)
		}
		if s.Cond != nil {
			rs.checkExpr(s.Cond)
		}
		rs.nested(s.Body.List)
	case *ast.RangeStmt:
		if tv, ok := rs.pass.Pkg.Info.Types[s.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				rs.report("range over channel", s.Pos())
			}
		}
		rs.checkExpr(s.X)
		rs.nested(s.Body.List)
	case *ast.SelectStmt:
		blocking := true
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				blocking = false // a default arm makes the select a poll
			}
		}
		if blocking {
			rs.report("select", s.Pos())
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				rs.nested(cc.Body)
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			rs.stmt(s.Init)
		}
		if s.Tag != nil {
			rs.checkExpr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					rs.checkExpr(e)
				}
				rs.nested(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			rs.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				rs.nested(cc.Body)
			}
		}
	case *ast.BlockStmt:
		rs.nested(s.List)
	case *ast.LabeledStmt:
		rs.stmt(s.Stmt)
	case *ast.IncDecStmt:
		rs.checkExpr(s.X)
	}
}

// checkExpr looks for blocking operations in an expression evaluated while
// locks are held. Function literals are skipped: a literal appearing in an
// expression is a value, not a call.
func (rs *regionScanner) checkExpr(e ast.Expr) {
	if len(rs.held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				rs.report("channel receive", n.Pos())
			}
		case *ast.CallExpr:
			if fn := staticCallee(rs.pass.Pkg.Info, n); fn != nil {
				if res := rs.ba.fnBlocks(fn); res.blocks {
					rs.report(res.describe(fn), n.Pos())
				}
			}
		}
		return true
	})
}

// report charges one diagnostic to every open region, at its Lock site, so
// a suppression placed on the Lock line covers the whole critical section.
func (rs *regionScanner) report(what string, at token.Pos) {
	keys := make([]string, 0, len(rs.held))
	for key := range rs.held {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		region := rs.held[key]
		if region.reported {
			continue
		}
		region.reported = true
		line := rs.pass.Pkg.Fset.Position(at).Line
		rs.pass.Reportf(region.pos,
			"%s is held across a blocking operation: %s (line %d) — shrink the critical section or justify with //phishvet:ignore locknoblock",
			key, what, line)
	}
}

// lockCall classifies mu.Lock/RLock/Unlock/RUnlock calls. The key is the
// receiver expression's source text ("j.mu", "l" for an embedded mutex),
// which matches acquire to release within one function.
func (rs *regionScanner) lockCall(call *ast.CallExpr) (key string, acquire, ok bool) {
	fn := staticCallee(rs.pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

// blockAnalysis memoizes, per function, whether calling it can block —
// directly or through any statically resolvable callee. This is the
// per-function summary cache that keeps whole-repo analysis linear in the
// number of declarations.
type blockAnalysis struct {
	cg         *CallGraph
	memo       map[*types.Func]blockRes
	inProgress map[*types.Func]bool
}

type blockRes struct {
	blocks bool
	// leaf names the underlying blocking operation for diagnostics.
	leaf string
}

func (r blockRes) describe(via *types.Func) string {
	if r.leaf == "" {
		return "call to " + funcDisplay(via)
	}
	if strings.HasPrefix(r.leaf, "call to ") && strings.Contains(r.leaf, funcDisplay(via)) {
		return r.leaf
	}
	return "call to " + funcDisplay(via) + ", which reaches " + r.leaf
}

func newBlockAnalysis(cg *CallGraph) *blockAnalysis {
	return &blockAnalysis{cg: cg, memo: map[*types.Func]blockRes{}, inProgress: map[*types.Func]bool{}}
}

// fnBlocks reports whether a call to fn can block.
func (ba *blockAnalysis) fnBlocks(fn *types.Func) blockRes {
	if r, ok := ba.memo[fn]; ok {
		return r
	}
	if ba.inProgress[fn] {
		return blockRes{} // recursion: optimistic, the outer frame decides
	}
	fi := ba.cg.Info(fn)
	if fi == nil || fi.Decl.Body == nil {
		r := externBlocks(fn)
		ba.memo[fn] = r
		return r
	}
	ba.inProgress[fn] = true
	defer delete(ba.inProgress, fn)
	var res blockRes
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if res.blocks {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // runs concurrently, does not block this call
		case *ast.SendStmt:
			res = blockRes{blocks: true, leaf: "channel send"}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				res = blockRes{blocks: true, leaf: "channel receive"}
			}
		case *ast.SelectStmt:
			blocking := true
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					blocking = false
				}
			}
			if blocking {
				res = blockRes{blocks: true, leaf: "select"}
			}
		case *ast.RangeStmt:
			if tv, ok := fi.Pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					res = blockRes{blocks: true, leaf: "range over channel"}
				}
			}
		case *ast.CallExpr:
			callee := staticCallee(fi.Pkg.Info, n)
			if callee == nil || callee == fn {
				return true
			}
			if sub := ba.fnBlocks(callee); sub.blocks {
				leaf := sub.leaf
				if leaf == "" {
					leaf = "call to " + funcDisplay(callee)
				}
				res = blockRes{blocks: true, leaf: leaf}
			}
		}
		return !res.blocks
	})
	ba.memo[fn] = res
	return res
}

// blockingStdlib names the stdlib calls treated as blocking, by package
// path. File I/O and fsync, HTTP round-trips, dial/listen/accept,
// subprocesses, sleeps, and WaitGroup.Wait; sync.Cond.Wait is excluded
// because it releases its mutex while parked.
var blockingStdlib = map[string]map[string]bool{
	"os": setOf("Create", "CreateTemp", "Open", "OpenFile", "WriteFile", "ReadFile",
		"ReadDir", "Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll", "MkdirTemp",
		"Stat", "Lstat", "Truncate", "Chmod", "Chtimes", "Link", "Symlink",
		"Sync", "Read", "ReadAt", "Write", "WriteString", "WriteAt", "Close", "Seek"),
	"io":            setOf("Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull", "WriteString"),
	"io/fs":         setOf("ReadFile", "ReadDir", "WalkDir"),
	"path/filepath": setOf("Walk", "WalkDir"),
	"bufio": setOf("Flush", "Read", "ReadByte", "ReadBytes", "ReadString",
		"ReadRune", "ReadSlice", "ReadLine", "Write", "WriteString"),
	"time": setOf("Sleep"),
}

func setOf(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// externBlocks classifies functions the analyzed packages do not declare.
func externBlocks(fn *types.Func) blockRes {
	pkg := fn.Pkg()
	if pkg == nil {
		return blockRes{}
	}
	path, name := pkg.Path(), fn.Name()
	switch path {
	case "net/http", "os/exec":
		return blockRes{blocks: true, leaf: "call to " + funcDisplay(fn)}
	case "net":
		if strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") || name == "Accept" {
			return blockRes{blocks: true, leaf: "call to " + funcDisplay(fn)}
		}
		return blockRes{}
	case "sync":
		// Only WaitGroup.Wait: Cond.Wait releases the mutex it guards.
		if name == "Wait" {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil &&
				strings.Contains(recv.Type().String(), "WaitGroup") {
				return blockRes{blocks: true, leaf: "call to " + funcDisplay(fn)}
			}
		}
		return blockRes{}
	}
	if names, ok := blockingStdlib[path]; ok && names[name] {
		return blockRes{blocks: true, leaf: "call to " + funcDisplay(fn)}
	}
	return blockRes{}
}
