// Termination reproduces the Section 5.2.3 experiment: train the
// terminal-page text classifier on 200 labelled samples, evaluate on 100
// held-out ones (paper: 97% accuracy with the 0.65 reject option), then
// classify the four archetypal terminal pages a phishing victim may see —
// including the ironic fake "phishing awareness" reassurance of Figure 4.
package main

import (
	"fmt"
	"log"

	"repro/internal/termclass"
)

func main() {
	clf, err := termclass.Train(1)
	if err != nil {
		log.Fatal(err)
	}
	acc := clf.Evaluate(2, termclass.TestSize)
	fmt.Printf("Held-out accuracy on %d samples: %.1f%% (paper: 97%%)\n\n", termclass.TestSize, acc*100)

	pages := []string{
		"Congratulations! Your account has been verified successfully. You may close this window.",
		"An error occurred while processing your request. Please try again later.",
		"404 not found: the requested resource was not found on this server",
		"You fell for a Golub Corporation phishing simulation. Don't worry, your computer is safe!",
		"lorem ipsum dolor sit amet entirely unrelated content",
	}
	for _, text := range pages {
		label, conf := clf.Classify(text)
		fmt.Printf("%-12s (%.2f)  %q\n", label, conf, text)
	}
	fmt.Println("\nThe last page fell below the 0.65 confidence threshold and was rejected,")
	fmt.Println("mirroring the paper's reject option for uncategorizable terminal pages.")
}
