package phash_test

import (
	"fmt"

	"repro/internal/phash"
	"repro/internal/raster"
)

func ExampleDistance() {
	a := raster.New(200, 150, raster.White)
	a.Fill(raster.R(0, 0, 200, 30), raster.Navy)
	b := a.Clone()
	b.DrawString("v2", 180, 140, raster.Gray) // trivial variation
	c := raster.New(200, 150, raster.Olive)   // different design

	fmt.Println(phash.Distance(phash.Compute(a), phash.Compute(b)) <= phash.DefaultSimilarityThreshold)
	fmt.Println(phash.Distance(phash.Compute(a), phash.Compute(c)) <= phash.DefaultSimilarityThreshold)
	// Output:
	// true
	// false
}

func ExampleCluster() {
	kitA := raster.New(100, 100, raster.White)
	kitA.Fill(raster.R(0, 0, 100, 20), raster.Blue)
	kitB := raster.New(100, 100, raster.Maroon)
	hashes := []phash.Hash{
		phash.Compute(kitA), phash.Compute(kitA), // two deployments of kit A
		phash.Compute(kitB), // one of kit B
	}
	fmt.Println(phash.Cluster(hashes, phash.DefaultSimilarityThreshold))
	// Output: [0 0 1]
}
