package browser

import (
	"net/http"
	"testing"
)

func TestDefaultProfileIsHonest(t *testing.T) {
	p := DefaultProfile()
	if p.UserAgent != UserAgents()[0] {
		t.Errorf("default UA = %q, want pool index 0", p.UserAgent)
	}
	if p.Referrer != "" || p.AcceptLanguage != Languages()[0] || p.XForwardedFor != "" {
		t.Errorf("default profile not honest: %+v", p)
	}
	if p.JSCapable || p.PersistCookies {
		t.Errorf("default profile claims capabilities: %+v", p)
	}
	if got := p.Fingerprint(); got != "ua=0 ref=0 lang=0 geo=0 js=0 ck=0" {
		t.Errorf("default fingerprint = %q", got)
	}
}

func TestFingerprintTracksPoolIndices(t *testing.T) {
	p := Profile{
		UserAgent:      UserAgents()[2],
		Referrer:       Referrers()[1],
		AcceptLanguage: Languages()[3],
		XForwardedFor:  ForwardedAddrs()[1],
		JSCapable:      true,
		PersistCookies: true,
	}
	if got := p.Fingerprint(); got != "ua=2 ref=1 lang=3 geo=1 js=1 ck=1" {
		t.Errorf("fingerprint = %q", got)
	}
	// Off-pool values mark themselves visibly rather than aliasing index 0.
	p.UserAgent = "curl/8.0"
	if got := p.Fingerprint(); got != "ua=-1 ref=1 lang=3 geo=1 js=1 ck=1" {
		t.Errorf("off-pool fingerprint = %q", got)
	}
}

func TestProfileHeadersApplied(t *testing.T) {
	var got http.Header
	b := New(Options{Transport: transportFunc(func(req *http.Request) (*http.Response, error) {
		got = req.Header.Clone()
		return respond(200, nil, "ok"), nil
	})})
	b.SetProfile(Profile{
		UserAgent:      UserAgents()[1],
		Referrer:       Referrers()[2],
		AcceptLanguage: Languages()[1],
		XForwardedFor:  ForwardedAddrs()[1],
	})
	if _, _, _, err := b.fetch("GET", "http://kit.test/", nil, "document"); err != nil {
		t.Fatal(err)
	}
	if got.Get("User-Agent") != UserAgents()[1] {
		t.Errorf("User-Agent = %q", got.Get("User-Agent"))
	}
	if got.Get("Referer") != Referrers()[2] {
		t.Errorf("Referer = %q", got.Get("Referer"))
	}
	if got.Get("Accept-Language") != Languages()[1] {
		t.Errorf("Accept-Language = %q", got.Get("Accept-Language"))
	}
	if got.Get("X-Forwarded-For") != ForwardedAddrs()[1] {
		t.Errorf("X-Forwarded-For = %q", got.Get("X-Forwarded-For"))
	}
}

func TestResetRestoresDefaultProfile(t *testing.T) {
	b := New(Options{Transport: transportFunc(func(req *http.Request) (*http.Response, error) {
		return respond(200, nil, "ok"), nil
	})})
	b.SetProfile(Profile{UserAgent: UserAgents()[3], JSCapable: true})
	b.Reset()
	if b.profile != DefaultProfile() {
		t.Errorf("profile after Reset = %+v", b.profile)
	}
}

func TestJSChallengeAnsweredWhenCapable(t *testing.T) {
	const token = "deadbeef"
	var seen []recordedReq
	b := New(Options{Transport: transportFunc(func(req *http.Request) (*http.Response, error) {
		record(&seen, req)
		if req.Header.Get("Cookie") == "" {
			// Probe: pose the challenge alongside the decoy body.
			return respond(200, map[string]string{JSChallengeHeader: token}, "<html><body>coming soon</body></html>"), nil
		}
		return respond(200, nil, "<html><body>real page</body></html>"), nil
	})})
	b.SetProfile(Profile{UserAgent: UserAgents()[0], AcceptLanguage: Languages()[0], JSCapable: true})
	body, _, _, err := b.fetch("GET", "http://kit.test/", nil, "document")
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("server saw %d requests, want probe + answer", len(seen))
	}
	if want := JSChallengeCookie + "=" + token; seen[1].cookie != want {
		t.Errorf("answer request Cookie = %q, want %q", seen[1].cookie, want)
	}
	if body != "<html><body>real page</body></html>" {
		t.Errorf("fetch returned %q, want the post-answer page", body)
	}
	// Both hops land in the net log, the first carrying the challenge.
	if len(b.NetLog) != 2 || b.NetLog[0].JSChallenge != token || b.NetLog[1].JSChallenge != "" {
		t.Errorf("netlog = %+v", b.NetLog)
	}
}

func TestJSChallengeIgnoredWhenIncapable(t *testing.T) {
	var requests int
	b := New(Options{Transport: transportFunc(func(req *http.Request) (*http.Response, error) {
		requests++
		return respond(200, map[string]string{JSChallengeHeader: "deadbeef"}, "<html><body>coming soon</body></html>"), nil
	})})
	if _, _, _, err := b.fetch("GET", "http://kit.test/", nil, "document"); err != nil {
		t.Fatal(err)
	}
	if requests != 1 {
		t.Errorf("JS-incapable profile answered the challenge (%d requests)", requests)
	}
}

func TestJSChallengeAnsweredOncePerFetch(t *testing.T) {
	// A server that rejects every answer must not trap the fetch in a loop.
	var requests int
	b := New(Options{Transport: transportFunc(func(req *http.Request) (*http.Response, error) {
		requests++
		return respond(200, map[string]string{JSChallengeHeader: "deadbeef"}, "<html><body>coming soon</body></html>"), nil
	})})
	b.SetProfile(Profile{JSCapable: true})
	if _, _, _, err := b.fetch("GET", "http://kit.test/", nil, "document"); err != nil {
		t.Fatal(err)
	}
	if requests != 2 {
		t.Errorf("challenge re-answered: %d requests, want 2", requests)
	}
}

func TestCookieSnapshotAndImport(t *testing.T) {
	b := New(Options{Transport: transportFunc(func(req *http.Request) (*http.Response, error) {
		return respond(200, map[string]string{"Set-Cookie": "rv=1; Path=/"}, "ok"), nil
	})})
	if snap := b.CookieSnapshot(); snap != nil {
		t.Errorf("fresh jar snapshot = %v, want nil", snap)
	}
	if _, _, _, err := b.fetch("GET", "http://kit.test/", nil, "document"); err != nil {
		t.Fatal(err)
	}
	snap := b.CookieSnapshot()
	if snap["rv"] != "1" {
		t.Fatalf("snapshot = %v", snap)
	}
	// The snapshot is a copy: importing it into a second browser must not
	// alias the first jar.
	b2 := New(Options{Transport: transportFunc(func(req *http.Request) (*http.Response, error) {
		return respond(200, nil, "ok"), nil
	})})
	b2.ImportCookies(snap)
	snap["rv"] = "tampered"
	if b2.cookies["rv"] != "1" {
		t.Errorf("imported jar aliases the snapshot map")
	}
}
