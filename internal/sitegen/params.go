package sitegen

// The paper's published corpus statistics, used as generation rates. Each
// constant cites where in the paper the number comes from. Rates are
// expressed against the denominators the paper uses (all crawled sites, or
// multi-page sites only).
const (
	// PaperSeedURLs is the OpenPhish seed count (Table 1).
	PaperSeedURLs = 56027
	// PaperFilteredSites is the confirmed-phishing count after vendor
	// filtering (Table 1).
	PaperFilteredSites = 51859
	// PaperCampaigns is the number of perceptual-hash campaigns
	// (Section 4.6).
	PaperCampaigns = 8472
	// PaperMultiPageSites use a multi-page data-stealing pattern
	// (Section 5.2.1).
	PaperMultiPageSites = 23446
)

// Multi-page page-count weights (Figure 8): of the 23,446 multi-page sites,
// how many used 2, 3, 4, 5 total pages. The paper reports "over 12,000 ...
// included 3 stages" reading >= 3; these weights satisfy that.
var pageCountWeights = map[int]int{
	2: 9500,
	3: 10000,
	4: 2900,
	5: 1046,
}

// Click-through (Section 5.3.1): 2,933 of the multi-stage sites, of which
// 2,713 on the first page and 220 internal.
const (
	paperClickThroughFirst = 2713
	paperClickThroughInner = 220
)

// CAPTCHA deployment (Section 5.3.2): 2,608 sites total; 1,856 Google
// reCAPTCHA, 640 hCaptcha, 34 custom text-based, 78 custom visual.
const (
	paperRecaptchaSites    = 1856
	paperHcaptchaSites     = 640
	paperCustomTextCaptcha = 34
	paperCustomVisCaptcha  = 78
)

// Keylogging tiers (Section 5.1.3): 18,745 sites monitor keydown; 642 of
// those issue a request immediately after entry; 75 of those include the
// entered data.
const (
	paperKeyloggerListen = 18745
	paperKeyloggerSend   = 642
	paperKeyloggerExfil  = 75
)

// Double login (Section 5.2.2): 400 sites, all multi-page.
const paperDoubleLogin = 400

// UX termination (Section 5.2.3), all against multi-page sites: 7,258
// redirect to 680 distinct legitimate domains; 5,403 end on an input-less
// terminal page, of which 966 success messages, 125 custom errors, 1,599
// HTTP errors, 176 fake phishing-awareness messages (41 campaigns), and the
// rest uncategorized.
const (
	paperTermRedirect  = 7258
	paperTermFinalPage = 5403
	paperTermSuccess   = 966
	paperTermCustomErr = 125
	paperTermHTTPErr   = 1599
	paperTermAwareness = 176
)

// Two-factor requests (Section 5.3.3): 8,893 sites contain a Code field;
// 1,032 of them label it as an OTP/SMS code.
const (
	paperCodeFieldSites = 8893
	paperOTPSites       = 1032
)

// UI obfuscation (Section 5.1.2): OCR was needed for 27% of sites; in 12%
// no standard submit was found and visual detection was required.
const (
	paperOCRRate          = 0.27
	paperVisualSubmitRate = 0.12
)

// Average fraction of campaigns that do NOT clone their brand's visual
// design (Table 3), with per-brand rates for the five audited brands.
const paperNonCloneDefault = 0.42

var paperNonCloneByBrand = map[string]float64{
	"Chase Personal Banking": 0.30,
	"Microsoft OneDrive":     0.58,
	"Facebook, Inc.":         0.84,
	"DHL Airways, Inc.":      0.12,
	"Netflix":                0.26,
}

// Top-10 brand weights (Table 7 counts). Brands not listed share the
// remainder uniformly.
var paperBrandCounts = map[string]int{
	"Office365":              5351,
	"DHL Airways, Inc.":      3069,
	"Facebook, Inc.":         2335,
	"WhatsApp":               2257,
	"Tencent":                1701,
	"Crypto/Wallet":          1687,
	"Outlook":                1437,
	"La Banque Postale":      1131,
	"Chase Personal Banking": 1071,
	"M & T Bank Corporation": 1015,
}

// Params configures corpus generation. The zero value is not useful; use
// DefaultParams (paper-scale) or ScaledParams.
type Params struct {
	// NumSites is the number of confirmed phishing sites to generate (the
	// paper's 51,859 at full scale).
	NumSites int
	// Seed drives all randomness.
	Seed int64
	// MinCampaignSize clamps the sampled campaign (kit deployment) size
	// from below, producing the clone-heavy feeds the triage funnel is
	// built for (e.g. 12 on a 240-site corpus gives ~20 campaigns of ~12
	// identical deployments each). 0 keeps the paper's heavy-tailed
	// distribution untouched. The final campaign may still be smaller: it
	// absorbs whatever remainder NumSites leaves.
	MinCampaignSize int
	// CloakRate is the site-weighted fraction of campaigns whose kits
	// cloak: their servers gate the phishing flow behind request checks
	// (user-agent, referrer, language, geo header, repeat-visit cookie,
	// JS-capability probe) and serve a benign parked decoy otherwise — the
	// blind spot Section 6 calls out. 0 (the default) generates no cloaked
	// kits and leaves the corpus byte-identical to earlier versions.
	CloakRate float64
}

// DefaultParams returns paper-scale parameters.
func DefaultParams(seed int64) Params {
	return Params{NumSites: PaperFilteredSites, Seed: seed}
}

// ScaledParams returns a corpus scaled to n sites with all rates intact.
func ScaledParams(n int, seed int64) Params {
	return Params{NumSites: n, Seed: seed}
}

// rate returns count/PaperFilteredSites as a probability.
func rate(count int) float64 {
	return float64(count) / float64(PaperFilteredSites)
}

// rateOfMulti returns count/PaperMultiPageSites.
func rateOfMulti(count int) float64 {
	return float64(count) / float64(PaperMultiPageSites)
}
