package journal

import (
	"fmt"
	"os"
	"path/filepath"
)

// Compact rewrites the journal, dropping every session record that a later
// record for the same URL supersedes (re-crawls across resumed runs) while
// keeping all stats records and original sequence numbers. The rewritten
// segments are numbered after the current ones and committed by a single
// atomic manifest replacement, so a crash at any point leaves either the
// old journal or the new one — an interrupted compaction's leftovers are
// swept on the next Open. Returns how many superseded records were
// dropped.
func (j *Journal) Compact() (dropped int, err error) {
	//phishvet:ignore locknoblock: compaction freezes the journal on purpose — a concurrent append into a segment being rewritten would corrupt the manifest swap
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, fmt.Errorf("journal: closed")
	}
	// The completed index already maps every URL to its latest sequence
	// number; a session record survives iff it is that record.
	keep := func(r Record) bool {
		if r.Kind != KindSession {
			return true
		}
		url := sessionURL(r.Payload)
		return url == "" || j.completed[url] == r.Seq
	}

	// Seal the active segment so the files being read are stable.
	if err := j.syncActiveLocked(); err != nil {
		return 0, err
	}
	oldSegments := j.segments
	nextNum := segmentNumber(oldSegments[len(oldSegments)-1].Name) + 1

	var (
		newSegments []segmentInfo
		out         *os.File
		outSize     int64
	)
	closeOut := func() error {
		if out == nil {
			return nil
		}
		if err := out.Sync(); err != nil {
			_ = out.Close() // the Sync failure is the error worth reporting
			return fmt.Errorf("journal: compact: %w", err)
		}
		err := out.Close()
		out = nil
		return err
	}
	openNext := func(firstSeq uint64) error {
		if err := closeOut(); err != nil {
			return err
		}
		name := segmentName(nextNum)
		nextNum++
		path := filepath.Join(j.dir, name)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("journal: compact: %w", err)
		}
		newSegments = append(newSegments, segmentInfo{Name: name, FirstSeq: firstSeq})
		out = f
		outSize = 0
		return nil
	}
	abort := func() {
		if out != nil {
			_ = out.Close() // aborting: the segment is being deleted anyway
		}
		for _, s := range newSegments {
			_ = os.Remove(filepath.Join(j.dir, s.Name)) // best-effort: aborted temporaries
		}
	}

	for _, seg := range oldSegments {
		err := scanSegmentFile(filepath.Join(j.dir, seg.Name), func(r Record) error {
			if !keep(r) {
				dropped++
				return nil
			}
			frame := encodeFrame(r)
			if out == nil || (outSize > 0 && outSize+int64(len(frame)) > int64(j.opts.SegmentBytes)) {
				if err := openNext(r.Seq); err != nil {
					return err
				}
			}
			if _, err := out.Write(frame); err != nil {
				return fmt.Errorf("journal: compact: %w", err)
			}
			outSize += int64(len(frame))
			return nil
		})
		if err != nil {
			abort()
			return 0, err
		}
	}
	// Even an all-dropped (or empty) journal needs one segment to stay
	// appendable.
	if out == nil {
		if err := openNext(j.nextSeq); err != nil {
			abort()
			return 0, err
		}
	}
	lastSize := outSize
	if err := closeOut(); err != nil {
		abort()
		return 0, err
	}
	if err := syncDir(j.dir); err != nil {
		abort()
		return 0, err
	}

	// Commit: swap the manifest, then retire the old files and writer
	// state. From here on the new segments are the journal.
	j.segments = newSegments
	if err := j.writeManifest(); err != nil {
		j.segments = oldSegments
		abort()
		return 0, err
	}
	oldActive := j.active
	last := newSegments[len(newSegments)-1]
	f, err := os.OpenFile(filepath.Join(j.dir, last.Name), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return dropped, fmt.Errorf("journal: compact: reopening active segment: %w", err)
	}
	j.active = f
	j.activeSize = lastSize
	j.unsynced = 0
	_ = oldActive.Close() // superseded handle; its segment file is deleted below
	for _, s := range oldSegments {
		// Best-effort: the manifest no longer references these, so a
		// leftover file is dead weight, not a correctness problem.
		_ = os.Remove(filepath.Join(j.dir, s.Name))
	}
	return dropped, nil
}
