package textclass

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := map[string][]string{
		"Enter your Email Address": {"enter", "your", "email", "address"},
		"SSN (last 4)":             {"ssn", "last"},
		"the a an and":             nil,
		"2FA code: OTP!":           {"2fa", "code", "otp"},
		"密码 password":              {"password"},
		"card-number_field":        {"card", "number", "field"},
		"12345":                    nil,
		"x":                        nil, // single letters dropped
		"id":                       {"id"},
	}
	for in, want := range cases {
		got := Tokenize(in)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) = %v, want %v", in, got, want)
		}
	}
}

// TestHasTokensAgreesWithTokenize pins the zero-alloc emptiness test to the
// reference tokenizer on every shape the suite knows about, plus the edge
// cases its scratch-buffer handling introduces (overflow-length tokens).
func TestHasTokensAgreesWithTokenize(t *testing.T) {
	long := strings.Repeat("a", 100)
	cases := []string{
		"Enter your Email Address", "SSN (last 4)", "the a an and",
		"2FA code: OTP!", "密码 password", "card-number_field", "12345",
		"x", "id", "", "   ", "!!!", "the", "THE", "a1b2",
		long, long + "9", "12345 " + long, "the 12345 ok",
		strings.Repeat("1", 100), "x y z", "Ab",
	}
	for _, in := range cases {
		want := len(Tokenize(in)) > 0
		if got := HasTokens(in); got != want {
			t.Errorf("HasTokens(%q) = %v, Tokenize found %v", in, got, Tokenize(in))
		}
	}
	if allocs := testing.AllocsPerRun(20, func() { HasTokens("Enter your Email Address 12345") }); allocs != 0 {
		t.Errorf("HasTokens allocates %.0f times, want 0", allocs)
	}
}

func toySamples() []Sample {
	var out []Sample
	add := func(label string, texts ...string) {
		for _, tx := range texts {
			out = append(out, Sample{Text: tx, Label: label})
		}
	}
	add("email",
		"email address", "enter your email", "email", "work email address",
		"registered email", "mail address", "email or phone email")
	add("password",
		"password", "enter password", "account password", "your password",
		"login password", "current password", "pwd secret password")
	add("card",
		"card number", "credit card number", "debit card", "16 digit card number",
		"cc number", "payment card number", "card details number")
	add("phone",
		"phone number", "mobile number", "telephone", "cell phone",
		"contact number", "mobile phone number", "daytime phone")
	return out
}

func TestTrainAndPredict(t *testing.T) {
	m, err := Train(toySamples(), TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"please enter your email address": "email",
		"account password":                "password",
		"credit card number":              "card",
		"your mobile phone number":        "phone",
	}
	for text, want := range cases {
		got, conf := m.Predict(text)
		if got != want {
			t.Errorf("Predict(%q) = %s (%.2f), want %s", text, got, conf, want)
		}
		if conf <= 0.5 {
			t.Errorf("Predict(%q) confidence %.2f too low", text, conf)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, TrainConfig{}); err == nil {
		t.Error("empty training set should fail")
	}
	oneClass := []Sample{{Text: "a b", Label: "x"}, {Text: "c d", Label: "x"}}
	if _, err := Train(oneClass, TrainConfig{}); err == nil {
		t.Error("single-class training should fail")
	}
}

func TestPredictThresholdReject(t *testing.T) {
	m, err := Train(toySamples(), TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Text with no vocabulary overlap should be low-confidence.
	label, conf := m.PredictThreshold("zqx wvu jkl", 0.8, "unknown")
	if label != "unknown" {
		t.Errorf("gibberish classified as %s with conf %.2f", label, conf)
	}
	// In-vocabulary text must survive the threshold.
	label, _ = m.PredictThreshold("enter your email address", 0.8, "unknown")
	if label != "email" {
		t.Errorf("confident sample rejected: %s", label)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	m, err := Train(toySamples(), TrainConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range []string{"email", "card number", "", "unrelated words entirely"} {
		probs := m.Probabilities(text)
		sum := 0.0
		for _, p := range probs {
			sum += p
			if p < 0 || p > 1 {
				t.Errorf("probability out of range: %v", probs)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("probabilities sum to %f for %q", sum, text)
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	m1, _ := Train(toySamples(), TrainConfig{Seed: 7})
	m2, _ := Train(toySamples(), TrainConfig{Seed: 7})
	if !reflect.DeepEqual(m1.W, m2.W) {
		t.Error("same seed should produce identical weights")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	m, err := Train(toySamples(), TrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range []string{"email address", "card number", "phone"} {
		l1, c1 := m.Predict(text)
		l2, c2 := m2.Predict(text)
		if l1 != l2 || math.Abs(c1-c2) > 1e-12 {
			t.Errorf("round trip changed prediction for %q: %s/%f vs %s/%f", text, l1, c1, l2, c2)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := Unmarshal([]byte("{}")); err == nil {
		t.Error("empty model should fail")
	}
}

func TestActiveLearningLoop(t *testing.T) {
	// Seed model knows email vs password; SSN is novel.
	al, err := NewActiveLearner(toySamples(), 0.8, "unknown", TrainConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	novel := "social security number ssn"
	label, _ := al.Classify(novel)
	if label != "unknown" {
		t.Fatalf("novel sample classified as %s before teaching", label)
	}
	if len(al.Pending()) != 1 {
		t.Fatalf("pending queue = %v", al.Pending())
	}
	// Oracle labels it (several variants so the class is learnable).
	al.Teach(map[string]string{novel: "ssn"})
	if len(al.Pending()) != 0 {
		t.Error("taught sample still pending")
	}
	for _, v := range []string{"ssn", "social security", "last 4 ssn number", "your social security number"} {
		al.labelled = append(al.labelled, Sample{Text: v, Label: "ssn"})
	}
	if err := al.Retrain(); err != nil {
		t.Fatal(err)
	}
	label, conf := al.Model.Predict("enter your social security number")
	if label != "ssn" {
		t.Errorf("after retraining: %s (%.2f), want ssn", label, conf)
	}
	if al.TrainingSetSize() <= len(toySamples()) {
		t.Error("training set did not grow")
	}
}

func TestTeachOnlyRemovesTaught(t *testing.T) {
	al, err := NewActiveLearner(toySamples(), 0.99, "unknown", TrainConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	al.Classify("zzz yyy")
	al.Classify("qqq www")
	al.Teach(map[string]string{"zzz yyy": "email"})
	if got := al.Pending(); len(got) != 1 || got[0] != "qqq www" {
		t.Errorf("pending = %v", got)
	}
}

func TestHeldOutAccuracy(t *testing.T) {
	// Larger synthetic task: the model must reach high held-out accuracy on
	// cleanly separable classes, mirroring Table 6's ~0.90 average F1.
	var train, test []Sample
	vocab := map[string][]string{
		"email":    {"email", "mail", "address", "inbox"},
		"password": {"password", "secret", "pass", "pwd"},
		"card":     {"card", "credit", "debit", "payment"},
		"phone":    {"phone", "mobile", "cell", "telephone"},
		"name":     {"name", "first", "last", "surname"},
	}
	i := 0
	for label, words := range vocab {
		for a := 0; a < len(words); a++ {
			for b := 0; b < len(words); b++ {
				s := Sample{Text: words[a] + " " + words[b] + " field", Label: label}
				if i%4 == 0 {
					test = append(test, s)
				} else {
					train = append(train, s)
				}
				i++
			}
		}
	}
	m, err := Train(train, TrainConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range test {
		if got, _ := m.Predict(s.Text); got == s.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(len(test))
	if acc < 0.9 {
		t.Errorf("held-out accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestStopwordAndAcronymHandling(t *testing.T) {
	toks := Tokenize("The SSN of the user is required")
	joined := strings.Join(toks, " ")
	if !strings.Contains(joined, "ssn") {
		t.Errorf("acronym lost: %v", toks)
	}
	if strings.Contains(joined, "the") || strings.Contains(joined, "of ") {
		t.Errorf("stopwords kept: %v", toks)
	}
}

func BenchmarkPredict(b *testing.B) {
	m, err := Train(toySamples(), TrainConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict("please enter your email address to continue")
	}
}

func BenchmarkTrain(b *testing.B) {
	samples := toySamples()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(samples, TrainConfig{Seed: 1, Epochs: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
