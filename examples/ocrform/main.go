// Ocrform reproduces the Figure 3 evasion and its defeat: a phishing page
// whose field labels exist only inside a background image, with anonymous
// input boxes positioned on top. DOM analysis sees nothing useful; the
// crawler falls back to OCR on the rendered page, recovers the labels, and
// classifies and fills the fields anyway.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/browser"
	"repro/internal/crawler"
	"repro/internal/dom"
	"repro/internal/fielddata"
	"repro/internal/layout"
	"repro/internal/phishserver"
	"repro/internal/raster"
	"repro/internal/site"
)

func main() {
	// Build the page: spacer spans reserve room for labels that will live
	// only in the background image.
	formHTML := `<form action="/">
<div><span style="width:170px"> </span><input name="fld1"></div>
<div><span style="width:170px"> </span><input name="fld2"></div>
<div><span style="width:170px"> </span><input name="fld3"></div>
<button>Verify</button></form>`
	wrap := func(bg string) string {
		return `<html><body><div id="w" style="background-image:url(` + bg + `)">` + formHTML + `</div></body></html>`
	}
	// Compute the input positions, then paint the labels beside them.
	probe := dom.Parse(wrap("/x.pxi"))
	lay := layout.Compute(probe, browser.ViewportWidth)
	wrapBox, _ := lay.Box(probe.ElementByID("w"))
	labels := []string{"SOCIAL SECURITY NUMBER", "CARD NUMBER", "CVV SECURITY CODE"}
	bg := raster.New(wrapBox.W, wrapBox.H, raster.White)
	for i, in := range probe.ElementsByTag("input") {
		box, _ := lay.Box(in)
		x := box.X - wrapBox.X - raster.StringWidth(labels[i]) - 10
		bg.DrawString(labels[i], x, box.Y-wrapBox.Y+3, raster.Black)
	}

	s := &site.Site{
		ID: "fig3", Host: "usaa-secure.test",
		Pages: []*site.Page{
			{Path: "/", HTML: wrap("/bg.pxi"), Next: "/done", Mode: site.NextRedirect},
			{Path: "/done", HTML: "<html><body><div>Thank you. Your information was received.</div></body></html>"},
		},
		Images: map[string][]byte{"/bg.pxi": raster.Encode(bg)},
	}
	fmt.Println("The page's DOM contains three anonymous inputs and NO label text:")
	fmt.Println("  " + strings.ReplaceAll(formHTML, "\n", "\n  "))
	fmt.Println()

	classifier, err := fielddata.TrainDefault(1)
	if err != nil {
		log.Fatal(err)
	}
	reg := phishserver.NewRegistry()
	reg.AddSite(s)
	c := &crawler.Crawler{
		Classifier: classifier,
		NewBrowser: func() *browser.Browser {
			return browser.New(browser.Options{Transport: phishserver.Transport{Registry: reg}})
		},
		FakerSeed: 5,
	}
	res := c.Crawl(s.SeedURL())
	for _, f := range res.Pages[0].Fields {
		fmt.Printf("OCR read %-28q -> classified %-8s (conf %.2f) -> forged %q\n",
			f.Description, f.Label, f.Confidence, f.Value)
	}
	fmt.Printf("\nOutcome: %s (%d pages) — the Figure 3 evasion did not stop the crawler.\n",
		res.Outcome, len(res.Pages))
}
