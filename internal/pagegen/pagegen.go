// Package pagegen generates the annotated synthetic web-page screenshots on
// which the object detector is trained and evaluated, mirroring Section
// 5.3.2 of the paper: "we use a large collection of brand logos ... to
// automatically generate a set of web pages that contain a logo, a CAPTCHA
// challenge image, an input box and a submit button", with known bounding
// boxes for every element (Figure 13). The paper uses 10,000 pages for
// training, 1,000 for validation and 2,000 for test; the same protocol is
// reproduced by the Table 5 bench.
package pagegen

import (
	"math/rand"

	"repro/internal/brands"
	"repro/internal/captcha"
	"repro/internal/raster"
	"repro/internal/vision"
)

// Config controls page generation.
type Config struct {
	// PageW/PageH bound the generated screenshot size.
	PageW, PageH int
	// CaptchaProb is the probability a page carries a CAPTCHA (always
	// annotated when present). Default 0.7.
	CaptchaProb float64
	// NoiseTextLines adds this many unannotated distractor text lines.
	NoiseTextLines int
}

func (c Config) withDefaults() Config {
	if c.PageW <= 0 {
		c.PageW = 420
	}
	if c.PageH <= 0 {
		c.PageH = 340
	}
	if c.CaptchaProb == 0 {
		c.CaptchaProb = 0.7
	}
	if c.NoiseTextLines == 0 {
		c.NoiseTextLines = 3
	}
	return c
}

var noisePhrases = []string{
	"please verify your details", "secure connection", "terms of service",
	"all rights reserved", "need help signing in", "remember this device",
	"privacy policy", "contact support", "update your information",
}

var buttonLabels = []string{
	"Submit", "Next", "Continue", "Verify", "Sign in", "Log in", "Confirm",
	"Proceed", "Validate",
}

// Generate produces one annotated page. The returned annotations cover the
// logo, the button, and the CAPTCHA when present, exactly the classes of
// Table 5.
func Generate(rng *rand.Rand, cfg Config) vision.Example {
	cfg = cfg.withDefaults()
	img := raster.New(cfg.PageW, cfg.PageH, raster.White)
	var anns []vision.Annotation

	// Vertical slot allocator prevents overlap.
	y := 8
	nextSlot := func(h int) int {
		slot := y
		y += h + 10 + rng.Intn(12)
		return slot
	}

	// Logo at the top, random x.
	brand := brands.All()[rng.Intn(brands.Count())]
	logo := brand.DrawLogo(rng)
	lx := 8 + rng.Intn(maxInt(1, cfg.PageW-logo.W-16))
	ly := nextSlot(logo.H)
	img.Blit(logo, lx, ly)
	anns = append(anns, vision.Annotation{Class: vision.ClassLogo, Box: raster.R(lx, ly, logo.W, logo.H)})

	// A distractor text line.
	for i := 0; i < cfg.NoiseTextLines; i++ {
		phrase := noisePhrases[rng.Intn(len(noisePhrases))]
		tx := 8 + rng.Intn(40)
		ty := nextSlot(raster.GlyphH)
		img.DrawString(phrase, tx, ty, raster.Black)
	}

	// An input box (unannotated: not a Table 5 class, acts as a hard
	// negative for the button detector).
	ibW := 150 + rng.Intn(60)
	ibY := nextSlot(16)
	img.Outline(raster.R(12+rng.Intn(30), ibY, ibW, 14), raster.Gray)

	// Optional CAPTCHA.
	if rng.Float64() < cfg.CaptchaProb {
		kind := captcha.AllKinds()[rng.Intn(int(captcha.NumKinds))]
		cimg, _ := captcha.Render(kind, rng)
		cx := 8 + rng.Intn(maxInt(1, cfg.PageW-cimg.W-16))
		cy := nextSlot(cimg.H)
		if cy+cimg.H < cfg.PageH-40 {
			img.Blit(cimg, cx, cy)
			anns = append(anns, vision.Annotation{Class: kind.String(), Box: raster.R(cx, cy, cimg.W, cimg.H)})
		}
	}

	// Submit button.
	label := buttonLabels[rng.Intn(len(buttonLabels))]
	bw := raster.StringWidth(label) + 18
	bh := 16 + rng.Intn(4)
	bx := 12 + rng.Intn(maxInt(1, cfg.PageW-bw-24))
	by := nextSlot(bh)
	if by+bh >= cfg.PageH {
		by = cfg.PageH - bh - 4
	}
	bbox := raster.R(bx, by, bw, bh)
	img.Fill(bbox, raster.LightGray)
	img.Outline(bbox, raster.Gray)
	img.DrawString(label, bx+9, by+(bh-raster.GlyphH)/2, raster.Black)
	anns = append(anns, vision.Annotation{Class: vision.ClassButton, Box: bbox})

	return vision.Example{Image: img, Annotations: anns}
}

// GenerateSet produces n annotated pages from a fixed seed.
func GenerateSet(n int, seed int64, cfg Config) []vision.Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]vision.Example, n)
	for i := range out {
		out[i] = Generate(rng, cfg)
	}
	return out
}

// CaptchaCrops returns k rendered CAPTCHA images per kind, used to build the
// pHash exemplar set for the visual-CAPTCHA verification heuristic.
func CaptchaCrops(kind captcha.Kind, k int, seed int64) []*raster.Image {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*raster.Image, k)
	for i := range out {
		img, _ := captcha.Render(kind, rng)
		out[i] = img
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
