// Package suppression exercises the ignore-comment contract: a justified
// ignore suppresses its finding, bare and unknown-rule ignores are
// rejected (and suppress nothing), and stale ignores are reported.
package suppression

import "time"

// A justified ignore on the line above suppresses the finding below it.
//
//phishvet:ignore wallclock: fixture demonstrates a sanctioned suppression
var sanctioned = time.Now

//phishvet:ignore wallclock // want "bare //phishvet:ignore"
var bare = time.Now // want "time.Now reads the wall clock"

//phishvet:ignore notarule: no such rule exists // want "names unknown rule"
var unknown = time.Now // want "time.Now reads the wall clock"

//phishvet:ignore wallclock: nothing here reads the clock // want "suppresses nothing"
var stale = 1
