package sitegen

import (
	"math"
	"strings"
	"testing"

	"repro/internal/brands"
	"repro/internal/captcha"
	"repro/internal/dom"
	"repro/internal/fieldspec"
	"repro/internal/site"
	"repro/internal/visualphish"
)

const testScale = 4000

var testCorpus = Generate(ScaledParams(testScale, 42))

func TestCorpusSize(t *testing.T) {
	if len(testCorpus.Sites) != testScale {
		t.Fatalf("generated %d sites, want %d", len(testCorpus.Sites), testScale)
	}
	if testCorpus.Campaigns == 0 {
		t.Fatal("no campaigns")
	}
	// Campaign count proportional to the paper's 8,472/51,859 ratio, very
	// loosely (size distribution is heavy-tailed).
	expect := float64(testScale) * float64(PaperCampaigns) / float64(PaperFilteredSites)
	if float64(testCorpus.Campaigns) < expect*0.4 || float64(testCorpus.Campaigns) > expect*2.5 {
		t.Errorf("campaigns = %d, expected near %.0f", testCorpus.Campaigns, expect)
	}
}

func TestStructuralValidity(t *testing.T) {
	hosts := map[string]bool{}
	for _, s := range testCorpus.Sites {
		if s.Host == "" || hosts[s.Host] {
			t.Fatalf("site %s: empty or duplicate host %q", s.ID, s.Host)
		}
		hosts[s.Host] = true
		if len(s.Pages) == 0 {
			t.Fatalf("site %s has no pages", s.ID)
		}
		if s.Pages[0].Path != "/" {
			t.Errorf("site %s first page path %q", s.ID, s.Pages[0].Path)
		}
		if s.Truth.NumPages != len(s.Pages) {
			t.Errorf("site %s: truth pages %d != %d", s.ID, s.Truth.NumPages, len(s.Pages))
		}
		if _, ok := brands.ByName(s.Brand); !ok {
			t.Errorf("site %s references unknown brand %q", s.ID, s.Brand)
		}
		for _, p := range s.Pages {
			doc := dom.Parse(p.HTML)
			if doc.Count() < 3 {
				t.Errorf("site %s page %s: degenerate HTML", s.ID, p.Path)
			}
			// Every referenced internal image resource must exist.
			for _, img := range doc.ElementsByTag("img") {
				src := img.AttrOr("src", "")
				if strings.HasPrefix(src, "/") {
					if _, ok := s.Images[src]; !ok {
						t.Errorf("site %s page %s: missing image %s", s.ID, p.Path, src)
					}
				}
			}
			// Next targets must resolve.
			if p.Next != "" && p.Mode != site.NextExternal {
				if s.PageAt(p.Next) == nil {
					t.Errorf("site %s page %s: next %q unresolvable", s.ID, p.Path, p.Next)
				}
			}
		}
	}
}

func ratio(n int) float64 { return float64(n) / float64(testScale) }

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s rate = %.4f, want %.4f +/- %.4f", name, got, want, tol)
	}
}

func TestPatternRatesMatchPaper(t *testing.T) {
	var multi, ctFirst, captchaN, recap, hcap, customText, customVis int
	var keylog1, keylog3, doubleLogin, twoFA, ocr, formless, codeSites int
	termCounts := map[string]int{}
	pageHist := map[int]int{}
	for _, s := range testCorpus.Sites {
		tr := s.Truth
		if tr.MultiPage {
			multi++
			pageHist[tr.NumPages]++
			termCounts[tr.Termination]++
		}
		if tr.ClickThroughFirst {
			ctFirst++
		}
		if tr.HasCaptcha {
			captchaN++
			switch {
			case tr.CaptchaProvider == captcha.ProviderRecaptcha:
				recap++
			case tr.CaptchaProvider == captcha.ProviderHcaptcha:
				hcap++
			case tr.CaptchaKind.IsText():
				customText++
			default:
				customVis++
			}
		}
		if tr.KeyloggerTier >= 1 {
			keylog1++
		}
		if tr.KeyloggerTier == 3 {
			keylog3++
		}
		if tr.DoubleLogin {
			doubleLogin++
		}
		if tr.TwoFactor {
			twoFA++
		}
		if tr.OCRObfuscated {
			ocr++
		}
		if tr.NoStandardSubmit {
			formless++
		}
		for _, pageFields := range tr.FieldsPerPage {
			for _, f := range pageFields {
				if f == fieldspec.Code {
					codeSites++
					goto next
				}
			}
		}
	next:
	}
	within(t, "multi-page", ratio(multi), rate(PaperMultiPageSites), 0.06)
	within(t, "click-through-first", ratio(ctFirst), rate(paperClickThroughFirst), 0.03)
	within(t, "captcha", ratio(captchaN), rate(paperRecaptchaSites+paperHcaptchaSites+paperCustomTextCaptcha+paperCustomVisCaptcha), 0.035)
	within(t, "keylogger-listen", ratio(keylog1), rate(paperKeyloggerListen), 0.08)
	within(t, "ocr", ratio(ocr), paperOCRRate, 0.08)
	within(t, "formless", ratio(formless), paperVisualSubmitRate, 0.06)
	within(t, "code-fields", ratio(codeSites), rate(paperCodeFieldSites), 0.06)
	within(t, "2fa", ratio(twoFA), rate(paperOTPSites), 0.025)
	if recap < hcap {
		t.Errorf("reCAPTCHA (%d) should outnumber hCaptcha (%d)", recap, hcap)
	}
	// Terminations: redirect should dominate within multi-page sites.
	if multi > 0 {
		redirRate := float64(termCounts[site.TermRedirectLegit]) / float64(multi)
		within(t, "term-redirect|multi", redirRate, rateOfMulti(paperTermRedirect), 0.1)
	}
	// Page histogram: 2 and 3 dominate, 5 is rare.
	if pageHist[5] > pageHist[2] || pageHist[5] > pageHist[3] {
		t.Errorf("page histogram shape wrong: %v", pageHist)
	}
	_ = keylog3
	_ = doubleLogin
}

func TestBrandDistribution(t *testing.T) {
	counts := map[string]int{}
	for _, s := range testCorpus.Sites {
		counts[s.Brand]++
	}
	// Office365 should be the most-targeted brand (Table 7).
	top, topN := "", 0
	for b, n := range counts {
		if n > topN {
			top, topN = b, n
		}
	}
	if top != "Office365" {
		t.Errorf("top brand = %s (%d), want Office365 (have %d)", top, topN, counts["Office365"])
	}
	// Every Table 7 brand should appear.
	for name := range map[string]int{"DHL Airways, Inc.": 0, "Netflix": 0, "Facebook, Inc.": 0} {
		if counts[name] == 0 {
			t.Errorf("brand %s absent from corpus", name)
		}
	}
}

func TestCampaignDesignCoherence(t *testing.T) {
	// Sites of one campaign share brand and truth structure.
	byCamp := map[string][]*site.Site{}
	for _, s := range testCorpus.Sites {
		byCamp[s.CampaignID] = append(byCamp[s.CampaignID], s)
	}
	checked := 0
	for _, group := range byCamp {
		if len(group) < 2 {
			continue
		}
		first := group[0]
		for _, other := range group[1:] {
			if other.Brand != first.Brand {
				t.Fatalf("campaign %s mixes brands", first.CampaignID)
			}
			if other.Truth.MultiPage != first.Truth.MultiPage ||
				other.Truth.HasCaptcha != first.Truth.HasCaptcha ||
				other.Truth.Termination != first.Truth.Termination {
				t.Fatalf("campaign %s mixes structures", first.CampaignID)
			}
			if other.Host == first.Host {
				t.Fatalf("campaign %s duplicate host", first.CampaignID)
			}
		}
		checked++
		if checked > 50 {
			break
		}
	}
	if checked == 0 {
		t.Error("no multi-site campaigns to check")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(ScaledParams(50, 7))
	b := Generate(ScaledParams(50, 7))
	if len(a.Sites) != len(b.Sites) {
		t.Fatal("sizes differ")
	}
	for i := range a.Sites {
		if a.Sites[i].Host != b.Sites[i].Host ||
			a.Sites[i].Pages[0].HTML != b.Sites[i].Pages[0].HTML {
			t.Fatal("same seed produced different corpora")
		}
	}
	c := Generate(ScaledParams(50, 8))
	if a.Sites[0].Pages[0].HTML == c.Sites[0].Pages[0].HTML {
		t.Error("different seeds produced identical first page")
	}
}

func TestTerminalPagesHaveNoInputs(t *testing.T) {
	for _, s := range testCorpus.Sites {
		tr := s.Truth
		if tr.Termination == site.TermSuccess || tr.Termination == site.TermAwareness || tr.Termination == site.TermCustomError {
			last := s.Pages[len(s.Pages)-1]
			doc := dom.Parse(last.HTML)
			if len(doc.ElementsByTag("input", "select")) != 0 {
				t.Fatalf("site %s terminal page has inputs", s.ID)
			}
		}
	}
}

func TestCloneCalibration(t *testing.T) {
	// Rendering a cloned first page must match its brand in the
	// visual-similarity gallery; a generic page must not. This is the
	// calibration the Table 3 measurement rests on.
	g := visualphish.NewGallery()
	for _, b := range brands.All() {
		g.AddCropped(b.Name, b.LegitScreenshot())
	}
	var cloneHits, cloneTotal, genericHits, genericTotal int
	for _, s := range testCorpus.Sites {
		if cloneTotal >= 40 && genericTotal >= 40 {
			break
		}
		firstDataIsClone := s.Truth.Clones
		if s.Truth.ClickThroughFirst || s.Truth.HasCaptcha {
			continue // landing page is not the data page in these flows
		}
		shot := RenderLanding(s)
		if shot == nil {
			continue
		}
		match, _ := g.MatchEmbedding(visualphish.EmbedCropped(shot))
		if firstDataIsClone {
			cloneTotal++
			if match == s.Brand {
				cloneHits++
			}
		} else {
			genericTotal++
			if match == s.Brand {
				genericHits++
			}
		}
	}
	if cloneTotal == 0 || genericTotal == 0 {
		t.Fatalf("insufficient samples: clone %d generic %d", cloneTotal, genericTotal)
	}
	cloneRate := float64(cloneHits) / float64(cloneTotal)
	genericRate := float64(genericHits) / float64(genericTotal)
	if cloneRate < 0.6 {
		t.Errorf("clone pages matched brand only %.0f%% (%d/%d)", cloneRate*100, cloneHits, cloneTotal)
	}
	if genericRate > 0.3 {
		t.Errorf("generic pages matched brand %.0f%% (%d/%d) — too clone-like", genericRate*100, genericHits, genericTotal)
	}
}
