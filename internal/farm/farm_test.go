package farm

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/browser"
	"repro/internal/crawler"
	"repro/internal/fielddata"
	"repro/internal/metrics"
	"repro/internal/phishserver"
	"repro/internal/site"
	"repro/internal/textclass"
)

func quickSite(host string) *site.Site {
	return &site.Site{
		ID: host, Host: host,
		Pages: []*site.Page{
			{Path: "/", HTML: `<html><body><form action="/"><div><label>Email</label><input name="e"></div><button>Go</button></form></body></html>`,
				Next: "/done", Mode: site.NextRedirect},
			{Path: "/done", HTML: "<html><body><div>done</div></body></html>"},
		},
		Images: map[string][]byte{},
	}
}

var classifierOnce sync.Once
var sharedClassifier *textclass.Model

func testCrawler(reg *phishserver.Registry, browsers *int64) *crawler.Crawler {
	classifierOnce.Do(func() {
		var err error
		sharedClassifier, err = fielddata.TrainDefault(1)
		if err != nil {
			panic(err)
		}
	})
	return &crawler.Crawler{
		Classifier: sharedClassifier,
		NewBrowser: func() *browser.Browser {
			if browsers != nil {
				atomic.AddInt64(browsers, 1)
			}
			return browser.New(browser.Options{Transport: phishserver.Transport{Registry: reg}})
		},
		FakerSeed: 1,
	}
}

func TestRunCrawlsAll(t *testing.T) {
	reg := phishserver.NewRegistry()
	var urls []string
	for i := 0; i < 40; i++ {
		s := quickSite(fmtHost(i))
		reg.AddSite(s)
		urls = append(urls, s.SeedURL())
	}
	var browsers int64
	logs, stats := Run(Config{Workers: 8, Crawler: testCrawler(reg, &browsers)}, urls)
	if len(logs) != 40 {
		t.Fatalf("got %d logs", len(logs))
	}
	for i, l := range logs {
		if l == nil {
			t.Fatalf("log %d nil", i)
		}
		if l.SeedURL != urls[i] {
			t.Fatal("logs out of input order")
		}
		if len(l.Pages) != 2 {
			t.Errorf("site %d crawled %d pages (outcome %s)", i, len(l.Pages), l.Outcome)
		}
	}
	// Fresh browser profile per session (the clean-container property).
	if browsers != 40 {
		t.Errorf("browsers created = %d, want 40", browsers)
	}
	if stats.Sites != 40 || stats.Elapsed <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.SitesPerDay() <= 0 {
		t.Error("throughput not computed")
	}
	if stats.Outcomes[crawler.OutcomeCompleted] == 0 {
		t.Errorf("outcomes = %v", stats.Outcomes)
	}
	if stats.Outcomes[OutcomeLost] != 0 {
		t.Errorf("lost sessions counted on a clean run: %v", stats.Outcomes)
	}
	total := 0
	for _, n := range stats.Outcomes {
		total += n
	}
	if total != stats.Sites {
		t.Errorf("outcomes sum to %d, want %d", total, stats.Sites)
	}
	// The shared timing collector saw every worker: one render per page.
	var render metrics.StageStat
	for _, s := range stats.Stages {
		if s.Stage == "render" {
			render = s
		}
	}
	if render.Count < int64(stats.Sites) || render.Total <= 0 {
		t.Errorf("render stage = %+v, want >= %d observations", render, stats.Sites)
	}
}

// TestRunDeterministicAcrossWorkerCountsPooled tightens the worker-count
// pin to byte identity under session pooling: with the recycling pool
// installed (the default in core), 1 worker and 30 workers must produce
// exports that marshal to the same bytes as each other AND as an unpooled
// serial run — pool recycling may never leak one session's state into the
// next, no matter which worker's pool a session graph came from.
func TestRunDeterministicAcrossWorkerCountsPooled(t *testing.T) {
	reg := phishserver.NewRegistry()
	var urls []string
	for i := 0; i < 30; i++ {
		s := quickSite(fmtHost(230 + i))
		reg.AddSite(s)
		urls = append(urls, s.SeedURL())
	}
	pooled := func() *crawler.Crawler {
		c := testCrawler(reg, nil)
		c.Pool = crawler.NewSessionPool()
		return c
	}
	unpooled, _ := Run(Config{Workers: 1, Crawler: testCrawler(reg, nil)}, urls)
	serial, _ := Run(Config{Workers: 1, Crawler: pooled()}, urls)
	wide, _ := Run(Config{Workers: 30, Crawler: pooled()}, urls)
	if len(serial) != len(urls) || len(wide) != len(urls) || len(unpooled) != len(urls) {
		t.Fatalf("log counts: unpooled %d, serial %d, wide %d, want %d", len(unpooled), len(serial), len(wide), len(urls))
	}
	for i := range serial {
		want, err := json.Marshal(unpooled[i])
		if err != nil {
			t.Fatal(err)
		}
		a, err := json.Marshal(serial[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(wide[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(want) {
			t.Errorf("site %d: pooled serial export diverges from unpooled", i)
		}
		if string(b) != string(want) {
			t.Errorf("site %d: pooled 30-worker export diverges from unpooled", i)
		}
	}
}

// TestRunDeterministicAcrossWorkerCounts pins the farm's reproducibility
// property: because faker seeds derive from the job index, not the worker,
// the same URL list crawled with 1 worker and with 30 produces identical
// session logs — same outcomes, same pages, same forged field values.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	reg := phishserver.NewRegistry()
	var urls []string
	for i := 0; i < 30; i++ {
		s := quickSite(fmtHost(200 + i))
		reg.AddSite(s)
		urls = append(urls, s.SeedURL())
	}
	serial, _ := Run(Config{Workers: 1, Crawler: testCrawler(reg, nil)}, urls)
	wide, _ := Run(Config{Workers: 30, Crawler: testCrawler(reg, nil)}, urls)
	if len(serial) != len(wide) {
		t.Fatalf("log counts differ: %d vs %d", len(serial), len(wide))
	}
	for i := range serial {
		a, b := serial[i], wide[i]
		if a == nil || b == nil {
			t.Fatalf("site %d: nil log", i)
		}
		if a.Outcome != b.Outcome {
			t.Errorf("site %d: outcome %q vs %q", i, a.Outcome, b.Outcome)
		}
		if len(a.Pages) != len(b.Pages) {
			t.Errorf("site %d: %d pages vs %d", i, len(a.Pages), len(b.Pages))
			continue
		}
		for pi := range a.Pages {
			pa, pb := a.Pages[pi], b.Pages[pi]
			if pa.SubmitMethod != pb.SubmitMethod {
				t.Errorf("site %d page %d: submit %q vs %q", i, pi, pa.SubmitMethod, pb.SubmitMethod)
			}
			if len(pa.Fields) != len(pb.Fields) {
				t.Errorf("site %d page %d: %d fields vs %d", i, pi, len(pa.Fields), len(pb.Fields))
				continue
			}
			for fi := range pa.Fields {
				if pa.Fields[fi].Value != pb.Fields[fi].Value {
					t.Errorf("site %d page %d field %d: forged %q vs %q",
						i, pi, fi, pa.Fields[fi].Value, pb.Fields[fi].Value)
				}
				if pa.Fields[fi].Label != pb.Fields[fi].Label {
					t.Errorf("site %d page %d field %d: label %q vs %q",
						i, pi, fi, pa.Fields[fi].Label, pb.Fields[fi].Label)
				}
			}
		}
	}
}

func TestRunDefaultWorkers(t *testing.T) {
	reg := phishserver.NewRegistry()
	s := quickSite("one.test")
	reg.AddSite(s)
	logs, _ := Run(Config{Crawler: testCrawler(reg, nil)}, []string{s.SeedURL()})
	if len(logs) != 1 || logs[0] == nil {
		t.Fatal("single-site run failed")
	}
}

func TestRunEmpty(t *testing.T) {
	reg := phishserver.NewRegistry()
	logs, stats := Run(Config{Crawler: testCrawler(reg, nil)}, nil)
	if len(logs) != 0 || stats.Sites != 0 {
		t.Error("empty run should be trivial")
	}
}

func TestDistinctFakerSeedsAcrossSessions(t *testing.T) {
	reg := phishserver.NewRegistry()
	var urls []string
	for i := 0; i < 6; i++ {
		s := quickSite(fmtHost(100 + i))
		reg.AddSite(s)
		urls = append(urls, s.SeedURL())
	}
	logs, _ := Run(Config{Workers: 2, Crawler: testCrawler(reg, nil)}, urls)
	values := map[string]int{}
	for _, l := range logs {
		for _, p := range l.Pages {
			for _, f := range p.Fields {
				if f.Value != "" {
					values[f.Value]++
				}
			}
		}
	}
	if len(values) < 4 {
		t.Errorf("forged values not diverse across sessions: %v", values)
	}
}

func fmtHost(i int) string {
	const digits = "0123456789"
	return "s" + string(digits[i/100%10]) + string(digits[i/10%10]) + string(digits[i%10]) + ".test"
}

func BenchmarkFarmThroughput(b *testing.B) {
	reg := phishserver.NewRegistry()
	var urls []string
	for i := 0; i < 64; i++ {
		s := quickSite(fmtHost(i))
		reg.AddSite(s)
		urls = append(urls, s.SeedURL())
	}
	c := testCrawler(reg, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats := Run(Config{Workers: 30, Crawler: c}, urls)
		b.ReportMetric(stats.SitesPerDay(), "sites/day")
	}
}
