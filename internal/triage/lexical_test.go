package triage

import (
	"math"
	"sort"
	"testing"
)

func TestExtractFeatureSignals(t *testing.T) {
	brands := []string{"chase", "paypal"}
	tests := []struct {
		name  string
		url   string
		check func(t *testing.T, f Features)
	}{
		{
			name: "brand bait in a non-brand host",
			url:  "http://login.chase-3-2.test/signin",
			check: func(t *testing.T, f Features) {
				if f.BrandInHost != 1 {
					t.Errorf("BrandInHost = %g, want 1", f.BrandInHost)
				}
				if f.Tokens == 0 {
					t.Errorf("Tokens = 0, want > 0 (login + signin)")
				}
				if f.Hyphens == 0 {
					t.Errorf("Hyphens = 0, want > 0")
				}
			},
		},
		{
			name: "raw IP host",
			url:  "http://192.168.10.14/verify",
			check: func(t *testing.T, f Features) {
				if f.IPHost != 1 {
					t.Errorf("IPHost = %g, want 1", f.IPHost)
				}
			},
		},
		{
			name: "deep subdomains and path",
			url:  "http://a.b.c.d.example.test/x/y/z/w/v",
			check: func(t *testing.T, f Features) {
				if f.Subdomains == 0 {
					t.Errorf("Subdomains = 0, want > 0")
				}
				if f.PathDepth != 1 {
					t.Errorf("PathDepth = %g, want 1 (5 segments, cap at 4)", f.PathDepth)
				}
			},
		},
		{
			name: "plain benign-looking URL",
			url:  "http://example.test/",
			check: func(t *testing.T, f Features) {
				if f.BrandInHost != 0 || f.IPHost != 0 || f.Tokens != 0 {
					t.Errorf("benign URL tripped signals: %+v", f)
				}
			},
		},
		{
			name: "unparseable entry scores on length only",
			url:  "://not a url at all, but quite long regardless of that",
			check: func(t *testing.T, f Features) {
				if f.Length == 0 {
					t.Errorf("Length = 0, want > 0")
				}
				if f.HostEntropy != 0 || f.BrandInHost != 0 {
					t.Errorf("unparseable URL produced host features: %+v", f)
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			f := Extract(tc.url, brands)
			tc.check(t, f)
			if s := f.Score(); s < 0 || s > 1 {
				t.Errorf("Score() = %g, want in [0,1]", s)
			}
		})
	}
}

// TestScoreOrdering pins the property the funnel depends on: a URL loaded
// with phishing signals outranks a plain one.
func TestScoreOrdering(t *testing.T) {
	brands := []string{"paypal"}
	phishy := ScoreURL("http://secure-login.paypal-verify-account.192-update.test/signin/confirm", brands)
	plain := ScoreURL("http://example.test/", brands)
	if phishy <= plain {
		t.Fatalf("phishy URL scored %g <= plain URL %g", phishy, plain)
	}
}

// TestRankTotalOrder checks Rank against a reference sort: descending
// score, ties broken by ascending feed index — a total order, so every
// process ranks identically.
func TestRankTotalOrder(t *testing.T) {
	urls := []string{
		"http://example.test/",
		"http://login.paypal-1-1.test/signin",
		"http://login.paypal-1-1.test/signin", // exact duplicate: ties with index 1
		"http://192.168.0.1/verify/account",
		"http://example.test/", // duplicate: ties with index 0
	}
	brands := []string{"paypal"}
	scores, order := Rank(urls, brands)

	want := make([]int, len(urls))
	for i := range want {
		want[i] = i
	}
	sort.SliceStable(want, func(a, b int) bool {
		if scores[want[a]] != scores[want[b]] {
			return scores[want[a]] > scores[want[b]]
		}
		return want[a] < want[b]
	})
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (scores %v)", order, want, scores)
		}
	}

	// Equal-shape URLs must tie and resolve by index.
	if scores[1] != scores[2] {
		t.Errorf("same-shape URLs scored %g vs %g, want equal", scores[1], scores[2])
	}
	posOf := func(idx int) int {
		for p, o := range order {
			if o == idx {
				return p
			}
		}
		return -1
	}
	if posOf(1) > posOf(2) {
		t.Errorf("tie between indices 1 and 2 broke toward the later index")
	}
}

func TestRankDeterministic(t *testing.T) {
	urls := []string{
		"http://a.test/", "http://b.test/login", "http://c.test/",
		"http://d-d-d.test/verify", "http://e.test/x/y",
	}
	s1, o1 := Rank(urls, nil)
	s2, o2 := Rank(urls, nil)
	for i := range urls {
		if s1[i] != s2[i] || o1[i] != o2[i] {
			t.Fatalf("Rank not deterministic: run1 (%v, %v) run2 (%v, %v)", s1, o1, s2, o2)
		}
	}
}

func TestShannonEntropy(t *testing.T) {
	if e := shannonEntropy(""); e != 0 {
		t.Errorf("entropy(\"\") = %g, want 0", e)
	}
	if e := shannonEntropy("aaaa"); e != 0 {
		t.Errorf("entropy(aaaa) = %g, want 0", e)
	}
	if e := shannonEntropy("ab"); math.Abs(e-1) > 1e-9 {
		t.Errorf("entropy(ab) = %g, want 1", e)
	}
}
