package phishvet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/farm").
	Path string
	// Dir is the absolute source directory.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check problems. Rules still run (go/types
	// recovers), but the CLI surfaces these and fails the run: diagnostics
	// from a package that does not compile are not trustworthy.
	TypeErrors []error
}

// Loader discovers, parses, and type-checks packages without go/packages:
// module-local import paths resolve straight to source directories under
// the module root, and everything else (the stdlib) is type-checked from
// GOROOT source via go/importer. One Loader caches both sides, so checking
// the whole tree pays the stdlib cost once.
//
// Test files are not loaded: the determinism invariants phishvet guards
// are about production output paths, and every rule exempts _test.go by
// construction.
type Loader struct {
	Fset       *token.FileSet
	moduleDir  string
	modulePath string
	std        types.Importer
	cache      map[string]*Package
	loading    map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir (found by
// walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("phishvet: %w", err)
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("phishvet: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleDir:  root,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// ModuleDir returns the module root the loader resolves against.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// modulePath reads the module declaration out of a go.mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("phishvet: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("phishvet: no module line in %s", gomod)
}

// Load resolves the patterns ("./...", "dir", "dir/...") relative to the
// module root and returns the matched packages, type-checked, in import
// path order. Directories named testdata, vendor, or starting with "." or
// "_" are skipped during "..." expansion but can be targeted explicitly —
// that is how the rule fixtures are vetted.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		walk := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			walk, pat = true, rest
		}
		if pat == "." || pat == "" {
			pat = l.moduleDir
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.moduleDir, pat)
		}
		if !walk {
			if hasGoFiles(pat) {
				dirs[pat] = true
			} else {
				return nil, fmt.Errorf("phishvet: no Go files in %s", pat)
			}
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != pat && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("phishvet: walking %s: %w", pat, err)
		}
	}
	var out []*Package
	for dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the package in dir (memoized by import
// path).
func (l *Loader) loadDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("phishvet: %s is outside module %s", dir, l.moduleDir)
	}
	path := l.modulePath
	if rel != "." {
		path = l.modulePath + "/" + filepath.ToSlash(rel)
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("phishvet: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("phishvet: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("phishvet: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("phishvet: no Go files in %s", dir)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never returns a nil package; with the Error handler set it
	// recovers and keeps going, which is what we want — partial type
	// information still drives most rules, and TypeErrors fails the run.
	pkg.Types, _ = conf.Check(path, l.Fset, files, pkg.Info)
	l.cache[path] = pkg
	return pkg, nil
}

// loaderImporter adapts the Loader to types.Importer: module-local paths
// load from source directories, everything else defers to the GOROOT
// source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		pkg, err := l.loadDir(filepath.Join(l.moduleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return pkg.Types, pkg.TypeErrors[0]
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
