package sitegen

import (
	"fmt"
	"math/rand"

	"repro/internal/browser"
	"repro/internal/site"
)

// cloakKinds is the rule-kind universe in multiQuota option order. The
// weights in newGenState skew toward the gates real kits deploy most
// (user-agent sniffing first, JS probes rarest).
var cloakKinds = []string{
	site.CloakUserAgent,
	site.CloakReferrer,
	site.CloakLanguage,
	site.CloakGeo,
	site.CloakCookie,
	site.CloakJS,
}

// drawCloakRules picks a cloaked campaign's gate: 1-3 distinct rule kinds
// (the first from the size-weighted kind quota so corpus-level kind rates
// hold, the rest uniformly) with required values drawn from the browser
// package's candidate pools.
func drawCloakRules(g *genState, size int) []site.CloakRule {
	depth := 1 + g.cloakDepth.draw(size)
	picked := []int{g.cloakKind.draw(size)}
	for len(picked) < depth {
		k := g.rng.Intn(len(cloakKinds))
		dup := false
		for _, p := range picked {
			if p == k {
				dup = true
				break
			}
		}
		if !dup {
			picked = append(picked, k)
		}
	}
	rules := make([]site.CloakRule, 0, len(picked))
	for _, k := range picked {
		rules = append(rules, cloakRuleFor(g.rng, cloakKinds[k]))
	}
	return rules
}

// cloakRuleFor draws the required value for a rule kind from the shared
// candidate pool, always at index >= 1: index 0 is the honest crawler's
// default on every dimension, so a single honest visit never passes.
func cloakRuleFor(rng *rand.Rand, kind string) site.CloakRule {
	pick := func(pool []string) string {
		return pool[1+rng.Intn(len(pool)-1)]
	}
	r := site.CloakRule{Kind: kind}
	switch kind {
	case site.CloakUserAgent:
		r.Value = pick(browser.UserAgents())
	case site.CloakReferrer:
		r.Value = pick(browser.Referrers())
	case site.CloakLanguage:
		r.Value = pick(browser.Languages())
	case site.CloakGeo:
		r.Value = pick(browser.ForwardedAddrs())
	}
	return r
}

// buildDecoyHTML is the parked/benign page a cloaked kit serves to gated
// visitors. Real decoys are generic registrar pages, deliberately unlike
// the campaign's phishing design; the phrasing matches the crawler's
// benign-parked classifier and stays clear of its takedown phrases.
func buildDecoyHTML(host string) string {
	return fmt.Sprintf(`<html><head><title>%s - coming soon</title></head><body>
<div><h1>Welcome to %s</h1>
<p>This site is coming soon. The page you are looking for is under construction.</p>
<p>Please check back later.</p></div>
</body></html>`, host, host)
}
