package phishvet

import (
	"go/ast"
	"path/filepath"
)

// wallclockFuncs are the time functions that read the wall clock. A crawl
// must be a pure function of the feed seed, so these are forbidden outside
// the one sanctioned seam — internal/metrics' clock.go, whose Now /
// Stopwatch / SetClockForTest the farm and the CLIs route through. The
// rest of internal/metrics (histograms, stage timings) gets no exemption:
// telemetry code is exactly where a raw clock read would silently break
// the byte-identical-percentiles property, so it is checked like any other
// seeded code. Timers and sleeps that take explicit durations are fine,
// clock *reads* are not.
var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func wallclockRule() Rule {
	return Rule{
		Name: "wallclock",
		Doc:  "time.Now/Since/Until outside the internal/metrics clock seam (clock.go)",
		Run: func(p *Pass) {
			inMetrics := within(p.Pkg.Path, "internal/metrics")
			for _, f := range p.Pkg.Files {
				if inMetrics && filepath.Base(p.Pkg.Fset.Position(f.Pos()).Filename) == "clock.go" {
					continue
				}
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					// Bare references (`now: time.Now`) are flagged too: a
					// stored func value escapes the seam just as surely as a
					// call.
					path, name := p.selectorPkgFunc(sel)
					if path == "time" && wallclockFuncs[name] {
						p.Reportf(sel.Pos(), "time.%s reads the wall clock in seeded code: route it through the metrics seam (metrics.Now / metrics.NewStopwatch)", name)
					}
					return true
				})
			}
		},
	}
}
