package guard_test

import (
	"sync"
	"testing"

	"repro/internal/browser"
	"repro/internal/crawler"
	"repro/internal/fielddata"
	"repro/internal/guard"
	"repro/internal/phishserver"
	"repro/internal/site"
	"repro/internal/textclass"
)

var (
	clfOnce sync.Once
	clf     *textclass.Model
)

func classifier(t testing.TB) *textclass.Model {
	clfOnce.Do(func() {
		var err error
		clf, err = fielddata.TrainDefault(1)
		if err != nil {
			panic(err)
		}
	})
	return clf
}

func crawlerFor(t testing.TB, sites ...*site.Site) *crawler.Crawler {
	reg := phishserver.NewRegistry()
	for _, s := range sites {
		reg.AddSite(s)
	}
	reg.AddBenignHost("netflix.com")
	return &crawler.Crawler{
		Classifier: classifier(t),
		NewBrowser: func() *browser.Browser {
			return browser.New(browser.Options{Transport: phishserver.Transport{Registry: reg}})
		},
		FakerSeed: 3,
	}
}

func phishingSite() *site.Site {
	login := `<html><head>
<script type="application/x-behavior">{"listeners":[{"target":"input","event":"keydown","action":"send-data"}]}</script>
</head><body><form action="/"><div><label>Email</label><input name="e"></div>
<div><label>Password</label><input type="password" name="p"></div><button>Next</button></form></body></html>`
	pay := `<html><body><form action="/pay"><div><label>Card number</label><input name="c"></div>
<div><label>CVV</label><input name="v"></div><button>Pay</button></form></body></html>`
	done := `<html><body><div>Congratulations! Your account has been verified successfully.</div></body></html>`
	return &site.Site{ID: "ph", Host: "ph.test",
		Pages: []*site.Page{
			{Path: "/", HTML: login, Next: "/pay", Mode: site.NextRedirect},
			{Path: "/pay", HTML: pay, Next: "/done", Mode: site.NextRedirect},
			{Path: "/done", HTML: done},
		},
		Images: map[string][]byte{}}
}

// benignSite models a legitimate login: forged credentials are rejected
// (served the same page again), and nothing leaks while typing.
func benignSite() *site.Site {
	login := `<html><body><form action="/"><div><label>Email</label><input name="email"></div>
<div><label>Password</label><input type="password" name="pw"></div><button>Sign in</button></form></body></html>`
	return &site.Site{ID: "ok", Host: "ok.test",
		Pages: []*site.Page{
			// ValidateFlaky on an impossible field keeps forged data out:
			// a real account check rejects unknown credentials.
			{Path: "/", HTML: login, Next: "/inbox", Mode: site.NextRedirect,
				Validate: map[string]string{"pw": site.ValidateEmail}},
			{Path: "/inbox", HTML: "<html><body>inbox</body></html>"},
		},
		Images: map[string][]byte{}}
}

func TestJudgePhishing(t *testing.T) {
	c := crawlerFor(t, phishingSite())
	log := c.Crawl("http://ph.test/")
	v := guard.Judge(log)
	if !v.Phishing {
		t.Fatalf("phishing site judged benign: score %d signals %+v", v.Score, v.Signals)
	}
	names := map[string]bool{}
	for _, s := range v.Signals {
		names[s.Name] = true
	}
	for _, want := range []string{"forged-data-accepted", "multi-stage-harvesting", "keystroke-exfiltration"} {
		if !names[want] {
			t.Errorf("missing signal %q in %+v", want, v.Signals)
		}
	}
}

func TestJudgeBenign(t *testing.T) {
	c := crawlerFor(t, benignSite())
	log := c.Crawl("http://ok.test/")
	v := guard.Judge(log)
	if v.Phishing {
		t.Fatalf("benign site judged phishing: score %d signals %+v", v.Score, v.Signals)
	}
}

func TestBufferLifecycle(t *testing.T) {
	b := guard.NewBuffer()
	b.TypeString("email", "me@example.com")
	b.TypeString("password", "hunter2")
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
	fs := b.Fields()
	if fs[0].Name != "email" || fs[0].Value != "me@example.com" {
		t.Errorf("fields = %+v", fs)
	}
	if fs[1].Name != "password" || fs[1].Value != "hunter2" {
		t.Errorf("fields = %+v", fs)
	}
	b.Discard()
	if b.Len() != 0 || len(b.Fields()) != 0 {
		t.Error("discard did not clear buffer")
	}
}
