package report

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/metrics"
	"repro/internal/vision"
)

func TestTable1Format(t *testing.T) {
	s := analysis.Summary{SeedURLs: 108, FilteredURLs: 100, CrawledURLs: 150, CrawledSLDs: 70}
	out := Table1(s, 100)
	for _, want := range []string{"Seed URLs", "108", "56027", "25693", "corpus scale: 100"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2IncludesPaperColumn(t *testing.T) {
	h := metrics.NewHistogram()
	h.Add("Financial", 42)
	h.Add("Gaming", 3)
	out := Table2(h, 45)
	if !strings.Contains(out, "Financial") || !strings.Contains(out, "10053") {
		t.Errorf("Table2 output:\n%s", out)
	}
}

func TestTable3Average(t *testing.T) {
	rs := []analysis.CloningResult{
		{Brand: "Netflix", Sampled: 50, NonCloning: 13, NonClonePct: 26},
		{Brand: "DHL Airways, Inc.", Sampled: 50, NonCloning: 6, NonClonePct: 12},
	}
	out := Table3(rs)
	if !strings.Contains(out, "Average") || !strings.Contains(out, "19") {
		t.Errorf("Table3 average missing:\n%s", out)
	}
	if !strings.Contains(out, "Netflix") {
		t.Error("brand row missing")
	}
}

func TestTable4TopDomains(t *testing.T) {
	tc := analysis.TerminationCounts{
		RedirectSites:   10,
		RedirectDomains: metrics.NewHistogram(),
		ByCategory:      metrics.NewHistogram(),
	}
	tc.RedirectDomains.Add("dhl.com", 7)
	tc.RedirectDomains.Add("google.com", 3)
	out := Table4(tc, 100)
	if !strings.Contains(out, "dhl.com") || !strings.Contains(out, "297") {
		t.Errorf("Table4:\n%s", out)
	}
}

func TestTable5PerClass(t *testing.T) {
	res := vision.EvalResult{
		APPerClass:      map[string]float64{"button": 0.95, "text-type1": 0.9},
		SupportPerClass: map[string]int{"button": 40, "text-type1": 10},
		MeanAP:          0.925,
	}
	out := Table5(res)
	for _, want := range []string{"button", "95.0", "89.2", "Mean", "92.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 missing %q:\n%s", want, out)
		}
	}
}

func TestTable6Format(t *testing.T) {
	conf := metrics.NewConfusion()
	for i := 0; i < 9; i++ {
		conf.Add("email", "email")
	}
	conf.Add("email", "password")
	conf.Add("password", "password")
	out := Table6(conf)
	for _, want := range []string{"email", "0.90", "Overall"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table6 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure8Bars(t *testing.T) {
	out := Figure8(map[int]int{2: 30, 3: 40, 4: 10, 5: 2}, 200)
	if !strings.Contains(out, "Multi-page sites: 82") {
		t.Errorf("Figure8 total wrong:\n%s", out)
	}
	if !strings.Contains(out, "3 pages:") || !strings.Contains(out, "#") {
		t.Errorf("Figure8 bars missing:\n%s", out)
	}
}

func TestFigure9Stages(t *testing.T) {
	rows := []analysis.StageField{
		{Stage: 1, Type: "password", Pct: 80},
		{Stage: 2, Type: "card", Pct: 60},
	}
	out := Figure9(rows)
	if !strings.Contains(out, "Page_1") || !strings.Contains(out, "password") {
		t.Errorf("Figure9:\n%s", out)
	}
	if !strings.Contains(out, "Page_2") || !strings.Contains(out, "card") {
		t.Errorf("Figure9:\n%s", out)
	}
}

func TestSectionRates(t *testing.T) {
	tc := analysis.TerminationCounts{
		RedirectDomains: metrics.NewHistogram(),
		ByCategory:      metrics.NewHistogram(),
	}
	tc.ByCategory.Add("success", 5)
	out := SectionRates(
		analysis.ObfuscationRates{OCRRate: 0.27, VisualSubmitRate: 0.12},
		analysis.KeyloggingCounts{Monitoring: 100, ImmediateRequest: 4, DataExfiltrated: 1},
		3,
		analysis.ClickThroughCounts{Total: 10, FirstPage: 9, Internal: 1},
		analysis.CaptchaCounts{Total: 8, Recaptcha: 5, Hcaptcha: 2},
		analysis.TwoFactorCounts{CodeFieldSites: 30, OTPSites: 4},
		tc, 500)
	for _, want := range []string{"27.0% | 27%", "12.0% | 12%", "18,745", "2,933", "8,893"} {
		if !strings.Contains(out, want) {
			t.Errorf("SectionRates missing %q:\n%s", want, out)
		}
	}
}
