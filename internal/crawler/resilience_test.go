package crawler

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/browser"
	"repro/internal/chaos"
)

// rtFunc adapts a function to http.RoundTripper.
type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func htmlResponse(req *http.Request, status int, body string) *http.Response {
	return &http.Response{
		StatusCode: status,
		Status:     http.StatusText(status),
		Header:     http.Header{"Content-Type": []string{"text/html; charset=utf-8"}},
		Body:       io.NopCloser(strings.NewReader(body)),
		Request:    req,
	}
}

// resilienceCrawler builds a minimal crawler (no classifier, no detector)
// over the given transport — enough to exercise outcome classification.
func resilienceCrawler(rt http.RoundTripper, fetchTimeout time.Duration) *Crawler {
	return &Crawler{
		NewBrowser: func() *browser.Browser {
			return browser.New(browser.Options{Transport: rt, Timeout: fetchTimeout})
		},
		FakerSeed: 1,
	}
}

func TestCrawlDeadSiteClassified(t *testing.T) {
	rt := rtFunc(func(*http.Request) (*http.Response, error) {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	})
	log := resilienceCrawler(rt, 0).Crawl("http://dead.test/")
	if log.Outcome != OutcomeDead {
		t.Errorf("outcome = %q, want %q (error: %s)", log.Outcome, OutcomeDead, log.Error)
	}
	if log.Error == "" {
		t.Error("classified failure should carry the raw error detail")
	}
	if len(log.NetLog) == 0 {
		t.Error("failed navigation should still appear in the net log")
	}
}

func TestCrawlStalledFetchClassifiedAsTimeout(t *testing.T) {
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		<-r.Context().Done()
		return nil, r.Context().Err()
	})
	start := time.Now()
	log := resilienceCrawler(rt, 25*time.Millisecond).Crawl("http://stall.test/")
	if log.Outcome != OutcomeTimeout {
		t.Errorf("outcome = %q, want %q", log.Outcome, OutcomeTimeout)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("fetch deadline did not bound the session")
	}
}

func TestCrawlSessionBudgetExhaustedMidFlow(t *testing.T) {
	// Every request costs ~15ms against a 60ms session budget; the landing
	// page loads, but the submit ladder burns through the budget.
	form := `<html><body><form action="/"><div><label>Email</label><input name="e"></div>
<button>Go</button></form></body></html>`
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		select {
		case <-r.Context().Done():
			return nil, r.Context().Err()
		case <-time.After(15 * time.Millisecond):
		}
		return htmlResponse(r, http.StatusOK, form), nil
	})
	c := resilienceCrawler(rt, time.Minute)
	c.SessionBudget = 60 * time.Millisecond
	start := time.Now()
	log := c.Crawl("http://budget.test/")
	if log.Outcome != OutcomeTimeout {
		t.Errorf("outcome = %q, want %q", log.Outcome, OutcomeTimeout)
	}
	if log.Error != "session budget exhausted" {
		t.Errorf("error = %q", log.Error)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("session budget did not bound wall clock")
	}
}

func TestCrawlLandingServerErrorClassified(t *testing.T) {
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		return htmlResponse(r, http.StatusServiceUnavailable, "<html><body>503</body></html>"), nil
	})
	log := resilienceCrawler(rt, 0).Crawl("http://serr.test/")
	if log.Outcome != OutcomeServerError {
		t.Errorf("outcome = %q, want %q", log.Outcome, OutcomeServerError)
	}
	if !strings.Contains(log.Error, "landing page") {
		t.Errorf("error = %q", log.Error)
	}
}

func TestCrawlMidFlowServerErrorIsTermination(t *testing.T) {
	// A flow whose final POST returns a 5xx is the paper's HTTP-error
	// UX-termination pattern (Section 5.2.3), not an operational failure:
	// the error page must be logged and the session must complete, so the
	// termination analysis can count it.
	form := `<html><body><form action="/"><div><label>Email</label><input name="e"></div>
<button>Go</button></form></body></html>`
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		if r.Method == "POST" {
			return htmlResponse(r, http.StatusBadGateway, "<html><body><div>bad gateway</div></body></html>"), nil
		}
		return htmlResponse(r, http.StatusOK, form), nil
	})
	log := resilienceCrawler(rt, 0).Crawl("http://midflow.test/")
	if log.Outcome != OutcomeCompleted {
		t.Errorf("outcome = %q, want %q", log.Outcome, OutcomeCompleted)
	}
	if len(log.Pages) != 2 {
		t.Fatalf("pages logged = %d, want 2 (form + error page)", len(log.Pages))
	}
	if got := log.Pages[1].Status; got != http.StatusBadGateway {
		t.Errorf("terminal page status = %d, want 502", got)
	}
}

// truncatedBody yields its data and then fails with ErrUnexpectedEOF.
type truncatedBody struct{ r io.Reader }

func (t *truncatedBody) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}
func (*truncatedBody) Close() error { return nil }

func TestCrawlTruncatedBodyClassified(t *testing.T) {
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		return &http.Response{
			StatusCode: http.StatusOK,
			Header:     http.Header{"Content-Type": []string{"text/html"}},
			Body:       &truncatedBody{strings.NewReader("<html><body><div>cut")},
			Request:    r,
		}, nil
	})
	log := resilienceCrawler(rt, 0).Crawl("http://trunc.test/")
	if log.Outcome != OutcomeTruncated {
		t.Errorf("outcome = %q, want %q (error: %s)", log.Outcome, OutcomeTruncated, log.Error)
	}
}

func TestCrawlTakedownPageClassified(t *testing.T) {
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		return htmlResponse(r, http.StatusOK, chaos.TakedownHTML), nil
	})
	log := resilienceCrawler(rt, 0).Crawl("http://gone.test/")
	if log.Outcome != OutcomeTakedown {
		t.Errorf("outcome = %q, want %q", log.Outcome, OutcomeTakedown)
	}
	if len(log.Pages) != 1 {
		t.Errorf("takedown session logged %d pages, want 1", len(log.Pages))
	}
}

func TestClassifyErrorTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{context.DeadlineExceeded, OutcomeTimeout},
		{context.Canceled, OutcomeTimeout},
		{&net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, OutcomeDead},
		{io.ErrUnexpectedEOF, OutcomeTruncated},
		{&net.OpError{Op: "read", Err: syscall.ECONNRESET}, OutcomeError},
	}
	for _, c := range cases {
		if got := ClassifyError(c.err); got != c.want {
			t.Errorf("ClassifyError(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestRetryableSet(t *testing.T) {
	for _, o := range []string{OutcomeDead, OutcomeTimeout, OutcomeServerError, OutcomeTruncated, OutcomeError} {
		if !Retryable(o) {
			t.Errorf("Retryable(%q) = false, want true", o)
		}
	}
	for _, o := range []string{OutcomeCompleted, OutcomeStuck, OutcomePageLimit, OutcomeTakedown} {
		if Retryable(o) {
			t.Errorf("Retryable(%q) = true, want false", o)
		}
	}
}
